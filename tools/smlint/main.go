// Command smlint is the repo's project-specific static checker: five
// analyzers that turn past bug classes — map-order nondeterminism in
// report output, raw RNG seeding, cancellation-free solver loops,
// hot-path allocation, and architecture-dependent FMA contraction in
// float accumulation — into compile-time contracts.
//
// Usage:
//
//	go run ./tools/smlint ./...
//
// Exit status is 1 if any diagnostic is reported. See tools/smlint/lint
// for the analyzers and the //smlint: annotation escapes, and DESIGN.md
// "Statically enforced invariants" for the motivating bugs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"splitmfg/tools/smlint/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: smlint [-only a,b] [packages]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, firstLine(a.Doc))
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range lint.Analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "smlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := lint.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smlint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "smlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
