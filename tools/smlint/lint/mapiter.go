package lint

import (
	"go/ast"
	"go/types"
)

// MapIter flags `range` over a map in report-producing packages.
//
// Motivating bug (PR 3 class): aggregation loops in the report path
// iterated Go maps directly, so float accumulation happened in a
// different order per process and the golden byte pins differed across
// runs. Every map whose contents can reach a report must be iterated
// through a sorted key slice; a site where order provably cannot reach
// output carries //smlint:ordered <why>.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "range over a map in a report-producing package\n\n" +
		"Map iteration order is randomized per process; any map range on a\n" +
		"path that feeds report bytes is a nondeterminism bug. Iterate a\n" +
		"sorted key slice instead, or annotate //smlint:ordered <why> when\n" +
		"the loop's effect is provably order-independent.",
	Packages: []string{"internal/flow", "internal/report", "internal/metrics", "@root"},
	Run:      runMapIter,
}

func runMapIter(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Escaped(rs.For, "ordered") {
				return true
			}
			pass.Reportf(rs.For, "range over map %s in report-producing code: iterate sorted keys, or annotate //smlint:ordered <why> if order cannot reach output", types.TypeString(tv.Type, types.RelativeTo(pass.Types)))
			return true
		})
	}
}
