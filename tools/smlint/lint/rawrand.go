package lint

import (
	"go/ast"
	"go/types"
)

// SeedDerivers are the functions recognized as producing a properly
// mixed RNG seed (FNV label hashing + a splitmix64 finalizer). The seed
// argument of rand.NewSource must be a direct call to one of these; raw
// master seeds, XOR'd constants, and arithmetic on seeds correlate the
// streams they feed (see DESIGN.md on seed hygiene).
var SeedDerivers = map[string]bool{
	"DeriveSeed":    true, // attack/engine and defense/engine mixers
	"replicateSeed": true, // flow: per-replicate splitmix64 stream
	"layerSeed":     true, // flow: per-split-layer splitmix64 stream
	"splitmix64":    true,
}

// RawRand forbids unseedable or unmixed randomness and wall-clock reads
// in the deterministic result packages (netlist/place/route/attack/
// defense).
//
// Motivating bugs: global math/rand functions draw from a process-wide
// stream that any package can perturb, so results stop being a function
// of the seed; seeds built by XOR-ing small constants produce correlated
// streams across replicates; and time.Now inside a result computation
// leaks wall-clock into values that must be byte-identical across runs.
// Deliberate timing-capture sites (progress callbacks, phase timers)
// carry //smlint:wallclock <why>; intentionally raw seeds carry
// //smlint:rawseed <why>.
var RawRand = &Analyzer{
	Name: "rawrand",
	Doc: "global math/rand, underived seed, or time.Now in a deterministic result path\n\n" +
		"Deterministic packages must draw randomness only from rand.New with a\n" +
		"splitmix64-derived seed, and must not read the wall clock outside\n" +
		"annotated timing-capture sites.",
	Packages: []string{
		"internal/netlist", "internal/place", "internal/route",
		"internal/attack", "internal/defense",
	},
	Run: runRawRand,
}

func runRawRand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pkgFuncOf(pass, call)
			if fn == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "time" && fn.Name() == "Now":
				if pass.Escaped(call.Pos(), "wallclock") || pass.funcEscapedWallclock(call) {
					return true
				}
				pass.Reportf(call.Pos(), "time.Now in a deterministic result path: results must be a function of the seed; annotate //smlint:wallclock <why> for a deliberate timing capture")
			case fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2":
				switch fn.Name() {
				case "New":
					// The seed is checked at the NewSource call inside.
				case "NewSource":
					if len(call.Args) == 1 && !isDerivedSeed(pass, call.Args[0]) && !pass.Escaped(call.Pos(), "rawseed") {
						pass.Reportf(call.Pos(), "rand.NewSource seed is not derived through a splitmix64 helper (%s): raw or XOR'd master seeds correlate replicate streams; derive with DeriveSeed or annotate //smlint:rawseed <why>", seedDeriverNames())
					}
				default:
					pass.Reportf(call.Pos(), "global math/rand.%s draws from the shared process-wide stream: results stop being a function of the pipeline seed; use rand.New(rand.NewSource(derivedSeed))", fn.Name())
				}
			}
			return true
		})
	}
}

// funcEscapedWallclock reports whether the innermost function declaration
// containing the call is marked //smlint:wallclock — a whole function
// dedicated to timing capture annotates once at the top.
func (p *Pass) funcEscapedWallclock(call *ast.CallExpr) bool {
	for _, f := range p.Files {
		if f.Pos() <= call.Pos() && call.End() <= f.End() {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && fd.Pos() <= call.Pos() && call.End() <= fd.End() {
					return FuncMarked(fd, "wallclock")
				}
			}
		}
	}
	return false
}

// pkgFuncOf resolves a call to a package-level function object, or nil
// for methods, builtins, conversions, and locals.
func pkgFuncOf(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return nil // method call (rng.Intn is fine — the stream is owned)
	}
	return fn
}

// isDerivedSeed reports whether the expression is a direct call to a
// recognized seed-derivation helper (possibly through a conversion).
func isDerivedSeed(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		// Unwrap an explicit int64(...) style conversion.
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			return isDerivedSeed(pass, call.Args[0])
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		}
		return SeedDerivers[name]
	}
	return false
}

func seedDeriverNames() string {
	s := ""
	for _, name := range []string{"DeriveSeed", "replicateSeed", "layerSeed", "splitmix64"} {
		if s != "" {
			s += ", "
		}
		s += name
	}
	return s
}
