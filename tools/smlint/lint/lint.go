// Package lint is the analysis framework behind smlint, the repo's
// project-specific static checker. It enforces, at the source level, the
// invariants every headline guarantee of this reproduction rests on:
// byte-identical golden reports across serial/parallel runs and
// architectures, prompt context cancellation in long solves, and
// allocation-free hot paths at superblue scale.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis —
// Analyzer values with a Run(*Pass) hook reporting Diagnostics — but is
// built directly on go/parser + go/types with a `go list -export`-driven
// loader (see load.go), because this build environment has no module
// proxy access. If x/tools ever becomes available, each Run function
// ports to an analysis.Analyzer unchanged.
//
// # Annotations
//
// Sites that intentionally depart from an invariant carry an //smlint:
// directive comment, on the flagged line or the line directly above it:
//
//	//smlint:ordered <why>   — map iteration order provably cannot reach output
//	//smlint:rawseed <why>   — RNG seed intentionally not splitmix64-derived
//	//smlint:wallclock <why> — a deliberate wall-clock timing-capture site
//	//smlint:bounded <why>   — loop has a proven iteration bound
//	//smlint:alloc <why>     — a justified allocation inside a hot function
//
// Escape directives REQUIRE a justification: a bare directive is itself a
// diagnostic. Two further directives are markers, not escapes:
//
//	//smlint:hot — in a function's doc comment, opts the function into the
//	hotalloc analyzer (per-call map literals, unsized make, append growth).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string // short lower-case identifier, used in diagnostics
	Doc  string // one-paragraph description of the invariant

	// Packages restricts the analyzer to packages whose import path
	// contains one of these fragments. The special fragment "@root"
	// matches only the module's root package. Empty means every package.
	Packages []string

	Run func(*Pass)
}

// Applies reports whether the analyzer runs on the given package.
func (a *Analyzer) Applies(pkg *Package) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, frag := range a.Packages {
		if frag == "@root" {
			if pkg.Module != "" && pkg.Path == pkg.Module {
				return true
			}
			continue
		}
		if strings.Contains(pkg.Path, frag) {
			return true
		}
	}
	return false
}

// A Diagnostic is one finding, positioned for a path:line:col report.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Package is one loaded, parsed, and type-checked package.
type Package struct {
	Path   string // import path
	Module string // module path ("" outside modules); Path == Module for the root package
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info

	directives map[string][]directive // filename -> line-sorted directives
}

// A directive is one parsed //smlint:name comment.
type directive struct {
	line int
	name string
	arg  string // justification text after the name, may be empty
}

// buildDirectives scans every comment in the package once.
func (p *Package) buildDirectives() {
	p.directives = make(map[string][]directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments are not directives
				}
				text = strings.TrimPrefix(text, " ")
				rest, ok := strings.CutPrefix(text, "smlint:")
				if !ok {
					continue
				}
				name, arg, _ := strings.Cut(rest, " ")
				pos := p.Fset.Position(c.Pos())
				p.directives[pos.Filename] = append(p.directives[pos.Filename], directive{
					line: pos.Line,
					name: name,
					arg:  strings.TrimSpace(arg),
				})
			}
		}
	}
	for _, ds := range p.directives {
		sort.Slice(ds, func(i, j int) bool { return ds[i].line < ds[j].line })
	}
}

// directiveAt returns the directive with the given name on the line of
// pos or the line immediately above it.
func (p *Package) directiveAt(pos token.Pos, name string) (directive, bool) {
	at := p.Fset.Position(pos)
	for _, d := range p.directives[at.Filename] {
		if d.name == name && (d.line == at.Line || d.line == at.Line-1) {
			return d, true
		}
	}
	return directive{}, false
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	*Package
	Analyzer *Analyzer

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Escaped reports whether the site at pos carries the named escape
// directive (same line or the line above). A directive with no
// justification text suppresses the original finding but is reported
// itself — an escape must say why.
func (p *Pass) Escaped(pos token.Pos, name string) bool {
	d, ok := p.directiveAt(pos, name)
	if !ok {
		return false
	}
	if d.arg == "" {
		p.Reportf(pos, "//smlint:%s needs a justification (\"//smlint:%s <why>\")", name, name)
	}
	return true
}

// FuncMarked reports whether fn's doc comment carries the named marker
// directive (e.g. //smlint:hot).
func FuncMarked(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), " ")
		rest, ok := strings.CutPrefix(text, "smlint:")
		if !ok {
			continue
		}
		n, _, _ := strings.Cut(rest, " ")
		if n == name {
			return true
		}
	}
	return false
}

// Analyzers is the full smlint suite, in reporting order.
var Analyzers = []*Analyzer{
	MapIter,
	RawRand,
	CtxLoop,
	HotAlloc,
	FloatSum,
}

// Run applies every analyzer to every package it matches and returns the
// diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.directives == nil {
			pkg.buildDirectives()
		}
		for _, a := range analyzers {
			if !a.Applies(pkg) {
				continue
			}
			pass := &Pass{Package: pkg, Analyzer: a, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// TypeIs reports whether t is the named type pkgPath.name (after
// unaliasing, ignoring pointers is the caller's job).
func TypeIs(t types.Type, pkgPath, name string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// IsFloat reports whether t's core type is an untyped/typed float.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
