package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc flags per-call allocation patterns inside functions annotated
// //smlint:hot.
//
// Motivating work (PR 7): the struct-of-arrays overhaul cut allocs/op
// 2.6–21.6x on the netlist-build, RouteAll, and proximity-attack paths,
// and pinned the results with testing.AllocsPerRun. Those pins catch a
// regression only after it lands; hotalloc catches the three patterns
// that caused every one of the original hot-path allocation storms at
// the source: per-call map literals (and unsized map makes), zero-length
// slice makes, and append growth into a locally fresh empty slice inside
// a loop. A justified allocation carries //smlint:alloc <why>.
//
// The analyzer is opt-in per function: mark a function hot by putting
// //smlint:hot on its own line in the doc comment. Hot markers belong on
// the steady-state paths the AllocsPerRun pins measure — the RouteNet
// worker chain, the proximity attack's inner loops, EvaluateSecurity's
// per-layer path — not on setup code that runs once.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "per-call allocation in an //smlint:hot function\n\n" +
		"Functions marked //smlint:hot must not build maps per call, make\n" +
		"zero-length slices, or grow locally fresh slices by append inside a\n" +
		"loop; reuse scratch buffers (epoch-stamped where membership matters)\n" +
		"or annotate //smlint:alloc <why>.",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !FuncMarked(fd, "hot") {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	fresh := freshEmptySlices(pass, fd.Body)
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				walkParts(pass, inLoop, walk, m.Init, m.Cond, m.Post)
				walk(m.Body, true)
				return false
			case *ast.RangeStmt:
				walk(m.Body, true)
				return false
			case *ast.CompositeLit:
				if tv, ok := pass.Info.Types[m]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !pass.Escaped(m.Pos(), "alloc") {
						pass.Reportf(m.Pos(), "map literal allocates on every call of a hot function: hoist it to a reused scratch field, or annotate //smlint:alloc <why>")
					}
				}
			case *ast.CallExpr:
				checkHotMake(pass, m)
			case *ast.AssignStmt:
				checkHotAppend(pass, m, fresh, inLoop)
			}
			return true
		})
	}
	walk(fd.Body, false)
}

// walkParts re-walks the non-body clauses of a for statement with the
// enclosing loop state (they execute outside the body's iteration).
func walkParts(pass *Pass, inLoop bool, walk func(ast.Node, bool), parts ...ast.Node) {
	for _, p := range parts {
		if p != nil {
			walk(p, inLoop)
		}
	}
}

// checkHotMake flags make(map[...]) with no size hint and make([]T, 0)
// with no capacity.
func checkHotMake(pass *Pass, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		if len(call.Args) == 1 && !pass.Escaped(call.Pos(), "alloc") {
			pass.Reportf(call.Pos(), "make(map) without a size hint in a hot function grows bucket by bucket: pre-size it, reuse a scratch map, or annotate //smlint:alloc <why>")
		}
	case *types.Slice:
		if len(call.Args) == 2 && isConstZero(pass, call.Args[1]) && !pass.Escaped(call.Pos(), "alloc") {
			pass.Reportf(call.Pos(), "make(slice, 0) without capacity in a hot function guarantees append growth: size it (or give it capacity), reuse scratch via s[:0], or annotate //smlint:alloc <why>")
		}
	}
}

// checkHotAppend flags `x = append(x, ...)` inside a loop when x is a
// locally fresh empty slice — the classic doubling-growth pattern the
// SoA work removed. Appends into reused scratch (struct fields,
// parameters, `buf[:0]` rebinds) pass: their capacity survives calls.
func checkHotAppend(pass *Pass, as *ast.AssignStmt, fresh map[types.Object]bool, inLoop bool) {
	if !inLoop || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	target, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.Info.Uses[target]
	if obj == nil {
		obj = pass.Info.Defs[target]
	}
	if obj == nil || !fresh[obj] {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
		return
	}
	if pass.Escaped(as.Pos(), "alloc") {
		return
	}
	pass.Reportf(as.Pos(), "append growth into a locally fresh slice inside a loop reallocates on a hot path: preallocate with the known capacity, reuse scratch, or annotate //smlint:alloc <why>")
}

// freshEmptySlices collects local slice variables declared with no
// backing capacity: `var s []T`, `s := []T{}`, and `s := make([]T, 0)`
// (no capacity argument).
func freshEmptySlices(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	mark := func(id *ast.Ident) {
		if obj := pass.Info.Defs[id]; obj != nil {
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				fresh[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isEmptySliceExpr(pass, n.Rhs[i]) {
					continue
				}
				mark(id)
			}
		}
		return true
	})
	return fresh
}

// isEmptySliceExpr reports `[]T{}` and `make([]T, 0)` without capacity.
func isEmptySliceExpr(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		tv, ok := pass.Info.Types[e]
		if !ok {
			return false
		}
		_, isSlice := tv.Type.Underlying().(*types.Slice)
		return isSlice && len(e.Elts) == 0
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) != 2 {
			return false
		}
		if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
			return false
		}
		tv, ok := pass.Info.Types[e.Args[0]]
		if !ok {
			return false
		}
		_, isSlice := tv.Type.Underlying().(*types.Slice)
		return isSlice && isConstZero(pass, e.Args[1])
	}
	return false
}

func isConstZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}
