package lint

import (
	"go/ast"
	"go/token"
)

// FloatSum flags float accumulation whose right-hand side could be
// contracted into a fused multiply-add.
//
// Motivating bug (PR 3 class): `sum += a*b` compiles to an FMA on
// arm64/ppc64 but two rounded operations on amd64, so golden reports
// differed across architectures by one ulp — enough to break byte pins.
// The Go spec permits fusion only when no explicit conversion intervenes
// (see the repo idiom at timing.LoadsFromDesign), so the contract is:
// when the RHS of a float `+=`/`-=` contains a multiplication or
// division, it must be wrapped in an explicit float64(...)/float32(...)
// conversion, which forces rounding before the accumulate and makes the
// result identical on every architecture. Plain `sum += x` cannot fuse
// and is always allowed.
var FloatSum = &Analyzer{
	Name: "floatsum",
	Doc: "float accumulation without the anti-FMA float64() conversion\n\n" +
		"`acc += expr` where expr multiplies or divides floats may compile to\n" +
		"a fused multiply-add on some architectures and not others, breaking\n" +
		"cross-arch byte-identical reports; write `acc += float64(expr)`.",
	Packages: []string{"internal/flow", "internal/report", "internal/metrics", "internal/timing", "@root"},
	Run:      runFloatSum,
}

func runFloatSum(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) {
				return true
			}
			tv, ok := pass.Info.Types[as.Lhs[0]]
			if !ok || !IsFloat(tv.Type) {
				return true
			}
			// A conversion (or any call) rounds its result, so fusion cannot
			// cross it: `acc += float64(a*b)` is safe and containsFloatMul
			// does not descend into it. Only a multiply reachable without
			// crossing such a barrier can contract with the accumulate.
			if containsFloatMul(pass, as.Rhs[0]) {
				pass.Reportf(as.Pos(), "float accumulation of a product may contract to an architecture-dependent FMA: wrap the right-hand side in an explicit float64(...) (see timing.LoadsFromDesign)")
			}
			return true
		})
	}
}

// containsFloatMul reports whether the expression tree multiplies or
// divides floats outside any explicit conversion (a conversion rounds
// its operand, so fusion cannot cross it).
func containsFloatMul(pass *Pass, e ast.Expr) bool {
	found := false
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		if found || e == nil {
			return
		}
		switch e := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			if e.Op == token.MUL || e.Op == token.QUO {
				if tv, ok := pass.Info.Types[e]; ok && IsFloat(tv.Type) {
					found = true
					return
				}
			}
			walk(e.X)
			walk(e.Y)
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.CallExpr:
			// A conversion rounds its result, and a function call returns a
			// rounded value: fusion cannot reach inside either. Arguments do
			// not participate in the accumulate expression's contraction.
		}
	}
	walk(e)
	return found
}
