// Package solver is a hotalloc fixture: the analyzer is opt-in per
// function via //smlint:hot, so identical code in an unmarked function
// must stay silent.
package solver

type scratch struct {
	buf  []int
	seen map[int]bool
}

// hotMapLiteral allocates a map on every call.
//
//smlint:hot
func hotMapLiteral(keys []int) int {
	seen := map[int]bool{} // want "map literal allocates on every call"
	for _, k := range keys {
		seen[k] = true
	}
	return len(seen)
}

// hotMakes covers the make shapes.
//
//smlint:hot
func hotMakes(n int) ([]int, map[int]bool) {
	m := make(map[int]bool) // want "make\(map\) without a size hint"
	sized := make(map[int]bool, n)
	grow := make([]int, 0) // want "make\(slice, 0\) without capacity"
	capped := make([]int, 0, n)
	fixed := make([]int, n)
	_ = sized
	_ = capped
	_ = fixed
	_ = grow
	return nil, m
}

// hotAppendGrowth grows a locally fresh slice inside the loop — the
// doubling-growth pattern the SoA work removed.
//
//smlint:hot
func hotAppendGrowth(items []int) []int {
	var out []int
	for _, v := range items {
		out = append(out, v) // want "append growth into a locally fresh slice"
	}
	return out
}

// hotScratchReuse appends into reused scratch: field targets and
// capacity-preserving rebinds keep their backing arrays across calls.
//
//smlint:hot
func (s *scratch) hotScratchReuse(items []int) []int {
	s.buf = s.buf[:0]
	for _, v := range items {
		s.buf = append(s.buf, v) // reused field scratch: never flagged
	}
	reuse := s.buf[:0]
	for _, v := range items {
		reuse = append(reuse, v) // rebind of existing capacity: never flagged
	}
	return reuse
}

// hotAppendToParam grows the caller's slice — amortized by the caller's
// capacity, not a locally fresh allocation.
//
//smlint:hot
func hotAppendToParam(dst []int, items []int) []int {
	for _, v := range items {
		dst = append(dst, v)
	}
	return dst
}

// hotAnnotated keeps a justified allocation.
//
//smlint:hot
func hotAnnotated(keys []int) map[int]bool {
	seen := map[int]bool{} //smlint:alloc result escapes to the caller; no scratch can be reused
	for _, k := range keys {
		seen[k] = true
	}
	return seen
}

// coldFunction is NOT marked hot: none of these patterns are flagged.
func coldFunction(keys []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	tmp := make([]int, 0)
	_ = tmp
	return out
}
