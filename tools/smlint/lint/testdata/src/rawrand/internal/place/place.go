// Package place is a rawrand fixture: its import path matches the
// deterministic-result scope, so randomness must be seed-derived and the
// wall clock is off limits outside annotated timing captures.
package place

import (
	"math/rand"
	"time"
)

// DeriveSeed stands in for the repo's FNV+splitmix64 mixer; rawrand
// recognizes derivers by name.
func DeriveSeed(seed int64, label string) int64 { return seed + int64(len(label)) }

func globalStream(n int) int {
	return rand.Intn(n) // want "global math/rand.Intn"
}

func rawSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want "not derived through a splitmix64 helper"
}

func xorSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0xa5)) // want "not derived through a splitmix64 helper"
}

func derivedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(seed, "place")))
}

func annotatedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x5eed)) //smlint:rawseed fixed domain separator on an upstream-derived seed
}

func ownedStreamIsFine(rng *rand.Rand) int {
	return rng.Intn(7) // method on an owned stream: never flagged
}

func wallClock() time.Time {
	return time.Now() // want "time.Now in a deterministic result path"
}

func annotatedWallClock() time.Duration {
	start := time.Now() //smlint:wallclock phase timer for progress reporting only
	return time.Since(start)
}

// timedPhase is a whole function dedicated to timing capture; the marker
// in its doc comment covers every time.Now inside.
//
//smlint:wallclock
func timedPhase(f func()) time.Duration {
	start := time.Now()
	f()
	end := time.Now()
	return end.Sub(start)
}
