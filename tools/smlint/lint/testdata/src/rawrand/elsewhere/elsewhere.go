// Package elsewhere is outside the deterministic-result scope: raw seeds
// and wall-clock reads here are not rawrand's business.
package elsewhere

import (
	"math/rand"
	"time"
)

func Unscoped(seed int64) (int, time.Time) {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10), time.Now()
}
