// Package fixture is the module root: the "@root" scope fragment must
// match it, mirroring the real module's root aggregation package.
package fixture

func RootAggregate(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want "range over map"
		total += v
	}
	return total
}
