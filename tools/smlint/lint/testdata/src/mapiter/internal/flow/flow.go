// Package flow is a mapiter fixture: its import path matches the
// report-producing package scope, so every map range must be sorted or
// annotated.
package flow

import "sort"

func sums(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want "range over map"
		total += v
	}
	return total
}

func sortedSums(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	//smlint:ordered key collection feeds an explicit sort below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys { // slice range: never flagged
		total += m[k]
	}
	return total
}

func annotated(m map[string]int) int {
	n := 0
	//smlint:ordered integer adds commute exactly
	for _, v := range m {
		n += v
	}
	return n
}

func bareAnnotation(m map[string]int) int {
	n := 0
	//smlint:ordered
	for _, v := range m { // want "needs a justification"
		n += v
	}
	return n
}

type customMap map[int]bool

func namedMapType(m customMap) int {
	n := 0
	for range m { // want "range over map"
		n++
	}
	return n
}
