// Package outside is not a report-producing package: map ranges here are
// out of mapiter's scope and must produce no diagnostics.
package outside

func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
