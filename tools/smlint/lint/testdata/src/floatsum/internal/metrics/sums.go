// Package metrics is a floatsum fixture: float accumulation of products
// must round through an explicit conversion before the add, or the
// compiler may contract the pair into an architecture-dependent FMA.
package metrics

func variance(xs []float64, mean float64) float64 {
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean) // want "architecture-dependent FMA"
	}
	return v
}

func varianceRounded(xs []float64, mean float64) float64 {
	var v float64
	for _, x := range xs {
		v += float64((x - mean) * (x - mean)) // conversion barrier: safe
	}
	return v
}

func plainSum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x // no product: nothing to fuse
	}
	return sum
}

func subtractedProduct(sum float64, a, b float64) float64 {
	sum -= a * b // want "architecture-dependent FMA"
	return sum
}

func quotient(sum float64, a, b float64) float64 {
	sum += a / b // want "architecture-dependent FMA"
	return sum
}

func additionsOnly(sum float64, a, b float64) float64 {
	sum += a + b // adds cannot contract with the accumulate
	return sum
}

func intAccumulation(n int, a, b int) int {
	n += a * b // integer math is exact: out of scope
	return n
}

func callBarrier(sum float64, xs []float64) float64 {
	sum += plainSum(xs) // a call returns a rounded value: safe
	return sum
}

func scaledCount(c float64, pos int, pad float64) float64 {
	c += float64(pos) * pad // want "architecture-dependent FMA"
	return c
}

func scaledCountRounded(c float64, pos int, pad float64) float64 {
	c += float64(float64(pos) * pad) // conversion barrier: safe
	return c
}
