// Package route is a ctxloop fixture: solver-scope loops that cannot be
// proven bounded must observe cancellation.
package route

import "context"

type heap struct{ items []int }

func (h *heap) Len() int   { return len(h.items) }
func (h *heap) Pop() int   { n := h.items[len(h.items)-1]; h.items = h.items[:len(h.items)-1]; return n }
func (h *heap) Push(v int) { h.items = append(h.items, v) }

func uncheckedInfinite(ctx context.Context) {
	for { // want "unbounded loop in solver code has no cancellation check"
		if step() {
			return
		}
	}
}

func checkedInfinite(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if step() {
			return nil
		}
	}
}

func doneSelect(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-work:
			sink(v)
		}
	}
}

func uncheckedFrontier(h *heap) {
	for h.Len() > 0 { // want "unbounded loop in solver code has no cancellation check"
		sink(h.Pop())
	}
}

func uncheckedLenFrontier(q []int) {
	for len(q) > 0 { // want "unbounded loop in solver code has no cancellation check"
		q = q[1:]
	}
}

func boundedAnnotated(h *heap) {
	//smlint:bounded every iteration pops; no pushes occur in the body
	for h.Len() > 0 {
		sink(h.Pop())
	}
}

func counterLoopsAreBounded(a []int) int {
	n := 0
	for i := 0; i < len(a); i++ { // three-clause counter: never flagged
		n += a[i]
	}
	for _, v := range a { // range: never flagged
		n += v
	}
	return n
}

func flagLoop(ctx context.Context) {
	improved := true
	for improved { // want "unbounded loop in solver code has no cancellation check"
		improved = step()
	}
}

// innerSatisfiedByOuter mirrors the MCMF fix shape: the augmenting loop
// checks the context once per iteration, which bounds the staleness of
// the inner (per-sweep-bounded) frontier loop.
func innerSatisfiedByOuter(ctx context.Context, h *heap) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		for h.Len() > 0 {
			sink(h.Pop())
		}
		if step() {
			return nil
		}
	}
}

// delegation: calling into code that takes the context counts as a
// cancellation point — the callee owns the check.
func delegated(ctx context.Context, h *heap) {
	for h.Len() > 0 {
		solveOne(ctx, h.Pop())
	}
}

// closureStartsFresh: the enclosing loop's check does not run while the
// closure's own loop spins, so the closure is checked on its own.
func closureStartsFresh(ctx context.Context) {
	for {
		if err := ctx.Err(); err != nil {
			return
		}
		f := func() {
			for { // want "unbounded loop in solver code has no cancellation check"
				if step() {
					return
				}
			}
		}
		f()
		return
	}
}

func step() bool                    { return true }
func sink(int)                      {}
func solveOne(context.Context, int) {}
