package lint

// The test harness mirrors golang.org/x/tools/go/analysis/analysistest:
// each analyzer has a fixture tree under testdata/src/<analyzer>/ that is
// copied into a temporary module, loaded through the production Load
// path (go list -export + go/types), and analyzed. Expected findings are
// `// want "regexp"` comments on the offending line; the run fails on
// any unexpected diagnostic and any unmatched expectation, so fixtures
// pin both the positives and the negatives (escape hatches, out-of-scope
// packages, allowed idioms).

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRE = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// runFixture loads testdata/src/<name> as a fresh module and checks the
// analyzer's diagnostics against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	src := filepath.Join("testdata", "src", name)
	mod := t.TempDir()

	type expectation struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*expectation) // "relpath:line" -> expectations

	err := filepath.Walk(src, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		if fi.IsDir() {
			return os.MkdirAll(filepath.Join(mod, rel), 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				return fmt.Errorf("%s:%d: bad want pattern: %v", rel, i+1, err)
			}
			key := fmt.Sprintf("%s:%d", rel, i+1)
			wants[key] = append(wants[key], &expectation{re: re})
		}
		return os.WriteFile(filepath.Join(mod, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte("module fixture\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	pkgs, err := Load(mod, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s loaded no packages", name)
	}

	for _, d := range Run(pkgs, []*Analyzer{a}) {
		rel, err := filepath.Rel(mod, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		key := fmt.Sprintf("%s:%d", rel, d.Pos.Line)
		var exp *expectation
		for _, e := range wants[key] {
			if !e.matched && e.re.MatchString(d.Message) {
				exp = e
				break
			}
		}
		if exp == nil {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
			continue
		}
		exp.matched = true
	}
	for key, es := range wants {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.re)
			}
		}
	}
}

func TestMapIter(t *testing.T)  { runFixture(t, MapIter, "mapiter") }
func TestRawRand(t *testing.T)  { runFixture(t, RawRand, "rawrand") }
func TestCtxLoop(t *testing.T)  { runFixture(t, CtxLoop, "ctxloop") }
func TestHotAlloc(t *testing.T) { runFixture(t, HotAlloc, "hotalloc") }
func TestFloatSum(t *testing.T) { runFixture(t, FloatSum, "floatsum") }

// TestSuiteCleanOnRepo is the self-check the CI lint job scripts around:
// the full suite must exit clean on the repository's own tree. Running it
// as a test too means `go test ./...` catches a violation even where the
// lint job is not wired up.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Analyzers)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
