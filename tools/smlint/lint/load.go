package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns in dir (a module directory),
// parses and type-checks every non-dependency match, and returns them
// sorted by import path.
//
// Type information for imports comes from compiler export data: the
// listing runs `go list -deps -export`, which builds every transitive
// dependency (standard library included) and reports the export file the
// gc importer then reads. This is the same information a
// golang.org/x/tools/go/packages NeedTypes load would surface, obtained
// without any module download — the analyzers' one environmental
// constraint.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	sizes := types.SizesFor("gc", runtime.GOARCH)

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp, Sizes: sizes}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		mod := ""
		if t.Module != nil {
			mod = t.Module.Path
		}
		pkgs = append(pkgs, &Package{
			Path:   t.ImportPath,
			Module: mod,
			Fset:   fset,
			Files:  files,
			Types:  tpkg,
			Info:   info,
		})
	}
	return pkgs, nil
}
