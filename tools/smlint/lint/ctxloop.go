package lint

import (
	"go/ast"
	"go/types"
)

// CtxLoop flags unbounded `for` loops in solver code that cannot observe
// context cancellation.
//
// Motivating bug (PR 4 class): the MCMF augmenting-path loop — thousands
// of Dijkstra sweeps on a full-size superblue solve — ran to completion
// after the caller's context was canceled, pinning a scheduler slot for
// minutes. Every potentially long-running solver loop must check
// ctx.Err()/ctx.Done() (directly, or by calling into code that takes the
// context) at least once per iteration; a loop with a proven iteration
// bound carries //smlint:bounded <why>.
//
// A loop counts as unbounded when it has no condition at all (`for {`),
// or when it is condition-only (no init/post clause) and the condition
// either contains a call — `for h.Len() > 0`, `for len(queue) > 0`, the
// A*/BFS frontier shape — or is a bare boolean flag (`for improved`).
// Three-clause counter loops (`for i := 0; i < len(a); i++`) are bounded
// by construction and never flagged. An inner loop is satisfied by a
// cancellation check in an enclosing loop of the same function: the
// enclosing per-iteration check bounds staleness to one inner sweep,
// which is exactly the PR 4 fix's shape (mcmf.run checks once per
// augmenting iteration, not inside each Dijkstra sweep).
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: "unbounded solver loop with no cancellation check\n\n" +
		"Long solves must stop promptly when their context is canceled; every\n" +
		"unbounded loop needs a ctx.Err()/ctx.Done() check in its own body or\n" +
		"an enclosing loop's body, or a //smlint:bounded <why> annotation.",
	Packages: []string{"internal/route", "internal/place", "internal/attack"},
	Run:      runCtxLoop,
}

func runCtxLoop(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLoops(pass, fd.Body, false)
		}
	}
}

// checkLoops walks stmts; enclosingChecked is true when an enclosing for
// loop in this function performs a cancellation check each iteration.
func checkLoops(pass *Pass, n ast.Node, enclosingChecked bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch loop := m.(type) {
		case *ast.FuncLit:
			// A nested closure starts fresh: an enclosing loop's check does
			// not run while the closure's own loops spin.
			checkLoops(pass, loop.Body, false)
			return false
		case *ast.ForStmt:
			checked := enclosingChecked || hasCtxCheck(pass, loop.Body)
			if unboundedFor(loop) && !checked && !pass.Escaped(loop.For, "bounded") {
				pass.Reportf(loop.For, "unbounded loop in solver code has no cancellation check: add a ctx.Err()/ctx.Done() check per iteration, or annotate //smlint:bounded <why>")
			}
			checkLoops(pass, loop.Body, checked)
			return false
		case *ast.RangeStmt:
			// Ranges are bounded; still propagate any check they perform.
			checkLoops(pass, loop.Body, enclosingChecked || hasCtxCheck(pass, loop.Body))
			return false
		}
		return true
	})
}

// unboundedFor reports whether the loop's shape cannot be proven to
// terminate by local inspection: no condition, or a condition-only loop
// whose condition re-evaluates mutable state (a call such as h.Len() or
// len(queue)) or a bare boolean flag.
func unboundedFor(loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return true
	}
	if loop.Init != nil || loop.Post != nil {
		return false // three-clause counter loop
	}
	if _, isFlag := ast.Unparen(loop.Cond).(*ast.Ident); isFlag {
		return true
	}
	hasCall := false
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			hasCall = true
		}
		return !hasCall
	})
	return hasCall
}

// hasCtxCheck reports whether the subtree observes a context: a
// Done/Err/Deadline call on a context.Context value, or any call passing
// a context.Context argument (delegating the check to the callee).
func hasCtxCheck(pass *Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Err", "Done", "Deadline":
				if tv, ok := pass.Info.Types[sel.X]; ok && isContext(tv.Type) {
					found = true
					return false
				}
			}
		}
		for _, arg := range call.Args {
			if tv, ok := pass.Info.Types[arg]; ok && isContext(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isContext(t types.Type) bool { return TypeIs(t, "context", "Context") }
