// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, one entry per benchmark result:
//
//	go test -run XXX -bench=. -benchtime=1x ./... | benchjson > BENCH.json
//
// Each entry carries the benchmark name (GOMAXPROCS suffix stripped), the
// iteration count, and ns/op, plus B/op and allocs/op when -benchmem was
// set. Sub-benchmarks whose final "/"-separated segment names a routing
// strategy (flat, hier, auto) additionally get that segment as a variant
// tag, so one benchmark family's strategies plot as separate series. CI
// uses it to persist the perf trajectory as a build artifact.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Entry is one benchmark result. Benchmark keeps the full sub-benchmark
// path; Variant repeats the final path segment when it names a routing
// strategy, tagging the entry as one series of a multi-strategy family.
type Entry struct {
	Benchmark   string  `json:"benchmark"`
	Variant     string  `json:"variant,omitempty"`
	Ops         int64   `json:"op"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// variants are the recognized variant tags — the routing strategies the
// superblue benchmarks fan out over.
var variants = map[string]bool{"flat": true, "hier": true, "auto": true}

// variantOf returns the benchmark name's final "/"-separated segment when
// it is a recognized variant tag, else "".
func variantOf(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 && variants[name[i+1:]] {
		return name[i+1:]
	}
	return ""
}

// benchLine matches e.g.
//
//	BenchmarkEvaluateSerialC880-8   1   123456789 ns/op
//	BenchmarkRouteNet   5   361077773 ns/op   7822456 B/op   8407 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func run(in io.Reader, out io.Writer) error {
	entries := []Entry{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ops, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad iteration count in %q: %v", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		e := Entry{Benchmark: m[1], Variant: variantOf(m[1]), Ops: ops, NsPerOp: ns}
		if m[4] != "" {
			v, err := strconv.ParseInt(m[4], 10, 64)
			if err != nil {
				return fmt.Errorf("bad B/op in %q: %v", sc.Text(), err)
			}
			e.BytesPerOp = &v
		}
		if m[5] != "" {
			v, err := strconv.ParseInt(m[5], 10, 64)
			if err != nil {
				return fmt.Errorf("bad allocs/op in %q: %v", sc.Text(), err)
			}
			e.AllocsPerOp = &v
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(out, string(b))
	return err
}
