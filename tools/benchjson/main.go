// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, one entry per benchmark result:
//
//	go test -run XXX -bench=. -benchtime=1x ./... | benchjson > BENCH.json
//
// Each entry carries the benchmark name (GOMAXPROCS suffix stripped), the
// iteration count, and ns/op, plus B/op and allocs/op when -benchmem was
// set. CI uses it to persist the perf trajectory as a build artifact.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Entry is one benchmark result.
type Entry struct {
	Benchmark   string  `json:"benchmark"`
	Ops         int64   `json:"op"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkEvaluateSerialC880-8   1   123456789 ns/op
//	BenchmarkRouteNet   5   361077773 ns/op   7822456 B/op   8407 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func run(in io.Reader, out io.Writer) error {
	entries := []Entry{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ops, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad iteration count in %q: %v", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		e := Entry{Benchmark: m[1], Ops: ops, NsPerOp: ns}
		if m[4] != "" {
			v, err := strconv.ParseInt(m[4], 10, 64)
			if err != nil {
				return fmt.Errorf("bad B/op in %q: %v", sc.Text(), err)
			}
			e.BytesPerOp = &v
		}
		if m[5] != "" {
			v, err := strconv.ParseInt(m[5], 10, 64)
			if err != nil {
				return fmt.Errorf("bad allocs/op in %q: %v", sc.Text(), err)
			}
			e.AllocsPerOp = &v
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(out, string(b))
	return err
}
