package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: splitmfg
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEvaluateSerialC880-8   	       1	 123456789 ns/op
BenchmarkEvaluateParallelC880   	       3	  45678901.5 ns/op
BenchmarkRouteNet-4   	       5	 361077773 ns/op	 7822456 B/op	    8407 allocs/op
BenchmarkSuperblueRoute/superblue18/scale200/flat-8   	       1	 4655000000 ns/op
BenchmarkSuperblueRoute/superblue18/scale200/hier-8   	       1	 2250000000 ns/op
PASS
ok  	splitmfg	1.234s
`

func TestRunParsesBenchOutput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	if err := json.Unmarshal([]byte(out.String()), &entries); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(entries) != 5 {
		t.Fatalf("parsed %d entries, want 5: %+v", len(entries), entries)
	}
	first := entries[0]
	if first.Benchmark != "BenchmarkEvaluateSerialC880" || first.Ops != 1 || first.NsPerOp != 123456789 {
		t.Fatalf("first entry = %+v", first)
	}
	if entries[1].NsPerOp != 45678901.5 {
		t.Fatalf("fractional ns/op lost: %+v", entries[1])
	}
	third := entries[2]
	if third.Benchmark != "BenchmarkRouteNet" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %+v", third)
	}
	if third.BytesPerOp == nil || *third.BytesPerOp != 7822456 ||
		third.AllocsPerOp == nil || *third.AllocsPerOp != 8407 {
		t.Fatalf("benchmem fields wrong: %+v", third)
	}
	if third.Variant != "" {
		t.Fatalf("non-strategy benchmark got a variant tag: %+v", third)
	}
	flat, hier := entries[3], entries[4]
	if flat.Benchmark != "BenchmarkSuperblueRoute/superblue18/scale200/flat" || flat.Variant != "flat" {
		t.Fatalf("flat series entry = %+v", flat)
	}
	if hier.Variant != "hier" || hier.NsPerOp != 2250000000 {
		t.Fatalf("hier series entry = %+v", hier)
	}
}

func TestRunEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("no benchmarks here\n"), &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("empty input should yield [], got %q", out.String())
	}
}
