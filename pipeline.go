package splitmfg

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"splitmfg/internal/attack/crouting"
	"splitmfg/internal/attack/engine"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	defengine "splitmfg/internal/defense/engine"
	"splitmfg/internal/defense/randomize"
	"splitmfg/internal/flow"
	"splitmfg/internal/route"
)

// Pipeline is the package's entry point: a configured instance of the
// paper's split-manufacturing flow. Build one with New and functional
// options, then call Protect, Attack, or Evaluate. A Pipeline is immutable
// and safe for concurrent use.
type Pipeline struct {
	cfg pipelineConfig
	lib *cell.Library
}

// New builds a Pipeline. Zero-valued settings resolve per design when an
// entry point runs (e.g. lift layer 6 and a 20% PPA budget for ISCAS
// designs, 8 and 5% for superblue).
func New(opts ...Option) *Pipeline {
	cfg := defaultPipelineConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if fn := cfg.progress; fn != nil {
		// Serialize the user's hook across every entry point of this
		// Pipeline, not just within one call, so concurrent Protect/Evaluate
		// calls keep the documented no-locking-needed guarantee.
		var mu sync.Mutex
		cfg.progress = func(ev ProgressEvent) {
			mu.Lock()
			defer mu.Unlock()
			fn(ev)
		}
	}
	return &Pipeline{cfg: cfg, lib: cell.NewNangate45Like()}
}

// flowConfig resolves the pipeline settings against a design's
// recommendations.
func (p *Pipeline) flowConfig(d *Design) flow.Config {
	c := p.cfg
	fc := flow.Config{
		LiftLayer:        c.liftLayer,
		UtilPercent:      c.utilPercent,
		Seed:             c.seed,
		PPABudgetPercent: c.budget,
		TargetOER:        c.targetOER,
		PatternWords:     c.patternWords,
		SplitLayers:      c.splitLayers,
		MaxAttempts:      c.maxAttempts,
		RouteParallelism: c.routePar,
		RouteStrategy:    route.Strategy(c.routeStrat),
		Progress:         c.progress,
	}
	if fc.LiftLayer == 0 {
		fc.LiftLayer = d.recLift
	}
	if fc.UtilPercent == 0 {
		fc.UtilPercent = d.recUtil
	}
	if fc.PPABudgetPercent == 0 {
		fc.PPABudgetPercent = d.recBudget
	}
	return fc
}

func (p *Pipeline) corrOptions(d *Design) correction.Options {
	fc := p.flowConfig(d)
	return correction.Options{LiftLayer: fc.LiftLayer, UtilPercent: fc.UtilPercent, Seed: fc.Seed,
		RouteOpt: route.Options{Parallelism: fc.RouteParallelism, Strategy: fc.RouteStrategy}}
}

// Protect runs the full Fig.-2 protection flow on the design: randomize to
// OER ≈ 100%, place and route the erroneous netlist with embedded
// correction cells, lift the randomized nets, restore true functionality
// through the BEOL, escalating randomization against the PPA budget. The
// context is honored at every stage boundary.
func (p *Pipeline) Protect(ctx context.Context, d *Design) (*ProtectResult, error) {
	fc := p.flowConfig(d)
	res, err := flow.Protect(ctx, d.nl, p.lib, fc)
	if err != nil {
		return nil, err
	}
	return &ProtectResult{design: d, cfg: fc, res: res}, nil
}

// Evaluate runs the configured attacker engines (WithAttackers, default
// the network-flow proximity attack) on the layout at each configured
// split layer (default M3/M4/M5), averaging CCR/OER/HD exactly like the
// paper's Tables 4 and 5. Layers are attacked concurrently
// (WithParallelism) with per-(layer, engine) derived seeds, so the report
// is identical at every parallelism level.
func (p *Pipeline) Evaluate(ctx context.Context, l *Layout) (*SecurityReport, error) {
	opt := p.evalOptions()
	opt.OnlyPins = l.onlyPins // protected layouts score their randomized sinks only
	sec, err := flow.EvaluateSecurity(ctx, l.d, l.ref, opt)
	if err != nil {
		return nil, err
	}
	rep := sec.Report(l.name, opt)
	return &rep, nil
}

func (p *Pipeline) evalOptions() flow.EvalOptions {
	c := p.cfg
	return flow.EvalOptions{
		SplitLayers:  c.splitLayers,
		Attackers:    c.attackers,
		Seed:         c.seed,
		PatternWords: c.patternWords,
		Parallelism:  c.parallelism,
		Progress:     c.progress,
	}
}

// Attackers lists the registered attacker engines, sorted by name. Any of
// them can be selected with WithAttackers; the set ships with "proximity"
// (network-flow, the ISCAS adversary), "crouting" (routing-centric
// candidate lists, the superblue adversary — metrics-only), "random" (the
// chance baseline), "greedy" (direction-aware nearest driver), and
// "ensemble" (majority vote of proximity+greedy+random).
func Attackers() []string { return engine.Names() }

// ParseAttackers parses a comma-separated attacker-engine list (e.g.
// "proximity,greedy"), trimming whitespace around names. It rejects an
// effectively empty list and any name not in the registry, naming the
// registry in the error — the shared front door for every CLI -attacker
// flag, so all front-ends validate identically and fail before any heavy
// work starts.
func ParseAttackers(s string) ([]string, error) {
	names := splitList(s)
	if len(names) == 0 {
		return nil, fmt.Errorf("splitmfg: empty attacker list %q", s)
	}
	if _, err := engine.Resolve(names); err != nil {
		return nil, err
	}
	return names, nil
}

// Defenses lists the registered defense schemes, sorted by name. Any of
// them can be selected with WithDefenses as a row of Matrix; the set ships
// with the paper's proposed "randomize-correction" scheme, the
// "naive-lifted" baseline, and the prior-art comparison points
// ("placement-perturbation", the four "sengupta-*" strategies,
// "pin-swapping", "routing-perturbation", "synergistic",
// "routing-blockage").
func Defenses() []string { return defengine.Names() }

// ParseDefenses parses a comma-separated defense-scheme list (e.g.
// "randomize-correction,pin-swapping"), trimming whitespace around names.
// It rejects an effectively empty list and any name not in the registry,
// naming the registry in the error — the shared front door for every CLI
// -defense flag, so all front-ends validate identically and fail before
// any heavy work starts.
func ParseDefenses(s string) ([]string, error) {
	names := splitList(s)
	if len(names) == 0 {
		return nil, fmt.Errorf("splitmfg: empty defense list %q", s)
	}
	if _, err := defengine.Resolve(names); err != nil {
		return nil, err
	}
	return names, nil
}

// splitList splits a comma-separated list, trimming whitespace and
// dropping empty elements.
func splitList(s string) []string {
	var names []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			names = append(names, part)
		}
	}
	return names
}

// Matrix builds every configured defense (WithDefenses, default the
// paper's randomize-correction scheme) on the design and runs every
// configured attacker (WithAttackers) against each of them at each
// configured split layer — the defense×attacker cross product behind the
// paper's Tables 4 and 5. Rows are defenses (with PPA overheads against
// the unprotected baseline), columns are attackers, and each cell averages
// CCR/OER/HD over the split layers. Defense rows and split layers are
// evaluated concurrently (WithParallelism) with per-(defense, attacker,
// layer) derived seeds, so the report is byte-identical at every
// parallelism level.
func (p *Pipeline) Matrix(ctx context.Context, d *Design) (*MatrixReport, error) {
	opt := p.matrixOptions(d)
	res, err := flow.EvaluateMatrix(ctx, d.nl, p.lib, opt)
	if err != nil {
		return nil, err
	}
	rep := res.Report(d.name, opt)
	return &rep, nil
}

func (p *Pipeline) matrixOptions(d *Design) flow.MatrixOptions {
	c := p.cfg
	fc := p.flowConfig(d)
	return flow.MatrixOptions{
		Defenses:         c.defenses,
		Attackers:        c.attackers,
		SplitLayers:      c.splitLayers,
		Seed:             c.seed,
		PatternWords:     c.patternWords,
		Parallelism:      c.parallelism,
		LiftLayer:        fc.LiftLayer,
		UtilPercent:      fc.UtilPercent,
		TargetOER:        c.targetOER,
		Fraction:         c.fraction,
		RouteParallelism: c.routePar,
		RouteStrategy:    route.Strategy(c.routeStrat),
		Progress:         c.progress,
	}
}

// Suite fans the full (benchmark × defense × attacker × seed-replicate)
// cross product behind the paper's Tables 4/5 through one bounded
// work-stealing worker pool with a content-addressed result cache: each
// benchmark's unprotected baseline is built once for the whole suite (not
// once per defense or replicate), and repeated cells are served from the
// cache. WithReplicates(n) runs every (benchmark, defense) cell under n
// derived seed streams and reports mean ± standard deviation; the report
// is byte-identical at every parallelism level. Suite-level progress
// events (StageSuiteBaseline, StageSuiteCell) flow through the configured
// WithProgress hook.
func (p *Pipeline) Suite(ctx context.Context, designs []*Design) (*SuiteReport, error) {
	opt := p.suiteOptions(designs)
	res, err := flow.EvaluateSuite(ctx, p.lib, opt)
	if err != nil {
		return nil, err
	}
	rep := res.Report(opt)
	return &rep, nil
}

func (p *Pipeline) suiteOptions(designs []*Design) flow.SuiteOptions {
	c := p.cfg
	opt := flow.SuiteOptions{
		Defenses:         c.defenses,
		Attackers:        c.attackers,
		SplitLayers:      c.splitLayers,
		Seed:             c.seed,
		Replicates:       c.replicates,
		PatternWords:     c.patternWords,
		Parallelism:      c.parallelism,
		TargetOER:        c.targetOER,
		Fraction:         c.fraction,
		RouteParallelism: c.routePar,
		RouteStrategy:    route.Strategy(c.routeStrat),
		CacheDir:         c.cacheDir,
		Progress:         c.progress,
	}
	for _, d := range designs {
		fc := p.flowConfig(d)
		opt.Benchmarks = append(opt.Benchmarks, flow.SuiteBenchmark{
			Name:        d.name,
			Netlist:     d.nl,
			Scale:       d.scale,
			LiftLayer:   fc.LiftLayer,
			UtilPercent: fc.UtilPercent,
		})
	}
	return opt
}

// Attack takes the attacker's perspective on an unprotected design: build
// the baseline layout and evaluate it. Equivalent to Baseline followed by
// Evaluate.
func (p *Pipeline) Attack(ctx context.Context, d *Design) (*SecurityReport, error) {
	l, err := p.Baseline(ctx, d)
	if err != nil {
		return nil, err
	}
	return p.Evaluate(ctx, l)
}

// Baseline places and routes the design unprotected — the reference layout
// every comparison starts from.
func (p *Pipeline) Baseline(ctx context.Context, d *Design) (*Layout, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	copt := p.corrOptions(d)
	if fn := p.cfg.progress; fn != nil {
		copt.Observe = func(stage string, elapsed time.Duration) {
			fn(ProgressEvent{Stage: Stage(stage), Detail: "baseline", Elapsed: elapsed})
		}
		copt.RouteOpt.OnWave = func(wave, waves, nets int, elapsed time.Duration) {
			fn(ProgressEvent{Stage: StageRouteWave, Elapsed: elapsed,
				Detail: fmt.Sprintf("baseline wave %d/%d: %d nets", wave, waves, nets)})
		}
	}
	bl, err := correction.BuildOriginal(d.nl, p.lib, copt)
	if err != nil {
		return nil, err
	}
	return &Layout{name: d.name, d: bl, ref: d.nl}, nil
}

// Randomized builds the proposed scheme's protected layout directly — one
// randomization pass to the target OER plus correction-cell construction —
// without the baseline layout, PPA accounting, or escalation that Protect
// performs. It is the attacker's-perspective fast path: when only the
// layout under attack matters, it does roughly half the work of Protect.
func (p *Pipeline) Randomized(ctx context.Context, d *Design) (*Layout, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.cfg.seed))
	r, err := randomize.Randomize(d.nl, rng, randomize.Options{TargetOER: p.cfg.targetOER})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	copt := p.corrOptions(d)
	if fn := p.cfg.progress; fn != nil {
		copt.Observe = func(stage string, elapsed time.Duration) {
			fn(ProgressEvent{Stage: Stage(stage), Detail: "protected", Elapsed: elapsed})
		}
		copt.RouteOpt.OnWave = func(wave, waves, nets int, elapsed time.Duration) {
			fn(ProgressEvent{Stage: StageRouteWave, Elapsed: elapsed,
				Detail: fmt.Sprintf("protected wave %d/%d: %d nets", wave, waves, nets)})
		}
	}
	pr, err := correction.BuildProtected(d.nl, r, p.lib, copt)
	if err != nil {
		return nil, err
	}
	return protectedOf(d.name, d.nl, pr), nil
}

// NaiveLifted builds the paper's naive-lifting baseline: the same sink
// pins the proposed scheme would protect are lifted through pass-through
// cells, but the netlist is left untouched.
func (p *Pipeline) NaiveLifted(ctx context.Context, d *Design) (*Layout, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.cfg.seed))
	r, err := randomize.Randomize(d.nl, rng, randomize.Options{})
	if err != nil {
		return nil, err
	}
	sinks := correction.SortedPins(r.Protected)
	np, err := correction.BuildNaiveLifted(d.nl, sinks, p.lib, p.corrOptions(d))
	if err != nil {
		return nil, err
	}
	return protectedOf(d.name, d.nl, np), nil
}

// CRoutingReport is the crouting attack's candidate-list metrics at one
// split layer (the paper's Table 3 shape).
type CRoutingReport struct {
	Layer       int             `json:"layer"`
	VPins       int             `json:"vpins"`
	AvgListSize map[int]float64 `json:"avg_list_size"` // bbox -> E[LS]
	MatchInList map[int]float64 `json:"match_in_list"` // bbox -> fraction with true partner listed
}

// CRouting runs the routing-centric crouting attack on the layout at each
// configured split layer, reporting candidate-list sizes and
// match-in-list rates per bounding box.
func (p *Pipeline) CRouting(ctx context.Context, l *Layout) ([]CRoutingReport, error) {
	layers := p.cfg.splitLayers
	if len(layers) == 0 {
		layers = []int{3, 4, 5}
	}
	var out []CRoutingReport
	for _, layer := range layers {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sv, err := l.d.Split(layer)
		if err != nil {
			return nil, err
		}
		res := crouting.Attack(l.d, sv, l.ref, crouting.DefaultOptions())
		out = append(out, CRoutingReport{
			Layer: layer, VPins: res.NumVPins,
			AvgListSize: res.AvgListSize, MatchInList: res.MatchInList,
		})
	}
	return out, nil
}
