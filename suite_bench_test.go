package splitmfg

import (
	"context"
	"testing"
)

// BenchmarkSuiteIscasPair measures one small two-benchmark, two-replicate
// suite evaluation end to end — scheduler, shared-baseline cache, defense
// builds, attacker panel, aggregation. CI runs it at -benchtime=1x and
// publishes the result as BENCH_suite.json via tools/benchjson, so the
// suite path's perf trajectory is tracked alongside the evaluate path:
//
//	go test -run XXX -bench SuiteIscasPair -benchtime=3x
func BenchmarkSuiteIscasPair(b *testing.B) {
	var designs []*Design
	for _, name := range []string{"c432", "c880"} {
		d, err := LoadBenchmark(name)
		if err != nil {
			b.Fatal(err)
		}
		designs = append(designs, d)
	}
	pipe := New(
		WithSeed(1),
		WithPatternWords(16),
		WithReplicates(2),
		WithDefenses("randomize-correction", "pin-swapping"),
		WithAttackers("proximity", "random"),
	)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Suite(ctx, designs); err != nil {
			b.Fatal(err)
		}
	}
}
