// superblue_routing reproduces the routing-centric part of the evaluation
// (Tables 1-3, Figs. 4-5) on one superblue-like design: distances between
// truly connected gates, per-boundary via deltas, per-layer wirelength of
// the randomized nets, and the crouting attack's candidate-list metrics.
package main

import (
	"flag"
	"fmt"
	"log"

	"splitmfg"
)

func main() {
	design := flag.String("design", "superblue18", "superblue design name")
	scale := flag.Int("scale", 400, "scale divisor (1 = published size; 400 runs in seconds)")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	cfg := splitmfg.ExperimentConfig{Seed: *seed, SuperblueScale: *scale}

	t1, err := splitmfg.RunExperiment("table1", cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Print only this design's rows.
	fmt.Println("Distances between connected gates (Table 1 for", *design, "):")
	for _, row := range t1.Rows {
		if row[0] == *design {
			fmt.Printf("  %-9s mean %s  median %s  std %s  (paper %s)\n", row[1], row[2], row[3], row[4], row[5])
		}
	}
	fmt.Println()

	f5, err := splitmfg.Fig5(*design, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(f5.Render())
	fmt.Println()

	t3, err := splitmfg.RunExperiment("table3", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("crouting attack (Table 3 for", *design, "):")
	for _, row := range t3.Rows {
		if row[0] == *design {
			fmt.Printf("  %-9s vpins %-6s E[LS] %s/%s/%s  match-in-list %s..%s\n",
				row[1], row[2], row[3], row[4], row[5], row[6], row[7])
		}
	}
}
