// iscas_protect reproduces the Tables 4/5 style study on a chosen subset
// of ISCAS-85 benchmarks: it attacks the original layout, three
// representative prior defenses, and the proposed scheme, printing
// CCR/OER/HD averaged over splits after M3/M4/M5.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"splitmfg"
)

func main() {
	subset := flag.String("subset", "c432,c880,c1908", "ISCAS benchmarks to study")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	cfg := splitmfg.ExperimentConfig{
		Seed: *seed, ISCASSubset: strings.Split(*subset, ","), PatternWords: 128,
	}

	fmt.Println("Attacking each defense variant with the network-flow proximity attack")
	fmt.Println("(CCR/OER/HD in %, averaged over splits after M3, M4, M5)")
	fmt.Println()
	for _, variant := range []string{"original", "placement-perturbation", "g-color", "synergistic", "proposed"} {
		rows, err := splitmfg.SecurityStudy(variant, cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			fmt.Printf("%-8s %-24s CCR %5.1f  OER %5.1f  HD %5.1f  (%d fragments)\n",
				r.Benchmark, r.Variant, r.CCR, r.OER, r.HD, r.Frags)
		}
		fmt.Println()
	}
	fmt.Println("Paper's qualitative claim: original is broadly recoverable, prior")
	fmt.Println("defenses only dampen the attack, the proposed scheme drives CCR to ≈0")
	fmt.Println("while OER stays ≈100% — the attacker reconstructs a netlist that is")
	fmt.Println("wrong on essentially every input pattern.")
}
