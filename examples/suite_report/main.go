// suite_report runs the multi-benchmark, multi-seed suite behind the
// paper's Tables 4/5 aggregates on a small ISCAS subset: every benchmark ×
// defense × attacker cell is evaluated under several derived seed streams
// through one shared worker pool with a result cache (each benchmark's
// unprotected baseline is built exactly once), and the aggregated report
// carries mean ± standard deviation per cell.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"splitmfg"
)

func main() {
	subset := flag.String("subset", "c432,c880,c1908", "ISCAS benchmarks to sweep")
	replicates := flag.Int("replicates", 3, "seed replicates per (benchmark, defense) cell")
	seed := flag.Int64("seed", 1, "master seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var designs []*splitmfg.Design
	for _, name := range strings.Split(*subset, ",") {
		d, err := splitmfg.LoadBenchmark(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		designs = append(designs, d)
	}

	pipe := splitmfg.New(
		splitmfg.WithSeed(*seed),
		splitmfg.WithPatternWords(64),
		splitmfg.WithReplicates(*replicates),
		splitmfg.WithDefenses("randomize-correction", "naive-lifted", "pin-swapping"),
		splitmfg.WithAttackers("proximity", "random"),
		splitmfg.WithProgress(splitmfg.ProgressLogger(os.Stderr)),
	)
	rep, err := pipe.Suite(ctx, designs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(splitmfg.RenderSuite(rep))
	fmt.Println()
	fmt.Println("Every number is mean ± std over the seed replicates (aggregate rows:")
	fmt.Println("across benchmarks). The cache line shows how much work the shared")
	fmt.Println("scheduler avoided — each benchmark's unprotected baseline is built")
	fmt.Println("once for the whole suite, not once per defense × replicate.")
}
