// attack_lab takes the attacker's perspective: sweep the split layer from
// M3 to M8 on one design (original and protected) and watch how the
// exposed surface (vpins, open fragments) and the attack's success change.
// This is the experiment behind the paper's argument that splitting after
// higher layers — which is cheaper to manufacture — is normally *less*
// secure, unless the proposed scheme is used.
//
// -attacker selects any registered engine combination, so the same sweep
// doubles as a threat-model comparison: e.g.
//
//	go run ./examples/attack_lab -bench c880 -attacker proximity,greedy,random
//
// -defense adds the defense dimension: after the sweep, the selected
// defense schemes are each built and attacked by every selected engine at
// M3/M4/M5, printing the defense×attacker cross matrix the paper's
// Tables 4/5 report:
//
//	go run ./examples/attack_lab -bench c880 -defense randomize-correction,pin-swapping,sengupta-gcolor
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"splitmfg"
)

func main() {
	name := flag.String("bench", "c1908", "ISCAS benchmark")
	seed := flag.Int64("seed", 1, "seed")
	attackers := flag.String("attacker", "proximity",
		"comma-separated attacker engines (registry: "+strings.Join(splitmfg.Attackers(), ", ")+")")
	defenses := flag.String("defense", "",
		"comma-separated defense schemes for an extra cross-matrix section (registry: "+
			strings.Join(splitmfg.Defenses(), ", ")+")")
	flag.Parse()

	engines, err := splitmfg.ParseAttackers(*attackers)
	if err != nil {
		log.Fatal(err)
	}
	var schemes []string
	if *defenses != "" {
		if schemes, err = splitmfg.ParseDefenses(*defenses); err != nil {
			log.Fatal(err)
		}
	}

	ctx := context.Background()
	design, err := splitmfg.LoadBenchmark(*name)
	if err != nil {
		log.Fatal(err)
	}
	// One pipeline sweeping M3..M8; a shallow pattern depth keeps the
	// twelve per-layer simulations fast.
	pipe := splitmfg.New(
		splitmfg.WithSeed(*seed),
		splitmfg.WithLiftLayer(6),
		splitmfg.WithUtilization(70),
		splitmfg.WithSplitLayers(3, 4, 5, 6, 7, 8),
		splitmfg.WithAttackers(engines...),
		splitmfg.WithPatternWords(32),
		splitmfg.WithMaxAttempts(1),
	)

	res, err := pipe.Protect(ctx, design)
	if err != nil {
		log.Fatal(err)
	}
	orig, err := pipe.Evaluate(ctx, res.BaselineLayout())
	if err != nil {
		log.Fatal(err)
	}
	prot, err := pipe.Evaluate(ctx, res.ProtectedLayout())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: split-layer sweep (attackers: %s)\n", *name, strings.Join(engines, ", "))
	fmt.Printf("%-6s | %-28s | %-28s\n", "split", "original (vpins/open/CCR%)", "proposed (vpins/open/CCR%)")
	for i, o := range orig.PerLayer {
		p := prot.PerLayer[i]
		fmt.Printf("M%-5d | %5d / %4d / %5.1f%%       | %5d / %4d / %5.1f%%\n",
			o.Layer, o.VPins, o.Fragments, o.CCRPercent, p.VPins, p.Fragments, p.CCRPercent)
	}
	if len(engines) > 1 {
		fmt.Println()
		fmt.Println("per-attacker averages over the sweep (original vs proposed CCR%):")
		for i, ar := range orig.PerAttacker {
			pr := prot.PerAttacker[i]
			if !ar.Scored && !pr.Scored {
				fmt.Printf("  %-10s metrics-only (e.g. original: %v)\n", ar.Attacker, ar.Metrics)
				continue
			}
			fmt.Printf("  %-10s %5.1f%% -> %5.1f%%\n", ar.Attacker, ar.CCRPercent, pr.CCRPercent)
		}
	}
	if len(schemes) > 0 {
		// The defense dimension: every selected scheme against every
		// selected attacker, averaged over the paper's M3/M4/M5 splits.
		mpipe := splitmfg.New(
			splitmfg.WithSeed(*seed),
			splitmfg.WithLiftLayer(6),
			splitmfg.WithUtilization(70),
			splitmfg.WithDefenses(schemes...),
			splitmfg.WithAttackers(engines...),
			splitmfg.WithPatternWords(32),
		)
		rep, err := mpipe.Matrix(ctx, design)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(splitmfg.RenderMatrix(rep))
	}

	fmt.Println()
	fmt.Println("Reading: for the original design the exposure shrinks with higher")
	fmt.Println("splits only because fewer nets cross; for the protected design the")
	fmt.Println("randomized nets cross every boundary up to M6 and still resist.")
}
