// attack_lab takes the attacker's perspective: sweep the split layer from
// M3 to M8 on one design (original and protected) and watch how the
// exposed surface (vpins, open fragments) and the attack's success change.
// This is the experiment behind the paper's argument that splitting after
// higher layers — which is cheaper to manufacture — is normally *less*
// secure, unless the proposed scheme is used.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"splitmfg/internal/attack/proximity"
	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/defense/randomize"
	"splitmfg/internal/metrics"
)

func main() {
	name := flag.String("bench", "c1908", "ISCAS benchmark")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	nl, err := bench.ISCAS85(*name)
	if err != nil {
		log.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	copt := correction.Options{LiftLayer: 6, UtilPercent: 70, Seed: *seed}

	orig, err := correction.BuildOriginal(nl, lib, copt)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	r, err := randomize.Randomize(nl, rng, randomize.Options{})
	if err != nil {
		log.Fatal(err)
	}
	prot, err := correction.BuildProtected(nl, r, lib, copt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: split-layer sweep (network-flow attack)\n", *name)
	fmt.Printf("%-6s | %-28s | %-28s\n", "split", "original (vpins/open/CCR%)", "proposed (vpins/open/CCR%)")
	for layer := 3; layer <= 8; layer++ {
		line := fmt.Sprintf("M%-5d", layer)
		for i, d := range []*struct {
			des    interface{}
			isProt bool
		}{{orig, false}, {prot.Design, true}} {
			_ = i
			design := orig
			if d.isProt {
				design = prot.Design
			}
			sv, err := design.Split(layer)
			if err != nil {
				log.Fatal(err)
			}
			res := proximity.Attack(design, sv, proximity.DefaultOptions())
			var ccr metrics.CCRResult
			if d.isProt {
				// score protected sinks only
				truth := metrics.TrueAssignment(design, sv, nl)
				protPins := prot.ProtectedSinks()
				for _, fid := range sv.SinkFrags() {
					hit := false
					for _, sp := range sv.Frags[fid].SinkPins() {
						if protPins[sp.Ref] {
							hit = true
							break
						}
					}
					if !hit {
						continue
					}
					ccr.Protected++
					if got, ok := res.Assignment[fid]; ok && got >= 0 && got == truth[fid] {
						ccr.Correct++
					}
				}
				if ccr.Protected > 0 {
					ccr.CCR = float64(ccr.Correct) / float64(ccr.Protected)
				}
			} else {
				ccr = metrics.CCR(design, sv, nl, res.Assignment)
			}
			line += fmt.Sprintf(" | %5d / %4d / %5.1f%%      ", len(sv.VPins), ccr.Protected, ccr.CCR*100)
		}
		fmt.Println(line)
	}
	fmt.Println()
	fmt.Println("Reading: for the original design the exposure shrinks with higher")
	fmt.Println("splits only because fewer nets cross; for the protected design the")
	fmt.Println("randomized nets cross every boundary up to M6 and still resist.")
}
