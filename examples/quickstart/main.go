// Quickstart: protect one ISCAS-85 benchmark with the BEOL-restoration
// scheme, attack both the original and the protected layout with the
// network-flow proximity attack, and print the paper's headline metrics —
// entirely through the public splitmfg API.
package main

import (
	"context"
	"fmt"
	"log"

	"splitmfg"
)

func main() {
	ctx := context.Background()

	// 1. A benchmark netlist (c432-class stand-in with the published size).
	design, err := splitmfg.LoadBenchmark("c432")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("design:", design.Name(), design.Stats())

	// 2. A pipeline configured like the paper's ISCAS setup: randomize to
	// OER≈100%, place and route the erroneous netlist with correction
	// cells, lift to M6, restore the truth through the BEOL, all within a
	// 20% PPA budget.
	pipe := splitmfg.New(
		splitmfg.WithSeed(42),
		splitmfg.WithLiftLayer(6),
		splitmfg.WithUtilization(70),
		splitmfg.WithPPABudget(20),
	)
	res, err := pipe.Protect(ctx, design)
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Report()
	fmt.Printf("protected with %d swaps; erroneous-netlist OER = %.3f\n", rep.Swaps, rep.ErroneousOER)
	fmt.Printf("PPA overheads: area %.1f%%, power %.1f%%, delay %.1f%%\n",
		rep.AreaOHPct, rep.PowerOHPct, rep.DelayOHPct)

	// 3. Attack both layouts (split after M3/M4/M5, averaged, attacked in
	// parallel).
	orig, err := pipe.Evaluate(ctx, res.BaselineLayout())
	if err != nil {
		log.Fatal(err)
	}
	prot, err := pipe.Evaluate(ctx, res.ProtectedLayout())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack vs original : CCR %5.1f%%  OER %5.1f%%  HD %5.1f%%\n",
		orig.CCRPercent, orig.OERPercent, orig.HDPercent)
	fmt.Printf("attack vs protected: CCR %5.1f%%  OER %5.1f%%  HD %5.1f%%\n",
		prot.CCRPercent, prot.OERPercent, prot.HDPercent)

	// 4. The correctness guarantee: the BEOL-restored design equals the
	// original netlist exactly.
	ok, err := res.VerifyRestoration()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BEOL restoration recovers the original netlist:", ok)
}
