// Quickstart: protect one ISCAS-85 benchmark with the BEOL-restoration
// scheme, attack both the original and the protected layout with the
// network-flow proximity attack, and print the paper's headline metrics.
package main

import (
	"fmt"
	"log"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/flow"
)

func main() {
	// 1. A benchmark netlist (c432-class stand-in with the published size).
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("design:", nl.Name, nl.ComputeStats())

	// 2. Run the full protection flow: randomize to OER≈100%, place and
	// route the erroneous netlist with correction cells, lift to M6,
	// restore the truth through the BEOL, all within a 20% PPA budget.
	lib := cell.NewNangate45Like()
	res, err := flow.Protect(nl, lib, flow.Config{
		LiftLayer: 6, UtilPercent: 70, Seed: 42, PPABudgetPercent: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protected with %d swaps; erroneous-netlist OER = %.3f\n", res.Swaps, res.OER)
	fmt.Printf("PPA overheads: area %.1f%%, power %.1f%%, delay %.1f%%\n",
		res.AreaOH, res.PowerOH, res.DelayOH)

	// 3. Attack both layouts (split after M3/M4/M5, averaged).
	orig, err := flow.EvaluateSecurity(res.Baseline, nl, nil, nil, 42, 256)
	if err != nil {
		log.Fatal(err)
	}
	prot, err := flow.EvaluateSecurity(res.Protected.Design, nl, nil,
		res.Protected.ProtectedSinks(), 42, 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack vs original : CCR %5.1f%%  OER %5.1f%%  HD %5.1f%%\n",
		orig.CCR*100, orig.OER*100, orig.HD*100)
	fmt.Printf("attack vs protected: CCR %5.1f%%  OER %5.1f%%  HD %5.1f%%\n",
		prot.CCR*100, prot.OER*100, prot.HD*100)

	// 4. The correctness guarantee: the BEOL-restored design equals the
	// original netlist exactly.
	rec, err := res.Protected.RestoredNetlist()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BEOL restoration recovers the original netlist:", rec.SameStructure(nl))
}
