package splitmfg

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastOptions keeps API tests quick: c432-scale work, shallow simulation.
func fastOptions(extra ...Option) []Option {
	opts := []Option{
		WithSeed(7),
		WithPatternWords(16),
		WithMaxAttempts(1),
	}
	return append(opts, extra...)
}

// runOnce protects c432 and evaluates its protected layout, returning both
// reports marshalled to JSON.
func runOnce(t *testing.T, opts ...Option) ([]byte, []byte) {
	t.Helper()
	design, err := LoadBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	pipe := New(opts...)
	ctx := context.Background()
	res, err := pipe.Protect(ctx, design)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := pipe.Evaluate(ctx, res.ProtectedLayout())
	if err != nil {
		t.Fatal(err)
	}
	pj, err := MarshalReport(res.Report())
	if err != nil {
		t.Fatal(err)
	}
	sj, err := MarshalReport(sec)
	if err != nil {
		t.Fatal(err)
	}
	return pj, sj
}

// TestReportDeterminism: the same seed and options must produce
// byte-identical JSON reports across independent pipeline instances.
func TestReportDeterminism(t *testing.T) {
	p1, s1 := runOnce(t, fastOptions()...)
	p2, s2 := runOnce(t, fastOptions()...)
	if !bytes.Equal(p1, p2) {
		t.Fatalf("protect reports differ:\n%s\nvs\n%s", p1, p2)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatalf("security reports differ:\n%s\nvs\n%s", s1, s2)
	}
}

// TestEvaluateSerialEqualsParallel: averaged CCR/OER/HD (and the whole
// per-layer report) must be identical whether layers are attacked serially
// or concurrently.
func TestEvaluateSerialEqualsParallel(t *testing.T) {
	_, serial := runOnce(t, fastOptions(WithParallelism(1))...)
	_, parallel := runOnce(t, fastOptions(WithParallelism(8))...)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("serial vs parallel evaluation reports differ:\n%s\nvs\n%s", serial, parallel)
	}
}

// TestProtectCancellation: a context cancelled mid-flight must abort
// Protect promptly with ctx.Err().
func TestProtectCancellation(t *testing.T) {
	design, err := LoadBenchmark("c880")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())

	// Pre-cancelled context: immediate error.
	cancel()
	if _, err := New(fastOptions()...).Protect(ctx, design); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Protect returned %v, want context.Canceled", err)
	}

	// Cancel on the first progress event: Protect must stop at the next
	// stage boundary rather than finish the escalation loop.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var once sync.Once
	pipe := New(fastOptions(WithProgress(func(ProgressEvent) { once.Do(cancel2) }))...)
	start := time.Now()
	_, err = pipe.Protect(ctx2, design)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancelled Protect returned %v, want context.Canceled", err)
	}
	// Generous bound: a full c880 protect run takes much longer than a
	// single remaining stage.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v, not prompt", elapsed)
	}
}

// TestEvaluateCancellation: a cancelled context aborts Evaluate.
func TestEvaluateCancellation(t *testing.T) {
	design, err := LoadBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	pipe := New(fastOptions()...)
	l, err := pipe.Baseline(context.Background(), design)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pipe.Evaluate(ctx, l); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Evaluate returned %v, want context.Canceled", err)
	}
}

// TestProgressEventOrdering: Protect must report stages in flow order
// within each escalation attempt, and serial Evaluate must report attack
// layers in the requested order.
func TestProgressEventOrdering(t *testing.T) {
	design, err := LoadBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []ProgressEvent
	record := func(ev ProgressEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	pipe := New(fastOptions(WithProgress(record), WithParallelism(1), WithSplitLayers(3, 4, 5))...)
	ctx := context.Background()
	res, err := pipe.Protect(ctx, design)
	if err != nil {
		t.Fatal(err)
	}
	protectEvents := append([]ProgressEvent(nil), events...)
	events = nil
	if _, err := pipe.Evaluate(ctx, res.ProtectedLayout()); err != nil {
		t.Fatal(err)
	}
	attackEvents := append([]ProgressEvent(nil), events...)

	// Baseline build precedes protected work; within an attempt the stages
	// follow the flow order.
	order := map[Stage]int{
		StageRandomize: 0, StagePlace: 1, StageLift: 2, StageRoute: 3,
		StageRestore: 4, StageVerify: 5, StagePPA: 6,
	}
	if len(protectEvents) == 0 {
		t.Fatal("no progress events from Protect")
	}
	if protectEvents[0].Detail != "baseline" || protectEvents[0].Stage != StagePlace {
		t.Fatalf("first event = %+v, want baseline place", protectEvents[0])
	}
	lastAttempt, lastOrder := 0, -1
	for _, ev := range protectEvents {
		if ev.Stage == StageRouteWave {
			// Wave events interleave with the route stage they belong to;
			// they carry their own sub-ordering, not the flow order.
			continue
		}
		if ev.Detail == "baseline" {
			if ev.Attempt != 0 {
				t.Fatalf("baseline event with attempt %d: %+v", ev.Attempt, ev)
			}
			continue
		}
		if ev.Attempt < lastAttempt {
			t.Fatalf("attempt went backwards: %+v after attempt %d", ev, lastAttempt)
		}
		if ev.Attempt > lastAttempt {
			lastAttempt, lastOrder = ev.Attempt, -1
		}
		o, ok := order[ev.Stage]
		if !ok {
			t.Fatalf("unexpected stage %q during Protect", ev.Stage)
		}
		if o <= lastOrder {
			t.Fatalf("stage %q out of order within attempt %d", ev.Stage, ev.Attempt)
		}
		lastOrder = o
	}

	// Serial Evaluate reports attack layers in request order with timings.
	if len(attackEvents) != 3 {
		t.Fatalf("got %d attack events, want 3: %+v", len(attackEvents), attackEvents)
	}
	for i, want := range []int{3, 4, 5} {
		ev := attackEvents[i]
		if ev.Stage != StageAttack || ev.Layer != want {
			t.Fatalf("attack event %d = %+v, want layer %d", i, ev, want)
		}
		if ev.Elapsed <= 0 {
			t.Fatalf("attack event %d has no timing: %+v", i, ev)
		}
	}
}

// TestAttackerCatalog: the engine registry ships at least the five
// documented attackers.
func TestAttackerCatalog(t *testing.T) {
	names := Attackers()
	if len(names) < 5 {
		t.Fatalf("attacker registry has %d entries, want >= 5: %v", len(names), names)
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"proximity", "crouting", "random", "greedy", "ensemble"} {
		if !have[want] {
			t.Fatalf("registry missing %q: %v", want, names)
		}
	}
}

// TestEveryAttackerDeterministicSerialParallel: for every registered
// engine, reports must be byte-identical across runs at a fixed seed, and
// serial evaluation must equal parallel evaluation. This is the engine
// contract the pluggable layer rests on.
func TestEveryAttackerDeterministicSerialParallel(t *testing.T) {
	design, err := LoadBenchmark("c880")
	if err != nil {
		t.Fatal(err)
	}
	// One shared layout under attack; pipelines vary only in attacker and
	// parallelism.
	l, err := New(WithSeed(7)).Baseline(context.Background(), design)
	if err != nil {
		t.Fatal(err)
	}
	evaluate := func(attacker string, parallelism int) []byte {
		t.Helper()
		pipe := New(WithSeed(7), WithPatternWords(16), WithAttackers(attacker),
			WithParallelism(parallelism))
		sec, err := pipe.Evaluate(context.Background(), l)
		if err != nil {
			t.Fatalf("%s: %v", attacker, err)
		}
		b, err := MarshalReport(sec)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, attacker := range Attackers() {
		serial1 := evaluate(attacker, 1)
		serial2 := evaluate(attacker, 1)
		parallel := evaluate(attacker, 8)
		if !bytes.Equal(serial1, serial2) {
			t.Fatalf("%s: serial reports differ across runs:\n%s\nvs\n%s", attacker, serial1, serial2)
		}
		if !bytes.Equal(serial1, parallel) {
			t.Fatalf("%s: serial vs parallel reports differ:\n%s\nvs\n%s", attacker, serial1, parallel)
		}
	}
}

// TestMultiAttackerReportSections: a multi-engine evaluation carries one
// section per engine, in request order, with crouting metrics-only.
func TestMultiAttackerReportSections(t *testing.T) {
	design, err := LoadBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	attackers := []string{"greedy", "crouting", "random"}
	pipe := New(fastOptions(WithAttackers(attackers...))...)
	sec, err := pipe.Attack(context.Background(), design)
	if err != nil {
		t.Fatal(err)
	}
	if len(sec.Attackers) != 3 || sec.Attackers[0] != "greedy" {
		t.Fatalf("report attackers = %v, want %v", sec.Attackers, attackers)
	}
	if len(sec.PerAttacker) != 3 {
		t.Fatalf("got %d per-attacker sections, want 3: %+v", len(sec.PerAttacker), sec.PerAttacker)
	}
	for i, ar := range sec.PerAttacker {
		if ar.Attacker != attackers[i] {
			t.Fatalf("section %d is %q, want %q", i, ar.Attacker, attackers[i])
		}
	}
	if sec.PerAttacker[1].Scored {
		t.Fatal("crouting section claims an assignment score")
	}
	if len(sec.PerAttacker[1].Metrics) == 0 {
		t.Fatal("crouting section has no metrics")
	}
	// greedy is first and scores, so it is the primary: headline tracks it.
	if sec.CCRPercent != sec.PerAttacker[0].CCRPercent {
		t.Fatalf("headline CCR %.3f != primary greedy CCR %.3f",
			sec.CCRPercent, sec.PerAttacker[0].CCRPercent)
	}
}

// TestDefenseCatalog: the defense registry covers all eight scheme
// families the paper compares.
// TestSuiteThreeBenchmarksThreeReplicates is the acceptance shape for the
// suite subsystem: three ISCAS benchmarks under WithReplicates(3) must
// produce a byte-identical aggregated report serial vs parallel, and the
// suite cache must demonstrably avoid recomputing each benchmark's
// unprotected baseline (asserted via the report's hit/miss counters).
func TestSuiteThreeBenchmarksThreeReplicates(t *testing.T) {
	names := []string{"c432", "c880", "c1355"}
	var designs []*Design
	for _, name := range names {
		d, err := LoadBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		designs = append(designs, d)
	}
	opts := fastOptions(
		WithReplicates(3),
		WithDefenses("pin-swapping"),
		WithAttackers("random"),
		WithPatternWords(8),
	)
	ctx := context.Background()
	parallel, err := New(opts...).Suite(ctx, designs)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := New(append(opts, WithParallelism(1))...).Suite(ctx, designs)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := MarshalReport(parallel)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := MarshalReport(serial)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, sb) {
		t.Fatalf("serial and parallel suite reports differ:\n%s\n----\n%s", pb, sb)
	}
	if parallel.Replicates != 3 || len(parallel.PerBenchmark) != len(names) {
		t.Fatalf("suite shape: replicates %d, %d benchmarks", parallel.Replicates, len(parallel.PerBenchmark))
	}
	// 3 benchmarks × 1 defense × 3 replicates: every cell re-requests its
	// benchmark's baseline and must hit; only the 3 baseline builds and
	// the 9 distinct cells miss.
	if parallel.Cache.Misses != 12 || parallel.Cache.Hits != 9 {
		t.Fatalf("cache counters = %+v, want 12 misses / 9 hits (baseline built once per benchmark)", parallel.Cache)
	}
}

func TestDefenseCatalog(t *testing.T) {
	names := Defenses()
	if len(names) < 8 {
		t.Fatalf("defense registry has %d entries, want >= 8: %v", len(names), names)
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{
		"randomize-correction", "naive-lifted", "placement-perturbation",
		"pin-swapping", "routing-perturbation", "synergistic",
		"routing-blockage", "sengupta-gcolor",
	} {
		if !have[want] {
			t.Fatalf("registry missing %q: %v", want, names)
		}
	}
}

func TestParseDefenses(t *testing.T) {
	got, err := ParseDefenses(" randomize-correction , pin-swapping ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "randomize-correction" || got[1] != "pin-swapping" {
		t.Fatalf("ParseDefenses = %v", got)
	}
	for _, bad := range []string{"", " , ", "randomize-correction,bogus"} {
		if _, err := ParseDefenses(bad); err == nil {
			t.Fatalf("ParseDefenses(%q) accepted", bad)
		}
	}
	// The error must name the registry so users can self-serve.
	_, err = ParseDefenses("bogus")
	if err == nil || !strings.Contains(err.Error(), "pin-swapping") {
		t.Fatalf("ParseDefenses error does not list the registry: %v", err)
	}
}

func TestMatrixUnknownDefenseFails(t *testing.T) {
	design, err := LoadBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	pipe := New(fastOptions(WithDefenses("bogus"))...)
	if _, err := pipe.Matrix(context.Background(), design); err == nil {
		t.Fatal("unknown defense accepted")
	}
}

func TestMatrixCancellation(t *testing.T) {
	design, err := LoadBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	pipe := New(fastOptions(WithDefenses("pin-swapping"))...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pipe.Matrix(ctx, design); err == nil {
		t.Fatal("cancelled Matrix returned no error")
	}
}

// TestUnknownAttackerFails: WithAttackers with an unregistered name fails
// Evaluate with an error naming the registry.
func TestUnknownAttackerFails(t *testing.T) {
	design, err := LoadBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	pipe := New(fastOptions(WithAttackers("bogus"))...)
	if _, err := pipe.Attack(context.Background(), design); err == nil {
		t.Fatal("unknown attacker accepted")
	}
}

// TestCatalog: the catalog lists every loadable benchmark and rejects
// unknown names.
func TestCatalog(t *testing.T) {
	names := Benchmarks()
	if len(names) != 14 {
		t.Fatalf("catalog has %d entries, want 14: %v", len(names), names)
	}
	for _, name := range []string{"c432", "superblue18"} {
		d, err := LoadBenchmark(name, WithScale(800))
		if err != nil {
			t.Fatal(err)
		}
		if d.Stats().Gates == 0 {
			t.Fatalf("%s loaded empty", name)
		}
	}
	if _, err := LoadBenchmark("c9999"); err == nil {
		t.Fatal("unknown benchmark loaded")
	}
}

// TestAttackEntryPoint: Pipeline.Attack on an unprotected design recovers
// a meaningful fraction of connections (the paper's baseline observation).
func TestAttackEntryPoint(t *testing.T) {
	design, err := LoadBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	sec, err := New(fastOptions()...).Attack(context.Background(), design)
	if err != nil {
		t.Fatal(err)
	}
	if sec.Fragments == 0 {
		t.Fatal("attack scored no fragments")
	}
	if sec.CCRPercent <= 0 {
		t.Fatalf("attack on unprotected design recovered nothing: %+v", sec)
	}
	if len(sec.PerLayer) != 3 {
		t.Fatalf("expected 3 per-layer reports, got %d", len(sec.PerLayer))
	}
}
