module splitmfg

go 1.24
