package splitmfg

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"splitmfg/internal/defense/correction"
	"splitmfg/internal/defio"
	"splitmfg/internal/flow"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"
	"splitmfg/internal/verilog"
)

// ProtectReport is the unified, JSON-serializable summary of a Protect
// run, shared by the CLIs and the experiment generators. It carries no
// wall-clock fields: a fixed seed and configuration marshal to
// byte-identical JSON.
type ProtectReport = flow.ProtectReport

// SecurityReport is the unified, JSON-serializable summary of a security
// evaluation: the network-flow proximity attack averaged over split
// layers, with a per-layer breakdown.
type SecurityReport = flow.SecurityReport

// LayerReport is one split layer's attack outcome inside a SecurityReport.
type LayerReport = flow.LayerReport

// AttackReport is one attacker engine's outcome at one split layer inside
// a LayerReport.
type AttackReport = flow.AttackReport

// AttackerReport is one attacker engine's averages over the non-vacuous
// split layers inside a SecurityReport.
type AttackerReport = flow.AttackerReport

// PPAReport is the power/performance/area snapshot inside a ProtectReport.
type PPAReport = flow.PPAReport

// MatrixReport is the unified, JSON-serializable defense×attacker cross
// matrix produced by Pipeline.Matrix: rows are defenses (with PPA deltas
// against the unprotected baseline), columns are attackers, cells are
// CCR/OER/HD averaged over the split layers.
type MatrixReport = flow.MatrixReport

// MatrixRowReport is one defense's row inside a MatrixReport.
type MatrixRowReport = flow.MatrixRowReport

// MatrixCellReport is one (defense, attacker) cell inside a MatrixRowReport.
type MatrixCellReport = flow.MatrixCellReport

// SuiteReport is the unified, JSON-serializable multi-benchmark,
// multi-seed matrix produced by Pipeline.Suite: per-benchmark defense rows
// aggregated over seed replicates (mean ± std), the cross-benchmark
// aggregate behind the paper's Tables 4/5 bottom lines, and the suite
// cache's hit/miss counters.
type SuiteReport = flow.SuiteReport

// SuiteBenchReport is one benchmark's section inside a SuiteReport.
type SuiteBenchReport = flow.SuiteBenchReport

// SuiteRowReport is one defense's aggregated row inside a SuiteReport.
type SuiteRowReport = flow.SuiteRowReport

// SuiteCellReport is one (defense, attacker) cell inside a SuiteRowReport.
type SuiteCellReport = flow.SuiteCellReport

// DistReport is a mean ± standard deviation pair inside suite reports.
type DistReport = flow.DistReport

// CacheStats is the suite cache's deterministic hit/miss counters.
type CacheStats = flow.CacheStats

// MarshalReport renders any report type as indented JSON.
func MarshalReport(v interface{}) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}

// Layout is a placed-and-routed design ready to be split, attacked, or
// exported. Layouts are produced by Pipeline.Protect (baseline and
// protected variants) and Pipeline.Baseline/NaiveLifted.
type Layout struct {
	name     string
	d        *layout.Design
	ref      *netlist.Netlist        // the attacker's target netlist
	onlyPins map[netlist.PinRef]bool // protected sinks to score; nil = all
}

// Name returns the benchmark name the layout was built from.
func (l *Layout) Name() string { return l.name }

// WriteDEF writes the full layout as DEF.
func (l *Layout) WriteDEF(w io.Writer) error { return defio.Write(w, l.d) }

// WriteSplitDEF writes the FEOL-only DEF after splitting at the layer.
func (l *Layout) WriteSplitDEF(w io.Writer, layer int) error {
	return defio.WriteSplit(w, l.d, layer)
}

// WriteRT writes the .rt routing dump routing-centric attack tooling reads.
func (l *Layout) WriteRT(w io.Writer) error { return defio.WriteRT(w, l.d) }

// WriteOut writes the .out vpin listing for the split layer.
func (l *Layout) WriteOut(w io.Writer, layer int) error {
	return defio.WriteOut(w, l.d, layer)
}

// SplitSummary describes the FEOL view after splitting at one layer.
type SplitSummary struct {
	Layer       int `json:"layer"`
	VPins       int `json:"vpins"`
	Fragments   int `json:"fragments"`
	DriverFrags int `json:"driver_fragments"`
	SinkFrags   int `json:"sink_fragments"`
}

// Split computes the exposed surface after splitting at the layer.
func (l *Layout) Split(layer int) (SplitSummary, error) {
	sv, err := l.d.Split(layer)
	if err != nil {
		return SplitSummary{}, err
	}
	return SplitSummary{
		Layer: layer, VPins: len(sv.VPins), Fragments: len(sv.Frags),
		DriverFrags: len(sv.DriverFrags()), SinkFrags: len(sv.SinkFrags()),
	}, nil
}

// ProtectResult is the outcome of Pipeline.Protect: the protected layout,
// the unprotected baseline it is compared against, and the PPA accounting.
type ProtectResult struct {
	design *Design
	cfg    flow.Config
	res    *flow.ProtectResult
}

// Report summarizes the run as the unified JSON-serializable report.
func (r *ProtectResult) Report() ProtectReport {
	return r.res.Report(r.design.nl, r.cfg)
}

// ProtectedLayout returns the protected design, scored over its protected
// (randomized) sink pins — the paper's evaluation target.
func (r *ProtectResult) ProtectedLayout() *Layout {
	return &Layout{
		name: r.design.name, d: r.res.Protected.Design,
		ref: r.design.nl, onlyPins: r.res.Protected.ProtectedSinks(),
	}
}

// BaselineLayout returns the unprotected reference layout.
func (r *ProtectResult) BaselineLayout() *Layout {
	return &Layout{name: r.design.name, d: r.res.Baseline, ref: r.design.nl}
}

// VerifyRestoration reconstructs the netlist realized by the BEOL-restored
// physical design and reports whether it equals the original — the
// scheme's central correctness guarantee (the paper's Formality step).
func (r *ProtectResult) VerifyRestoration() (bool, error) {
	rec, err := r.res.Protected.RestoredNetlist()
	if err != nil {
		return false, err
	}
	return rec.SameStructure(r.design.nl), nil
}

// WriteDEF writes the protected layout as DEF.
func (r *ProtectResult) WriteDEF(w io.Writer) error {
	return defio.Write(w, r.res.Protected.Design)
}

// WriteErroneousVerilog writes the erroneous (FEOL) netlist — what the fab
// sees — as structural Verilog.
func (r *ProtectResult) WriteErroneousVerilog(w io.Writer) error {
	return verilog.Write(w, r.res.Protected.Erroneous)
}

// protectedOf wraps a correction-built layout as a scored Layout.
func protectedOf(name string, ref *netlist.Netlist, p *correction.Protected) *Layout {
	return &Layout{name: name, d: p.Design, ref: ref, onlyPins: p.ProtectedSinks()}
}

// RenderMatrix renders a MatrixReport as a fixed-width text table: one row
// per defense with its PPA overheads, one CCR/OER/HD column group per
// attacker. Metrics-only attackers (no assignment to score) render as "-".
func RenderMatrix(rep *MatrixReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "defense x attacker matrix: %s (split layers %v, seed %d)\n",
		rep.Design, rep.SplitLayers, rep.Seed)
	fmt.Fprintf(&b, "%-24s %24s", "defense", "overhead area/pwr/dly %")
	for _, a := range rep.Attackers {
		fmt.Fprintf(&b, " | %-22s", a+" CCR/OER/HD %")
	}
	b.WriteString("\n")
	for _, row := range rep.Rows {
		fmt.Fprintf(&b, "%-24s %8.1f /%6.1f /%6.1f", row.Defense,
			row.AreaOHPct, row.PowerOHPct, row.DelayOHPct)
		for _, c := range row.Cells {
			if !c.Scored {
				fmt.Fprintf(&b, " | %-22s", "metrics-only")
				continue
			}
			fmt.Fprintf(&b, " | %6.1f /%6.1f /%6.1f", c.CCRPercent, c.OERPercent, c.HDPercent)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// fmtDist renders a mean ± std pair compactly.
func fmtDist(d DistReport) string {
	return fmt.Sprintf("%.1f±%.1f", d.Mean, d.Std)
}

// renderSuiteRows renders one block of suite rows with the shared
// matrix-style header: one defense per line with its PPA overheads, one
// CCR/OER/HD column group per attacker, every number as mean ± std.
func renderSuiteRows(b *strings.Builder, attackers []string, rows []SuiteRowReport) {
	fmt.Fprintf(b, "%-24s %34s", "defense", "overhead area/pwr/dly %")
	for _, a := range attackers {
		// 31 = the 9+2+9+2+9 data cell width, keeping the '|' separators
		// aligned between header and rows.
		fmt.Fprintf(b, " | %-31s", a+" CCR/OER/HD %")
	}
	b.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(b, "%-24s %10s /%10s /%10s", row.Defense,
			fmtDist(row.AreaOHPct), fmtDist(row.PowerOHPct), fmtDist(row.DelayOHPct))
		for _, c := range row.Cells {
			if !c.Scored {
				fmt.Fprintf(b, " | %-32s", "metrics-only")
				continue
			}
			fmt.Fprintf(b, " | %9s /%9s /%9s",
				fmtDist(c.CCRPercent), fmtDist(c.OERPercent), fmtDist(c.HDPercent))
		}
		b.WriteString("\n")
	}
}

// RenderSuite renders a SuiteReport as fixed-width text: the
// cross-benchmark aggregate first (the paper's Tables 4/5 bottom lines),
// then one section per benchmark, then the suite cache counters.
func RenderSuite(rep *SuiteReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "suite: %d benchmarks x %d defenses x %d attackers, %d replicate(s) (seed %d, split layers %v)\n",
		len(rep.Benchmarks), len(rep.Defenses), len(rep.Attackers),
		rep.Replicates, rep.Seed, rep.SplitLayers)
	fmt.Fprintf(&b, "\n== aggregate: mean ± std across benchmarks ==\n")
	renderSuiteRows(&b, rep.Attackers, rep.Aggregate)
	for _, br := range rep.PerBenchmark {
		fmt.Fprintf(&b, "\n== %s: mean ± std over %d replicate(s) ==\n", br.Benchmark, rep.Replicates)
		renderSuiteRows(&b, rep.Attackers, br.Rows)
	}
	fmt.Fprintf(&b, "\ncache: %d hits, %d misses\n", rep.Cache.Hits, rep.Cache.Misses)
	return b.String()
}

// Headline renders the headline numbers of a report for quick printing.
func Headline(rep SecurityReport) string {
	return fmt.Sprintf("CCR %.1f%%  OER %.1f%%  HD %.1f%% over %d fragments (%d layers)",
		rep.CCRPercent, rep.OERPercent, rep.HDPercent, rep.Fragments, rep.LayersScored)
}
