package splitmfg

import (
	"context"
	"encoding/json"
	"fmt"

	"splitmfg/internal/route"
)

// JobKind selects which Pipeline entry point a JobRequest runs.
type JobKind string

// The five job kinds the evaluation server accepts.
const (
	// JobProtect runs the full Fig.-2 protection flow (Pipeline.Protect)
	// and reports the PPA accounting as a ProtectReport.
	JobProtect JobKind = "protect"
	// JobAttack evaluates the attacker panel against the unprotected
	// baseline layout (Pipeline.Attack), reporting a SecurityReport.
	JobAttack JobKind = "attack"
	// JobEvaluate builds the proposed scheme's protected layout directly
	// (Pipeline.Randomized) and evaluates the attacker panel against it —
	// the attacker's-perspective fast path, reporting a SecurityReport.
	JobEvaluate JobKind = "evaluate"
	// JobMatrix runs the defense×attacker cross product on one benchmark
	// (Pipeline.Matrix), reporting a MatrixReport.
	JobMatrix JobKind = "matrix"
	// JobSuite fans the (benchmark × defense × attacker × replicate) cross
	// product through the suite scheduler (Pipeline.Suite), reporting a
	// SuiteReport.
	JobSuite JobKind = "suite"
)

// JobKinds lists the accepted job kinds in documentation order.
func JobKinds() []JobKind {
	return []JobKind{JobProtect, JobAttack, JobEvaluate, JobMatrix, JobSuite}
}

// JobRequest is the serializable description of one evaluation job: a job
// kind plus the knobs that mirror the Pipeline's functional options, with
// JSON tags forming the evaluation server's wire format. The zero value of
// every field except Kind and the benchmark selection means "the library
// default", exactly like passing the zero value to the corresponding
// With* option.
type JobRequest struct {
	Kind JobKind `json:"kind"`

	// Benchmark names one catalog design for the single-design kinds
	// (protect, attack, evaluate, matrix). Benchmarks lists the designs of
	// a suite job; a suite may also use Benchmark as shorthand for a
	// one-element list.
	Benchmark  string   `json:"benchmark,omitempty"`
	Benchmarks []string `json:"benchmarks,omitempty"`

	Scale            int      `json:"scale,omitempty"`             // superblue scale divisor (0 = default 300)
	LiftLayer        int      `json:"lift_layer,omitempty"`        // WithLiftLayer
	Utilization      int      `json:"utilization,omitempty"`       // WithUtilization
	Seed             int64    `json:"seed,omitempty"`              // WithSeed
	PPABudget        float64  `json:"ppa_budget,omitempty"`        // WithPPABudget
	TargetOER        float64  `json:"target_oer,omitempty"`        // WithTargetOER
	PatternWords     int      `json:"pattern_words,omitempty"`     // WithPatternWords
	SplitLayers      []int    `json:"split_layers,omitempty"`      // WithSplitLayers
	Attackers        []string `json:"attackers,omitempty"`         // WithAttackers
	Defenses         []string `json:"defenses,omitempty"`          // WithDefenses
	Fraction         float64  `json:"fraction,omitempty"`          // WithFraction
	Replicates       int      `json:"replicates,omitempty"`        // WithReplicates
	MaxAttempts      int      `json:"max_attempts,omitempty"`      // WithMaxAttempts
	Parallelism      int      `json:"parallelism,omitempty"`       // WithParallelism
	RouteParallelism int      `json:"route_parallelism,omitempty"` // WithRouteParallelism
	RouteStrategy    string   `json:"route_strategy,omitempty"`    // WithRouteStrategy ("auto", "flat", "hier"; "" = auto)
}

// benchmarkList normalizes the Benchmark/Benchmarks pair into one ordered
// list without mutating the request.
func (r JobRequest) benchmarkList() []string {
	if len(r.Benchmarks) > 0 {
		names := append([]string(nil), r.Benchmarks...)
		if r.Benchmark != "" {
			names = append([]string{r.Benchmark}, names...)
		}
		return names
	}
	if r.Benchmark != "" {
		return []string{r.Benchmark}
	}
	return nil
}

// Validate checks the request shape — known kind, a benchmark selection
// that matches the kind and the catalog — and every Pipeline option it
// carries, returning a typed *OptionError for the first violation. It does
// no heavy work, so servers can reject bad requests before admission.
func (r JobRequest) Validate() error {
	switch r.Kind {
	case JobProtect, JobAttack, JobEvaluate, JobMatrix, JobSuite:
	case "":
		return &OptionError{"kind", fmt.Sprintf("missing job kind (have %v)", JobKinds())}
	default:
		return &OptionError{"kind", fmt.Sprintf("unknown job kind %q (have %v)", r.Kind, JobKinds())}
	}
	names := r.benchmarkList()
	if len(names) == 0 {
		return &OptionError{"benchmark", "no benchmark named"}
	}
	if r.Kind != JobSuite && len(names) > 1 {
		return &OptionError{"benchmarks", fmt.Sprintf("%s jobs take exactly one benchmark, got %d", r.Kind, len(names))}
	}
	known := map[string]bool{}
	for _, e := range Catalog() {
		known[e.Name] = true
	}
	for _, name := range names {
		if !known[name] {
			return &OptionError{"benchmark", fmt.Sprintf("unknown benchmark %q (see Benchmarks())", name)}
		}
	}
	if r.Scale < 0 {
		return &OptionError{"scale", fmt.Sprintf("scale divisor %d is negative", r.Scale)}
	}
	return New(r.Options()...).Validate()
}

// Options maps the request onto the Pipeline's functional options, with
// extra options appended after the request's own (so callers — e.g. a
// server granting a parallelism share or attaching a progress hook — can
// override request fields).
func (r JobRequest) Options(extra ...Option) []Option {
	opts := []Option{
		WithLiftLayer(r.LiftLayer),
		WithUtilization(r.Utilization),
		WithPPABudget(r.PPABudget),
		WithTargetOER(r.TargetOER),
		WithPatternWords(r.PatternWords),
		WithFraction(r.Fraction),
		WithReplicates(r.Replicates),
		WithMaxAttempts(r.MaxAttempts),
		WithParallelism(r.Parallelism),
		WithRouteParallelism(r.RouteParallelism),
		WithRouteStrategy(r.RouteStrategy),
	}
	// Seed is the one option whose library default is not the zero value
	// (the default master seed is 1), so a zero seed means "default" here
	// too rather than literally seed 0.
	if r.Seed != 0 {
		opts = append(opts, WithSeed(r.Seed))
	}
	if len(r.SplitLayers) > 0 {
		opts = append(opts, WithSplitLayers(r.SplitLayers...))
	}
	if len(r.Attackers) > 0 {
		opts = append(opts, WithAttackers(r.Attackers...))
	}
	if len(r.Defenses) > 0 {
		opts = append(opts, WithDefenses(r.Defenses...))
	}
	return append(opts, extra...)
}

// CacheKey is the content-addressed identity of the request's result: two
// requests with equal keys produce byte-identical reports. Parallelism and
// route parallelism are excluded — every entry point guarantees identical
// results at every parallelism level — so a server cache keyed on it shares
// results across differently-budgeted submissions. The route strategy is
// included (flat and hier produce different routings) and normalized like
// the seed: an omitted strategy and an explicit "auto" share one key. The
// seed is normalized the same way Options() resolves it (0 means the
// default master seed), so an omitted seed and an explicitly-spelled
// default share one key.
func (r JobRequest) CacheKey() string {
	n := r
	n.Benchmark = ""
	n.Benchmarks = r.benchmarkList()
	n.Parallelism = 0
	n.RouteParallelism = 0
	if n.RouteStrategy == "" {
		n.RouteStrategy = string(route.StrategyAuto)
	}
	if n.Seed == 0 {
		n.Seed = defaultSeed
	}
	b, err := json.Marshal(n)
	if err != nil {
		// A JobRequest is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("splitmfg: marshal job request: %v", err))
	}
	return string(n.Kind) + "|" + string(b)
}

// DecodeReport rebuilds the typed report a kind's Run returns from its
// JSON serialization: *ProtectReport (protect), *SecurityReport (attack,
// evaluate), *MatrixReport (matrix), or *SuiteReport (suite). It is the
// decode half of a disk-backed result cache keyed on CacheKey — reports
// round-trip through encoding/json byte-identically (every field is
// tagged, floats use the shortest round-trippable form, maps encode with
// sorted keys).
func DecodeReport(kind JobKind, data []byte) (any, error) {
	var v any
	switch kind {
	case JobProtect:
		v = &ProtectReport{}
	case JobAttack, JobEvaluate:
		v = &SecurityReport{}
	case JobMatrix:
		v = &MatrixReport{}
	case JobSuite:
		v = &SuiteReport{}
	default:
		return nil, &OptionError{"kind", fmt.Sprintf("unknown job kind %q", kind)}
	}
	if err := json.Unmarshal(data, v); err != nil {
		return nil, err
	}
	return v, nil
}

// Run validates the request, loads its benchmarks, and dispatches to the
// Pipeline entry point its kind names, returning the kind's report:
// *ProtectReport (protect), *SecurityReport (attack, evaluate),
// *MatrixReport (matrix), or *SuiteReport (suite). Extra options are
// appended after the request's own. The context is honored at every stage
// boundary of the underlying flow.
func (r JobRequest) Run(ctx context.Context, extra ...Option) (any, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	pipe := New(r.Options(extra...)...)
	if err := pipe.Validate(); err != nil {
		return nil, err
	}
	var bopts []BenchmarkOption
	if r.Scale > 0 {
		bopts = append(bopts, WithScale(r.Scale))
	}
	var designs []*Design
	for _, name := range r.benchmarkList() {
		d, err := LoadBenchmark(name, bopts...)
		if err != nil {
			return nil, err
		}
		designs = append(designs, d)
	}
	switch r.Kind {
	case JobProtect:
		res, err := pipe.Protect(ctx, designs[0])
		if err != nil {
			return nil, err
		}
		rep := res.Report()
		return &rep, nil
	case JobAttack:
		return pipe.Attack(ctx, designs[0])
	case JobEvaluate:
		l, err := pipe.Randomized(ctx, designs[0])
		if err != nil {
			return nil, err
		}
		return pipe.Evaluate(ctx, l)
	case JobMatrix:
		return pipe.Matrix(ctx, designs[0])
	case JobSuite:
		return pipe.Suite(ctx, designs)
	}
	return nil, &OptionError{"kind", fmt.Sprintf("unknown job kind %q", r.Kind)}
}
