package splitmfg

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestPipelineValidate(t *testing.T) {
	cases := []struct {
		name   string
		opts   []Option
		option string // expected OptionError.Option; "" = valid
	}{
		{"defaults", nil, ""},
		{"full valid", []Option{WithSeed(7), WithLiftLayer(6), WithUtilization(70),
			WithPPABudget(20), WithTargetOER(0.9), WithPatternWords(16),
			WithSplitLayers(3, 4), WithAttackers("proximity", "random"),
			WithDefenses("pin-swapping"), WithFraction(0.2), WithReplicates(3),
			WithMaxAttempts(2), WithParallelism(4), WithRouteParallelism(2)}, ""},
		{"negative lift", []Option{WithLiftLayer(-1)}, "WithLiftLayer"},
		{"util over 100", []Option{WithUtilization(101)}, "WithUtilization"},
		{"negative budget", []Option{WithPPABudget(-5)}, "WithPPABudget"},
		{"oer over 1", []Option{WithTargetOER(1.5)}, "WithTargetOER"},
		{"negative words", []Option{WithPatternWords(-1)}, "WithPatternWords"},
		{"layer below M1", []Option{WithSplitLayers(0)}, "WithSplitLayers"},
		{"fraction over 1", []Option{WithFraction(1.5)}, "WithFraction"},
		{"negative fraction", []Option{WithFraction(-0.1)}, "WithFraction"},
		{"negative replicates", []Option{WithReplicates(-1)}, "WithReplicates"},
		{"negative attempts", []Option{WithMaxAttempts(-1)}, "WithMaxAttempts"},
		{"negative parallelism", []Option{WithParallelism(-1)}, "WithParallelism"},
		{"negative route parallelism", []Option{WithRouteParallelism(-2)}, "WithRouteParallelism"},
		{"flat route strategy", []Option{WithRouteStrategy("flat")}, ""},
		{"hier route strategy", []Option{WithRouteStrategy("hier")}, ""},
		{"unknown route strategy", []Option{WithRouteStrategy("bogus")}, "WithRouteStrategy"},
		{"unknown attacker", []Option{WithAttackers("bogus")}, "WithAttackers"},
		{"blank attacker", []Option{WithAttackers("")}, "WithAttackers"},
		{"unknown defense", []Option{WithDefenses("bogus")}, "WithDefenses"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := New(tc.opts...).Validate()
			if tc.option == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("Validate() = %v, want *OptionError", err)
			}
			if oe.Option != tc.option {
				t.Fatalf("OptionError.Option = %q, want %q (err: %v)", oe.Option, tc.option, err)
			}
		})
	}
}

func TestJobRequestValidate(t *testing.T) {
	valid := JobRequest{Kind: JobEvaluate, Benchmark: "c432", PatternWords: 4}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"missing kind", JobRequest{Benchmark: "c432"}},
		{"unknown kind", JobRequest{Kind: "bake", Benchmark: "c432"}},
		{"no benchmark", JobRequest{Kind: JobMatrix}},
		{"unknown benchmark", JobRequest{Kind: JobMatrix, Benchmark: "c9999"}},
		{"multi-bench matrix", JobRequest{Kind: JobMatrix, Benchmarks: []string{"c432", "c880"}}},
		{"negative scale", JobRequest{Kind: JobMatrix, Benchmark: "c432", Scale: -1}},
		{"bad fraction", JobRequest{Kind: JobMatrix, Benchmark: "c432", Fraction: 2}},
		{"unknown attacker", JobRequest{Kind: JobAttack, Benchmark: "c432", Attackers: []string{"bogus"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Validate()
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("Validate() = %v, want *OptionError", err)
			}
		})
	}
	// A suite accepts several benchmarks.
	suite := JobRequest{Kind: JobSuite, Benchmarks: []string{"c432", "c880"}}
	if err := suite.Validate(); err != nil {
		t.Fatalf("suite request rejected: %v", err)
	}
}

func TestJobRequestCacheKeyIgnoresParallelism(t *testing.T) {
	a := JobRequest{Kind: JobMatrix, Benchmark: "c432", PatternWords: 16, Parallelism: 1}
	b := JobRequest{Kind: JobMatrix, Benchmark: "c432", PatternWords: 16, Parallelism: 8, RouteParallelism: 4}
	if a.CacheKey() != b.CacheKey() {
		t.Fatalf("cache keys differ on parallelism only:\n%s\n%s", a.CacheKey(), b.CacheKey())
	}
	c := b
	c.Seed = 42
	if b.CacheKey() == c.CacheKey() {
		t.Fatalf("cache key ignores seed: %s", c.CacheKey())
	}
	// Benchmark and a one-element Benchmarks list address the same result.
	d := JobRequest{Kind: JobSuite, Benchmark: "c432"}
	e := JobRequest{Kind: JobSuite, Benchmarks: []string{"c432"}}
	if d.CacheKey() != e.CacheKey() {
		t.Fatalf("benchmark spellings not normalized:\n%s\n%s", d.CacheKey(), e.CacheKey())
	}
}

func TestJobRequestCacheKeyNormalizesSeed(t *testing.T) {
	// Options() treats Seed == 0 as "the default master seed", so an
	// omitted seed and an explicitly-spelled default produce the same
	// report — and must share one cache key.
	omitted := JobRequest{Kind: JobAttack, Benchmark: "c432"}
	spelled := JobRequest{Kind: JobAttack, Benchmark: "c432", Seed: 1}
	if omitted.CacheKey() != spelled.CacheKey() {
		t.Fatalf("default-seed spellings not normalized:\n%s\n%s", omitted.CacheKey(), spelled.CacheKey())
	}
	other := JobRequest{Kind: JobAttack, Benchmark: "c432", Seed: 2}
	if other.CacheKey() == spelled.CacheKey() {
		t.Fatal("distinct seeds share a cache key")
	}
}

func TestJobRequestCacheKeyRouteStrategy(t *testing.T) {
	// An omitted strategy resolves to auto, so the two spellings must
	// share one key — but flat and hier change the routed layouts, so
	// each strategy gets its own identity.
	omitted := JobRequest{Kind: JobMatrix, Benchmark: "c432"}
	auto := JobRequest{Kind: JobMatrix, Benchmark: "c432", RouteStrategy: "auto"}
	if omitted.CacheKey() != auto.CacheKey() {
		t.Fatalf("auto-strategy spellings not normalized:\n%s\n%s", omitted.CacheKey(), auto.CacheKey())
	}
	flat := JobRequest{Kind: JobMatrix, Benchmark: "c432", RouteStrategy: "flat"}
	hier := JobRequest{Kind: JobMatrix, Benchmark: "c432", RouteStrategy: "hier"}
	if flat.CacheKey() == auto.CacheKey() || hier.CacheKey() == auto.CacheKey() || flat.CacheKey() == hier.CacheKey() {
		t.Fatalf("strategies share a cache key:\nauto %s\nflat %s\nhier %s",
			auto.CacheKey(), flat.CacheKey(), hier.CacheKey())
	}
}

func TestDecodeReportRoundTrips(t *testing.T) {
	req := JobRequest{Kind: JobEvaluate, Benchmark: "c432", PatternWords: 4,
		SplitLayers: []int{3}, Attackers: []string{"random"}}
	rep, err := req.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(req.Kind, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.(*SecurityReport); !ok {
		t.Fatalf("decoded %T, want *SecurityReport", back)
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatalf("report did not round-trip byte-identically:\n%s\n----\n%s", data, again)
	}
	if _, err := DecodeReport("bogus", data); err == nil {
		t.Fatal("unknown kind decoded")
	}
}

func TestJobRequestRunEvaluateMatchesPipeline(t *testing.T) {
	req := JobRequest{Kind: JobEvaluate, Benchmark: "c432", PatternWords: 16,
		SplitLayers: []int{3}, Attackers: []string{"random"}}
	got, err := req.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := got.(*SecurityReport)
	if !ok {
		t.Fatalf("evaluate job returned %T, want *SecurityReport", got)
	}
	d, err := LoadBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	pipe := New(WithPatternWords(16), WithSplitLayers(3), WithAttackers("random"))
	l, err := pipe.Randomized(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pipe.Evaluate(context.Background(), l)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := MarshalReport(rep)
	jb, _ := MarshalReport(want)
	if string(ja) != string(jb) {
		t.Fatalf("JobRequest.Run diverges from the direct pipeline:\n%s\nvs\n%s", ja, jb)
	}
}

func TestJobRequestRunRejectsBadRequest(t *testing.T) {
	_, err := JobRequest{Kind: JobEvaluate, Benchmark: "c432", Fraction: -1}.Run(context.Background())
	var oe *OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("Run on invalid request = %v, want *OptionError", err)
	}
}

func TestCatalogEntries(t *testing.T) {
	entries := Catalog()
	if len(entries) != len(Benchmarks()) {
		t.Fatalf("catalog has %d entries, want %d", len(entries), len(Benchmarks()))
	}
	byName := map[string]CatalogEntry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	c432, ok := byName["c432"]
	if !ok || c432.Cells != 160 || c432.Inputs != 36 || c432.Outputs != 7 {
		t.Fatalf("c432 catalog entry wrong: %+v", c432)
	}
	if c432.Superblue || c432.LiftLayer != 6 || c432.PPABudget != 20 || c432.Utilization != 70 {
		t.Fatalf("c432 recommended settings wrong: %+v", c432)
	}
	sb18, ok := byName["superblue18"]
	if !ok || !sb18.Superblue || sb18.Cells != 670323 || sb18.Scale != 300 {
		t.Fatalf("superblue18 catalog entry wrong: %+v", sb18)
	}
	if sb18.LiftLayer != 8 || sb18.PPABudget != 5 || sb18.Utilization != 67 {
		t.Fatalf("superblue18 recommended settings wrong: %+v", sb18)
	}
	// Every entry advertises a nonzero published size.
	for _, e := range entries {
		if e.Cells <= 0 || e.Inputs <= 0 || e.Outputs <= 0 {
			t.Fatalf("catalog entry %s has empty published size: %+v", e.Name, e)
		}
	}
}

func TestOptionErrorMessageNamesOption(t *testing.T) {
	err := New(WithFraction(3)).Validate()
	if err == nil || !strings.Contains(err.Error(), "WithFraction") {
		t.Fatalf("error %v does not name the offending option", err)
	}
}
