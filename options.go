package splitmfg

// Option configures a Pipeline.
type Option func(*pipelineConfig)

type pipelineConfig struct {
	liftLayer    int
	utilPercent  int
	seed         int64
	budget       float64
	targetOER    float64
	patternWords int
	splitLayers  []int
	attackers    []string
	defenses     []string
	fraction     float64
	replicates   int
	maxAttempts  int
	parallelism  int
	routePar     int
	routeStrat   string
	cacheDir     string
	progress     ProgressFunc
}

// defaultSeed is the master seed used when none is set — the one option
// whose library default is not its zero value. JobRequest.CacheKey
// normalizes against it so an omitted seed and an explicit default seed
// share one cache identity.
const defaultSeed = 1

func defaultPipelineConfig() pipelineConfig {
	return pipelineConfig{seed: defaultSeed}
}

// WithLiftLayer sets the metal layer the randomized nets are lifted to
// (default: 6 for ISCAS designs, 8 for superblue).
func WithLiftLayer(layer int) Option {
	return func(c *pipelineConfig) { c.liftLayer = layer }
}

// WithUtilization sets the placement utilization percentage (default: 70
// for ISCAS, published per-design values for superblue).
func WithUtilization(percent int) Option {
	return func(c *pipelineConfig) { c.utilPercent = percent }
}

// WithSeed sets the master seed. Every derived stream (randomization,
// placement jitter, per-layer attack patterns) is a deterministic function
// of it, so a fixed seed reproduces byte-identical reports.
func WithSeed(seed int64) Option {
	return func(c *pipelineConfig) { c.seed = seed }
}

// WithPPABudget sets the allowed power/delay overhead percentage for the
// escalation loop (default: 20 for ISCAS, 5 for superblue).
func WithPPABudget(percent float64) Option {
	return func(c *pipelineConfig) { c.budget = percent }
}

// WithTargetOER sets the randomization stop criterion (default 0.999).
func WithTargetOER(oer float64) Option {
	return func(c *pipelineConfig) { c.targetOER = oer }
}

// WithPatternWords sets the simulation depth for OER/HD metrics in
// 64-pattern words (default 256 = 16384 patterns).
func WithPatternWords(words int) Option {
	return func(c *pipelineConfig) { c.patternWords = words }
}

// WithSplitLayers sets the split layers Evaluate attacks and averages over
// (default M3, M4, M5 — the paper's Tables 4 and 5 setup).
func WithSplitLayers(layers ...int) Option {
	return func(c *pipelineConfig) { c.splitLayers = append([]int(nil), layers...) }
}

// WithAttackers selects the attacker engines Evaluate runs at every split
// layer (default: "proximity", the paper's network-flow attack). Names
// resolve against the engine registry — see Attackers() for the list; an
// unknown name fails Evaluate with an error naming the registry. The first
// engine that proposes an assignment is the primary attacker whose
// CCR/OER/HD become the report's headline numbers; every engine gets its
// own per-layer and averaged sections.
func WithAttackers(names ...string) Option {
	return func(c *pipelineConfig) { c.attackers = append([]string(nil), names...) }
}

// WithDefenses selects the defense schemes Matrix builds and attacks
// (default: "randomize-correction", the paper's proposed scheme). Names
// resolve against the defense-engine registry — see Defenses() for the
// list; an unknown name fails Matrix with an error naming the registry.
// Each defense becomes one row of the matrix, in the given order.
func WithDefenses(names ...string) Option {
	return func(c *pipelineConfig) { c.defenses = append([]string(nil), names...) }
}

// WithFraction sets the perturbed fraction the prior-art defense schemes
// use (defense-specific meaning; default: each scheme's published-ish
// value, 0.15).
func WithFraction(f float64) Option {
	return func(c *pipelineConfig) { c.fraction = f }
}

// WithReplicates sets how many seed replicates Suite runs per
// (benchmark, defense) cell (default 1). Each replicate derives its own
// splitmix64 seed stream from the master seed — replicate 0 is the master
// seed itself — and the suite report carries mean ± standard deviation
// over the replicates, like the paper's averaged-run tables.
func WithReplicates(n int) Option {
	return func(c *pipelineConfig) { c.replicates = n }
}

// WithMaxAttempts caps the Protect escalation loop (default 6). 1 runs a
// single randomize-and-build pass with no escalation.
func WithMaxAttempts(n int) Option {
	return func(c *pipelineConfig) { c.maxAttempts = n }
}

// WithParallelism sets how many split layers Evaluate attacks concurrently
// (default: GOMAXPROCS; 1 forces serial evaluation). Results are identical
// at every parallelism level.
func WithParallelism(n int) Option {
	return func(c *pipelineConfig) { c.parallelism = n }
}

// WithRouteParallelism sets how many workers route spatially disjoint nets
// concurrently inside each place-and-route (default: GOMAXPROCS for the
// single-design entry points, the job's share of WithParallelism for
// Matrix/Suite; 1 forces serial routing). The router partitions each
// design's net list into deterministic waves of non-interacting nets and
// commits results in serial order, so layouts — and every report derived
// from them — are byte-identical at every parallelism level.
func WithRouteParallelism(n int) Option {
	return func(c *pipelineConfig) { c.routePar = n }
}

// WithRouteStrategy selects how each place-and-route explores the routing
// grid: "flat" routes every net with a single-level search, "hier" runs a
// coarse tile-grid pass first and confines each net's fine search to its
// planned corridor (much faster on large dies), and "auto" (the default)
// picks per design by die area — ISCAS-class dies route flat, superblue-
// class dies route hierarchically. Unlike WithRouteParallelism the
// strategy changes the routed layouts (both are valid; reports remain
// byte-identical at every parallelism level for a fixed strategy), so it
// is part of every cache identity. An unknown name fails validation.
func WithRouteStrategy(name string) Option {
	return func(c *pipelineConfig) { c.routeStrat = name }
}

// WithCacheDir backs Suite's result cache with a disk-based
// content-addressed store rooted at dir (created if absent): every
// completed baseline and (benchmark, defense, replicate) cell is
// checkpointed with an atomic fsync'd write, so a killed suite run rerun
// with the same directory recomputes only the unfinished cells and still
// produces a byte-identical SuiteReport, and separate runs — or an
// smserve sharing the directory — reuse each other's cells. Corrupt or
// stale entries are quarantined and recomputed, never trusted. Empty
// (the default) keeps the cache memory-only.
func WithCacheDir(dir string) Option {
	return func(c *pipelineConfig) { c.cacheDir = dir }
}

// WithProgress installs a progress hook receiving stage-completion events
// with per-stage timings.
func WithProgress(fn ProgressFunc) Option {
	return func(c *pipelineConfig) { c.progress = fn }
}
