package splitmfg

import (
	"fmt"
	"sort"

	"splitmfg/internal/bench"
	"splitmfg/internal/netlist"
)

// Design is a benchmark netlist loaded from the catalog, together with the
// paper's recommended physical-design settings for it (lift layer, PPA
// budget, placement utilization). It is the input to Pipeline.Protect and
// Pipeline.Attack.
type Design struct {
	name      string
	nl        *netlist.Netlist
	superblue bool
	scale     int // superblue scale divisor the netlist was generated at (1 for ISCAS)

	recLift   int     // recommended lift layer (6 ISCAS, 8 superblue)
	recBudget float64 // recommended PPA budget percent (20 ISCAS, 5 superblue)
	recUtil   int     // recommended placement utilization
}

// DesignStats summarizes the structure of a loaded design.
type DesignStats struct {
	Gates      int
	Nets       int
	PIs        int
	POs        int
	DFFs       int
	Depth      int     // longest combinational path in gate levels
	AvgFanout  float64 // mean sinks per net
	MaxFanout  int
	TwoPinNets int
}

// BenchmarkOption configures LoadBenchmark.
type BenchmarkOption func(*benchConfig)

type benchConfig struct {
	scale int
}

// WithScale sets the superblue scale divisor (1 = published full size;
// default 300, which runs in seconds). It has no effect on ISCAS designs.
func WithScale(scale int) BenchmarkOption {
	return func(c *benchConfig) { c.scale = scale }
}

// Benchmarks lists the catalog: the nine ISCAS-85 circuits followed by the
// five IBM superblue designs, each loadable with LoadBenchmark.
func Benchmarks() []string {
	names := append([]string(nil), bench.ISCASNames()...)
	sb := append([]string(nil), bench.SuperblueNames()...)
	sort.Strings(sb)
	return append(names, sb...)
}

// CatalogEntry describes one loadable benchmark: its name, family, the
// published structural size (gate count for ISCAS-85, net count from the
// paper's Table 2 for superblue) and interface counts, and the paper's
// recommended physical-design settings that LoadBenchmark attaches. Scale
// is the default superblue scale divisor (0 for ISCAS designs, which have
// no scaling).
type CatalogEntry struct {
	Name        string  `json:"name"`
	Superblue   bool    `json:"superblue"`
	Cells       int     `json:"cells"`
	Inputs      int     `json:"inputs"`
	Outputs     int     `json:"outputs"`
	LiftLayer   int     `json:"lift_layer"`
	PPABudget   float64 `json:"ppa_budget_percent"`
	Utilization int     `json:"utilization_percent"`
	Scale       int     `json:"default_scale,omitempty"`
}

// Catalog describes every benchmark Benchmarks lists, with published sizes
// and recommended settings, without generating any netlist — the discovery
// surface behind the evaluation server's /v1/catalog.
func Catalog() []CatalogEntry {
	var entries []CatalogEntry
	for _, name := range Benchmarks() {
		e := CatalogEntry{Name: name, Superblue: bench.IsSuperblue(name)}
		// The catalog names come straight from the bench registries, so
		// the lookups cannot fail.
		e.Cells, e.Inputs, e.Outputs, _ = bench.PublishedSize(name)
		if e.Superblue {
			e.LiftLayer, e.PPABudget, e.Scale = 8, 5, 300
			e.Utilization, _ = bench.SuperblueUtil(name)
		} else {
			e.LiftLayer, e.PPABudget, e.Utilization = 6, 20, 70
		}
		entries = append(entries, e)
	}
	return entries
}

// LoadBenchmark loads one catalog benchmark by name ("c432".."c7552" or
// "superblue1/5/10/12/18") and attaches the paper's recommended settings
// for it. Superblue designs accept WithScale.
func LoadBenchmark(name string, opts ...BenchmarkOption) (*Design, error) {
	cfg := benchConfig{scale: 300}
	for _, o := range opts {
		o(&cfg)
	}
	d := &Design{name: name, scale: 1}
	var err error
	if bench.IsSuperblue(name) {
		d.superblue = true
		d.scale = cfg.scale
		d.recLift = 8
		d.recBudget = 5
		d.recUtil, err = bench.SuperblueUtil(name)
	} else {
		d.recLift = 6
		d.recBudget = 20
		d.recUtil = 70
	}
	if err == nil {
		d.nl, err = bench.Load(name, cfg.scale)
	}
	if err != nil {
		return nil, fmt.Errorf("splitmfg: load %q: %v", name, err)
	}
	return d, nil
}

// Name returns the benchmark name.
func (d *Design) Name() string { return d.name }

// Superblue reports whether this is an industrial superblue design.
func (d *Design) Superblue() bool { return d.superblue }

// Stats derives structural statistics of the design's netlist.
func (d *Design) Stats() DesignStats {
	s := d.nl.ComputeStats()
	return DesignStats{
		Gates: s.Gates, Nets: s.Nets, PIs: s.PIs, POs: s.POs, DFFs: s.DFFs,
		Depth: s.Depth, AvgFanout: s.AvgFanout, MaxFanout: s.MaxFanout,
		TwoPinNets: s.TwoPinNets,
	}
}

// String formats the stats like the CLIs print them.
func (s DesignStats) String() string {
	return fmt.Sprintf("%d gates, %d nets, %d PIs, %d POs, depth %d",
		s.Gates, s.Nets, s.PIs, s.POs, s.Depth)
}
