package splitmfg

import (
	"fmt"

	"splitmfg/internal/attack/engine"
	defengine "splitmfg/internal/defense/engine"
	"splitmfg/internal/route"
)

// OptionError reports a Pipeline option (or server job-request field) whose
// value is outside its valid range. Entry points that validate — Validate,
// JobRequest.Validate, JobRequest.Run — return it before any heavy work
// starts, so front-ends can map it to a user-facing 400-class failure with
// errors.As.
type OptionError struct {
	Option string // the With* option (or request field) that carried the value
	Reason string // what about the value is out of range
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("splitmfg: invalid %s: %s", e.Option, e.Reason)
}

// Validate checks every configured option against its valid range and the
// attacker/defense registries, returning a typed *OptionError for the first
// violation. New never fails — zero values mean "resolve a default later" —
// so callers that accept untrusted settings (the evaluation server, the
// CLIs) call Validate once after construction to fail fast with a precise
// message instead of deep inside the flow.
func (p *Pipeline) Validate() error {
	return p.cfg.validate()
}

func (c *pipelineConfig) validate() error {
	if c.liftLayer < 0 {
		return &OptionError{"WithLiftLayer", fmt.Sprintf("lift layer %d is negative", c.liftLayer)}
	}
	if c.utilPercent < 0 || c.utilPercent > 100 {
		return &OptionError{"WithUtilization", fmt.Sprintf("utilization %d%% outside [0, 100]", c.utilPercent)}
	}
	if c.budget < 0 {
		return &OptionError{"WithPPABudget", fmt.Sprintf("PPA budget %g%% is negative", c.budget)}
	}
	if c.targetOER < 0 || c.targetOER > 1 {
		return &OptionError{"WithTargetOER", fmt.Sprintf("target OER %g outside [0, 1]", c.targetOER)}
	}
	if c.patternWords < 0 {
		return &OptionError{"WithPatternWords", fmt.Sprintf("pattern words %d is negative", c.patternWords)}
	}
	for _, layer := range c.splitLayers {
		if layer < 1 {
			return &OptionError{"WithSplitLayers", fmt.Sprintf("split layer %d below M1", layer)}
		}
	}
	if c.fraction < 0 || c.fraction > 1 {
		return &OptionError{"WithFraction", fmt.Sprintf("fraction %g outside (0, 1]", c.fraction)}
	}
	if c.replicates < 0 {
		return &OptionError{"WithReplicates", fmt.Sprintf("replicate count %d is negative", c.replicates)}
	}
	if c.maxAttempts < 0 {
		return &OptionError{"WithMaxAttempts", fmt.Sprintf("attempt cap %d is negative", c.maxAttempts)}
	}
	if c.parallelism < 0 {
		return &OptionError{"WithParallelism", fmt.Sprintf("parallelism %d is negative", c.parallelism)}
	}
	if c.routePar < 0 {
		return &OptionError{"WithRouteParallelism", fmt.Sprintf("route parallelism %d is negative", c.routePar)}
	}
	if _, err := route.ParseStrategy(c.routeStrat); err != nil {
		return &OptionError{"WithRouteStrategy", err.Error()}
	}
	// An empty list means "the default engine", so only non-empty lists
	// resolve; resolution rejects blank and unknown names, naming the
	// registry contents in the reason.
	if len(c.attackers) > 0 {
		if _, err := engine.Resolve(c.attackers); err != nil {
			return &OptionError{"WithAttackers", err.Error()}
		}
	}
	if len(c.defenses) > 0 {
		if _, err := defengine.Resolve(c.defenses); err != nil {
			return &OptionError{"WithDefenses", err.Error()}
		}
	}
	return nil
}
