package splitmfg

import (
	"context"
	"testing"
)

// benchmarkEvaluate measures one full security evaluation of a protected
// c880 over split layers M3/M4/M5 at the given parallelism. The protected
// layout is built once outside the timed loop; only the attack loop —
// split, proximity attack, netlist recovery, simulation per layer — is
// measured. Recorded so future PRs can track the parallel speedup:
//
//	go test -bench 'Evaluate(Serial|Parallel)' -benchtime=3x
//
// The three layer evaluations are independent CPU-bound tasks, so the
// parallel variant approaches a 3x speedup with >= 3 available cores; on a
// single-core machine the two benches coincide (modulo scheduling noise).
func benchmarkEvaluate(b *testing.B, parallelism int) {
	design, err := LoadBenchmark("c880")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	pipe := New(
		WithSeed(1),
		WithPatternWords(64),
		WithMaxAttempts(1),
		WithSplitLayers(3, 4, 5),
		WithParallelism(parallelism),
	)
	res, err := pipe.Protect(ctx, design)
	if err != nil {
		b.Fatal(err)
	}
	l := res.ProtectedLayout()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Evaluate(ctx, l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateSerialC880 is the pre-parallelization baseline: layers
// attacked one at a time.
func BenchmarkEvaluateSerialC880(b *testing.B) { benchmarkEvaluate(b, 1) }

// BenchmarkEvaluateParallelC880 attacks the three layers concurrently.
func BenchmarkEvaluateParallelC880(b *testing.B) { benchmarkEvaluate(b, 0) }
