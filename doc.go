// Package splitmfg reproduces "Raise Your Game for Split Manufacturing:
// Restoring the True Functionality Through BEOL" (Patnaik, Ashraf,
// Knechtel, Sinanoglu — DAC 2018) as a self-contained Go library with a
// public pipeline API.
//
// The root package is the public surface; the implementation lives in
// internal packages. Build a Pipeline with functional options and run the
// paper's flow end to end:
//
//	design, _ := splitmfg.LoadBenchmark("c880")
//	pipe := splitmfg.New(splitmfg.WithSeed(42), splitmfg.WithPPABudget(20))
//	res, _ := pipe.Protect(ctx, design)            // Fig. 2: randomize, P&R, lift, restore
//	sec, _ := pipe.Evaluate(ctx, res.ProtectedLayout()) // proximity attack at M3/M4/M5
//
// Security evaluation is parametric over pluggable attacker engines:
// WithAttackers selects any combination from the registry (Attackers()
// lists it — proximity, crouting, random, greedy, ensemble), each engine
// gets its own per-layer and averaged report sections, and the first
// assignment-producing engine supplies the headline CCR/OER/HD.
//
// Defenses are pluggable the same way: WithDefenses selects schemes from
// the defense registry (Defenses() lists it — the paper's
// randomize-correction, naive-lifted, and the prior-art baselines), and
// Pipeline.Matrix runs the full defense×attacker cross product behind the
// paper's Tables 4/5, reporting CCR/OER/HD per cell plus each scheme's
// PPA overhead against the unprotected baseline as a deterministic
// MatrixReport.
//
// Protect, Attack, and Evaluate take a context.Context and honor
// cancellation at stage boundaries. WithProgress streams stage-completion
// events with per-stage timings; WithParallelism fans the independent
// split-layer attacks out over a worker pool with per-(layer, attacker)
// derived RNG seeds, so reports are byte-identical at every parallelism
// level.
// ProtectReport and SecurityReport are JSON-serializable and shared by the
// CLIs (cmd/smflow, cmd/smattack, cmd/smbench, cmd/smsplit), the examples,
// and the experiment generators; RunExperiment and its sibling functions
// regenerate the paper's tables and figures.
//
// See README.md for the module map and quickstart, and DESIGN.md for the
// system inventory, API invariants, and paper-to-code experiment index.
//
// The root package also carries the benchmark harness (bench_test.go): one
// testing.B benchmark per table and figure of the paper plus the ablation
// benches and the serial-vs-parallel evaluation benchmark, all runnable
// with
//
//	go test -bench=. -benchmem
package splitmfg
