// Package splitmfg reproduces "Raise Your Game for Split Manufacturing:
// Restoring the True Functionality Through BEOL" (Patnaik, Ashraf,
// Knechtel, Sinanoglu — DAC 2018) as a self-contained Go library.
//
// The public surface is organized as internal packages (this repository is
// a research artifact, not a semver API): see README.md for the module
// map, DESIGN.md for the system inventory and paper-to-code experiment
// index, and EXPERIMENTS.md for the paper-vs-measured comparison.
//
// The root package carries the benchmark harness (bench_test.go): one
// testing.B benchmark per table and figure of the paper plus the ablation
// benches, all runnable with
//
//	go test -bench=. -benchmem
package splitmfg
