package splitmfg

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test -run Golden -update .
//
// Golden reports pin the whole pipeline — seed streams, randomization,
// placement, routing, attack scoring, and report serialization — byte for
// byte. A diff here means a reproducibility regression (or an intentional
// change: inspect the diff, then regenerate).
var update = flag.Bool("update", false, "rewrite testdata/golden files")

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run Golden -update .`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from the golden file.\n--- got ---\n%s\n--- want ---\n%s\n"+
			"If the change is intentional, regenerate with `go test -run Golden -update .`",
			name, got, want)
	}
}

func marshalGolden(t *testing.T, v interface{}) []byte {
	t.Helper()
	b, err := MarshalReport(v)
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// goldenPipeline is the fixed configuration every golden report is pinned
// at: one escalation attempt and a shallow pattern budget keep the run in
// test-suite time while still exercising every stage.
func goldenPipeline(opts ...Option) *Pipeline {
	return New(append([]Option{
		WithSeed(1),
		WithMaxAttempts(1),
		WithPatternWords(16),
	}, opts...)...)
}

func TestGoldenProtectAndSecurityReports(t *testing.T) {
	design, err := LoadBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	pipe := goldenPipeline(WithAttackers("proximity", "greedy", "random"))
	ctx := context.Background()
	res, err := pipe.Protect(ctx, design)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	goldenCompare(t, "protect_c432.json", marshalGolden(t, rep))

	sec, err := pipe.Evaluate(ctx, res.ProtectedLayout())
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "security_c432.json", marshalGolden(t, sec))
}

// TestGoldenReportsRouteSerialVsParallel: the wave-parallel router's
// determinism contract at the report level. A serial-routing run
// (WithRouteParallelism(1)) and an explicitly parallel one must both
// reproduce the same golden bytes the default configuration is pinned to
// — protect and security reports alike.
func TestGoldenReportsRouteSerialVsParallel(t *testing.T) {
	design, err := LoadBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		par  int
	}{
		{"serial", 1},
		{"parallel4", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pipe := goldenPipeline(
				WithAttackers("proximity", "greedy", "random"),
				WithRouteParallelism(tc.par),
			)
			res, err := pipe.Protect(ctx, design)
			if err != nil {
				t.Fatal(err)
			}
			goldenCompare(t, "protect_c432.json", marshalGolden(t, res.Report()))
			sec, err := pipe.Evaluate(ctx, res.ProtectedLayout())
			if err != nil {
				t.Fatal(err)
			}
			goldenCompare(t, "security_c432.json", marshalGolden(t, sec))
		})
	}
}

// TestGoldenHierProtectReport pins the hierarchical routing strategy to
// its own golden: c432 under an explicit "hier" strategy (auto routes a
// die this small flat, so the flat goldens above are untouched by the
// strategy's existence), serial and at route parallelism 4. The
// determinism contract holds per strategy — coarse corridors are planned
// serially before the wave partition, so the golden bytes must not
// depend on the worker count.
func TestGoldenHierProtectReport(t *testing.T) {
	design, err := LoadBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		par  int
	}{
		{"serial", 1},
		{"parallel4", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pipe := goldenPipeline(
				WithAttackers("proximity", "greedy", "random"),
				WithRouteStrategy("hier"),
				WithRouteParallelism(tc.par),
			)
			res, err := pipe.Protect(ctx, design)
			if err != nil {
				t.Fatal(err)
			}
			goldenCompare(t, "protect_c432_hier.json", marshalGolden(t, res.Report()))
		})
	}
}

func TestGoldenSuiteReport(t *testing.T) {
	// Two benchmarks × two defenses × two attackers × two seed replicates:
	// the whole suite path — scheduler, cache, replicate seed derivation,
	// mean ± std aggregation, serialization — pinned byte for byte.
	var designs []*Design
	for _, name := range []string{"c432", "c880"} {
		d, err := LoadBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		designs = append(designs, d)
	}
	opts := []Option{
		WithDefenses("randomize-correction", "pin-swapping"),
		WithAttackers("proximity", "random"),
		WithReplicates(2),
	}
	ctx := context.Background()
	rep, err := goldenPipeline(opts...).Suite(ctx, designs)
	if err != nil {
		t.Fatal(err)
	}
	got := marshalGolden(t, rep)
	goldenCompare(t, "suite_small.json", got)

	// The golden bytes must not depend on the worker pool: a serial run
	// must serialize identically, cache counters included.
	serial, err := goldenPipeline(append(opts, WithParallelism(1))...).Suite(ctx, designs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, marshalGolden(t, serial)) {
		t.Fatal("serial suite run does not match the parallel golden bytes")
	}
}

func TestGoldenMatrixReport(t *testing.T) {
	design, err := LoadBenchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{
		WithDefenses("randomize-correction", "naive-lifted", "pin-swapping"),
		WithAttackers("proximity", "greedy", "random"),
	}
	ctx := context.Background()
	rep, err := goldenPipeline(opts...).Matrix(ctx, design)
	if err != nil {
		t.Fatal(err)
	}
	got := marshalGolden(t, rep)
	goldenCompare(t, "matrix_c432.json", got)

	// The golden bytes must not depend on evaluation parallelism: a serial
	// run must serialize identically.
	serial, err := goldenPipeline(append(opts, WithParallelism(1))...).Matrix(ctx, design)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, marshalGolden(t, serial)) {
		t.Fatal("serial matrix run does not match the parallel golden bytes")
	}
}
