// BenchmarkSuperblueEndToEnd: the full attacker-facing pipeline on one
// superblue stand-in, at a configurable scale divisor. This is the
// benchmark that finally covers the paper's real sizes: at SUPERBLUE_SCALE=1
// it synthesizes, binds, places, routes, and splits superblue18 at its
// published 670k-net size on one machine (see DESIGN.md "Memory layout at
// scale" for the numbers the SoA overhaul buys there). CI runs it at a
// reduced scale and publishes the result as BENCH_superblue.json, with one
// sub-benchmark series per routing strategy (flat and hier) so the
// hierarchical router's speedup is tracked as its own trajectory.
package splitmfg

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/layout"
	"splitmfg/internal/place"
	"splitmfg/internal/route"
)

// superblueBenchScale reads the scale divisor from SUPERBLUE_SCALE
// (1 = published size). The default keeps the CI bench smoke in seconds.
func superblueBenchScale(b *testing.B) int {
	const def = 400
	s := os.Getenv("SUPERBLUE_SCALE")
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 1 {
		b.Fatalf("bad SUPERBLUE_SCALE %q: want integer >= 1", s)
	}
	return v
}

// benchStrategies are the routing strategies every superblue benchmark
// runs as sub-benchmarks: the strategy name is the sub-benchmark's final
// path segment, which tools/benchjson turns into a variant tag so both
// series land in one JSON artifact.
var benchStrategies = []route.Strategy{route.StrategyFlat, route.StrategyHier}

// BenchmarkSuperblueEndToEnd measures netlist synthesis -> cell binding ->
// placement at the published utilization -> full routing -> M5 split (the
// FEOL view a foundry adversary starts from) for superblue18, the smallest
// of the five industrial designs, once per routing strategy. One iteration
// is one complete pipeline; allocs/op and B/op therefore bound the
// end-to-end allocation cost of taking a design from published counts to
// an attackable split view.
func BenchmarkSuperblueEndToEnd(b *testing.B) {
	const name = "superblue18"
	scale := superblueBenchScale(b)
	util, err := bench.SuperblueUtil(name)
	if err != nil {
		b.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	for _, strat := range benchStrategies {
		b.Run(fmt.Sprintf("%s/scale%d/%s", name, scale, strat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nl, err := bench.Superblue(name, scale)
				if err != nil {
					b.Fatal(err)
				}
				d, err := correction.BuildOriginal(nl, lib, correction.Options{
					UtilPercent: util, Seed: 1,
					RouteOpt: route.Options{Strategy: strat},
				})
				if err != nil {
					b.Fatal(err)
				}
				sv, err := d.Split(5)
				if err != nil {
					b.Fatal(err)
				}
				if len(sv.VPins) == 0 {
					b.Fatal("split produced no vpins")
				}
			}
		})
	}
}

// BenchmarkSuperblueRoute isolates the routing phase: synthesis, binding,
// and placement run once outside the timer, and each iteration routes the
// placed design from scratch. This is the benchmark the hierarchical
// strategy is judged on — the flat and hier series differ only in how the
// router explores the grid, so their ratio is the pure two-level speedup
// with no placement noise.
func BenchmarkSuperblueRoute(b *testing.B) {
	const name = "superblue18"
	scale := superblueBenchScale(b)
	util, err := bench.SuperblueUtil(name)
	if err != nil {
		b.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	nl, err := bench.Superblue(name, scale)
	if err != nil {
		b.Fatal(err)
	}
	masters, err := lib.Bind(nl)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := place.Place(nl, masters, place.Options{UtilPercent: util, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range benchStrategies {
		b.Run(fmt.Sprintf("%s/scale%d/%s", name, scale, strat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := layout.NewDesign(nl, masters, pl, route.Options{Strategy: strat})
				if err := d.RouteAll(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
