// BenchmarkSuperblueEndToEnd: the full attacker-facing pipeline on one
// superblue stand-in, at a configurable scale divisor. This is the
// benchmark that finally covers the paper's real sizes: at SUPERBLUE_SCALE=1
// it synthesizes, binds, places, routes, and splits superblue18 at its
// published 670k-net size on one machine (see DESIGN.md "Memory layout at
// scale" for the numbers the SoA overhaul buys there). CI runs it at a
// reduced scale and publishes the result as BENCH_superblue.json.
package splitmfg

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
)

// superblueBenchScale reads the scale divisor from SUPERBLUE_SCALE
// (1 = published size). The default keeps the CI bench smoke in seconds.
func superblueBenchScale(b *testing.B) int {
	const def = 400
	s := os.Getenv("SUPERBLUE_SCALE")
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 1 {
		b.Fatalf("bad SUPERBLUE_SCALE %q: want integer >= 1", s)
	}
	return v
}

// BenchmarkSuperblueEndToEnd measures netlist synthesis -> cell binding ->
// placement at the published utilization -> full routing -> M5 split (the
// FEOL view a foundry adversary starts from) for superblue18, the smallest
// of the five industrial designs. One iteration is one complete pipeline;
// allocs/op and B/op therefore bound the end-to-end allocation cost of
// taking a design from published counts to an attackable split view.
func BenchmarkSuperblueEndToEnd(b *testing.B) {
	const name = "superblue18"
	scale := superblueBenchScale(b)
	util, err := bench.SuperblueUtil(name)
	if err != nil {
		b.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	b.Run(fmt.Sprintf("%s/scale%d", name, scale), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nl, err := bench.Superblue(name, scale)
			if err != nil {
				b.Fatal(err)
			}
			d, err := correction.BuildOriginal(nl, lib, correction.Options{UtilPercent: util, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			sv, err := d.Split(5)
			if err != nil {
				b.Fatal(err)
			}
			if len(sv.VPins) == 0 {
				b.Fatal("split produced no vpins")
			}
		}
	})
}
