// Command smattack runs the attacks from the attacker's perspective: build
// a layout (original or protected), split it, and report what each
// attacker engine recovers.
//
// Usage:
//
//	smattack -bench c880 -variant original -split 3,4,5
//	smattack -bench c880 -variant proposed -attacker proximity,greedy,ensemble
//	smattack -bench c432 -attacker random -json
//	smattack -bench superblue18 -variant proposed -attack crouting -split 5
//
// -attacker selects engines from the registry (see -list); -attack
// crouting keeps the dedicated Table-3-shaped candidate-list report.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"splitmfg"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smattack:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smattack", flag.ContinueOnError)
	name := fs.String("bench", "c880", "benchmark name")
	variant := fs.String("variant", "original", "original | proposed | lifted")
	attackKind := fs.String("attack", "proximity", "proximity | crouting (report style; crouting = Table-3 candidate lists)")
	attackers := fs.String("attacker", "proximity", "comma-separated attacker engines (see -list)")
	list := fs.Bool("list", false, "list the registered attacker engines and exit")
	splits := fs.String("split", "3,4,5", "comma-separated split layers")
	scale := fs.Int("scale", 300, "superblue scale divisor")
	seed := fs.Int64("seed", 1, "seed")
	words := fs.Int("patterns", 0, "64-pattern words for OER/HD (default 256)")
	jsonOut := fs.Bool("json", false, "emit the security report as JSON")
	verbose := fs.Bool("v", false, "stream per-stage progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(stdout, strings.Join(splitmfg.Attackers(), "\n"))
		return nil
	}

	layers, err := parseLayers(*splits)
	if err != nil {
		return err
	}
	engines, err := splitmfg.ParseAttackers(*attackers)
	if err != nil {
		return err
	}

	design, err := splitmfg.LoadBenchmark(*name, splitmfg.WithScale(*scale))
	if err != nil {
		return err
	}
	opts := []splitmfg.Option{
		splitmfg.WithSeed(*seed),
		splitmfg.WithSplitLayers(layers...),
		splitmfg.WithAttackers(engines...),
		splitmfg.WithPatternWords(*words),
	}
	if *verbose {
		opts = append(opts, splitmfg.WithProgress(splitmfg.ProgressLogger(os.Stderr)))
	}
	pipe := splitmfg.New(opts...)
	if err := pipe.Validate(); err != nil {
		return err
	}

	var l *splitmfg.Layout
	switch *variant {
	case "original":
		l, err = pipe.Baseline(ctx, design)
	case "proposed":
		// Attacker's view: the protected layout alone, skipping the
		// baseline build and PPA accounting Protect would also do.
		l, err = pipe.Randomized(ctx, design)
	case "lifted":
		l, err = pipe.NaiveLifted(ctx, design)
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	if err != nil {
		return err
	}

	switch *attackKind {
	case "proximity":
		sec, err := pipe.Evaluate(ctx, l)
		if err != nil {
			return err
		}
		if *jsonOut {
			b, err := splitmfg.MarshalReport(sec)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, string(b))
			return nil
		}
		fmt.Fprintf(stdout, "%s %s: attackers %v over splits %v\n", *name, *variant, engines, layers)
		fmt.Fprintln(stdout, splitmfg.Headline(*sec))
		for _, ar := range sec.PerAttacker {
			if ar.Scored {
				fmt.Fprintf(stdout, "  %-10s CCR %5.1f%%  OER %5.1f%%  HD %5.1f%% over %d fragments\n",
					ar.Attacker, ar.CCRPercent, ar.OERPercent, ar.HDPercent, ar.Fragments)
			} else {
				fmt.Fprintf(stdout, "  %-10s metrics-only: %v\n", ar.Attacker, ar.Metrics)
			}
		}
	case "crouting":
		reps, err := pipe.CRouting(ctx, l)
		if err != nil {
			return err
		}
		if *jsonOut {
			b, err := splitmfg.MarshalReport(reps)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, string(b))
			return nil
		}
		for _, r := range reps {
			fmt.Fprintf(stdout, "%s %s split M%d: vpins=%d", *name, *variant, r.Layer, r.VPins)
			for _, b := range []int{15, 30, 45} {
				fmt.Fprintf(stdout, "  E[LS]%d=%.2f", b, r.AvgListSize[b])
			}
			fmt.Fprintf(stdout, "  match45=%.2f\n", r.MatchInList[45])
		}
	default:
		return fmt.Errorf("unknown attack %q", *attackKind)
	}
	return nil
}

func parseLayers(s string) ([]int, error) {
	var layers []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -split %q: %v", s, err)
		}
		layers = append(layers, v)
	}
	return layers, nil
}
