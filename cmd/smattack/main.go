// Command smattack runs the attacks from the attacker's perspective: build
// a layout (original or protected), split it, and report what each attack
// recovers.
//
// Usage:
//
//	smattack -bench c880 -variant original -split 3,4,5
//	smattack -bench c880 -variant proposed
//	smattack -bench superblue18 -variant proposed -attack crouting -split 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"splitmfg/internal/attack/crouting"
	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/defense/randomize"
	"splitmfg/internal/flow"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"

	"math/rand"
)

func main() {
	name := flag.String("bench", "c880", "benchmark name")
	variant := flag.String("variant", "original", "original | proposed | lifted")
	attackKind := flag.String("attack", "proximity", "proximity | crouting")
	splits := flag.String("split", "3,4,5", "comma-separated split layers")
	scale := flag.Int("scale", 300, "superblue scale divisor")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	var (
		nl    *netlist.Netlist
		err   error
		util  = 70
		liftL = 6
	)
	if strings.HasPrefix(*name, "superblue") {
		nl, err = bench.Superblue(*name, *scale)
		if err == nil {
			util, err = bench.SuperblueUtil(*name)
		}
		liftL = 8
	} else {
		nl, err = bench.ISCAS85(*name)
	}
	if err != nil {
		fatal(err)
	}
	lib := cell.NewNangate45Like()
	copt := correction.Options{LiftLayer: liftL, UtilPercent: util, Seed: *seed}

	var d *layout.Design
	var filter map[netlist.PinRef]bool
	switch *variant {
	case "original":
		d, err = correction.BuildOriginal(nl, lib, copt)
	case "proposed":
		rng := rand.New(rand.NewSource(*seed))
		var r *randomize.Result
		r, err = randomize.Randomize(nl, rng, randomize.Options{})
		if err == nil {
			var p *correction.Protected
			p, err = correction.BuildProtected(nl, r, lib, copt)
			if err == nil {
				d = p.Design
				filter = p.ProtectedSinks()
			}
		}
	case "lifted":
		rng := rand.New(rand.NewSource(*seed))
		var r *randomize.Result
		r, err = randomize.Randomize(nl, rng, randomize.Options{})
		if err == nil {
			var sinks []netlist.PinRef
			for pin := range r.Protected {
				sinks = append(sinks, pin)
			}
			var p *correction.Protected
			p, err = correction.BuildNaiveLifted(nl, sinks, lib, copt)
			if err == nil {
				d = p.Design
				filter = p.ProtectedSinks()
			}
		}
	default:
		fatal(fmt.Errorf("unknown variant %q", *variant))
	}
	if err != nil {
		fatal(err)
	}

	var layers []int
	for _, s := range strings.Split(*splits, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		layers = append(layers, v)
	}

	switch *attackKind {
	case "proximity":
		sec, err := flow.EvaluateSecurity(d, nl, layers, filter, *seed, 256)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s %s: network-flow attack over splits %v\n", *name, *variant, layers)
		fmt.Printf("CCR %.1f%%  OER %.1f%%  HD %.1f%%  (%d fragments scored, %d non-vacuous layers)\n",
			sec.CCR*100, sec.OER*100, sec.HD*100, sec.Protected, sec.Layers)
	case "crouting":
		for _, layer := range layers {
			sv, err := d.Split(layer)
			if err != nil {
				fatal(err)
			}
			res := crouting.Attack(d, sv, nl, crouting.DefaultOptions())
			fmt.Printf("%s %s split M%d: vpins=%d", *name, *variant, layer, res.NumVPins)
			for _, b := range []int{15, 30, 45} {
				fmt.Printf("  E[LS]%d=%.2f", b, res.AvgListSize[b])
			}
			fmt.Printf("  match45=%.2f\n", res.MatchInList[45])
		}
	default:
		fatal(fmt.Errorf("unknown attack %q", *attackKind))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smattack:", err)
	os.Exit(1)
}
