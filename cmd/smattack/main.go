// Command smattack runs the attacks from the attacker's perspective: build
// a layout (original or protected), split it, and report what each attack
// recovers.
//
// Usage:
//
//	smattack -bench c880 -variant original -split 3,4,5
//	smattack -bench c880 -variant proposed
//	smattack -bench superblue18 -variant proposed -attack crouting -split 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"splitmfg"
)

func main() {
	name := flag.String("bench", "c880", "benchmark name")
	variant := flag.String("variant", "original", "original | proposed | lifted")
	attackKind := flag.String("attack", "proximity", "proximity | crouting")
	splits := flag.String("split", "3,4,5", "comma-separated split layers")
	scale := flag.Int("scale", 300, "superblue scale divisor")
	seed := flag.Int64("seed", 1, "seed")
	jsonOut := flag.Bool("json", false, "emit the security report as JSON")
	flag.Parse()

	var layers []int
	for _, s := range strings.Split(*splits, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		layers = append(layers, v)
	}

	design, err := splitmfg.LoadBenchmark(*name, splitmfg.WithScale(*scale))
	if err != nil {
		fatal(err)
	}
	pipe := splitmfg.New(
		splitmfg.WithSeed(*seed),
		splitmfg.WithSplitLayers(layers...),
	)

	ctx := context.Background()
	var l *splitmfg.Layout
	switch *variant {
	case "original":
		l, err = pipe.Baseline(ctx, design)
	case "proposed":
		// Attacker's view: the protected layout alone, skipping the
		// baseline build and PPA accounting Protect would also do.
		l, err = pipe.Randomized(ctx, design)
	case "lifted":
		l, err = pipe.NaiveLifted(ctx, design)
	default:
		fatal(fmt.Errorf("unknown variant %q", *variant))
	}
	if err != nil {
		fatal(err)
	}

	switch *attackKind {
	case "proximity":
		sec, err := pipe.Evaluate(ctx, l)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			b, err := splitmfg.MarshalReport(sec)
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(b))
			return
		}
		fmt.Printf("%s %s: network-flow attack over splits %v\n", *name, *variant, layers)
		fmt.Println(splitmfg.Headline(*sec))
	case "crouting":
		reps, err := pipe.CRouting(ctx, l)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			b, err := splitmfg.MarshalReport(reps)
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(b))
			return
		}
		for _, r := range reps {
			fmt.Printf("%s %s split M%d: vpins=%d", *name, *variant, r.Layer, r.VPins)
			for _, b := range []int{15, 30, 45} {
				fmt.Printf("  E[LS]%d=%.2f", b, r.AvgListSize[b])
			}
			fmt.Printf("  match45=%.2f\n", r.MatchInList[45])
		}
	default:
		fatal(fmt.Errorf("unknown attack %q", *attackKind))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smattack:", err)
	os.Exit(1)
}
