package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunListAttackers(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"proximity", "crouting", "random", "greedy", "ensemble"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunMultiAttacker(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-bench", "c432", "-attacker", "random,greedy", "-patterns", "16"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"random", "greedy", "CCR"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCRoutingLegacy(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-bench", "c432", "-attack", "crouting", "-split", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E[LS]") {
		t.Fatalf("crouting output missing candidate-list sizes:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-bench", "c9999"},                      // unknown benchmark
		{"-bench", "c432", "-variant", "bogus"},  // unknown variant
		{"-bench", "c432", "-attacker", "bogus"}, // unknown engine
		{"-bench", "c432", "-attacker", ""},      // empty engine list
		{"-bench", "c432", "-split", "3,x"},      // malformed split list
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(context.Background(), args, &out); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}
