// Command smserve is the long-running splitmfg evaluation server: it
// exposes the protect/attack/evaluate/matrix/suite pipeline over HTTP+JSON
// with job management, Server-Sent-Events progress streaming, and a
// process-wide result cache shared across requests.
//
// Usage:
//
//	smserve -addr :8080 -parallelism 8 -jobs 2
//
// Endpoints:
//
//	POST   /v1/jobs             submit a job (body: a splitmfg.JobRequest)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        status + report once done
//	GET    /v1/jobs/{id}/events progress stream (SSE, replayed from start)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/stats            job-state and cache counters
//	GET    /v1/catalog          valid benchmarks/attackers/defenses/kinds
//	GET    /healthz             liveness
//
// SIGINT/SIGTERM drain the server: running jobs get -drain to finish (the
// in-flight queue is canceled immediately), then outstanding connections
// close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"splitmfg/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smserve:", err)
		os.Exit(1)
	}
}

// onListen, when non-nil, receives the bound address before the server
// starts serving — the test seam for -addr :0.
var onListen func(addr net.Addr)

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	parallelism := fs.Int("parallelism", 0, "global worker budget split across running jobs (default GOMAXPROCS)")
	jobs := fs.Int("jobs", 2, "max concurrently running jobs")
	queue := fs.Int("queue", 64, "max queued jobs behind the running ones")
	events := fs.Int("events", 4096, "per-job progress ring capacity for SSE replay")
	cacheDir := fs.String("cache-dir", "", "disk-backed result store directory: identical requests are free across restarts and shared with smbench -suite -cache-dir runs")
	cacheEntries := fs.Int("cache-entries", 256, "completed reports kept in the in-memory result cache (LRU beyond that)")
	routeStrategy := fs.String("route-strategy", "", "routing strategy for requests that omit route_strategy: auto, flat, or hier (default: the library's auto)")
	retain := fs.Duration("retain", time.Hour, "how long finished jobs stay pollable before the registry prunes them")
	retainJobs := fs.Int("retain-jobs", 512, "max finished jobs kept in the registry")
	drain := fs.Duration("drain", 15*time.Second, "shutdown grace period for running jobs")
	verbose := fs.Bool("v", false, "log job lifecycle transitions to stderr")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof debug endpoints on this address (opt-in; keep it loopback-only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The profiling mux is opt-in and lives on its own listener so the
	// public API port never exposes debug endpoints.
	if *pprofAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %v", err)
		}
		defer dln.Close()
		fmt.Fprintf(stdout, "smserve: pprof on %s\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, dbg); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "smserve: pprof:", err)
			}
		}()
	}

	cfg := server.Config{
		Parallelism:   *parallelism,
		MaxRunning:    *jobs,
		QueueDepth:    *queue,
		EventBuffer:   *events,
		CacheDir:      *cacheDir,
		CacheEntries:  *cacheEntries,
		RetainCount:   *retainJobs,
		RetainTTL:     *retain,
		RouteStrategy: *routeStrategy,
	}
	if *verbose {
		logger := log.New(os.Stderr, "smserve: ", log.LstdFlags)
		cfg.Logf = logger.Printf
	}
	mgr, err := server.NewManager(cfg)
	if err != nil {
		return err
	}
	if *cacheDir != "" {
		fmt.Fprintf(stdout, "smserve: result store at %s\n", *cacheDir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	fmt.Fprintf(stdout, "smserve: listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: server.NewHandler(mgr)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// Serve only returns on listener failure here; drain what ran.
		mgr.Shutdown(context.Background())
		return err
	case <-ctx.Done():
	}

	// Drain order matters: finishing (or canceling) the jobs closes their
	// event logs, which ends the SSE streams, which lets the HTTP shutdown
	// below complete within the same grace period.
	fmt.Fprintf(stdout, "smserve: draining (up to %s)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	mgr.Shutdown(drainCtx)
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		srv.Close()
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "smserve: bye")
	return nil
}
