package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeSubmitDrain: boot the server on an ephemeral port, submit a
// small evaluate job over HTTP, poll it to completion, then cancel the
// serve context (the SIGTERM path) and check the drain completes cleanly.
func TestServeSubmitDrain(t *testing.T) {
	addrs := make(chan net.Addr, 1)
	onListen = func(addr net.Addr) { addrs <- addr }
	defer func() { onListen = nil }()

	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-jobs", "1", "-drain", "30s"}, &out)
	}()

	var base string
	select {
	case addr := <-addrs:
		base = "http://" + addr.String()
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never bound")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", resp.StatusCode)
	}

	body := `{"kind":"evaluate","benchmark":"c432","pattern_words":4,"split_layers":[3],"attackers":["random"]}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || info.ID == "" {
		t.Fatalf("submit returned %d with id %q", resp.StatusCode, info.ID)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + info.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State  string          `json:"state"`
			Report json.RawMessage `json:"report"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == "done" {
			if len(st.Report) == 0 {
				t.Fatal("done job served no report")
			}
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("job ended %s", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after deadline", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after drain", err)
		}
	case <-time.After(45 * time.Second):
		t.Fatal("server did not drain")
	}
	for _, want := range []string{"listening on", "draining", "bye"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output %q lacks %q", out.String(), want)
		}
	}
}

// TestBadFlags: flag errors surface as errors, not exits.
func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-bogus"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
