// Command smflow runs the full protection flow (Fig. 2 of the paper) on a
// benchmark and writes the protected layout as DEF, plus the erroneous
// netlist as Verilog, plus a PPA/security report to stdout.
//
// Usage:
//
//	smflow -bench c432 -lift 6 -budget 20 -out c432_protected.def
//	smflow -bench superblue18 -scale 300 -lift 8 -budget 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defio"
	"splitmfg/internal/flow"
	"splitmfg/internal/netlist"
	"splitmfg/internal/verilog"
)

func main() {
	name := flag.String("bench", "c432", "benchmark (c432..c7552 or superblue1/5/10/12/18)")
	lift := flag.Int("lift", 0, "lift layer (default: 6 for ISCAS, 8 for superblue)")
	budget := flag.Float64("budget", 0, "PPA budget percent (default: 20 ISCAS, 5 superblue)")
	scale := flag.Int("scale", 300, "superblue scale divisor")
	seed := flag.Int64("seed", 1, "seed")
	util := flag.Int("util", 0, "placement utilization (default: 70 ISCAS, published superblue values)")
	out := flag.String("out", "", "write protected-layout DEF to this file")
	vout := flag.String("verilog", "", "write the erroneous (FEOL) netlist as Verilog to this file")
	flag.Parse()

	var (
		nl  *netlist.Netlist
		err error
	)
	isSB := strings.HasPrefix(*name, "superblue")
	if isSB {
		nl, err = bench.Superblue(*name, *scale)
		if *lift == 0 {
			*lift = 8
		}
		if *budget == 0 {
			*budget = 5
		}
		if *util == 0 {
			*util, _ = bench.SuperblueUtil(*name)
		}
	} else {
		nl, err = bench.ISCAS85(*name)
		if *lift == 0 {
			*lift = 6
		}
		if *budget == 0 {
			*budget = 20
		}
		if *util == 0 {
			*util = 70
		}
	}
	if err != nil {
		fatal(err)
	}

	lib := cell.NewNangate45Like()
	res, err := flow.Protect(nl, lib, flow.Config{
		LiftLayer: *lift, UtilPercent: *util, Seed: *seed, PPABudgetPercent: *budget,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("design        %s (%v)\n", nl.Name, nl.ComputeStats())
	fmt.Printf("swaps         %d (erroneous-netlist OER %.3f)\n", res.Swaps, res.OER)
	fmt.Printf("baseline PPA  %v\n", res.BasePPA)
	fmt.Printf("restored PPA  %v\n", res.FinalPPA)
	fmt.Printf("overheads     area %.1f%%  power %.1f%%  delay %.1f%%  (budget %.0f%%)\n",
		res.AreaOH, res.PowerOH, res.DelayOH, res.Budget)

	sec, err := flow.EvaluateSecurity(res.Protected.Design, nl, []int{3, 4, 5},
		res.Protected.ProtectedSinks(), *seed, 256)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("attack        CCR %.1f%%  OER %.1f%%  HD %.1f%% over %d protected fragments (M3/M4/M5 avg)\n",
		sec.CCR*100, sec.OER*100, sec.HD*100, sec.Protected)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := defio.Write(f, res.Protected.Design); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote         %s\n", *out)
	}
	if *vout != "" {
		f, err := os.Create(*vout)
		if err != nil {
			fatal(err)
		}
		if err := verilog.Write(f, res.Protected.Erroneous); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote         %s\n", *vout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smflow:", err)
	os.Exit(1)
}
