// Command smflow runs the full protection flow (Fig. 2 of the paper) on a
// benchmark and writes the protected layout as DEF, plus the erroneous
// netlist as Verilog, plus a PPA/security report to stdout.
//
// Usage:
//
//	smflow -bench c432 -lift 6 -budget 20 -out c432_protected.def
//	smflow -bench superblue18 -scale 300 -lift 8 -budget 5
//	smflow -bench c880 -json -v
//	smflow -bench c432 -attacker proximity,greedy,random
//
// With -matrix it instead runs the defense×attacker cross-matrix
// evaluation behind the paper's Tables 4/5: every -defense scheme is
// built and every -attacker engine is run against it at each split layer.
//
//	smflow -bench c432 -matrix -defense randomize-correction,naive-lifted,pin-swapping -attacker proximity,greedy,random
//	smflow -list-defenses
//
// With -replicates n (n > 1) the matrix runs as a one-benchmark suite:
// every (defense, attacker) cell is evaluated under n derived seed
// streams and reported as mean ± standard deviation.
//
//	smflow -bench c880 -matrix -replicates 3
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"splitmfg"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smflow:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smflow", flag.ContinueOnError)
	name := fs.String("bench", "c432", "benchmark (c432..c7552 or superblue1/5/10/12/18)")
	lift := fs.Int("lift", 0, "lift layer (default: 6 for ISCAS, 8 for superblue)")
	budget := fs.Float64("budget", 0, "PPA budget percent (default: 20 ISCAS, 5 superblue)")
	scale := fs.Int("scale", 300, "superblue scale divisor")
	seed := fs.Int64("seed", 1, "seed")
	util := fs.Int("util", 0, "placement utilization (default: 70 ISCAS, published superblue values)")
	attackers := fs.String("attacker", "proximity", "comma-separated attacker engines for the security evaluation")
	defenses := fs.String("defense", "randomize-correction,naive-lifted,pin-swapping",
		"comma-separated defense schemes for -matrix")
	matrix := fs.Bool("matrix", false, "run the defense x attacker cross-matrix evaluation instead of the protect flow")
	replicates := fs.Int("replicates", 1, "seed replicates for -matrix (>1 reports mean ± std via the suite scheduler)")
	listDefenses := fs.Bool("list-defenses", false, "list the registered defense schemes and exit")
	words := fs.Int("patterns", 0, "64-pattern words for OER/HD (default 256)")
	routeStrategy := fs.String("route-strategy", "", "routing strategy: auto (default, picks by die area), flat, or hier")
	attempts := fs.Int("attempts", 0, "escalation attempts (default 6; 1 = no escalation)")
	out := fs.String("out", "", "write protected-layout DEF to this file")
	vout := fs.String("verilog", "", "write the erroneous (FEOL) netlist as Verilog to this file")
	jsonOut := fs.Bool("json", false, "emit the protect+security reports as JSON")
	verbose := fs.Bool("v", false, "stream per-stage progress to stderr")
	progress := fs.Bool("progress", false, "deprecated alias for -v")
	if err := fs.Parse(args); err != nil {
		return err
	}
	*verbose = *verbose || *progress

	if *listDefenses {
		for _, name := range splitmfg.Defenses() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}

	engines, err := splitmfg.ParseAttackers(*attackers)
	if err != nil {
		return err
	}
	schemes, err := splitmfg.ParseDefenses(*defenses)
	if err != nil {
		return err
	}
	design, err := splitmfg.LoadBenchmark(*name, splitmfg.WithScale(*scale))
	if err != nil {
		return err
	}
	opts := []splitmfg.Option{
		splitmfg.WithSeed(*seed),
		splitmfg.WithLiftLayer(*lift),
		splitmfg.WithUtilization(*util),
		splitmfg.WithPPABudget(*budget),
		splitmfg.WithAttackers(engines...),
		splitmfg.WithDefenses(schemes...),
		splitmfg.WithPatternWords(*words),
		splitmfg.WithMaxAttempts(*attempts),
		splitmfg.WithReplicates(*replicates),
		splitmfg.WithRouteStrategy(*routeStrategy),
	}
	if *verbose {
		opts = append(opts, splitmfg.WithProgress(splitmfg.ProgressLogger(os.Stderr)))
	}
	pipe := splitmfg.New(opts...)
	if err := pipe.Validate(); err != nil {
		return err
	}

	if *replicates > 1 && !*matrix {
		return fmt.Errorf("-replicates only applies to -matrix runs")
	}
	if *matrix {
		if *out != "" || *vout != "" {
			return fmt.Errorf("-matrix evaluates many layouts and exports none: drop -out/-verilog")
		}
		if *replicates > 1 {
			// Multi-seed: the one-benchmark suite reports mean ± std over
			// the replicates' derived seed streams.
			rep, err := pipe.Suite(ctx, []*splitmfg.Design{design})
			if err != nil {
				return err
			}
			if *jsonOut {
				b, err := splitmfg.MarshalReport(rep)
				if err != nil {
					return err
				}
				fmt.Fprintln(stdout, string(b))
				return nil
			}
			fmt.Fprint(stdout, splitmfg.RenderSuite(rep))
			return nil
		}
		rep, err := pipe.Matrix(ctx, design)
		if err != nil {
			return err
		}
		if *jsonOut {
			b, err := splitmfg.MarshalReport(rep)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, string(b))
			return nil
		}
		fmt.Fprint(stdout, splitmfg.RenderMatrix(rep))
		return nil
	}
	res, err := pipe.Protect(ctx, design)
	if err != nil {
		return err
	}
	sec, err := pipe.Evaluate(ctx, res.ProtectedLayout())
	if err != nil {
		return err
	}

	rep := res.Report()
	if *jsonOut {
		for _, v := range []interface{}{rep, sec} {
			b, err := splitmfg.MarshalReport(v)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, string(b))
		}
	} else {
		fmt.Fprintf(stdout, "design        %s (%v)\n", design.Name(), design.Stats())
		fmt.Fprintf(stdout, "swaps         %d (erroneous-netlist OER %.3f)\n", rep.Swaps, rep.ErroneousOER)
		fmt.Fprintf(stdout, "baseline PPA  area %.1fum2 power %.1fuW delay %.1fps\n",
			rep.BasePPA.AreaUM2, rep.BasePPA.PowerUW, rep.BasePPA.DelayPS)
		fmt.Fprintf(stdout, "restored PPA  area %.1fum2 power %.1fuW delay %.1fps\n",
			rep.FinalPPA.AreaUM2, rep.FinalPPA.PowerUW, rep.FinalPPA.DelayPS)
		fmt.Fprintf(stdout, "overheads     area %.1f%%  power %.1f%%  delay %.1f%%  (budget %.0f%%)\n",
			rep.AreaOHPct, rep.PowerOHPct, rep.DelayOHPct, rep.BudgetPercent)
		fmt.Fprintf(stdout, "attack        %s (M3/M4/M5 avg)\n", splitmfg.Headline(*sec))
		for _, ar := range sec.PerAttacker {
			if ar.Scored {
				fmt.Fprintf(stdout, "  %-10s  CCR %5.1f%%  OER %5.1f%%  HD %5.1f%%\n",
					ar.Attacker, ar.CCRPercent, ar.OERPercent, ar.HDPercent)
			} else {
				fmt.Fprintf(stdout, "  %-10s  metrics-only: %v\n", ar.Attacker, ar.Metrics)
			}
		}
	}

	if *out != "" {
		if err := writeFile(stdout, *out, res.WriteDEF); err != nil {
			return err
		}
	}
	if *vout != "" {
		if err := writeFile(stdout, *vout, res.WriteErroneousVerilog); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(stdout io.Writer, path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote         %s\n", path)
	return nil
}
