// Command smflow runs the full protection flow (Fig. 2 of the paper) on a
// benchmark and writes the protected layout as DEF, plus the erroneous
// netlist as Verilog, plus a PPA/security report to stdout.
//
// Usage:
//
//	smflow -bench c432 -lift 6 -budget 20 -out c432_protected.def
//	smflow -bench superblue18 -scale 300 -lift 8 -budget 5
//	smflow -bench c880 -json -progress
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"splitmfg"
)

func main() {
	name := flag.String("bench", "c432", "benchmark (c432..c7552 or superblue1/5/10/12/18)")
	lift := flag.Int("lift", 0, "lift layer (default: 6 for ISCAS, 8 for superblue)")
	budget := flag.Float64("budget", 0, "PPA budget percent (default: 20 ISCAS, 5 superblue)")
	scale := flag.Int("scale", 300, "superblue scale divisor")
	seed := flag.Int64("seed", 1, "seed")
	util := flag.Int("util", 0, "placement utilization (default: 70 ISCAS, published superblue values)")
	out := flag.String("out", "", "write protected-layout DEF to this file")
	vout := flag.String("verilog", "", "write the erroneous (FEOL) netlist as Verilog to this file")
	jsonOut := flag.Bool("json", false, "emit the protect+security reports as JSON")
	progress := flag.Bool("progress", false, "stream per-stage progress to stderr")
	flag.Parse()

	design, err := splitmfg.LoadBenchmark(*name, splitmfg.WithScale(*scale))
	if err != nil {
		fatal(err)
	}
	opts := []splitmfg.Option{
		splitmfg.WithSeed(*seed),
		splitmfg.WithLiftLayer(*lift),
		splitmfg.WithUtilization(*util),
		splitmfg.WithPPABudget(*budget),
	}
	if *progress {
		opts = append(opts, splitmfg.WithProgress(splitmfg.ProgressLogger(os.Stderr)))
	}
	pipe := splitmfg.New(opts...)

	ctx := context.Background()
	res, err := pipe.Protect(ctx, design)
	if err != nil {
		fatal(err)
	}
	sec, err := pipe.Evaluate(ctx, res.ProtectedLayout())
	if err != nil {
		fatal(err)
	}

	rep := res.Report()
	if *jsonOut {
		for _, v := range []interface{}{rep, sec} {
			b, err := splitmfg.MarshalReport(v)
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(b))
		}
	} else {
		fmt.Printf("design        %s (%v)\n", design.Name(), design.Stats())
		fmt.Printf("swaps         %d (erroneous-netlist OER %.3f)\n", rep.Swaps, rep.ErroneousOER)
		fmt.Printf("baseline PPA  area %.1fum2 power %.1fuW delay %.1fps\n",
			rep.BasePPA.AreaUM2, rep.BasePPA.PowerUW, rep.BasePPA.DelayPS)
		fmt.Printf("restored PPA  area %.1fum2 power %.1fuW delay %.1fps\n",
			rep.FinalPPA.AreaUM2, rep.FinalPPA.PowerUW, rep.FinalPPA.DelayPS)
		fmt.Printf("overheads     area %.1f%%  power %.1f%%  delay %.1f%%  (budget %.0f%%)\n",
			rep.AreaOHPct, rep.PowerOHPct, rep.DelayOHPct, rep.BudgetPercent)
		fmt.Printf("attack        %s (M3/M4/M5 avg)\n", splitmfg.Headline(*sec))
	}

	if *out != "" {
		writeFile(*out, res.WriteDEF)
	}
	if *vout != "" {
		writeFile(*vout, res.WriteErroneousVerilog)
	}
}

func writeFile(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote         %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smflow:", err)
	os.Exit(1)
}
