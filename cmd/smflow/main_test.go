package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunJSONReports(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-bench", "c432", "-attempts", "1", "-patterns", "16", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	// Two JSON documents: ProtectReport then SecurityReport.
	dec := json.NewDecoder(strings.NewReader(out.String()))
	var docs []map[string]interface{}
	for dec.More() {
		var doc map[string]interface{}
		if err := dec.Decode(&doc); err != nil {
			t.Fatalf("invalid JSON output: %v\n%s", err, out.String())
		}
		docs = append(docs, doc)
	}
	if len(docs) != 2 {
		t.Fatalf("got %d JSON documents, want 2", len(docs))
	}
	if _, ok := docs[0]["erroneous_oer"]; !ok {
		t.Fatalf("first document is not a protect report: %v", docs[0])
	}
	if _, ok := docs[1]["attackers"]; !ok {
		t.Fatalf("security report has no attackers section: %v", docs[1])
	}
}

func TestRunDEFExport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c432.def")
	var buf strings.Builder
	err := run([]string{"-bench", "c432", "-attempts", "1", "-patterns", "16",
		"-attacker", "random", "-out", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Fatalf("missing DEF write confirmation:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "random") {
		t.Fatalf("missing per-attacker section:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bench", "nope"},
		{"-attacker", "bogus"}, // rejected before any heavy work
		{"-attacker", ","},     // effectively empty list
	} {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}
