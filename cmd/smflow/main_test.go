package main

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunJSONReports(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-bench", "c432", "-attempts", "1", "-patterns", "16", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	// Two JSON documents: ProtectReport then SecurityReport.
	dec := json.NewDecoder(strings.NewReader(out.String()))
	var docs []map[string]interface{}
	for dec.More() {
		var doc map[string]interface{}
		if err := dec.Decode(&doc); err != nil {
			t.Fatalf("invalid JSON output: %v\n%s", err, out.String())
		}
		docs = append(docs, doc)
	}
	if len(docs) != 2 {
		t.Fatalf("got %d JSON documents, want 2", len(docs))
	}
	if _, ok := docs[0]["erroneous_oer"]; !ok {
		t.Fatalf("first document is not a protect report: %v", docs[0])
	}
	if _, ok := docs[1]["attackers"]; !ok {
		t.Fatalf("security report has no attackers section: %v", docs[1])
	}
}

func TestRunDEFExport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c432.def")
	var buf strings.Builder
	err := run(context.Background(), []string{"-bench", "c432", "-attempts", "1", "-patterns", "16",
		"-attacker", "random", "-out", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Fatalf("missing DEF write confirmation:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "random") {
		t.Fatalf("missing per-attacker section:\n%s", buf.String())
	}
}

func TestRunListDefenses(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-list-defenses"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"randomize-correction", "naive-lifted", "pin-swapping", "sengupta-gcolor"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list-defenses misses %q:\n%s", name, out.String())
		}
	}
}

func TestRunMatrixJSON(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-bench", "c432", "-matrix", "-patterns", "16", "-json",
		"-defense", "pin-swapping,sengupta-gcolor", "-attacker", "random"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Defenses []string `json:"defenses"`
		Rows     []struct {
			Defense string `json:"defense"`
			Cells   []struct {
				Attacker string `json:"attacker"`
			} `json:"cells"`
		} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("invalid matrix JSON: %v\n%s", err, out.String())
	}
	if len(rep.Rows) != 2 || rep.Rows[0].Defense != "pin-swapping" ||
		len(rep.Rows[0].Cells) != 1 || rep.Rows[0].Cells[0].Attacker != "random" {
		t.Fatalf("unexpected matrix shape: %+v", rep)
	}
}

func TestRunMatrixTable(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-bench", "c432", "-matrix", "-patterns", "16",
		"-defense", "pin-swapping", "-attacker", "random"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "defense x attacker matrix") ||
		!strings.Contains(out.String(), "pin-swapping") {
		t.Fatalf("matrix table missing:\n%s", out.String())
	}
}

func TestRunMatrixReplicatesSuite(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-bench", "c432", "-matrix", "-patterns", "16",
		"-replicates", "2", "-defense", "pin-swapping", "-attacker", "random"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "suite: 1 benchmarks") || !strings.Contains(s, "2 replicate(s)") ||
		!strings.Contains(s, "pin-swapping") {
		t.Fatalf("replicated matrix output missing suite sections:\n%s", s)
	}
}

func TestRunReplicatesRequiresMatrix(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-bench", "c432", "-replicates", "2"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-replicates") {
		t.Fatalf("got %v, want -replicates usage error", err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bench", "nope"},
		{"-attacker", "bogus"},       // rejected before any heavy work
		{"-attacker", ","},           // effectively empty list
		{"-defense", "bogus"},        // unknown defense scheme
		{"-defense", ","},            // effectively empty defense list
		{"-matrix", "-out", "x.def"}, // matrix exports no layout: reject, don't silently no-op
	} {
		var buf strings.Builder
		if err := run(context.Background(), args, &buf); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}
