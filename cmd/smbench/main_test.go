package main

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig4CSV(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-exp", "fig4", "-scale", "2000", "-patterns", "8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "variant,net,distance_um") {
		t.Fatalf("missing CSV header:\n%.200s", s)
	}
	for _, variant := range []string{"original", "lifted", "proposed"} {
		if !strings.Contains(s, variant+",") {
			t.Fatalf("missing %s series:\n%.200s", variant, s)
		}
	}
}

func TestRunMatrix(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-matrix", "-subset", "c432", "-patterns", "16",
		"-defense", "pin-swapping", "-attacker", "random"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "defense x attacker matrix: c432") ||
		!strings.Contains(out.String(), "pin-swapping") {
		t.Fatalf("matrix output missing:\n%s", out.String())
	}
}

func TestRunMatrixCancelled(t *testing.T) {
	// An interrupt-cancelled context must stop the matrix run promptly
	// and must not leave partial table output behind.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	err := run(ctx, []string{"-matrix", "-subset", "c432,c880", "-patterns", "16",
		"-defense", "pin-swapping", "-attacker", "random"}, &out)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled -matrix returned %v, want context.Canceled", err)
	}
	if out.Len() != 0 {
		t.Fatalf("cancelled -matrix left partial output:\n%s", out.String())
	}
}

func TestRunSuite(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-suite", "-subset", "c432,c880", "-patterns", "16",
		"-replicates", "2", "-defense", "pin-swapping", "-attacker", "random"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"suite: 2 benchmarks", "2 replicate(s)",
		"== aggregate: mean ± std across benchmarks ==",
		"== c432:", "== c880:", "pin-swapping", "cache:",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("suite output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSuiteCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	err := run(ctx, []string{"-suite", "-subset", "c432", "-patterns", "16",
		"-defense", "pin-swapping", "-attacker", "random"}, &out)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled -suite returned %v, want context.Canceled", err)
	}
	if out.Len() != 0 {
		t.Fatalf("cancelled -suite left partial output:\n%s", out.String())
	}
}

func TestRunMatrixSuiteExclusive(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-matrix", "-suite"}, &out)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("got %v, want mutually-exclusive error", err)
	}
}

func TestRunReplicatesRequiresSuite(t *testing.T) {
	// Reject, don't silently run a single-seed matrix.
	var out strings.Builder
	err := run(context.Background(), []string{"-matrix", "-replicates", "5"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-replicates") {
		t.Fatalf("got %v, want -replicates usage error", err)
	}
}

func TestRunCacheDirRequiresSuite(t *testing.T) {
	// Only the suite scheduler checkpoints to disk; reject the flag
	// elsewhere rather than silently ignoring it.
	var out strings.Builder
	err := run(context.Background(), []string{"-matrix", "-cache-dir", t.TempDir()}, &out)
	if err == nil || !strings.Contains(err.Error(), "-cache-dir") {
		t.Fatalf("got %v, want -cache-dir usage error", err)
	}
}

func TestRunSuiteResumesFromCacheDir(t *testing.T) {
	// Two identical suite runs over one cache dir must render the same
	// bytes, and the second must not write anything new to the store.
	dir := t.TempDir()
	args := []string{"-suite", "-subset", "c432", "-replicates", "2",
		"-patterns", "16", "-defense", "pin-swapping", "-attacker", "random",
		"-cache-dir", dir}
	var first strings.Builder
	if err := run(context.Background(), args, &first); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("first run persisted nothing")
	}
	var second strings.Builder
	if err := run(context.Background(), args, &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("resumed render differs:\n%s\n----\n%s", first.String(), second.String())
	}
	after, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(entries) {
		t.Fatalf("warm run grew the store from %d to %d entries", len(entries), len(after))
	}
}

func TestRunListDefenses(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-list-defenses"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "randomize-correction") {
		t.Fatalf("-list-defenses output:\n%s", out.String())
	}
}

func TestRunMatrixUnknownDefense(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-matrix", "-defense", "bogus"}, &out); err == nil ||
		!strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown defense not rejected: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-exp", "table99"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("got %v, want unknown-experiment error", err)
	}
}
