package main

import (
	"strings"
	"testing"
)

func TestRunFig4CSV(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "fig4", "-scale", "2000", "-patterns", "8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "variant,net,distance_um") {
		t.Fatalf("missing CSV header:\n%.200s", s)
	}
	for _, variant := range []string{"original", "lifted", "proposed"} {
		if !strings.Contains(s, variant+",") {
			t.Fatalf("missing %s series:\n%.200s", variant, s)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "table99"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("got %v, want unknown-experiment error", err)
	}
}
