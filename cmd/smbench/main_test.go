package main

import (
	"strings"
	"testing"
)

func TestRunFig4CSV(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "fig4", "-scale", "2000", "-patterns", "8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "variant,net,distance_um") {
		t.Fatalf("missing CSV header:\n%.200s", s)
	}
	for _, variant := range []string{"original", "lifted", "proposed"} {
		if !strings.Contains(s, variant+",") {
			t.Fatalf("missing %s series:\n%.200s", variant, s)
		}
	}
}

func TestRunMatrix(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-matrix", "-subset", "c432", "-patterns", "16",
		"-defense", "pin-swapping", "-attacker", "random"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "defense x attacker matrix: c432") ||
		!strings.Contains(out.String(), "pin-swapping") {
		t.Fatalf("matrix output missing:\n%s", out.String())
	}
}

func TestRunListDefenses(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list-defenses"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "randomize-correction") {
		t.Fatalf("-list-defenses output:\n%s", out.String())
	}
}

func TestRunMatrixUnknownDefense(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-matrix", "-defense", "bogus"}, &out); err == nil ||
		!strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown defense not rejected: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "table99"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("got %v, want unknown-experiment error", err)
	}
}
