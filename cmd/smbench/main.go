// Command smbench regenerates the paper's tables and figures.
//
// Usage:
//
//	smbench -exp all                 # everything (slow)
//	smbench -exp table4 -subset c432,c880
//	smbench -exp table2 -scale 300
//	smbench -exp fig4 > fig4.csv
//
// Experiments: table1 table2 table3 table4 table5 table6 fig4 fig5 fig6
// ppa ablation.
//
// With -matrix it instead runs the defense×attacker cross matrix on each
// benchmark of the subset (default c432):
//
//	smbench -matrix -subset c432,c880 -defense randomize-correction,pin-swapping -attacker proximity,random
//	smbench -list-defenses
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"splitmfg"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (table1..table6, fig4, fig5, fig6, ppa, ablation, all)")
	scale := fs.Int("scale", 300, "superblue scale divisor (1 = full size)")
	seed := fs.Int64("seed", 1, "master seed")
	words := fs.Int("patterns", 256, "64-pattern words for OER/HD (256 = 16384 patterns)")
	subset := fs.String("subset", "", "comma-separated ISCAS subset (default: all nine)")
	fig4Design := fs.String("fig4design", "superblue18", "design for fig4/fig5 series")
	defenses := fs.String("defense", "randomize-correction,naive-lifted,pin-swapping",
		"comma-separated defense schemes for -matrix")
	attackers := fs.String("attacker", "proximity", "comma-separated attacker engines for -matrix")
	matrix := fs.Bool("matrix", false, "run the defense x attacker cross matrix on the subset instead of an experiment")
	listDefenses := fs.Bool("list-defenses", false, "list the registered defense schemes and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listDefenses {
		for _, name := range splitmfg.Defenses() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}
	if *matrix {
		return runMatrix(stdout, *subset, *defenses, *attackers, *seed, *words, *scale)
	}

	cfg := splitmfg.ExperimentConfig{
		Seed:           *seed,
		SuperblueScale: *scale,
		PatternWords:   *words,
	}
	if *subset != "" {
		cfg.ISCASSubset = strings.Split(*subset, ",")
	}

	if *exp != "all" && *exp != "fig4" {
		known := false
		for _, name := range splitmfg.Experiments() {
			known = known || name == *exp
		}
		if !known {
			return fmt.Errorf("unknown experiment %q (have fig4, %s)",
				*exp, strings.Join(splitmfg.Experiments(), ", "))
		}
	}

	runOne := func(name string, f func() error) error {
		if *exp != "all" && *exp != name {
			return nil
		}
		fmt.Fprintf(stdout, "== %s ==\n", name)
		if err := f(); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		fmt.Fprintln(stdout)
		return nil
	}

	table := func(name string) func() error {
		return func() error {
			t, err := splitmfg.RunExperiment(name, cfg)
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, t.Render())
			return nil
		}
	}

	for _, name := range []string{"table1", "table2", "table3", "table4", "table5", "table6"} {
		if err := runOne(name, table(name)); err != nil {
			return err
		}
	}
	if err := runOne("fig4", func() error {
		csv, err := splitmfg.Fig4CSV(*fig4Design, cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, csv)
		return nil
	}); err != nil {
		return err
	}
	if err := runOne("fig5", func() error {
		t, err := splitmfg.Fig5(*fig4Design, cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, t.Render())
		return nil
	}); err != nil {
		return err
	}
	for _, name := range []string{"fig6", "ppa", "ablation"} {
		if err := runOne(name, table(name)); err != nil {
			return err
		}
	}
	return nil
}

// runMatrix renders the defense×attacker cross matrix for every benchmark
// in the comma-separated subset (default c432).
func runMatrix(stdout io.Writer, subset, defenses, attackers string, seed int64, words, scale int) error {
	schemes, err := splitmfg.ParseDefenses(defenses)
	if err != nil {
		return err
	}
	engines, err := splitmfg.ParseAttackers(attackers)
	if err != nil {
		return err
	}
	names := []string{"c432"}
	if subset != "" {
		names = strings.Split(subset, ",")
	}
	pipe := splitmfg.New(
		splitmfg.WithSeed(seed),
		splitmfg.WithPatternWords(words),
		splitmfg.WithDefenses(schemes...),
		splitmfg.WithAttackers(engines...),
	)
	for _, name := range names {
		design, err := splitmfg.LoadBenchmark(strings.TrimSpace(name), splitmfg.WithScale(scale))
		if err != nil {
			return err
		}
		rep, err := pipe.Matrix(context.Background(), design)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, splitmfg.RenderMatrix(rep))
		fmt.Fprintln(stdout)
	}
	return nil
}
