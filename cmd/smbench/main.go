// Command smbench regenerates the paper's tables and figures.
//
// Usage:
//
//	smbench -exp all                 # everything (slow)
//	smbench -exp table4 -subset c432,c880
//	smbench -exp table2 -scale 300
//	smbench -exp fig4 > fig4.csv
//
// Experiments: table1 table2 table3 table4 table5 table6 fig4 fig5 fig6
// ppa ablation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"splitmfg"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..table6, fig4, fig5, fig6, ppa, ablation, all)")
	scale := flag.Int("scale", 300, "superblue scale divisor (1 = full size)")
	seed := flag.Int64("seed", 1, "master seed")
	words := flag.Int("patterns", 256, "64-pattern words for OER/HD (256 = 16384 patterns)")
	subset := flag.String("subset", "", "comma-separated ISCAS subset (default: all nine)")
	fig4Design := flag.String("fig4design", "superblue18", "design for fig4/fig5 series")
	flag.Parse()

	cfg := splitmfg.ExperimentConfig{
		Seed:           *seed,
		SuperblueScale: *scale,
		PatternWords:   *words,
	}
	if *subset != "" {
		cfg.ISCASSubset = strings.Split(*subset, ",")
	}

	if *exp != "all" && *exp != "fig4" {
		known := false
		for _, name := range splitmfg.Experiments() {
			known = known || name == *exp
		}
		if !known {
			fmt.Fprintf(os.Stderr, "smbench: unknown experiment %q (have fig4, %s)\n",
				*exp, strings.Join(splitmfg.Experiments(), ", "))
			os.Exit(1)
		}
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	table := func(name string) func() error {
		return func() error {
			t, err := splitmfg.RunExperiment(name, cfg)
			if err != nil {
				return err
			}
			fmt.Print(t.Render())
			return nil
		}
	}

	for _, name := range []string{"table1", "table2", "table3", "table4", "table5", "table6"} {
		run(name, table(name))
	}
	run("fig4", func() error {
		csv, err := splitmfg.Fig4CSV(*fig4Design, cfg)
		if err != nil {
			return err
		}
		fmt.Print(csv)
		return nil
	})
	run("fig5", func() error {
		t, err := splitmfg.Fig5(*fig4Design, cfg)
		if err != nil {
			return err
		}
		fmt.Print(t.Render())
		return nil
	})
	run("fig6", table("fig6"))
	run("ppa", table("ppa"))
	run("ablation", table("ablation"))
}
