// Command smbench regenerates the paper's tables and figures.
//
// Usage:
//
//	smbench -exp all                 # everything (slow)
//	smbench -exp table4 -subset c432,c880
//	smbench -exp table2 -scale 300
//	smbench -exp fig4 > fig4.csv
//
// Experiments: table1 table2 table3 table4 table5 table6 fig4 fig5 fig6
// ppa ablation.
//
// With -matrix it instead runs the defense×attacker cross matrix on each
// benchmark of the subset (default c432):
//
//	smbench -matrix -subset c432,c880 -defense randomize-correction,pin-swapping -attacker proximity,random
//	smbench -list-defenses
//
// With -suite it runs the multi-benchmark, multi-seed suite behind the
// paper's Tables 4/5 aggregates: every benchmark of the subset (default:
// the full ISCAS-85 + superblue catalog) × every -defense × every
// -attacker × -replicates derived seeds, scheduled through one shared
// worker pool with a result cache so each benchmark's unprotected
// baseline is built exactly once:
//
//	smbench -suite -subset c432,c880,c1908 -replicates 3
//
// Ctrl-C cancels -matrix and -suite runs promptly; output for a benchmark
// is only written once its evaluation completed, so an interrupted run
// never leaves a partially rendered table. -v streams per-stage progress
// for -matrix/-suite plus per-experiment markers to stderr, the same flag
// every splitmfg CLI uses.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"splitmfg"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (table1..table6, fig4, fig5, fig6, ppa, ablation, all)")
	scale := fs.Int("scale", 300, "superblue scale divisor (1 = full size)")
	seed := fs.Int64("seed", 1, "master seed")
	words := fs.Int("patterns", 256, "64-pattern words for OER/HD (256 = 16384 patterns)")
	subset := fs.String("subset", "", "comma-separated benchmark subset (default: all)")
	fig4Design := fs.String("fig4design", "superblue18", "design for fig4/fig5 series")
	defenses := fs.String("defense", "randomize-correction,naive-lifted,pin-swapping",
		"comma-separated defense schemes for -matrix / -suite")
	attackers := fs.String("attacker", "proximity", "comma-separated attacker engines for -matrix / -suite")
	matrix := fs.Bool("matrix", false, "run the defense x attacker cross matrix on the subset instead of an experiment")
	suite := fs.Bool("suite", false, "run the multi-benchmark multi-seed suite on the subset instead of an experiment")
	replicates := fs.Int("replicates", 3, "seed replicates per suite cell (-suite only)")
	cacheDir := fs.String("cache-dir", "", "disk-backed result store: checkpoint every completed suite cell so a killed run resumes (-suite only)")
	routeStrategy := fs.String("route-strategy", "", "routing strategy for -matrix / -suite: auto (default, picks by die area), flat, or hier")
	listDefenses := fs.Bool("list-defenses", false, "list the registered defense schemes and exit")
	verbose := fs.Bool("v", false, "stream per-stage progress to stderr")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Deferred so the profile covers the whole run, whatever path it
		// takes below. GC first so the snapshot reflects live objects, not
		// garbage awaiting collection.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "smbench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "smbench: -memprofile:", err)
			}
		}()
	}

	if *listDefenses {
		for _, name := range splitmfg.Defenses() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}
	if *matrix && *suite {
		return fmt.Errorf("-matrix and -suite are mutually exclusive")
	}
	// Reject rather than silently no-op: -replicates only means something
	// to the suite scheduler (mirrors smflow's -replicates guard).
	replicatesSet := false
	fs.Visit(func(f *flag.Flag) { replicatesSet = replicatesSet || f.Name == "replicates" })
	if replicatesSet && !*suite {
		return fmt.Errorf("-replicates only applies to -suite runs")
	}
	if *cacheDir != "" && !*suite {
		return fmt.Errorf("-cache-dir only applies to -suite runs")
	}
	// The table/figure experiments pin the paper's setup (auto strategy
	// included), so the knob only applies to the pipeline-backed modes.
	if *routeStrategy != "" && !*matrix && !*suite {
		return fmt.Errorf("-route-strategy only applies to -matrix / -suite runs")
	}
	if *matrix {
		return runMatrix(ctx, stdout, *subset, *defenses, *attackers, *seed, *words, *scale, *routeStrategy, *verbose)
	}
	if *suite {
		return runSuite(ctx, stdout, *subset, *defenses, *attackers, *seed, *words, *scale, *replicates, *cacheDir, *routeStrategy, *verbose)
	}

	cfg := splitmfg.ExperimentConfig{
		Seed:           *seed,
		SuperblueScale: *scale,
		PatternWords:   *words,
		Verbose:        *verbose,
	}
	if *subset != "" {
		cfg.ISCASSubset = strings.Split(*subset, ",")
	}

	if *exp != "all" && *exp != "fig4" {
		known := false
		for _, name := range splitmfg.Experiments() {
			known = known || name == *exp
		}
		if !known {
			return fmt.Errorf("unknown experiment %q (have fig4, %s)",
				*exp, strings.Join(splitmfg.Experiments(), ", "))
		}
	}

	runOne := func(name string, f func() error) error {
		if *exp != "all" && *exp != name {
			return nil
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "smbench: running %s\n", name)
		}
		fmt.Fprintf(stdout, "== %s ==\n", name)
		if err := f(); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		fmt.Fprintln(stdout)
		return nil
	}

	table := func(name string) func() error {
		return func() error {
			t, err := splitmfg.RunExperiment(name, cfg)
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, t.Render())
			return nil
		}
	}

	for _, name := range []string{"table1", "table2", "table3", "table4", "table5", "table6"} {
		if err := runOne(name, table(name)); err != nil {
			return err
		}
	}
	if err := runOne("fig4", func() error {
		csv, err := splitmfg.Fig4CSV(*fig4Design, cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, csv)
		return nil
	}); err != nil {
		return err
	}
	if err := runOne("fig5", func() error {
		t, err := splitmfg.Fig5(*fig4Design, cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, t.Render())
		return nil
	}); err != nil {
		return err
	}
	for _, name := range []string{"fig6", "ppa", "ablation"} {
		if err := runOne(name, table(name)); err != nil {
			return err
		}
	}
	return nil
}

// subsetDesigns loads the comma-separated subset (or the given defaults)
// from the catalog.
func subsetDesigns(subset string, defaults []string, scale int) ([]*splitmfg.Design, error) {
	names := defaults
	if subset != "" {
		names = strings.Split(subset, ",")
	}
	designs := make([]*splitmfg.Design, 0, len(names))
	for _, name := range names {
		d, err := splitmfg.LoadBenchmark(strings.TrimSpace(name), splitmfg.WithScale(scale))
		if err != nil {
			return nil, err
		}
		designs = append(designs, d)
	}
	return designs, nil
}

// runMatrix renders the defense×attacker cross matrix for every benchmark
// in the comma-separated subset (default c432). The context cancels the
// evaluation between and within benchmarks; each benchmark's table is
// buffered and only written once its evaluation completed, so Ctrl-C
// never leaves a partially rendered table.
func runMatrix(ctx context.Context, stdout io.Writer, subset, defenses, attackers string, seed int64, words, scale int, routeStrategy string, verbose bool) error {
	schemes, err := splitmfg.ParseDefenses(defenses)
	if err != nil {
		return err
	}
	engines, err := splitmfg.ParseAttackers(attackers)
	if err != nil {
		return err
	}
	designs, err := subsetDesigns(subset, []string{"c432"}, scale)
	if err != nil {
		return err
	}
	opts := []splitmfg.Option{
		splitmfg.WithSeed(seed),
		splitmfg.WithPatternWords(words),
		splitmfg.WithDefenses(schemes...),
		splitmfg.WithAttackers(engines...),
		splitmfg.WithRouteStrategy(routeStrategy),
	}
	if verbose {
		opts = append(opts, splitmfg.WithProgress(splitmfg.ProgressLogger(os.Stderr)))
	}
	pipe := splitmfg.New(opts...)
	if err := pipe.Validate(); err != nil {
		return err
	}
	for _, design := range designs {
		if err := ctx.Err(); err != nil {
			return err
		}
		rep, err := pipe.Matrix(ctx, design)
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		fmt.Fprint(&buf, splitmfg.RenderMatrix(rep))
		fmt.Fprintln(&buf)
		if _, err := stdout.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// runSuite evaluates the multi-benchmark, multi-seed suite over the subset
// (default: the full catalog — slow at full pattern depth; narrow with
// -subset) and renders the aggregated Tables 4/5-style report. Output is
// buffered until the whole suite completed, so cancellation leaves none —
// but with -cache-dir every completed cell is already checkpointed on
// disk, so rerunning after a Ctrl-C recomputes only what was in flight.
func runSuite(ctx context.Context, stdout io.Writer, subset, defenses, attackers string, seed int64, words, scale, replicates int, cacheDir, routeStrategy string, verbose bool) error {
	schemes, err := splitmfg.ParseDefenses(defenses)
	if err != nil {
		return err
	}
	engines, err := splitmfg.ParseAttackers(attackers)
	if err != nil {
		return err
	}
	designs, err := subsetDesigns(subset, splitmfg.Benchmarks(), scale)
	if err != nil {
		return err
	}
	opts := []splitmfg.Option{
		splitmfg.WithSeed(seed),
		splitmfg.WithPatternWords(words),
		splitmfg.WithDefenses(schemes...),
		splitmfg.WithAttackers(engines...),
		splitmfg.WithReplicates(replicates),
		splitmfg.WithRouteStrategy(routeStrategy),
	}
	if cacheDir != "" {
		opts = append(opts, splitmfg.WithCacheDir(cacheDir))
	}
	if verbose {
		opts = append(opts, splitmfg.WithProgress(splitmfg.ProgressLogger(os.Stderr)))
	}
	pipe := splitmfg.New(opts...)
	if err := pipe.Validate(); err != nil {
		return err
	}
	rep, err := pipe.Suite(ctx, designs)
	if err != nil {
		return err
	}
	_, err = io.WriteString(stdout, splitmfg.RenderSuite(rep))
	return err
}
