// Command smbench regenerates the paper's tables and figures.
//
// Usage:
//
//	smbench -exp all                 # everything (slow)
//	smbench -exp table4 -subset c432,c880
//	smbench -exp table2 -scale 300
//	smbench -exp fig4 > fig4.csv
//
// Experiments: table1 table2 table3 table4 table5 table6 fig4 fig5 fig6
// ppa ablation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"splitmfg/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..table6, fig4, fig5, fig6, ppa, ablation, all)")
	scale := flag.Int("scale", 300, "superblue scale divisor (1 = full size)")
	seed := flag.Int64("seed", 1, "master seed")
	words := flag.Int("patterns", 256, "64-pattern words for OER/HD (256 = 16384 patterns)")
	subset := flag.String("subset", "", "comma-separated ISCAS subset (default: all nine)")
	fig4Design := flag.String("fig4design", "superblue18", "design for fig4/fig5 series")
	flag.Parse()

	cfg := report.Config{
		Seed:           *seed,
		SuperblueScale: *scale,
		PatternWords:   *words,
	}
	if *subset != "" {
		cfg.ISCASSubset = strings.Split(*subset, ",")
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	table := func(f func(report.Config) (*report.Table, error)) func() error {
		return func() error {
			t, err := f(cfg)
			if err != nil {
				return err
			}
			fmt.Print(t.Render())
			return nil
		}
	}

	run("table1", table(report.Table1))
	run("table2", table(report.Table2))
	run("table3", table(report.Table3))
	run("table4", table(report.Table4))
	run("table5", table(report.Table5))
	run("table6", table(report.Table6))
	run("fig4", func() error {
		csv, err := report.Fig4CSV(*fig4Design, cfg)
		if err != nil {
			return err
		}
		fmt.Print(csv)
		return nil
	})
	run("fig5", func() error {
		t, err := report.Fig5(*fig4Design, cfg)
		if err != nil {
			return err
		}
		fmt.Print(t.Render())
		return nil
	})
	run("fig6", func() error {
		t, _, err := report.Fig6PPA(cfg)
		if err != nil {
			return err
		}
		fmt.Print(t.Render())
		return nil
	})
	run("ppa", table(report.SuperbluePPA))
	run("ablation", func() error {
		t, err := report.AblationSwapBudget("c880", []int{4, 8, 16, 32, 64}, cfg)
		if err != nil {
			return err
		}
		fmt.Print(t.Render())
		return nil
	})
}
