// Command smsplit is the paper's DEF splitting and conversion utility: it
// builds (or re-reads) a layout, splits it after a metal layer, and emits
// the FEOL-only DEF plus the .rt/.out files that routing-centric attack
// tooling consumes.
//
// Usage:
//
//	smsplit -bench c880 -layer 3 -o c880            # c880_feol.def, c880.rt, c880.out
//	smsplit -bench superblue18 -scale 300 -layer 5 -o sb18
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"splitmfg"
)

func main() {
	name := flag.String("bench", "c880", "benchmark name")
	layer := flag.Int("layer", 3, "split after this metal layer")
	scale := flag.Int("scale", 300, "superblue scale divisor")
	seed := flag.Int64("seed", 1, "seed")
	out := flag.String("o", "", "output prefix (default: benchmark name)")
	flag.Parse()

	prefix := *out
	if prefix == "" {
		prefix = *name
	}
	design, err := splitmfg.LoadBenchmark(*name, splitmfg.WithScale(*scale))
	if err != nil {
		fatal(err)
	}
	pipe := splitmfg.New(splitmfg.WithSeed(*seed))
	l, err := pipe.Baseline(context.Background(), design)
	if err != nil {
		fatal(err)
	}

	// Validate the split before creating any output file, so a bad layer
	// doesn't leave partial artifacts behind.
	sum, err := l.Split(*layer)
	if err != nil {
		fatal(err)
	}

	write := func(path string, f func(io.Writer) error) {
		fh, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := f(fh); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
	write(prefix+"_feol.def", func(w io.Writer) error { return l.WriteSplitDEF(w, *layer) })
	write(prefix+".rt", l.WriteRT)
	write(prefix+".out", func(w io.Writer) error { return l.WriteOut(w, *layer) })

	fmt.Printf("split after M%d: %d vpins, %d fragments (%d driver-side, %d open sink-side)\n",
		sum.Layer, sum.VPins, sum.Fragments, sum.DriverFrags, sum.SinkFrags)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smsplit:", err)
	os.Exit(1)
}
