// Command smsplit is the paper's DEF splitting and conversion utility: it
// builds (or re-reads) a layout, splits it after a metal layer, and emits
// the FEOL-only DEF plus the .rt/.out files that routing-centric attack
// tooling consumes.
//
// Usage:
//
//	smsplit -bench c880 -layer 3 -o c880            # c880_feol.def, c880.rt, c880.out
//	smsplit -bench superblue18 -scale 300 -layer 5 -o sb18
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"splitmfg"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smsplit:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smsplit", flag.ContinueOnError)
	name := fs.String("bench", "c880", "benchmark name")
	layer := fs.Int("layer", 3, "split after this metal layer")
	scale := fs.Int("scale", 300, "superblue scale divisor")
	seed := fs.Int64("seed", 1, "seed")
	out := fs.String("o", "", "output prefix (default: benchmark name)")
	verbose := fs.Bool("v", false, "stream per-stage progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	prefix := *out
	if prefix == "" {
		prefix = *name
	}
	design, err := splitmfg.LoadBenchmark(*name, splitmfg.WithScale(*scale))
	if err != nil {
		return err
	}
	opts := []splitmfg.Option{splitmfg.WithSeed(*seed)}
	if *verbose {
		opts = append(opts, splitmfg.WithProgress(splitmfg.ProgressLogger(os.Stderr)))
	}
	pipe := splitmfg.New(opts...)
	if err := pipe.Validate(); err != nil {
		return err
	}
	l, err := pipe.Baseline(ctx, design)
	if err != nil {
		return err
	}

	// Validate the split before creating any output file, so a bad layer
	// doesn't leave partial artifacts behind.
	sum, err := l.Split(*layer)
	if err != nil {
		return err
	}

	write := func(path string, f func(io.Writer) error) error {
		fh, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := f(fh); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", path)
		return nil
	}
	if err := write(prefix+"_feol.def", func(w io.Writer) error { return l.WriteSplitDEF(w, *layer) }); err != nil {
		return err
	}
	if err := write(prefix+".rt", l.WriteRT); err != nil {
		return err
	}
	if err := write(prefix+".out", func(w io.Writer) error { return l.WriteOut(w, *layer) }); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "split after M%d: %d vpins, %d fragments (%d driver-side, %d open sink-side)\n",
		sum.Layer, sum.VPins, sum.Fragments, sum.DriverFrags, sum.SinkFrags)
	return nil
}
