// Command smsplit is the paper's DEF splitting and conversion utility: it
// builds (or re-reads) a layout, splits it after a metal layer, and emits
// the FEOL-only DEF plus the .rt/.out files that routing-centric attack
// tooling consumes.
//
// Usage:
//
//	smsplit -bench c880 -layer 3 -o c880            # c880_feol.def, c880.rt, c880.out
//	smsplit -bench superblue18 -scale 300 -layer 5 -o sb18
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/defio"
	"splitmfg/internal/netlist"
)

func main() {
	name := flag.String("bench", "c880", "benchmark name")
	layer := flag.Int("layer", 3, "split after this metal layer")
	scale := flag.Int("scale", 300, "superblue scale divisor")
	seed := flag.Int64("seed", 1, "seed")
	out := flag.String("o", "", "output prefix (default: benchmark name)")
	flag.Parse()

	prefix := *out
	if prefix == "" {
		prefix = *name
	}
	var (
		nl   *netlist.Netlist
		err  error
		util = 70
	)
	if strings.HasPrefix(*name, "superblue") {
		nl, err = bench.Superblue(*name, *scale)
		if err == nil {
			util, err = bench.SuperblueUtil(*name)
		}
	} else {
		nl, err = bench.ISCAS85(*name)
	}
	if err != nil {
		fatal(err)
	}
	lib := cell.NewNangate45Like()
	d, err := correction.BuildOriginal(nl, lib, correction.Options{UtilPercent: util, Seed: *seed})
	if err != nil {
		fatal(err)
	}

	write := func(path string, f func(*os.File) error) {
		fh, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := f(fh); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
	write(prefix+"_feol.def", func(f *os.File) error { return defio.WriteSplit(f, d, *layer) })
	write(prefix+".rt", func(f *os.File) error { return defio.WriteRT(f, d) })
	write(prefix+".out", func(f *os.File) error { return defio.WriteOut(f, d, *layer) })

	sv, err := d.Split(*layer)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("split after M%d: %d vpins, %d fragments (%d driver-side, %d open sink-side)\n",
		*layer, len(sv.VPins), len(sv.Frags), len(sv.DriverFrags()), len(sv.SinkFrags()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smsplit:", err)
	os.Exit(1)
}
