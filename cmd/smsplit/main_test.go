package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesSplitArtifacts(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "c432")
	var out strings.Builder
	if err := run(context.Background(), []string{"-bench", "c432", "-layer", "3", "-o", prefix}, &out); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{"_feol.def", ".rt", ".out"} {
		fi, err := os.Stat(prefix + suffix)
		if err != nil {
			t.Fatalf("missing artifact %s: %v", suffix, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("artifact %s is empty", suffix)
		}
	}
	if !strings.Contains(out.String(), "split after M3") {
		t.Fatalf("missing split summary:\n%s", out.String())
	}
}

func TestRunBadLayerLeavesNoArtifacts(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "bad")
	var out strings.Builder
	if err := run(context.Background(), []string{"-bench", "c432", "-layer", "99", "-o", prefix}, &out); err == nil {
		t.Fatal("split at M99 succeeded, want error")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("bad layer left partial artifacts: %v", entries)
	}
}
