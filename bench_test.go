// Package splitmfg's benchmark harness: one testing.B benchmark per table
// and figure of the paper, plus ablation benches for the design choices
// called out in DESIGN.md. Each benchmark regenerates its experiment at a
// reduced scale per iteration (the full-scale runs are driven by
// cmd/smbench, which prints the rendered tables).
//
// Run with: go test -bench=. -benchmem
package splitmfg

import (
	"context"
	"math/rand"
	"testing"

	"splitmfg/internal/attack/proximity"
	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/defense/randomize"
	"splitmfg/internal/flow"
	"splitmfg/internal/report"
)

// benchCfg is the reduced-scale configuration used by the benchmarks.
func benchCfg() report.Config {
	return report.Config{
		Seed:           1,
		SuperblueScale: 800, // ~1k gates per superblue stand-in
		ISCASSubset:    []string{"c432", "c880"},
		PatternWords:   32,
	}
}

// BenchmarkTable1 regenerates the distance statistics of Table 1.
func BenchmarkTable1(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := report.Table1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates the per-boundary via deltas of Table 2.
func BenchmarkTable2(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := report.Table2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates the crouting attack metrics of Table 3.
func BenchmarkTable3(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := report.Table3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates the placement-defense comparison of Table 4.
func BenchmarkTable4(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := report.Table4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5 regenerates the routing-defense comparison of Table 5.
func BenchmarkTable5(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := report.Table5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6 regenerates the routing-blockage via comparison of Table 6.
func BenchmarkTable6(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := report.Table6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates the per-net distance series of Fig. 4.
func BenchmarkFig4(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig4CSV("superblue18", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates the per-layer wirelength profile of Fig. 5.
func BenchmarkFig5(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig5("superblue18", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates the PPA comparison of Fig. 6 / Sec 5.3.
func BenchmarkFig6(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, _, err := report.Fig6PPA(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPPASuperblue regenerates the superblue PPA rows of Sec 5.3.
func BenchmarkPPASuperblue(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := report.SuperbluePPA(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSwapBudget sweeps the swap budget (DESIGN.md ablation:
// swap-until-OER vs fixed counts).
func BenchmarkAblationSwapBudget(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := report.AblationSwapBudget("c432", []int{4, 16}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLiftLayer contrasts lifting to M6 vs M8 (DESIGN.md
// ablation): build the protected design at both layers and compare via
// profiles.
func BenchmarkAblationLiftLayer(b *testing.B) {
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		b.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		r, err := randomize.Randomize(nl, rng, randomize.Options{PatternWords: 16})
		if err != nil {
			b.Fatal(err)
		}
		for _, lift := range []int{6, 8} {
			p, err := correction.BuildProtected(nl, r, lib,
				correction.Options{LiftLayer: lift, UtilPercent: 70, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Design.Router.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationAttackHints contrasts the attack with all five hints vs
// distance-only (DESIGN.md ablation).
func BenchmarkAblationAttackHints(b *testing.B) {
	nl, err := bench.ISCAS85("c880")
	if err != nil {
		b.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	d, err := correction.BuildOriginal(nl, lib, correction.Options{UtilPercent: 70, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sv, err := d.Split(3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proximity.Attack(context.Background(), d, sv, proximity.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
		if _, err := proximity.Attack(context.Background(), d, sv, proximity.Options{Candidates: 24}); err != nil { // distance only
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCellPlacement contrasts midpoint-jitter correction-cell
// placement against a degenerate sink-adjacent policy by measuring the
// resulting protected-CCR difference (DESIGN.md ablation).
func BenchmarkAblationCellPlacement(b *testing.B) {
	nl, err := bench.ISCAS85("c880")
	if err != nil {
		b.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	for i := 0; i < b.N; i++ {
		res, err := flow.Protect(context.Background(), nl, lib, flow.Config{Seed: int64(i + 1), LiftLayer: 6, UtilPercent: 70})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := flow.EvaluateSecurity(context.Background(), res.Protected.Design, nl, flow.EvalOptions{
			SplitLayers: []int{3}, OnlyPins: res.Protected.ProtectedSinks(), Seed: 1, PatternWords: 16,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullFlowC880 measures the end-to-end protection flow.
func BenchmarkFullFlowC880(b *testing.B) {
	nl, err := bench.ISCAS85("c880")
	if err != nil {
		b.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Protect(context.Background(), nl, lib, flow.Config{Seed: 1, LiftLayer: 6, UtilPercent: 70}); err != nil {
			b.Fatal(err)
		}
	}
}
