package flow

import (
	"context"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"
)

// TestHeadlineResult reproduces the paper's central claim on one
// benchmark: the proximity attack recovers a meaningful fraction of the
// original layout's connections, but zero of the protected (randomized)
// ones, with OER ≈ 100% on the recovered netlist.
func TestHeadlineResult(t *testing.T) {
	nl, err := bench.ISCAS85("c880")
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	res, err := Protect(context.Background(), nl, lib, Config{Seed: 1, LiftLayer: 6, UtilPercent: 70})
	if err != nil {
		t.Fatal(err)
	}
	if res.OER < 0.95 {
		t.Fatalf("randomization OER = %.3f", res.OER)
	}

	// Attack the original.
	orig, err := EvaluateSecurity(context.Background(), res.Baseline, nl, EvalOptions{SplitLayers: []int{3, 4, 5}, Seed: 1, PatternWords: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Attack the protected layout, scoring the protected sinks.
	prot, err := EvaluateSecurity(context.Background(), res.Protected.Design, nl,
		EvalOptions{SplitLayers: []int{3, 4, 5}, OnlyPins: res.Protected.ProtectedSinks(), Seed: 1, PatternWords: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("original: CCR=%.2f OER=%.2f HD=%.2f over %d frags", orig.CCR, orig.OER, orig.HD, orig.Protected)
	t.Logf("proposed: CCR=%.2f OER=%.2f HD=%.2f over %d frags", prot.CCR, prot.OER, prot.HD, prot.Protected)
	if prot.Protected == 0 {
		t.Fatal("no protected fragments to attack")
	}
	// The paper reports exactly 0%; at our die sizes a few chance hits
	// (nearest-driver coincidences) remain possible, so allow chance level.
	if prot.CCR > 0.08 {
		t.Fatalf("protected CCR = %.3f, paper reports 0%%", prot.CCR)
	}
	if prot.OER < 0.9 {
		t.Fatalf("protected OER = %.3f, paper reports ≈100%%", prot.OER)
	}
	if prot.HD < 0.05 {
		t.Fatalf("protected HD = %.3f, paper reports ≈40%%", prot.HD)
	}
	if orig.CCR <= prot.CCR {
		t.Fatalf("defense did not reduce CCR: orig=%.3f prot=%.3f", orig.CCR, prot.CCR)
	}
}

func TestPPAWithinBudgetOrBackoff(t *testing.T) {
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	res, err := Protect(context.Background(), nl, lib, Config{Seed: 2, PPABudgetPercent: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.AreaOH != 0 {
		t.Fatalf("area overhead %.2f%%, paper reports zero", res.AreaOH)
	}
	if res.PowerOH < 0 {
		t.Fatalf("negative power overhead %.2f%% suspicious", res.PowerOH)
	}
	if res.Swaps == 0 {
		t.Fatal("no randomization applied")
	}
	t.Logf("c432: swaps=%d power=%.1f%% delay=%.1f%% (budget %.0f%%)",
		res.Swaps, res.PowerOH, res.DelayOH, res.Budget)
}

func TestEvaluateSecurityEmptyLayers(t *testing.T) {
	nl, _ := bench.ISCAS85("c432")
	lib := cell.NewNangate45Like()
	res, err := Protect(context.Background(), nl, lib, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// M9 split: nothing crosses; result must be vacuous, not an error.
	sec, err := EvaluateSecurity(context.Background(), res.Baseline, nl, EvalOptions{SplitLayers: []int{9}, Seed: 3, PatternWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	if sec.Layers != 0 || sec.Protected != 0 {
		t.Fatalf("expected vacuous result, got %+v", sec)
	}
}

// TestEvaluateSecurityUnknownAttacker: an unregistered engine name must
// fail up front with an error naming the registry.
func TestEvaluateSecurityUnknownAttacker(t *testing.T) {
	nl, _ := bench.ISCAS85("c432")
	lib := cell.NewNangate45Like()
	d, err := correction.BuildOriginal(nl, lib, correction.Options{LiftLayer: 6, UtilPercent: 70, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = EvaluateSecurity(context.Background(), d, nl,
		EvalOptions{Attackers: []string{"proximity", "nope"}, PatternWords: 16})
	if err == nil {
		t.Fatal("unknown attacker accepted")
	}
}

// TestEvaluateSecurityMultiAttacker: every requested engine gets a section
// on every non-vacuous layer, aggregates line up, and the headline numbers
// track the primary (first scoring) attacker.
func TestEvaluateSecurityMultiAttacker(t *testing.T) {
	nl, err := bench.ISCAS85("c880")
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	d, err := correction.BuildOriginal(nl, lib, correction.Options{LiftLayer: 6, UtilPercent: 70, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	attackers := []string{"proximity", "crouting", "random"}
	sec, err := EvaluateSecurity(context.Background(), d, nl, EvalOptions{
		SplitLayers: []int{3, 4, 5}, Attackers: attackers, Seed: 1, PatternWords: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sec.PerAttacker) != len(attackers) {
		t.Fatalf("got %d attacker aggregates, want %d", len(sec.PerAttacker), len(attackers))
	}
	for i, ar := range sec.PerAttacker {
		if ar.Attacker != attackers[i] {
			t.Fatalf("aggregate %d is %q, want %q (request order)", i, ar.Attacker, attackers[i])
		}
	}
	var prox, crout AttackerResult
	for _, ar := range sec.PerAttacker {
		switch ar.Attacker {
		case "proximity":
			prox = ar
		case "crouting":
			crout = ar
		}
	}
	if !prox.Scored || prox.Fragments == 0 {
		t.Fatalf("proximity did not score: %+v", prox)
	}
	if crout.Scored {
		t.Fatalf("crouting claims to have scored an assignment: %+v", crout)
	}
	if len(crout.Metrics) == 0 {
		t.Fatal("crouting aggregate carries no metrics")
	}
	// Headline == primary attacker (proximity is first and scores).
	if sec.CCR != prox.CCR || sec.OER != prox.OER || sec.HD != prox.HD {
		t.Fatalf("headline %v/%v/%v != primary proximity %v/%v/%v",
			sec.CCR, sec.OER, sec.HD, prox.CCR, prox.OER, prox.HD)
	}
	for _, lr := range sec.PerLayer {
		if lr.Vacuous {
			if len(lr.Attacks) != 0 {
				t.Fatalf("vacuous layer M%d has attack sections", lr.Layer)
			}
			continue
		}
		if len(lr.Attacks) != len(attackers) {
			t.Fatalf("layer M%d has %d attack sections, want %d", lr.Layer, len(lr.Attacks), len(attackers))
		}
		for i, ao := range lr.Attacks {
			if ao.Attacker != attackers[i] {
				t.Fatalf("layer M%d section %d is %q, want %q", lr.Layer, i, ao.Attacker, attackers[i])
			}
		}
	}
}

// TestEvaluateSecurityMetricsOnlyAttacker: with only a metrics-only
// engine requested (crouting), non-vacuous layers must be marked unscored
// and excluded from the headline averages rather than reporting a bogus
// CCR/OER/HD of zero.
func TestEvaluateSecurityMetricsOnlyAttacker(t *testing.T) {
	nl, err := bench.ISCAS85("c880")
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	d, err := correction.BuildOriginal(nl, lib, correction.Options{LiftLayer: 6, UtilPercent: 70, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sec, err := EvaluateSecurity(context.Background(), d, nl, EvalOptions{
		SplitLayers: []int{3, 4, 5}, Attackers: []string{"crouting"}, Seed: 1, PatternWords: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sec.Layers != 0 || sec.Protected != 0 || sec.CCR != 0 || sec.OER != 0 {
		t.Fatalf("metrics-only evaluation claims scored layers: %+v", sec)
	}
	sawAttack := false
	for _, lr := range sec.PerLayer {
		if lr.Vacuous {
			continue
		}
		if lr.Scored {
			t.Fatalf("layer M%d claims a score from a metrics-only engine", lr.Layer)
		}
		if len(lr.Attacks) == 1 && len(lr.Attacks[0].Metrics) > 0 {
			sawAttack = true
		}
	}
	if !sawAttack {
		t.Fatal("no crouting metrics section on any layer")
	}
}

// TestNaiveLiftingSitsBetween verifies the paper's three-way ordering on
// via counts: proposed adds the most high-layer vias, naive lifting fewer,
// original the least (Table 2's qualitative content, at ISCAS scale).
func TestNaiveLiftingSitsBetween(t *testing.T) {
	nl, err := bench.ISCAS85("c880")
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	res, err := Protect(context.Background(), nl, lib, Config{Seed: 4, LiftLayer: 6, UtilPercent: 70})
	if err != nil {
		t.Fatal(err)
	}
	var sinks []netlist.PinRef
	for pin := range res.Protected.ProtectedSinks() {
		sinks = append(sinks, pin)
	}
	naive, err := correction.BuildNaiveLifted(nl, sinks, lib,
		correction.Options{LiftLayer: 6, UtilPercent: 70, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	high := func(d *layout.Design) int64 {
		s := d.Router.ComputeStats()
		return s.Vias[5] + s.Vias[6] + s.Vias[7]
	}
	orig := high(res.Baseline)
	lift := high(naive.Design)
	prop := high(res.Protected.Design)
	if !(prop > orig && lift > orig) {
		t.Fatalf("high-layer vias: orig=%d lifted=%d proposed=%d (both defenses must add vias)", orig, lift, prop)
	}
	t.Logf("V56+V67+V78: original=%d lifted=%d proposed=%d", orig, lift, prop)
}
