package flow

import (
	"context"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"
)

// TestHeadlineResult reproduces the paper's central claim on one
// benchmark: the proximity attack recovers a meaningful fraction of the
// original layout's connections, but zero of the protected (randomized)
// ones, with OER ≈ 100% on the recovered netlist.
func TestHeadlineResult(t *testing.T) {
	nl, err := bench.ISCAS85("c880")
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	res, err := Protect(context.Background(), nl, lib, Config{Seed: 1, LiftLayer: 6, UtilPercent: 70})
	if err != nil {
		t.Fatal(err)
	}
	if res.OER < 0.95 {
		t.Fatalf("randomization OER = %.3f", res.OER)
	}

	// Attack the original.
	orig, err := EvaluateSecurity(context.Background(), res.Baseline, nl, EvalOptions{SplitLayers: []int{3, 4, 5}, Seed: 1, PatternWords: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Attack the protected layout, scoring the protected sinks.
	prot, err := EvaluateSecurity(context.Background(), res.Protected.Design, nl,
		EvalOptions{SplitLayers: []int{3, 4, 5}, OnlyPins: res.Protected.ProtectedSinks(), Seed: 1, PatternWords: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("original: CCR=%.2f OER=%.2f HD=%.2f over %d frags", orig.CCR, orig.OER, orig.HD, orig.Protected)
	t.Logf("proposed: CCR=%.2f OER=%.2f HD=%.2f over %d frags", prot.CCR, prot.OER, prot.HD, prot.Protected)
	if prot.Protected == 0 {
		t.Fatal("no protected fragments to attack")
	}
	// The paper reports exactly 0%; at our die sizes a few chance hits
	// (nearest-driver coincidences) remain possible, so allow chance level.
	if prot.CCR > 0.08 {
		t.Fatalf("protected CCR = %.3f, paper reports 0%%", prot.CCR)
	}
	if prot.OER < 0.9 {
		t.Fatalf("protected OER = %.3f, paper reports ≈100%%", prot.OER)
	}
	if prot.HD < 0.05 {
		t.Fatalf("protected HD = %.3f, paper reports ≈40%%", prot.HD)
	}
	if orig.CCR <= prot.CCR {
		t.Fatalf("defense did not reduce CCR: orig=%.3f prot=%.3f", orig.CCR, prot.CCR)
	}
}

func TestPPAWithinBudgetOrBackoff(t *testing.T) {
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	res, err := Protect(context.Background(), nl, lib, Config{Seed: 2, PPABudgetPercent: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.AreaOH != 0 {
		t.Fatalf("area overhead %.2f%%, paper reports zero", res.AreaOH)
	}
	if res.PowerOH < 0 {
		t.Fatalf("negative power overhead %.2f%% suspicious", res.PowerOH)
	}
	if res.Swaps == 0 {
		t.Fatal("no randomization applied")
	}
	t.Logf("c432: swaps=%d power=%.1f%% delay=%.1f%% (budget %.0f%%)",
		res.Swaps, res.PowerOH, res.DelayOH, res.Budget)
}

func TestEvaluateSecurityEmptyLayers(t *testing.T) {
	nl, _ := bench.ISCAS85("c432")
	lib := cell.NewNangate45Like()
	res, err := Protect(context.Background(), nl, lib, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// M9 split: nothing crosses; result must be vacuous, not an error.
	sec, err := EvaluateSecurity(context.Background(), res.Baseline, nl, EvalOptions{SplitLayers: []int{9}, Seed: 3, PatternWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	if sec.Layers != 0 || sec.Protected != 0 {
		t.Fatalf("expected vacuous result, got %+v", sec)
	}
}

// TestNaiveLiftingSitsBetween verifies the paper's three-way ordering on
// via counts: proposed adds the most high-layer vias, naive lifting fewer,
// original the least (Table 2's qualitative content, at ISCAS scale).
func TestNaiveLiftingSitsBetween(t *testing.T) {
	nl, err := bench.ISCAS85("c880")
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	res, err := Protect(context.Background(), nl, lib, Config{Seed: 4, LiftLayer: 6, UtilPercent: 70})
	if err != nil {
		t.Fatal(err)
	}
	var sinks []netlist.PinRef
	for pin := range res.Protected.ProtectedSinks() {
		sinks = append(sinks, pin)
	}
	naive, err := correction.BuildNaiveLifted(nl, sinks, lib,
		correction.Options{LiftLayer: 6, UtilPercent: 70, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	high := func(d *layout.Design) int64 {
		s := d.Router.ComputeStats()
		return s.Vias[5] + s.Vias[6] + s.Vias[7]
	}
	orig := high(res.Baseline)
	lift := high(naive.Design)
	prop := high(res.Protected.Design)
	if !(prop > orig && lift > orig) {
		t.Fatalf("high-layer vias: orig=%d lifted=%d proposed=%d (both defenses must add vias)", orig, lift, prop)
	}
	t.Logf("V56+V67+V78: original=%d lifted=%d proposed=%d", orig, lift, prop)
}
