package flow

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/baselines"
)

func matrixFixture(t *testing.T) (*cell.Library, MatrixOptions) {
	t.Helper()
	return cell.NewNangate45Like(), MatrixOptions{
		Defenses:     []string{"randomize-correction", "naive-lifted", "pin-swapping"},
		Attackers:    []string{"proximity", "random"},
		SplitLayers:  []int{3, 4},
		Seed:         7,
		PatternWords: 16,
	}
}

func marshalMatrix(t *testing.T, m MatrixResult, opt MatrixOptions) []byte {
	t.Helper()
	b, err := json.MarshalIndent(m.Report("c432", opt), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEvaluateMatrixSerialParallelIdentical(t *testing.T) {
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	lib, opt := matrixFixture(t)

	opt.Parallelism = 1
	serial, err := EvaluateMatrix(context.Background(), nl, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallelism = 4
	parallel, err := EvaluateMatrix(context.Background(), nl, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	sb := marshalMatrix(t, serial, opt)
	pb := marshalMatrix(t, parallel, opt)
	if !bytes.Equal(sb, pb) {
		t.Fatalf("serial and parallel matrix reports differ:\n%s\n----\n%s", sb, pb)
	}

	// Shape: one row per requested defense, one cell per requested
	// attacker, in request order.
	if len(serial.Rows) != len(opt.Defenses) {
		t.Fatalf("got %d rows, want %d", len(serial.Rows), len(opt.Defenses))
	}
	for i, row := range serial.Rows {
		if row.Defense != opt.Defenses[i] {
			t.Fatalf("row %d is %q, want %q", i, row.Defense, opt.Defenses[i])
		}
		cells := row.Security.PerAttacker
		if len(cells) != len(opt.Attackers) {
			t.Fatalf("row %q has %d cells, want %d", row.Defense, len(cells), len(opt.Attackers))
		}
		for j, c := range cells {
			if c.Attacker != opt.Attackers[j] {
				t.Fatalf("row %q cell %d is %q, want %q", row.Defense, j, c.Attacker, opt.Attackers[j])
			}
			if !c.Scored {
				t.Fatalf("row %q cell %q unscored", row.Defense, c.Attacker)
			}
		}
	}
	// The proposed scheme must beat the unprotected-ish pin-swapping row
	// against the proximity attack (the paper's whole argument); with a
	// tiny pattern budget we only require it not be *worse*.
	rc := serial.Rows[0].Security.PerAttacker[0].CCR
	ps := serial.Rows[2].Security.PerAttacker[0].CCR
	if rc > ps+0.15 {
		t.Errorf("randomize-correction CCR %.2f not below pin-swapping CCR %.2f", rc, ps)
	}
}

func TestEvaluateMatrixDuplicateDefenseMemo(t *testing.T) {
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	lib, opt := matrixFixture(t)
	opt.Defenses = []string{"pin-swapping", "pin-swapping"}
	opt.Attackers = []string{"random"}
	res, err := EvaluateMatrix(context.Background(), nl, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	a, _ := json.Marshal(res.Report("c432", opt).Rows[0])
	b, _ := json.Marshal(res.Report("c432", opt).Rows[1])
	if !bytes.Equal(a, b) {
		t.Fatalf("duplicate defense rows differ:\n%s\n%s", a, b)
	}
}

func TestEvaluateMatrixUnknownNames(t *testing.T) {
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	lib, opt := matrixFixture(t)
	opt.Defenses = []string{"no-such-defense"}
	if _, err := EvaluateMatrix(context.Background(), nl, lib, opt); err == nil ||
		!strings.Contains(err.Error(), "no-such-defense") {
		t.Fatalf("unknown defense not rejected: %v", err)
	}
	_, opt = matrixFixture(t)
	opt.Attackers = []string{"no-such-attacker"}
	if _, err := EvaluateMatrix(context.Background(), nl, lib, opt); err == nil ||
		!strings.Contains(err.Error(), "no-such-attacker") {
		t.Fatalf("unknown attacker not rejected: %v", err)
	}
}

// TestEvaluateMatrixProgressSerialized appends to a plain slice from the
// progress hook — the documented contract says callbacks are serialized,
// so this must be safe even with concurrent defense rows and layer
// attacks (the race detector enforces it in the CI race job).
func TestEvaluateMatrixProgressSerialized(t *testing.T) {
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	lib, opt := matrixFixture(t)
	opt.Parallelism = 4
	var events []Event
	opt.Progress = func(ev Event) { events = append(events, ev) }
	if _, err := EvaluateMatrix(context.Background(), nl, lib, opt); err != nil {
		t.Fatal(err)
	}
	defenses := 0
	for _, ev := range events {
		if ev.Stage == StageDefense {
			defenses++
		}
	}
	if defenses != len(opt.Defenses) {
		t.Fatalf("got %d StageDefense events, want %d", defenses, len(opt.Defenses))
	}
}

func TestEvaluateMatrixCancellation(t *testing.T) {
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	lib, opt := matrixFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvaluateMatrix(ctx, nl, lib, opt); err == nil {
		t.Fatal("cancelled matrix evaluation returned no error")
	}
}

func TestSenguptaReducesAttackCCR(t *testing.T) {
	// The defense's whole point: after G-Color relocation the proximity
	// attack must do worse than on a near-untouched layout. (Relocated
	// from the baselines package when the defense registry made that
	// import direction a cycle.)
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	orig, err := baselines.PlacementPerturbation(nl, lib, baselines.Options{Seed: 3, Fraction: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := baselines.Sengupta(nl, lib, baselines.GColor, baselines.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	so, err := EvaluateSecurity(context.Background(), orig, nl, EvalOptions{SplitLayers: []int{3, 4}, Seed: 3, PatternWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := EvaluateSecurity(context.Background(), prot, nl, EvalOptions{SplitLayers: []int{3, 4}, Seed: 3, PatternWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	if so.Protected > 0 && sp.Protected > 0 && sp.CCR > so.CCR+0.1 {
		t.Fatalf("G-Color increased CCR: %.2f -> %.2f", so.CCR, sp.CCR)
	}
}
