package flow

import (
	"splitmfg/internal/netlist"
	"splitmfg/internal/timing"
)

// PPAReport is the JSON shape of a timing.PPA snapshot.
type PPAReport struct {
	AreaUM2      float64 `json:"area_um2"`
	PowerUW      float64 `json:"power_uw"`
	DelayPS      float64 `json:"delay_ps"`
	WirelengthUM float64 `json:"wirelength_um"`
	Vias         int64   `json:"vias"`
}

func ppaReport(p timing.PPA) PPAReport {
	return PPAReport{
		AreaUM2: p.AreaUM2, PowerUW: p.PowerUW, DelayPS: p.DelayPS,
		WirelengthUM: p.WirelengthUM, Vias: p.Vias,
	}
}

// ProtectReport is the unified, JSON-serializable summary of a Protect
// run, shared by the CLIs, the examples, and internal/report. It carries
// no wall-clock fields, so a fixed seed and configuration marshal to
// byte-identical JSON.
type ProtectReport struct {
	Design        string  `json:"design"`
	Gates         int     `json:"gates"`
	PIs           int     `json:"pis"`
	POs           int     `json:"pos"`
	Seed          int64   `json:"seed"`
	LiftLayer     int     `json:"lift_layer"`
	Swaps         int     `json:"swaps"`
	ErroneousOER  float64 `json:"erroneous_oer"`
	BudgetPercent float64 `json:"budget_percent"`
	AreaOHPct     float64 `json:"area_overhead_percent"`
	PowerOHPct    float64 `json:"power_overhead_percent"`
	DelayOHPct    float64 `json:"delay_overhead_percent"`

	BasePPA  PPAReport `json:"base_ppa"`
	FinalPPA PPAReport `json:"final_ppa"`
}

// Report summarizes the result against the netlist it protected.
func (r *ProtectResult) Report(nl *netlist.Netlist, cfg Config) ProtectReport {
	cfg = cfg.withDefaults()
	return ProtectReport{
		Design:        nl.Name,
		Gates:         nl.NumGates(),
		PIs:           nl.NumPIs(),
		POs:           nl.NumPOs(),
		Seed:          cfg.Seed,
		LiftLayer:     cfg.LiftLayer,
		Swaps:         r.Swaps,
		ErroneousOER:  r.OER,
		BudgetPercent: r.Budget,
		AreaOHPct:     r.AreaOH,
		PowerOHPct:    r.PowerOH,
		DelayOHPct:    r.DelayOH,
		BasePPA:       ppaReport(r.BasePPA),
		FinalPPA:      ppaReport(r.FinalPPA),
	}
}

// AttackReport is the JSON shape of one attacker engine's outcome at one
// split layer. Scored marks engines that proposed an assignment (and thus
// carry CCR/OER/HD); metrics-only engines like crouting report only the
// Metrics map. Metrics keys are engine-specific but stable, and
// encoding/json sorts map keys, so reports stay byte-identical at a fixed
// seed.
type AttackReport struct {
	Attacker   string             `json:"attacker"`
	Scored     bool               `json:"scored"`
	Fragments  int                `json:"fragments,omitempty"`
	Correct    int                `json:"correct,omitempty"`
	CCRPercent float64            `json:"ccr_percent"`
	OERPercent float64            `json:"oer_percent"`
	HDPercent  float64            `json:"hd_percent"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// LayerReport is the JSON shape of one split layer's attack outcome. The
// headline fields track the primary attacker; Attacks carries every
// requested engine's section. Unscored marks a non-vacuous layer where
// every requested engine was metrics-only — its headline CCR/OER/HD are
// not meaningful and the layer is excluded from the report averages.
type LayerReport struct {
	Layer      int            `json:"layer"`
	VPins      int            `json:"vpins"`
	Fragments  int            `json:"fragments"`
	Correct    int            `json:"correct"`
	CCRPercent float64        `json:"ccr_percent"`
	OERPercent float64        `json:"oer_percent"`
	HDPercent  float64        `json:"hd_percent"`
	Vacuous    bool           `json:"vacuous,omitempty"`
	Unscored   bool           `json:"unscored,omitempty"`
	Attacks    []AttackReport `json:"attacks,omitempty"`
}

// AttackerReport is one attacker engine's averages over the non-vacuous
// split layers.
type AttackerReport struct {
	Attacker   string  `json:"attacker"`
	Scored     bool    `json:"scored"`
	Fragments  int     `json:"fragments,omitempty"`
	Correct    int     `json:"correct,omitempty"`
	CCRPercent float64 `json:"ccr_percent"`
	OERPercent float64 `json:"oer_percent"`
	HDPercent  float64 `json:"hd_percent"`
	// LayersRun counts the non-vacuous layers the engine ran on — a
	// metrics-only engine runs without scoring, so this is deliberately
	// NOT named like SecurityReport.LayersScored (which counts layers
	// whose CCR/OER/HD entered the headline averages).
	LayersRun int                `json:"layers_run"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
}

// SecurityReport is the unified, JSON-serializable summary of a security
// evaluation (the configured attacker engines averaged over split layers).
type SecurityReport struct {
	Design       string           `json:"design"`
	Seed         int64            `json:"seed"`
	SplitLayers  []int            `json:"split_layers"`
	Attackers    []string         `json:"attackers"`
	CCRPercent   float64          `json:"ccr_percent"`
	OERPercent   float64          `json:"oer_percent"`
	HDPercent    float64          `json:"hd_percent"`
	Fragments    int              `json:"fragments"`
	LayersScored int              `json:"layers_scored"`
	PerLayer     []LayerReport    `json:"per_layer"`
	PerAttacker  []AttackerReport `json:"per_attacker,omitempty"`
}

// MatrixCellReport is the JSON shape of one (defense, attacker) cell: one
// attacker's averages against one defense — exactly an AttackerReport, so
// the two shapes can never drift apart.
type MatrixCellReport = AttackerReport

// MatrixRowReport is the JSON shape of one defense row: PPA deltas against
// the unprotected baseline plus one cell per requested attacker. It carries
// no wall-clock fields, so a fixed seed and configuration marshal to
// byte-identical JSON.
type MatrixRowReport struct {
	Defense    string             `json:"defense"`
	Swaps      int                `json:"swaps,omitempty"`
	AreaOHPct  float64            `json:"area_overhead_percent"`
	PowerOHPct float64            `json:"power_overhead_percent"`
	DelayOHPct float64            `json:"delay_overhead_percent"`
	PPA        PPAReport          `json:"ppa"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	Cells      []MatrixCellReport `json:"cells"`
}

// MatrixReport is the unified, JSON-serializable defense×attacker cross
// matrix (rows = defenses, columns = attackers, cells = CCR/OER/HD averaged
// over the split layers). Serialization is deterministic: rows and cells
// follow request order, metric maps encode with sorted keys, and nothing
// depends on evaluation parallelism.
type MatrixReport struct {
	Design      string            `json:"design"`
	Seed        int64             `json:"seed"`
	SplitLayers []int             `json:"split_layers"`
	Defenses    []string          `json:"defenses"`
	Attackers   []string          `json:"attackers"`
	BasePPA     PPAReport         `json:"base_ppa"`
	Rows        []MatrixRowReport `json:"rows"`
}

// Report converts the matrix to its JSON-serializable form.
func (m MatrixResult) Report(design string, opt MatrixOptions) MatrixReport {
	opt = opt.withDefaults()
	rep := MatrixReport{
		Design:      design,
		Seed:        opt.Seed,
		SplitLayers: append([]int(nil), opt.SplitLayers...),
		Defenses:    append([]string(nil), opt.Defenses...),
		Attackers:   append([]string(nil), opt.Attackers...),
		BasePPA:     ppaReport(m.BasePPA),
	}
	for _, row := range m.Rows {
		rrep := MatrixRowReport{
			Defense: row.Defense, Swaps: row.Swaps,
			AreaOHPct: row.AreaOH, PowerOHPct: row.PowerOH, DelayOHPct: row.DelayOH,
			PPA: ppaReport(row.PPA), Metrics: row.Metrics,
		}
		for _, ar := range row.Security.PerAttacker {
			rrep.Cells = append(rrep.Cells, attackerReport(ar))
		}
		rep.Rows = append(rep.Rows, rrep)
	}
	return rep
}

// DistReport is the JSON shape of a mean ± standard deviation pair.
type DistReport struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

func distReport(d Dist, scale float64) DistReport {
	return DistReport{Mean: d.Mean * scale, Std: d.Std * scale}
}

// SuiteCellReport is the JSON shape of one (defense, attacker) suite cell:
// CCR/OER/HD as mean ± std percentages over the aggregated runs.
type SuiteCellReport struct {
	Attacker   string     `json:"attacker"`
	Scored     bool       `json:"scored"`
	CCRPercent DistReport `json:"ccr_percent"`
	OERPercent DistReport `json:"oer_percent"`
	HDPercent  DistReport `json:"hd_percent"`
}

// SuiteRowReport is the JSON shape of one defense's aggregated row. It
// carries no wall-clock fields, so a fixed seed and configuration marshal
// to byte-identical JSON.
type SuiteRowReport struct {
	Defense    string            `json:"defense"`
	Swaps      DistReport        `json:"swaps"`
	AreaOHPct  DistReport        `json:"area_overhead_percent"`
	PowerOHPct DistReport        `json:"power_overhead_percent"`
	DelayOHPct DistReport        `json:"delay_overhead_percent"`
	Cells      []SuiteCellReport `json:"cells"`
}

// SuiteBenchReport is one benchmark's defense rows, aggregated over the
// suite's seed replicates, plus the shared unprotected baseline's PPA.
type SuiteBenchReport struct {
	Benchmark string           `json:"benchmark"`
	BasePPA   PPAReport        `json:"base_ppa"`
	Rows      []SuiteRowReport `json:"rows"`
}

// SuiteReport is the unified, JSON-serializable multi-benchmark,
// multi-seed matrix: per-benchmark sections (mean ± std over replicates)
// plus the cross-benchmark aggregate behind the paper's Tables 4/5 bottom
// lines, and the suite cache's deterministic hit/miss counters.
type SuiteReport struct {
	Seed         int64              `json:"seed"`
	Replicates   int                `json:"replicates"`
	SplitLayers  []int              `json:"split_layers"`
	Benchmarks   []string           `json:"benchmarks"`
	Defenses     []string           `json:"defenses"`
	Attackers    []string           `json:"attackers"`
	PerBenchmark []SuiteBenchReport `json:"per_benchmark"`
	Aggregate    []SuiteRowReport   `json:"aggregate"`
	Cache        CacheStats         `json:"cache"`
}

// suiteRowReport converts one aggregated defense row to its JSON shape
// (security fractions scaled to percentages, overheads already percent).
func suiteRowReport(row SuiteRow) SuiteRowReport {
	rep := SuiteRowReport{
		Defense:    row.Defense,
		Swaps:      distReport(row.Swaps, 1),
		AreaOHPct:  distReport(row.AreaOH, 1),
		PowerOHPct: distReport(row.PowerOH, 1),
		DelayOHPct: distReport(row.DelayOH, 1),
	}
	for _, c := range row.Cells {
		rep.Cells = append(rep.Cells, SuiteCellReport{
			Attacker:   c.Attacker,
			Scored:     c.Scored,
			CCRPercent: distReport(c.CCR, 100),
			OERPercent: distReport(c.OER, 100),
			HDPercent:  distReport(c.HD, 100),
		})
	}
	return rep
}

// Report converts the suite result to its JSON-serializable form. The
// cache counters are folded to their deterministic two-way form — disk
// hits count as misses — so hits mean "repeat key requests" and misses
// mean "first-time key requests", byte-identical whether the run was
// fresh, resumed from a cache dir, or diskless. The raw three-way
// breakdown stays on SuiteResult.Cache.
func (s SuiteResult) Report(opt SuiteOptions) SuiteReport {
	opt = opt.withDefaults()
	rep := SuiteReport{
		Seed:        opt.Seed,
		Replicates:  s.Replicates,
		SplitLayers: append([]int(nil), opt.SplitLayers...),
		Defenses:    append([]string(nil), opt.Defenses...),
		Attackers:   append([]string(nil), opt.Attackers...),
		Cache:       CacheStats{Hits: s.Cache.Hits, Misses: s.Cache.Misses + s.Cache.DiskHits},
	}
	for _, b := range opt.Benchmarks {
		rep.Benchmarks = append(rep.Benchmarks, b.Name)
	}
	for _, br := range s.Benches {
		brep := SuiteBenchReport{Benchmark: br.Bench, BasePPA: ppaReport(br.BasePPA)}
		for _, row := range br.Rows {
			brep.Rows = append(brep.Rows, suiteRowReport(row))
		}
		rep.PerBenchmark = append(rep.PerBenchmark, brep)
	}
	for _, row := range s.Aggregate {
		rep.Aggregate = append(rep.Aggregate, suiteRowReport(row))
	}
	return rep
}

// attackerReport converts one attacker's averaged outcome to its JSON
// shape — shared by SecurityReport's per_attacker section and the matrix
// cells.
func attackerReport(ar AttackerResult) AttackerReport {
	return AttackerReport{
		Attacker: ar.Attacker, Scored: ar.Scored,
		Fragments: ar.Fragments, Correct: ar.Correct,
		CCRPercent: ar.CCR * 100, OERPercent: ar.OER * 100, HDPercent: ar.HD * 100,
		LayersRun: ar.Layers, Metrics: ar.Metrics,
	}
}

// Report converts the result to its JSON-serializable form.
func (s SecurityResult) Report(design string, opt EvalOptions) SecurityReport {
	opt = opt.withDefaults()
	rep := SecurityReport{
		Design:       design,
		Seed:         opt.Seed,
		SplitLayers:  append([]int(nil), opt.SplitLayers...),
		Attackers:    append([]string(nil), opt.Attackers...),
		CCRPercent:   s.CCR * 100,
		OERPercent:   s.OER * 100,
		HDPercent:    s.HD * 100,
		Fragments:    s.Protected,
		LayersScored: s.Layers,
	}
	for _, lr := range s.PerLayer {
		lrep := LayerReport{
			Layer: lr.Layer, VPins: lr.VPins, Fragments: lr.Fragments, Correct: lr.Correct,
			CCRPercent: lr.CCR * 100, OERPercent: lr.OER * 100, HDPercent: lr.HD * 100,
			Vacuous: lr.Vacuous, Unscored: !lr.Vacuous && !lr.Scored,
		}
		for _, ao := range lr.Attacks {
			lrep.Attacks = append(lrep.Attacks, AttackReport{
				Attacker: ao.Attacker, Scored: ao.Scored,
				Fragments: ao.Fragments, Correct: ao.Correct,
				CCRPercent: ao.CCR * 100, OERPercent: ao.OER * 100, HDPercent: ao.HD * 100,
				Metrics: ao.Metrics,
			})
		}
		rep.PerLayer = append(rep.PerLayer, lrep)
	}
	for _, ar := range s.PerAttacker {
		rep.PerAttacker = append(rep.PerAttacker, attackerReport(ar))
	}
	return rep
}
