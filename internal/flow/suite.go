package flow

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	defengine "splitmfg/internal/defense/engine"

	"splitmfg/internal/attack/engine"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/netlist"
	"splitmfg/internal/route"
	"splitmfg/internal/store"
	"splitmfg/internal/timing"
)

// suiteKeySchema versions the suite's disk-store key format (the
// baseline|/cell| strings below). Bump it whenever a result-affecting
// algorithm changes without changing the key bytes, so stale entries
// from older binaries are quarantined instead of trusted.
//
// Schema 2: keys gained the route strategy (|route=...), and the
// hierarchical router changed large-die routings — entries written by
// pre-strategy binaries (schema 1) carried no strategy and cannot be
// trusted against either flat or hier requests.
const suiteKeySchema = 2

// Suite-level stages, emitted through the same ProgressFunc stream the
// rest of the flow uses.
const (
	// StageSuiteBaseline is emitted once per benchmark when its shared
	// unprotected baseline has been built and analyzed (Bench carries the
	// benchmark name). Replicated or repeated requests reuse the cached
	// baseline and emit nothing.
	StageSuiteBaseline Stage = "suite-baseline"
	// StageSuiteCell is emitted once per completed
	// (benchmark, defense, replicate) job (Bench, Detail = defense name,
	// Replicate), whether the cell was computed or served from the cache.
	StageSuiteCell Stage = "suite-cell"
)

// SuiteBenchmark is one design entering a suite evaluation, together with
// the physical-design settings the suite builds it under. Scale identifies
// the netlist variant in cache keys (the superblue scale divisor; 1 for
// ISCAS designs, whose generator ignores scale).
type SuiteBenchmark struct {
	Name        string
	Netlist     *netlist.Netlist
	Scale       int
	LiftLayer   int
	UtilPercent int
}

// cacheKey identifies everything that determines this benchmark's builds:
// the netlist variant (name + scale), the physical-design settings, and
// the suite master seed the shared baseline is derived from.
func (b SuiteBenchmark) cacheKey(seed int64) string {
	return fmt.Sprintf("%s|scale=%d|lift=%d|util=%d|seed=%d",
		b.Name, b.Scale, b.LiftLayer, b.UtilPercent, seed)
}

// SuiteOptions parameterizes EvaluateSuite.
type SuiteOptions struct {
	Benchmarks   []SuiteBenchmark // designs to sweep (rows of the paper's Tables 4/5)
	Defenses     []string         // defense-engine names (default "randomize-correction")
	Attackers    []string         // attacker-engine names (default "proximity")
	SplitLayers  []int            // layers each pair is attacked at (default M3,M4,M5)
	Seed         int64            // master seed; every replicate derives its own stream
	Replicates   int              // seed replicates per (benchmark, defense) cell (default 1)
	PatternWords int              // 64-pattern words for OER/HD (default 256)
	Parallelism  int              // bound on concurrent jobs; 0 = GOMAXPROCS, 1 = serial
	TargetOER    float64          // randomization stop criterion (default 0.999)
	Fraction     float64          // perturbed fraction for prior-art defenses
	Progress     ProgressFunc     // optional suite-level completion events

	// RouteParallelism is the worker count for wave-parallel net routing
	// inside each build (0 = the job's share of Parallelism, so route
	// workers of concurrent suite jobs do not multiply; 1 = serial).
	// Results are byte-identical at every level.
	RouteParallelism int

	// RouteStrategy selects flat or hierarchical batched routing for every
	// build in the suite (zero = auto, resolved per design by die area).
	// Unlike RouteParallelism it changes routed results, so it is part of
	// every cache key.
	RouteStrategy route.Strategy

	// CacheDir, when non-empty, backs the suite cache with a disk-based
	// content-addressed store (internal/store): every completed baseline
	// and cell is checkpointed, so a killed run rerun with the same dir
	// recomputes only the unfinished cells and produces a byte-identical
	// result. Empty keeps the cache memory-only.
	CacheDir string
}

func (o SuiteOptions) withDefaults() SuiteOptions {
	if len(o.Defenses) == 0 {
		o.Defenses = []string{"randomize-correction"}
	}
	if len(o.Attackers) == 0 {
		o.Attackers = []string{"proximity"}
	}
	if len(o.SplitLayers) == 0 {
		o.SplitLayers = []int{3, 4, 5}
	}
	if o.Replicates <= 0 {
		o.Replicates = 1
	}
	if o.PatternWords == 0 {
		o.PatternWords = 256
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// routeStrategyKey normalizes the route strategy for cache keys: the zero
// value and an explicit "auto" are the same request.
func routeStrategyKey(s route.Strategy) string {
	if s == "" {
		return string(route.StrategyAuto)
	}
	return string(s)
}

// replicateSeed derives the master seed of one seed replicate (splitmix64
// via the engine seed-derivation chain). Replicate 0 is the master seed
// itself, so a single-replicate suite cell reproduces the corresponding
// EvaluateMatrix row byte for byte.
func replicateSeed(seed int64, rep int) int64 {
	if rep == 0 {
		return seed
	}
	return engine.DeriveSeed(seed, "suite/replicate/"+strconv.Itoa(rep))
}

// CacheStats counts suite-cache outcomes three ways: Hits are repeat
// requests served from the in-memory tier, DiskHits are first requests
// served from the disk store, Misses are first requests that computed.
// Hits and DiskHits+Misses are deterministic for a given suite
// configuration — every job issues a fixed set of key requests and the
// first request per distinct key is either a disk hit or a miss — so the
// folded form (SuiteResult.Report collapses disk hits into misses) is
// safe to serialize into byte-stable reports, identical whether a run was
// fresh, resumed, or diskless.
type CacheStats struct {
	Hits     int `json:"hits"`
	Misses   int `json:"misses"`
	DiskHits int `json:"disk_hits,omitempty"`
}

// cacheEntry is one in-flight or completed computation. ready is closed
// when val/err are final.
type cacheEntry struct {
	ready chan struct{}
	val   any
	err   error
}

// suiteCache is the content-addressed result cache shared by a whole
// suite run: an in-memory singleflight tier, optionally backed by a
// disk store (SuiteOptions.CacheDir) that persists every completed
// value and survives the process. Keys encode every input that
// determines the value (bench/scale/defense/fraction/attackers/
// split-layers/seed/...), so a lookup can never conflate two different
// computations. Concurrent requests deduplicate singleflight-style: the
// first requester consults the disk and computes on a disk miss, later
// requesters for the same key count a hit and block until the value is
// ready.
type suiteCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	stats   CacheStats
	disk    *store.Store // nil = memory-only
}

func newSuiteCache(disk *store.Store) *suiteCache {
	return &suiteCache{entries: map[string]*cacheEntry{}, disk: disk}
}

// do returns the cached (or freshly computed) value for key. decode
// rebuilds the typed value from the disk tier's raw JSON; compute runs
// only when both tiers miss, and its successful result is checkpointed
// to disk best-effort (a failed write degrades to uncached, it never
// fails the suite).
func (c *suiteCache) do(key string, decode func([]byte) (any, error), compute func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		<-e.ready
		return e.val, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	if raw, ok := c.disk.Get(key); ok {
		if v, err := decode(raw); err == nil {
			c.mu.Lock()
			c.stats.DiskHits++
			c.mu.Unlock()
			e.val = v
			close(e.ready)
			return v, nil
		}
		// A value that no longer decodes is as good as absent; fall
		// through and recompute (the rewrite replaces it).
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	e.val, e.err = compute()
	if e.err == nil {
		c.disk.Put(key, e.val)
	}
	close(e.ready)
	return e.val, e.err
}

func (c *suiteCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// stealQueue is the suite's bounded work-stealing scheduler. All jobs are
// known up front, so it needs no wakeups: each worker owns a deque seeded
// round-robin (striping spreads the early per-benchmark baseline builds
// across workers instead of serializing them behind one singleflight), and
// an idle worker steals from the nearest non-empty sibling when its own
// deque runs dry. Both own pops and steals take the oldest job: job
// indices are scheduling priority (baselines precede cells), so draining
// front-first is what actually starts every benchmark's reference build
// early instead of leaving the low-index jobs for last.
type stealQueue struct {
	mu     sync.Mutex
	deques [][]int
}

func newStealQueue(jobs, workers int) *stealQueue {
	q := &stealQueue{deques: make([][]int, workers)}
	for j := 0; j < jobs; j++ {
		w := j % workers
		q.deques[w] = append(q.deques[w], j)
	}
	return q
}

// next returns the next job index for worker w, or ok=false when every
// deque is empty (the suite's job set is exhausted — nothing enqueues
// mid-run).
func (q *stealQueue) next(w int) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if own := q.deques[w]; len(own) > 0 {
		j := own[0]
		q.deques[w] = own[1:]
		return j, true
	}
	for i := 1; i < len(q.deques); i++ {
		v := (w + i) % len(q.deques)
		if d := q.deques[v]; len(d) > 0 {
			j := d[0]
			q.deques[v] = d[1:]
			return j, true
		}
	}
	return 0, false
}

// Dist is a mean ± standard deviation pair: over seed replicates in
// per-benchmark rows, over benchmarks in the suite aggregate. Std is the
// population deviation (the replicates are the whole population of the
// run, not a sample of a larger one).
type Dist struct {
	Mean, Std float64
}

// distOf aggregates in slice order with explicit float64() rounding on the
// squared terms, so results are byte-identical across architectures (no
// FMA contraction) and independent of evaluation parallelism.
func distOf(xs []float64) Dist {
	n := float64(len(xs))
	if n == 0 {
		return Dist{}
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / n
	varsum := 0.0
	for _, x := range xs {
		d := x - mean
		varsum += float64(d * d) // float64(): no FMA, see timing.LoadsFromDesign
	}
	return Dist{Mean: mean, Std: math.Sqrt(varsum / n)}
}

// SuiteCell is one attacker's outcome against one defense, aggregated over
// the suite's seed replicates (per-benchmark rows) or over benchmarks (the
// suite aggregate). CCR/OER/HD are fractions, like SecurityResult.
type SuiteCell struct {
	Attacker     string
	Scored       bool // every aggregated run scored an assignment
	CCR, OER, HD Dist
}

// SuiteRow is one defense's aggregated outcome: PPA overheads (percent vs
// the benchmark's unprotected baseline) and the attacker panel.
type SuiteRow struct {
	Defense                  string
	Swaps                    Dist
	AreaOH, PowerOH, DelayOH Dist
	Cells                    []SuiteCell // one per requested attacker, in request order
}

// SuiteBenchResult is one benchmark's defense rows, each aggregated over
// the seed replicates, plus the shared unprotected baseline's PPA.
type SuiteBenchResult struct {
	Bench   string
	BasePPA timing.PPA
	Rows    []SuiteRow // one per requested defense, in request order
}

// SuiteResult is the full multi-benchmark, multi-seed matrix: per-benchmark
// rows plus the cross-benchmark aggregate behind the paper's Tables 4/5
// bottom lines. Aggregate rows average the per-benchmark replicate means,
// with Std measuring the spread across benchmarks.
type SuiteResult struct {
	Benches    []SuiteBenchResult // one per requested benchmark, in request order
	Aggregate  []SuiteRow         // one per requested defense, across benchmarks
	Cache      CacheStats
	Replicates int
}

// EvaluateSuite fans the (benchmark × defense × attacker × seed-replicate)
// cross product through one bounded work-stealing worker pool with a
// content-addressed result cache, so shared cells — each benchmark's
// unprotected baseline, a defense requested twice — are computed once
// across the whole suite rather than once per design.
//
// Each replicate derives its own splitmix64 seed stream from the master
// seed (replicate 0 is the master seed itself), every job writes into a
// preallocated slot, and aggregation runs in request order, so the result
// — and its serialized SuiteReport — is byte-identical at every
// parallelism level. The per-benchmark baseline is keyed at the master
// seed: replicates vary the defense and attack randomness against a fixed
// reference layout.
func EvaluateSuite(ctx context.Context, lib *cell.Library, opt SuiteOptions) (SuiteResult, error) {
	opt = opt.withDefaults()
	var out SuiteResult
	if len(opt.Benchmarks) == 0 {
		return out, fmt.Errorf("flow: suite needs at least one benchmark")
	}
	for _, b := range opt.Benchmarks {
		if b.Netlist == nil {
			return out, fmt.Errorf("flow: suite benchmark %q has no netlist", b.Name)
		}
	}
	if _, err := defengine.Resolve(opt.Defenses); err != nil {
		return out, err
	}
	if _, err := engine.Resolve(opt.Attackers); err != nil {
		return out, err
	}
	em := newEmitter(opt.Progress)
	if err := ctx.Err(); err != nil {
		return out, err
	}

	// Job layout: B baseline jobs (scheduled first so every benchmark's
	// reference build starts early) followed by B×D×R cell jobs,
	// bench-major. Cell jobs that reach an unbuilt baseline block on its
	// cache entry, so no explicit dependency tracking is needed.
	B, D, R := len(opt.Benchmarks), len(opt.Defenses), opt.Replicates
	numJobs := B + B*D*R
	cellRows := make([]MatrixRow, B*D*R)
	basePPA := make([]timing.PPA, B)

	// The first job error cancels the remaining jobs; context.Cause
	// preserves it through the pool teardown. An outer cancellation
	// surfaces as its own cause.
	cctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	fail := func(err error) {
		if err != nil {
			cancel(err)
		}
	}

	var disk *store.Store
	if opt.CacheDir != "" {
		var err error
		disk, err = store.Open(opt.CacheDir, store.Options{KeySchema: suiteKeySchema})
		if err != nil {
			return out, fmt.Errorf("flow: suite cache dir: %w", err)
		}
	}
	cache := newSuiteCache(disk)
	workers := opt.Parallelism
	if workers > numJobs {
		workers = numJobs
	}
	// Split the parallelism budget like EvaluateMatrix: `workers` jobs in
	// flight, each attacking up to Parallelism/workers layers at once.
	inner := opt.Parallelism / workers
	if inner < 1 {
		inner = 1
	}

	routeP := opt.RouteParallelism
	if routeP == 0 {
		routeP = inner
	}

	runJob := func(j int) {
		if j < B {
			ppa, err := suiteBaseline(cctx, cache, opt.Benchmarks[j], lib, opt.Seed, routeP, opt.RouteStrategy, em)
			if err != nil {
				fail(err)
				return
			}
			basePPA[j] = ppa
			return
		}
		k := j - B
		b, rem := k/(D*R), k%(D*R)
		d, r := rem/R, rem%R
		row, err := suiteCell(cctx, cache, opt.Benchmarks[b], lib, opt.Defenses[d], r, inner, opt, em)
		if err != nil {
			fail(err)
			return
		}
		cellRows[k] = row
	}

	queue := newStealQueue(numJobs, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				j, ok := queue.next(w)
				if !ok {
					return
				}
				runJob(j)
			}
		}(w)
	}
	wg.Wait()
	if err := context.Cause(cctx); err != nil {
		return out, err
	}

	// Aggregate in request order: replicates collapse to mean ± std per
	// (benchmark, defense) row, then benchmarks collapse to the suite
	// aggregate per defense.
	out.Replicates = R
	for b, sb := range opt.Benchmarks {
		br := SuiteBenchResult{Bench: sb.Name, BasePPA: basePPA[b]}
		for d := range opt.Defenses {
			reps := make([]MatrixRow, R)
			for r := 0; r < R; r++ {
				reps[r] = cellRows[(b*D+d)*R+r]
			}
			br.Rows = append(br.Rows, suiteRowOf(opt.Defenses[d], opt.Attackers, reps))
		}
		out.Benches = append(out.Benches, br)
	}
	for d, name := range opt.Defenses {
		out.Aggregate = append(out.Aggregate, aggregateRow(name, opt.Attackers, out.Benches, d))
	}
	out.Cache = cache.snapshot()
	return out, nil
}

// suiteBaseline builds (or reuses) one benchmark's unprotected baseline and
// returns its PPA — the anchor for every defense row's overheads, computed
// once per benchmark across the whole suite.
func suiteBaseline(ctx context.Context, cache *suiteCache, b SuiteBenchmark,
	lib *cell.Library, seed int64, routeP int, strat route.Strategy, em *emitter) (timing.PPA, error) {
	key := "baseline|" + b.cacheKey(seed) + "|route=" + routeStrategyKey(strat)
	decode := func(raw []byte) (any, error) {
		var ppa timing.PPA
		err := json.Unmarshal(raw, &ppa)
		return ppa, err
	}
	v, err := cache.do(key, decode, func() (any, error) {
		start := time.Now()
		if err := ctx.Err(); err != nil {
			return timing.PPA{}, err
		}
		base, err := correction.BuildOriginal(b.Netlist, lib, correction.Options{
			LiftLayer: b.LiftLayer, UtilPercent: b.UtilPercent, Seed: seed,
			RouteOpt: route.Options{Parallelism: routeP, Strategy: strat},
		})
		if err != nil {
			return timing.PPA{}, err
		}
		ppa, err := timing.AnalyzeDesign(base, lib)
		if err != nil {
			return timing.PPA{}, err
		}
		em.emit(Event{Stage: StageSuiteBaseline, Bench: b.Name, Elapsed: time.Since(start)})
		return ppa, nil
	})
	if err != nil {
		return timing.PPA{}, err
	}
	return v.(timing.PPA), nil
}

// suiteCell computes (or reuses) one (benchmark, defense, replicate) cell:
// the defense built with the replicate's derived seed, analyzed against the
// benchmark's shared baseline, and attacked by the full panel.
func suiteCell(ctx context.Context, cache *suiteCache, b SuiteBenchmark, lib *cell.Library,
	defense string, rep, inner int, opt SuiteOptions, em *emitter) (MatrixRow, error) {
	// Each suite job routes with its share of the one parallelism budget
	// unless the caller pinned a route worker count explicitly.
	routeP := opt.RouteParallelism
	if routeP == 0 {
		routeP = inner
	}
	base, err := suiteBaseline(ctx, cache, b, lib, opt.Seed, routeP, opt.RouteStrategy, em)
	if err != nil {
		return MatrixRow{}, err
	}
	repSeed := replicateSeed(opt.Seed, rep)
	key := fmt.Sprintf("cell|%s|route=%s|defense=%s|fraction=%g|oer=%g|attackers=%s|layers=%v|words=%d|seed=%d",
		b.cacheKey(opt.Seed), routeStrategyKey(opt.RouteStrategy), defense, opt.Fraction, opt.TargetOER,
		strings.Join(opt.Attackers, ","), opt.SplitLayers, opt.PatternWords, repSeed)
	decode := func(raw []byte) (any, error) {
		var row MatrixRow
		err := json.Unmarshal(raw, &row)
		return row, err
	}
	v, err := cache.do(key, decode, func() (any, error) {
		row, err := evaluateDefense(ctx, b.Netlist, lib, defense, base, inner, MatrixOptions{
			Attackers:        opt.Attackers,
			SplitLayers:      opt.SplitLayers,
			Seed:             repSeed,
			PatternWords:     opt.PatternWords,
			LiftLayer:        b.LiftLayer,
			UtilPercent:      b.UtilPercent,
			TargetOER:        opt.TargetOER,
			Fraction:         opt.Fraction,
			RouteParallelism: routeP,
			RouteStrategy:    opt.RouteStrategy,
		})
		if err != nil {
			return MatrixRow{}, err
		}
		return row, nil
	})
	if err != nil {
		return MatrixRow{}, err
	}
	row := v.(MatrixRow)
	em.emit(Event{Stage: StageSuiteCell, Bench: b.Name, Replicate: rep,
		Detail: defense, Elapsed: row.Elapsed})
	return row, nil
}

// suiteRowOf collapses one (benchmark, defense)'s replicate rows to
// mean ± std, per attacker cell.
func suiteRowOf(defense string, attackers []string, reps []MatrixRow) SuiteRow {
	row := SuiteRow{Defense: defense}
	swaps := make([]float64, len(reps))
	area := make([]float64, len(reps))
	power := make([]float64, len(reps))
	delay := make([]float64, len(reps))
	for r, mr := range reps {
		swaps[r] = float64(mr.Swaps)
		area[r], power[r], delay[r] = mr.AreaOH, mr.PowerOH, mr.DelayOH
	}
	row.Swaps, row.AreaOH = distOf(swaps), distOf(area)
	row.PowerOH, row.DelayOH = distOf(power), distOf(delay)
	for a, name := range attackers {
		cell := SuiteCell{Attacker: name, Scored: true}
		ccr := make([]float64, len(reps))
		oer := make([]float64, len(reps))
		hd := make([]float64, len(reps))
		for r, mr := range reps {
			ar := mr.Security.PerAttacker[a]
			cell.Scored = cell.Scored && ar.Scored
			ccr[r], oer[r], hd[r] = ar.CCR, ar.OER, ar.HD
		}
		cell.CCR, cell.OER, cell.HD = distOf(ccr), distOf(oer), distOf(hd)
		row.Cells = append(row.Cells, cell)
	}
	return row
}

// aggregateRow collapses one defense's per-benchmark means into the
// cross-benchmark aggregate: Mean averages the benchmark means, Std is the
// spread across benchmarks.
func aggregateRow(defense string, attackers []string, benches []SuiteBenchResult, d int) SuiteRow {
	row := SuiteRow{Defense: defense}
	n := len(benches)
	pick := func(f func(SuiteRow) float64) Dist {
		xs := make([]float64, n)
		for b, br := range benches {
			xs[b] = f(br.Rows[d])
		}
		return distOf(xs)
	}
	row.Swaps = pick(func(r SuiteRow) float64 { return r.Swaps.Mean })
	row.AreaOH = pick(func(r SuiteRow) float64 { return r.AreaOH.Mean })
	row.PowerOH = pick(func(r SuiteRow) float64 { return r.PowerOH.Mean })
	row.DelayOH = pick(func(r SuiteRow) float64 { return r.DelayOH.Mean })
	for a, name := range attackers {
		cell := SuiteCell{Attacker: name, Scored: true}
		ccr := make([]float64, n)
		oer := make([]float64, n)
		hd := make([]float64, n)
		for b, br := range benches {
			bc := br.Rows[d].Cells[a]
			cell.Scored = cell.Scored && bc.Scored
			ccr[b], oer[b], hd[b] = bc.CCR.Mean, bc.OER.Mean, bc.HD.Mean
		}
		cell.CCR, cell.OER, cell.HD = distOf(ccr), distOf(oer), distOf(hd)
		row.Cells = append(row.Cells, cell)
	}
	return row
}
