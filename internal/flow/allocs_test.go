package flow

import (
	"context"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/layout"
	"splitmfg/internal/place"
	"splitmfg/internal/route"
)

// TestEvaluateSecurityAllocs pins the allocation count of a full security
// evaluation (attack + recover + simulate at one split layer) on c880.
// Parallelism is forced to 1 because AllocsPerRun counts allocations on
// every goroutine, so a worker pool would make the number racy. The budget
// is loose: it exists to catch a structural regression (a per-candidate or
// per-net map returning), which costs tens of thousands of allocations.
func TestEvaluateSecurityAllocs(t *testing.T) {
	nl, err := bench.ISCAS85("c880")
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	masters, err := lib.Bind(nl)
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(nl, masters, place.Options{UtilPercent: 70, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := layout.NewDesign(nl, masters, p, route.Options{})
	if err := d.RouteAll(nil); err != nil {
		t.Fatal(err)
	}
	opt := EvalOptions{SplitLayers: []int{3}, Seed: 1, PatternWords: 16, Parallelism: 1}
	if _, err := EvaluateSecurity(context.Background(), d, nl, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := EvaluateSecurity(context.Background(), d, nl, opt); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 15000
	if allocs > budget {
		t.Fatalf("EvaluateSecurity allocates %.0f/op on c880, budget %d — per-call scratch crept back in", allocs, budget)
	}
	t.Logf("EvaluateSecurity c880/M3: %.0f allocs/op (budget %d)", allocs, budget)
}
