package flow

import (
	"context"
	"runtime"
	"sync"
	"time"

	defengine "splitmfg/internal/defense/engine"

	"splitmfg/internal/attack/engine"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/netlist"
	"splitmfg/internal/route"
	"splitmfg/internal/timing"
)

// StageDefense is emitted once per distinct defense that completes during
// a matrix evaluation (Detail carries the defense name). A name requested
// twice is computed — and reported — once; a failed build emits no event,
// the error surfaces from EvaluateMatrix instead.
const StageDefense Stage = "defense"

// MatrixOptions parameterizes EvaluateMatrix.
type MatrixOptions struct {
	Defenses     []string     // defense-engine names (rows; default "randomize-correction")
	Attackers    []string     // attacker-engine names (columns; default "proximity")
	SplitLayers  []int        // layers each pair is attacked at (default M3,M4,M5)
	Seed         int64        // master seed; every (defense, attacker, layer) derives its own stream
	PatternWords int          // 64-pattern words for OER/HD (default 256)
	Parallelism  int          // concurrent defense rows and layer attacks; 0 = GOMAXPROCS, 1 = serial
	LiftLayer    int          // lift layer for lifting defenses (default 6)
	UtilPercent  int          // placement utilization (default 70)
	TargetOER    float64      // randomization stop criterion (default 0.999)
	Fraction     float64      // perturbed fraction for prior-art defenses (0 = published-ish defaults)
	Progress     ProgressFunc // optional per-defense / per-layer completion events

	// RouteParallelism is the worker count for wave-parallel net routing
	// inside each defense build (0 = the row's share of Parallelism, so
	// the route workers of concurrent rows do not multiply; 1 = serial).
	// Results are byte-identical at every level.
	RouteParallelism int

	// RouteStrategy selects flat or hierarchical batched routing for every
	// build (zero = auto, resolved per design by die area).
	RouteStrategy route.Strategy
}

func (o MatrixOptions) withDefaults() MatrixOptions {
	if len(o.Defenses) == 0 {
		o.Defenses = []string{"randomize-correction"}
	}
	if len(o.Attackers) == 0 {
		o.Attackers = []string{"proximity"}
	}
	if len(o.SplitLayers) == 0 {
		o.SplitLayers = []int{3, 4, 5}
	}
	if o.PatternWords == 0 {
		o.PatternWords = 256
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// MatrixRow is one defense's full outcome: its PPA cost relative to the
// unprotected baseline plus the attacker panel's results. The cells of
// the paper's Tables 4/5 cross product are Security.PerAttacker (one
// AttackerResult per requested attacker, in request order); Security also
// carries the full per-layer detail.
type MatrixRow struct {
	Defense  string
	Swaps    int // connectivity exchanges the scheme performed
	PPA      timing.PPA
	AreaOH   float64 // percent vs the unprotected baseline
	PowerOH  float64
	DelayOH  float64
	Metrics  map[string]float64 // scheme-specific extras
	Security SecurityResult
	Elapsed  time.Duration
}

// MatrixResult is the defense×attacker cross matrix over one design.
type MatrixResult struct {
	BasePPA timing.PPA  // the unprotected baseline's PPA
	Rows    []MatrixRow // one per requested defense, in request order
}

// matrixEntry is the memoized computation for one distinct defense name:
// requesting the same defense twice in one matrix reuses the built layout
// and its evaluation instead of re-running the (expensive) pair sweep.
type matrixEntry struct {
	row MatrixRow
	err error
}

// EvaluateMatrix builds every requested defense on the netlist and runs
// every requested attacker against it at each split layer — the full cross
// product behind the paper's Tables 4 and 5. Rows are defenses, columns are
// attackers, and each cell averages CCR/OER/HD over the split layers; each
// row also carries the defense's PPA overhead against the unprotected
// baseline.
//
// Every (defense, attacker, layer) triple derives its own independent RNG
// stream from the master seed (FNV label mixing + splitmix64), and rows are
// merged in request order, so the result — and its serialized MatrixReport
// — is byte-identical at every parallelism level. A defense name requested
// twice is computed once (per-matrix memo); an attacker requested twice
// within a layer is deduplicated by the attack engine's per-layer memo.
func EvaluateMatrix(ctx context.Context, nl *netlist.Netlist, lib *cell.Library, opt MatrixOptions) (MatrixResult, error) {
	opt = opt.withDefaults()
	var out MatrixResult
	if _, err := defengine.Resolve(opt.Defenses); err != nil {
		return out, err
	}
	if _, err := engine.Resolve(opt.Attackers); err != nil {
		return out, err
	}
	// One emitter for the whole matrix: concurrent defense rows and their
	// nested layer evaluations all funnel through its single mutex, which
	// is what upholds the documented ProgressFunc contract (calls are
	// always serialized, implementations need no locking). Handing the
	// raw opt.Progress to each nested EvaluateSecurity would give every
	// row its own lock and race the user's callback.
	em := newEmitter(opt.Progress)
	if em != nil {
		opt.Progress = em.emit
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}

	// The unprotected baseline anchors every row's PPA delta. It builds
	// before the row pool starts, so it can use the full parallelism
	// budget for its routing.
	baseRouteP := opt.RouteParallelism
	if baseRouteP == 0 {
		baseRouteP = opt.Parallelism
	}
	base, err := correction.BuildOriginal(nl, lib, correction.Options{
		LiftLayer: opt.LiftLayer, UtilPercent: opt.UtilPercent, Seed: opt.Seed,
		RouteOpt: route.Options{Parallelism: baseRouteP, Strategy: opt.RouteStrategy},
	})
	if err != nil {
		return out, err
	}
	out.BasePPA, err = timing.AnalyzeDesign(base, lib)
	if err != nil {
		return out, err
	}

	// Distinct defenses only: the memo key is the defense name, because a
	// defense is a deterministic function of (netlist, seed) and the seed
	// is derived from the name.
	distinct := make([]string, 0, len(opt.Defenses))
	seen := map[string]bool{}
	for _, name := range opt.Defenses {
		if !seen[name] {
			seen[name] = true
			distinct = append(distinct, name)
		}
	}
	entries := make([]matrixEntry, len(distinct))
	workers := opt.Parallelism
	if workers > len(distinct) {
		workers = len(distinct)
	}
	// Split the one parallelism budget between the row pool and each
	// row's nested layer pool: `workers` rows in flight, each attacking
	// up to Parallelism/workers layers at once. Without the division the
	// nested pools would multiply (rows × layers concurrent attacks),
	// oversubscribing the CPU and holding rows×layers split views live.
	inner := opt.Parallelism / workers
	if inner < 1 {
		inner = 1
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				entries[i].row, entries[i].err = evaluateDefense(ctx, nl, lib, distinct[i], out.BasePPA, inner, opt)
				if entries[i].err == nil {
					em.emit(Event{Stage: StageDefense, Detail: distinct[i], Elapsed: entries[i].row.Elapsed})
				}
			}
		}()
	}
	for i := range distinct {
		idx <- i
	}
	close(idx)
	wg.Wait()

	byName := make(map[string]*matrixEntry, len(distinct))
	for i, name := range distinct {
		byName[name] = &entries[i]
	}
	for _, name := range opt.Defenses {
		e := byName[name]
		if e.err != nil {
			return out, e.err
		}
		out.Rows = append(out.Rows, e.row)
	}
	return out, nil
}

// evaluateDefense computes one matrix row: build the defense's layout with
// a name-derived seed, analyze its PPA against the baseline, then run the
// full attacker panel over the split layers with an independent
// name-derived evaluation seed.
func evaluateDefense(ctx context.Context, nl *netlist.Netlist, lib *cell.Library,
	name string, basePPA timing.PPA, parallelism int, opt MatrixOptions) (MatrixRow, error) {
	start := time.Now()
	row := MatrixRow{Defense: name}
	def, _ := defengine.Lookup(name) // validated up front in EvaluateMatrix
	// Every defense receives the same scope seed (the defengine.Options
	// contract, mirroring attack engines): each scheme derives its own
	// streams by label, and the shared "randomize" label is what keeps
	// naive-lifted protecting exactly randomize-correction's sink set.
	routeP := opt.RouteParallelism
	if routeP == 0 {
		routeP = parallelism // the row's share of the one parallelism budget
	}
	prot, err := def.Protect(ctx, nl, lib, defengine.Options{
		Seed:             defengine.DeriveSeed(opt.Seed, "defense"),
		LiftLayer:        opt.LiftLayer,
		UtilPercent:      opt.UtilPercent,
		TargetOER:        opt.TargetOER,
		Fraction:         opt.Fraction,
		RouteParallelism: routeP,
		RouteStrategy:    opt.RouteStrategy,
	})
	if err != nil {
		return row, err
	}
	row.Swaps = prot.Swaps
	row.Metrics = prot.Metrics

	// Lifting schemes are scored on the restored design against the
	// original netlist (the erroneous FEOL netlist is not what the chip
	// computes after BEOL restoration); flat schemes on the design itself.
	if prot.Corr != nil {
		row.PPA, err = timing.AnalyzeRestored(prot.Design, nl, prot.Design.Masters, lib)
	} else {
		row.PPA, err = timing.AnalyzeDesign(prot.Design, lib)
	}
	if err != nil {
		return row, err
	}
	row.AreaOH, row.PowerOH, row.DelayOH = row.PPA.Overhead(basePPA)

	sec, err := EvaluateSecurity(ctx, prot.Design, nl, EvalOptions{
		SplitLayers:  opt.SplitLayers,
		Attackers:    opt.Attackers,
		OnlyPins:     prot.ProtectedPins,
		Seed:         defengine.DeriveSeed(opt.Seed, "matrix/"+name),
		PatternWords: opt.PatternWords,
		Parallelism:  parallelism,
		Progress:     opt.Progress,
	})
	if err != nil {
		return row, err
	}
	row.Security = sec
	row.Elapsed = time.Since(start)
	return row, nil
}
