package flow

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
)

func suiteFixture(t *testing.T, names ...string) (*cell.Library, SuiteOptions) {
	t.Helper()
	opt := SuiteOptions{
		Defenses:     []string{"randomize-correction", "naive-lifted"},
		Attackers:    []string{"proximity", "random"},
		SplitLayers:  []int{3, 4},
		Seed:         7,
		Replicates:   2,
		PatternWords: 16,
	}
	for _, name := range names {
		nl, err := bench.ISCAS85(name)
		if err != nil {
			t.Fatal(err)
		}
		opt.Benchmarks = append(opt.Benchmarks, SuiteBenchmark{
			Name: name, Netlist: nl, Scale: 1, LiftLayer: 6, UtilPercent: 70,
		})
	}
	return cell.NewNangate45Like(), opt
}

func marshalSuite(t *testing.T, s SuiteResult, opt SuiteOptions) []byte {
	t.Helper()
	b, err := json.MarshalIndent(s.Report(opt), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEvaluateSuiteSerialParallelIdentical(t *testing.T) {
	lib, opt := suiteFixture(t, "c432", "c880")

	opt.Parallelism = 1
	serial, err := EvaluateSuite(context.Background(), lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallelism = 8
	parallel, err := EvaluateSuite(context.Background(), lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	sb := marshalSuite(t, serial, opt)
	pb := marshalSuite(t, parallel, opt)
	if !bytes.Equal(sb, pb) {
		t.Fatalf("serial and parallel suite reports differ:\n%s\n----\n%s", sb, pb)
	}

	// Shape: one section per benchmark, one row per defense, one cell per
	// attacker, all in request order.
	if len(serial.Benches) != 2 || len(serial.Aggregate) != len(opt.Defenses) {
		t.Fatalf("suite shape: %d benches, %d aggregate rows", len(serial.Benches), len(serial.Aggregate))
	}
	for b, br := range serial.Benches {
		if br.Bench != opt.Benchmarks[b].Name {
			t.Fatalf("bench %d = %q, want %q", b, br.Bench, opt.Benchmarks[b].Name)
		}
		if len(br.Rows) != len(opt.Defenses) {
			t.Fatalf("bench %q has %d rows, want %d", br.Bench, len(br.Rows), len(opt.Defenses))
		}
		for d, row := range br.Rows {
			if row.Defense != opt.Defenses[d] || len(row.Cells) != len(opt.Attackers) {
				t.Fatalf("bench %q row %d: defense %q with %d cells", br.Bench, d, row.Defense, len(row.Cells))
			}
		}
	}
}

func TestEvaluateSuiteBaselineCachedAcrossCells(t *testing.T) {
	lib, opt := suiteFixture(t, "c432", "c880")
	opt.Parallelism = 4
	res, err := EvaluateSuite(context.Background(), lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Every (defense, replicate) cell of a benchmark re-requests the
	// benchmark's unprotected baseline; only the scheduled baseline job may
	// miss. With all-distinct cells: misses = B baselines + B*D*R cells,
	// hits = B*D*R baseline re-requests.
	B, D, R := len(opt.Benchmarks), len(opt.Defenses), opt.Replicates
	wantMisses := B + B*D*R
	wantHits := B * D * R
	if res.Cache.Misses != wantMisses || res.Cache.Hits != wantHits {
		t.Fatalf("cache stats = %+v, want %d misses / %d hits", res.Cache, wantMisses, wantHits)
	}
}

func TestEvaluateSuiteDuplicateDefenseServedFromCache(t *testing.T) {
	lib, opt := suiteFixture(t, "c432")
	opt.Defenses = []string{"randomize-correction", "randomize-correction"}
	res, err := EvaluateSuite(context.Background(), lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The duplicate defense's cells share cache keys with the first
	// occurrence: per (benchmark, replicate) one cell miss and one hit, on
	// top of the baseline sharing.
	B, D, R := len(opt.Benchmarks), 2, opt.Replicates
	wantMisses := B + B*R
	wantHits := B*D*R + B*R
	if res.Cache.Misses != wantMisses || res.Cache.Hits != wantHits {
		t.Fatalf("cache stats = %+v, want %d misses / %d hits", res.Cache, wantMisses, wantHits)
	}
	// Both rows must carry identical numbers — they are the same cells.
	for _, br := range res.Benches {
		a, b := br.Rows[0], br.Rows[1]
		if a.AreaOH != b.AreaOH || len(a.Cells) != len(b.Cells) {
			t.Fatal("duplicate defense rows diverged")
		}
		for i := range a.Cells {
			if a.Cells[i] != b.Cells[i] {
				t.Fatalf("duplicate defense cell %d diverged: %+v vs %+v", i, a.Cells[i], b.Cells[i])
			}
		}
	}
}

func TestEvaluateSuiteSingleReplicateMatchesMatrix(t *testing.T) {
	// Replicate 0 runs at the master seed, so a one-replicate suite row
	// must reproduce the EvaluateMatrix row for the same configuration.
	lib, opt := suiteFixture(t, "c432")
	opt.Replicates = 1
	suite, err := EvaluateSuite(context.Background(), lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	matrix, err := EvaluateMatrix(context.Background(), opt.Benchmarks[0].Netlist, lib, MatrixOptions{
		Defenses: opt.Defenses, Attackers: opt.Attackers, SplitLayers: opt.SplitLayers,
		Seed: opt.Seed, PatternWords: opt.PatternWords, LiftLayer: 6, UtilPercent: 70,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := suite.Benches[0].BasePPA, matrix.BasePPA; got != want {
		t.Fatalf("suite base PPA %+v != matrix base PPA %+v", got, want)
	}
	for d, row := range suite.Benches[0].Rows {
		mrow := matrix.Rows[d]
		if row.Swaps.Mean != float64(mrow.Swaps) || row.Swaps.Std != 0 {
			t.Fatalf("row %d swaps %+v != matrix %d", d, row.Swaps, mrow.Swaps)
		}
		if row.AreaOH.Mean != mrow.AreaOH || row.PowerOH.Mean != mrow.PowerOH || row.DelayOH.Mean != mrow.DelayOH {
			t.Fatalf("row %d overheads diverged from matrix", d)
		}
		for a, c := range row.Cells {
			ar := mrow.Security.PerAttacker[a]
			if c.CCR.Mean != ar.CCR || c.OER.Mean != ar.OER || c.HD.Mean != ar.HD || c.Scored != ar.Scored {
				t.Fatalf("row %d cell %d diverged from matrix: %+v vs %+v", d, a, c, ar)
			}
		}
	}
}

func TestEvaluateSuiteReplicatesVary(t *testing.T) {
	// Replicates must actually draw different seed streams: with two
	// replicates the randomized defense's swap count or security numbers
	// should spread. (A zero std across the board would mean the replicate
	// seeds collapsed to one stream.)
	lib, opt := suiteFixture(t, "c432")
	opt.Defenses = []string{"randomize-correction"}
	res, err := EvaluateSuite(context.Background(), lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Benches[0].Rows[0]
	spread := row.Swaps.Std + row.AreaOH.Std + row.PowerOH.Std
	for _, c := range row.Cells {
		spread += c.CCR.Std + c.OER.Std + c.HD.Std
	}
	if spread == 0 {
		t.Fatal("two replicates produced identical rows — replicate seed derivation is not varying")
	}
}

func TestEvaluateSuiteProgressEvents(t *testing.T) {
	lib, opt := suiteFixture(t, "c432", "c880")
	var mu sync.Mutex
	baselines := map[string]int{}
	cells := 0
	opt.Parallelism = 4
	opt.Progress = func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Stage {
		case StageSuiteBaseline:
			baselines[ev.Bench]++
		case StageSuiteCell:
			cells++
		}
	}
	if _, err := EvaluateSuite(context.Background(), lib, opt); err != nil {
		t.Fatal(err)
	}
	for _, b := range opt.Benchmarks {
		if baselines[b.Name] != 1 {
			t.Fatalf("benchmark %q emitted %d baseline events, want 1", b.Name, baselines[b.Name])
		}
	}
	if want := len(opt.Benchmarks) * len(opt.Defenses) * opt.Replicates; cells != want {
		t.Fatalf("saw %d suite-cell events, want %d", cells, want)
	}
}

func TestEvaluateSuiteValidation(t *testing.T) {
	lib, opt := suiteFixture(t, "c432")
	empty := opt
	empty.Benchmarks = nil
	if _, err := EvaluateSuite(context.Background(), lib, empty); err == nil {
		t.Fatal("empty suite did not error")
	}
	bad := opt
	bad.Attackers = []string{"no-such-engine"}
	if _, err := EvaluateSuite(context.Background(), lib, bad); err == nil {
		t.Fatal("unknown attacker did not error")
	}
	bad = opt
	bad.Defenses = []string{"no-such-defense"}
	if _, err := EvaluateSuite(context.Background(), lib, bad); err == nil {
		t.Fatal("unknown defense did not error")
	}
}

func TestEvaluateSuiteCancellation(t *testing.T) {
	lib, opt := suiteFixture(t, "c432")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvaluateSuite(ctx, lib, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled suite returned %v, want context.Canceled", err)
	}
}

// storeEntries counts the result-store entry files at the top of dir
// (quarantine subdir and temp files excluded) — each one is one
// checkpointed baseline or cell.
func storeEntries(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

// TestEvaluateSuiteResumesFromCacheDir is the crash-resume contract: a
// suite run killed mid-flight and rerun with the same cache dir produces
// a byte-identical report while recomputing only the cells that had not
// completed — every checkpointed entry comes back as a disk hit.
func TestEvaluateSuiteResumesFromCacheDir(t *testing.T) {
	lib, opt := suiteFixture(t, "c432", "c880")
	opt.Parallelism = 4

	// Reference: an uninterrupted, diskless run.
	ref, err := EvaluateSuite(context.Background(), lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalSuite(t, ref, opt)

	// Run 1: same suite against a cache dir, canceled after the second
	// completed cell — the simulated crash.
	opt.CacheDir = t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	cells := 0
	opt.Progress = func(ev Event) {
		if ev.Stage != StageSuiteCell {
			return
		}
		mu.Lock()
		cells++
		if cells == 2 {
			cancel()
		}
		mu.Unlock()
	}
	if _, err := EvaluateSuite(ctx, lib, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	persisted := storeEntries(t, opt.CacheDir)
	B, D, R := len(opt.Benchmarks), len(opt.Defenses), opt.Replicates
	distinct := B + B*D*R
	if persisted < 3 || persisted >= distinct {
		// At least the two observed cells and a baseline made it to disk;
		// the cancellation must also have left work to resume.
		t.Fatalf("interrupted run persisted %d entries, want 3..%d", persisted, distinct-1)
	}

	// Run 2: resumed. Identical bytes; disk hits are exactly the
	// checkpointed entries; only the rest recomputes.
	opt.Progress = nil
	res, err := EvaluateSuite(context.Background(), lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalSuite(t, res, opt); !bytes.Equal(got, want) {
		t.Fatalf("resumed report differs from the uninterrupted run:\n%s\n----\n%s", got, want)
	}
	if res.Cache.DiskHits != persisted || res.Cache.Misses != distinct-persisted {
		t.Fatalf("resumed stats = %+v, want %d disk hits / %d misses", res.Cache, persisted, distinct-persisted)
	}
	if res.Cache.Hits != B*D*R {
		t.Fatalf("resumed stats = %+v, want %d memory hits", res.Cache, B*D*R)
	}

	// Run 3: fully warm — nothing computes, bytes still identical.
	warm, err := EvaluateSuite(context.Background(), lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.DiskHits != distinct || warm.Cache.Misses != 0 {
		t.Fatalf("warm stats = %+v, want %d disk hits / 0 misses", warm.Cache, distinct)
	}
	if got := marshalSuite(t, warm, opt); !bytes.Equal(got, want) {
		t.Fatal("warm report differs from the uninterrupted run")
	}
}

// TestEvaluateSuiteCorruptEntryQuarantinedAndRecomputed: one truncated
// store file costs exactly one recompute — the entry is quarantined, the
// rest of the store is trusted, and the report is unchanged.
func TestEvaluateSuiteCorruptEntryQuarantinedAndRecomputed(t *testing.T) {
	lib, opt := suiteFixture(t, "c432")
	opt.CacheDir = t.TempDir()
	first, err := EvaluateSuite(context.Background(), lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalSuite(t, first, opt)

	ents, err := os.ReadDir(opt.CacheDir)
	if err != nil {
		t.Fatal(err)
	}
	truncated := ""
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			truncated = filepath.Join(opt.CacheDir, e.Name())
			break
		}
	}
	if truncated == "" {
		t.Fatal("no store entries written")
	}
	if err := os.Truncate(truncated, 7); err != nil {
		t.Fatal(err)
	}

	res, err := EvaluateSuite(context.Background(), lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	B, D, R := len(opt.Benchmarks), len(opt.Defenses), opt.Replicates
	distinct := B + B*D*R
	if res.Cache.DiskHits != distinct-1 || res.Cache.Misses != 1 {
		t.Fatalf("stats = %+v, want %d disk hits / 1 miss", res.Cache, distinct-1)
	}
	if got := marshalSuite(t, res, opt); !bytes.Equal(got, want) {
		t.Fatal("report changed after a corrupt-entry recompute")
	}
	q, err := os.ReadDir(filepath.Join(opt.CacheDir, "quarantine"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine holds %d files (%v), want 1", len(q), err)
	}
	// The recompute rewrote the slot: a third run is fully warm again.
	if storeEntries(t, opt.CacheDir) != distinct {
		t.Fatal("corrupt entry was not rewritten")
	}
}
