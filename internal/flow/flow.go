// Package flow orchestrates the paper's full protection scheme (Fig. 2):
// randomize the netlist to OER ≈ 100%, place and route the erroneous
// design with embedded correction cells, lift the randomized nets, restore
// true functionality through the BEOL, and iterate the amount of
// randomization against a PPA budget. It also bundles the security
// evaluation used across the paper's tables: the network-flow proximity
// attack at several split layers with CCR/OER/HD scoring.
package flow

import (
	"fmt"
	"math/rand"

	"splitmfg/internal/attack/proximity"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/defense/randomize"
	"splitmfg/internal/layout"
	"splitmfg/internal/metrics"
	"splitmfg/internal/netlist"
	"splitmfg/internal/sim"
	"splitmfg/internal/timing"
)

// Config parameterizes the protection flow.
type Config struct {
	LiftLayer        int     // 6 (ISCAS) or 8 (superblue)
	UtilPercent      int     // placement utilization
	Seed             int64   // master seed
	PPABudgetPercent float64 // allowed power/delay overhead (20 ISCAS, 5 superblue)
	TargetOER        float64 // randomization stop criterion (default 0.999)
	PatternWords     int     // words for final OER/HD metrics (default 256 = 16384 patterns)
	SplitLayers      []int   // layers to attack and average over (default M3,M4,M5)
}

func (c Config) withDefaults() Config {
	if c.LiftLayer == 0 {
		c.LiftLayer = 6
	}
	if c.UtilPercent == 0 {
		c.UtilPercent = 70
	}
	if c.TargetOER == 0 {
		c.TargetOER = 0.999
	}
	if c.PatternWords == 0 {
		c.PatternWords = 256
	}
	if len(c.SplitLayers) == 0 {
		c.SplitLayers = []int{3, 4, 5}
	}
	if c.PPABudgetPercent == 0 {
		c.PPABudgetPercent = 20
	}
	return c
}

// ProtectResult is the flow outcome.
type ProtectResult struct {
	Protected *correction.Protected
	Baseline  *layout.Design
	BasePPA   timing.PPA
	FinalPPA  timing.PPA // restored design, against the original netlist
	OER       float64    // of the erroneous FEOL netlist
	Swaps     int
	Budget    float64 // configured budget (%)
	PowerOH   float64 // final overheads (%)
	DelayOH   float64
	AreaOH    float64
}

// Protect runs the full Fig.-2 flow: it escalates randomization until the
// OER target is met, then checks the restored design's PPA against the
// budget, halving the swap count while the budget is exceeded.
func Protect(original *netlist.Netlist, lib *cell.Library, cfg Config) (*ProtectResult, error) {
	cfg = cfg.withDefaults()
	copt := correction.Options{LiftLayer: cfg.LiftLayer, UtilPercent: cfg.UtilPercent, Seed: cfg.Seed}
	baseline, err := correction.BuildOriginal(original, lib, copt)
	if err != nil {
		return nil, fmt.Errorf("flow: baseline: %v", err)
	}
	basePPA, err := timing.AnalyzeDesign(baseline, lib)
	if err != nil {
		return nil, err
	}

	// Fig. 2's loop: first randomize until OER ≈ 100%, then keep adding
	// randomization while the PPA budget is not yet expended. We escalate
	// the swap budget geometrically and keep the largest within-budget
	// protected design.
	totalPins := 0
	for _, g := range original.Gates {
		totalPins += len(g.Fanin)
	}
	maxSwaps := 0 // first pass: whatever the OER target needs
	var within, last *ProtectResult
	for attempt := 0; attempt < 6; attempt++ {
		rng := rand.New(rand.NewSource(cfg.Seed))
		target := cfg.TargetOER
		if attempt > 0 {
			target = 2 // beyond-reachable: the swap cap governs escalation
		}
		r, err := randomize.Randomize(original, rng, randomize.Options{
			TargetOER: target,
			MaxSwaps:  maxSwaps,
		})
		if err != nil {
			return nil, fmt.Errorf("flow: randomize: %v", err)
		}
		p, err := correction.BuildProtected(original, r, lib, copt)
		if err != nil {
			return nil, fmt.Errorf("flow: protect: %v", err)
		}
		// Verify restoration (the paper's Formality step).
		rec, err := p.RestoredNetlist()
		if err != nil {
			return nil, err
		}
		if !rec.SameStructure(original) {
			return nil, fmt.Errorf("flow: BEOL restoration failed to recover the original")
		}
		ppa, err := timing.AnalyzeRestored(p.Design, original, p.Design.Masters, lib)
		if err != nil {
			return nil, err
		}
		areaOH, powerOH, delayOH := ppa.Overhead(basePPA)
		res := &ProtectResult{
			Protected: p, Baseline: baseline, BasePPA: basePPA, FinalPPA: ppa,
			OER: r.OER, Swaps: len(r.Swaps), Budget: cfg.PPABudgetPercent,
			PowerOH: powerOH, DelayOH: delayOH, AreaOH: areaOH,
		}
		last = res
		overBudget := powerOH > cfg.PPABudgetPercent || delayOH > cfg.PPABudgetPercent
		if !overBudget {
			within = res
		}
		next := len(r.Swaps) * 2
		if overBudget || next > totalPins/4 || len(r.Swaps) < maxSwaps {
			break // budget expended, or no headroom / no more feasible swaps
		}
		maxSwaps = next
	}
	if within != nil {
		return within, nil
	}
	return last, nil
}

// SecurityResult aggregates attack outcomes averaged over split layers.
type SecurityResult struct {
	CCR, OER, HD float64
	Protected    int // sink fragments scored (summed over layers)
	Layers       int // layers that actually had something to attack
}

// EvaluateSecurity runs the network-flow proximity attack on the design at
// each split layer and averages CCR/OER/HD, exactly like the paper's
// Tables 4 and 5 ("metrics averaged for splitting after M3, M4, and M5").
// ref is the original netlist (the attacker's target). When onlyPins is
// non-nil, CCR is scored only over fragments containing those sink pins —
// the paper scores the protected (randomized) nets.
func EvaluateSecurity(d *layout.Design, ref *netlist.Netlist, splitLayers []int,
	onlyPins map[netlist.PinRef]bool, seed int64, words int) (SecurityResult, error) {

	var out SecurityResult
	if len(splitLayers) == 0 {
		splitLayers = []int{3, 4, 5}
	}
	if words == 0 {
		words = 256
	}
	rng := rand.New(rand.NewSource(seed))
	for _, layer := range splitLayers {
		sv, err := d.Split(layer)
		if err != nil {
			return out, err
		}
		res := proximity.Attack(d, sv, proximity.DefaultOptions())
		ccr := scoreCCR(d, sv, ref, res.Assignment, onlyPins)
		if ccr.Protected == 0 {
			continue // nothing crossed this boundary: vacuous layer
		}
		rec := metrics.RecoverNetlist(d, sv, res.Assignment)
		cmp := sim.CompareResult{}
		if !rec.HasCombLoop() {
			pats := sim.RandomPatterns(rng, ref.NumPIs(), words)
			cmp, err = sim.Compare(ref, rec, pats, words)
			if err != nil {
				return out, err
			}
		} else {
			// A recovered netlist with loops is unusable: count as fully
			// erroneous.
			cmp.OER, cmp.HD = 1, 0.5
		}
		out.CCR += ccr.CCR
		out.OER += cmp.OER
		out.HD += cmp.HD
		out.Protected += ccr.Protected
		out.Layers++
	}
	if out.Layers > 0 {
		out.CCR /= float64(out.Layers)
		out.OER /= float64(out.Layers)
		out.HD /= float64(out.Layers)
	}
	return out, nil
}

// scoreCCR scores like metrics.CCR but optionally restricted to fragments
// containing designated protected sink pins.
func scoreCCR(d *layout.Design, sv *layout.SplitView, ref *netlist.Netlist,
	a metrics.Assignment, onlyPins map[netlist.PinRef]bool) metrics.CCRResult {
	if onlyPins == nil {
		return metrics.CCR(d, sv, ref, a)
	}
	// Score only fragments containing the designated protected pins.
	var res metrics.CCRResult
	truth := metrics.TrueAssignment(d, sv, ref)
	for _, fid := range sv.SinkFrags() {
		f := &sv.Frags[fid]
		hit := false
		for _, sp := range f.SinkPins() {
			if sp.Role == layout.RoleSink && onlyPins[sp.Ref] {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		res.Protected++
		got, ok := a[fid]
		if ok && got == truth[fid] && got >= 0 {
			res.Correct++
		}
	}
	if res.Protected > 0 {
		res.CCR = float64(res.Correct) / float64(res.Protected)
	}
	return res
}
