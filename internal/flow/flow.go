// Package flow orchestrates the paper's full protection scheme (Fig. 2):
// randomize the netlist to OER ≈ 100%, place and route the erroneous
// design with embedded correction cells, lift the randomized nets, restore
// true functionality through the BEOL, and iterate the amount of
// randomization against a PPA budget. It also bundles the security
// evaluation used across the paper's tables: pluggable attacker engines
// (internal/attack/engine) at several split layers with CCR/OER/HD
// scoring.
//
// Both entry points take a context.Context and honor cancellation at
// stage boundaries, report stage transitions with per-stage timings
// through an optional ProgressFunc, and EvaluateSecurity fans the
// independent split-layer attacks out over a worker pool with per-layer
// derived RNG seeds, so its results do not depend on layer order or on
// the degree of parallelism.
package flow

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"splitmfg/internal/attack/engine"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/defense/randomize"
	"splitmfg/internal/layout"
	"splitmfg/internal/metrics"
	"splitmfg/internal/netlist"
	"splitmfg/internal/route"
	"splitmfg/internal/sim"
	"splitmfg/internal/timing"
)

// Stage identifies a phase of the protection flow or the attack loop.
type Stage string

// Stages, in the order Protect and EvaluateSecurity pass through them.
const (
	StageRandomize Stage = "randomize"
	StagePlace     Stage = "place"
	StageLift      Stage = "lift"
	StageRoute     Stage = "route"
	StageRestore   Stage = "restore"
	StageVerify    Stage = "verify"
	StagePPA       Stage = "ppa"
	StageAttack    Stage = "attack"

	// StageRouteWave is emitted once per committed multi-net wave of a
	// parallel routing batch (Detail carries "wave i/n: k nets" plus the
	// build the wave belongs to). Single-net waves and serial routing
	// emit no wave events.
	StageRouteWave Stage = "route-wave"
)

// Event is one completed stage transition.
type Event struct {
	Stage     Stage
	Attempt   int           // Protect escalation attempt (1-based; 0 for baseline work)
	Layer     int           // split layer for StageAttack events, else 0
	Bench     string        // benchmark name for suite-level events, else ""
	Replicate int           // seed replicate for StageSuiteCell events (0-based), else 0
	Detail    string        // e.g. "baseline", "protected", "vacuous"
	Elapsed   time.Duration // how long the stage took
}

// ProgressFunc receives stage-completion events. It may be called from
// multiple goroutines during parallel evaluation, but calls are always
// serialized — implementations need no locking of their own.
type ProgressFunc func(Event)

// Config parameterizes the protection flow.
type Config struct {
	LiftLayer        int     // 6 (ISCAS) or 8 (superblue)
	UtilPercent      int     // placement utilization
	Seed             int64   // master seed
	PPABudgetPercent float64 // allowed power/delay overhead (20 ISCAS, 5 superblue)
	TargetOER        float64 // randomization stop criterion (default 0.999)
	PatternWords     int     // words for final OER/HD metrics (default 256 = 16384 patterns)
	SplitLayers      []int   // layers to attack and average over (default M3,M4,M5)
	MaxAttempts      int     // escalation attempts in Protect (default 6; 1 = no escalation)

	// RouteParallelism is the worker count for wave-parallel net routing
	// inside each place-and-route (0 = GOMAXPROCS, 1 = serial). Reports
	// are byte-identical at every level.
	RouteParallelism int

	// RouteStrategy selects flat or hierarchical batched routing for every
	// place-and-route in the flow (route.Strategy; zero = auto, which
	// resolves per design by die area). Reports are byte-identical at
	// every parallelism level for a fixed strategy, but flat and hier
	// produce different (both valid) routings.
	RouteStrategy route.Strategy

	// Progress, when non-nil, receives stage-completion events.
	Progress ProgressFunc
}

func (c Config) withDefaults() Config {
	if c.LiftLayer == 0 {
		c.LiftLayer = 6
	}
	if c.UtilPercent == 0 {
		c.UtilPercent = 70
	}
	if c.TargetOER == 0 {
		c.TargetOER = 0.999
	}
	if c.PatternWords == 0 {
		c.PatternWords = 256
	}
	if len(c.SplitLayers) == 0 {
		c.SplitLayers = []int{3, 4, 5}
	}
	if c.PPABudgetPercent == 0 {
		c.PPABudgetPercent = 20
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6 // a non-positive cap would skip the loop and return nothing
	}
	return c
}

// emitter serializes progress callbacks; a nil emitter drops all events.
type emitter struct {
	mu sync.Mutex
	fn ProgressFunc
}

func newEmitter(fn ProgressFunc) *emitter {
	if fn == nil {
		return nil
	}
	return &emitter{fn: fn}
}

func (e *emitter) emit(ev Event) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.fn(ev)
	e.mu.Unlock()
}

// observe adapts a correction.Options observer to progress events.
func (e *emitter) observe(attempt int, detail string) func(string, time.Duration) {
	if e == nil {
		return nil
	}
	return func(stage string, d time.Duration) {
		e.emit(Event{Stage: Stage(stage), Attempt: attempt, Detail: detail, Elapsed: d})
	}
}

// observeWaves adapts batched-routing wave completions to progress events.
func (e *emitter) observeWaves(attempt int, detail string) func(wave, waves, nets int, elapsed time.Duration) {
	if e == nil {
		return nil
	}
	return func(wave, waves, nets int, elapsed time.Duration) {
		e.emit(Event{Stage: StageRouteWave, Attempt: attempt,
			Detail: fmt.Sprintf("%s wave %d/%d: %d nets", detail, wave, waves, nets), Elapsed: elapsed})
	}
}

// ProtectResult is the flow outcome.
type ProtectResult struct {
	Protected *correction.Protected
	Baseline  *layout.Design
	BasePPA   timing.PPA
	FinalPPA  timing.PPA // restored design, against the original netlist
	OER       float64    // of the erroneous FEOL netlist
	Swaps     int
	Budget    float64 // configured budget (%)
	PowerOH   float64 // final overheads (%)
	DelayOH   float64
	AreaOH    float64
}

// Protect runs the full Fig.-2 flow: it escalates randomization until the
// OER target is met, then checks the restored design's PPA against the
// budget, halving the swap count while the budget is exceeded. The context
// is checked at every stage boundary of every escalation attempt;
// cancellation returns ctx.Err() promptly.
func Protect(ctx context.Context, original *netlist.Netlist, lib *cell.Library, cfg Config) (*ProtectResult, error) {
	cfg = cfg.withDefaults()
	em := newEmitter(cfg.Progress)
	copt := correction.Options{
		LiftLayer: cfg.LiftLayer, UtilPercent: cfg.UtilPercent, Seed: cfg.Seed,
		RouteOpt: route.Options{Parallelism: cfg.RouteParallelism, Strategy: cfg.RouteStrategy,
			OnWave: em.observeWaves(0, "baseline")},
		Observe: em.observe(0, "baseline"),
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	baseline, err := correction.BuildOriginal(original, lib, copt)
	if err != nil {
		return nil, fmt.Errorf("flow: baseline: %v", err)
	}
	basePPA, err := timing.AnalyzeDesign(baseline, lib)
	if err != nil {
		return nil, err
	}

	// Fig. 2's loop: first randomize until OER ≈ 100%, then keep adding
	// randomization while the PPA budget is not yet expended. We escalate
	// the swap budget geometrically and keep the largest within-budget
	// protected design.
	totalPins := 0
	for _, g := range original.Gates {
		totalPins += len(g.Fanin)
	}
	maxSwaps := 0 // first pass: whatever the OER target needs
	var within, last *ProtectResult
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		copt.Observe = em.observe(attempt+1, "protected")
		copt.RouteOpt.OnWave = em.observeWaves(attempt+1, "protected")
		rng := rand.New(rand.NewSource(cfg.Seed))
		target := cfg.TargetOER
		if attempt > 0 {
			target = 2 // beyond-reachable: the swap cap governs escalation
		}
		start := time.Now()
		r, err := randomize.Randomize(original, rng, randomize.Options{
			TargetOER: target,
			MaxSwaps:  maxSwaps,
		})
		if err != nil {
			return nil, fmt.Errorf("flow: randomize: %v", err)
		}
		em.emit(Event{Stage: StageRandomize, Attempt: attempt + 1,
			Detail: fmt.Sprintf("%d swaps, OER %.3f", len(r.Swaps), r.OER), Elapsed: time.Since(start)})
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := correction.BuildProtected(original, r, lib, copt)
		if err != nil {
			return nil, fmt.Errorf("flow: protect: %v", err)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Verify restoration (the paper's Formality step).
		start = time.Now()
		rec, err := p.RestoredNetlist()
		if err != nil {
			return nil, err
		}
		if !rec.SameStructure(original) {
			return nil, fmt.Errorf("flow: BEOL restoration failed to recover the original")
		}
		em.emit(Event{Stage: StageVerify, Attempt: attempt + 1, Elapsed: time.Since(start)})
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start = time.Now()
		ppa, err := timing.AnalyzeRestored(p.Design, original, p.Design.Masters, lib)
		if err != nil {
			return nil, err
		}
		areaOH, powerOH, delayOH := ppa.Overhead(basePPA)
		em.emit(Event{Stage: StagePPA, Attempt: attempt + 1,
			Detail: fmt.Sprintf("power %+.1f%% delay %+.1f%%", powerOH, delayOH), Elapsed: time.Since(start)})
		res := &ProtectResult{
			Protected: p, Baseline: baseline, BasePPA: basePPA, FinalPPA: ppa,
			OER: r.OER, Swaps: len(r.Swaps), Budget: cfg.PPABudgetPercent,
			PowerOH: powerOH, DelayOH: delayOH, AreaOH: areaOH,
		}
		last = res
		overBudget := powerOH > cfg.PPABudgetPercent || delayOH > cfg.PPABudgetPercent
		if !overBudget {
			within = res
		}
		next := len(r.Swaps) * 2
		if overBudget || next > totalPins/4 || len(r.Swaps) < maxSwaps {
			break // budget expended, or no headroom / no more feasible swaps
		}
		maxSwaps = next
	}
	if within != nil {
		return within, nil
	}
	return last, nil
}

// EvalOptions parameterizes EvaluateSecurity.
type EvalOptions struct {
	SplitLayers  []int                   // layers to attack (default M3,M4,M5)
	Attackers    []string                // engine names to run per layer (default "proximity")
	OnlyPins     map[netlist.PinRef]bool // when non-nil, score only fragments with these sink pins
	Seed         int64                   // master seed; each layer derives its own stream
	PatternWords int                     // 64-pattern words for OER/HD (default 256)
	Parallelism  int                     // concurrent layer evaluations; 0 = GOMAXPROCS, 1 = serial
	Progress     ProgressFunc            // optional per-layer completion events
}

func (o EvalOptions) withDefaults() EvalOptions {
	if len(o.SplitLayers) == 0 {
		o.SplitLayers = []int{3, 4, 5}
	}
	if len(o.Attackers) == 0 {
		o.Attackers = []string{"proximity"}
	}
	if o.PatternWords == 0 {
		o.PatternWords = 256
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// AttackOutcome is one attacker engine's result at one split layer.
type AttackOutcome struct {
	Attacker  string
	Scored    bool // engine proposed an assignment that was CCR/OER/HD-scored
	Fragments int  // sink fragments scored
	Correct   int  // fragments reconnected correctly
	CCR       float64
	OER       float64
	HD        float64
	Metrics   map[string]float64 // engine-specific extras
	Elapsed   time.Duration
}

// LayerResult is the attack outcome at one split layer. The headline
// Fragments/Correct/CCR/OER/HD come from the primary attacker — the first
// requested engine that produced a scorable assignment — so single-attacker
// evaluations read exactly as before; Attacks carries every engine's
// outcome. Scored is false when every requested engine was metrics-only
// (e.g. crouting alone): such a layer contributes its engine sections but
// stays out of the headline averages, which would otherwise report a
// meaningless CCR/OER/HD of zero.
type LayerResult struct {
	Layer     int
	VPins     int // vias crossing the split boundary (the exposed surface)
	Fragments int // sink fragments scored (0 for a vacuous layer)
	Correct   int // fragments the attacker reconnected correctly
	CCR       float64
	OER       float64
	HD        float64
	Vacuous   bool            // nothing crossed this boundary
	Scored    bool            // some engine's assignment was CCR/OER/HD-scored
	Attacks   []AttackOutcome // one entry per requested attacker, in request order
	Elapsed   time.Duration
}

// AttackerResult aggregates one attacker engine's outcomes over the
// non-vacuous split layers.
type AttackerResult struct {
	Attacker     string
	Scored       bool
	CCR, OER, HD float64
	Fragments    int                // summed over layers
	Correct      int                // summed over layers
	Layers       int                // layers the engine ran on
	Metrics      map[string]float64 // averaged over layers
}

// SecurityResult aggregates attack outcomes averaged over split layers.
// The headline CCR/OER/HD track the primary attacker; PerAttacker carries
// every requested engine's averages.
type SecurityResult struct {
	CCR, OER, HD float64
	Protected    int              // sink fragments scored (summed over layers)
	Layers       int              // layers that actually had something to attack
	PerLayer     []LayerResult    // one entry per requested layer, in request order
	PerAttacker  []AttackerResult // one entry per requested attacker, in request order
}

// layerSeed derives an independent, order-insensitive RNG seed for one
// split layer from the master seed (splitmix64 finalizer). Deriving per
// layer — rather than sharing one stream across the layer loop — keeps a
// layer's OER/HD independent of whether earlier layers were vacuous, and
// makes parallel and serial evaluation bit-identical.
func layerSeed(seed int64, layer int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(layer+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// EvaluateSecurity runs the configured attacker engines on the design at
// each split layer and averages CCR/OER/HD, exactly like the paper's
// Tables 4 and 5 ("metrics averaged for splitting after M3, M4, and M5").
// ref is the original netlist (the attacker's target). When opt.OnlyPins is
// non-nil, CCR is scored only over fragments containing those sink pins —
// the paper scores the protected (randomized) nets.
//
// opt.Attackers selects the engines (internal/attack/engine registry;
// default the paper's network-flow "proximity" attack). Every engine runs
// on every layer; the headline averages track the first engine that
// produces a scorable assignment, and per-engine sections carry the rest.
//
// Layers are evaluated concurrently (opt.Parallelism workers) and merged
// deterministically in request order; results are identical for any
// parallelism level, and for any engine, because each (layer, engine) pair
// derives its own RNG stream from the master seed.
func EvaluateSecurity(ctx context.Context, d *layout.Design, ref *netlist.Netlist, opt EvalOptions) (SecurityResult, error) {
	opt = opt.withDefaults()
	if _, err := engine.Resolve(opt.Attackers); err != nil {
		return SecurityResult{}, err
	}
	em := newEmitter(opt.Progress)
	layers := opt.SplitLayers

	results := make([]LayerResult, len(layers))
	errs := make([]error, len(layers))
	workers := opt.Parallelism
	if workers > len(layers) {
		workers = len(layers)
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = evaluateLayer(ctx, d, ref, layers[i], opt)
				detail := ""
				if results[i].Vacuous {
					detail = "vacuous"
				}
				em.emit(Event{Stage: StageAttack, Layer: layers[i], Detail: detail, Elapsed: results[i].Elapsed})
			}
		}()
	}
	for i := range layers {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var out SecurityResult
	for i := range layers {
		if errs[i] != nil {
			return out, errs[i]
		}
	}
	out.PerLayer = results
	for _, lr := range results {
		if lr.Vacuous || !lr.Scored {
			continue
		}
		out.CCR += lr.CCR
		out.OER += lr.OER
		out.HD += lr.HD
		out.Protected += lr.Fragments
		out.Layers++
	}
	if out.Layers > 0 {
		out.CCR /= float64(out.Layers)
		out.OER /= float64(out.Layers)
		out.HD /= float64(out.Layers)
	}
	out.PerAttacker = aggregateAttackers(opt.Attackers, results)
	return out, nil
}

// aggregateAttackers averages each engine's per-layer outcomes over the
// non-vacuous layers, in the requested engine order.
func aggregateAttackers(attackers []string, results []LayerResult) []AttackerResult {
	out := make([]AttackerResult, 0, len(attackers))
	for i, name := range attackers {
		ar := AttackerResult{Attacker: name}
		sums := map[string]float64{}
		for _, lr := range results {
			if lr.Vacuous || i >= len(lr.Attacks) {
				continue
			}
			ao := lr.Attacks[i]
			ar.Layers++
			ar.Scored = ar.Scored || ao.Scored
			ar.CCR += ao.CCR
			ar.OER += ao.OER
			ar.HD += ao.HD
			ar.Fragments += ao.Fragments
			ar.Correct += ao.Correct
			//smlint:ordered each key accumulates independently; no cross-key interaction, so visit order cannot reach the per-key sums
			for k, v := range ao.Metrics {
				sums[k] += v
			}
		}
		if ar.Layers > 0 {
			ar.CCR /= float64(ar.Layers)
			ar.OER /= float64(ar.Layers)
			ar.HD /= float64(ar.Layers)
			if len(sums) > 0 {
				ar.Metrics = make(map[string]float64, len(sums))
				//smlint:ordered independent per-key writes into a fresh map; renderers sort keys before printing
				for k, v := range sums {
					ar.Metrics[k] = v / float64(ar.Layers)
				}
			}
		}
		out = append(out, ar)
	}
	return out
}

// evaluateLayer attacks one split layer with every configured engine. It
// is self-contained: each (layer, engine) pair derives its own RNG stream
// and touches d and ref read-only, so layers can run concurrently.
//
//smlint:hot
func evaluateLayer(ctx context.Context, d *layout.Design, ref *netlist.Netlist, layer int, opt EvalOptions) (LayerResult, error) {
	start := time.Now()
	lr := LayerResult{Layer: layer}
	if err := ctx.Err(); err != nil {
		return lr, err
	}
	sv, err := d.Split(layer)
	if err != nil {
		return lr, err
	}
	lr.VPins = len(sv.VPins)
	// The scored surface is a property of the split alone (which sink
	// fragments crossed the boundary), not of any attack outcome.
	surface := scoreCCR(d, sv, ref, nil, opt.OnlyPins)
	if surface.Protected == 0 {
		lr.Vacuous = true // nothing crossed this boundary
		lr.Elapsed = time.Since(start)
		return lr, nil
	}
	lr.Fragments = surface.Protected

	// One memo per layer: a composite engine (ensemble) reuses sibling
	// engines' results instead of re-attacking the same view.
	memo := engine.NewMemo()
	primary := false
	for _, name := range opt.Attackers {
		eng, _ := engine.Lookup(name) // validated up front in EvaluateSecurity
		ao, err := runAttacker(ctx, eng, d, sv, ref, layer, memo, opt)
		if err != nil {
			return lr, err
		}
		lr.Attacks = append(lr.Attacks, ao)
		if ao.Scored && !primary {
			primary = true
			lr.Scored = true
			lr.Fragments = ao.Fragments
			lr.Correct = ao.Correct
			lr.CCR = ao.CCR
			lr.OER = ao.OER
			lr.HD = ao.HD
		}
	}
	lr.Elapsed = time.Since(start)
	return lr, nil
}

// runAttacker runs one engine on one split layer and scores its outcome.
// Every engine receives the same layer-scope seed (stochastic engines
// derive their own stream from it by name, per the engine.Options
// contract), while the OER/HD pattern stream derives per (layer, engine)
// — so every stream is independent and deterministic regardless of
// evaluation order, and memoized engine invocations stay bit-identical.
func runAttacker(ctx context.Context, eng engine.Engine, d *layout.Design, sv *layout.SplitView,
	ref *netlist.Netlist, layer int, memo *engine.Memo, opt EvalOptions) (AttackOutcome, error) {
	start := time.Now()
	scopeSeed := layerSeed(opt.Seed, layer)
	ao := AttackOutcome{Attacker: eng.Name()}
	res, err := engine.Run(ctx, eng, d, sv, engine.Options{Seed: scopeSeed, Ref: ref, Memo: memo})
	if err != nil {
		return ao, err
	}
	if err := ctx.Err(); err != nil {
		return ao, err
	}
	ao.Metrics = res.Metrics
	if res.Assignment == nil {
		// Metrics-only engine (crouting): nothing to score.
		ao.Elapsed = time.Since(start)
		return ao, nil
	}
	ccr := scoreCCR(d, sv, ref, res.Assignment, opt.OnlyPins)
	rec := res.Recovered
	if rec == nil {
		rec = metrics.RecoverNetlist(d, sv, res.Assignment)
	}
	cmp := sim.CompareResult{}
	if !rec.HasCombLoop() {
		// The "/patterns" label keeps this stream distinct from the attack
		// stream an engine derives for itself from the same scope seed
		// (DeriveSeed(scope, name)) — the chance baseline must not be
		// scored with the very sequence that generated its assignment.
		rng := rand.New(rand.NewSource(engine.DeriveSeed(scopeSeed, eng.Name()+"/patterns")))
		pats := sim.RandomPatterns(rng, ref.NumPIs(), opt.PatternWords)
		cmp, err = sim.Compare(ref, rec, pats, opt.PatternWords)
		if err != nil {
			return ao, err
		}
	} else {
		// A recovered netlist with loops is unusable: count as fully
		// erroneous.
		cmp.OER, cmp.HD = 1, 0.5
	}
	ao.Scored = true
	ao.Fragments = ccr.Protected
	ao.Correct = ccr.Correct
	ao.CCR = ccr.CCR
	ao.OER = cmp.OER
	ao.HD = cmp.HD
	ao.Elapsed = time.Since(start)
	return ao, nil
}

// scoreCCR scores like metrics.CCR but optionally restricted to fragments
// containing designated protected sink pins.
func scoreCCR(d *layout.Design, sv *layout.SplitView, ref *netlist.Netlist,
	a metrics.Assignment, onlyPins map[netlist.PinRef]bool) metrics.CCRResult {
	if onlyPins == nil {
		return metrics.CCR(d, sv, ref, a)
	}
	// Score only fragments containing the designated protected pins.
	var res metrics.CCRResult
	truth := metrics.TrueAssignment(d, sv, ref)
	for _, fid := range sv.SinkFrags() {
		f := &sv.Frags[fid]
		hit := false
		for _, sp := range f.SinkPins() {
			if sp.Role == layout.RoleSink && onlyPins[sp.Ref] {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		res.Protected++
		got, ok := a[fid]
		if ok && got == truth[fid] && got >= 0 {
			res.Correct++
		}
	}
	if res.Protected > 0 {
		res.CCR = float64(res.Correct) / float64(res.Protected)
	}
	return res
}
