// Package flow orchestrates the paper's full protection scheme (Fig. 2):
// randomize the netlist to OER ≈ 100%, place and route the erroneous
// design with embedded correction cells, lift the randomized nets, restore
// true functionality through the BEOL, and iterate the amount of
// randomization against a PPA budget. It also bundles the security
// evaluation used across the paper's tables: the network-flow proximity
// attack at several split layers with CCR/OER/HD scoring.
//
// Both entry points take a context.Context and honor cancellation at
// stage boundaries, report stage transitions with per-stage timings
// through an optional ProgressFunc, and EvaluateSecurity fans the
// independent split-layer attacks out over a worker pool with per-layer
// derived RNG seeds, so its results do not depend on layer order or on
// the degree of parallelism.
package flow

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"splitmfg/internal/attack/proximity"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/defense/randomize"
	"splitmfg/internal/layout"
	"splitmfg/internal/metrics"
	"splitmfg/internal/netlist"
	"splitmfg/internal/sim"
	"splitmfg/internal/timing"
)

// Stage identifies a phase of the protection flow or the attack loop.
type Stage string

// Stages, in the order Protect and EvaluateSecurity pass through them.
const (
	StageRandomize Stage = "randomize"
	StagePlace     Stage = "place"
	StageLift      Stage = "lift"
	StageRoute     Stage = "route"
	StageRestore   Stage = "restore"
	StageVerify    Stage = "verify"
	StagePPA       Stage = "ppa"
	StageAttack    Stage = "attack"
)

// Event is one completed stage transition.
type Event struct {
	Stage   Stage
	Attempt int           // Protect escalation attempt (1-based; 0 for baseline work)
	Layer   int           // split layer for StageAttack events, else 0
	Detail  string        // e.g. "baseline", "protected", "vacuous"
	Elapsed time.Duration // how long the stage took
}

// ProgressFunc receives stage-completion events. It may be called from
// multiple goroutines during parallel evaluation, but calls are always
// serialized — implementations need no locking of their own.
type ProgressFunc func(Event)

// Config parameterizes the protection flow.
type Config struct {
	LiftLayer        int     // 6 (ISCAS) or 8 (superblue)
	UtilPercent      int     // placement utilization
	Seed             int64   // master seed
	PPABudgetPercent float64 // allowed power/delay overhead (20 ISCAS, 5 superblue)
	TargetOER        float64 // randomization stop criterion (default 0.999)
	PatternWords     int     // words for final OER/HD metrics (default 256 = 16384 patterns)
	SplitLayers      []int   // layers to attack and average over (default M3,M4,M5)
	MaxAttempts      int     // escalation attempts in Protect (default 6; 1 = no escalation)

	// Progress, when non-nil, receives stage-completion events.
	Progress ProgressFunc
}

func (c Config) withDefaults() Config {
	if c.LiftLayer == 0 {
		c.LiftLayer = 6
	}
	if c.UtilPercent == 0 {
		c.UtilPercent = 70
	}
	if c.TargetOER == 0 {
		c.TargetOER = 0.999
	}
	if c.PatternWords == 0 {
		c.PatternWords = 256
	}
	if len(c.SplitLayers) == 0 {
		c.SplitLayers = []int{3, 4, 5}
	}
	if c.PPABudgetPercent == 0 {
		c.PPABudgetPercent = 20
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6 // a non-positive cap would skip the loop and return nothing
	}
	return c
}

// emitter serializes progress callbacks; a nil emitter drops all events.
type emitter struct {
	mu sync.Mutex
	fn ProgressFunc
}

func newEmitter(fn ProgressFunc) *emitter {
	if fn == nil {
		return nil
	}
	return &emitter{fn: fn}
}

func (e *emitter) emit(ev Event) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.fn(ev)
	e.mu.Unlock()
}

// observe adapts a correction.Options observer to progress events.
func (e *emitter) observe(attempt int, detail string) func(string, time.Duration) {
	if e == nil {
		return nil
	}
	return func(stage string, d time.Duration) {
		e.emit(Event{Stage: Stage(stage), Attempt: attempt, Detail: detail, Elapsed: d})
	}
}

// ProtectResult is the flow outcome.
type ProtectResult struct {
	Protected *correction.Protected
	Baseline  *layout.Design
	BasePPA   timing.PPA
	FinalPPA  timing.PPA // restored design, against the original netlist
	OER       float64    // of the erroneous FEOL netlist
	Swaps     int
	Budget    float64 // configured budget (%)
	PowerOH   float64 // final overheads (%)
	DelayOH   float64
	AreaOH    float64
}

// Protect runs the full Fig.-2 flow: it escalates randomization until the
// OER target is met, then checks the restored design's PPA against the
// budget, halving the swap count while the budget is exceeded. The context
// is checked at every stage boundary of every escalation attempt;
// cancellation returns ctx.Err() promptly.
func Protect(ctx context.Context, original *netlist.Netlist, lib *cell.Library, cfg Config) (*ProtectResult, error) {
	cfg = cfg.withDefaults()
	em := newEmitter(cfg.Progress)
	copt := correction.Options{
		LiftLayer: cfg.LiftLayer, UtilPercent: cfg.UtilPercent, Seed: cfg.Seed,
		Observe: em.observe(0, "baseline"),
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	baseline, err := correction.BuildOriginal(original, lib, copt)
	if err != nil {
		return nil, fmt.Errorf("flow: baseline: %v", err)
	}
	basePPA, err := timing.AnalyzeDesign(baseline, lib)
	if err != nil {
		return nil, err
	}

	// Fig. 2's loop: first randomize until OER ≈ 100%, then keep adding
	// randomization while the PPA budget is not yet expended. We escalate
	// the swap budget geometrically and keep the largest within-budget
	// protected design.
	totalPins := 0
	for _, g := range original.Gates {
		totalPins += len(g.Fanin)
	}
	maxSwaps := 0 // first pass: whatever the OER target needs
	var within, last *ProtectResult
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		copt.Observe = em.observe(attempt+1, "protected")
		rng := rand.New(rand.NewSource(cfg.Seed))
		target := cfg.TargetOER
		if attempt > 0 {
			target = 2 // beyond-reachable: the swap cap governs escalation
		}
		start := time.Now()
		r, err := randomize.Randomize(original, rng, randomize.Options{
			TargetOER: target,
			MaxSwaps:  maxSwaps,
		})
		if err != nil {
			return nil, fmt.Errorf("flow: randomize: %v", err)
		}
		em.emit(Event{Stage: StageRandomize, Attempt: attempt + 1,
			Detail: fmt.Sprintf("%d swaps, OER %.3f", len(r.Swaps), r.OER), Elapsed: time.Since(start)})
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := correction.BuildProtected(original, r, lib, copt)
		if err != nil {
			return nil, fmt.Errorf("flow: protect: %v", err)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Verify restoration (the paper's Formality step).
		start = time.Now()
		rec, err := p.RestoredNetlist()
		if err != nil {
			return nil, err
		}
		if !rec.SameStructure(original) {
			return nil, fmt.Errorf("flow: BEOL restoration failed to recover the original")
		}
		em.emit(Event{Stage: StageVerify, Attempt: attempt + 1, Elapsed: time.Since(start)})
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start = time.Now()
		ppa, err := timing.AnalyzeRestored(p.Design, original, p.Design.Masters, lib)
		if err != nil {
			return nil, err
		}
		areaOH, powerOH, delayOH := ppa.Overhead(basePPA)
		em.emit(Event{Stage: StagePPA, Attempt: attempt + 1,
			Detail: fmt.Sprintf("power %+.1f%% delay %+.1f%%", powerOH, delayOH), Elapsed: time.Since(start)})
		res := &ProtectResult{
			Protected: p, Baseline: baseline, BasePPA: basePPA, FinalPPA: ppa,
			OER: r.OER, Swaps: len(r.Swaps), Budget: cfg.PPABudgetPercent,
			PowerOH: powerOH, DelayOH: delayOH, AreaOH: areaOH,
		}
		last = res
		overBudget := powerOH > cfg.PPABudgetPercent || delayOH > cfg.PPABudgetPercent
		if !overBudget {
			within = res
		}
		next := len(r.Swaps) * 2
		if overBudget || next > totalPins/4 || len(r.Swaps) < maxSwaps {
			break // budget expended, or no headroom / no more feasible swaps
		}
		maxSwaps = next
	}
	if within != nil {
		return within, nil
	}
	return last, nil
}

// EvalOptions parameterizes EvaluateSecurity.
type EvalOptions struct {
	SplitLayers  []int                   // layers to attack (default M3,M4,M5)
	OnlyPins     map[netlist.PinRef]bool // when non-nil, score only fragments with these sink pins
	Seed         int64                   // master seed; each layer derives its own stream
	PatternWords int                     // 64-pattern words for OER/HD (default 256)
	Parallelism  int                     // concurrent layer evaluations; 0 = GOMAXPROCS, 1 = serial
	Progress     ProgressFunc            // optional per-layer completion events
}

func (o EvalOptions) withDefaults() EvalOptions {
	if len(o.SplitLayers) == 0 {
		o.SplitLayers = []int{3, 4, 5}
	}
	if o.PatternWords == 0 {
		o.PatternWords = 256
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// LayerResult is the attack outcome at one split layer.
type LayerResult struct {
	Layer     int
	VPins     int // vias crossing the split boundary (the exposed surface)
	Fragments int // sink fragments scored (0 for a vacuous layer)
	Correct   int // fragments the attacker reconnected correctly
	CCR       float64
	OER       float64
	HD        float64
	Vacuous   bool // nothing crossed this boundary
	Elapsed   time.Duration
}

// SecurityResult aggregates attack outcomes averaged over split layers.
type SecurityResult struct {
	CCR, OER, HD float64
	Protected    int           // sink fragments scored (summed over layers)
	Layers       int           // layers that actually had something to attack
	PerLayer     []LayerResult // one entry per requested layer, in request order
}

// layerSeed derives an independent, order-insensitive RNG seed for one
// split layer from the master seed (splitmix64 finalizer). Deriving per
// layer — rather than sharing one stream across the layer loop — keeps a
// layer's OER/HD independent of whether earlier layers were vacuous, and
// makes parallel and serial evaluation bit-identical.
func layerSeed(seed int64, layer int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(layer+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// EvaluateSecurity runs the network-flow proximity attack on the design at
// each split layer and averages CCR/OER/HD, exactly like the paper's
// Tables 4 and 5 ("metrics averaged for splitting after M3, M4, and M5").
// ref is the original netlist (the attacker's target). When opt.OnlyPins is
// non-nil, CCR is scored only over fragments containing those sink pins —
// the paper scores the protected (randomized) nets.
//
// Layers are evaluated concurrently (opt.Parallelism workers) and merged
// deterministically in request order; results are identical for any
// parallelism level.
func EvaluateSecurity(ctx context.Context, d *layout.Design, ref *netlist.Netlist, opt EvalOptions) (SecurityResult, error) {
	opt = opt.withDefaults()
	em := newEmitter(opt.Progress)
	layers := opt.SplitLayers

	results := make([]LayerResult, len(layers))
	errs := make([]error, len(layers))
	workers := opt.Parallelism
	if workers > len(layers) {
		workers = len(layers)
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = evaluateLayer(ctx, d, ref, layers[i], opt)
				detail := ""
				if results[i].Vacuous {
					detail = "vacuous"
				}
				em.emit(Event{Stage: StageAttack, Layer: layers[i], Detail: detail, Elapsed: results[i].Elapsed})
			}
		}()
	}
	for i := range layers {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var out SecurityResult
	for i := range layers {
		if errs[i] != nil {
			return out, errs[i]
		}
	}
	out.PerLayer = results
	for _, lr := range results {
		if lr.Vacuous {
			continue
		}
		out.CCR += lr.CCR
		out.OER += lr.OER
		out.HD += lr.HD
		out.Protected += lr.Fragments
		out.Layers++
	}
	if out.Layers > 0 {
		out.CCR /= float64(out.Layers)
		out.OER /= float64(out.Layers)
		out.HD /= float64(out.Layers)
	}
	return out, nil
}

// evaluateLayer attacks one split layer. It is self-contained: it derives
// its own RNG stream and touches d and ref read-only, so layers can run
// concurrently.
func evaluateLayer(ctx context.Context, d *layout.Design, ref *netlist.Netlist, layer int, opt EvalOptions) (LayerResult, error) {
	start := time.Now()
	lr := LayerResult{Layer: layer}
	if err := ctx.Err(); err != nil {
		return lr, err
	}
	sv, err := d.Split(layer)
	if err != nil {
		return lr, err
	}
	lr.VPins = len(sv.VPins)
	res := proximity.Attack(ctx, d, sv, proximity.DefaultOptions())
	if err := ctx.Err(); err != nil {
		return lr, err
	}
	ccr := scoreCCR(d, sv, ref, res.Assignment, opt.OnlyPins)
	if ccr.Protected == 0 {
		lr.Vacuous = true // nothing crossed this boundary
		lr.Elapsed = time.Since(start)
		return lr, nil
	}
	rec := metrics.RecoverNetlist(d, sv, res.Assignment)
	cmp := sim.CompareResult{}
	if !rec.HasCombLoop() {
		rng := rand.New(rand.NewSource(layerSeed(opt.Seed, layer)))
		pats := sim.RandomPatterns(rng, ref.NumPIs(), opt.PatternWords)
		cmp, err = sim.Compare(ref, rec, pats, opt.PatternWords)
		if err != nil {
			return lr, err
		}
	} else {
		// A recovered netlist with loops is unusable: count as fully
		// erroneous.
		cmp.OER, cmp.HD = 1, 0.5
	}
	lr.Fragments = ccr.Protected
	lr.Correct = ccr.Correct
	lr.CCR = ccr.CCR
	lr.OER = cmp.OER
	lr.HD = cmp.HD
	lr.Elapsed = time.Since(start)
	return lr, nil
}

// scoreCCR scores like metrics.CCR but optionally restricted to fragments
// containing designated protected sink pins.
func scoreCCR(d *layout.Design, sv *layout.SplitView, ref *netlist.Netlist,
	a metrics.Assignment, onlyPins map[netlist.PinRef]bool) metrics.CCRResult {
	if onlyPins == nil {
		return metrics.CCR(d, sv, ref, a)
	}
	// Score only fragments containing the designated protected pins.
	var res metrics.CCRResult
	truth := metrics.TrueAssignment(d, sv, ref)
	for _, fid := range sv.SinkFrags() {
		f := &sv.Frags[fid]
		hit := false
		for _, sp := range f.SinkPins() {
			if sp.Role == layout.RoleSink && onlyPins[sp.Ref] {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		res.Protected++
		got, ok := a[fid]
		if ok && got == truth[fid] && got >= 0 {
			res.Correct++
		}
	}
	if res.Protected > 0 {
		res.CCR = float64(res.Correct) / float64(res.Protected)
	}
	return res
}
