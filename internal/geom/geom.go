// Package geom provides the small integer geometry kit shared by the
// placement, routing, and layout packages. All coordinates are in
// nanometers (database units), matching a 45nm-class technology; helper
// conversions to microns are provided for reporting, since the paper's
// Table 1 reports distances in microns.
package geom

import "fmt"

// NMPerMicron is the number of database units per micron.
const NMPerMicron = 1000

// Point is a location in nanometers.
type Point struct {
	X, Y int
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Manhattan returns the L1 distance between two points in nanometers.
func (p Point) Manhattan(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// Microns converts a nanometer length to microns.
func Microns(nm int) float64 { return float64(nm) / NMPerMicron }

// String renders the point as (x,y) in nm.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is an axis-aligned rectangle; Lo is inclusive, Hi exclusive.
type Rect struct {
	Lo, Hi Point
}

// NewRect normalizes the corner order.
func NewRect(a, b Point) Rect {
	r := Rect{a, b}
	if r.Lo.X > r.Hi.X {
		r.Lo.X, r.Hi.X = r.Hi.X, r.Lo.X
	}
	if r.Lo.Y > r.Hi.Y {
		r.Lo.Y, r.Hi.Y = r.Hi.Y, r.Lo.Y
	}
	return r
}

// W returns the rectangle width.
func (r Rect) W() int { return r.Hi.X - r.Lo.X }

// H returns the rectangle height.
func (r Rect) H() int { return r.Hi.Y - r.Lo.Y }

// Area returns the rectangle area in nm^2.
func (r Rect) Area() int64 { return int64(r.W()) * int64(r.H()) }

// Contains reports whether p lies inside r (Lo inclusive, Hi exclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X < r.Hi.X && p.Y >= r.Lo.Y && p.Y < r.Hi.Y
}

// Overlaps reports whether two rectangles share interior area.
func (r Rect) Overlaps(o Rect) bool {
	return r.Lo.X < o.Hi.X && o.Lo.X < r.Hi.X && r.Lo.Y < o.Hi.Y && o.Lo.Y < r.Hi.Y
}

// Union returns the bounding box of both rectangles.
func (r Rect) Union(o Rect) Rect {
	u := r
	if o.Lo.X < u.Lo.X {
		u.Lo.X = o.Lo.X
	}
	if o.Lo.Y < u.Lo.Y {
		u.Lo.Y = o.Lo.Y
	}
	if o.Hi.X > u.Hi.X {
		u.Hi.X = o.Hi.X
	}
	if o.Hi.Y > u.Hi.Y {
		u.Hi.Y = o.Hi.Y
	}
	return u
}

// Expand grows the rectangle by d on every side.
func (r Rect) Expand(d int) Rect {
	return Rect{Point{r.Lo.X - d, r.Lo.Y - d}, Point{r.Hi.X + d, r.Hi.Y + d}}
}

// Center returns the rectangle center.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// BBox returns the bounding box of a point set; ok is false for empty input.
func BBox(pts []Point) (Rect, bool) {
	if len(pts) == 0 {
		return Rect{}, false
	}
	r := Rect{pts[0], pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Lo.X {
			r.Lo.X = p.X
		}
		if p.Y < r.Lo.Y {
			r.Lo.Y = p.Y
		}
		if p.X > r.Hi.X {
			r.Hi.X = p.X
		}
		if p.Y > r.Hi.Y {
			r.Hi.Y = p.Y
		}
	}
	return r, true
}

// HPWL returns the half-perimeter wirelength of a point set in nm.
func HPWL(pts []Point) int {
	r, ok := BBox(pts)
	if !ok {
		return 0
	}
	return r.W() + r.H()
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
