package geom

import (
	"testing"
	"testing/quick"
)

func TestManhattan(t *testing.T) {
	a := Point{0, 0}
	b := Point{3000, 4000}
	if d := a.Manhattan(b); d != 7000 {
		t.Fatalf("d = %d", d)
	}
	if d := b.Manhattan(a); d != 7000 {
		t.Fatalf("not symmetric: %d", d)
	}
	if a.Manhattan(a) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestMicrons(t *testing.T) {
	if Microns(2500) != 2.5 {
		t.Fatalf("Microns(2500) = %v", Microns(2500))
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Point{10, 20}, Point{0, 5})
	if r.Lo != (Point{0, 5}) || r.Hi != (Point{10, 20}) {
		t.Fatalf("not normalized: %+v", r)
	}
	if r.W() != 10 || r.H() != 15 || r.Area() != 150 {
		t.Fatalf("dims wrong: %d %d %d", r.W(), r.H(), r.Area())
	}
	if !r.Contains(Point{0, 5}) || r.Contains(Point{10, 20}) {
		t.Fatal("containment semantics wrong (lo inclusive, hi exclusive)")
	}
}

func TestOverlapsAndUnion(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{10, 10})
	b := NewRect(Point{5, 5}, Point{15, 15})
	c := NewRect(Point{10, 0}, Point{20, 10}) // touching edge: no interior overlap
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("a/b should overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("edge-touching rects should not overlap")
	}
	u := a.Union(b)
	if u != NewRect(Point{0, 0}, Point{15, 15}) {
		t.Fatalf("union = %+v", u)
	}
}

func TestExpandCenter(t *testing.T) {
	r := NewRect(Point{10, 10}, Point{20, 30})
	e := r.Expand(5)
	if e != NewRect(Point{5, 5}, Point{25, 35}) {
		t.Fatalf("expand = %+v", e)
	}
	if r.Center() != (Point{15, 20}) {
		t.Fatalf("center = %v", r.Center())
	}
}

func TestBBoxHPWL(t *testing.T) {
	pts := []Point{{0, 0}, {10, 5}, {3, 8}}
	r, ok := BBox(pts)
	if !ok || r != NewRect(Point{0, 0}, Point{10, 8}) {
		t.Fatalf("bbox = %+v ok=%v", r, ok)
	}
	if HPWL(pts) != 18 {
		t.Fatalf("hpwl = %d", HPWL(pts))
	}
	if _, ok := BBox(nil); ok {
		t.Fatal("empty bbox should be !ok")
	}
	if HPWL(nil) != 0 {
		t.Fatal("empty hpwl nonzero")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Fatal("clamp wrong")
	}
}

func TestPropertyManhattanTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{int(ax), int(ay)}
		b := Point{int(bx), int(by)}
		c := Point{int(cx), int(cy)}
		// triangle inequality and symmetry
		return a.Manhattan(c) <= a.Manhattan(b)+b.Manhattan(c) &&
			a.Manhattan(b) == b.Manhattan(a) && a.Manhattan(b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnionContainsBoth(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int16) bool {
		r1 := NewRect(Point{int(ax), int(ay)}, Point{int(bx), int(by)})
		r2 := NewRect(Point{int(cx), int(cy)}, Point{int(dx), int(dy)})
		u := r1.Union(r2)
		return u.Lo.X <= r1.Lo.X && u.Lo.X <= r2.Lo.X &&
			u.Hi.Y >= r1.Hi.Y && u.Hi.Y >= r2.Hi.Y &&
			u.Area() >= r1.Area() && u.Area() >= r2.Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
