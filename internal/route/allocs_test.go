package route

import (
	"testing"

	"splitmfg/internal/geom"
)

// TestRouteNetAllocs pins the steady-state allocation count of an
// incremental RouteNet call (the ECO path BEOL restoration hammers). The
// budget is deliberately loose — it only needs to catch a reintroduced
// per-call map or per-search scratch slice, which costs hundreds of
// allocations, not single digits.
func TestRouteNetAllocs(t *testing.T) {
	die := geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 140_000, Y: 140_000}}
	grid := NewGrid(die, 0, 6)
	r := NewRouter(grid, Options{})
	pins := []Pin{
		{Pt: geom.Point{X: 5_000, Y: 5_000}, Layer: 1},
		{Pt: geom.Point{X: 120_000, Y: 30_000}, Layer: 1},
		{Pt: geom.Point{X: 60_000, Y: 110_000}, Layer: 1},
		{Pt: geom.Point{X: 20_000, Y: 90_000}, Layer: 1},
		{Pt: geom.Point{X: 100_000, Y: 100_000}, Layer: 1},
	}
	// Warm the worker scratch so the measurement reflects steady state.
	if err := r.RouteNet(1, pins, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := r.RouteNet(1, pins, 1); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 40
	if allocs > budget {
		t.Fatalf("RouteNet allocates %.0f/op, budget %d — per-call scratch crept back in", allocs, budget)
	}
	t.Logf("RouteNet: %.0f allocs/op (budget %d)", allocs, budget)
}
