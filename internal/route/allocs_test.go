package route

import (
	"testing"

	"splitmfg/internal/geom"
)

// TestRouteNetAllocs pins the steady-state allocation count of an
// incremental RouteNet call (the ECO path BEOL restoration hammers). The
// budget is deliberately loose — it only needs to catch a reintroduced
// per-call map or per-search scratch slice, which costs hundreds of
// allocations, not single digits.
func TestRouteNetAllocs(t *testing.T) {
	die := geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 140_000, Y: 140_000}}
	grid := NewGrid(die, 0, 6)
	r := NewRouter(grid, Options{})
	pins := []Pin{
		{Pt: geom.Point{X: 5_000, Y: 5_000}, Layer: 1},
		{Pt: geom.Point{X: 120_000, Y: 30_000}, Layer: 1},
		{Pt: geom.Point{X: 60_000, Y: 110_000}, Layer: 1},
		{Pt: geom.Point{X: 20_000, Y: 90_000}, Layer: 1},
		{Pt: geom.Point{X: 100_000, Y: 100_000}, Layer: 1},
	}
	// Warm the worker scratch so the measurement reflects steady state.
	if err := r.RouteNet(1, pins, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := r.RouteNet(1, pins, 1); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 40
	if allocs > budget {
		t.Fatalf("RouteNet allocates %.0f/op, budget %d — per-call scratch crept back in", allocs, budget)
	}
	t.Logf("RouteNet: %.0f allocs/op (budget %d)", allocs, budget)
}

// TestCoarsePlanAllocs pins the coarse pass at ~0 allocs/op steady
// state: after one warm-up batch the planner's arena, corridor list, A*
// scratch, and priority queue are all reused, so re-planning the same
// workload must not allocate (epoch-stamped scratch per the PR 7
// conventions — hotalloc enforces the same property statically).
func TestCoarsePlanAllocs(t *testing.T) {
	g := bigGrid()
	jobs := scatteredJobs(200, g, 99)
	r := NewRouter(g, Options{Strategy: StrategyHier})
	pl := newCoarsePlanner(r)
	pl.plan(jobs) // warm arena and scratch to capacity
	allocs := testing.AllocsPerRun(20, func() {
		pl.plan(jobs)
	})
	const budget = 0
	if allocs > budget {
		t.Fatalf("coarse plan allocates %.0f/op, budget %d — per-call scratch crept back in", allocs, budget)
	}
	t.Logf("coarse plan: %.0f allocs/op (budget %d)", allocs, budget)
}

// TestHierRefineAllocs pins corridor-confined serial refinement: the
// corridor mask is epoch-stamped worker state, so re-routing a batch
// under hier must stay within the flat path's per-net budget.
func TestHierRefineAllocs(t *testing.T) {
	g := bigGrid()
	jobs := scatteredJobs(40, g, 17)
	r := NewRouter(g, Options{Parallelism: 1, Strategy: StrategyHier})
	if err := r.RouteJobs(jobs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := r.RouteJobs(jobs); err != nil {
			t.Fatal(err)
		}
	})
	// Re-routing 40 nets: each commit clones pins and builds a RoutedNet,
	// like the flat path; the corridor machinery itself adds nothing.
	budget := float64(len(jobs) * 40)
	if allocs > budget {
		t.Fatalf("hier RouteJobs allocates %.0f/op for %d jobs, budget %.0f", allocs, len(jobs), budget)
	}
	t.Logf("hier RouteJobs: %.0f allocs/op for %d jobs (budget %.0f)", allocs, len(jobs), budget)
}
