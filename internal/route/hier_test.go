package route

import (
	"errors"
	"strings"
	"testing"
	"time"

	"splitmfg/internal/geom"
)

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want Strategy
		err  bool
	}{
		{"", StrategyAuto, false},
		{"auto", StrategyAuto, false},
		{"flat", StrategyFlat, false},
		{"hier", StrategyHier, false},
		{"HIER", "", true},
		{"fast", "", true},
	}
	for _, c := range cases {
		got, err := ParseStrategy(c.in)
		if c.err != (err != nil) || got != c.want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
}

// TestResolvedStrategyAuto: auto must resolve flat below the die-area
// threshold (every ISCAS'85 benchmark, so existing goldens stay
// byte-identical) and hier above it (superblue-class dies).
func TestResolvedStrategyAuto(t *testing.T) {
	mk := func(wNM, hNM int, s Strategy) *Router {
		die := geom.Rect{Lo: geom.Point{}, Hi: geom.Point{X: wNM, Y: hNM}}
		return NewRouter(NewGrid(die, 0, 10), Options{Strategy: s})
	}
	// c7552 at 70% utilization: the largest ISCAS die.
	if got := mk(69350, 71400, StrategyAuto).ResolvedStrategy(); got != StrategyFlat {
		t.Fatalf("auto on c7552-sized die resolved %v, want flat", got)
	}
	// superblue18 at SUPERBLUE_SCALE=200: the smallest CI superblue die.
	if got := mk(75240, 77000, StrategyAuto).ResolvedStrategy(); got != StrategyHier {
		t.Fatalf("auto on superblue18/200-sized die resolved %v, want hier", got)
	}
	// Explicit options win regardless of area.
	if got := mk(75240, 77000, StrategyFlat).ResolvedStrategy(); got != StrategyFlat {
		t.Fatalf("explicit flat resolved %v", got)
	}
	if got := mk(69350, 71400, StrategyHier).ResolvedStrategy(); got != StrategyHier {
		t.Fatalf("explicit hier resolved %v", got)
	}
}

// TestRouteJobsHierSerialParallelIdentical mirrors
// TestRouteJobsSerialParallelIdentical for the hierarchical strategy:
// corridor-confined parallel refinement must produce byte-identical
// router state to the serial schedule, with real multi-net waves and
// corridors actually in play.
func TestRouteJobsHierSerialParallelIdentical(t *testing.T) {
	g := bigGrid()
	jobs := scatteredJobs(400, g, 7)

	serial := NewRouter(g, Options{Parallelism: 1, Strategy: StrategyHier})
	if err := serial.RouteJobs(jobs); err != nil {
		t.Fatal(err)
	}
	if hs := serial.Hier(); hs.CorridorNets == 0 || hs.TileW == 0 {
		t.Fatalf("hier serial run planned no corridors: %+v", hs)
	}

	maxWave := 0
	par := NewRouter(g, Options{Parallelism: 8, Strategy: StrategyHier, OnWave: func(wave, waves, nets int, _ time.Duration) {
		if nets > maxWave {
			maxWave = nets
		}
	}})
	if err := par.RouteJobs(jobs); err != nil {
		t.Fatal(err)
	}
	if maxWave < 2 {
		t.Fatalf("no wave routed more than one net (max %d): partition degenerated to serial", maxWave)
	}
	stateEqual(t, serial, par)
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRouteJobsHierRerouteInBatch: batched re-routing of existing nets
// (old edges masked through the overlay, rip-up on commit) must stay
// byte-identical across parallelism levels under hier too.
func TestRouteJobsHierRerouteInBatch(t *testing.T) {
	g := bigGrid()
	pre := scatteredJobs(60, g, 21)
	jobs := scatteredJobs(60, g, 22) // same IDs 0..59, different pins

	build := func(parallelism int) *Router {
		r := NewRouter(g, Options{Parallelism: parallelism, Strategy: StrategyHier})
		for _, j := range pre {
			if err := r.RouteNet(j.ID, j.Pins, j.MinLayer); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.RouteJobs(jobs); err != nil {
			t.Fatal(err)
		}
		return r
	}
	stateEqual(t, build(1), build(8))
}

// TestHierCorridorFallback: a corridor that cannot be refined must fall
// back to the flat search in the serial schedule and force the parallel
// schedule through rollback into that same serial fallback — ending in
// identical state with the net routed. With soft capacities the coarse
// pass never produces an unroutable corridor organically, so the test
// injects one through the Router's corridorHook: the victim net's
// corridor is truncated to a single tile, which cannot contain a path
// between its distant pins.
func TestHierCorridorFallback(t *testing.T) {
	g := bigGrid()
	jobs := scatteredJobs(60, g, 9)
	victim := -1
	for i, j := range jobs {
		if len(j.Pins) == 2 && j.MinLayer == 1 &&
			absInt(j.Pins[0].Pt.X-j.Pins[1].Pt.X)/g.GCell > 3*waveTileGCells {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no suitable victim net in workload")
	}
	cripple := func(corrs []corridor) {
		if corrs[victim].n == 0 {
			t.Fatalf("victim %d has no corridor", victim)
		}
		corrs[victim].tiles = corrs[victim].tiles[:1]
	}

	serial := NewRouter(g, Options{Parallelism: 1, Strategy: StrategyHier})
	serial.corridorHook = cripple
	if err := serial.RouteJobs(jobs); err != nil {
		t.Fatal(err)
	}
	if fb := serial.Hier().FlatFallbacks; fb == 0 {
		t.Fatal("serial hier run recorded no flat fallback")
	}
	if rn := serial.Net(jobs[victim].ID); rn == nil || rn.Failed || len(rn.Edges) == 0 {
		t.Fatalf("victim net not routed by fallback: %+v", serial.Net(jobs[victim].ID))
	}

	par := NewRouter(g, Options{Parallelism: 8, Strategy: StrategyHier})
	par.corridorHook = cripple
	if err := par.RouteJobs(jobs); err != nil {
		t.Fatal(err)
	}
	if hs := par.Hier(); hs.BatchEscapes == 0 || hs.FlatFallbacks == 0 {
		t.Fatalf("parallel hier run did not escape to the serial fallback: %+v", hs)
	}
	stateEqual(t, serial, par)
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestHierUnroutableMatchesSerial: a genuinely unroutable net (M10 lift,
// horizontally separated pins) fails its corridor, falls back flat, and
// fails there too — identically in serial and parallel schedules.
func TestHierUnroutableMatchesSerial(t *testing.T) {
	g := bigGrid()
	jobs := scatteredJobs(50, g, 9)
	bad := Job{ID: 999, Pins: []Pin{
		{Pt: geom.Point{X: 100 * g.GCell, Y: 200 * g.GCell}, Layer: 1},
		{Pt: geom.Point{X: 130 * g.GCell, Y: 200 * g.GCell}, Layer: 1},
	}, MinLayer: 10}
	jobs = append(jobs[:25:25], append([]Job{bad}, jobs[25:]...)...)

	serial := NewRouter(g, Options{Parallelism: 1, Strategy: StrategyHier})
	serialErr := serial.RouteJobs(jobs)
	if serialErr == nil {
		t.Fatal("serial hier batch with an unroutable net did not fail")
	}
	par := NewRouter(g, Options{Parallelism: 8, Strategy: StrategyHier})
	parErr := par.RouteJobs(jobs)
	if parErr == nil {
		t.Fatal("parallel hier batch with an unroutable net did not fail")
	}
	if serialErr.Error() != parErr.Error() {
		t.Fatalf("error differs:\nserial:   %v\nparallel: %v", serialErr, parErr)
	}
	stateEqual(t, serial, par)
}

// TestCorridorCoversPins: every corridor must contain the tiles of all
// of its net's pins, and its region must cover the whole tile set —
// otherwise refinement could be cut off from a pin it has to reach.
func TestCorridorCoversPins(t *testing.T) {
	g := bigGrid()
	jobs := scatteredJobs(200, g, 13)
	r := NewRouter(g, Options{Strategy: StrategyHier})
	pl := newCoarsePlanner(r)
	corrs := pl.plan(jobs)
	if len(corrs) != len(jobs) {
		t.Fatalf("corridor count %d != job count %d", len(corrs), len(jobs))
	}
	for i, j := range jobs {
		if len(j.Pins) <= 1 {
			if corrs[i].n != 0 {
				t.Fatalf("single-pin job %d got a corridor", i)
			}
			continue
		}
		member := map[int32]bool{}
		for _, ti := range corrs[i].tiles {
			member[ti] = true
			tx, ty := int(ti)%pl.tw, int(ti)/pl.tw
			reg := corrs[i].reg
			if tx*waveTileGCells > reg.hiX || ty*waveTileGCells > reg.hiY ||
				tx*waveTileGCells+waveTileGCells-1 < reg.loX || ty*waveTileGCells+waveTileGCells-1 < reg.loY {
				t.Fatalf("job %d corridor tile (%d,%d) outside its region %+v", i, tx, ty, reg)
			}
		}
		for pi, p := range j.Pins {
			n := g.NodeOf(p.Pt, p.Layer)
			if !member[pl.tileOf(n.X, n.Y)] {
				t.Fatalf("job %d pin %d tile not in corridor", i, pi)
			}
		}
	}
}

// TestUsageOverflowPanicContext: the int16 saturation guard must name
// the net, direction, layer, and gcell so a full-scale failure is
// diagnosable from the panic message alone.
func TestUsageOverflowPanicContext(t *testing.T) {
	r := NewRouter(testGrid(), Options{})
	e := Edge{A: Node{X: 5, Y: 7, Z: 3}, B: Node{X: 6, Y: 7, Z: 3}}
	r.usageH[r.idx(Node{X: 5, Y: 7, Z: 3})] = 32767
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("overflowing addUsage did not panic")
		}
		msg, ok := rec.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", rec)
		}
		for _, want := range []string{"net 42", "horizontal", "M3", "(5,7)", "32768", "overflows int16"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic message %q missing %q", msg, want)
			}
		}
	}()
	r.addUsage(e, 1, 42)
}

// TestHierFailedFreshRouteKeepsMarker: a fresh hier route that fails
// (not via corridor exhaustion) must leave the same Failed marker the
// flat path leaves — no edges, no usage.
func TestHierFailedFreshRouteKeepsMarker(t *testing.T) {
	g := bigGrid()
	r := NewRouter(g, Options{Parallelism: 1, Strategy: StrategyHier})
	bad := Job{ID: 7, Pins: []Pin{
		{Pt: geom.Point{X: 100 * g.GCell, Y: 200 * g.GCell}, Layer: 1},
		{Pt: geom.Point{X: 130 * g.GCell, Y: 200 * g.GCell}, Layer: 1},
	}, MinLayer: 10}
	if err := r.RouteJobs([]Job{bad}); err == nil {
		t.Fatal("unroutable job succeeded")
	}
	if rn := r.Net(7); rn == nil || !rn.Failed || len(rn.Edges) != 0 {
		t.Fatalf("failed net state: %+v", r.Net(7))
	}
	if r.MaxUsage() != 0 {
		t.Fatalf("failed net left usage behind: %d", r.MaxUsage())
	}
	var je *JobError
	if err := r.RouteJobs([]Job{bad}); !errors.As(err, &je) {
		t.Fatalf("re-route of failed net: %v", err)
	}
}
