package route

import "splitmfg/internal/heapx"

// The hierarchical strategy's coarse pass plans every multi-pin net of a
// batch onto a grid of tiles (waveTileGCells x waveTileGCells gcells, the
// same tiling the wave partition hashes regions into) before any fine
// routing happens. Per net it builds a Steiner tree over tile centers —
// pin tiles attach nearest-first to the grown tree via multi-source A*
// over tile-boundary capacities, so branches meet at shared tiles
// (Steiner points) and a k-sink net decomposes into <= k narrow two-pin
// tile paths instead of one die-sized bounding box. The union of those
// paths is the net's corridor: the only region its fine A* may explore.
// There is no dilation margin — gcell capacities are soft, so within a
// connected tile set containing every pin tile the fine search cannot be
// hard-blocked, and tight corridors are where the speedup comes from.
//
// The pass is serial and cheap (the tile grid is ~100x smaller than the
// gcell grid per axis squared), runs before the wave partition, and is a
// pure function of the jobs and prior corridor demand — so corridors are
// identical no matter the parallelism level, which keeps the hier
// strategy inside the batch determinism contract.

// corridor is one net's coarse result: the tile set its fine search may
// explore and that set's gcell bounding rectangle. tiles is a
// view into the planner's per-batch arena, resolved after the whole
// batch is planned (the arena may move while growing). A zero corridor
// (single-pin net) means "no searches: flat rules apply".
type corridor struct {
	off, n int
	tiles  []int32
	reg    region
}

// tileBase is the cost of entering one tile in the coarse A*; congestion
// penalties are scaled against it.
const tileBase = 16

// coarsePlanner holds the tile grid state and all scratch the coarse
// pass needs, cached on the Router so steady-state planning does not
// allocate. Corridor demand on tile boundaries persists across batches
// on the same router, spreading later corridors away from earlier ones
// exactly like fine-grid history costs.
type coarsePlanner struct {
	r      *Router
	tw, th int // tiles in x and y

	// Corridor demand per tile boundary, indexed by the lower tile:
	// useH[t] counts corridors crossing between tile t and t+1 (same
	// row), useV[t] between t and t+tw.
	useH, useV []int32
	cap        int32 // soft corridor capacity per tile boundary

	// A* scratch over the tile grid, epoch-stamped.
	dist    []int64
	visitID []int32
	from    []int32
	epoch   int32
	pq      []pqItem

	// Tile-set membership scratch (epoch-stamped, shared by pin-tile
	// dedup and the growing corridor — each takes a fresh epoch).
	setEp    []int32
	setEpoch int32

	// Per-job scratch.
	core   []int32 // corridor tiles (pin tiles + connecting paths)
	ptiles []int32 // dedup'd pin tiles, [0] always pin 0's tile

	// Per-batch output, reused across batches.
	arena []int32
	corrs []corridor
}

func newCoarsePlanner(r *Router) *coarsePlanner {
	tw := (r.Grid.W + waveTileGCells - 1) / waveTileGCells
	th := (r.Grid.H + waveTileGCells - 1) / waveTileGCells
	n := tw * th
	// Soft capacity: gcell boundaries crossing one tile edge, times
	// tracks per boundary, times the layers that can route across it
	// (half the stack in each preferred direction).
	cp := int32(waveTileGCells * r.Opt.Capacity * r.Grid.Layers / 2)
	if cp < 1 {
		cp = 1
	}
	return &coarsePlanner{
		r: r, tw: tw, th: th,
		useH: make([]int32, n), useV: make([]int32, n),
		cap:  cp,
		dist: make([]int64, n), visitID: make([]int32, n), from: make([]int32, n),
		setEp: make([]int32, n),
	}
}

func (c *coarsePlanner) tileOf(x, y int) int32 {
	return int32((y/waveTileGCells)*c.tw + x/waveTileGCells)
}

// boundaryCost prices crossing one tile boundary with the given corridor
// demand: mild pressure while under capacity, a steep (but soft — the
// tile grid has no hard blocks) wall above it, mirroring segCost's shape
// one level up.
//
//smlint:hot
func (c *coarsePlanner) boundaryCost(u int32) int64 {
	if u < c.cap {
		return tileBase + int64(u)*tileBase/int64(c.cap)
	}
	return tileBase + 4*tileBase*int64(u-c.cap+1)
}

// plan runs the coarse pass for one batch, returning a corridor per job
// (parallel to jobs). Serial by design; the returned slice and its tile
// views are read-only until the next plan call.
func (c *coarsePlanner) plan(jobs []Job) []corridor {
	c.corrs = c.corrs[:0]
	c.arena = c.arena[:0]
	for _, j := range jobs {
		c.corrs = append(c.corrs, c.planNet(j))
	}
	// Resolve tile views only now: the arena no longer moves.
	for i := range c.corrs {
		co := &c.corrs[i]
		co.tiles = c.arena[co.off : co.off+co.n]
		if co.n > 0 {
			c.r.hierStats.CorridorNets++
		}
	}
	return c.corrs
}

// planNet plans one net's corridor: dedup pin tiles, attach each to the
// growing tile tree nearest-first, and append the resulting tile set to
// the batch arena.
//
//smlint:hot
func (c *coarsePlanner) planNet(j Job) corridor {
	if len(j.Pins) <= 1 {
		return corridor{}
	}
	g := c.r.Grid

	// Dedup pin tiles, pin 0's tile first.
	c.setEpoch++
	ep := c.setEpoch
	pt := c.ptiles[:0]
	for _, p := range j.Pins {
		n := g.NodeOf(p.Pt, p.Layer)
		ti := c.tileOf(n.X, n.Y)
		if c.setEp[ti] != ep {
			c.setEp[ti] = ep
			pt = append(pt, ti)
		}
	}
	c.ptiles = pt

	// Prim-style attachment order: remaining pin tiles sorted by
	// Manhattan tile distance from the root tile, ties by tile index —
	// deterministic, and it mirrors the fine router's nearest-first sink
	// order. Insertion sort: pin-tile counts are tiny and sort.Slice
	// would allocate on this per-net path.
	root := pt[0]
	rest := pt[1:]
	for i := 1; i < len(rest); i++ {
		v := rest[i]
		dv := c.tileDist(root, v)
		j := i - 1
		for j >= 0 {
			dj := c.tileDist(root, rest[j])
			if dj < dv || (dj == dv && rest[j] < v) {
				break
			}
			rest[j+1] = rest[j]
			j--
		}
		rest[j+1] = v
	}

	// Grow the corridor: root tile, then one multi-source A* per pin
	// tile from the whole corridor so far.
	c.setEpoch++
	ce := c.setEpoch
	c.core = c.core[:0]
	c.setEp[root] = ce
	c.core = append(c.core, root)
	for _, t := range rest {
		if c.setEp[t] == ce {
			continue // already swallowed by an earlier path
		}
		c.connect(t)
	}

	// The corridor is exactly the core — no dilation margin (see the
	// package comment above). Track the tile bounding box for the fine
	// search's declared region.
	loTx, loTy, hiTx, hiTy := c.tw, c.th, -1, -1
	for _, t := range c.core {
		tx, ty := int(t)%c.tw, int(t)/c.tw
		if tx < loTx {
			loTx = tx
		}
		if ty < loTy {
			loTy = ty
		}
		if tx > hiTx {
			hiTx = tx
		}
		if ty > hiTy {
			hiTy = ty
		}
	}

	reg := region{
		loX: loTx * waveTileGCells,
		loY: loTy * waveTileGCells,
		hiX: hiTx*waveTileGCells + waveTileGCells - 1,
		hiY: hiTy*waveTileGCells + waveTileGCells - 1,
	}
	if reg.hiX > g.W-1 {
		reg.hiX = g.W - 1
	}
	if reg.hiY > g.H-1 {
		reg.hiY = g.H - 1
	}
	off := len(c.arena)
	c.arena = append(c.arena, c.core...)
	return corridor{off: off, n: len(c.core), reg: reg}
}

func (c *coarsePlanner) tileDist(a, b int32) int {
	ax, ay := int(a)%c.tw, int(a)/c.tw
	bx, by := int(b)%c.tw, int(b)/c.tw
	return absInt(ax-bx) + absInt(ay-by)
}

// hDist is connect's admissible A* heuristic: Manhattan tile distance to
// the target times the base tile cost (congestion only adds to that).
func (c *coarsePlanner) hDist(i int32, ttx, tty int) int64 {
	tx, ty := int(i)%c.tw, int(i)/c.tw
	return int64(absInt(tx-ttx)+absInt(ty-tty)) * tileBase
}

// relaxTile relaxes one tile-grid edge cur -> ni (method rather than a
// closure so steady-state planning does not allocate).
//
//smlint:hot
func (c *coarsePlanner) relaxTile(q []pqItem, ep, cur, ni int32, cost int64, ttx, tty int) []pqItem {
	nd := c.dist[cur] + cost
	if c.visitID[ni] != ep || nd < c.dist[ni] {
		c.visitID[ni] = ep
		c.dist[ni] = nd
		c.from[ni] = cur
		q = heapx.Push(q, pqItem{Pri: nd + c.hDist(ni, ttx, tty), Value: ni})
	}
	return q
}

// connect runs one multi-source A* over the tile grid from the current
// corridor (every tile stamped with the corridor epoch) to the target
// tile, then appends the found path's tiles to the corridor and charges
// one unit of demand per crossed boundary. The tile grid has no hard
// blocks, so the search always reaches its target.
//
//smlint:hot
func (c *coarsePlanner) connect(target int32) {
	c.epoch++
	ep := c.epoch
	ce := c.setEpoch // corridor membership epoch (see planNet)
	ttx, tty := int(target)%c.tw, int(target)/c.tw
	q := c.pq[:0]
	for _, t := range c.core {
		c.dist[t] = 0
		c.visitID[t] = ep
		c.from[t] = -1
		q = heapx.Push(q, pqItem{Pri: c.hDist(t, ttx, tty), Value: t})
	}
	//smlint:bounded A* frontier over the finite tile grid with an admissible heuristic; every tile enqueues finitely often
	for len(q) > 0 {
		var it pqItem
		q, it = heapx.Pop(q)
		cur := it.Value
		if c.visitID[cur] != ep || it.Pri > c.dist[cur]+c.hDist(cur, ttx, tty) {
			continue // stale entry
		}
		if cur == target {
			for i := cur; c.from[i] >= 0; i = c.from[i] {
				if c.setEp[i] != ce {
					c.setEp[i] = ce
					c.core = append(c.core, i)
				}
				c.bumpDemand(c.from[i], i)
			}
			break
		}
		tx, ty := int(cur)%c.tw, int(cur)/c.tw
		if tx > 0 {
			q = c.relaxTile(q, ep, cur, cur-1, c.boundaryCost(c.useH[cur-1]), ttx, tty)
		}
		if tx < c.tw-1 {
			q = c.relaxTile(q, ep, cur, cur+1, c.boundaryCost(c.useH[cur]), ttx, tty)
		}
		if ty > 0 {
			q = c.relaxTile(q, ep, cur, cur-int32(c.tw), c.boundaryCost(c.useV[cur-int32(c.tw)]), ttx, tty)
		}
		if ty < c.th-1 {
			q = c.relaxTile(q, ep, cur, cur+int32(c.tw), c.boundaryCost(c.useV[cur]), ttx, tty)
		}
	}
	c.pq = q
}

// bumpDemand charges one corridor crossing to the boundary between two
// adjacent tiles.
func (c *coarsePlanner) bumpDemand(a, b int32) {
	lo := a
	if b < lo {
		lo = b
	}
	if a/int32(c.tw) == b/int32(c.tw) {
		c.useH[lo]++
	} else {
		c.useV[lo]++
	}
}
