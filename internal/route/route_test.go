package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"splitmfg/internal/geom"
)

func testGrid() Grid {
	die := geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 56000, Y: 56000}}
	return NewGrid(die, DefaultGCellNM, 10) // 20x20x10
}

func TestGridMapping(t *testing.T) {
	g := testGrid()
	if g.W != 20 || g.H != 20 {
		t.Fatalf("grid %dx%d, want 20x20", g.W, g.H)
	}
	n := g.NodeOf(geom.Point{X: 0, Y: 0}, 1)
	if n != (Node{0, 0, 1}) {
		t.Fatalf("node = %v", n)
	}
	n = g.NodeOf(geom.Point{X: 55999, Y: 55999}, 10)
	if n != (Node{19, 19, 10}) {
		t.Fatalf("node = %v", n)
	}
	// Out-of-range points clamp.
	n = g.NodeOf(geom.Point{X: -5, Y: 99999}, 42)
	if n != (Node{0, 19, 10}) {
		t.Fatalf("clamped node = %v", n)
	}
	c := g.CenterOf(Node{3, 4, 2})
	if c != (geom.Point{X: 3*2800 + 1400, Y: 4*2800 + 1400}) {
		t.Fatalf("center = %v", c)
	}
}

// TestNetsSnapshot: Nets() must return a copy — callers deleting from or
// adding to the returned map must not corrupt router state.
func TestNetsSnapshot(t *testing.T) {
	g := testGrid()
	r := NewRouter(g, Options{})
	pins := []Pin{{Pt: geom.Point{X: 1000, Y: 1000}, Layer: 1}, {Pt: geom.Point{X: 40000, Y: 40000}, Layer: 1}}
	if err := r.RouteNet(7, pins, 1); err != nil {
		t.Fatal(err)
	}
	snap := r.Nets()
	delete(snap, 7)
	snap[99] = &RoutedNet{ID: 99}
	if r.Net(7) == nil {
		t.Fatal("deleting from the Nets() snapshot removed the net from the router")
	}
	if r.Net(99) != nil {
		t.Fatal("inserting into the Nets() snapshot leaked into the router")
	}
	if r.NumNets() != 1 {
		t.Fatalf("router has %d nets, want 1", r.NumNets())
	}
}

func TestRouteTwoPin(t *testing.T) {
	r := NewRouter(testGrid(), Options{})
	pins := []Pin{
		{Pt: geom.Point{X: 1400, Y: 1400}, Layer: 1},
		{Pt: geom.Point{X: 42000, Y: 28000}, Layer: 1},
	}
	if err := r.RouteNet(0, pins, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	rn := r.Net(0)
	wl, vias := rn.Wirelength(r.Grid)
	if wl <= 0 || vias < 2 {
		t.Fatalf("wl=%d vias=%d", wl, vias)
	}
	// Minimum wirelength is the Manhattan distance in gcells.
	a := r.Grid.NodeOf(pins[0].Pt, 1)
	b := r.Grid.NodeOf(pins[1].Pt, 1)
	minWL := int64((absInt(a.X-b.X) + absInt(a.Y-b.Y)) * r.Grid.GCell)
	if wl < minWL {
		t.Fatalf("wirelength %d below Manhattan bound %d", wl, minWL)
	}
	if wl > 2*minWL {
		t.Fatalf("wirelength %d far above Manhattan bound %d (bad routing)", wl, minWL)
	}
}

func TestRouteMultiPin(t *testing.T) {
	r := NewRouter(testGrid(), Options{})
	rng := rand.New(rand.NewSource(4))
	pins := make([]Pin, 6)
	for i := range pins {
		pins[i] = Pin{Pt: geom.Point{X: rng.Intn(56000), Y: rng.Intn(56000)}, Layer: 1}
	}
	if err := r.RouteNet(7, pins, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLiftConstraint(t *testing.T) {
	r := NewRouter(testGrid(), Options{})
	pins := []Pin{
		{Pt: geom.Point{X: 1400, Y: 1400}, Layer: 1},
		{Pt: geom.Point{X: 42000, Y: 28000}, Layer: 1},
	}
	if err := r.RouteNet(0, pins, 6); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// All wire segments must be on M6+; via chain must reach down to pins.
	sawWire := false
	for _, e := range r.Net(0).Edges {
		if !e.IsVia() {
			sawWire = true
			if e.A.Z < 6 {
				t.Fatalf("wire on M%d despite lift to M6", e.A.Z)
			}
		}
	}
	if !sawWire {
		t.Fatal("no wire segments at all")
	}
	s := r.ComputeStats()
	// Lifting to M6 forces vias through every boundary V12..V56 at both
	// ends: at least 2 per boundary below M6.
	for z := 1; z <= 5; z++ {
		if s.Vias[z] < 2 {
			t.Fatalf("V%d%d = %d, want >= 2", z, z+1, s.Vias[z])
		}
	}
}

func TestLiftAboveTopRejected(t *testing.T) {
	r := NewRouter(testGrid(), Options{})
	pins := []Pin{{Pt: geom.Point{X: 0, Y: 0}, Layer: 1}, {Pt: geom.Point{X: 9000, Y: 0}, Layer: 1}}
	if err := r.RouteNet(0, pins, 11); err == nil {
		t.Fatal("lift above top layer should fail")
	}
}

func TestRipUpRestoresUsage(t *testing.T) {
	r := NewRouter(testGrid(), Options{})
	pins := []Pin{
		{Pt: geom.Point{X: 1400, Y: 1400}, Layer: 1},
		{Pt: geom.Point{X: 42000, Y: 28000}, Layer: 1},
	}
	if err := r.RouteNet(3, pins, 1); err != nil {
		t.Fatal(err)
	}
	if r.MaxUsage() == 0 {
		t.Fatal("routing did not record usage")
	}
	r.RipUp(3)
	if r.MaxUsage() != 0 {
		t.Fatal("rip-up left usage behind")
	}
	if r.Net(3) != nil {
		t.Fatal("net still present after rip-up")
	}
}

func TestRerouteReplaces(t *testing.T) {
	r := NewRouter(testGrid(), Options{})
	pins := []Pin{
		{Pt: geom.Point{X: 1400, Y: 1400}, Layer: 1},
		{Pt: geom.Point{X: 42000, Y: 28000}, Layer: 1},
	}
	if err := r.RouteNet(3, pins, 1); err != nil {
		t.Fatal(err)
	}
	wl1, _ := r.Net(3).Wirelength(r.Grid)
	// Re-route the same net with a lift constraint (ECO-style).
	if err := r.RouteNet(3, pins, 8); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	wl2, vias2 := r.Net(3).Wirelength(r.Grid)
	if wl2 < wl1 {
		t.Fatalf("lifted route shorter than flat route: %d < %d", wl2, wl1)
	}
	if vias2 < 14 {
		t.Fatalf("lifted route has too few vias: %d", vias2)
	}
}

func TestCongestionSpreadsRoutes(t *testing.T) {
	// Route many parallel nets through a narrow region; capacity pressure
	// must not prevent completion and usage must stay bounded-ish.
	r := NewRouter(testGrid(), Options{Capacity: 2})
	for i := 0; i < 30; i++ {
		pins := []Pin{
			{Pt: geom.Point{X: 1400, Y: 28000}, Layer: 1},
			{Pt: geom.Point{X: 54000, Y: 28000}, Layer: 1},
		}
		if err := r.RouteNet(i, pins, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsTally(t *testing.T) {
	r := NewRouter(testGrid(), Options{})
	pins := []Pin{
		{Pt: geom.Point{X: 1400, Y: 1400}, Layer: 1},
		{Pt: geom.Point{X: 20000, Y: 1400}, Layer: 1},
	}
	if err := r.RouteNet(0, pins, 1); err != nil {
		t.Fatal(err)
	}
	s := r.ComputeStats()
	var wl int64
	for z := 1; z <= 10; z++ {
		wl += s.WirelengthByLayer[z]
	}
	if wl != s.TotalWirelength || wl <= 0 {
		t.Fatalf("per-layer wl %d != total %d", wl, s.TotalWirelength)
	}
	var vias int64
	for z := 1; z < 10; z++ {
		vias += s.Vias[z]
	}
	if vias != s.TotalVias || vias < 2 {
		t.Fatalf("vias %d / total %d", vias, s.TotalVias)
	}
}

func TestSameGCellPins(t *testing.T) {
	r := NewRouter(testGrid(), Options{})
	pins := []Pin{
		{Pt: geom.Point{X: 1000, Y: 1000}, Layer: 1},
		{Pt: geom.Point{X: 1200, Y: 1100}, Layer: 1}, // same gcell
	}
	if err := r.RouteNet(0, pins, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNoPinsRejected(t *testing.T) {
	r := NewRouter(testGrid(), Options{})
	if err := r.RouteNet(0, nil, 1); err == nil {
		t.Fatal("expected error for empty pin list")
	}
}

func TestHighLayerPins(t *testing.T) {
	// Correction cells have pins on M6/M8: routing between them must not
	// dip below M6 when lifted.
	r := NewRouter(testGrid(), Options{})
	pins := []Pin{
		{Pt: geom.Point{X: 1400, Y: 1400}, Layer: 6},
		{Pt: geom.Point{X: 30000, Y: 30000}, Layer: 6},
	}
	if err := r.RouteNet(0, pins, 6); err != nil {
		t.Fatal(err)
	}
	for _, e := range r.Net(0).Edges {
		lo := e.A.Z
		if e.B.Z < lo {
			lo = e.B.Z
		}
		if lo < 6 {
			t.Fatalf("edge %v dips below M6", e)
		}
	}
}

func TestPropertyRandomNetsRouteAndValidate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRouter(testGrid(), Options{})
		for id := 0; id < 12; id++ {
			np := 2 + rng.Intn(4)
			pins := make([]Pin, np)
			for i := range pins {
				pins[i] = Pin{Pt: geom.Point{X: rng.Intn(56000), Y: rng.Intn(56000)}, Layer: 1}
			}
			min := 1
			if rng.Intn(3) == 0 {
				min = 6
			}
			if err := r.RouteNet(id, pins, min); err != nil {
				return false
			}
		}
		return r.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRipUpIsInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRouter(testGrid(), Options{})
		// Route a background net, snapshot usage, route+ripup another,
		// usage must return to the snapshot.
		bg := []Pin{
			{Pt: geom.Point{X: 1400, Y: 1400}, Layer: 1},
			{Pt: geom.Point{X: 42000, Y: 42000}, Layer: 1},
		}
		if r.RouteNet(0, bg, 1) != nil {
			return false
		}
		snapH := append([]int16(nil), r.usageH...)
		snapV := append([]int16(nil), r.usageV...)
		pins := []Pin{
			{Pt: geom.Point{X: rng.Intn(56000), Y: rng.Intn(56000)}, Layer: 1},
			{Pt: geom.Point{X: rng.Intn(56000), Y: rng.Intn(56000)}, Layer: 1},
		}
		if r.RouteNet(1, pins, 1) != nil {
			return false
		}
		r.RipUp(1)
		for i := range snapH {
			if r.usageH[i] != snapH[i] || r.usageV[i] != snapV[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRouteTwoPinNets(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := NewRouter(testGrid(), Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pins := []Pin{
			{Pt: geom.Point{X: rng.Intn(56000), Y: rng.Intn(56000)}, Layer: 1},
			{Pt: geom.Point{X: rng.Intn(56000), Y: rng.Intn(56000)}, Layer: 1},
		}
		if err := r.RouteNet(i, pins, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNegotiateRerouteReducesOverflow(t *testing.T) {
	// Jam many parallel nets through the same corridor at capacity 1,
	// then negotiate: overflow must drop (usually to zero).
	r := NewRouter(testGrid(), Options{Capacity: 1})
	for i := 0; i < 12; i++ {
		pins := []Pin{
			{Pt: geom.Point{X: 1400, Y: 28000 + (i%3)*100}, Layer: 1},
			{Pt: geom.Point{X: 54000, Y: 28000 + (i%3)*100}, Layer: 1},
		}
		if err := r.RouteNet(i, pins, 1); err != nil {
			t.Fatal(err)
		}
	}
	before := r.ComputeStats().OverflowEdges
	r.NegotiateReroute(4)
	after := r.ComputeStats().OverflowEdges
	if after > before {
		t.Fatalf("negotiation increased overflow: %d -> %d", before, after)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNegotiatePreservesLiftConstraints(t *testing.T) {
	r := NewRouter(testGrid(), Options{Capacity: 1})
	for i := 0; i < 8; i++ {
		pins := []Pin{
			{Pt: geom.Point{X: 1400, Y: 28000}, Layer: 1},
			{Pt: geom.Point{X: 54000, Y: 28000}, Layer: 1},
		}
		lift := 1
		if i%2 == 0 {
			lift = 6
		}
		if err := r.RouteNet(i, pins, lift); err != nil {
			t.Fatal(err)
		}
	}
	r.NegotiateReroute(3)
	for i := 0; i < 8; i += 2 {
		if rn := r.Net(i); rn.MinLayer != 6 {
			t.Fatalf("net %d lost its lift constraint after negotiation", i)
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}
