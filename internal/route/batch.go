package route

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"splitmfg/internal/geom"
)

// Job is one net of a batched routing request (RouteJobs).
type Job struct {
	ID       int
	Pins     []Pin
	MinLayer int
}

// JobError reports which job of a batch failed. It wraps the same error
// the equivalent RouteNet call would have returned.
type JobError struct {
	Index int // position in the jobs slice
	ID    int // net ID
	Err   error
}

func (e *JobError) Error() string { return e.Err.Error() }
func (e *JobError) Unwrap() error { return e.Err }

// waveTileGCells is the bucket size the wave partition hashes job regions
// into. Conflicts are detected at tile granularity (two jobs sharing a
// tile are serialized into different waves), so the tile must be small
// relative to a typical declared region (>= 2*MaxDetour+1 gcells wide) or
// tile-sharing degenerates into a global chain: real ISCAS/superblue
// grids are only 45-160 gcells across.
const waveTileGCells = 8

// RouteJobs routes the jobs in order, with semantics identical to calling
// RouteNet(j.ID, j.Pins, j.MinLayer) for each job sequentially — but, when
// Opt.Parallelism allows (0 = GOMAXPROCS), spatially disjoint nets route
// concurrently:
//
// Each job declares a region — its pin bounding box (plus any existing
// route's bounding box) expanded by MaxDetour gcells per sink, the bound
// on how far its searches can read or write congestion state. The batch is
// partitioned into deterministic waves such that jobs within a wave have
// pairwise disjoint regions (and any two conflicting jobs keep their
// serial order across waves). A wave's nets route concurrently on
// worker-local scratch against the usage state committed by earlier
// waves, then commit edges and usage in job order; since same-wave nets
// cannot observe each other, the committed state after every wave is
// byte-identical to the serial schedule's.
//
// A search that would expand beyond its declared region (a detour retry,
// or a multi-sink tree drifting unusually far) cannot be proven
// order-independent: the batch then discards all concurrent work, rolls
// back to its starting state, and re-runs entirely serially. The fallback
// — like everything else here — is deterministic, so results never depend
// on the parallelism level. On failure the routed prefix may differ from
// a serial run's (the batch aborts mid-partition); callers must treat any
// error as fatal for the whole design.
//
// A batch whose jobs repeat an ID routes serially (the later job would
// rip up a route committed mid-batch, which the up-front partition cannot
// see); replacing routes that existed before the batch parallelizes fine.
//
// Under the hierarchical strategy (Opt.Strategy, see strategy.go) a
// serial coarse pass first plans a corridor per multi-pin net; declared
// regions become corridor rectangles (plus any old route being replaced)
// and every fine search is confined to its corridor. A net whose
// corridor turns out unroutable falls back to the flat search in the
// serial schedule; in a parallel wave that fallback cannot stay inside
// the declared region, so the batch rolls back and re-runs serially —
// the same protocol escapes use, with the same determinism argument.
//
// Opt.OnWave, when set, observes each committed multi-net wave.
func (r *Router) RouteJobs(jobs []Job) error {
	var corrs []corridor
	if r.ResolvedStrategy() == StrategyHier && len(jobs) > 0 {
		if r.planner == nil {
			r.planner = newCoarsePlanner(r)
		}
		corrs = r.planner.plan(jobs)
		if r.corridorHook != nil {
			r.corridorHook(corrs)
		}
		// Remember each net's corridor (copied: the planner arena is
		// reused by the next plan) so congestion negotiation between
		// batches can stay corridor-confined — see NegotiateReroute.
		if r.netCorrs == nil {
			r.netCorrs = make(map[int]storedCorridor, len(jobs))
		}
		for i, j := range jobs {
			if corrs[i].n > 0 {
				r.netCorrs[j.ID] = storedCorridor{
					tiles: append([]int32(nil), corrs[i].tiles...),
					reg:   corrs[i].reg,
				}
			}
		}
	}
	p := r.Opt.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > len(jobs) {
		p = len(jobs)
	}
	if p <= 1 {
		return r.routeJobsSerial(jobs, corrs)
	}
	waves, ok := r.partition(jobs, corrs)
	if !ok {
		// Degenerate partition (every wave a single job): the batch is a
		// serial chain, skip the worker machinery.
		return r.routeJobsSerial(jobs, corrs)
	}

	// Workers are allocated per batch, not cached on the Router: their
	// scratch is sized to the full grid (~24 bytes/node each), and routers
	// live as long as their Designs — which suite caches retain. Paying
	// the allocation on each of a build's few batched calls beats pinning
	// hundreds of MB to every superblue-scale design in a suite.
	workers := make([]*worker, 0, p)
	rns := make([]*RoutedNet, len(jobs))
	errs := make([]error, len(jobs))
	// committed tracks (job index, replaced route) for rollback: when any
	// job escapes its declared region the whole batch restarts serially.
	type commitRec struct {
		id  int
		old *RoutedNet
	}
	var committed []commitRec
	rollback := func() {
		// Reverse order, so a net committed twice in one batch unwinds to
		// its pre-batch route.
		for k := len(committed) - 1; k >= 0; k-- {
			c := committed[k]
			r.ripUp(r.nets[c.id])
			if c.old != nil {
				// The old route's edges were snapshotted before the commit
				// that replaced it; restore them and their usage.
				r.nets[c.id] = c.old
				for _, e := range c.old.Edges {
					r.addUsage(e, 1, c.id)
				}
			} else {
				delete(r.nets, c.id)
			}
		}
	}

	// routeOne routes one job on a worker with the job's corridor (if
	// any) armed for the duration of the call.
	routeOne := func(w *worker, ji int, bound *region) (*RoutedNet, error) {
		j := jobs[ji]
		if corrs != nil && corrs[ji].n > 0 {
			w.setCorridor(r.planner.tw, r.planner.th, corrs[ji].tiles, corrs[ji].reg)
			defer w.clearCorridor()
		}
		return w.routeNet(j.ID, j.Pins, j.MinLayer, r.nets[j.ID], bound)
	}

	for wi, wv := range waves {
		start := time.Now() //smlint:wallclock wave wall-clock for the OnWave progress callback; never reaches routed results
		if len(wv.jobs) == 1 {
			ji := wv.jobs[0]
			rns[ji], errs[ji] = routeOne(r.serial, ji, &wv.regions[0])
		} else {
			pw := p
			if pw > len(wv.jobs) {
				pw = len(wv.jobs)
			}
			//smlint:bounded grows the reusable worker pool to pw <= Parallelism, one append per iteration
			for len(workers) < pw {
				workers = append(workers, newWorker(r))
			}
			var next int32
			var wg sync.WaitGroup
			for k := 0; k < pw; k++ {
				wg.Add(1)
				go func(w *worker) {
					defer wg.Done()
					//smlint:bounded work-stealing over a fixed job list: every iteration claims a fresh index and returns past len(wv.jobs)
					for {
						t := int(atomic.AddInt32(&next, 1)) - 1
						if t >= len(wv.jobs) {
							return
						}
						ji := wv.jobs[t]
						rns[ji], errs[ji] = routeOne(w, ji, &wv.regions[t])
					}
				}(workers[k])
			}
			wg.Wait()
		}
		// Any escape — or corridor failure, whose flat retry cannot stay
		// inside the declared region — poisons every concurrent result:
		// roll back and route the whole batch serially. (Escape is
		// deterministic: until one occurs, every routed job saw exactly
		// the serial schedule's state, so a batch escapes in parallel iff
		// its serial schedule would trigger a detour retry, region drift,
		// or corridor fallback.)
		for _, ji := range wv.jobs {
			if errors.Is(errs[ji], errEscaped) || errors.Is(errs[ji], errCorridor) {
				rollback()
				if corrs != nil {
					r.hierStats.BatchEscapes++
				}
				return r.routeJobsSerial(jobs, corrs)
			}
		}
		// Commit in job order. Same-wave jobs cannot interact, so this
		// yields the serial schedule's state exactly.
		for _, ji := range wv.jobs {
			j := jobs[ji]
			old := r.nets[j.ID]
			if errs[ji] != nil {
				if old == nil {
					r.nets[j.ID] = rns[ji]
				}
				return &JobError{Index: ji, ID: j.ID, Err: errs[ji]}
			}
			// Snapshot the old edges before commit rips them up, so a later
			// escape can restore them.
			var snap *RoutedNet
			if old != nil {
				snap = &RoutedNet{ID: old.ID, Pins: old.Pins, Edges: old.Edges, MinLayer: old.MinLayer, Failed: old.Failed}
			}
			r.commit(rns[ji], old)
			committed = append(committed, commitRec{id: j.ID, old: snap})
		}
		if r.Opt.OnWave != nil && len(wv.jobs) > 1 {
			r.Opt.OnWave(wi+1, len(waves), len(wv.jobs), time.Since(start))
		}
	}
	return nil
}

// routeJobsSerial is the serial schedule every batch reduces to: plain
// RouteNet per job in order under the flat strategy (corrs nil), and
// corridor-first routing with a per-net flat fallback under hier. The
// parallel path's escape fallback re-enters here with the same corridors
// the waves used, so both paths make identical routing decisions.
func (r *Router) routeJobsSerial(jobs []Job, corrs []corridor) error {
	for i, j := range jobs {
		var err error
		if corrs != nil && corrs[i].n > 0 {
			err = r.routeNetHier(j, &corrs[i])
		} else {
			err = r.RouteNet(j.ID, j.Pins, j.MinLayer)
		}
		if err != nil {
			return &JobError{Index: i, ID: j.ID, Err: err}
		}
	}
	return nil
}

// routeNetHier routes one multi-pin job corridor-first on the serial
// worker. A corridor failure is not fatal: the net retries with the flat
// search (full detour loop) exactly as if the strategy were flat, and
// the retry is counted in HierStats.FlatFallbacks.
func (r *Router) routeNetHier(j Job, c *corridor) error {
	return r.routeNetCorridor(j.ID, j.Pins, j.MinLayer, c.tiles, c.reg)
}

// routeNetCorridor is the serial corridor-confined route shared by hier
// batch refinement and hier congestion negotiation: compute within the
// corridor, retry flat on corridor exhaustion, commit only on success —
// the same contract as RouteNet.
func (r *Router) routeNetCorridor(id int, pins []Pin, minLayer int, tiles []int32, reg region) error {
	if minLayer > r.Grid.Layers {
		return fmt.Errorf("route: net %d lift layer M%d above top layer M%d", id, minLayer, r.Grid.Layers)
	}
	old := r.nets[id]
	w := r.serial
	w.setCorridor(r.planner.tw, r.planner.th, tiles, reg)
	rn, err := w.routeNet(id, pins, minLayer, old, nil)
	w.clearCorridor()
	if err != nil {
		if errors.Is(err, errCorridor) {
			r.hierStats.FlatFallbacks++
			return r.RouteNet(id, pins, minLayer)
		}
		if old == nil {
			r.nets[id] = rn // failed marker: no edges, no usage
		}
		return err
	}
	r.commit(rn, old)
	return nil
}

// wave is one parallel step of a batch: job indices in job order plus each
// job's declared region (parallel slices).
type wave struct {
	jobs    []int
	regions []region
}

// partition assigns every job a wave level such that (a) two jobs whose
// declared regions overlap always land in different waves with the
// earlier job first, and (b) jobs within a wave are pairwise disjoint.
// Levels come from per-tile chains: each job depends on the last previous
// job sharing any of its tiles — a superset of true region overlaps
// (overlapping regions share at least one tile), computed in linear time.
// corrs, non-nil under the hierarchical strategy, substitutes corridor
// rectangles for detour-expanded bounding boxes.
// ok is false when the partition is fully serial (no wave holds two jobs).
func (r *Router) partition(jobs []Job, corrs []corridor) ([]wave, bool) {
	// Duplicate IDs inside one batch invalidate the up-front regions: the
	// later job would rip up whatever route the earlier one commits
	// mid-batch, which the pre-batch state cannot predict. No pipeline
	// caller does this; route such a batch serially.
	ids := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		if ids[j.ID] {
			return nil, false
		}
		ids[j.ID] = true
	}
	regions := make([]region, len(jobs))
	levels := make([]int, len(jobs))
	numLevels := 0
	last := map[[2]int]int{} // tile -> last job index covering it
	for i, j := range jobs {
		var reg region
		var interacts bool
		if corrs != nil && corrs[i].n > 0 {
			reg, interacts = r.declaredRegionHier(j, &corrs[i])
		} else {
			reg, interacts = r.declaredRegion(j)
		}
		regions[i] = reg
		lvl := 0
		if interacts {
			for ty := reg.loY / waveTileGCells; ty <= reg.hiY/waveTileGCells; ty++ {
				for tx := reg.loX / waveTileGCells; tx <= reg.hiX/waveTileGCells; tx++ {
					if p, ok := last[[2]int{tx, ty}]; ok && levels[p]+1 > lvl {
						lvl = levels[p] + 1
					}
				}
			}
			for ty := reg.loY / waveTileGCells; ty <= reg.hiY/waveTileGCells; ty++ {
				for tx := reg.loX / waveTileGCells; tx <= reg.hiX/waveTileGCells; tx++ {
					last[[2]int{tx, ty}] = i
				}
			}
		}
		levels[i] = lvl
		if lvl+1 > numLevels {
			numLevels = lvl + 1
		}
	}
	if numLevels >= len(jobs) {
		return nil, false
	}
	waves := make([]wave, numLevels)
	for i, lvl := range levels {
		waves[lvl].jobs = append(waves[lvl].jobs, i)
		waves[lvl].regions = append(waves[lvl].regions, regions[i])
	}
	return waves, true
}

// declaredRegion is the spatial bound job searches must stay within when
// routed concurrently: the bounding box of its pins and any existing route
// being replaced, expanded by MaxDetour gcells per sink (each sink's
// search can expand the tree's bounding box by one first-attempt detour).
// interacts is false only for jobs that neither read nor write congestion
// state: single-pin jobs with no existing route to rip up. A single-pin
// job replacing a routed net interacts — its commit decrements usage
// across the old route's region — but needs no detour margin, since it
// performs no searches.
func (r *Router) declaredRegion(j Job) (region, bool) {
	g := r.Grid
	n0 := g.NodeOf(j.Pins[0].Pt, j.Pins[0].Layer)
	reg := region{loX: n0.X, loY: n0.Y, hiX: n0.X, hiY: n0.Y}
	grow := func(x, y int) {
		if x < reg.loX {
			reg.loX = x
		}
		if y < reg.loY {
			reg.loY = y
		}
		if x > reg.hiX {
			reg.hiX = x
		}
		if y > reg.hiY {
			reg.hiY = y
		}
	}
	for _, p := range j.Pins[1:] {
		n := g.NodeOf(p.Pt, p.Layer)
		grow(n.X, n.Y)
	}
	interacts := len(j.Pins) > 1
	if old := r.nets[j.ID]; old != nil && len(old.Edges) > 0 {
		interacts = true
		for _, e := range old.Edges {
			grow(e.A.X, e.A.Y)
			grow(e.B.X, e.B.Y)
		}
	}
	if !interacts {
		return reg, false
	}
	if k := len(j.Pins) - 1; k > 0 {
		m := r.Opt.MaxDetour * k
		reg.loX = geom.Clamp(reg.loX-m, 0, g.W-1)
		reg.loY = geom.Clamp(reg.loY-m, 0, g.H-1)
		reg.hiX = geom.Clamp(reg.hiX+m, 0, g.W-1)
		reg.hiY = geom.Clamp(reg.hiY+m, 0, g.H-1)
	}
	return reg, true
}

// declaredRegionHier is the hierarchical strategy's declared region: the
// corridor's rectangle (which already contains every pin —
// corridor-confined searches cannot read or write outside it) unioned
// with any existing route being replaced,
// whose rip-up decrements usage across the old edges. No detour
// expansion: corridor mode runs a single attempt and a failure escapes
// to the serial schedule instead of retrying wider.
func (r *Router) declaredRegionHier(j Job, c *corridor) (region, bool) {
	reg := c.reg
	if old := r.nets[j.ID]; old != nil && len(old.Edges) > 0 {
		grow := func(x, y int) {
			if x < reg.loX {
				reg.loX = x
			}
			if y < reg.loY {
				reg.loY = y
			}
			if x > reg.hiX {
				reg.hiX = x
			}
			if y > reg.hiY {
				reg.hiY = y
			}
		}
		for _, e := range old.Edges {
			grow(e.A.X, e.A.Y)
			grow(e.B.X, e.B.Y)
		}
	}
	return reg, true
}
