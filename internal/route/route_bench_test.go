package route

import (
	"fmt"
	"math/rand"
	"testing"

	"splitmfg/internal/geom"
)

// benchPins builds a deterministic workload: n two-pin nets with endpoints
// scattered over a 100x100-gcell die, a mix of short and long connections
// like a placed netlist produces.
func benchPins(n int, die geom.Rect) [][]Pin {
	rng := rand.New(rand.NewSource(99))
	pins := make([][]Pin, n)
	for i := range pins {
		a := geom.Point{X: rng.Intn(die.Hi.X), Y: rng.Intn(die.Hi.Y)}
		// Half local (within ~8 gcells), half global connections.
		var b geom.Point
		if i%2 == 0 {
			b = geom.Point{
				X: geom.Clamp(a.X+rng.Intn(8*DefaultGCellNM)-4*DefaultGCellNM, 0, die.Hi.X-1),
				Y: geom.Clamp(a.Y+rng.Intn(8*DefaultGCellNM)-4*DefaultGCellNM, 0, die.Hi.Y-1),
			}
		} else {
			b = geom.Point{X: rng.Intn(die.Hi.X), Y: rng.Intn(die.Hi.Y)}
		}
		pins[i] = []Pin{{Pt: a, Layer: 1}, {Pt: b, Layer: 1}}
	}
	return pins
}

// BenchmarkRouteNet measures routing 400 two-pin nets on a 100x100x10
// grid — the A* search plus typed-heap priority queue (internal/heapx)
// that dominates every place-and-route in the pipeline. Before the
// typed-heap/buffer-reuse change this path allocated one boxed pqItem per
// heap push via container/heap; replacing it cut this benchmark from
// 601ms/op with 6.06M allocs to ~370ms/op with 8.4k allocs (and
// RerouteNet from 2.35ms/23.3k allocs to ~1.6ms/21 allocs) on the
// reference machine.
//
//	go test -bench RouteNet -benchmem ./internal/route
func BenchmarkRouteNet(b *testing.B) {
	die := geom.Rect{Lo: geom.Point{}, Hi: geom.Point{X: 100 * DefaultGCellNM, Y: 100 * DefaultGCellNM}}
	grid := NewGrid(die, DefaultGCellNM, 10)
	pins := benchPins(400, die)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRouter(grid, Options{})
		for id, p := range pins {
			if err := r.RouteNet(id, p, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRerouteNet measures steady-state rip-up-and-reroute of one net
// on a warm router — the ECO path the BEOL restoration loop exercises,
// and the purest view of the reused A* scratch buffers.
func BenchmarkRerouteNet(b *testing.B) {
	die := geom.Rect{Lo: geom.Point{}, Hi: geom.Point{X: 100 * DefaultGCellNM, Y: 100 * DefaultGCellNM}}
	grid := NewGrid(die, DefaultGCellNM, 10)
	pins := benchPins(400, die)
	r := NewRouter(grid, Options{})
	for id, p := range pins {
		if err := r.RouteNet(id, p, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % len(pins)
		if err := r.RouteNet(id, pins[id], 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteWaves measures batched routing of a superblue-scale
// workload — 1500 nets on a 400x400x10 grid — at increasing wave
// parallelism. p1 is the serial schedule; p4/p8 route spatially disjoint
// waves concurrently with byte-identical results (asserted by
// TestRouteJobsSerialParallelIdentical). CI publishes this trajectory as
// BENCH_route.json; the p4-vs-p1 delta is the wall-clock win the
// wave-partitioned router buys on one design.
//
//	go test -bench RouteWaves -benchmem ./internal/route
func BenchmarkRouteWaves(b *testing.B) {
	die := geom.Rect{Lo: geom.Point{}, Hi: geom.Point{X: 400 * DefaultGCellNM, Y: 400 * DefaultGCellNM}}
	grid := NewGrid(die, DefaultGCellNM, 10)
	jobs := scatteredJobs(1500, grid, 4242)
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := NewRouter(grid, Options{Parallelism: p, Strategy: StrategyFlat})
				if err := r.RouteJobs(jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
