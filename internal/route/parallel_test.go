package route

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"splitmfg/internal/geom"
)

// bigGrid is a superblue-scale fabric: 400x400 gcells, large enough for
// the wave partition to find real spatial parallelism.
func bigGrid() Grid {
	die := geom.Rect{Lo: geom.Point{}, Hi: geom.Point{X: 400 * DefaultGCellNM, Y: 400 * DefaultGCellNM}}
	return NewGrid(die, DefaultGCellNM, 10)
}

// scatteredJobs builds n mostly-local nets spread over the die — the
// workload shape a placed netlist produces — plus some long connections
// and multi-pin trees.
func scatteredJobs(n int, g Grid, seed int64) []Job {
	rng := rand.New(rand.NewSource(seed))
	dieW := g.Die.W()
	jobs := make([]Job, n)
	for i := range jobs {
		a := geom.Point{X: rng.Intn(dieW), Y: rng.Intn(dieW)}
		np := 2
		if i%7 == 0 {
			np = 3 + rng.Intn(3)
		}
		pins := make([]Pin, np)
		pins[0] = Pin{Pt: a, Layer: 1}
		for k := 1; k < np; k++ {
			span := 6 * g.GCell
			if i%11 == 0 {
				span = 60 * g.GCell // occasional global net
			}
			pins[k] = Pin{Pt: geom.Point{
				X: geom.Clamp(a.X+rng.Intn(2*span)-span, 0, dieW-1),
				Y: geom.Clamp(a.Y+rng.Intn(2*span)-span, 0, dieW-1),
			}, Layer: 1}
		}
		lift := 1
		if i%13 == 0 {
			lift = 6
		}
		jobs[i] = Job{ID: i, Pins: pins, MinLayer: lift}
	}
	return jobs
}

// stateEqual compares two routers' complete observable state: every net's
// edge list and flags, plus the raw usage arrays.
func stateEqual(t *testing.T, serial, parallel *Router) {
	t.Helper()
	if len(serial.nets) != len(parallel.nets) {
		t.Fatalf("net count differs: serial %d, parallel %d", len(serial.nets), len(parallel.nets))
	}
	for id, sn := range serial.nets {
		pn := parallel.nets[id]
		if pn == nil {
			t.Fatalf("net %d missing from parallel router", id)
		}
		if sn.Failed != pn.Failed || sn.MinLayer != pn.MinLayer {
			t.Fatalf("net %d flags differ: serial %+v, parallel %+v", id, sn, pn)
		}
		if len(sn.Edges) != len(pn.Edges) {
			t.Fatalf("net %d edge count differs: serial %d, parallel %d", id, len(sn.Edges), len(pn.Edges))
		}
		for i := range sn.Edges {
			if sn.Edges[i] != pn.Edges[i] {
				t.Fatalf("net %d edge %d differs: serial %v, parallel %v", id, i, sn.Edges[i], pn.Edges[i])
			}
		}
	}
	for i := range serial.usageH {
		if serial.usageH[i] != parallel.usageH[i] || serial.usageV[i] != parallel.usageV[i] {
			t.Fatalf("usage differs at index %d: H %d/%d V %d/%d",
				i, serial.usageH[i], parallel.usageH[i], serial.usageV[i], parallel.usageV[i])
		}
	}
}

// TestRouteJobsSerialParallelIdentical: the tentpole determinism contract.
// A parallel batch must produce byte-identical router state — every edge
// of every net, every usage counter — to the serial schedule, and must
// actually route multiple nets per wave (otherwise the test is vacuous).
func TestRouteJobsSerialParallelIdentical(t *testing.T) {
	g := bigGrid()
	jobs := scatteredJobs(400, g, 7)

	serial := NewRouter(g, Options{Parallelism: 1, Strategy: StrategyFlat})
	if err := serial.RouteJobs(jobs); err != nil {
		t.Fatal(err)
	}

	maxWave := 0
	par := NewRouter(g, Options{Parallelism: 8, Strategy: StrategyFlat, OnWave: func(wave, waves, nets int, _ time.Duration) {
		if nets > maxWave {
			maxWave = nets
		}
	}})
	if err := par.RouteJobs(jobs); err != nil {
		t.Fatal(err)
	}
	if maxWave < 2 {
		t.Fatalf("no wave routed more than one net (max %d): partition degenerated to serial", maxWave)
	}
	stateEqual(t, serial, par)
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRouteJobsRerouteInBatch: a batch may re-route nets that already have
// routes (the ECO path); the old edges must be replaced exactly as a
// sequential RouteNet schedule would, at every parallelism level.
func TestRouteJobsRerouteInBatch(t *testing.T) {
	g := bigGrid()
	pre := scatteredJobs(60, g, 21)
	jobs := scatteredJobs(60, g, 22) // same IDs 0..59, different pins

	build := func(parallelism int) *Router {
		r := NewRouter(g, Options{Parallelism: parallelism, Strategy: StrategyFlat})
		for _, j := range pre {
			if err := r.RouteNet(j.ID, j.Pins, j.MinLayer); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.RouteJobs(jobs); err != nil {
			t.Fatal(err)
		}
		return r
	}
	stateEqual(t, build(1), build(8))
}

// TestRouteJobsUnroutableFallsBackSerial: a net that cannot route at all
// (vertical-only lift layer, horizontally separated pins) forces the
// escape fallback; the batch must end in exactly the serial schedule's
// state and report the serial schedule's error.
func TestRouteJobsUnroutableFallsBackSerial(t *testing.T) {
	g := bigGrid()
	jobs := scatteredJobs(50, g, 9)
	// M10 routes vertically only, so a lift-to-M10 net with pins in
	// different columns has no legal path.
	bad := Job{ID: 999, Pins: []Pin{
		{Pt: geom.Point{X: 100 * g.GCell, Y: 200 * g.GCell}, Layer: 1},
		{Pt: geom.Point{X: 130 * g.GCell, Y: 200 * g.GCell}, Layer: 1},
	}, MinLayer: 10}
	jobs = append(jobs[:25:25], append([]Job{bad}, jobs[25:]...)...)

	serial := NewRouter(g, Options{Parallelism: 1, Strategy: StrategyFlat})
	serialErr := serial.RouteJobs(jobs)
	if serialErr == nil {
		t.Fatal("serial batch with an unroutable net did not fail")
	}

	par := NewRouter(g, Options{Parallelism: 8, Strategy: StrategyFlat})
	parErr := par.RouteJobs(jobs)
	if parErr == nil {
		t.Fatal("parallel batch with an unroutable net did not fail")
	}
	if serialErr.Error() != parErr.Error() {
		t.Fatalf("error differs:\nserial:   %v\nparallel: %v", serialErr, parErr)
	}
	var je *JobError
	if !errors.As(parErr, &je) || je.ID != 999 {
		t.Fatalf("parallel error does not identify the unroutable job: %v", parErr)
	}
	stateEqual(t, serial, par)
	// The failed net leaks no usage and keeps no partial edges.
	if rn := par.Net(999); rn == nil || !rn.Failed || len(rn.Edges) != 0 {
		t.Fatalf("failed net state: %+v", par.Net(999))
	}
}

// TestRouteFailureRipsUpPartial: when a later sink of a multi-pin net
// cannot route, the edges already committed for earlier sinks must be
// discarded — the failed net may not occupy capacity (the old behavior
// left partial trees counted in usage and leaking into ComputeStats).
func TestRouteFailureRipsUpPartial(t *testing.T) {
	r := NewRouter(testGrid(), Options{})
	x := 5 * r.Grid.GCell
	pins := []Pin{
		{Pt: geom.Point{X: x, Y: 2 * r.Grid.GCell}, Layer: 1},
		{Pt: geom.Point{X: x, Y: 8 * r.Grid.GCell}, Layer: 1},                   // routable: same column, M10 is vertical
		{Pt: geom.Point{X: x + 10*r.Grid.GCell, Y: 2 * r.Grid.GCell}, Layer: 1}, // unroutable on M10
	}
	if err := r.RouteNet(1, pins, 10); err == nil {
		t.Fatal("expected routing failure for horizontally separated M10 pins")
	}
	if r.MaxUsage() != 0 {
		t.Fatalf("failed net left %d usage behind", r.MaxUsage())
	}
	rn := r.Net(1)
	if rn == nil || !rn.Failed || len(rn.Edges) != 0 {
		t.Fatalf("failed net state: %+v", rn)
	}
	s := r.ComputeStats()
	if s.TotalWirelength != 0 || s.TotalVias != 0 {
		t.Fatalf("failed net leaked into stats: %+v", s)
	}
}

// TestRerouteFailureKeepsOldRoute: re-routing an existing net under an
// unsatisfiable constraint must leave the old route completely intact —
// edges, usage, and flags (the old behavior ripped the old route up and
// left a Failed partial replacement).
func TestRerouteFailureKeepsOldRoute(t *testing.T) {
	r := NewRouter(testGrid(), Options{})
	pins := []Pin{
		{Pt: geom.Point{X: 1400, Y: 1400}, Layer: 1},
		{Pt: geom.Point{X: 42000, Y: 28000}, Layer: 1},
	}
	if err := r.RouteNet(3, pins, 1); err != nil {
		t.Fatal(err)
	}
	edges := append([]Edge(nil), r.Net(3).Edges...)
	snapH := append([]int16(nil), r.usageH...)
	snapV := append([]int16(nil), r.usageV...)

	// M10 is vertical-only: these pins differ in X, so the re-route fails.
	if err := r.RouteNet(3, pins, 10); err == nil {
		t.Fatal("expected re-route failure")
	}
	rn := r.Net(3)
	if rn == nil || rn.Failed {
		t.Fatalf("old route lost or marked failed: %+v", rn)
	}
	if rn.MinLayer != 1 || len(rn.Edges) != len(edges) {
		t.Fatalf("old route mutated: MinLayer %d, %d edges (want 1, %d)", rn.MinLayer, len(rn.Edges), len(edges))
	}
	for i := range edges {
		if rn.Edges[i] != edges[i] {
			t.Fatalf("old route edge %d changed: %v != %v", i, rn.Edges[i], edges[i])
		}
	}
	for i := range snapH {
		if r.usageH[i] != snapH[i] || r.usageV[i] != snapV[i] {
			t.Fatal("usage changed after failed re-route")
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestNegotiateRerouteRestoresHistoryCost: the negotiation loop escalates
// the congestion weight internally but must restore the configured value
// on return — the old behavior left up to 1.8^iters of compounded weight
// behind, silently distorting every later route on the same router.
func TestNegotiateRerouteRestoresHistoryCost(t *testing.T) {
	r := NewRouter(testGrid(), Options{Capacity: 1})
	for i := 0; i < 12; i++ {
		pins := []Pin{
			{Pt: geom.Point{X: 1400, Y: 28000}, Layer: 1},
			{Pt: geom.Point{X: 54000, Y: 28000}, Layer: 1},
		}
		if err := r.RouteNet(i, pins, 1); err != nil {
			t.Fatal(err)
		}
	}
	if r.ComputeStats().OverflowEdges == 0 {
		t.Fatal("setup produced no overflow; negotiation has nothing to escalate")
	}
	before := r.Opt.HistoryCost
	r.NegotiateReroute(3)
	if r.Opt.HistoryCost != before {
		t.Fatalf("HistoryCost leaked: %v before, %v after negotiation", before, r.Opt.HistoryCost)
	}
}

// TestNegotiateConservesRoutes: negotiation may move routes around but
// must never lose one — every net keeps a valid tree and the usage arrays
// must equal a recount over the surviving edges (the old failure path
// double-freed the replaced route and stranded a partial one).
func TestNegotiateConservesRoutes(t *testing.T) {
	r := NewRouter(testGrid(), Options{Capacity: 1})
	for i := 0; i < 16; i++ {
		pins := []Pin{
			{Pt: geom.Point{X: 1400, Y: 28000 + (i%2)*100}, Layer: 1},
			{Pt: geom.Point{X: 54000, Y: 28000 + (i%2)*100}, Layer: 1},
		}
		if err := r.RouteNet(i, pins, 1); err != nil {
			t.Fatal(err)
		}
	}
	r.NegotiateReroute(4)
	if r.NumNets() != 16 {
		t.Fatalf("negotiation lost nets: %d of 16 remain", r.NumNets())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Recount usage from the surviving nets; it must match the arrays.
	recount := NewRouter(r.Grid, r.Opt)
	for _, rn := range r.nets {
		for _, e := range rn.Edges {
			recount.addUsage(e, 1, rn.ID)
		}
	}
	for i := range r.usageH {
		if r.usageH[i] != recount.usageH[i] || r.usageV[i] != recount.usageV[i] {
			t.Fatalf("usage inconsistent with routed edges at index %d", i)
		}
	}
}

// TestPropertyRipUpAllReturnsToZero: routing any set of nets and ripping
// every one of them up must return both usage arrays to all-zero — the
// rip-up invariant that guards against partial-tree and double-count
// leaks.
func TestPropertyRipUpAllReturnsToZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRouter(testGrid(), Options{})
		for id := 0; id < 10; id++ {
			np := 2 + rng.Intn(4)
			pins := make([]Pin, np)
			for i := range pins {
				pins[i] = Pin{Pt: geom.Point{X: rng.Intn(56000), Y: rng.Intn(56000)}, Layer: 1}
			}
			min := 1
			if rng.Intn(3) == 0 {
				min = 6
			}
			if err := r.RouteNet(id, pins, min); err != nil {
				return false
			}
		}
		for id := 0; id < 10; id++ {
			r.RipUp(id)
		}
		for i := range r.usageH {
			if r.usageH[i] != 0 || r.usageV[i] != 0 {
				return false
			}
		}
		return r.NumNets() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestViaCostTruncation: viaCost() computes 10*ViaCost/4 in integer
// arithmetic, so ViaCost values not divisible by 4 truncate. Pin the
// exact values — routing costs (and therefore golden layouts) depend on
// them.
func TestViaCostTruncation(t *testing.T) {
	for _, tc := range []struct {
		viaCost int
		want    int64
	}{
		{4, 10}, {5, 12}, {6, 15}, {7, 17}, {8, 20}, {12, 30},
	} {
		r := NewRouter(testGrid(), Options{ViaCost: tc.viaCost})
		if got := r.viaCost(); got != tc.want {
			t.Errorf("viaCost(ViaCost=%d) = %d, want %d", tc.viaCost, got, tc.want)
		}
	}
}

// TestRouteJobsSinglePinRipUpSerializes: regression for a determinism
// hole found in review. A single-pin batch job that replaces an existing
// multi-edge route performs no searches but its commit *decrements* usage
// across the old route's region; the partition must treat it as a
// conflict source, or a same-wave neighbor reading that corridor routes
// against stale congestion and diverges from the serial schedule.
func TestRouteJobsSinglePinRipUpSerializes(t *testing.T) {
	die := geom.Rect{Lo: geom.Point{}, Hi: geom.Point{X: 200 * DefaultGCellNM, Y: 200 * DefaultGCellNM}}
	g := NewGrid(die, DefaultGCellNM, 10)
	y := 100 * g.GCell
	corridor := func(id int) []Pin {
		return []Pin{
			{Pt: geom.Point{X: 10 * g.GCell, Y: y}, Layer: 1},
			{Pt: geom.Point{X: 190 * g.GCell, Y: y}, Layer: 1},
		}
	}
	build := func(parallelism int) *Router {
		r := NewRouter(g, Options{Capacity: 1, Parallelism: parallelism, Strategy: StrategyFlat})
		for id := 0; id < 3; id++ {
			if err := r.RouteNet(id, corridor(id), 1); err != nil {
				t.Fatal(err)
			}
		}
		jobs := []Job{
			// ECO: net 0 collapses to a single pin, ripping up its corridor
			// route (usage -1 along the whole row).
			{ID: 0, Pins: corridor(0)[:1], MinLayer: 1},
			// A new net through the same corridor: whether it sees the
			// rip-up decides its congestion detour.
			{ID: 10, Pins: corridor(10), MinLayer: 1},
		}
		if err := r.RouteJobs(jobs); err != nil {
			t.Fatal(err)
		}
		return r
	}
	stateEqual(t, build(1), build(8))
}

// TestRouteJobsDuplicateIDsSerialize: a batch repeating an ID must fall
// back to the serial schedule (the partition's regions are computed from
// pre-batch state and cannot see the mid-batch replacement).
func TestRouteJobsDuplicateIDsSerialize(t *testing.T) {
	g := bigGrid()
	jobs := scatteredJobs(40, g, 31)
	dup := jobs[5]
	dup.Pins = scatteredJobs(1, g, 32)[0].Pins
	jobs = append(jobs, dup) // same ID as jobs[5], different pins

	serial := NewRouter(g, Options{Parallelism: 1, Strategy: StrategyFlat})
	if err := serial.RouteJobs(jobs); err != nil {
		t.Fatal(err)
	}
	par := NewRouter(g, Options{Parallelism: 8, Strategy: StrategyFlat})
	if err := par.RouteJobs(jobs); err != nil {
		t.Fatal(err)
	}
	stateEqual(t, serial, par)
}
