// Package route is the global-routing substrate standing in for Cadence
// Innovus' router. It routes nets over a 3-D grid of gcells with ten metal
// layers (M1..M10), alternating preferred directions, via costs, soft
// congestion-aware capacities, and — crucial for the paper's flow —
// per-net minimum-layer constraints that implement wire lifting: a lifted
// net may only climb vertically below its minimum layer, forcing its trunk
// wiring into the BEOL.
//
// The router reports exactly the quantities the paper's evaluation needs:
// per-layer wirelength (Fig. 5), per-boundary via counts V12..V910
// (Tables 2 and 6), and the routed topology from which the layout package
// derives FEOL fragments, vpins, and dangling-wire directions.
//
// Routing is incremental (RouteNet/RipUp, the ECO mode the BEOL
// restoration uses) or batched (RouteJobs): a batch is partitioned into
// deterministic waves of spatially disjoint nets that route concurrently
// on worker-local scratch and commit in serial order, producing
// byte-identical results at every parallelism level — see batch.go.
package route

import (
	"fmt"
	"math"
	"sort"
	"time"

	"splitmfg/internal/geom"
	"splitmfg/internal/heapx"
)

// DefaultGCellNM is the default gcell pitch (two row heights).
const DefaultGCellNM = 2800

// Node is a grid vertex: gcell coordinates plus layer (1-based).
type Node struct {
	X, Y, Z int
}

// Edge is one routed grid edge between two adjacent nodes (a wire segment
// when A.Z == B.Z, a via otherwise).
type Edge struct {
	A, B Node
}

// IsVia reports whether the edge crosses layers.
func (e Edge) IsVia() bool { return e.A.Z != e.B.Z }

// Pin is a routing terminal: a die location plus the metal layer the pin
// shape lives on (1 for standard cells, 6/8 for correction cells).
type Pin struct {
	Pt    geom.Point
	Layer int
}

// Grid describes the routing fabric.
type Grid struct {
	W, H   int // gcells in x and y
	Layers int // topmost metal layer (M1..Layers)
	GCell  int // gcell pitch in nm
	Die    geom.Rect
}

// NewGrid builds a grid covering the die with the given pitch and layers.
func NewGrid(die geom.Rect, gcell, layers int) Grid {
	if gcell <= 0 {
		gcell = DefaultGCellNM
	}
	w := (die.W() + gcell - 1) / gcell
	h := (die.H() + gcell - 1) / gcell
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return Grid{W: w, H: h, Layers: layers, GCell: gcell, Die: die}
}

// NodeOf maps a die point and layer to its grid node.
func (g Grid) NodeOf(p geom.Point, layer int) Node {
	return Node{
		X: geom.Clamp((p.X-g.Die.Lo.X)/g.GCell, 0, g.W-1),
		Y: geom.Clamp((p.Y-g.Die.Lo.Y)/g.GCell, 0, g.H-1),
		Z: geom.Clamp(layer, 1, g.Layers),
	}
}

// CenterOf maps a grid node back to the die coordinates of its center.
func (g Grid) CenterOf(n Node) geom.Point {
	return geom.Point{
		X: g.Die.Lo.X + n.X*g.GCell + g.GCell/2,
		Y: g.Die.Lo.Y + n.Y*g.GCell + g.GCell/2,
	}
}

// Horizontal reports whether layer z routes horizontally (odd layers) or
// vertically (even layers).
func Horizontal(z int) bool { return z%2 == 1 }

// Options tunes the router.
type Options struct {
	ViaCost     int     // cost of one via step relative to gcell length; 0 = default
	Capacity    int     // tracks per gcell edge per layer; 0 = derived from the gcell pitch (see NewRouter)
	HistoryCost float64 // congestion penalty weight; 0 = default (2.0)
	MaxDetour   int     // extra gcells allowed around the bbox; 0 = default (12)

	// Strategy selects flat or hierarchical batched routing (see
	// strategy.go); the zero value is StrategyAuto, which resolves by die
	// area. Incremental RouteNet calls (the ECO path) always route flat —
	// they re-route single nets whose neighborhoods already exist.
	Strategy Strategy

	// Parallelism is the worker count for batched routing (RouteJobs):
	// 0 uses GOMAXPROCS, 1 forces serial execution. Results are
	// byte-identical at every level. Incremental RouteNet calls are always
	// serial regardless of this setting.
	Parallelism int

	// OnWave, when non-nil, is called after each committed multi-net wave
	// of a parallel batch with the 1-based wave number, the total wave
	// count, the number of nets the wave routed, and its wall-clock
	// duration. Waves that route a single net are silent (they are the
	// serial portions of the schedule), as are fully serial batches
	// (Parallelism 1, degenerate partitions, or the escape fallback).
	OnWave func(wave, waves, nets int, elapsed time.Duration)
}

func (o Options) withDefaults() Options {
	if o.ViaCost == 0 {
		o.ViaCost = 12
	}
	if o.HistoryCost == 0 {
		o.HistoryCost = 2.0
	}
	if o.MaxDetour == 0 {
		o.MaxDetour = 12
	}
	if o.Strategy == "" {
		o.Strategy = StrategyAuto
	}
	return o
}

// RoutedNet is the routed tree of one net.
type RoutedNet struct {
	ID       int
	Pins     []Pin
	Edges    []Edge
	MinLayer int // the lift constraint the net was routed with (1 = none)
	Failed   bool
}

// Wirelength returns the net's total routed wire length in nm (vias
// excluded) and its via count.
func (rn *RoutedNet) Wirelength(g Grid) (wlNM int64, vias int) {
	for _, e := range rn.Edges {
		if e.IsVia() {
			vias++
		} else {
			wlNM += int64(g.GCell)
		}
	}
	return wlNM, vias
}

// Router routes nets incrementally and supports rip-up/re-route (the ECO
// mode the paper's flow uses when restoring true connectivity in the BEOL).
type Router struct {
	Grid Grid
	Opt  Options

	// Usage grids are int16: full-scale superblue grids run to tens of
	// millions of nodes, and usage (nets crossing one gcell edge) stays
	// within a few multiples of Capacity (~15), so halving the element size
	// halves the router's largest resident arrays. addUsage panics before
	// an increment could wrap — silent saturation would corrupt the rip-up
	// accounting that negotiation depends on.
	usageH []int16 // horizontal segment usage, indexed by node index
	usageV []int16 // vertical segment usage
	nets   map[int]*RoutedNet

	// serial is the scratch worker incremental RouteNet calls route on;
	// batched routing spins up additional workers (see batch.go).
	serial *worker

	// planner is the hierarchical strategy's coarse pass, created lazily
	// by the first hier RouteJobs call (see coarse.go); hierStats
	// accumulates what it did. corridorHook, when non-nil, observes (and
	// may perturb) each batch's planned corridors before routing — a
	// deterministic fault-injection point for tests: with soft capacities
	// the tile grid has no organic way to produce an unroutable corridor,
	// but the fallback must still be exercised.
	planner      *coarsePlanner
	hierStats    HierStats
	corridorHook func([]corridor)

	// netCorrs remembers each net's last planned corridor (tiles copied
	// out of the planner's per-batch arena, which the next plan reuses),
	// so congestion negotiation stays corridor-confined under the
	// hierarchical strategy instead of re-opening die-sized flat searches.
	// A successful flat re-route (RouteNet — the ECO path) or a rip-up
	// invalidates the entry.
	netCorrs map[int]storedCorridor
}

// storedCorridor is the persistent per-net copy of a planned corridor.
type storedCorridor struct {
	tiles []int32
	reg   region
}

// NewRouter creates a router over the grid. When Options.Capacity is zero
// it defaults to the physical track count of the gcell pitch (one routing
// track per ~190nm at 45nm-class metal pitches), so fine grids are
// realistically tight and congestion pushes wiring upward exactly as in
// commercial flows.
func NewRouter(grid Grid, opt Options) *Router {
	if opt.Capacity == 0 {
		opt.Capacity = (grid.GCell + 95) / 190 // round(gcell / 190nm pitch)
		if opt.Capacity < 2 {
			opt.Capacity = 2
		}
	}
	n := grid.W * grid.H * (grid.Layers + 1)
	r := &Router{
		Grid:   grid,
		Opt:    opt.withDefaults(),
		usageH: make([]int16, n),
		usageV: make([]int16, n),
		nets:   make(map[int]*RoutedNet),
	}
	r.serial = newWorker(r)
	return r
}

func (r *Router) idx(n Node) int32 {
	return int32((n.Z*r.Grid.H+n.Y)*r.Grid.W + n.X)
}

func (r *Router) node(i int32) Node {
	w, h := r.Grid.W, r.Grid.H
	x := int(i) % w
	y := int(i) / w % h
	z := int(i) / (w * h)
	return Node{X: x, Y: y, Z: z}
}

// Nets returns a snapshot of the currently routed nets keyed by ID. The
// map is a copy, so callers can iterate, add, or delete entries without
// corrupting router state; the *RoutedNet values are shared read-only
// views — mutate a net only through RouteNet/RipUp.
func (r *Router) Nets() map[int]*RoutedNet {
	m := make(map[int]*RoutedNet, len(r.nets))
	for id, rn := range r.nets {
		m[id] = rn
	}
	return m
}

// NumNets returns the number of currently routed nets (cheaper than
// snapshotting via Nets when only the count is needed).
func (r *Router) NumNets() int { return len(r.nets) }

// SortedNetIDs returns the routed net IDs in ascending order — the
// deterministic iteration order consumers need, without the map snapshot
// Nets makes.
func (r *Router) SortedNetIDs() []int {
	ids := make([]int, 0, len(r.nets))
	for id := range r.nets {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Net returns one routed net, or nil. The returned net is a shared
// read-only view: mutate it only through RouteNet/RipUp.
func (r *Router) Net(id int) *RoutedNet { return r.nets[id] }

// RouteNet routes (or re-routes) net id connecting all pins, honoring the
// minimum-layer lift constraint (minLayer <= 1 means unconstrained). Wire
// segments are only allowed on layers >= max(2, minLayer); below that,
// only vertical via climbs are permitted, so every pin connects upward to
// the trunk. Routing is A*-based per sink with the growing tree as the
// source frontier.
//
// The route is computed first and committed only on success: a failed
// re-route leaves the net's existing route fully intact, and a failed
// fresh route records a Failed marker with no edges — partial trees never
// occupy capacity or leak into ComputeStats/Validate.
//
//smlint:hot
func (r *Router) RouteNet(id int, pins []Pin, minLayer int) error {
	if len(pins) == 0 {
		return fmt.Errorf("route: net %d has no pins", id)
	}
	if minLayer > r.Grid.Layers {
		return fmt.Errorf("route: net %d lift layer M%d above top layer M%d", id, minLayer, r.Grid.Layers)
	}
	old := r.nets[id]
	rn, err := r.serial.routeNet(id, pins, minLayer, old, nil)
	if err != nil {
		if old == nil {
			r.nets[id] = rn // failed marker: no edges, no usage
		}
		return err
	}
	r.commit(rn, old)
	// A flat route supersedes any remembered corridor: the pins may have
	// changed (ECO), and negotiation must not squeeze the new topology
	// back into the old net's corridor.
	delete(r.netCorrs, id)
	return nil
}

// commit installs a freshly routed net: the old route (if any) is ripped
// up and the new edges take its place in the usage maps.
func (r *Router) commit(rn *RoutedNet, old *RoutedNet) {
	if old != nil {
		r.ripUp(old)
	}
	r.nets[rn.ID] = rn
	for _, e := range rn.Edges {
		r.addUsage(e, 1, rn.ID)
	}
}

// RipUp removes a routed net, releasing its routing resources.
func (r *Router) RipUp(id int) {
	if rn := r.nets[id]; rn != nil {
		r.ripUp(rn)
		delete(r.nets, id)
		delete(r.netCorrs, id)
	}
}

func (r *Router) ripUp(rn *RoutedNet) {
	for _, e := range rn.Edges {
		r.addUsage(e, -1, rn.ID)
	}
	rn.Edges = nil
}

// addUsage adjusts the usage grid for one edge, panicking with the full
// edge identity before an increment could wrap the int16 cell: usage
// beyond int16 range means thousands of nets stacked on one gcell edge —
// a corrupted accounting state, not a legitimate design — and wrapping
// silently would break rip-up bookkeeping and congestion negotiation in
// undebuggable ways. The panic names the layer, gcell, direction, and
// the net being committed or ripped up, so a full-scale failure is
// diagnosable without a debugger.
func (r *Router) addUsage(e Edge, d int16, netID int) {
	if e.IsVia() {
		return
	}
	lo := e.A
	if e.B.X < lo.X || e.B.Y < lo.Y {
		lo = e.B
	}
	i := r.idx(lo)
	u := r.usageV
	dir := "vertical"
	if e.A.Y == e.B.Y && e.A.X != e.B.X {
		u = r.usageH
		dir = "horizontal"
	}
	s := int32(u[i]) + int32(d)
	if s > math.MaxInt16 || s < math.MinInt16 {
		panic(fmt.Sprintf("route: net %d: %s edge usage %d at M%d gcell (%d,%d) overflows int16",
			netID, dir, s, lo.Z, lo.X, lo.Y))
	}
	u[i] = int16(s)
}

const viaBase = 10 // via cost = viaBase * Opt.ViaCost / 4

func (r *Router) viaCost() int64 { return int64(viaBase * r.Opt.ViaCost / 4) }

// pqItem is a priority-queue entry for A*: Pri is the f-score, Value the
// grid-node index. heapx gives a typed slice heap — no interface{} boxing
// or indirect dispatch on the router's hottest path.
type pqItem = heapx.Item[int32]

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Stats aggregates routing results across all nets.
type Stats struct {
	WirelengthByLayer []int64 // index 1..Layers, nm
	Vias              []int64 // index z: vias between Mz and Mz+1 (1..Layers-1)
	TotalWirelength   int64
	TotalVias         int64
	OverflowEdges     int // edges above capacity
}

// ComputeStats tallies per-layer wirelength, via counts per boundary, and
// capacity overflows.
func (r *Router) ComputeStats() Stats {
	g := r.Grid
	s := Stats{
		WirelengthByLayer: make([]int64, g.Layers+1),
		Vias:              make([]int64, g.Layers+1),
	}
	for _, rn := range r.nets {
		for _, e := range rn.Edges {
			if e.IsVia() {
				lo := e.A.Z
				if e.B.Z < lo {
					lo = e.B.Z
				}
				s.Vias[lo]++
				s.TotalVias++
			} else {
				s.WirelengthByLayer[e.A.Z] += int64(g.GCell)
				s.TotalWirelength += int64(g.GCell)
			}
		}
	}
	for i := range r.usageH {
		if int(r.usageH[i]) > r.Opt.Capacity {
			s.OverflowEdges++
		}
		if int(r.usageV[i]) > r.Opt.Capacity {
			s.OverflowEdges++
		}
	}
	return s
}

// MaxUsage returns the maximum edge usage, for congestion reporting.
func (r *Router) MaxUsage() int {
	m := int16(0)
	for _, u := range r.usageH {
		if u > m {
			m = u
		}
	}
	for _, u := range r.usageV {
		if u > m {
			m = u
		}
	}
	return int(m)
}

// Validate checks every routed net's tree: edges adjacent, connected, and
// spanning all pins; wire segments respect preferred directions and the
// net's lift constraint.
func (r *Router) Validate() error {
	for id, rn := range r.nets {
		if rn.Failed {
			return fmt.Errorf("route: net %d marked failed", id)
		}
		if len(rn.Pins) <= 1 {
			continue
		}
		adj := map[Node][]Node{}
		for _, e := range rn.Edges {
			if !adjacent(e.A, e.B) {
				return fmt.Errorf("route: net %d has non-adjacent edge %v", id, e)
			}
			if !e.IsVia() {
				if Horizontal(e.A.Z) && e.A.Y != e.B.Y {
					return fmt.Errorf("route: net %d routes vertically on horizontal layer M%d", id, e.A.Z)
				}
				if !Horizontal(e.A.Z) && e.A.X != e.B.X {
					return fmt.Errorf("route: net %d routes horizontally on vertical layer M%d", id, e.A.Z)
				}
				wireMin := 2
				if rn.MinLayer > wireMin {
					wireMin = rn.MinLayer
				}
				if e.A.Z < wireMin {
					return fmt.Errorf("route: net %d has wire on M%d below lift layer M%d", id, e.A.Z, wireMin)
				}
			}
			adj[e.A] = append(adj[e.A], e.B)
			adj[e.B] = append(adj[e.B], e.A)
		}
		// Connectivity: BFS from pin 0's node must reach all pin nodes.
		start := r.Grid.NodeOf(rn.Pins[0].Pt, rn.Pins[0].Layer)
		seen := map[Node]bool{start: true}
		queue := []Node{start}
		//smlint:bounded BFS with a seen set: each tree node enqueues at most once
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, m := range adj[n] {
				if !seen[m] {
					seen[m] = true
					queue = append(queue, m)
				}
			}
		}
		for i, p := range rn.Pins {
			if !seen[r.Grid.NodeOf(p.Pt, p.Layer)] {
				return fmt.Errorf("route: net %d pin %d not connected", id, i)
			}
		}
	}
	return nil
}

func adjacent(a, b Node) bool {
	dx := absInt(a.X - b.X)
	dy := absInt(a.Y - b.Y)
	dz := absInt(a.Z - b.Z)
	return dx+dy+dz == 1
}

// NegotiateReroute performs congestion negotiation: nets crossing
// over-capacity edges are ripped up and re-routed with an escalated
// history cost, for up to the given number of iterations or until no
// overflow remains. This is the rip-up-and-reroute loop every production
// global router runs to reach a DRC-clean (capacity-respecting) result.
//
// The escalation is local to the negotiation: Opt.HistoryCost is restored
// on return, so later RouteNet calls on the same router see the
// configured weight, not a compounded one. A net whose re-route fails
// keeps its previous (congested but valid) route.
//
// Under the hierarchical strategy, nets that still have a remembered
// corridor from the coarse pass re-route corridor-confined (falling back
// to the flat search if the corridor is exhausted, like batched
// refinement) — negotiation is where flat routing spends most of its
// time on large dies, and it would otherwise reopen exactly the
// die-sized searches the corridors were built to avoid. The loop is
// serial and the corridors are a pure function of the batch history, so
// the determinism contract is untouched.
func (r *Router) NegotiateReroute(iters int) {
	orig := r.Opt.HistoryCost
	defer func() { r.Opt.HistoryCost = orig }()
	hier := r.ResolvedStrategy() == StrategyHier && r.planner != nil
	for it := 0; it < iters; it++ {
		over := map[int]bool{}
		for id, rn := range r.nets {
			for _, e := range rn.Edges {
				if e.IsVia() {
					continue
				}
				lo := e.A
				if e.B.X < lo.X || e.B.Y < lo.Y {
					lo = e.B
				}
				var u int16
				if e.A.Y == e.B.Y && e.A.X != e.B.X {
					u = r.usageH[r.idx(lo)]
				} else {
					u = r.usageV[r.idx(lo)]
				}
				if int(u) > r.Opt.Capacity {
					over[id] = true
					break
				}
			}
		}
		if len(over) == 0 {
			return
		}
		ids := make([]int, 0, len(over))
		for id := range over {
			ids = append(ids, id)
		}
		sortInts(ids)
		r.Opt.HistoryCost *= 1.8
		for _, id := range ids {
			rn := r.nets[id]
			var err error
			if c, ok := r.netCorrs[id]; hier && ok {
				r.hierStats.NegoCorridor++
				err = r.routeNetCorridor(id, rn.Pins, rn.MinLayer, c.tiles, c.reg)
			} else {
				err = r.RouteNet(id, rn.Pins, rn.MinLayer)
			}
			if err != nil {
				// The re-route left the old route fully intact; keep it — a
				// congested route beats a destroyed one.
				continue
			}
		}
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
