package route

import (
	"errors"
	"fmt"
	"sort"

	"splitmfg/internal/geom"
	"splitmfg/internal/heapx"
)

// errEscaped marks a batched route whose search wanted to leave the
// spatial region its wave partition declared for it (a detour retry or an
// unusually drifting multi-sink tree). The result cannot be proven
// order-independent, so the batch discards all concurrent work and falls
// back to serial routing — which is where this error is resolved for real
// (either the retry succeeds or the net genuinely fails).
var errEscaped = errors.New("route: search escaped its wave region")

// errCorridor marks a hierarchical refinement whose corridor-confined
// search found no path. In the serial schedule the net retries with the
// flat search (full detour loop); in a parallel wave the flat retry would
// leave the declared region, so — exactly like errEscaped — the batch
// rolls back and re-runs serially, where the same corridor failure
// resolves into the same flat retry.
var errCorridor = errors.New("route: corridor exhausted")

// worker holds everything one routing computation needs besides the
// shared usage arrays: the A* scratch (reused across searches so
// steady-state routing does not allocate) and a usage-delta overlay that
// stands in for the usual rip-up-then-commit mutation of shared state.
//
// The overlay is the key to both deterministic parallelism and safe
// failure handling: a route is computed against usageH/usageV *plus* the
// worker's private delta (the net's own edges so far at +1, the old route
// being replaced at -1), so shared state is never touched until the route
// is known to be complete. Workers of one wave only read shared usage in
// pairwise-disjoint regions, which is what makes concurrent routing
// byte-identical to serial routing.
type worker struct {
	r *Router

	// A* scratch, reused across searches.
	dist    []int64
	visitID []int32
	from    []int32
	epoch   int32
	pqBuf   []pqItem
	seedBuf []int32

	// Steiner-tree scratch for the net currently being routed: treeEp
	// stamps membership (a node is in the tree iff treeEp[i] == treeEpoch)
	// and treeList holds each member once, so tree upkeep allocates
	// nothing per net.
	treeEp    []int32
	treeList  []int32
	treeEpoch int32
	orderBuf  []int
	pathBuf   []Edge

	// Usage overlay for the net currently being routed (int16 to match the
	// shared grids; a single net's edges can never approach the range).
	deltaH   []int16
	deltaV   []int16
	touchedH []int32
	touchedV []int32

	// Corridor mask for hierarchical refinement (strategy.go/coarse.go):
	// while corrOn, wire moves may only enter gcells whose tile is
	// stamped with the current corridor epoch, and search runs a single
	// attempt over corrReg instead of the detour loop. Vias never change
	// x/y, so they need no check. corrEp is sized to the planner's tile
	// grid on first use.
	corrOn    bool
	corrReg   region
	corrEp    []int32
	corrEpoch int32
	corrTW    int
}

func newWorker(r *Router) *worker {
	n := len(r.usageH)
	return &worker{
		r:       r,
		dist:    make([]int64, n),
		visitID: make([]int32, n),
		from:    make([]int32, n),
		deltaH:  make([]int16, n),
		deltaV:  make([]int16, n),
		treeEp:  make([]int32, n),
	}
}

// reset clears the usage overlay for the next net.
//
//smlint:hot
func (w *worker) reset() {
	for _, i := range w.touchedH {
		w.deltaH[i] = 0
	}
	for _, i := range w.touchedV {
		w.deltaV[i] = 0
	}
	w.touchedH = w.touchedH[:0]
	w.touchedV = w.touchedV[:0]
}

// addDelta records one edge in the overlay (the in-flight equivalent of
// Router.addUsage).
//
//smlint:hot
func (w *worker) addDelta(e Edge, d int16) {
	if e.IsVia() {
		return
	}
	lo := e.A
	if e.B.X < lo.X || e.B.Y < lo.Y {
		lo = e.B
	}
	i := w.r.idx(lo)
	if e.A.Y == e.B.Y && e.A.X != e.B.X {
		if w.deltaH[i] == 0 {
			w.touchedH = append(w.touchedH, i)
		}
		w.deltaH[i] += d
	} else {
		if w.deltaV[i] == 0 {
			w.touchedV = append(w.touchedV, i)
		}
		w.deltaV[i] += d
	}
}

// segCost returns the cost of moving across one wire segment with the
// current congestion (shared usage plus the worker's overlay).
//
//smlint:hot
func (w *worker) segCost(lo Node, horizontal bool) int64 {
	r := w.r
	i := r.idx(lo)
	var u int32
	if horizontal {
		u = int32(r.usageH[i]) + int32(w.deltaH[i])
	} else {
		u = int32(r.usageV[i]) + int32(w.deltaV[i])
	}
	// Commercial routers fill the cheap lower layers first and only climb
	// under congestion or length pressure; the per-layer bias reproduces
	// the paper's Fig. 5 "Original" wirelength profile (most wiring low).
	base := int64(10 + 10*(lo.Z-2))
	if lo.Z < 2 {
		base = 10
	}
	over := int(u) - r.Opt.Capacity
	if over < 0 {
		// Mild pressure as the edge fills up.
		return base + int64(u)/2
	}
	return base + int64(float64(base)*r.Opt.HistoryCost*float64(over+1))
}

// routeNet computes a route for the net without touching shared router
// state. old, when non-nil, is the net's existing route: its usage is
// masked out through the overlay, exactly as if it had been ripped up
// first. bound, when non-nil, restricts every search to the given gcell
// region (batched parallel mode): a search that would expand beyond it —
// including the 4x detour retry — aborts with errEscaped instead, so a
// result that might depend on concurrent neighbors is never produced.
//
// On success the returned net carries the new edges and the caller
// commits them; on failure it is marked Failed with no edges, and shared
// state is untouched either way.
//
//smlint:hot
func (w *worker) routeNet(id int, pins []Pin, minLayer int, old *RoutedNet, bound *region) (*RoutedNet, error) {
	defer w.reset()
	if old != nil {
		for _, e := range old.Edges {
			w.addDelta(e, -1)
		}
	}
	rn := &RoutedNet{ID: id, Pins: append([]Pin(nil), pins...), MinLayer: minLayer}
	if len(pins) == 1 {
		return rn, nil
	}
	wireMin := 2
	if minLayer > wireMin {
		wireMin = minLayer
	}

	// Tree nodes so far (as indices); start from pin 0's grid node.
	w.treeEpoch++
	start := w.r.Grid.NodeOf(pins[0].Pt, pins[0].Layer)
	w.treeList = w.treeList[:0]
	w.treeAdd(w.r.idx(start))

	// Route sinks nearest-first to keep trees short.
	order := w.orderBuf[:0]
	for i := 1; i < len(pins); i++ {
		order = append(order, i)
	}
	w.orderBuf = order
	for i := 0; i < len(order); i++ {
		best := i
		for j := i + 1; j < len(order); j++ {
			if pins[order[j]].Pt.Manhattan(pins[0].Pt) < pins[order[best]].Pt.Manhattan(pins[0].Pt) {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}

	for _, pi := range order {
		target := w.r.Grid.NodeOf(pins[pi].Pt, pins[pi].Layer)
		if w.inTree(w.r.idx(target)) {
			continue
		}
		path, err := w.search(target, wireMin, bound)
		if err != nil {
			rn.Failed = true
			rn.Edges = nil
			if errors.Is(err, errEscaped) || errors.Is(err, errCorridor) {
				return rn, err
			}
			return rn, fmt.Errorf("route: net %d sink %d: %v", id, pi, err)
		}
		for _, e := range path {
			rn.Edges = append(rn.Edges, e)
			w.addDelta(e, 1)
			w.treeAdd(w.r.idx(e.A))
			w.treeAdd(w.r.idx(e.B))
		}
	}
	return rn, nil
}

// treeAdd inserts a node into the current net's tree (idempotent).
//
//smlint:hot
func (w *worker) treeAdd(i int32) {
	if w.treeEp[i] != w.treeEpoch {
		w.treeEp[i] = w.treeEpoch
		w.treeList = append(w.treeList, i)
	}
}

// inTree reports membership in the current net's tree.
func (w *worker) inTree(i int32) bool { return w.treeEp[i] == w.treeEpoch }

// setCorridor arms the corridor mask for the next routeNet call: tiles
// (planner tile indices) are stamped into an epoch set and wire moves
// outside them are pruned. clearCorridor must be called once the net is
// done — the mask is worker state, not per-search state.
//
//smlint:hot
func (w *worker) setCorridor(tw, th int, tiles []int32, reg region) {
	if len(w.corrEp) < tw*th {
		w.corrEp = make([]int32, tw*th)
		w.corrEpoch = 0
	}
	w.corrTW = tw
	w.corrEpoch++
	for _, t := range tiles {
		w.corrEp[t] = w.corrEpoch
	}
	w.corrReg = reg
	w.corrOn = true
}

func (w *worker) clearCorridor() { w.corrOn = false }

// wireOK reports whether a wire move may enter gcell (x, y): always in
// flat mode, corridor members only in hierarchical mode.
//
//smlint:hot
func (w *worker) wireOK(x, y int) bool {
	return !w.corrOn || w.corrEp[(y/waveTileGCells)*w.corrTW+x/waveTileGCells] == w.corrEpoch
}

// search runs A* from the tree frontier to the target node. Wire moves are
// restricted to layers >= wireMin in the layer's preferred direction; via
// moves are always allowed. The search region is the bounding box of the
// tree and target expanded by MaxDetour gcells, retried once at 4x detour
// — except in bounded mode, where any region not contained in bound
// (including the retry) aborts with errEscaped.
//
// With a corridor armed (hierarchical refinement) there is no detour
// loop: one attempt runs over the corridor's rectangle with wire moves
// masked to corridor tiles, and failure reports errCorridor so the
// caller can fall back (serially) or escape (in a wave).
//
//smlint:hot
func (w *worker) search(target Node, wireMin int, bound *region) ([]Edge, error) {
	if w.corrOn {
		if bound != nil && !bound.contains(w.corrReg) {
			return nil, errEscaped
		}
		edges, ok := w.searchBounded(target, wireMin, w.corrReg)
		if ok {
			return edges, nil
		}
		return nil, errCorridor
	}
	for _, detour := range []int{w.r.Opt.MaxDetour, w.r.Opt.MaxDetour * 4} {
		reg := w.searchRegion(target, detour)
		if bound != nil && !bound.contains(reg) {
			return nil, errEscaped
		}
		edges, ok := w.searchBounded(target, wireMin, reg)
		if ok {
			return edges, nil
		}
		if bound != nil {
			// Never enter the 4x retry concurrently: its region almost
			// certainly leaves the declared wave partition, and whether the
			// first attempt fails is itself order-independent only within
			// the declared region.
			return nil, errEscaped
		}
	}
	return nil, fmt.Errorf("no path to %v (wireMin=M%d)", target, wireMin)
}

// region is an inclusive gcell rectangle.
type region struct {
	loX, loY, hiX, hiY int
}

func (a region) contains(b region) bool {
	return b.loX >= a.loX && b.loY >= a.loY && b.hiX <= a.hiX && b.hiY <= a.hiY
}

// searchRegion is the clamped bounding box of the tree and target expanded
// by detour gcells.
func (w *worker) searchRegion(target Node, detour int) region {
	g := w.r.Grid
	loX, loY := target.X, target.Y
	hiX, hiY := target.X, target.Y
	for _, t := range w.treeList {
		n := w.r.node(t)
		if n.X < loX {
			loX = n.X
		}
		if n.Y < loY {
			loY = n.Y
		}
		if n.X > hiX {
			hiX = n.X
		}
		if n.Y > hiY {
			hiY = n.Y
		}
	}
	return region{
		loX: geom.Clamp(loX-detour, 0, g.W-1),
		loY: geom.Clamp(loY-detour, 0, g.H-1),
		hiX: geom.Clamp(hiX+detour, 0, g.W-1),
		hiY: geom.Clamp(hiY+detour, 0, g.H-1),
	}
}

//smlint:hot
func (w *worker) searchBounded(target Node, wireMin int, reg region) ([]Edge, bool) {
	g := w.r.Grid
	loX, loY, hiX, hiY := reg.loX, reg.loY, reg.hiX, reg.hiY

	w.epoch++
	ep := w.epoch
	tIdx := w.r.idx(target)

	// h takes the already-decoded node: index decoding (node()) costs an
	// integer div/mod pair, and every caller here has the coordinates in
	// hand — recomputing them per push/pop dominated profiles.
	h := func(n Node) int64 {
		dx := int64(absInt(n.X - target.X))
		dy := int64(absInt(n.Y - target.Y))
		dz := int64(absInt(n.Z - target.Z))
		return (dx+dy)*10 + dz*w.r.viaCost()
	}
	// Seed the frontier in sorted node order: tree insertion order would
	// otherwise leak into equal-cost tie-breaks, and historically the tree
	// was a map whose keys were seeded sorted — keeping that order keeps
	// routing byte-identical.
	seeds := append(w.seedBuf[:0], w.treeList...)
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	w.seedBuf = seeds
	q := w.pqBuf[:0]
	defer func() { w.pqBuf = q }()
	for _, t := range seeds {
		w.dist[t] = 0
		w.visitID[t] = ep
		w.from[t] = -1
		q = heapx.Push(q, pqItem{Pri: h(w.r.node(t)), Value: t})
	}
	relax := func(cur int32, next Node, cost int64) {
		ni := w.r.idx(next)
		nd := w.dist[cur] + cost
		if w.visitID[ni] != ep || nd < w.dist[ni] {
			w.visitID[ni] = ep
			w.dist[ni] = nd
			w.from[ni] = cur
			q = heapx.Push(q, pqItem{Pri: nd + h(next), Value: ni})
		}
	}
	//smlint:bounded A* frontier is confined to the clamped search region (searchRegion), so pushes are finite; cancellation is enforced between nets by the flow layer
	for len(q) > 0 {
		var it pqItem
		q, it = heapx.Pop(q)
		cur := it.Value
		if w.visitID[cur] != ep {
			continue // stale entry
		}
		curN := w.r.node(cur)
		if it.Pri > w.dist[cur]+h(curN) {
			continue // stale entry
		}
		if cur == tIdx {
			// Reconstruct path back to the tree (into the worker's reusable
			// buffer — the caller consumes it before the next search).
			edges := w.pathBuf[:0]
			for i := cur; w.from[i] >= 0; i = w.from[i] {
				edges = append(edges, Edge{A: w.r.node(w.from[i]), B: w.r.node(i)})
			}
			w.pathBuf = edges
			return edges, true
		}
		n := curN
		// Via moves.
		if n.Z < g.Layers {
			relax(cur, Node{n.X, n.Y, n.Z + 1}, w.r.viaCost())
		}
		if n.Z > 1 {
			relax(cur, Node{n.X, n.Y, n.Z - 1}, w.r.viaCost())
		}
		// Wire moves (preferred direction, within bounds and the corridor
		// mask, above wireMin).
		if n.Z >= wireMin {
			if Horizontal(n.Z) {
				if n.X > loX && w.wireOK(n.X-1, n.Y) {
					relax(cur, Node{n.X - 1, n.Y, n.Z}, w.segCost(Node{n.X - 1, n.Y, n.Z}, true))
				}
				if n.X < hiX && w.wireOK(n.X+1, n.Y) {
					relax(cur, Node{n.X + 1, n.Y, n.Z}, w.segCost(n, true))
				}
			} else {
				if n.Y > loY && w.wireOK(n.X, n.Y-1) {
					relax(cur, Node{n.X, n.Y - 1, n.Z}, w.segCost(Node{n.X, n.Y - 1, n.Z}, false))
				}
				if n.Y < hiY && w.wireOK(n.X, n.Y+1) {
					relax(cur, Node{n.X, n.Y + 1, n.Z}, w.segCost(n, false))
				}
			}
		}
	}
	return nil, false
}
