package route

import "fmt"

// Strategy selects how batched routing (RouteJobs) explores the grid.
//
// The flat strategy routes every net with a single-level A* whose search
// region is the net's bounding box expanded by MaxDetour gcells — simple
// and exact, but the high-fanout tail's regions grow with the die, so
// per-net cost scales with die area. The hier strategy first runs a
// serial coarse pass on a tile grid (coarse.go) that assigns every
// multi-pin net a corridor of tiles, then confines the fine A* to that
// corridor — collapsing the tail's search regions from die-proportional
// to corridor-proportional. auto picks per design by physical die area.
//
// For a fixed strategy the determinism contract is unchanged: results are
// byte-identical at every parallelism level.
type Strategy string

// Routing strategies. The zero value resolves as StrategyAuto.
const (
	StrategyAuto Strategy = "auto"
	StrategyFlat Strategy = "flat"
	StrategyHier Strategy = "hier"
)

// ParseStrategy parses a strategy name; the empty string means auto.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case "":
		return StrategyAuto, nil
	case StrategyAuto, StrategyFlat, StrategyHier:
		return Strategy(s), nil
	}
	return "", fmt.Errorf("route: unknown strategy %q (want flat, hier, or auto)", s)
}

// hierAutoDieAreaNM2 is the die area (nm^2) above which StrategyAuto
// resolves to hier. The threshold sits between the largest ISCAS'85 die
// (c7552 at 70% utilization: ~4.95e9 nm^2) and the smallest superblue
// bench configuration CI exercises (superblue18 at SUPERBLUE_SCALE=200:
// ~5.79e9 nm^2), so every existing ISCAS golden keeps the flat router's
// byte-identical output while full-scale superblue runs get the
// hierarchical one by default.
const hierAutoDieAreaNM2 = 5_200_000_000

// ResolvedStrategy returns the concrete strategy (flat or hier) batched
// routing uses on this router's grid: an explicit flat/hier option wins,
// and auto resolves by die area against hierAutoDieAreaNM2.
func (r *Router) ResolvedStrategy() Strategy {
	switch r.Opt.Strategy {
	case StrategyFlat, StrategyHier:
		return r.Opt.Strategy
	}
	if int64(r.Grid.Die.W())*int64(r.Grid.Die.H()) >= hierAutoDieAreaNM2 {
		return StrategyHier
	}
	return StrategyFlat
}

// HierStats reports what the hierarchical strategy did on this router.
// Zero-valued (except Strategy) when the resolved strategy is flat.
type HierStats struct {
	Strategy      Strategy // resolved strategy (flat or hier)
	TileW, TileH  int      // coarse tile grid dimensions
	CorridorNets  int      // multi-pin nets planned into corridors
	FlatFallbacks int      // corridor refinements that fell back to flat search
	BatchEscapes  int      // parallel batches that rolled back to the serial schedule
	NegoCorridor  int      // negotiation re-routes that ran corridor-confined
}

// Hier returns the accumulated hierarchical-routing statistics.
func (r *Router) Hier() HierStats {
	s := r.hierStats
	s.Strategy = r.ResolvedStrategy()
	if r.planner != nil {
		s.TileW, s.TileH = r.planner.tw, r.planner.th
	}
	return s
}
