// Package server is the splitmfg evaluation service: a job manager that
// admits protect/attack/evaluate/matrix/suite jobs through a bounded queue,
// carves per-job parallelism budgets from one global budget, streams each
// job's progress events to any number of (possibly late) SSE subscribers,
// and shares results between identical requests through a process-wide
// content-addressed cache. It imports only the repo's public splitmfg API,
// like the CLIs.
package server

import (
	"sync"
	"time"

	"splitmfg"
)

// StageCached is the synthetic stage appended to a job's event log when its
// report was served from the shared result cache instead of being computed
// (the computing job's log carries the real per-stage events).
const StageCached = "cached"

// Event is the JSON wire form of one progress event, as replayed and
// streamed to SSE subscribers. Seq numbers events within one job from 0, so
// clients can detect replay gaps after a ring-buffer overflow or a slow
// subscriber's drops.
type Event struct {
	Seq       int     `json:"seq"`
	Stage     string  `json:"stage"`
	Attempt   int     `json:"attempt,omitempty"`
	Layer     int     `json:"layer,omitempty"`
	Bench     string  `json:"bench,omitempty"`
	Replicate int     `json:"replicate,omitempty"`
	Detail    string  `json:"detail,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// wireEvent converts a pipeline progress event to its wire form (Seq is
// assigned at append time).
func wireEvent(ev splitmfg.ProgressEvent) Event {
	return Event{
		Stage:     string(ev.Stage),
		Attempt:   ev.Attempt,
		Layer:     ev.Layer,
		Bench:     ev.Bench,
		Replicate: ev.Replicate,
		Detail:    ev.Detail,
		ElapsedMS: float64(ev.Elapsed) / float64(time.Millisecond),
	}
}

// eventLog is one job's progress history plus its live subscribers: a
// fixed-capacity ring retaining the most recent events (so late SSE
// subscribers replay from the start for any job shorter than the capacity,
// and from as far back as retained otherwise) and a fan-out channel per
// subscriber. A subscriber that cannot keep up has events dropped rather
// than stalling the pipeline; Seq gaps make the loss visible.
type eventLog struct {
	mu    sync.Mutex
	buf   []Event // ring storage; index total%cap once len(buf) == cap
	cap   int
	total int // events ever appended; the next event's Seq
	subs  map[int]chan Event
	next  int // next subscriber id
	done  bool
}

func newEventLog(capacity int) *eventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &eventLog{cap: capacity, subs: map[int]chan Event{}}
}

// append records one event and fans it out to every live subscriber
// without blocking.
func (l *eventLog) append(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	ev.Seq = l.total
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, ev)
	} else {
		l.buf[l.total%l.cap] = ev
	}
	l.total++
	for _, ch := range l.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop; Seq shows the gap
		}
	}
}

// count returns how many events were ever appended.
func (l *eventLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// snapshot returns the retained events in append order.
func (l *eventLog) snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked()
}

func (l *eventLog) snapshotLocked() []Event {
	if l.total <= l.cap {
		return append([]Event(nil), l.buf...)
	}
	head := l.total % l.cap
	out := make([]Event, 0, l.cap)
	out = append(out, l.buf[head:]...)
	return append(out, l.buf[:head]...)
}

// subscribe returns the retained history plus a channel carrying every
// later event; the channel is closed when the job reaches a terminal state.
// cancel detaches the subscriber (idempotent; safe after close). A
// subscription to an already-finished job gets the history and an
// immediately-closed channel.
func (l *eventLog) subscribe() (replay []Event, ch <-chan Event, cancel func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	replay = l.snapshotLocked()
	c := make(chan Event, l.cap)
	if l.done {
		close(c)
		return replay, c, func() {}
	}
	id := l.next
	l.next++
	l.subs[id] = c
	return replay, c, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if sub, ok := l.subs[id]; ok {
			delete(l.subs, id)
			close(sub)
		}
	}
}

// close marks the log final and releases every subscriber. Further appends
// are ignored.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	for id, ch := range l.subs {
		delete(l.subs, id)
		close(ch)
	}
}
