package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"splitmfg"
	"splitmfg/internal/store"
)

// resultKeySchema versions the server's disk-store key format
// (JobRequest.CacheKey). Bump it whenever cached reports become stale
// without the key bytes changing.
//
// Schema 2: CacheKey gained the route strategy, and the hierarchical
// router changed what large-die (auto-resolved) requests compute —
// reports cached by pre-strategy binaries cannot be trusted for any
// strategy, including the implicit auto.
const resultKeySchema = 2

// Submission errors the handlers map to HTTP status codes.
var (
	// ErrQueueFull means the bounded run queue has no room; clients should
	// retry later (503).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrShuttingDown means the manager no longer admits jobs (503).
	ErrShuttingDown = errors.New("server: shutting down")
)

// Config parameterizes a Manager. The zero value of every field resolves
// to a sensible default.
type Config struct {
	// Parallelism is the global worker budget split across concurrently
	// running jobs (default GOMAXPROCS). Each running job is granted
	// Parallelism/MaxRunning workers (at least 1), or the request's own
	// parallelism when that is smaller — generalizing how Matrix and Suite
	// split one budget across their inner jobs.
	Parallelism int
	// MaxRunning bounds how many jobs run concurrently (default 2).
	MaxRunning int
	// QueueDepth bounds how many admitted jobs may wait behind the running
	// ones before submissions are rejected with ErrQueueFull (default 64).
	QueueDepth int
	// EventBuffer is the per-job progress ring capacity: how many events a
	// late SSE subscriber can replay (default 4096).
	EventBuffer int
	// CacheDir, when non-empty, backs the result cache with the
	// disk-based content-addressed store rooted there: identical requests
	// are free across restarts (and across smbench runs sharing the
	// directory), and suite jobs checkpoint their per-cell results into
	// the same store. Empty keeps the cache memory-only.
	CacheDir string
	// CacheEntries caps how many completed reports the in-memory result
	// cache retains, LRU-evicted beyond that (default 256; in-flight
	// computations are never evicted).
	CacheEntries int
	// RetainCount caps how many finished jobs the registry keeps for
	// status polls and listings (default 512). Oldest finished jobs are
	// pruned first; queued and running jobs are never pruned.
	RetainCount int
	// RetainTTL caps how long a finished job stays in the registry
	// (default 1h).
	RetainTTL time.Duration
	// RouteStrategy, when non-empty, is the routing strategy ("auto",
	// "flat", "hier") applied to requests that leave route_strategy unset.
	// It is folded into the request at submission — before validation and
	// cache keying — because, unlike the parallelism share, the strategy
	// changes results and must be part of the cache identity. Empty leaves
	// unset requests on the library default ("auto").
	RouteStrategy string
	// Logf, when non-nil, receives one line per job lifecycle transition.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxRunning <= 0 {
		c.MaxRunning = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 4096
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.RetainCount <= 0 {
		c.RetainCount = 512
	}
	if c.RetainTTL <= 0 {
		c.RetainTTL = time.Hour
	}
	return c
}

// Stats is the server-wide snapshot served by GET /v1/stats.
type Stats struct {
	Jobs  map[State]int `json:"jobs"` // job count per lifecycle state
	Cache CacheStats    `json:"cache"`
	// Parallelism and MaxRunning echo the budget configuration so clients
	// can see what share a job will be granted.
	Parallelism int `json:"parallelism"`
	MaxRunning  int `json:"max_running"`
}

// Manager owns the job registry, the bounded run queue, the worker pool
// that drains it, and the shared result cache. It is safe for concurrent
// use by the HTTP handlers.
type Manager struct {
	cfg   Config
	cache *resultCache

	// baseCtx parents every job context; Shutdown cancels it to stop
	// still-running jobs once the drain deadline passes.
	baseCtx context.Context
	stopAll context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for stable listings
	nextID int
	closed bool

	queue chan *Job
	wg    sync.WaitGroup // the MaxRunning workers
}

// NewManager starts a manager with cfg's worker pool running. It fails
// only when cfg.CacheDir is set but cannot be created, or when
// cfg.RouteStrategy names an unknown strategy.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.RouteStrategy != "" {
		// Fail at startup, not per-request: a bad server-wide default
		// would otherwise reject every submission that omits a strategy.
		if err := splitmfg.New(splitmfg.WithRouteStrategy(cfg.RouteStrategy)).Validate(); err != nil {
			return nil, err
		}
	}
	var disk *store.Store
	if cfg.CacheDir != "" {
		var err error
		disk, err = store.Open(cfg.CacheDir, store.Options{
			KeySchema: resultKeySchema, Logf: cfg.Logf,
		})
		if err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheEntries, disk),
		baseCtx: ctx,
		stopAll: cancel,
		jobs:    map[string]*Job{},
		queue:   make(chan *Job, cfg.MaxRunning+cfg.QueueDepth),
	}
	for w := 0; w < cfg.MaxRunning; w++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for job := range m.queue {
				m.runJob(job)
			}
		}()
	}
	return m, nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Submit validates and admits one job, returning its record. Validation
// failures surface as *splitmfg.OptionError (a 400); a full queue as
// ErrQueueFull and a draining manager as ErrShuttingDown (503s).
func (m *Manager) Submit(req splitmfg.JobRequest) (*Job, error) {
	// Fold the server-wide routing-strategy default into the request
	// itself (not into the run options) so it lands in the cache key: a
	// request that omits the strategy must not share a result with the
	// "auto" identity when the server defaults to something else.
	if req.RouteStrategy == "" {
		req.RouteStrategy = m.cfg.RouteStrategy
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	m.pruneLocked()
	m.nextID++
	job := newJob(fmt.Sprintf("job-%06d", m.nextID), req, m.cfg.EventBuffer)
	select {
	case m.queue <- job:
	default:
		m.nextID--
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.jobs[job.id] = job
	m.order = append(m.order, job.id)
	m.mu.Unlock()
	bench := req.Benchmark
	if len(req.Benchmarks) > 0 {
		bench = strings.Join(req.Benchmarks, ",")
	}
	m.logf("queued %s: %s %s", job.id, req.Kind, bench)
	return job, nil
}

// Get returns the job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked()
	j, ok := m.jobs[id]
	return j, ok
}

// Expired reports whether id names a job that was admitted but has since
// been pruned by the retention policy. Needs no tombstone bookkeeping:
// IDs are assigned sequentially, so any well-formed ID at or below the
// high-water mark that is absent from the registry was pruned.
func (m *Manager) Expired(id string) bool {
	rest, found := strings.CutPrefix(id, "job-")
	if !found {
		return false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || fmt.Sprintf("job-%06d", n) != id {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[id]; ok {
		return false
	}
	return n >= 1 && n <= m.nextID
}

// Jobs lists every known job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// pruneLocked enforces the finished-job retention policy under m.mu:
// terminal jobs older than RetainTTL are dropped, and the oldest
// terminal jobs beyond RetainCount are dropped. Queued and running jobs
// are untouched; SSE subscribers holding a pruned *Job keep draining its
// (closed) event log unaffected.
func (m *Manager) pruneLocked() {
	cutoff := time.Now().Add(-m.cfg.RetainTTL)
	type fin struct {
		id string
		at time.Time
	}
	finished := make([]fin, 0, len(m.order))
	for _, id := range m.order {
		if at, done := m.jobs[id].terminalSince(); done {
			finished = append(finished, fin{id, at})
		}
	}
	excess := len(finished) - m.cfg.RetainCount
	pruned := false
	for _, f := range finished {
		if excess > 0 || f.at.Before(cutoff) {
			delete(m.jobs, f.id)
			excess--
			pruned = true
			m.logf("pruned %s (retention policy)", f.id)
		}
	}
	if !pruned {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		if _, ok := m.jobs[id]; ok {
			kept = append(kept, id)
		}
	}
	m.order = kept
}

// Cancel requests cancellation of the job by ID.
func (m *Manager) Cancel(id string) (*Job, bool) {
	job, ok := m.Get(id)
	if !ok {
		return nil, false
	}
	job.requestCancel()
	m.logf("cancel requested for %s", id)
	return job, true
}

// Stats snapshots the registry and cache counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	m.pruneLocked()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	st := Stats{
		Jobs:        map[State]int{},
		Cache:       m.cache.snapshot(),
		Parallelism: m.cfg.Parallelism,
		MaxRunning:  m.cfg.MaxRunning,
	}
	for _, j := range jobs {
		st.Jobs[j.State()]++
	}
	return st
}

// share computes the parallelism budget granted to one job: an equal split
// of the global budget across the worker slots, tightened to the request's
// own bound when that is smaller.
func (m *Manager) share(requested int) int {
	share := m.cfg.Parallelism / m.cfg.MaxRunning
	if share < 1 {
		share = 1
	}
	if requested > 0 && requested < share {
		share = requested
	}
	return share
}

// runJob executes one admitted job on a worker slot.
func (m *Manager) runJob(job *Job) {
	share := m.share(job.req.Parallelism)
	jobCtx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()
	if !job.start(share, cancel) {
		return // canceled while queued
	}
	m.logf("running %s with parallelism %d", job.id, share)

	hook := func(ev splitmfg.ProgressEvent) { job.log.append(wireEvent(ev)) }
	extra := []splitmfg.Option{
		splitmfg.WithProgress(hook),
		splitmfg.WithParallelism(share),
	}
	if job.req.RouteParallelism == 0 {
		// Route workers come out of the same share; a request that pinned
		// its own route parallelism keeps it.
		extra = append(extra, splitmfg.WithRouteParallelism(share))
	}
	if m.cfg.CacheDir != "" {
		// Suite jobs checkpoint their per-cell results into the same
		// store, so a drained server resumes a half-finished suite and
		// smbench runs sharing the directory reuse its cells.
		extra = append(extra, splitmfg.WithCacheDir(m.cfg.CacheDir))
	}
	decode := func(raw []byte) (any, error) {
		return splitmfg.DecodeReport(job.req.Kind, raw)
	}
	val, hit, err := m.cache.do(jobCtx, job.req.CacheKey(), decode, func() (any, error) {
		return job.req.Run(jobCtx, extra...)
	})
	if hit {
		job.log.append(Event{Stage: StageCached, Detail: "report shared from the result cache"})
	}
	job.finish(val, hit, err)
	m.logf("%s %s", job.id, job.State())
}

// Shutdown drains the manager: no new admissions, queued jobs are
// canceled, and running jobs get until ctx's deadline to finish before
// their contexts are canceled. It returns once every worker has exited.
func (m *Manager) Shutdown(ctx context.Context) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	close(m.queue)
	queued := make([]*Job, 0)
	for _, j := range m.jobs {
		if j.State() == StateQueued {
			queued = append(queued, j)
		}
	}
	m.mu.Unlock()
	// Finalize queued jobs; a worker that already pulled one observes the
	// terminal state in start() and skips it.
	for _, j := range queued {
		j.markCanceled()
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		m.logf("drain deadline passed; canceling running jobs")
		m.stopAll()
		<-done
	}
	m.stopAll()
}
