package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"splitmfg"
)

// newTestServer wires a manager and its handler into an httptest server,
// both torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m, ts
}

// smallRequest is a fast request of the given kind: one benchmark, one
// split layer, the cheap random attacker, and a shallow pattern depth.
func smallRequest(kind splitmfg.JobKind) splitmfg.JobRequest {
	req := splitmfg.JobRequest{
		Kind:         kind,
		Benchmark:    "c432",
		PatternWords: 4,
		SplitLayers:  []int{3},
		Attackers:    []string{"random"},
	}
	switch kind {
	case splitmfg.JobProtect:
		req.MaxAttempts = 1
	case splitmfg.JobMatrix, splitmfg.JobSuite:
		req.Defenses = []string{"pin-swapping"}
	}
	return req
}

func submit(t *testing.T, ts *httptest.Server, req splitmfg.JobRequest) Info {
	t.Helper()
	info, status := submitRaw(t, ts, req)
	if status != http.StatusAccepted {
		t.Fatalf("submit returned %d, want 202", status)
	}
	return info
}

func submitRaw(t *testing.T, ts *httptest.Server, req splitmfg.JobRequest) (Info, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info Info
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	}
	return info, resp.StatusCode
}

// jobStatus is the status endpoint's response shape with the report kept
// raw for key-level assertions.
type jobStatus struct {
	Info
	Report json.RawMessage `json:"report"`
}

func getStatus(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s returned %d, want 200", id, resp.StatusCode)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls the status endpoint until the job reaches a terminal
// state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st := getStatus(t, ts, id)
		if st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after deadline", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSubmitPollReport: every job kind round-trips submit → poll → report,
// and the report carries its kind's signature JSON keys.
func TestSubmitPollReport(t *testing.T) {
	_, ts := newTestServer(t, Config{Parallelism: 2, MaxRunning: 1})
	wantKeys := map[splitmfg.JobKind][]string{
		splitmfg.JobProtect:  {"erroneous_oer", "base_ppa", "final_ppa"},
		splitmfg.JobAttack:   {"attackers", "per_attacker"},
		splitmfg.JobEvaluate: {"attackers", "per_attacker"},
		splitmfg.JobMatrix:   {"design", "rows", "base_ppa"},
		splitmfg.JobSuite:    {"per_benchmark", "aggregate", "cache"},
	}
	for _, kind := range splitmfg.JobKinds() {
		t.Run(string(kind), func(t *testing.T) {
			info := submit(t, ts, smallRequest(kind))
			if info.State != StateQueued && info.State != StateRunning {
				t.Fatalf("submitted job in state %s", info.State)
			}
			st := waitTerminal(t, ts, info.ID)
			if st.State != StateDone {
				t.Fatalf("job ended %s (error %q), want done", st.State, st.Error)
			}
			if len(st.Report) == 0 {
				t.Fatal("done job has no report")
			}
			var rep map[string]any
			if err := json.Unmarshal(st.Report, &rep); err != nil {
				t.Fatalf("report is not a JSON object: %v", err)
			}
			for _, key := range wantKeys[kind] {
				if _, ok := rep[key]; !ok {
					t.Errorf("%s report lacks key %q", kind, key)
				}
			}
			if st.Events == 0 {
				t.Error("job recorded no progress events")
			}
		})
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	id    string
	name  string
	data  string
	event Event // decoded data for name == "progress"
}

// readSSE consumes a whole SSE stream (the server ends it after the
// terminal "done" event).
func readSSE(t *testing.T, ts *httptest.Server, id string) []sseEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events endpoint returned %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("events endpoint Content-Type = %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" {
				if cur.name == "progress" {
					if err := json.Unmarshal([]byte(cur.data), &cur.event); err != nil {
						t.Fatalf("bad progress payload %q: %v", cur.data, err)
					}
				}
				events = append(events, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestSSEOrderingMatchesDirectRun: the progress events streamed over SSE
// are exactly the events a direct pipeline run emits, in the same order —
// the stream is a faithful transcript, not a sample.
func TestSSEOrderingMatchesDirectRun(t *testing.T) {
	req := smallRequest(splitmfg.JobEvaluate)
	req.Parallelism = 1

	var want []splitmfg.ProgressEvent
	rec := func(ev splitmfg.ProgressEvent) { want = append(want, ev) }
	if _, err := req.Run(context.Background(),
		splitmfg.WithProgress(rec),
		splitmfg.WithParallelism(1),
		splitmfg.WithRouteParallelism(1)); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("direct run emitted no events")
	}

	// Parallelism 1 with one worker slot grants the job a share of 1, so
	// the server-side run is the same serial schedule as the direct one.
	_, ts := newTestServer(t, Config{Parallelism: 1, MaxRunning: 1})
	info := submit(t, ts, req)
	waitTerminal(t, ts, info.ID)

	events := readSSE(t, ts, info.ID)
	if len(events) == 0 {
		t.Fatal("SSE stream empty")
	}
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("stream ended with %q, want done", last.name)
	}
	var final Info
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatalf("bad done payload: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("done event carries state %s", final.State)
	}
	progress := events[:len(events)-1]
	if len(progress) != len(want) {
		t.Fatalf("streamed %d progress events, direct run emitted %d", len(progress), len(want))
	}
	for i, ev := range progress {
		if ev.name != "progress" {
			t.Fatalf("event %d is %q, want progress", i, ev.name)
		}
		if ev.event.Seq != i || ev.id != fmt.Sprint(i) {
			t.Fatalf("event %d has seq %d / id %q", i, ev.event.Seq, ev.id)
		}
		w := want[i]
		if ev.event.Stage != string(w.Stage) || ev.event.Detail != w.Detail ||
			ev.event.Layer != w.Layer || ev.event.Attempt != w.Attempt {
			t.Fatalf("event %d = %+v, want stage %s layer %d attempt %d detail %q",
				i, ev.event, w.Stage, w.Layer, w.Attempt, w.Detail)
		}
	}
}

// TestCancelMidSuite: DELETE on a running suite returns 200 and the job
// lands in canceled, with the cancellation reflected by the status
// endpoint and the SSE done event.
func TestCancelMidSuite(t *testing.T) {
	_, ts := newTestServer(t, Config{Parallelism: 1, MaxRunning: 1})
	req := splitmfg.JobRequest{
		Kind:       splitmfg.JobSuite,
		Benchmarks: []string{"c432", "c880", "c1908"},
		Replicates: 3,
	}
	info := submit(t, ts, req)

	// Wait for real work to start so the cancel lands mid-run.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, ts, info.ID)
		if st.State == StateRunning && st.Events > 0 {
			break
		}
		if st.State.terminal() {
			t.Fatalf("suite finished (%s) before it could be canceled; enlarge the request", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("suite never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	httpReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE returned %d, want 200", resp.StatusCode)
	}

	st := waitTerminal(t, ts, info.ID)
	if st.State != StateCanceled {
		t.Fatalf("job ended %s, want canceled", st.State)
	}
	if len(st.Report) != 0 {
		t.Fatal("canceled job has a report")
	}
	events := readSSE(t, ts, info.ID)
	if len(events) == 0 || events[len(events)-1].name != "done" {
		t.Fatal("canceled job's stream did not end with a done event")
	}
}

// TestConcurrentSubmitsShareCache: two identical jobs submitted
// back-to-back compute once — the second shares the first's report and the
// stats counters show the hit.
func TestConcurrentSubmitsShareCache(t *testing.T) {
	m, ts := newTestServer(t, Config{Parallelism: 2, MaxRunning: 2})
	req := smallRequest(splitmfg.JobMatrix)
	a := submit(t, ts, req)
	b := submit(t, ts, req)

	sa := waitTerminal(t, ts, a.ID)
	sb := waitTerminal(t, ts, b.ID)
	if sa.State != StateDone || sb.State != StateDone {
		t.Fatalf("jobs ended %s / %s, want done / done", sa.State, sb.State)
	}
	if !bytes.Equal(sa.Report, sb.Report) {
		t.Fatal("identical requests produced different reports")
	}
	stats := getStats(t, ts)
	if stats.Cache.Hits < 1 {
		t.Fatalf("cache hits = %d, want >= 1", stats.Cache.Hits)
	}
	if stats.Cache.Misses != 1 {
		t.Fatalf("cache misses = %d, want 1 (one computation)", stats.Cache.Misses)
	}
	if sa.CacheHit == sb.CacheHit {
		t.Fatalf("exactly one job should be a cache hit (got %v / %v)", sa.CacheHit, sb.CacheHit)
	}
	// The sharing job's event log says so.
	hitID := a.ID
	if sb.CacheHit {
		hitID = b.ID
	}
	job, ok := m.Get(hitID)
	if !ok {
		t.Fatal("hit job missing from registry")
	}
	found := false
	for _, ev := range job.log.snapshot() {
		found = found || ev.Stage == StageCached
	}
	if !found {
		t.Fatalf("cache-hit job's log lacks a %q event", StageCached)
	}
}

// TestBadRequestsRejected: malformed bodies and invalid requests are 400s
// with an error message; unknown jobs are 404s.
func TestBadRequestsRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRunning: 1})
	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e errorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e.Error
	}
	if code, _ := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("malformed body returned %d, want 400", code)
	}
	if code, _ := post(`{"kind":"evaluate","benchmark":"c432","bogus_field":1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field returned %d, want 400", code)
	}
	if code, msg := post(`{"kind":"bake","benchmark":"c432"}`); code != http.StatusBadRequest || msg == "" {
		t.Fatalf("unknown kind returned %d %q, want 400 with message", code, msg)
	}
	if code, msg := post(`{"kind":"evaluate","benchmark":"c432","fraction":-1}`); code != http.StatusBadRequest || !strings.Contains(msg, "WithFraction") {
		t.Fatalf("invalid option returned %d %q, want 400 naming WithFraction", code, msg)
	}
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/job-999999"},
		{http.MethodDelete, "/v1/jobs/job-999999"},
		{http.MethodGet, "/v1/jobs/job-999999/events"},
	} {
		req, err := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s returned %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// TestCatalogAndHealth: the discovery endpoints serve the benchmark
// catalog with published sizes, the registries, and liveness.
func TestCatalogAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRunning: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cat catalogResponse
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	if len(cat.Benchmarks) != len(splitmfg.Benchmarks()) {
		t.Fatalf("catalog lists %d benchmarks, want %d", len(cat.Benchmarks), len(splitmfg.Benchmarks()))
	}
	for _, e := range cat.Benchmarks {
		if e.Cells <= 0 {
			t.Fatalf("catalog entry %s has no published cell count", e.Name)
		}
	}
	if len(cat.Attackers) == 0 || len(cat.Defenses) == 0 || len(cat.Kinds) != 5 {
		t.Fatalf("catalog incomplete: %d attackers, %d defenses, %d kinds",
			len(cat.Attackers), len(cat.Defenses), len(cat.Kinds))
	}
}

// TestJobListing: GET /v1/jobs returns every submission in order.
func TestJobListing(t *testing.T) {
	_, ts := newTestServer(t, Config{Parallelism: 1, MaxRunning: 1})
	a := submit(t, ts, smallRequest(splitmfg.JobEvaluate))
	b := submit(t, ts, smallRequest(splitmfg.JobAttack))
	waitTerminal(t, ts, a.ID)
	waitTerminal(t, ts, b.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list jobsResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 || list.Jobs[0].ID != a.ID || list.Jobs[1].ID != b.ID {
		t.Fatalf("job listing = %+v, want [%s %s] in order", list.Jobs, a.ID, b.ID)
	}
}

// TestResultStoreSurvivesRestart runs the same suite job against two
// successive servers sharing one -cache-dir: the second server must serve
// the report from disk (a cache hit with zero misses) and the store must
// also hold the suite's inner baseline/cell checkpoints, since suite jobs
// thread the cache dir down into the flow scheduler.
func TestResultStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req := smallRequest(splitmfg.JobSuite)

	_, ts1 := newTestServer(t, Config{MaxRunning: 1, CacheDir: dir})
	first := waitTerminal(t, ts1, submit(t, ts1, req).ID)
	if first.State != StateDone {
		t.Fatalf("first run state = %s, want done", first.State)
	}
	if first.CacheHit {
		t.Fatal("first run on an empty store was a cache hit")
	}
	firstReport := getStatus(t, ts1, first.ID).Report
	ts1.Close()

	_, ts2 := newTestServer(t, Config{MaxRunning: 1, CacheDir: dir})
	second := waitTerminal(t, ts2, submit(t, ts2, req).ID)
	if second.State != StateDone {
		t.Fatalf("restarted run state = %s, want done", second.State)
	}
	if !second.CacheHit {
		t.Fatal("restarted run did not hit the disk store")
	}
	if !bytes.Equal(getStatus(t, ts2, second.ID).Report, firstReport) {
		t.Fatal("restarted report differs from the computed one")
	}
	st := getStats(t, ts2)
	if st.Cache.DiskHits != 1 || st.Cache.Misses != 0 {
		t.Fatalf("restarted cache stats = %+v, want 1 disk hit / 0 misses", st.Cache)
	}
	// The store holds the server-level report plus the suite's own
	// baseline and cell checkpoints (1 benchmark × 1 defense × 1 attacker
	// × default replicates ≥ 1).
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if entries := len(files); entries < 3 {
		t.Fatalf("store holds %d entries, want the report plus suite checkpoints (>= 3)", entries)
	}
}
