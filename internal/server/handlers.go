package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"splitmfg"
)

// NewHandler builds the HTTP surface over a Manager:
//
//	POST   /v1/jobs             submit a job (202 + status JSON)
//	GET    /v1/jobs             list all jobs in submission order
//	GET    /v1/jobs/{id}        status; includes the report once done
//	GET    /v1/jobs/{id}/events progress as Server-Sent Events (replayed
//	                            from the start, then live, then one final
//	                            "done" event carrying the terminal status)
//	DELETE /v1/jobs/{id}        request cancellation (200 + status JSON)
//	GET    /v1/stats            job-state and result-cache counters
//	GET    /v1/catalog          benchmarks, attackers, defenses, job kinds
//	GET    /healthz             liveness
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /v1/catalog", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, catalogResponse{
			Benchmarks: splitmfg.Catalog(),
			Attackers:  splitmfg.Attackers(),
			Defenses:   splitmfg.Defenses(),
			Kinds:      splitmfg.JobKinds(),
		})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats())
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req splitmfg.JobRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		job, err := m.Submit(req)
		if err != nil {
			var oe *splitmfg.OptionError
			switch {
			case errors.As(err, &oe):
				writeError(w, http.StatusBadRequest, err.Error())
			case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShuttingDown):
				writeError(w, http.StatusServiceUnavailable, err.Error())
			default:
				writeError(w, http.StatusInternalServerError, err.Error())
			}
			return
		}
		writeJSON(w, http.StatusAccepted, job.Info())
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := m.Jobs()
		infos := make([]Info, 0, len(jobs))
		for _, j := range jobs {
			infos = append(infos, j.Info())
		}
		writeJSON(w, http.StatusOK, jobsResponse{Jobs: infos})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeMissing(w, m, r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, statusResponse{Info: job.Info(), Report: job.Report()})
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Cancel(r.PathValue("id"))
		if !ok {
			writeMissing(w, m, r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, job.Info())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		job, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeMissing(w, m, r.PathValue("id"))
			return
		}
		streamEvents(w, r, job)
	})
	return mux
}

// writeMissing answers a lookup that found no job: a pruned job gets a
// 404 whose body says it expired (it existed; its retention window
// closed), anything else the plain "no such job".
func writeMissing(w http.ResponseWriter, m *Manager, id string) {
	if m.Expired(id) {
		writeError(w, http.StatusNotFound, "job expired: finished and pruned by the retention policy")
		return
	}
	writeError(w, http.StatusNotFound, "no such job")
}

// streamEvents serves one job's progress stream: the retained history
// first, then live events until the job finishes (terminated by a "done"
// event carrying the final status) or the client disconnects.
func streamEvents(w http.ResponseWriter, r *http.Request, job *Job) {
	replay, live, cancel := job.log.subscribe()
	defer cancel()
	sse, ok := newSSEWriter(w)
	if !ok {
		return
	}
	for _, ev := range replay {
		if err := sse.event("progress", ev.Seq, ev); err != nil {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-live:
			if !open {
				// The job reached a terminal state; close the stream with
				// its final status.
				sse.event("done", -1, job.Info())
				return
			}
			if err := sse.event("progress", ev.Seq, ev); err != nil {
				return
			}
		}
	}
}

type catalogResponse struct {
	Benchmarks []splitmfg.CatalogEntry `json:"benchmarks"`
	Attackers  []string                `json:"attackers"`
	Defenses   []string                `json:"defenses"`
	Kinds      []splitmfg.JobKind      `json:"kinds"`
}

type jobsResponse struct {
	Jobs []Info `json:"jobs"`
}

// statusResponse is a job's Info plus, once done, its report.
type statusResponse struct {
	Info
	Report any `json:"report,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
