package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// sseWriter encodes Server-Sent Events onto one streaming response,
// flushing after every event so clients see progress immediately.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

// newSSEWriter prepares w for an event stream. It returns ok=false (and
// writes a plain-HTTP error) when the connection cannot stream.
func newSSEWriter(w http.ResponseWriter) (*sseWriter, bool) {
	f, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sseWriter{w: w, f: f}, true
}

// event emits one named event with a JSON payload. The id field carries
// seq when non-negative, letting clients resume detection of dropped
// events across the replay boundary.
func (s *sseWriter) event(name string, seq int, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	if seq >= 0 {
		if _, err := fmt.Fprintf(s.w, "id: %d\n", seq); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, data); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}
