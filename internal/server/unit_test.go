package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"splitmfg"
	"splitmfg/internal/store"
)

func TestEventLogOverflowKeepsTail(t *testing.T) {
	l := newEventLog(4)
	for i := 0; i < 10; i++ {
		l.append(Event{Stage: fmt.Sprintf("s%d", i)})
	}
	if l.count() != 10 {
		t.Fatalf("count = %d, want 10", l.count())
	}
	snap := l.snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot retains %d events, want 4", len(snap))
	}
	for i, ev := range snap {
		want := 6 + i
		if ev.Seq != want || ev.Stage != fmt.Sprintf("s%d", want) {
			t.Fatalf("snapshot[%d] = %+v, want seq %d", i, ev, want)
		}
	}
}

func TestEventLogSubscribeLive(t *testing.T) {
	l := newEventLog(16)
	l.append(Event{Stage: "a"})
	l.append(Event{Stage: "b"})
	replay, live, cancel := l.subscribe()
	defer cancel()
	if len(replay) != 2 || replay[0].Seq != 0 || replay[1].Seq != 1 {
		t.Fatalf("replay = %+v, want the 2 retained events", replay)
	}
	l.append(Event{Stage: "c"})
	select {
	case ev := <-live:
		if ev.Seq != 2 || ev.Stage != "c" {
			t.Fatalf("live event = %+v, want seq 2 stage c", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("live event never arrived")
	}
	l.close()
	select {
	case _, open := <-live:
		if open {
			t.Fatal("expected channel close after log close")
		}
	case <-time.After(time.Second):
		t.Fatal("channel not closed after log close")
	}
	if l.count() != 3 {
		t.Fatalf("count = %d, want 3", l.count())
	}
	l.append(Event{Stage: "late"})
	if l.count() != 3 {
		t.Fatal("append after close was recorded")
	}
}

func TestEventLogLateSubscriber(t *testing.T) {
	l := newEventLog(16)
	l.append(Event{Stage: "a"})
	l.close()
	replay, live, cancel := l.subscribe()
	defer cancel()
	if len(replay) != 1 {
		t.Fatalf("late subscriber replayed %d events, want 1", len(replay))
	}
	select {
	case _, open := <-live:
		if open {
			t.Fatal("late subscriber's channel should be closed")
		}
	default:
		t.Fatal("late subscriber's channel should be closed immediately")
	}
}

func TestEventLogSlowSubscriberDrops(t *testing.T) {
	// Capacity 1 gives the subscriber a 1-slot channel: the first
	// undrained event is buffered and later ones drop, visible as a Seq
	// gap against the ring.
	l := newEventLog(1)
	_, live, cancel := l.subscribe()
	defer cancel()
	for i := 0; i < 3; i++ {
		l.append(Event{Stage: fmt.Sprintf("s%d", i)})
	}
	ev := <-live
	if ev.Seq != 0 {
		t.Fatalf("buffered event has seq %d, want 0", ev.Seq)
	}
	select {
	case ev := <-live:
		t.Fatalf("expected drops, got %+v", ev)
	default:
	}
	snap := l.snapshot()
	if len(snap) != 1 || snap[0].Seq != 2 {
		t.Fatalf("ring retains %+v, want only seq 2", snap)
	}
}

func TestResultCacheHitAndStats(t *testing.T) {
	c := newResultCache(0, nil)
	calls := 0
	compute := func() (any, error) { calls++; return 42, nil }
	v, hit, err := c.do(context.Background(), "k", nil, compute)
	if err != nil || hit || v != 42 {
		t.Fatalf("first do = (%v, %v, %v), want (42, false, nil)", v, hit, err)
	}
	v, hit, err = c.do(context.Background(), "k", nil, compute)
	if err != nil || !hit || v != 42 {
		t.Fatalf("second do = (%v, %v, %v), want (42, true, nil)", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if st := c.snapshot(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestResultCacheFailureEvicted(t *testing.T) {
	c := newResultCache(0, nil)
	boom := errors.New("boom")
	if _, _, err := c.do(context.Background(), "k", nil, func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failed computation must not poison the key.
	v, hit, err := c.do(context.Background(), "k", nil, func() (any, error) { return "ok", nil })
	if err != nil || hit || v != "ok" {
		t.Fatalf("retry = (%v, %v, %v), want (ok, false, nil)", v, hit, err)
	}
	if st := c.snapshot(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 0 hits / 2 misses", st)
	}
}

func TestResultCacheSingleflight(t *testing.T) {
	c := newResultCache(0, nil)
	release := make(chan struct{})
	computing := make(chan struct{})
	type result struct {
		v   any
		hit bool
		err error
	}
	results := make(chan result, 1)
	go func() {
		v, hit, err := c.do(context.Background(), "k", nil, func() (any, error) {
			close(computing)
			<-release
			return "shared", nil
		})
		results <- result{v, hit, err}
	}()
	<-computing
	waiter := make(chan result, 1)
	go func() {
		v, hit, err := c.do(context.Background(), "k", nil, func() (any, error) {
			t.Error("waiter should not compute")
			return nil, nil
		})
		waiter <- result{v, hit, err}
	}()
	// A waiter whose context dies gives up without canceling the computer.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.do(ctx, "k", nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter returned %v, want context.Canceled", err)
	}
	close(release)
	r := <-results
	if r.err != nil || r.hit || r.v != "shared" {
		t.Fatalf("computer got %+v", r)
	}
	r = <-waiter
	if r.err != nil || !r.hit || r.v != "shared" {
		t.Fatalf("waiter got %+v, want a hit on the shared value", r)
	}
}

func TestManagerShare(t *testing.T) {
	m := &Manager{cfg: Config{Parallelism: 8, MaxRunning: 2}}
	cases := []struct{ requested, want int }{
		{0, 4},   // unbounded request: equal split
		{3, 3},   // tighter request wins
		{100, 4}, // looser request is clamped to the split
	}
	for _, tc := range cases {
		if got := m.share(tc.requested); got != tc.want {
			t.Errorf("share(%d) = %d, want %d", tc.requested, got, tc.want)
		}
	}
	// Budget smaller than the slot count still grants at least 1.
	m = &Manager{cfg: Config{Parallelism: 1, MaxRunning: 4}}
	if got := m.share(0); got != 1 {
		t.Errorf("share(0) with tiny budget = %d, want 1", got)
	}
}

// TestRouteStrategyDefault: a server-wide routing-strategy default folds
// into requests that omit one — at submission, so it lands in the cache
// key — and never overrides an explicit choice; an unknown default fails
// NewManager at startup rather than per request.
func TestRouteStrategyDefault(t *testing.T) {
	if _, err := NewManager(Config{RouteStrategy: "bogus"}); err == nil {
		t.Fatal("NewManager accepted an unknown route-strategy default")
	}
	m, err := NewManager(Config{MaxRunning: 1, RouteStrategy: "hier"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	req := splitmfg.JobRequest{Kind: splitmfg.JobEvaluate, Benchmark: "c432", PatternWords: 1}
	defaulted, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := defaulted.Request().RouteStrategy; got != "hier" {
		t.Fatalf("omitted strategy folded to %q, want %q", got, "hier")
	}
	req.RouteStrategy = "flat"
	explicit, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := explicit.Request().RouteStrategy; got != "flat" {
		t.Fatalf("explicit strategy overridden to %q", got)
	}
	if defaulted.Request().CacheKey() == explicit.Request().CacheKey() {
		t.Fatal("hier-defaulted and flat requests share a cache key")
	}
}

// TestQueueFullAndShutdown: submissions beyond the queue bound are
// rejected; Shutdown cancels queued and running jobs and refuses new ones.
func TestQueueFullAndShutdown(t *testing.T) {
	m, err := NewManager(Config{Parallelism: 1, MaxRunning: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A slow job to occupy the single worker slot.
	blocker, err := m.Submit(splitmfg.JobRequest{
		Kind:       splitmfg.JobSuite,
		Benchmarks: []string{"c432", "c880", "c1908"},
		Replicates: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for blocker.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue (capacity MaxRunning+QueueDepth = 2) now fills behind it.
	small := smallRequest(splitmfg.JobEvaluate)
	queued := make([]*Job, 0, 2)
	for i := 0; i < 2; i++ {
		req := small
		req.Seed = int64(i + 100) // distinct jobs
		j, err := m.Submit(req)
		if err != nil {
			t.Fatalf("submission %d rejected: %v", i, err)
		}
		queued = append(queued, j)
	}
	req := small
	req.Seed = 999
	if _, err := m.Submit(req); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit returned %v, want ErrQueueFull", err)
	}

	// Shutdown with an expired deadline: queued jobs are canceled without
	// running, the blocker's context is canceled, and it still drains.
	expired, cancel := context.WithDeadline(context.Background(), time.Now())
	defer cancel()
	m.Shutdown(expired)
	if st := blocker.State(); st != StateCanceled {
		t.Fatalf("blocker ended %s, want canceled", st)
	}
	for i, j := range queued {
		if st := j.State(); st != StateCanceled {
			t.Fatalf("queued job %d ended %s, want canceled", i, st)
		}
	}
	if _, err := m.Submit(small); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit returned %v, want ErrShuttingDown", err)
	}
	// Idempotent.
	m.Shutdown(context.Background())
}

// TestJobInfoLifecycle: Info reflects the queued → running → done
// transitions with their timestamps.
func TestJobInfoLifecycle(t *testing.T) {
	j := newJob("job-000001", smallRequest(splitmfg.JobEvaluate), 8)
	info := j.Info()
	if info.State != StateQueued || info.Started != nil || info.Finished != nil {
		t.Fatalf("fresh job info = %+v", info)
	}
	if !j.start(3, func() {}) {
		t.Fatal("start on a queued job returned false")
	}
	info = j.Info()
	if info.State != StateRunning || info.Started == nil || info.Parallelism != 3 {
		t.Fatalf("running job info = %+v", info)
	}
	j.finish("report", false, nil)
	info = j.Info()
	if info.State != StateDone || info.Finished == nil || info.Error != "" {
		t.Fatalf("done job info = %+v", info)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("Done channel not closed")
	}
	// A second finish (e.g. a racing cancel) is a no-op.
	j.finish(nil, false, errors.New("late"))
	if j.State() != StateDone {
		t.Fatal("terminal state overwritten")
	}
}

// TestJobCancelRacesAdmission: a cancel that lands while the job is queued
// finalizes it; start() then refuses to run it.
func TestJobCancelRacesAdmission(t *testing.T) {
	j := newJob("job-000002", smallRequest(splitmfg.JobEvaluate), 8)
	j.requestCancel()
	if j.State() != StateCanceled {
		t.Fatalf("canceled queued job is %s", j.State())
	}
	if j.start(1, func() {}) {
		t.Fatal("start on a canceled job returned true")
	}
	// Cancellation errors classify as canceled, not failed.
	k := newJob("job-000003", smallRequest(splitmfg.JobEvaluate), 8)
	k.start(1, func() {})
	k.finish(nil, false, fmt.Errorf("stage: %w", context.Canceled))
	if k.State() != StateCanceled {
		t.Fatalf("cancellation error classified as %s", k.State())
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, nil)
	put := func(k string) (any, bool) {
		t.Helper()
		v, hit, err := c.do(context.Background(), k, nil, func() (any, error) { return k, nil })
		if err != nil {
			t.Fatal(err)
		}
		return v, hit
	}
	put("a")
	put("b")
	put("c") // over the cap: "a" (least recently used) falls out
	if st := c.snapshot(); st.Evictions != 1 || st.Misses != 3 {
		t.Fatalf("stats = %+v, want 1 eviction / 3 misses", st)
	}
	if _, hit := put("b"); !hit {
		t.Fatal("recently used entry was evicted")
	}
	if _, hit := put("a"); hit {
		t.Fatal("evicted entry still served")
	}
	// Re-adding "a" displaced the now-least-recent "c".
	if st := c.snapshot(); st.Evictions != 2 || st.Misses != 4 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 evictions / 4 misses / 1 hit", st)
	}
}

func TestResultCacheInFlightNeverEvicted(t *testing.T) {
	c := newResultCache(1, nil)
	release := make(chan struct{})
	computing := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := c.do(context.Background(), "slow", nil, func() (any, error) {
			close(computing)
			<-release
			return "slow-value", nil
		})
		if err != nil || v != "slow-value" {
			t.Errorf("slow compute = (%v, %v)", v, err)
		}
	}()
	<-computing
	// Churn the cache past its cap while "slow" is still in flight: only
	// completed entries may be evicted.
	for _, k := range []string{"x", "y", "z"} {
		if _, _, err := c.do(context.Background(), k, nil, func() (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	<-done
	v, hit, err := c.do(context.Background(), "slow", nil, func() (any, error) {
		t.Error("in-flight entry was evicted and recomputed")
		return nil, nil
	})
	if err != nil || !hit || v != "slow-value" {
		t.Fatalf("post-completion lookup = (%v, %v, %v), want the in-flight survivor", v, hit, err)
	}
}

func TestResultCacheDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	openStore := func() *store.Store {
		t.Helper()
		st, err := store.Open(dir, store.Options{KeySchema: resultKeySchema})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	decode := func(raw []byte) (any, error) {
		var s string
		err := json.Unmarshal(raw, &s)
		return s, err
	}
	c1 := newResultCache(4, openStore())
	if _, _, err := c1.do(context.Background(), "k", decode, func() (any, error) { return "v", nil }); err != nil {
		t.Fatal(err)
	}
	// A fresh cache over the same directory — the process restart — must
	// serve the key from disk without computing.
	c2 := newResultCache(4, openStore())
	v, hit, err := c2.do(context.Background(), "k", decode, func() (any, error) {
		t.Error("disk-backed key recomputed")
		return nil, nil
	})
	if err != nil || !hit || v != "v" {
		t.Fatalf("restarted lookup = (%v, %v, %v), want a disk hit", v, hit, err)
	}
	if st := c2.snapshot(); st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 disk hit / 0 misses", st)
	}
}

// injectFinished registers n already-terminal jobs with sequential IDs,
// the retention policy's raw material, bypassing the queue.
func injectFinished(t *testing.T, m *Manager, n int) {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("job-%06d", i)
		j := newJob(id, smallRequest(splitmfg.JobEvaluate), 4)
		j.markCanceled()
		m.jobs[id] = j
		m.order = append(m.order, id)
		m.nextID = i
	}
}

func TestManagerRetentionCountPrunes(t *testing.T) {
	m, err := NewManager(Config{MaxRunning: 1, RetainCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	injectFinished(t, m, 4)
	jobs := m.Jobs() // any registry read applies the policy
	if len(jobs) != 2 || jobs[0].ID() != "job-000003" || jobs[1].ID() != "job-000004" {
		ids := make([]string, len(jobs))
		for i, j := range jobs {
			ids[i] = j.ID()
		}
		t.Fatalf("retained %v, want the 2 newest", ids)
	}
	if _, ok := m.Get("job-000001"); ok {
		t.Fatal("pruned job still resolvable")
	}
	if !m.Expired("job-000001") {
		t.Fatal("pruned job not reported expired")
	}
	if m.Expired("job-000004") {
		t.Fatal("live job reported expired")
	}
	if m.Expired("job-000099") {
		t.Fatal("never-assigned ID reported expired")
	}
	if m.Expired("job-1") || m.Expired("nonsense") {
		t.Fatal("malformed ID reported expired")
	}
}

func TestManagerRetentionTTLPrunes(t *testing.T) {
	m, err := NewManager(Config{MaxRunning: 1, RetainTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	injectFinished(t, m, 2)
	// Age the first job past the TTL; the second stays fresh.
	m.mu.Lock()
	j := m.jobs["job-000001"]
	m.mu.Unlock()
	j.mu.Lock()
	j.finished = time.Now().Add(-2 * time.Minute)
	j.mu.Unlock()
	if st := m.Stats(); st.Jobs[StateCanceled] != 1 {
		t.Fatalf("job states after TTL prune = %v, want 1 canceled", st.Jobs)
	}
	if !m.Expired("job-000001") || m.Expired("job-000002") {
		t.Fatal("TTL prune misreported expiry")
	}
}

func TestExpiredJobGets404WithBody(t *testing.T) {
	m, err := NewManager(Config{MaxRunning: 1, RetainCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	injectFinished(t, m, 3)
	h := NewHandler(m)
	get := func(path string) (int, string) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	code, body := get("/v1/jobs/job-000001")
	if code != 404 || !strings.Contains(body, "expired") {
		t.Fatalf("pruned job: %d %q, want 404 naming expiry", code, body)
	}
	code, body = get("/v1/jobs/job-000001/events")
	if code != 404 || !strings.Contains(body, "expired") {
		t.Fatalf("pruned job events: %d %q, want 404 naming expiry", code, body)
	}
	code, body = get("/v1/jobs/job-000099")
	if code != 404 || strings.Contains(body, "expired") {
		t.Fatalf("unknown job: %d %q, want plain 404", code, body)
	}
}
