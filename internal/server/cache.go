package server

import (
	"container/list"
	"context"
	"sync"

	"splitmfg/internal/store"
)

// CacheStats counts result-cache outcomes across the server's lifetime.
// A hit is a job whose report was shared from another job's computation
// (completed or still in flight), a disk hit one served from the
// disk-backed store, a miss a job that computed its report itself.
// Evictions counts completed entries dropped from memory by the LRU cap
// (the disk tier, when configured, still holds them).
type CacheStats struct {
	Hits      int `json:"hits"`
	Misses    int `json:"misses"`
	DiskHits  int `json:"disk_hits"`
	Evictions int `json:"evictions"`
}

// cacheEntry is one in-flight or completed computation; ready is closed
// when val/err are final. elem is the entry's slot in the LRU list —
// nil while the computation is in flight, so in-flight entries are
// never eviction candidates.
type cacheEntry struct {
	ready chan struct{}
	val   any
	err   error
	elem  *list.Element
}

// resultCache is the process-wide content-addressed result cache shared by
// every job the manager runs, the server-level analogue of the suite's
// per-run cache: keys come from splitmfg.JobRequest.CacheKey, which encodes
// every input that determines the report (and excludes parallelism, which
// provably does not). Identical requests are deduplicated
// singleflight-style — the first computes, later ones block until the value
// is ready and count a hit. Failed computations are evicted before their
// waiters wake, so a canceled or crashed job never poisons the key: a
// waiter that observes the failure retries the lookup and computes itself.
//
// Completed entries live in a maxEntries-capped LRU (in-flight entries
// are never evicted), fixing the unbounded growth a long-running server
// would otherwise accumulate. When a disk store is attached, evicted or
// never-seen entries can still be served from disk, and every computed
// report is checkpointed there, surviving restarts.
type resultCache struct {
	mu         sync.Mutex
	entries    map[string]*cacheEntry
	order      *list.List // completed entries, most recently used first; values are keys
	maxEntries int
	stats      CacheStats
	disk       *store.Store // nil = memory-only
}

func newResultCache(maxEntries int, disk *store.Store) *resultCache {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	return &resultCache{
		entries:    map[string]*cacheEntry{},
		order:      list.New(),
		maxEntries: maxEntries,
		disk:       disk,
	}
}

// complete marks e done under mu: it joins the LRU as most recent and
// the cap is enforced by dropping the least recently used completed
// entries.
func (c *resultCache) complete(key string, e *cacheEntry) {
	e.elem = c.order.PushFront(key)
	for c.order.Len() > c.maxEntries {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(string))
		c.stats.Evictions++
	}
}

// do returns the cached (or freshly computed) value for key. hit reports
// whether the value came from another request's computation or from the
// disk store. decode rebuilds the typed value from the disk tier's raw
// JSON (nil skips the disk tier for this call). The context bounds only
// the wait on an in-flight sibling — it does not cancel the sibling's
// computation, which other waiters may still want.
func (c *resultCache) do(ctx context.Context, key string, decode func([]byte) (any, error), compute func() (any, error)) (val any, hit bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			if e.elem != nil {
				c.order.MoveToFront(e.elem)
			}
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, false, ctx.Err()
			case <-e.ready:
			}
			if e.err == nil {
				c.mu.Lock()
				c.stats.Hits++
				c.mu.Unlock()
				return e.val, true, nil
			}
			// The computing request failed and evicted the entry; try to
			// become the computer ourselves.
			continue
		}
		e := &cacheEntry{ready: make(chan struct{})}
		c.entries[key] = e
		c.mu.Unlock()
		if decode != nil {
			if raw, ok := c.disk.Get(key); ok {
				if v, derr := decode(raw); derr == nil {
					c.mu.Lock()
					c.stats.DiskHits++
					c.complete(key, e)
					c.mu.Unlock()
					e.val = v
					close(e.ready)
					return v, true, nil
				}
				// Undecodable value: treat as absent and recompute (the
				// rewrite below replaces it).
			}
		}
		c.mu.Lock()
		c.stats.Misses++
		c.mu.Unlock()
		e.val, e.err = compute()
		c.mu.Lock()
		if e.err != nil {
			delete(c.entries, key)
		} else {
			c.complete(key, e)
		}
		c.mu.Unlock()
		if e.err == nil {
			// Best-effort checkpoint; a failed write degrades to uncached.
			c.disk.Put(key, e.val)
		}
		close(e.ready)
		return e.val, false, e.err
	}
}

func (c *resultCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
