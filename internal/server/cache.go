package server

import (
	"context"
	"sync"
)

// CacheStats counts result-cache outcomes across the server's lifetime. A
// hit is a job whose report was shared from another job's computation
// (completed or still in flight); a miss is a job that computed its report
// itself.
type CacheStats struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
}

// cacheEntry is one in-flight or completed computation; ready is closed
// when val/err are final.
type cacheEntry struct {
	ready chan struct{}
	val   any
	err   error
}

// resultCache is the process-wide content-addressed result cache shared by
// every job the manager runs, the server-level analogue of the suite's
// per-run cache: keys come from splitmfg.JobRequest.CacheKey, which encodes
// every input that determines the report (and excludes parallelism, which
// provably does not). Identical requests are deduplicated
// singleflight-style — the first computes, later ones block until the value
// is ready and count a hit. Failed computations are evicted before their
// waiters wake, so a canceled or crashed job never poisons the key: a
// waiter that observes the failure retries the lookup and computes itself.
type resultCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	stats   CacheStats
}

func newResultCache() *resultCache {
	return &resultCache{entries: map[string]*cacheEntry{}}
}

// do returns the cached (or freshly computed) value for key. hit reports
// whether the value came from another request's computation. The context
// bounds only the wait on an in-flight sibling — it does not cancel the
// sibling's computation, which other waiters may still want.
func (c *resultCache) do(ctx context.Context, key string, compute func() (any, error)) (val any, hit bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, false, ctx.Err()
			case <-e.ready:
			}
			if e.err == nil {
				c.mu.Lock()
				c.stats.Hits++
				c.mu.Unlock()
				return e.val, true, nil
			}
			// The computing request failed and evicted the entry; try to
			// become the computer ourselves.
			continue
		}
		e := &cacheEntry{ready: make(chan struct{})}
		c.entries[key] = e
		c.stats.Misses++
		c.mu.Unlock()
		e.val, e.err = compute()
		if e.err != nil {
			c.mu.Lock()
			delete(c.entries, key)
			c.mu.Unlock()
		}
		close(e.ready)
		return e.val, false, e.err
	}
}

func (c *resultCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
