package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"splitmfg"
)

// isCancellation reports whether err stems from context cancellation — the
// flow entry points surface the cause through context.Cause, so a drained
// or DELETEd job unwinds with one of the two sentinel errors.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// State is a job's position in its lifecycle:
// queued → running → done | failed | canceled.
type State string

// Job states. A queued job that is canceled (by DELETE or by shutdown)
// moves straight to canceled without running.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether the state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one admitted evaluation request: its immutable identity (ID,
// request, submission time) plus mutable lifecycle state guarded by mu.
// The event log has its own lock so progress appends never contend with
// status polls.
type Job struct {
	id  string
	req splitmfg.JobRequest
	log *eventLog

	mu          sync.Mutex
	state       State
	created     time.Time
	started     time.Time
	finished    time.Time
	report      any
	err         error
	cacheHit    bool
	parallelism int // the share of the global budget the job ran with
	cancelReq   bool
	cancel      context.CancelFunc // set while running
	done        chan struct{}      // closed on terminal state
}

func newJob(id string, req splitmfg.JobRequest, eventCap int) *Job {
	return &Job{
		id:      id,
		req:     req,
		log:     newEventLog(eventCap),
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
}

// ID returns the job's server-assigned identifier.
func (j *Job) ID() string { return j.id }

// Request returns the job's submitted request.
func (j *Job) Request() splitmfg.JobRequest { return j.req }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Report returns the job's report once done (nil otherwise).
func (j *Job) Report() any {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// start moves the job from queued to running. It returns false — and the
// caller must skip the job — when cancellation already claimed it.
func (j *Job) start(share int, cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.parallelism = share
	j.cancel = cancel
	if j.cancelReq {
		// DELETE raced admission: honor it before any work starts.
		cancel()
	}
	return true
}

// finish records the job's outcome: done with a report, canceled when the
// run was ended by cancellation, failed otherwise.
func (j *Job) finish(report any, hit bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.finished = time.Now()
	j.cancel = nil
	j.cacheHit = hit
	switch {
	case err == nil:
		j.state = StateDone
		j.report = report
	case j.cancelReq || isCancellation(err):
		j.state = StateCanceled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	j.log.close()
	close(j.done)
}

// markCanceled finalizes a job that never ran (canceled while queued, or
// dropped at shutdown).
func (j *Job) markCanceled() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = StateCanceled
	j.finished = time.Now()
	j.err = context.Canceled
	j.log.close()
	close(j.done)
}

// terminalSince returns the job's finish time and whether it reached a
// terminal state — the retention policy's pruning criterion.
func (j *Job) terminalSince() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished, j.state.terminal()
}

// requestCancel asks the job to stop: a queued job finalizes immediately, a
// running one has its context canceled and finalizes when the flow unwinds.
func (j *Job) requestCancel() {
	j.mu.Lock()
	if j.state == StateQueued {
		j.mu.Unlock()
		j.markCanceled()
		return
	}
	j.cancelReq = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Info is the JSON status of a job, as returned by the list and status
// endpoints (the status endpoint adds the report once done).
type Info struct {
	ID          string              `json:"id"`
	Kind        splitmfg.JobKind    `json:"kind"`
	State       State               `json:"state"`
	Request     splitmfg.JobRequest `json:"request"`
	Created     time.Time           `json:"created"`
	Started     *time.Time          `json:"started,omitempty"`
	Finished    *time.Time          `json:"finished,omitempty"`
	Parallelism int                 `json:"parallelism,omitempty"` // granted share of the global budget
	CacheHit    bool                `json:"cache_hit,omitempty"`
	Events      int                 `json:"events"` // progress events recorded so far
	Error       string              `json:"error,omitempty"`
}

// Info snapshots the job's status.
func (j *Job) Info() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := Info{
		ID:          j.id,
		Kind:        j.req.Kind,
		State:       j.state,
		Request:     j.req,
		Created:     j.created,
		Parallelism: j.parallelism,
		CacheHit:    j.cacheHit,
	}
	if !j.started.IsZero() {
		t := j.started
		info.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		info.Finished = &t
	}
	info.Events = j.log.count()
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}
