package report

import (
	"fmt"
	"strings"
	"testing"
)

// tinyCfg keeps report tests fast: two small ISCAS circuits, heavily
// scaled superblue stand-ins, shallow simulation.
func tinyCfg() Config {
	return Config{
		Seed:           1,
		SuperblueScale: 1500,
		ISCASSubset:    []string{"c432"},
		PatternWords:   16,
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"x", "y"}, {"longer", "z"}},
		Notes:   []string{"n1"},
	}
	out := tab.Render()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "longer") || !strings.Contains(out, "note: n1") {
		t.Fatalf("render broken:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatal("too few lines")
	}
}

func TestSecurityStudyVariants(t *testing.T) {
	cfg := tinyCfg()
	for _, v := range []string{"original", "placement-perturbation", "g-color", "pin-swapping"} {
		rows, err := SecurityStudy(v, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if len(rows) != 1 || rows[0].Benchmark != "c432" || rows[0].Variant != v {
			t.Fatalf("%s: rows=%+v", v, rows)
		}
		if rows[0].CCR < 0 || rows[0].CCR > 100 {
			t.Fatalf("%s: CCR out of range: %v", v, rows[0].CCR)
		}
	}
	if _, err := SecurityStudy("bogus", cfg); err == nil {
		t.Fatal("bogus variant accepted")
	}
}

func TestProposedVariantNearZeroCCR(t *testing.T) {
	rows, err := SecurityStudy("proposed", tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Frags == 0 {
		t.Fatal("nothing attacked")
	}
	if r.OER < 90 {
		t.Fatalf("proposed OER=%.1f, want ≈100", r.OER)
	}
	// Chance-level hits only (documented in EXPERIMENTS.md).
	if r.CCR > 25 {
		t.Fatalf("proposed CCR=%.1f too high", r.CCR)
	}
}

func TestTable1SmokeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("superblue bundles in -short mode")
	}
	cfg := tinyCfg()
	tab, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 5 designs x 3 variants.
	if len(tab.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(tab.Rows))
	}
	// Proposed mean distance must exceed Original's for each design
	// (the paper's order-of-magnitude claim, scale-independent).
	for i := 0; i < len(tab.Rows); i += 3 {
		orig := tab.Rows[i]
		prop := tab.Rows[i+2]
		if orig[1] != "Original" || prop[1] != "Proposed" {
			t.Fatalf("row order wrong: %v / %v", orig, prop)
		}
		var om, pm float64
		if _, err := sscan(orig[2], &om); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(prop[2], &pm); err != nil {
			t.Fatal(err)
		}
		if pm <= om {
			t.Fatalf("%s: proposed mean %.2f <= original %.2f", orig[0], pm, om)
		}
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestAblationSwapBudgetShape(t *testing.T) {
	tab, err := AblationSwapBudget("c432", []int{2, 6}, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}
