// Package report regenerates every table and figure of the paper's
// evaluation (Sec. 5). Each experiment function returns structured rows
// and can render itself as an aligned text table that prints our measured
// values next to the paper's published ones, so the shape of every result
// can be compared at a glance. cmd/smbench and the repository's benchmark
// suite are thin wrappers around this package.
package report

import (
	"fmt"
	"strings"
)

// Table is a generic rendered result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// Config carries the experiment-wide knobs.
type Config struct {
	Seed           int64
	SuperblueScale int // divisor on published superblue sizes (default 300)
	ISCASSubset    []string
	PatternWords   int // simulation depth for OER/HD (default 256)
	Verbose        bool
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.SuperblueScale == 0 {
		c.SuperblueScale = 300
	}
	if c.PatternWords == 0 {
		c.PatternWords = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}
