package report

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"splitmfg/internal/attack/crouting"
	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/baselines"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/defense/randomize"
	"splitmfg/internal/flow"
	"splitmfg/internal/geom"
	"splitmfg/internal/layout"
	"splitmfg/internal/metrics"
	"splitmfg/internal/netlist"
	"splitmfg/internal/place"
)

// paperTable1 holds the published distance statistics (mean/median/std µm).
var paperTable1 = map[string][3][3]float64{ // design -> [orig, lifted, proposed][mean, median, std]
	"superblue1":  {{14.31, 2.85, 54.84}, {14.37, 2.92, 54.83}, {198.46, 48.41, 318.88}},
	"superblue5":  {{14.38, 2.99, 49.16}, {14.39, 2.99, 49.17}, {244.73, 96.9, 328.84}},
	"superblue10": {{12.66, 2.73, 49.59}, {12.71, 2.8, 49.58}, {254.06, 71.03, 372.07}},
	"superblue12": {{19.06, 3.18, 75.37}, {19.08, 3.23, 75.37}, {263.21, 81.28, 395.26}},
	"superblue18": {{12.91, 2.54, 41.74}, {12.93, 2.54, 41.74}, {208.47, 119.51, 244.81}},
}

// sbBundle is one superblue design built in all three variants over the
// same randomized net set.
type sbBundle struct {
	Name      string
	Original  *layout.Design
	Lifted    *correction.Protected
	Proposed  *correction.Protected
	Netlist   *netlist.Netlist
	Protected map[netlist.PinRef]bool
}

// buildSuperblueBundle constructs original/lifted/proposed for one design.
func buildSuperblueBundle(name string, cfg Config) (*sbBundle, error) {
	nl, err := bench.Superblue(name, cfg.SuperblueScale)
	if err != nil {
		return nil, err
	}
	util, err := bench.SuperblueUtil(name)
	if err != nil {
		return nil, err
	}
	lib := cell.NewNangate45Like()
	copt := correction.Options{LiftLayer: 8, UtilPercent: util, Seed: cfg.Seed}
	orig, err := correction.BuildOriginal(nl, lib, copt)
	if err != nil {
		return nil, fmt.Errorf("%s original: %v", name, err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Randomize well past the OER knee, as the paper's budget loop does
	// (Table 2 protects enough nets for the via deltas to dominate noise):
	// ~6% of all gate input pins.
	pins := 0
	for _, g := range nl.Gates {
		pins += len(g.Fanin)
	}
	r, err := randomize.Randomize(nl, rng, randomize.Options{
		PatternWords: 32, MaxSwaps: pins * 3 / 100, TargetOER: 2,
	})
	if err != nil {
		return nil, fmt.Errorf("%s randomize: %v", name, err)
	}
	prot, err := correction.BuildProtected(nl, r, lib, copt)
	if err != nil {
		return nil, fmt.Errorf("%s protected: %v", name, err)
	}
	sinks := correction.SortedPins(r.Protected)
	naive, err := correction.BuildNaiveLifted(nl, sinks, lib, copt)
	if err != nil {
		return nil, fmt.Errorf("%s naive: %v", name, err)
	}
	return &sbBundle{
		Name: name, Original: orig, Lifted: naive, Proposed: prot,
		Netlist: nl, Protected: r.Protected,
	}, nil
}

// protectedDistances returns, per protected sink pin, the distance between
// its TRUE driver gate and the sink gate under the given placement. Pins
// are visited in sorted order: the returned slice feeds the float mean in
// metrics.ComputeDistStats, so map-iteration order would leak process
// randomness into the summed distances.
func protectedDistances(nl *netlist.Netlist, pl *place.Placement, pins map[netlist.PinRef]bool) []int {
	var out []int
	for _, pin := range correction.SortedPins(pins) {
		trueNet := nl.Gates[pin.Gate].Fanin[pin.Pin]
		n := nl.Nets[trueNet]
		var dp geom.Point
		if n.IsPI() {
			dp = pl.PIPads[n.PI]
		} else {
			dp = pl.GateCenter(n.Driver)
		}
		out = append(out, dp.Manhattan(pl.GateCenter(pin.Gate)))
	}
	return out
}

// Table1 regenerates the paper's Table 1: distances between truly
// connected gates for the randomized net set, per variant.
func Table1(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		Title:   fmt.Sprintf("Table 1: distances between connected gates (µm), superblue scale 1/%d", cfg.SuperblueScale),
		Columns: []string{"design", "layout", "mean", "median", "std", "paper(mean/median/std)"},
		Notes: []string{
			"distances measured over the randomized net set; proposed uses the erroneous placement, so true pairs land arbitrarily far apart",
			"absolute µm are smaller than the paper's (scaled dies); the orders-of-magnitude jump for Proposed is the reproduced claim",
		},
	}
	for _, name := range bench.SuperblueNames() {
		b, err := buildSuperblueBundle(name, cfg)
		if err != nil {
			return nil, err
		}
		// NOTE: the original netlist's connectivity is the reference for
		// all three variants.
		variants := []struct {
			label string
			pl    *place.Placement
			idx   int
		}{
			{"Original", b.Original.Placement, 0},
			{"Lifted", b.Lifted.Design.Placement, 1},
			{"Proposed", b.Proposed.Design.Placement, 2},
		}
		for _, v := range variants {
			ds := metrics.ComputeDistStats(protectedDistances(b.Netlist, v.pl, b.Protected))
			ref := ""
			if p, ok := paperTable1[name]; ok {
				ref = fmt.Sprintf("%.1f/%.1f/%.1f", p[v.idx][0], p[v.idx][1], p[v.idx][2])
			}
			t.Rows = append(t.Rows, []string{name, v.label, f2(ds.Mean), f2(ds.Median), f2(ds.Std), ref})
		}
	}
	return t, nil
}

// Fig4CSV emits the per-connection distance series for one design (the
// paper plots superblue18) as CSV: variant,connection_index,distance_um.
func Fig4CSV(name string, cfg Config) (string, error) {
	cfg = cfg.WithDefaults()
	b, err := buildSuperblueBundle(name, cfg)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("variant,net,distance_um\n")
	emit := func(label string, pl *place.Placement) {
		ds := protectedDistances(b.Netlist, pl, b.Protected)
		for i, d := range ds {
			fmt.Fprintf(&sb, "%s,%d,%.3f\n", label, i, geom.Microns(d))
		}
	}
	emit("original", b.Original.Placement)
	emit("lifted", b.Lifted.Design.Placement)
	emit("proposed", b.Proposed.Design.Placement)
	return sb.String(), nil
}

// Table2 regenerates the paper's Table 2: per-boundary via counts for the
// original layout, and the percentage increases of naive lifting and the
// proposed scheme (same randomized net set, zero die-area growth).
func Table2(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		Title:   fmt.Sprintf("Table 2: additional vias over original (%%), superblue scale 1/%d, lift M8", cfg.SuperblueScale),
		Columns: []string{"design", "layout", "V12", "V23", "V34", "V45", "V56", "V67", "V78", "V89", "V910", "total"},
		Notes: []string{
			"paper (proposed, superblue1): +2.1 +4.1 +10.8 +18.4 +29.9 +31.8 +34.2 +27.3 +40.9, total +5.9%",
			"expected shape: Proposed adds far more high-layer vias than Lifted; both leave low layers nearly untouched",
		},
	}
	for _, name := range bench.SuperblueNames() {
		b, err := buildSuperblueBundle(name, cfg)
		if err != nil {
			return nil, err
		}
		so := b.Original.Router.ComputeStats()
		row := []string{name, "Original"}
		var totalO int64
		for z := 1; z <= 9; z++ {
			row = append(row, fmt.Sprintf("%d", so.Vias[z]))
			totalO += so.Vias[z]
		}
		row = append(row, fmt.Sprintf("%d", totalO))
		t.Rows = append(t.Rows, row)
		for _, v := range []struct {
			label string
			d     *layout.Design
		}{{"Lifted", b.Lifted.Design}, {"Proposed", b.Proposed.Design}} {
			s := v.d.Router.ComputeStats()
			row := []string{name, v.label + " (%)"}
			var total int64
			for z := 1; z <= 9; z++ {
				// Percent delta when the original has vias at this
				// boundary; absolute "+N" otherwise (our scaled originals
				// often have zero V67+ where the paper's do not).
				if so.Vias[z] > 0 {
					row = append(row, f1(float64(s.Vias[z]-so.Vias[z])/float64(so.Vias[z])*100))
				} else {
					row = append(row, fmt.Sprintf("+%d", s.Vias[z]))
				}
				total += s.Vias[z]
			}
			deltaT := 0.0
			if totalO > 0 {
				deltaT = float64(total-totalO) / float64(totalO) * 100
			}
			row = append(row, f1(deltaT))
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Fig5 regenerates the per-layer wirelength distribution of the randomized
// nets for each variant (percent of that variant's randomized-net
// wirelength in each metal layer).
func Fig5(name string, cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	b, err := buildSuperblueBundle(name, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig. 5: wirelength by layer for randomized nets, %s (%% of variant total)", name),
		Columns: []string{"layout", "M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8", "M9", "M10"},
		Notes: []string{
			"expected shape: Original concentrated low; Lifted and Proposed hold the majority of this wiring in M8+",
		},
	}
	// The randomized net set in each variant: original routes the nets
	// directly; lifted/proposed route trunk+stub(+restore) entities.
	protNets := map[int]bool{}
	//smlint:ordered idempotent set inserts into protNets; membership is order-independent
	for pin := range b.Protected {
		protNets[b.Netlist.Gates[pin.Gate].Fanin[pin.Pin]] = true
		// true source net as well (proposed restores it through BEOL)
		protNets[randomize.TrueSourceNet(b.Netlist, pin)] = true
	}
	for _, v := range []struct {
		label string
		d     *layout.Design
	}{{"Original", b.Original}, {"Lifted", b.Lifted.Design}, {"Proposed", b.Proposed.Design}} {
		byLayer := make([]int64, cell.NumLayers+1)
		var total int64
		//smlint:ordered integer wirelength tallies commute exactly; visit order cannot change byLayer/total
		for id, rn := range v.d.Router.Nets() {
			netID, ok := v.d.NetIDOf(id)
			if !ok || !protNets[netID] {
				continue
			}
			for _, e := range rn.Edges {
				if e.IsVia() {
					continue
				}
				byLayer[e.A.Z] += int64(v.d.Grid.GCell)
				total += int64(v.d.Grid.GCell)
			}
		}
		row := []string{v.label}
		for z := 1; z <= cell.NumLayers; z++ {
			p := 0.0
			if total > 0 {
				p = float64(byLayer[z]) / float64(total) * 100
			}
			row = append(row, f1(p))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table3 regenerates the paper's Table 3: the crouting attack's vpins and
// expected candidate-list sizes per bounding box for each variant.
func Table3(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		Title:   fmt.Sprintf("Table 3: crouting attack, split M5, superblue scale 1/%d", cfg.SuperblueScale),
		Columns: []string{"design", "layout", "#vpins", "E[LS] 15", "E[LS] 30", "E[LS] 45", "match15", "match45"},
		Notes: []string{
			"paper (superblue1 original): 73110 vpins, E[LS] 4.63/13.25/23.46",
			"expected shape: Proposed has >= vpins and >= E[LS] than Original/Lifted (a larger, harder solution space)",
		},
	}
	for _, name := range bench.SuperblueNames() {
		b, err := buildSuperblueBundle(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, v := range []struct {
			label string
			d     *layout.Design
		}{{"Original", b.Original}, {"Lifted", b.Lifted.Design}, {"Proposed", b.Proposed.Design}} {
			sv, err := v.d.Split(5)
			if err != nil {
				return nil, err
			}
			res := crouting.Attack(v.d, sv, b.Netlist, crouting.DefaultOptions())
			t.Rows = append(t.Rows, []string{
				name, v.label, fmt.Sprintf("%d", res.NumVPins),
				f2(res.AvgListSize[15]), f2(res.AvgListSize[30]), f2(res.AvgListSize[45]),
				f2(res.MatchInList[15]), f2(res.MatchInList[45]),
			})
		}
	}
	return t, nil
}

// paperTable6 quotes the published ∆V67/∆V78 numbers.
var paperTable6 = map[string][4]float64{ // design -> blockage dV67,dV78, proposed dV67,dV78
	"superblue1":  {23.28, 65.07, 36.32, 49.22},
	"superblue5":  {12.74, 24.01, 55.12, 59.47},
	"superblue10": {64.85, 84.09, 62.09, 73.12},
	"superblue12": {16.99, 35.59, 79.34, 70.59},
	"superblue18": {24.73, 58.66, 61.87, 124.16},
}

// Table6 regenerates the paper's Table 6: additional V67/V78 vias of the
// routing-blockage defense [7] vs the proposed scheme (split after M6,
// restore in M8).
func Table6(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	lib := cell.NewNangate45Like()
	t := &Table{
		Title:   fmt.Sprintf("Table 6: ∆V67/∆V78 (%%) vs routing blockage, lift M8, superblue scale 1/%d", cfg.SuperblueScale),
		Columns: []string{"design", "blockage dV67", "blockage dV78", "proposed dV67", "proposed dV78", "paper(blk67/blk78/prop67/prop78)"},
		Notes: []string{
			"paper averages: blockage +28.5/+53.5, proposed +59.0/+75.3 — proposed pushes far more wiring into V67/V78",
		},
	}
	for _, name := range bench.SuperblueNames() {
		b, err := buildSuperblueBundle(name, cfg)
		if err != nil {
			return nil, err
		}
		util, _ := bench.SuperblueUtil(name)
		blocked, err := baselines.RoutingBlockage(b.Netlist, lib, baselines.Options{UtilPercent: util, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		so := b.Original.Router.ComputeStats()
		sb := blocked.Router.ComputeStats()
		sp := b.Proposed.Design.Router.ComputeStats()
		delta := func(s int64, z int) string {
			if so.Vias[z] == 0 {
				return fmt.Sprintf("+%d", s) // absolute when base is zero
			}
			return f1(float64(s-so.Vias[z]) / float64(so.Vias[z]) * 100)
		}
		ref := ""
		if p, ok := paperTable6[name]; ok {
			ref = fmt.Sprintf("%.0f/%.0f/%.0f/%.0f", p[0], p[1], p[2], p[3])
		}
		t.Rows = append(t.Rows, []string{
			name,
			delta(sb.Vias[6], 6), delta(sb.Vias[7], 7),
			delta(sp.Vias[6], 6), delta(sp.Vias[7], 7),
			ref,
		})
	}
	return t, nil
}

// SuperbluePPA reports the Sec 5.3 superblue overheads (5% budget, M8).
func SuperbluePPA(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		Title:   fmt.Sprintf("Sec 5.3: superblue PPA overheads (lift M8), scale 1/%d", cfg.SuperblueScale),
		Columns: []string{"design", "swaps", "area%", "power%", "delay%"},
		Notes:   []string{"paper: average ≈3.5% power, ≈2.7% delay, zero area"},
	}
	lib := cell.NewNangate45Like()
	for _, name := range bench.SuperblueNames() {
		nl, err := bench.Superblue(name, cfg.SuperblueScale)
		if err != nil {
			return nil, err
		}
		util, _ := bench.SuperblueUtil(name)
		res, err := protectSuperblue(nl, lib, util, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", res.Swaps), pct(res.AreaOH), pct(res.PowerOH), pct(res.DelayOH),
		})
	}
	return t, nil
}

// protectSuperblue runs the budgeted flow with the paper's superblue
// settings: lift to M8, 5% PPA budget.
func protectSuperblue(nl *netlist.Netlist, lib *cell.Library, util int, cfg Config) (*flow.ProtectResult, error) {
	return flow.Protect(context.Background(), nl, lib, flow.Config{
		LiftLayer: 8, UtilPercent: util, Seed: cfg.Seed,
		PPABudgetPercent: 5, PatternWords: cfg.PatternWords,
	})
}
