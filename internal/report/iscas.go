package report

import (
	"context"
	"fmt"
	"math/rand"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/baselines"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/defense/randomize"
	"splitmfg/internal/flow"
	"splitmfg/internal/netlist"
	"splitmfg/internal/timing"
)

// Paper-published Table 4/5 values for side-by-side printing.
var paperTable4 = map[string][3]float64{ // benchmark -> original CCR/OER/HD
	"c432": {92.4, 75.4, 23.4}, "c880": {100, 0, 0}, "c1355": {95.4, 59.5, 2.4},
	"c1908": {97.5, 52.3, 4.3}, "c2670": {86.3, 99.9, 7}, "c3540": {88.2, 95.4, 18.2},
	"c5315": {93.5, 98.7, 4.3}, "c6288": {97.8, 36.8, 3}, "c7552": {97.8, 69.5, 1.6},
}

// table4Benchmarks is the paper's Table 4/5 set (ISCAS-85 without c1355's
// sibling c499; nine circuits).
func table4Benchmarks(cfg Config) []string {
	if len(cfg.ISCASSubset) > 0 {
		return cfg.ISCASSubset
	}
	return bench.ISCASNames()
}

// SecurityRow is one benchmark's attack outcome for one defense variant.
type SecurityRow struct {
	Benchmark string
	Variant   string
	CCR       float64 // percent
	OER       float64 // percent
	HD        float64 // percent
	Frags     int
}

// iscasVariantDesign builds the named defense variant for one benchmark and
// returns the design to attack plus the protected-pin filter (nil = score
// all crossing nets) and the netlist the attacker wants.
func iscasVariantDesign(name, variant string, lib *cell.Library, cfg Config) (*flow.ProtectResult, *SecurityRow, map[netlist.PinRef]bool, error) {
	nl, err := bench.ISCAS85(name)
	if err != nil {
		return nil, nil, nil, err
	}
	row := &SecurityRow{Benchmark: name, Variant: variant}
	bopt := baselines.Options{UtilPercent: 70, Seed: cfg.Seed}
	copt := correction.Options{LiftLayer: 6, UtilPercent: 70, Seed: cfg.Seed}
	switch variant {
	case "original":
		d, err := correction.BuildOriginal(nl, lib, copt)
		if err != nil {
			return nil, nil, nil, err
		}
		return &flow.ProtectResult{Baseline: d}, row, nil, nil
	case "placement-perturbation":
		d, err := baselines.PlacementPerturbation(nl, lib, bopt)
		if err != nil {
			return nil, nil, nil, err
		}
		return &flow.ProtectResult{Baseline: d}, row, nil, nil
	case "random", "g-color", "g-type1", "g-type2":
		strat := map[string]baselines.SenguptaStrategy{
			"random": baselines.Random, "g-color": baselines.GColor,
			"g-type1": baselines.GType1, "g-type2": baselines.GType2,
		}[variant]
		d, err := baselines.Sengupta(nl, lib, strat, bopt)
		if err != nil {
			return nil, nil, nil, err
		}
		return &flow.ProtectResult{Baseline: d}, row, nil, nil
	case "pin-swapping":
		d, _, err := baselines.PinSwapping(nl, lib, bopt)
		if err != nil {
			return nil, nil, nil, err
		}
		return &flow.ProtectResult{Baseline: d}, row, nil, nil
	case "routing-perturbation":
		d, err := baselines.RoutingPerturbation(nl, lib, bopt)
		if err != nil {
			return nil, nil, nil, err
		}
		return &flow.ProtectResult{Baseline: d}, row, nil, nil
	case "synergistic":
		d, err := baselines.Synergistic(nl, lib, bopt)
		if err != nil {
			return nil, nil, nil, err
		}
		return &flow.ProtectResult{Baseline: d}, row, nil, nil
	case "proposed":
		res, err := flow.Protect(context.Background(), nl, lib, flow.Config{
			LiftLayer: 6, UtilPercent: 70, Seed: cfg.Seed,
			PPABudgetPercent: 20, PatternWords: cfg.PatternWords,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		return res, row, res.Protected.ProtectedSinks(), nil
	default:
		return nil, nil, nil, fmt.Errorf("report: unknown variant %q", variant)
	}
}

// SecurityStudy attacks one variant across the configured benchmarks.
func SecurityStudy(variant string, cfg Config) ([]SecurityRow, error) {
	cfg = cfg.WithDefaults()
	lib := cell.NewNangate45Like()
	var rows []SecurityRow
	for _, name := range table4Benchmarks(cfg) {
		nl, err := bench.ISCAS85(name)
		if err != nil {
			return nil, err
		}
		res, row, filter, err := iscasVariantDesign(name, variant, lib, cfg)
		if err != nil {
			return nil, err
		}
		d := res.Baseline
		if variant == "proposed" {
			d = res.Protected.Design
		}
		opt := flow.EvalOptions{
			SplitLayers: []int{3, 4, 5}, OnlyPins: filter, Seed: cfg.Seed, PatternWords: cfg.PatternWords,
		}
		sec, err := flow.EvaluateSecurity(context.Background(), d, nl, opt)
		if err != nil {
			return nil, err
		}
		rep := sec.Report(name, opt)
		row.CCR = rep.CCRPercent
		row.OER = rep.OERPercent
		row.HD = rep.HDPercent
		row.Frags = rep.Fragments
		rows = append(rows, *row)
	}
	return rows, nil
}

// Table4 regenerates the paper's Table 4: the network-flow attack against
// original layouts, placement-perturbation defenses, and the proposed
// scheme, averaged over splits after M3/M4/M5.
func Table4(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	variants := []string{"original", "placement-perturbation", "random", "g-color", "g-type1", "g-type2", "proposed"}
	t := &Table{
		Title:   "Table 4: CCR/OER/HD (%) vs placement-centric defenses, split averaged over M3/M4/M5",
		Columns: []string{"bench", "variant", "CCR", "OER", "HD", "frags", "paper(orig CCR/OER/HD)"},
		Notes: []string{
			"paper column quotes the published Original-layout numbers; published Proposed is CCR=0, OER=99.9, HD=40.4 avg",
			"absolute CCRs are lower than the paper's (synthetic netlists carry a weaker proximity signal); the ordering original >> defended and proposed ≈ 0 is the reproduced claim",
		},
	}
	for _, v := range variants {
		rows, err := SecurityStudy(v, cfg)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			ref := ""
			if p, ok := paperTable4[r.Benchmark]; ok && v == "original" {
				ref = fmt.Sprintf("%.1f/%.1f/%.1f", p[0], p[1], p[2])
			}
			if v == "proposed" {
				ref = "0/99.9/≈40"
			}
			t.Rows = append(t.Rows, []string{
				r.Benchmark, r.Variant, f1(r.CCR), f1(r.OER), f1(r.HD),
				fmt.Sprintf("%d", r.Frags), ref,
			})
		}
	}
	return t, nil
}

// Table5 regenerates the paper's Table 5: routing-centric defenses.
func Table5(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	variants := []string{"original", "pin-swapping", "routing-perturbation", "synergistic", "proposed"}
	t := &Table{
		Title:   "Table 5: CCR/OER/HD (%) vs routing-centric defenses, split averaged over M3/M4/M5",
		Columns: []string{"bench", "variant", "CCR", "OER", "HD", "frags"},
		Notes: []string{
			"paper averages: original 94.3/65.3/7.1, pin swapping 88.1/-/33.4, routing perturbation 72.4/99.9/28.9, synergistic 20.8/-/28.9, proposed 0/99.9/40.4",
		},
	}
	for _, v := range variants {
		rows, err := SecurityStudy(v, cfg)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{
				r.Benchmark, r.Variant, f1(r.CCR), f1(r.OER), f1(r.HD), fmt.Sprintf("%d", r.Frags),
			})
		}
	}
	return t, nil
}

// PPARow carries Fig. 6 / Sec 5.3 data for one benchmark.
type PPARow struct {
	Benchmark        string
	Swaps            int
	PowerOH, DelayOH float64 // percent
	AreaOH           float64
	NaivePowerOH     float64
	NaiveDelayOH     float64
}

// Fig6PPA regenerates Fig. 6 and the Sec.-5.3 PPA discussion for ISCAS-85:
// area/power/delay overheads of the proposed scheme (vs original layouts)
// next to the naive-lifting control on the same protected-net set.
func Fig6PPA(cfg Config) (*Table, []PPARow, error) {
	cfg = cfg.WithDefaults()
	lib := cell.NewNangate45Like()
	t := &Table{
		Title:   "Fig. 6 / Sec 5.3: PPA overheads on ISCAS-85 (20% budget, lift M6)",
		Columns: []string{"bench", "swaps", "area%", "power%", "delay%", "naive power%", "naive delay%"},
		Notes: []string{
			"paper: zero area cost; ISCAS-85 average ≈11.5% power, ≈10% delay; proposed ≈3.4%/2.6% above naive lifting",
		},
	}
	var rows []PPARow
	var sumP, sumD, sumNP, sumND float64
	for _, name := range table4Benchmarks(cfg) {
		nl, err := bench.ISCAS85(name)
		if err != nil {
			return nil, nil, err
		}
		res, err := flow.Protect(context.Background(), nl, lib, flow.Config{
			LiftLayer: 6, UtilPercent: 70, Seed: cfg.Seed, PPABudgetPercent: 20,
		})
		if err != nil {
			return nil, nil, err
		}
		// Naive lifting on the same sinks.
		sinks := correction.SortedPins(res.Protected.ProtectedSinks())
		naive, err := correction.BuildNaiveLifted(nl, sinks, lib,
			correction.Options{LiftLayer: 6, UtilPercent: 70, Seed: cfg.Seed})
		if err != nil {
			return nil, nil, err
		}
		nppa, err := timing.AnalyzeRestored(naive.Design, nl, naive.Design.Masters, lib)
		if err != nil {
			return nil, nil, err
		}
		_, npOH, ndOH := nppa.Overhead(res.BasePPA)
		row := PPARow{
			Benchmark: name, Swaps: res.Swaps,
			PowerOH: res.PowerOH, DelayOH: res.DelayOH, AreaOH: res.AreaOH,
			NaivePowerOH: npOH, NaiveDelayOH: ndOH,
		}
		rows = append(rows, row)
		sumP += row.PowerOH
		sumD += row.DelayOH
		sumNP += row.NaivePowerOH
		sumND += row.NaiveDelayOH
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", row.Swaps), pct(row.AreaOH),
			pct(row.PowerOH), pct(row.DelayOH), pct(row.NaivePowerOH), pct(row.NaiveDelayOH),
		})
	}
	n := float64(len(rows))
	if n > 0 {
		t.Rows = append(t.Rows, []string{"average", "", "0.0%", pct(sumP / n), pct(sumD / n), pct(sumNP / n), pct(sumND / n)})
	}
	return t, rows, nil
}

// AblationSwapBudget measures security and PPA as a function of the swap
// budget (DESIGN.md ablation: swap-until-OER vs fixed counts).
func AblationSwapBudget(name string, budgets []int, cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	lib := cell.NewNangate45Like()
	nl, err := bench.ISCAS85(name)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Ablation: swap budget on %s (lift M6)", name),
		Columns: []string{"maxSwaps", "swaps", "OER%", "CCR%", "HD%", "power%", "delay%"},
	}
	copt := correction.Options{LiftLayer: 6, UtilPercent: 70, Seed: cfg.Seed}
	baseline, err := correction.BuildOriginal(nl, lib, copt)
	if err != nil {
		return nil, err
	}
	basePPA, err := timing.AnalyzeDesign(baseline, lib)
	if err != nil {
		return nil, err
	}
	for _, b := range budgets {
		rng := rand.New(rand.NewSource(cfg.Seed))
		r, err := randomize.Randomize(nl, rng, randomize.Options{MaxSwaps: b, TargetOER: 2})
		if err != nil {
			return nil, err
		}
		p, err := correction.BuildProtected(nl, r, lib, copt)
		if err != nil {
			return nil, err
		}
		sec, err := flow.EvaluateSecurity(context.Background(), p.Design, nl, flow.EvalOptions{
			SplitLayers: []int{3, 4, 5}, OnlyPins: p.ProtectedSinks(), Seed: cfg.Seed, PatternWords: cfg.PatternWords,
		})
		if err != nil {
			return nil, err
		}
		ppa, err := timing.AnalyzeRestored(p.Design, nl, p.Design.Masters, lib)
		if err != nil {
			return nil, err
		}
		_, pOH, dOH := ppa.Overhead(basePPA)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", b), fmt.Sprintf("%d", len(r.Swaps)), f1(r.OER * 100),
			f1(sec.CCR * 100), f1(sec.HD * 100), pct(pOH), pct(dOH),
		})
	}
	return t, nil
}
