package crouting

import (
	"math"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"
)

func buildSuperblueLike(t *testing.T) (*netlist.Netlist, *layout.Design) {
	t.Helper()
	nl, err := bench.Superblue("superblue18", 500)
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	util, _ := bench.SuperblueUtil("superblue18")
	d, err := correction.BuildOriginal(nl, lib, correction.Options{UtilPercent: util, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return nl, d
}

func TestCroutingBasics(t *testing.T) {
	nl, d := buildSuperblueLike(t)
	sv, err := d.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	res := Attack(d, sv, nl, DefaultOptions())
	if res.NumVPins != len(sv.VPins) {
		t.Fatalf("vpins %d != %d", res.NumVPins, len(sv.VPins))
	}
	if res.NumVPins == 0 {
		t.Skip("no vpins at this split for this seed")
	}
	// E[LS] must grow with the bounding box.
	if res.AvgListSize[15] > res.AvgListSize[30] || res.AvgListSize[30] > res.AvgListSize[45] {
		t.Fatalf("E[LS] not monotone: %v", res.AvgListSize)
	}
	// Match-in-list must also grow (or stay equal) with the box.
	if res.MatchInList[15] > res.MatchInList[30]+1e-9 || res.MatchInList[30] > res.MatchInList[45]+1e-9 {
		t.Fatalf("match-in-list not monotone: %v", res.MatchInList)
	}
}

func TestCroutingEmptyView(t *testing.T) {
	nl, d := buildSuperblueLike(t)
	sv := &layout.SplitView{Layer: 4, ByRoute: map[int][]int{}}
	res := Attack(d, sv, nl, DefaultOptions())
	if res.NumVPins != 0 {
		t.Fatal("vpins on empty view")
	}
}

func TestCroutingCustomBoxes(t *testing.T) {
	nl, d := buildSuperblueLike(t)
	sv, err := d.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	res := Attack(d, sv, nl, Options{BBoxes: []int{5}})
	if _, ok := res.AvgListSize[5]; !ok {
		t.Fatal("custom bbox missing from result")
	}
	// Zero options default to the paper's three boxes.
	res = Attack(d, sv, nl, Options{})
	for _, b := range []int{15, 30, 45} {
		if _, ok := res.AvgListSize[b]; !ok {
			t.Fatalf("default bbox %d missing", b)
		}
	}
}

func TestDirectionFilterShrinksLists(t *testing.T) {
	nl, d := buildSuperblueLike(t)
	sv, err := d.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.VPins) == 0 {
		t.Skip("no vpins")
	}
	withDir := Attack(d, sv, nl, Options{BBoxes: []int{30}, UseDirection: true})
	noDir := Attack(d, sv, nl, Options{BBoxes: []int{30}, UseDirection: false})
	if withDir.AvgListSize[30] > noDir.AvgListSize[30]+1e-9 {
		t.Fatalf("direction filter grew lists: %v vs %v", withDir.AvgListSize[30], noDir.AvgListSize[30])
	}
}

func TestSolutionSpaceLog10(t *testing.T) {
	// Paper footnote: 1.4^500 ≈ 1.16e73.
	got := SolutionSpaceLog10(1.4, 500)
	if math.Abs(got-73) > 1 {
		t.Fatalf("log10(1.4^500) = %v, want ≈73", got)
	}
	if SolutionSpaceLog10(0.5, 100) != 0 || SolutionSpaceLog10(2, 0) != 0 {
		t.Fatal("degenerate cases must be 0")
	}
}
