// Package crouting implements a routing-centric attack in the style of
// Magaña, Shi, Davoodi, "Are proximity attacks a threat to the security of
// split manufacturing of integrated circuits?" (ICCAD 2016) — the attack
// the paper uses on the superblue suite (their "crouting" variant).
//
// Unlike the network-flow attack, crouting does not output a netlist; it
// confines the solution space: for every vpin it builds a candidate list
// of possible partner fragments found within an expanded bounding box
// around the vpin's dangling wire. The reported metrics are the paper's
// Table 3 columns: the number of vpins, the expected candidate-list size
// E[LS] per bounding-box size, and the match-in-list rate (how often the
// true partner is actually in the list — when it is not, no downstream
// attack can ever recover that net).
package crouting

import (
	"math"

	"splitmfg/internal/layout"
	"splitmfg/internal/metrics"
	"splitmfg/internal/netlist"
)

// Options tunes the attack.
type Options struct {
	BBoxes       []int // candidate bounding-box half-widths in gcells (paper: 15, 30, 45)
	UseDirection bool  // extend the box only toward the dangling direction
}

// DefaultOptions mirrors the paper's Table 3 setup.
func DefaultOptions() Options {
	return Options{BBoxes: []int{15, 30, 45}, UseDirection: true}
}

// Result aggregates the crouting metrics per bounding-box size.
type Result struct {
	NumVPins    int
	AvgListSize map[int]float64 // bbox -> E[LS]
	MatchInList map[int]float64 // bbox -> fraction with true partner in list
}

// Attack runs the candidate-list construction over a split view. ref (the
// original netlist) is used only for the match-in-list ground-truth metric;
// the candidate lists themselves are FEOL-only.
func Attack(d *layout.Design, sv *layout.SplitView, ref *netlist.Netlist, opt Options) Result {
	if len(opt.BBoxes) == 0 {
		opt.BBoxes = []int{15, 30, 45}
	}
	res := Result{
		NumVPins:    len(sv.VPins),
		AvgListSize: map[int]float64{},
		MatchInList: map[int]float64{},
	}
	if len(sv.VPins) == 0 {
		return res
	}
	// Bucket vpins by gcell for range queries.
	type key struct{ x, y int }
	buckets := map[key][]int{}
	for i, vp := range sv.VPins {
		buckets[key{vp.Node.X, vp.Node.Y}] = append(buckets[key{vp.Node.X, vp.Node.Y}], i)
	}
	// Ground truth: fragment -> set of true partner fragments.
	truth := metrics.TrueAssignment(d, sv, ref)
	partners := map[int]map[int]bool{}
	addPartner := func(a, b int) {
		if partners[a] == nil {
			partners[a] = map[int]bool{}
		}
		partners[a][b] = true
	}
	for sink, drv := range truth {
		if drv >= 0 {
			addPartner(sink, drv)
			addPartner(drv, sink)
		}
	}

	for _, b := range opt.BBoxes {
		var totalList int
		var withPartner, matched int
		for i := range sv.VPins {
			vp := &sv.VPins[i]
			loX, hiX := vp.Node.X-b, vp.Node.X+b
			loY, hiY := vp.Node.Y-b, vp.Node.Y+b
			if opt.UseDirection {
				// The dangling wire points toward the partner: shrink the
				// box behind the vpin to half depth.
				switch vp.Dir {
				case layout.DirEast:
					loX = vp.Node.X - b/4
				case layout.DirWest:
					hiX = vp.Node.X + b/4
				case layout.DirNorth:
					loY = vp.Node.Y - b/4
				case layout.DirSouth:
					hiY = vp.Node.Y + b/4
				}
			}
			cands := map[int]bool{} // candidate fragment IDs
			for x := loX; x <= hiX; x++ {
				for y := loY; y <= hiY; y++ {
					for _, j := range buckets[key{x, y}] {
						other := &sv.VPins[j]
						if other.Frag == vp.Frag {
							continue // same fragment: not a reconnection
						}
						cands[other.Frag] = true
					}
				}
			}
			totalList += len(cands)
			if ps := partners[vp.Frag]; len(ps) > 0 {
				withPartner++
				hit := false
				for p := range ps {
					if cands[p] {
						hit = true
						break
					}
				}
				if hit {
					matched++
				}
			}
		}
		res.AvgListSize[b] = float64(totalList) / float64(len(sv.VPins))
		if withPartner > 0 {
			res.MatchInList[b] = float64(matched) / float64(withPartner)
		}
	}
	return res
}

// SolutionSpaceLog10 estimates log10 of the number of candidate netlists
// remaining after the attack, as E[LS]^#two-pin-nets (the paper's Sec. 2
// footnote arithmetic): log10(LS^n) = n·log10(LS).
func SolutionSpaceLog10(avgListSize float64, nets int) float64 {
	if avgListSize <= 1 || nets <= 0 {
		return 0
	}
	return float64(nets) * math.Log10(avgListSize)
}
