package proximity

import (
	"context"
	"fmt"

	"splitmfg/internal/heapx"
)

// MaxEdgeCapacity is the largest capacity a single MCMF edge may carry.
// The bottleneck search in run starts its scan at this value, so a larger
// capacity could never be pushed anyway — and int32(x) for x beyond
// MaxInt32 would wrap silently. Graph construction validates against it.
const MaxEdgeCapacity = 1 << 30

// CapacityError reports an edge capacity outside [0, MaxEdgeCapacity]
// at graph-build time. Full-size superblue fan-out counts can approach
// the int32 range; failing typed and early beats wrapping silently into
// a negative capacity the solver would treat as a saturated edge.
type CapacityError struct {
	Capacity int
}

func (e *CapacityError) Error() string {
	return fmt.Sprintf("proximity: mcmf edge capacity %d outside [0, %d]", e.Capacity, MaxEdgeCapacity)
}

// mcmf is a small min-cost max-flow solver (successive shortest paths with
// Johnson potentials) used to solve the attacker's joint assignment of sink
// fragments to driver fragments — the "network flow" in the network-flow
// attack.
type mcmf struct {
	n     int
	head  []int
	to    []int
	next  []int
	cap   []int32
	cost  []int64
	edges int
}

func newMCMF(n int) *mcmf {
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	return &mcmf{n: n, head: h}
}

// reserve pre-sizes the edge arrays for `edges` forward edges (each brings a
// residual twin), so graph build appends never reallocate.
func (g *mcmf) reserve(edges int) {
	n := 2 * edges
	g.to = make([]int, 0, n)
	g.cap = make([]int32, 0, n)
	g.cost = make([]int64, 0, n)
	g.next = make([]int, 0, n)
}

// addEdge inserts a directed edge u->v and its residual twin, returning the
// forward edge index. Callers with capacities of unvalidated magnitude go
// through addEdgeInt instead.
//
//smlint:hot
func (g *mcmf) addEdge(u, v int, capacity int32, cost int64) int {
	id := g.edges
	g.to = append(g.to, v)
	g.cap = append(g.cap, capacity)
	g.cost = append(g.cost, cost)
	g.next = append(g.next, g.head[u])
	g.head[u] = id
	g.edges++
	g.to = append(g.to, u)
	g.cap = append(g.cap, 0)
	g.cost = append(g.cost, -cost)
	g.next = append(g.next, g.head[v])
	g.head[v] = id + 1
	g.edges++
	return id
}

// addEdgeInt validates an int capacity and inserts the edge, returning a
// *CapacityError for capacities int32 truncation would corrupt (negative
// after wrap) or the bottleneck scan would never honor (> MaxEdgeCapacity).
func (g *mcmf) addEdgeInt(u, v int, capacity int, cost int64) (int, error) {
	if capacity < 0 || capacity > MaxEdgeCapacity {
		return -1, &CapacityError{Capacity: capacity}
	}
	return g.addEdge(u, v, int32(capacity), cost), nil
}

// mcmfItem is a Dijkstra priority-queue entry: Pri is the reduced-cost
// distance, Value the node. heapx gives a typed slice heap — no
// interface{} boxing inside the loop that dominates the flow solve.
type mcmfItem = heapx.Item[int]

// run pushes flow from s to t until exhaustion, returning total flow and
// cost. All edge costs must be non-negative.
//
// The context is checked once per augmenting-path iteration (one Dijkstra
// sweep each), so a single large solve — a full-size superblue split can
// run thousands of iterations — stops promptly on cancellation instead of
// running to completion; the flow pushed so far and ctx.Err() are
// returned.
//
//smlint:hot
func (g *mcmf) run(ctx context.Context, s, t int) (flow int32, cost int64, err error) {
	const inf = int64(1) << 62
	pot := make([]int64, g.n)
	dist := make([]int64, g.n)
	prevEdge := make([]int, g.n)
	inTree := make([]bool, g.n)
	// One heap buffer for every augmenting iteration — a large solve runs
	// thousands of Dijkstra sweeps and regrowing the frontier each sweep
	// shows up in heap profiles.
	q := make([]mcmfItem, 0, g.n)
	for {
		if err := ctx.Err(); err != nil {
			return flow, cost, err
		}
		for i := range dist {
			dist[i] = inf
			inTree[i] = false
			prevEdge[i] = -1
		}
		dist[s] = 0
		q = append(q[:0], mcmfItem{Pri: 0, Value: s})
		for len(q) > 0 {
			var it mcmfItem
			q, it = heapx.Pop(q)
			u := it.Value
			if inTree[u] {
				continue
			}
			inTree[u] = true
			for e := g.head[u]; e >= 0; e = g.next[e] {
				if g.cap[e] <= 0 {
					continue
				}
				v := g.to[e]
				nd := dist[u] + g.cost[e] + pot[u] - pot[v]
				if nd < dist[v] {
					dist[v] = nd
					prevEdge[v] = e
					q = heapx.Push(q, mcmfItem{Pri: nd, Value: v})
				}
			}
		}
		if dist[t] >= inf {
			return flow, cost, nil
		}
		for i := range pot {
			if dist[i] < inf {
				pot[i] += dist[i]
			}
		}
		// Bottleneck along the path.
		var push int32 = 1 << 30
		for v := t; v != s; {
			e := prevEdge[v]
			if g.cap[e] < push {
				push = g.cap[e]
			}
			v = g.to[e^1]
		}
		for v := t; v != s; {
			e := prevEdge[v]
			g.cap[e] -= push
			g.cap[e^1] += push
			cost += int64(push) * g.cost[e]
			v = g.to[e^1]
		}
		flow += push
	}
}
