package proximity

import "splitmfg/internal/heapx"

// mcmf is a small min-cost max-flow solver (successive shortest paths with
// Johnson potentials) used to solve the attacker's joint assignment of sink
// fragments to driver fragments — the "network flow" in the network-flow
// attack.
type mcmf struct {
	n     int
	head  []int
	to    []int
	next  []int
	cap   []int32
	cost  []int64
	edges int
}

func newMCMF(n int) *mcmf {
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	return &mcmf{n: n, head: h}
}

// addEdge inserts a directed edge u->v and its residual twin, returning the
// forward edge index.
func (g *mcmf) addEdge(u, v int, capacity int32, cost int64) int {
	id := g.edges
	g.to = append(g.to, v)
	g.cap = append(g.cap, capacity)
	g.cost = append(g.cost, cost)
	g.next = append(g.next, g.head[u])
	g.head[u] = id
	g.edges++
	g.to = append(g.to, u)
	g.cap = append(g.cap, 0)
	g.cost = append(g.cost, -cost)
	g.next = append(g.next, g.head[v])
	g.head[v] = id + 1
	g.edges++
	return id
}

// mcmfItem is a Dijkstra priority-queue entry: Pri is the reduced-cost
// distance, Value the node. heapx gives a typed slice heap — no
// interface{} boxing inside the loop that dominates the flow solve.
type mcmfItem = heapx.Item[int]

// run pushes flow from s to t until exhaustion, returning total flow and
// cost. All edge costs must be non-negative.
func (g *mcmf) run(s, t int) (flow int32, cost int64) {
	const inf = int64(1) << 62
	pot := make([]int64, g.n)
	dist := make([]int64, g.n)
	prevEdge := make([]int, g.n)
	inTree := make([]bool, g.n)
	for {
		for i := range dist {
			dist[i] = inf
			inTree[i] = false
			prevEdge[i] = -1
		}
		dist[s] = 0
		q := []mcmfItem{{Pri: 0, Value: s}}
		for len(q) > 0 {
			var it mcmfItem
			q, it = heapx.Pop(q)
			u := it.Value
			if inTree[u] {
				continue
			}
			inTree[u] = true
			for e := g.head[u]; e >= 0; e = g.next[e] {
				if g.cap[e] <= 0 {
					continue
				}
				v := g.to[e]
				nd := dist[u] + g.cost[e] + pot[u] - pot[v]
				if nd < dist[v] {
					dist[v] = nd
					prevEdge[v] = e
					q = heapx.Push(q, mcmfItem{Pri: nd, Value: v})
				}
			}
		}
		if dist[t] >= inf {
			return flow, cost
		}
		for i := range pot {
			if dist[i] < inf {
				pot[i] += dist[i]
			}
		}
		// Bottleneck along the path.
		var push int32 = 1 << 30
		for v := t; v != s; {
			e := prevEdge[v]
			if g.cap[e] < push {
				push = g.cap[e]
			}
			v = g.to[e^1]
		}
		for v := t; v != s; {
			e := prevEdge[v]
			g.cap[e] -= push
			g.cap[e^1] += push
			cost += int64(push) * g.cost[e]
			v = g.to[e^1]
		}
		flow += push
	}
}
