// Package proximity implements a network-flow proximity attack in the
// style of Wang et al., "The cat and mouse in split manufacturing"
// (DAC 2016) — the attack the paper uses on ISCAS-85 layouts.
//
// Given the FEOL view of a split layout (layout.SplitView), the attacker
// must reconnect every pure-sink fragment to some driver fragment. The
// attack exploits five published hints:
//
//  1. physical proximity — gates to be connected are placed close, so the
//     nearest compatible driver is the likeliest partner;
//  2. avoidance of combinational loops — assignments that would close a
//     combinational cycle in the recovered netlist are excluded;
//  3. load-capacitance constraints — a driver only accepts as many sinks
//     as its drive strength supports;
//  4. direction of dangling wires — the open FEOL stub points toward its
//     BEOL partner;
//  5. timing constraints — pairings that would create paths far deeper
//     than the design's level budget are penalized.
//
// The joint assignment is solved as a min-cost max-flow over a bipartite
// candidate graph (k-nearest drivers per sink), with loop avoidance
// enforced greedily in flow order, exactly the engineering shape of the
// published attack.
package proximity

import (
	"context"
	"sort"

	"splitmfg/internal/geom"
	"splitmfg/internal/layout"
	"splitmfg/internal/metrics"
	"splitmfg/internal/netlist"
)

// Options tunes the attack.
type Options struct {
	Candidates   int     // drivers considered per sink (k nearest); 0 = 24
	DirPenalty   float64 // cost multiplier when dangling directions disagree
	LoadAware    bool    // enforce drive-strength fanout capacities
	LoopAware    bool    // forbid combinational loops
	TimingAware  bool    // penalize level-budget violations
	UseDirection bool    // use dangling-wire direction hint
}

// DefaultOptions enables all five hints, as the paper assumes.
func DefaultOptions() Options {
	return Options{
		Candidates:   24,
		DirPenalty:   4.0,
		LoadAware:    true,
		LoopAware:    true,
		TimingAware:  true,
		UseDirection: true,
	}
}

// Result is the attack outcome.
type Result struct {
	Assignment metrics.Assignment
	Candidates int     // total candidate edges considered
	AvgCands   float64 // candidates per sink
}

// Attack recovers an assignment of sink fragments to driver fragments for
// the given split view. ref-free: only FEOL-visible information is used.
// The context is checked between per-sink candidate constructions and once
// per augmenting-path iteration inside the flow solve; on cancellation the
// (partial) result so far is returned alongside ctx.Err(). A non-nil error
// is also returned when a driver's load capacity would overflow the
// solver's int32 edge capacities (*CapacityError).
func Attack(ctx context.Context, d *layout.Design, sv *layout.SplitView, opt Options) (Result, error) {
	if opt.Candidates == 0 {
		opt.Candidates = 24
	}
	// Candidate drivers are fragments that both contain a source terminal
	// and have an open via to the BEOL; fragments without vpins are
	// complete nets that need no reconnection.
	var drivers []int
	for _, fid := range sv.DriverFrags() {
		if len(sv.Frags[fid].VPins) > 0 {
			drivers = append(drivers, fid)
		}
	}
	sinks := sv.SinkFrags()
	res := Result{Assignment: metrics.Assignment{}}
	if len(drivers) == 0 || len(sinks) == 0 {
		return res, nil
	}

	type dinfo struct {
		fid    int
		pt     geom.Point
		gate   int // -1 for PI
		capRem int // remaining sink slots (load constraint)
		dirs   []layout.Direction
	}
	dinfos := make([]dinfo, 0, len(drivers))
	for _, fid := range drivers {
		f := &sv.Frags[fid]
		// The anchor is the fragment's dangling-wire position (vpin
		// centroid): the missing BEOL piece of a net is short, so the open
		// via locations of true partners sit close together — the sharpest
		// published proximity signal.
		// The no-limit sentinel is the solver's capacity ceiling, so the
		// load-unaware path stays in validated int32 range by construction.
		di := dinfo{fid: fid, pt: sv.FragCenter(d, fid), gate: -1, capRem: MaxEdgeCapacity}
		for _, p := range f.Pins {
			if p.Role == layout.RoleDriver {
				di.gate = p.Gate
			}
		}
		if opt.LoadAware && di.gate >= 0 {
			m := d.Masters[di.gate]
			// Slots = how many typical input pins the driver can add on
			// top of the load it already drives within its own fragment.
			known := countSinkPins(f)
			slots := int(m.MaxCap/2.0) - known
			if slots > 2+2*m.Drive {
				slots = 2 + 2*m.Drive // realistic fanout ceiling per drive
			}
			if slots < 1 {
				slots = 1
			}
			di.capRem = slots
		}
		for _, vid := range f.VPins {
			di.dirs = append(di.dirs, sv.VPins[vid].Dir)
		}
		dinfos = append(dinfos, di)
	}

	// The FEOL-known netlist: connections inside driver fragments are
	// known; everything else is open. Loop checks run against this plus
	// the assignments made so far.
	known := d.Netlist.Clone()
	for _, fid := range sinks {
		for _, sp := range sv.Frags[fid].Pins {
			// Detach unknown sinks: point them at a fresh dummy PI so the
			// known netlist contains no assumption about them.
			if sp.Role == layout.RoleSink {
				dummy := known.AddPI("open_" + known.Gates[sp.Ref.Gate].Name)
				_ = known.RewirePin(sp.Ref.Gate, sp.Ref.Pin, dummy)
			}
		}
	}
	// Per-fragment first cell sink, precomputed once: the timing hint asks
	// for it per sink×driver pair and the loop filter per candidate edge —
	// allocating a pin slice (SinkPins) on each ask dominated the attack's
	// heap profile.
	sinkGate := make([]int, len(sv.Frags))
	for fid := range sinkGate {
		sinkGate[fid] = -1
	}
	for _, fid := range sinks {
		for _, p := range sv.Frags[fid].Pins {
			if p.Role == layout.RoleSink {
				sinkGate[fid] = p.Ref.Gate
				break
			}
		}
	}
	levels, _ := known.Levels()
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}

	// Candidate edges: k nearest drivers per sink with hint-weighted costs.
	type cand struct {
		sink, didx int
		cost       float64
	}
	all := make([]cand, 0, len(sinks)*opt.Candidates)
	type scored struct {
		didx int
		cost float64
	}
	// Per-sink scratch, reused across the loop: the scored list is
	// len(dinfos) every iteration and the direction list is tiny.
	scBuf := make([]scored, 0, len(dinfos))
	var dirsBuf []layout.Direction
	for _, sfid := range sinks {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		spt := sv.FragCenter(d, sfid)
		sdirs := appendFragDirs(dirsBuf[:0], sv, sfid)
		dirsBuf = sdirs
		sc := scBuf[:0]
		for di := range dinfos {
			dd := &dinfos[di]
			cost := float64(spt.Manhattan(dd.pt)) + 1
			if opt.UseDirection {
				if !dirsCompatible(dd.dirs, dd.pt, spt) {
					cost *= opt.DirPenalty
				}
				if !dirsCompatible(sdirs, spt, dd.pt) {
					cost *= opt.DirPenalty
				}
			}
			if opt.TimingAware && dd.gate >= 0 {
				// Deep-driver feeding deep-sink beyond the level budget is
				// suspicious under a fixed clock.
				sg := sinkGate[sfid]
				if sg >= 0 && levels != nil && levels[dd.gate]+1+(maxLevel-levels[sg]) > maxLevel+4 {
					cost *= 1.3
				}
			}
			sc = append(sc, scored{di, cost})
		}
		scBuf = sc
		sort.Slice(sc, func(a, b int) bool { return sc[a].cost < sc[b].cost })
		if len(sc) > opt.Candidates {
			sc = sc[:opt.Candidates]
		}
		for _, s := range sc {
			all = append(all, cand{sfid, s.didx, s.cost})
		}
		res.Candidates += len(sc)
	}
	res.AvgCands = float64(res.Candidates) / float64(len(sinks))

	// Joint assignment via min-cost max-flow: source -> driver (capacity =
	// load slots), driver -> sink candidate edges (capacity 1, proximity
	// cost), sink -> target (capacity 1). Statically loop-infeasible
	// candidates never enter the graph.
	sinkIdx := make([]int, len(sv.Frags))
	for i, sfid := range sinks {
		sinkIdx[sfid] = i
	}
	S := 0
	T := 1 + len(dinfos) + len(sinks)
	g := newMCMF(T + 1)
	g.reserve(len(dinfos) + len(all) + len(sinks))
	for di := range dinfos {
		capSlots := dinfos[di].capRem
		if !opt.LoadAware {
			capSlots = len(sinks)
		}
		// Validated insertion: a fan-out count beyond the solver's int32
		// range fails typed here instead of wrapping into a negative
		// capacity the flow would silently treat as saturated.
		if _, err := g.addEdgeInt(S, 1+di, capSlots, 0); err != nil {
			return res, err
		}
	}
	type edgeRef struct {
		id   int
		sink int
		didx int
		cost float64
	}
	erefs := make([]edgeRef, 0, len(all))
	for _, c := range all {
		dd := &dinfos[c.didx]
		if opt.LoopAware && dd.gate >= 0 {
			sg := sinkGate[c.sink]
			if sg >= 0 && wouldLoop(known, dd.gate, sg) {
				continue // statically infeasible
			}
		}
		id := g.addEdge(1+c.didx, 1+len(dinfos)+sinkIdx[c.sink], 1, int64(c.cost))
		erefs = append(erefs, edgeRef{id, c.sink, c.didx, c.cost})
	}
	for i := range sinks {
		g.addEdge(1+len(dinfos)+i, T, 1, 0)
	}
	if _, _, err := g.run(ctx, S, T); err != nil {
		return res, err
	}

	// Extract the flow assignment, then enforce dynamic loop-freedom in
	// cost order: cheap (confident) assignments commit first; any
	// assignment that would close a loop against the committed prefix is
	// re-matched greedily to its next-best loop-free candidate.
	sort.Slice(erefs, func(a, b int) bool {
		if erefs[a].cost != erefs[b].cost {
			return erefs[a].cost < erefs[b].cost
		}
		return erefs[a].sink < erefs[b].sink
	})
	assigned := make([]bool, len(sv.Frags))
	commit := func(sink, didx int) {
		assigned[sink] = true
		res.Assignment[sink] = dinfos[didx].fid
		if dinfos[didx].gate >= 0 {
			commitKnown(known, sv, sink, dinfos[didx].gate)
		}
	}
	feasible := func(sink, didx int) bool {
		if !opt.LoopAware || dinfos[didx].gate < 0 {
			return true
		}
		sg := sinkGate[sink]
		return sg < 0 || !wouldLoop(known, dinfos[didx].gate, sg)
	}
	for _, er := range erefs {
		if g.cap[er.id] != 0 || assigned[er.sink] {
			continue // not used by the flow, or sink already committed
		}
		if feasible(er.sink, er.didx) {
			commit(er.sink, er.didx)
		}
	}
	// Complete the assignment for any sink the flow or loop filter left
	// open, in candidate-cost order.
	for _, er := range erefs {
		if assigned[er.sink] {
			continue
		}
		if feasible(er.sink, er.didx) {
			commit(er.sink, er.didx)
		}
	}
	return res, nil
}

// appendFragDirs appends the dangling directions of a fragment's vpins to
// dst, which callers reuse across fragments.
//
//smlint:hot
func appendFragDirs(dst []layout.Direction, sv *layout.SplitView, fid int) []layout.Direction {
	for _, vid := range sv.Frags[fid].VPins {
		dst = append(dst, sv.VPins[vid].Dir)
	}
	return dst
}

// countSinkPins counts the sink-side terminals in the fragment without
// materializing the SinkPins slice.
//
//smlint:hot
func countSinkPins(f *layout.Fragment) int {
	n := 0
	for _, p := range f.Pins {
		if p.Role == layout.RoleSink || p.Role == layout.RolePO {
			n++
		}
	}
	return n
}

// dirsCompatible reports whether any dangling direction at `from` points
// roughly toward `to` (or no direction information exists).
//
//smlint:hot
func dirsCompatible(dirs []layout.Direction, from, to geom.Point) bool {
	if len(dirs) == 0 {
		return true
	}
	any := false
	for _, d := range dirs {
		switch d {
		case layout.DirNone:
			return true
		case layout.DirEast:
			any = any || to.X >= from.X
		case layout.DirWest:
			any = any || to.X <= from.X
		case layout.DirNorth:
			any = any || to.Y >= from.Y
		case layout.DirSouth:
			any = any || to.Y <= from.Y
		}
	}
	return any
}

// wouldLoop reports whether driving sinkGate from driverGate closes a
// combinational cycle in the attacker's current netlist.
//
//smlint:hot
func wouldLoop(known *netlist.Netlist, driverGate, sinkGate int) bool {
	if driverGate == sinkGate {
		return true
	}
	return known.PathExists(sinkGate, driverGate)
}

// commitKnown applies an assignment to the attacker's working netlist so
// subsequent loop checks see it.
//
//smlint:hot
func commitKnown(known *netlist.Netlist, sv *layout.SplitView, sinkFrag, driverGate int) {
	net := known.Gates[driverGate].Out
	for _, sp := range sv.Frags[sinkFrag].Pins {
		if sp.Role == layout.RoleSink {
			_ = known.RewirePin(sp.Ref.Gate, sp.Ref.Pin, net)
		}
	}
}
