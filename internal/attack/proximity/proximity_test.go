package proximity

import (
	"context"
	"math/rand"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/layout"
	"splitmfg/internal/metrics"
	"splitmfg/internal/place"
	"splitmfg/internal/route"
	"splitmfg/internal/sim"
)

func buildSplit(t testing.TB, name string, splitLayer int) (*layout.Design, *layout.SplitView) {
	t.Helper()
	nl, err := bench.ISCAS85(name)
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	masters, err := lib.Bind(nl)
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(nl, masters, place.Options{UtilPercent: 70, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := layout.NewDesign(nl, masters, p, route.Options{})
	if err := d.RouteAll(nil); err != nil {
		t.Fatal(err)
	}
	sv, err := d.Split(splitLayer)
	if err != nil {
		t.Fatal(err)
	}
	return d, sv
}

// mustAttack runs the attack and fails the test on any error — the
// uncancelled-context test call sites expect a complete run.
func mustAttack(t testing.TB, d *layout.Design, sv *layout.SplitView, opt Options) Result {
	t.Helper()
	res, err := Attack(context.Background(), d, sv, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAttackOriginalLayoutHighCCR(t *testing.T) {
	// On an unprotected layout the proximity attack must recover far more
	// than chance. The paper reports ~94% CCR with commercial layouts; our
	// synthetic netlists and laptop-grade placement carry a weaker
	// proximity signal (documented in EXPERIMENTS.md), so the bar here is
	// a strong relative result: an order of magnitude above the random
	// baseline of 1/#drivers, and at least half of c1908's fragments.
	d, sv := buildSplit(t, "c1908", 3)
	res := mustAttack(t, d, sv, DefaultOptions())
	ccr := metrics.CCR(d, sv, d.Netlist, res.Assignment)
	if ccr.Protected == 0 {
		t.Fatal("nothing to attack")
	}
	// Random-guess baseline is ~1/24 candidates ≈ 4%; require the attack
	// to beat it by >5x. (Absolute CCR on our synthetic substrate runs
	// 0.3–0.6 vs the paper's 0.94 on commercial layouts; see
	// EXPERIMENTS.md for the calibration discussion.)
	if ccr.CCR < 0.25 {
		t.Fatalf("attack too weak on original layout: CCR=%.2f (%d/%d)", ccr.CCR, ccr.Correct, ccr.Protected)
	}
	t.Logf("c1908 M3 split: CCR=%.2f over %d sink fragments, avg candidates %.1f", ccr.CCR, ccr.Protected, res.AvgCands)
}

func TestAttackCompleteAssignment(t *testing.T) {
	d, sv := buildSplit(t, "c432", 3)
	res := mustAttack(t, d, sv, DefaultOptions())
	for _, sf := range sv.SinkFrags() {
		if _, ok := res.Assignment[sf]; !ok {
			t.Fatalf("sink fragment %d left unassigned", sf)
		}
	}
}

func TestAttackRecoveredNetlistLowHD(t *testing.T) {
	d, sv := buildSplit(t, "c432", 3)
	res := mustAttack(t, d, sv, DefaultOptions())
	rec := metrics.RecoverNetlist(d, sv, res.Assignment)
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pats := sim.RandomPatterns(rng, d.Netlist.NumPIs(), 256)
	cmp, err := sim.Compare(d.Netlist, rec, pats, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 4: original layouts show single-digit..~23% HD. Anything
	// below 30% demonstrates the attack works on unprotected layouts.
	if cmp.HD > 0.30 {
		t.Fatalf("recovered netlist HD=%.2f too high for unprotected layout", cmp.HD)
	}
	t.Logf("c432 recovered: OER=%.3f HD=%.3f", cmp.OER, cmp.HD)
}

func TestAttackNoLoops(t *testing.T) {
	d, sv := buildSplit(t, "c880", 4)
	res := mustAttack(t, d, sv, DefaultOptions())
	rec := metrics.RecoverNetlist(d, sv, res.Assignment)
	if rec.HasCombLoop() {
		t.Fatal("loop-aware attack produced a combinational loop")
	}
}

func TestHintAblationDistanceOnlyWeaker(t *testing.T) {
	d, sv := buildSplit(t, "c1908", 3)
	full := mustAttack(t, d, sv, DefaultOptions())
	bare := mustAttack(t, d, sv, Options{Candidates: 24}) // distance only
	ccrFull := metrics.CCR(d, sv, d.Netlist, full.Assignment)
	ccrBare := metrics.CCR(d, sv, d.Netlist, bare.Assignment)
	// All-hints should be at least as good as distance-only (allow tiny
	// noise margin).
	if ccrFull.CCR+0.02 < ccrBare.CCR {
		t.Fatalf("hints hurt the attack: full=%.3f bare=%.3f", ccrFull.CCR, ccrBare.CCR)
	}
}

func TestAttackEmptyView(t *testing.T) {
	d, _ := buildSplit(t, "c432", 3)
	empty := &layout.SplitView{Layer: 3, ByRoute: map[int][]int{}}
	res := mustAttack(t, d, empty, DefaultOptions())
	if len(res.Assignment) != 0 {
		t.Fatal("assignment on empty view")
	}
}

func TestCandidateLimitRespected(t *testing.T) {
	d, sv := buildSplit(t, "c432", 3)
	res := mustAttack(t, d, sv, Options{Candidates: 5})
	nSinks := len(sv.SinkFrags())
	if nSinks > 0 && res.AvgCands > 5.0 {
		t.Fatalf("avg candidates %.1f exceeds limit 5", res.AvgCands)
	}
}

func BenchmarkAttackC880(b *testing.B) {
	d, sv := buildSplit(b, "c880", 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustAttack(b, d, sv, DefaultOptions())
	}
}
