package proximity

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// bigBipartite builds a dense synthetic assignment instance: `side` drivers
// and `side` sinks with every pairing available at a random cost, so the
// solve needs `side` augmenting-path iterations to saturate.
func bigBipartite(side int, seed int64) (g *mcmf, s, t int) {
	rng := rand.New(rand.NewSource(seed))
	s, t = 0, 1+2*side
	g = newMCMF(t + 1)
	for d := 0; d < side; d++ {
		g.addEdge(s, 1+d, 1, 0)
		for k := 0; k < side; k++ {
			g.addEdge(1+d, 1+side+k, 1, int64(rng.Intn(1000)+1))
		}
	}
	for k := 0; k < side; k++ {
		g.addEdge(1+side+k, t, 1, 0)
	}
	return g, s, t
}

// errAfterCtx is a context whose Err flips to Canceled after a fixed
// number of polls — a deterministic stand-in for "the caller cancelled
// while the solver was deep inside one large solve".
type errAfterCtx struct {
	context.Context
	polls, limit int
}

func (c *errAfterCtx) Err() error {
	c.polls++
	if c.polls > c.limit {
		return context.Canceled
	}
	return nil
}

func TestMCMFCancelledMidSolve(t *testing.T) {
	// 300 augmenting paths are needed; cancellation is observed on poll 4.
	// Before ctx was threaded into run, the solver only ever noticed
	// cancellation after full exhaustion.
	g, s, tt := bigBipartite(300, 1)
	ctx := &errAfterCtx{Context: context.Background(), limit: 3}
	flow, _, err := g.run(ctx, s, tt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run err = %v, want context.Canceled", err)
	}
	if flow != 3 {
		t.Fatalf("run pushed %d paths before observing cancellation, want 3", flow)
	}
}

func TestMCMFCancelledUpFrontReturnsImmediately(t *testing.T) {
	g, s, tt := bigBipartite(400, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	flow, _, err := g.run(ctx, s, tt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run err = %v, want context.Canceled", err)
	}
	if flow != 0 {
		t.Fatalf("pre-cancelled run pushed flow %d, want 0", flow)
	}
	// Generous bound: a full 400-path dense solve takes orders of
	// magnitude longer than one ctx check.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pre-cancelled run took %v", elapsed)
	}
}

func TestMCMFRunMatchesUncancelled(t *testing.T) {
	// Threading the context must not change the solve itself.
	ga, s, tt := bigBipartite(60, 3)
	gb, _, _ := bigBipartite(60, 3)
	fa, ca, err := ga.run(context.Background(), s, tt)
	if err != nil {
		t.Fatal(err)
	}
	fb, cb, err := gb.run(&errAfterCtx{Context: context.Background(), limit: 1 << 30}, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb || ca != cb {
		t.Fatalf("ctx-aware run diverged: flow %d/%d cost %d/%d", fa, fb, ca, cb)
	}
	if fa != 60 {
		t.Fatalf("dense bipartite instance should saturate: flow %d, want 60", fa)
	}
}

func TestAddEdgeIntRejectsOverflow(t *testing.T) {
	g := newMCMF(2)
	var capErr *CapacityError
	if _, err := g.addEdgeInt(0, 1, MaxEdgeCapacity+1, 0); !errors.As(err, &capErr) {
		t.Fatalf("capacity %d: err = %v, want *CapacityError", MaxEdgeCapacity+1, err)
	}
	if capErr.Capacity != MaxEdgeCapacity+1 {
		t.Fatalf("CapacityError.Capacity = %d, want %d", capErr.Capacity, MaxEdgeCapacity+1)
	}
	if _, err := g.addEdgeInt(0, 1, -1, 0); !errors.As(err, &capErr) {
		t.Fatalf("negative capacity: err = %v, want *CapacityError", err)
	}
	// int32 wrap-around magnitude — the silent-corruption case the guard
	// exists for: int32(1<<31) is negative.
	if _, err := g.addEdgeInt(0, 1, 1<<31, 0); !errors.As(err, &capErr) {
		t.Fatalf("capacity 1<<31: err = %v, want *CapacityError", err)
	}
}

func TestAddEdgeIntAcceptsFullRange(t *testing.T) {
	g := newMCMF(2)
	for _, c := range []int{0, 1, MaxEdgeCapacity} {
		id, err := g.addEdgeInt(0, 1, c, 7)
		if err != nil {
			t.Fatalf("capacity %d rejected: %v", c, err)
		}
		if got := g.cap[id]; got != int32(c) {
			t.Fatalf("capacity %d stored as %d", c, got)
		}
	}
}

func TestAttackCancellationSurfacesError(t *testing.T) {
	d, sv := buildSplit(t, "c880", 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Attack(ctx, d, sv, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Attack err = %v, want context.Canceled", err)
	}
}
