package proximity

import (
	"context"
	"testing"
)

// TestAttackAllocs pins the allocation count of one full proximity attack
// on c880. The structural overhaul (netlist clone via arenas, dense
// per-fragment tables, epoch-stamped PathExists scratch, preallocated flow
// graph) brought this from ~15k allocations to under a thousand; the budget
// only needs to catch one of those per-candidate allocations returning,
// which costs thousands, not tens.
func TestAttackAllocs(t *testing.T) {
	d, sv := buildSplit(t, "c880", 3)
	opt := DefaultOptions()
	// Warm-up: grows the clone arenas and solver buffers once.
	mustAttack(t, d, sv, opt)
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Attack(context.Background(), d, sv, opt); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 2000
	if allocs > budget {
		t.Fatalf("Attack allocates %.0f/op on c880, budget %d — per-candidate scratch crept back in", allocs, budget)
	}
	t.Logf("Attack c880: %.0f allocs/op (budget %d)", allocs, budget)
}
