// Package engine is the pluggable attacker layer: every attack the
// evaluation pipeline can run against a split layout is an Engine behind a
// common interface, registered by name in a process-wide registry. The
// security evaluation (internal/flow.EvaluateSecurity) is parametric over
// engine names, so adding a new adversary model is a local change — write
// an Engine, Register it, and every CLI, report, and example can select it
// — instead of cross-cutting surgery through the flow and API layers.
//
// Five engines ship in the registry:
//
//   - "proximity": the paper's network-flow proximity attack (Wang et al.
//     style, all five published hints) — the ISCAS-85 adversary.
//   - "crouting": the routing-centric candidate-list attack (Magaña et
//     al. style) — the superblue adversary. Metrics-only: it confines the
//     solution space rather than proposing an assignment.
//   - "random": uniform random sink-to-driver assignment — the sanity
//     floor for OER/HD (any defense must at least beat chance).
//   - "greedy": direction-aware nearest-compatible-driver assignment —
//     a fast approximation of proximity without the min-cost max-flow
//     machinery, usable at superblue scale.
//   - "ensemble": majority vote per sink fragment over a panel of
//     registered engines (default proximity + greedy + random).
//
// Engines must be deterministic functions of (design, split view,
// Options.Seed): a fixed seed reproduces bit-identical results, which is
// what makes parallel split-layer evaluation order-insensitive.
package engine

import (
	"context"
	"hash/fnv"
	"sync"

	"splitmfg/internal/layout"
	"splitmfg/internal/metrics"
	"splitmfg/internal/netlist"
	"splitmfg/internal/registry"
)

// Options parameterizes one engine invocation.
type Options struct {
	// Seed is the seed of the evaluation scope (typically one split
	// layer): every engine attacking the same view receives the same
	// value. A stochastic engine must derive its own independent stream
	// from it — DeriveSeed(opt.Seed, e.Name()) — and be deterministic
	// given a fixed seed. Sharing the scope seed (rather than handing
	// each engine a pre-derived one) is what lets an ensemble member
	// invocation be bit-identical to the standalone invocation of that
	// member, so Memo can deduplicate them.
	Seed int64

	// Ref is the original (reference) netlist. Engines may use it ONLY
	// for ground-truth metrics (e.g. crouting's match-in-list rate),
	// never to guide the attack itself — candidate construction stays
	// FEOL-only.
	Ref *netlist.Netlist

	// Memo, when non-nil, caches Results within one evaluation scope —
	// one (design, split view, seed) — so composite engines (ensemble)
	// and the evaluation loop never run the same engine twice on the
	// same view. Run consults it; Attack implementations just pass it
	// through to any sub-engines they invoke.
	Memo *Memo
}

// Memo caches engine results within one evaluation scope. It must not be
// shared across different (design, split view) pairs: the cache key is
// only (engine name, seed).
type Memo struct {
	mu sync.Mutex
	m  map[memoKey]Result
}

type memoKey struct {
	name string
	seed int64
}

// NewMemo returns an empty per-scope result cache.
func NewMemo() *Memo { return &Memo{m: map[memoKey]Result{}} }

// Run invokes the engine through opt.Memo: a repeated (engine, seed)
// invocation within the memo's scope returns the cached Result instead of
// re-attacking. Cached Results are shared — treat them as read-only. With
// a nil memo Run is a plain Attack call.
func Run(ctx context.Context, e Engine, d *layout.Design, sv *layout.SplitView, opt Options) (Result, error) {
	if opt.Memo == nil {
		return e.Attack(ctx, d, sv, opt)
	}
	key := memoKey{e.Name(), opt.Seed}
	opt.Memo.mu.Lock()
	res, ok := opt.Memo.m[key]
	opt.Memo.mu.Unlock()
	if ok {
		return res, nil
	}
	res, err := e.Attack(ctx, d, sv, opt)
	if err != nil {
		return res, err
	}
	opt.Memo.mu.Lock()
	opt.Memo.m[key] = res
	opt.Memo.mu.Unlock()
	return res, nil
}

// Result is the unified attack outcome every engine produces.
type Result struct {
	// Assignment maps each pure-sink fragment to the driver fragment the
	// attacker believes feeds it. nil for metrics-only engines (crouting),
	// whose contribution is solution-space confinement, not a netlist.
	Assignment metrics.Assignment

	// Recovered optionally carries a pre-built recovered netlist. When
	// nil, the caller derives one from Assignment.
	Recovered *netlist.Netlist

	// Metrics carries per-attacker extras (candidate counts, list sizes,
	// vote agreement, ...). Keys must be stable across runs; values must
	// be deterministic at a fixed seed.
	Metrics map[string]float64
}

// Engine is one adversary model.
type Engine interface {
	// Name returns the registry name the engine is selected by.
	Name() string

	// Attack runs the engine against the FEOL view of the design. It must
	// treat d and sv as read-only (clone anything it edits), honor ctx
	// cancellation between major phases, and be deterministic at a fixed
	// opt.Seed.
	Attack(ctx context.Context, d *layout.Design, sv *layout.SplitView, opt Options) (Result, error)
}

// reg is the process-wide attacker registry (shared generic mechanics in
// internal/registry).
var reg = registry.New[Engine]("attacker")

// Register adds an engine to the registry, replacing any previous engine
// of the same name. It panics on an empty name.
func Register(e Engine) { reg.Register(e) }

// Lookup returns the engine registered under name.
func Lookup(name string) (Engine, bool) { return reg.Lookup(name) }

// Names lists the registered engine names in sorted order.
func Names() []string { return reg.Names() }

// Resolve maps engine names to engines, failing with a message that lists
// the registry when any name is unknown.
func Resolve(names []string) ([]Engine, error) { return reg.Resolve(names) }

// DeriveSeed mixes an engine-local label into a seed (FNV-1a then a
// splitmix64 finalizer), giving each engine/member an independent,
// order-insensitive stream from one master seed.
func DeriveSeed(seed int64, label string) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	z := uint64(seed) ^ h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// candidateDrivers returns the driver fragments an FEOL attacker can pair
// sinks with: fragments containing a source terminal AND at least one open
// via to the BEOL (fragments without vpins are complete nets needing no
// reconnection). Shared by the assignment-producing engines.
func candidateDrivers(sv *layout.SplitView) []int {
	var drivers []int
	for _, fid := range sv.DriverFrags() {
		if len(sv.Frags[fid].VPins) > 0 {
			drivers = append(drivers, fid)
		}
	}
	return drivers
}
