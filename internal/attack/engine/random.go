package engine

import (
	"context"
	"math/rand"

	"splitmfg/internal/layout"
	"splitmfg/internal/metrics"
)

func init() { Register(randomEngine{}) }

// randomEngine assigns every open sink fragment to a uniformly random
// candidate driver fragment. It is the sanity floor of the threat-model
// matrix: the OER/HD a defense achieves against it is what pure chance
// already delivers, so any published attacker must be compared against it
// (a defense that only matches the random baseline has not degraded the
// attacker at all).
type randomEngine struct{}

func (randomEngine) Name() string { return "random" }

func (randomEngine) Attack(ctx context.Context, d *layout.Design, sv *layout.SplitView, opt Options) (Result, error) {
	drivers := candidateDrivers(sv)
	sinks := sv.SinkFrags()
	res := Result{
		Assignment: metrics.Assignment{},
		Metrics:    map[string]float64{"drivers": float64(len(drivers))},
	}
	if len(drivers) == 0 || len(sinks) == 0 {
		return res, ctx.Err()
	}
	// SinkFrags returns fragments in ascending index order, so one stream
	// consumed in that order is deterministic at a fixed seed. The stream
	// is derived from the scope seed by name, per the Options contract.
	rng := rand.New(rand.NewSource(DeriveSeed(opt.Seed, randomEngine{}.Name())))
	for _, sfid := range sinks {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Assignment[sfid] = drivers[rng.Intn(len(drivers))]
	}
	return res, nil
}
