package engine

import (
	"context"

	"splitmfg/internal/attack/proximity"
	"splitmfg/internal/layout"
)

func init() { Register(proximityEngine{}) }

// proximityEngine adapts the network-flow proximity attack (the paper's
// ISCAS-85 adversary) to the engine interface.
type proximityEngine struct{}

func (proximityEngine) Name() string { return "proximity" }

func (proximityEngine) Attack(ctx context.Context, d *layout.Design, sv *layout.SplitView, opt Options) (Result, error) {
	res, err := proximity.Attack(ctx, d, sv, proximity.DefaultOptions())
	if err != nil {
		return Result{}, err
	}
	return Result{
		Assignment: res.Assignment,
		Metrics: map[string]float64{
			"candidates":     float64(res.Candidates),
			"avg_candidates": res.AvgCands,
		},
	}, nil
}
