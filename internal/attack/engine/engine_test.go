package engine

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/layout"
	"splitmfg/internal/metrics"
)

// testSplit builds a c880 baseline layout and splits it at M4, which has a
// non-trivial attack surface.
func testSplit(t *testing.T) (*layout.Design, *layout.SplitView) {
	t.Helper()
	nl, err := bench.ISCAS85("c880")
	if err != nil {
		t.Fatal(err)
	}
	d, err := correction.BuildOriginal(nl, cell.NewNangate45Like(),
		correction.Options{LiftLayer: 6, UtilPercent: 70, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := d.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.SinkFrags()) == 0 {
		t.Fatal("M4 split has no open sink fragments to attack")
	}
	return d, sv
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	if len(names) < 5 {
		t.Fatalf("registry has %d engines, want >= 5: %v", len(names), names)
	}
	for _, want := range []string{"proximity", "crouting", "random", "greedy", "ensemble"} {
		if _, ok := Lookup(want); !ok {
			t.Fatalf("engine %q not registered (have %v)", want, names)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unregistered name succeeded")
	}
	if _, err := Resolve([]string{"proximity", "nope"}); err == nil {
		t.Fatal("Resolve with unknown name succeeded")
	}
}

// TestEnginesDeterministicAndValid: every assignment-producing engine must
// return the same assignment for the same seed, and every assigned driver
// must be a driver fragment of the view.
func TestEnginesDeterministicAndValid(t *testing.T) {
	d, sv := testSplit(t)
	nl := d.Netlist
	isDriver := map[int]bool{}
	for _, fid := range sv.DriverFrags() {
		isDriver[fid] = true
	}
	ctx := context.Background()
	for _, name := range Names() {
		eng, _ := Lookup(name)
		a, err := eng.Attack(ctx, d, sv, Options{Seed: 42, Ref: nl})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := eng.Attack(ctx, d, sv, Options{Seed: 42, Ref: nl})
		if err != nil {
			t.Fatalf("%s (second run): %v", name, err)
		}
		if !reflect.DeepEqual(a.Assignment, b.Assignment) {
			t.Fatalf("%s: assignment differs across runs at the same seed", name)
		}
		if !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Fatalf("%s: metrics differ across runs at the same seed:\n%v\nvs\n%v", name, a.Metrics, b.Metrics)
		}
		if name == "crouting" {
			if a.Assignment != nil {
				t.Fatalf("crouting proposed an assignment; it is metrics-only")
			}
			if len(a.Metrics) == 0 {
				t.Fatal("crouting returned no metrics")
			}
			continue
		}
		if len(a.Assignment) == 0 {
			t.Fatalf("%s assigned nothing over %d sinks", name, len(sv.SinkFrags()))
		}
		for sink, drv := range a.Assignment {
			if drv >= 0 && !isDriver[drv] {
				t.Fatalf("%s assigned sink %d to non-driver fragment %d", name, sink, drv)
			}
		}
	}
}

// TestRandomSeedSensitivity: the random baseline must actually use the
// seed — two different seeds give different assignments on a non-trivial
// surface.
func TestRandomSeedSensitivity(t *testing.T) {
	d, sv := testSplit(t)
	eng, _ := Lookup("random")
	a, err := eng.Attack(context.Background(), d, sv, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Attack(context.Background(), d, sv, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Assignment, b.Assignment) {
		t.Fatal("random assignments identical across different seeds")
	}
}

// TestEnsembleSingleMemberEqualsMember: a one-member panel must reproduce
// that member's standalone assignment exactly (vote of one; the scope
// seed passes through unchanged).
func TestEnsembleSingleMemberEqualsMember(t *testing.T) {
	d, sv := testSplit(t)
	ctx := context.Background()
	for _, member := range []string{"greedy", "random"} {
		solo := NewEnsemble("solo", member)
		got, err := solo.Attack(ctx, d, sv, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		eng, _ := Lookup(member)
		want, err := eng.Attack(ctx, d, sv, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Assignment, want.Assignment) {
			t.Fatalf("one-member ensemble of %q differs from the member itself", member)
		}
		if got.Metrics["unanimous"] != 1 {
			t.Fatalf("one-member ensemble not unanimous: %v", got.Metrics)
		}
	}
}

// countingEngine counts Attack invocations, for memo tests. Its output is
// deterministic (every sink to the first candidate driver, no metrics) so
// registering it does not disturb the registry-wide determinism tests.
type countingEngine struct {
	calls *int
}

func (countingEngine) Name() string { return "counting" }

func (c countingEngine) Attack(ctx context.Context, d *layout.Design, sv *layout.SplitView, opt Options) (Result, error) {
	*c.calls++
	res := Result{Assignment: metrics.Assignment{}}
	drivers := candidateDrivers(sv)
	if len(drivers) == 0 {
		return res, nil
	}
	for _, sfid := range sv.SinkFrags() {
		res.Assignment[sfid] = drivers[0]
	}
	return res, nil
}

// TestMemoDeduplicates: Run with a memo invokes the engine once per
// (name, seed) within the scope; a different seed is a different entry.
func TestMemoDeduplicates(t *testing.T) {
	d, sv := testSplit(t)
	calls := 0
	eng := countingEngine{calls: &calls}
	memo := NewMemo()
	ctx := context.Background()
	var first Result
	for i := 0; i < 3; i++ {
		res, err := Run(ctx, eng, d, sv, Options{Seed: 1, Memo: memo})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
		} else if !reflect.DeepEqual(res, first) {
			t.Fatalf("run %d returned a different result than the cached one", i)
		}
	}
	if calls != 1 {
		t.Fatalf("engine attacked %d times under one memo, want 1", calls)
	}
	if _, err := Run(ctx, eng, d, sv, Options{Seed: 2, Memo: memo}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("different seed should miss the memo: %d calls, want 2", calls)
	}
}

// TestEnsembleReusesMemoizedMembers: with a shared memo, running a member
// standalone and then an ensemble containing it must not re-attack the
// member — the deduplication EvaluateSecurity relies on when an ensemble
// is requested alongside its own members.
func TestEnsembleReusesMemoizedMembers(t *testing.T) {
	d, sv := testSplit(t)
	ctx := context.Background()
	calls := 0
	Register(countingEngine{calls: &calls})
	memo := NewMemo()
	counting, _ := Lookup("counting")
	standalone, err := Run(ctx, counting, d, sv, Options{Seed: 5, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	solo := NewEnsemble("solo", "counting")
	viaEnsemble, err := solo.Attack(ctx, d, sv, Options{Seed: 5, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("member attacked %d times, want 1 (ensemble must reuse the memoized result)", calls)
	}
	if !reflect.DeepEqual(standalone.Assignment, viaEnsemble.Assignment) {
		t.Fatal("memoized member result differs from standalone result")
	}
}

func TestEnsembleUnknownMember(t *testing.T) {
	d, sv := testSplit(t)
	bad := NewEnsemble("bad", "nope")
	if _, err := bad.Attack(context.Background(), d, sv, Options{}); err == nil {
		t.Fatal("ensemble with unknown member succeeded")
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[int64]string{}
	for _, label := range []string{"proximity", "greedy", "random", "ensemble", "crouting"} {
		s := DeriveSeed(1, label)
		if prev, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed collision between %q and %q", label, prev)
		}
		seen[s] = label
	}
	if DeriveSeed(1, "x") == DeriveSeed(2, "x") {
		t.Fatal("DeriveSeed ignores the seed")
	}
}
