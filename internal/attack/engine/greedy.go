package engine

import (
	"context"

	"splitmfg/internal/geom"
	"splitmfg/internal/layout"
	"splitmfg/internal/metrics"
)

func init() { Register(greedyEngine{}) }

// greedyEngine is a direction-aware greedy attacker: each open sink
// fragment grabs the nearest driver fragment whose dangling-wire direction
// is compatible and which still has fanout capacity, with no joint
// optimization. It keeps two of the proximity attack's five hints
// (distance, direction) and drops the min-cost max-flow machinery, trading
// a few CCR points for near-linear runtime — the approximation of choice
// at superblue scale, and a measure of how much the flow solve itself
// contributes on ISCAS.
type greedyEngine struct{}

// greedyDirPenalty multiplies the distance cost when the dangling
// directions of driver and sink disagree, mirroring the proximity attack's
// default penalty.
const greedyDirPenalty = 4.0

func (greedyEngine) Name() string { return "greedy" }

func (greedyEngine) Attack(ctx context.Context, d *layout.Design, sv *layout.SplitView, opt Options) (Result, error) {
	type dinfo struct {
		fid    int
		pt     geom.Point
		capRem int
		dirs   []layout.Direction
	}
	var dinfos []dinfo
	for _, fid := range candidateDrivers(sv) {
		f := &sv.Frags[fid]
		di := dinfo{fid: fid, pt: sv.FragCenter(d, fid), capRem: 1 << 30}
		for _, p := range f.Pins {
			if p.Role == layout.RoleDriver {
				// Same realistic fanout ceiling the proximity attack uses:
				// known in-fragment load plus headroom per drive strength.
				m := d.Masters[p.Gate]
				slots := int(m.MaxCap/2.0) - len(f.SinkPins())
				if slots > 2+2*m.Drive {
					slots = 2 + 2*m.Drive
				}
				if slots < 1 {
					slots = 1
				}
				di.capRem = slots
			}
		}
		for _, vid := range f.VPins {
			di.dirs = append(di.dirs, sv.VPins[vid].Dir)
		}
		dinfos = append(dinfos, di)
	}
	sinks := sv.SinkFrags()
	res := Result{Assignment: metrics.Assignment{}, Metrics: map[string]float64{}}
	if len(dinfos) == 0 || len(sinks) == 0 {
		return res, ctx.Err()
	}

	compatible := 0
	for _, sfid := range sinks {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		spt := sv.FragCenter(d, sfid)
		sdirs := fragDirections(sv, sfid)
		best, bestCost, bestCompat := -1, 0.0, false
		pick := func(ignoreCap bool) {
			for di := range dinfos {
				dd := &dinfos[di]
				if !ignoreCap && dd.capRem <= 0 {
					continue
				}
				cost := float64(spt.Manhattan(dd.pt)) + 1
				compat := dirsAgree(dd.dirs, dd.pt, spt) && dirsAgree(sdirs, spt, dd.pt)
				if !compat {
					cost *= greedyDirPenalty
				}
				// Strict < keeps the lowest driver index on ties (dinfos is
				// in ascending fragment order), so the pass is deterministic.
				if best < 0 || cost < bestCost {
					best, bestCost, bestCompat = di, cost, compat
				}
			}
		}
		pick(false)
		if best < 0 {
			// Every driver saturated: fall back to the same direction-aware
			// choice ignoring capacity, so the sink is still answered.
			pick(true)
		}
		dinfos[best].capRem--
		res.Assignment[sfid] = dinfos[best].fid
		if bestCompat {
			compatible++
		}
	}
	res.Metrics["dir_compatible"] = float64(compatible) / float64(len(sinks))
	return res, nil
}

// fragDirections returns the dangling directions of a fragment's vpins.
func fragDirections(sv *layout.SplitView, fid int) []layout.Direction {
	var dirs []layout.Direction
	for _, vid := range sv.Frags[fid].VPins {
		dirs = append(dirs, sv.VPins[vid].Dir)
	}
	return dirs
}

// dirsAgree reports whether any dangling direction at `from` points
// roughly toward `to` (or no direction information exists).
func dirsAgree(dirs []layout.Direction, from, to geom.Point) bool {
	if len(dirs) == 0 {
		return true
	}
	for _, dir := range dirs {
		switch dir {
		case layout.DirNone:
			return true
		case layout.DirEast:
			if to.X >= from.X {
				return true
			}
		case layout.DirWest:
			if to.X <= from.X {
				return true
			}
		case layout.DirNorth:
			if to.Y >= from.Y {
				return true
			}
		case layout.DirSouth:
			if to.Y <= from.Y {
				return true
			}
		}
	}
	return false
}
