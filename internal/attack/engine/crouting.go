package engine

import (
	"context"
	"fmt"

	"splitmfg/internal/attack/crouting"
	"splitmfg/internal/layout"
)

func init() { Register(croutingEngine{}) }

// croutingEngine adapts the routing-centric candidate-list attack (the
// paper's superblue adversary). It is metrics-only: instead of proposing
// an assignment it confines the solution space, reporting per-bounding-box
// expected candidate-list sizes and the match-in-list rate.
type croutingEngine struct{}

func (croutingEngine) Name() string { return "crouting" }

func (croutingEngine) Attack(ctx context.Context, d *layout.Design, sv *layout.SplitView, opt Options) (Result, error) {
	if opt.Ref == nil {
		return Result{}, fmt.Errorf("engine: crouting needs Options.Ref for the match-in-list ground truth")
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	copt := crouting.DefaultOptions()
	res := crouting.Attack(d, sv, opt.Ref, copt)
	m := map[string]float64{"vpins": float64(res.NumVPins)}
	for _, b := range copt.BBoxes {
		m[fmt.Sprintf("avg_list_size_%d", b)] = res.AvgListSize[b]
		m[fmt.Sprintf("match_in_list_%d", b)] = res.MatchInList[b]
	}
	return Result{Metrics: m}, nil
}
