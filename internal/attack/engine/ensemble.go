package engine

import (
	"context"
	"fmt"
	"sort"

	"splitmfg/internal/layout"
	"splitmfg/internal/metrics"
)

func init() {
	Register(&Ensemble{name: "ensemble", Members: []string{"proximity", "greedy", "random"}})
}

// Ensemble runs a panel of registered engines and takes a majority vote
// per sink fragment: the driver most members agree on wins (ties break
// toward the lower driver-fragment index). The registered default panel is
// proximity + greedy + random — a strong, a fast, and a chance attacker —
// which smooths over each member's blind spots; custom panels can be built
// with NewEnsemble and registered under their own name.
type Ensemble struct {
	name    string
	Members []string
}

// NewEnsemble builds a voting engine over the named member engines
// (resolved from the registry at attack time).
func NewEnsemble(name string, members ...string) *Ensemble {
	return &Ensemble{name: name, Members: members}
}

// Name returns the registry name of this panel.
func (e *Ensemble) Name() string { return e.name }

// Attack runs every member and votes. The scope seed passes through
// unchanged (each member derives its own stream from it by name, per the
// Options contract), so a member invocation here is bit-identical to the
// standalone invocation of that member — and when the caller supplies a
// Memo, members already evaluated standalone are not re-run.
func (e *Ensemble) Attack(ctx context.Context, d *layout.Design, sv *layout.SplitView, opt Options) (Result, error) {
	members, err := Resolve(e.Members)
	if err != nil {
		return Result{}, fmt.Errorf("ensemble %q: %v", e.name, err)
	}
	if len(members) == 0 {
		return Result{}, fmt.Errorf("ensemble %q has no members", e.name)
	}
	votes := map[int]map[int]int{} // sink frag -> driver frag -> votes
	voters := 0
	for _, m := range members {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		mres, err := Run(ctx, m, d, sv, Options{Seed: opt.Seed, Ref: opt.Ref, Memo: opt.Memo})
		if err != nil {
			return Result{}, fmt.Errorf("ensemble member %q: %v", m.Name(), err)
		}
		if mres.Assignment == nil {
			continue // metrics-only members contribute no vote
		}
		voters++
		for sink, drv := range mres.Assignment {
			if drv < 0 {
				continue
			}
			if votes[sink] == nil {
				votes[sink] = map[int]int{}
			}
			votes[sink][drv]++
		}
	}
	if voters == 0 {
		return Result{}, fmt.Errorf("ensemble %q: no member produced an assignment", e.name)
	}

	res := Result{Assignment: metrics.Assignment{}, Metrics: map[string]float64{}}
	unanimous := 0
	sinkIDs := make([]int, 0, len(votes))
	for sink := range votes {
		sinkIDs = append(sinkIDs, sink)
	}
	sort.Ints(sinkIDs)
	for _, sink := range sinkIDs {
		bestDrv, bestVotes := -1, 0
		for drv, n := range votes[sink] {
			if n > bestVotes || (n == bestVotes && drv < bestDrv) {
				bestDrv, bestVotes = drv, n
			}
		}
		res.Assignment[sink] = bestDrv
		if bestVotes == voters {
			unanimous++
		}
	}
	res.Metrics["members"] = float64(voters)
	if len(sinkIDs) > 0 {
		res.Metrics["unanimous"] = float64(unanimous) / float64(len(sinkIDs))
	}
	return res, nil
}
