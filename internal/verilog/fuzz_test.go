package verilog

import (
	"bytes"
	"strings"
	"testing"

	"splitmfg/internal/bench"
)

// FuzzParse hammers the structural-Verilog parser with mutated sources.
// The corpus seeds from the bench catalog (real netlists through our own
// writer) plus hand-made corner cases around every token kind. The parser
// must never panic: malformed input is an error, not a crash. Accepted
// input must round-trip through Write and re-Parse.
func FuzzParse(f *testing.F) {
	for _, name := range []string{"c432", "c880"} {
		nl, err := bench.ISCAS85(name)
		if err != nil {
			f.Fatal(err)
		}
		var b bytes.Buffer
		if err := Write(&b, nl); err != nil {
			f.Fatal(err)
		}
		f.Add(b.String())
	}
	for _, seed := range []string{
		"",
		"module m ();endmodule",
		"module m (a, y); input a; output y; INV_X1 g1 (.A1(a), .Y(y)); endmodule",
		"module m (a, y); input a; output y; BUF_X1 g1 (a, y); endmodule",
		"module m (a, b, y); input a, b; output y; wire w; NAND2_X1 g1 (.A1(a), .A2(b), .Y(w)); assign y = w; endmodule",
		"module m (a, y); input a; output y; /* block */ // line\n INV_X1 \\g$1 (.A1(a), .Y(y)); endmodule",
		"module m (a); input a; input [3:0] v;",
		// Truncation regressions: each of these once hung the parser in an
		// EOF loop (port list, declaration, instance ports).
		"module m (a",
		"module m (a, y); input a, y",
		"module m (a, y); input a; output y; INV_X1 g1 (.A1(a)",
		"module m (a, y); input a; output y; DFF_X1 g1 (.D(a), .Q(y)); endmodule",
		"module m (s, a, b, y); input s, a, b; output y; MUX2_X1 g1 (.S(s), .A(a), .B(b), .Y(y)); endmodule",
		"module m (a, y); input a; output y; INV_X1 g1 (.A1(a), .Y(y), .Z(a)); endmodule",
		"module m (a, y); input a; output y; assign y = y; endmodule",
		"module",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		nl, err := Parse(strings.NewReader(src))
		if err != nil {
			return // malformed input may be rejected, never crash
		}
		// Anything the parser accepts must survive a write/parse round
		// trip: the writer emits the subset the parser documents.
		var b bytes.Buffer
		if err := Write(&b, nl); err != nil {
			t.Fatalf("accepted netlist failed to write: %v", err)
		}
		if _, err := Parse(bytes.NewReader(b.Bytes())); err != nil {
			t.Fatalf("write/parse round trip failed: %v\n%s", err, b.String())
		}
	})
}
