package verilog

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"splitmfg/internal/netlist"
	"splitmfg/internal/sim"
)

func buildFullAdder() *netlist.Netlist {
	nl := netlist.New("fa")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	cin := nl.AddPI("cin")
	x1 := nl.AddGate("x1", netlist.Xor, a, b)
	x1out := nl.Gates[x1].Out
	x2 := nl.AddGate("x2", netlist.Xor, x1out, cin)
	a1 := nl.AddGate("a1", netlist.And, a, b)
	a2 := nl.AddGate("a2", netlist.And, x1out, cin)
	o1 := nl.AddGate("o1", netlist.Or, nl.Gates[a1].Out, nl.Gates[a2].Out)
	nl.AddPO("sum", nl.Gates[x2].Out)
	nl.AddPO("cout", nl.Gates[o1].Out)
	return nl
}

func TestRoundTripFullAdder(t *testing.T) {
	nl := buildFullAdder()
	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, buf.String())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.NumGates() != nl.NumGates() || got.NumPIs() != nl.NumPIs() || got.NumPOs() != nl.NumPOs() {
		t.Fatalf("counts differ: %v vs %v", got.ComputeStats(), nl.ComputeStats())
	}
	rng := rand.New(rand.NewSource(1))
	eq, err := sim.Equivalent(nl, got, rng, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("round-trip changed function:\n%s", buf.String())
	}
}

func TestParseHandwritten(t *testing.T) {
	src := `
// c17-like example
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  NAND2_X1 g1 (.A1(N1), .A2(N3), .Y(N10));
  NAND2_X1 g2 (.A1(N3), .A2(N6), .Y(N11));
  NAND2_X1 g3 (.A1(N2), .A2(N11), .Y(N16));
  NAND2_X1 g4 (.A1(N11), .A2(N7), .Y(N19));
  NAND2_X1 g5 (.A1(N10), .A2(N16), .Y(N22));
  NAND2_X1 g6 (.A1(N16), .A2(N19), .Y(N23));
endmodule
`
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumGates() != 6 || nl.NumPIs() != 5 || nl.NumPOs() != 2 {
		t.Fatalf("stats: %v", nl.ComputeStats())
	}
	if nl.Name != "c17" {
		t.Fatalf("name = %q", nl.Name)
	}
	// N22 = NAND(N10,N16): verify structurally.
	po := nl.Nets[nl.PONets[0]]
	if po.Name != "N22" || nl.Gates[po.Driver].Type != netlist.Nand {
		t.Fatalf("PO0 wrong: %q / %v", po.Name, nl.Gates[po.Driver].Type)
	}
}

func TestParseNangatePins(t *testing.T) {
	src := `
module m (a, b, y);
  input a, b;
  output y;
  wire n1;
  INV_X1 u1 (.A(a), .ZN(n1));
  NAND2_X1 u2 (.A1(n1), .A2(b), .ZN(y));
endmodule
`
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumGates() != 2 {
		t.Fatalf("gates = %d", nl.NumGates())
	}
	g := nl.GateByName("u2")
	if g.Type != netlist.Nand || len(g.Fanin) != 2 {
		t.Fatalf("u2: %v fanin=%d", g.Type, len(g.Fanin))
	}
}

func TestParsePositional(t *testing.T) {
	src := `
module m (a, b, y);
  input a; input b;
  output y;
  AND2_X1 u1 (a, b, y);
endmodule
`
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	g := nl.GateByName("u1")
	if g == nil || nl.Nets[g.Out].Name != "y" {
		t.Fatal("positional output not last")
	}
}

func TestParseAssignAlias(t *testing.T) {
	src := `
module m (a, y);
  input a;
  output y;
  wire n1;
  INV_X1 u1 (.A(a), .ZN(n1));
  assign y = n1;
endmodule
`
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumPOs() != 1 || nl.Nets[nl.PONets[0]].Name != "n1" {
		t.Fatal("assign alias not followed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"multidriver", `module m (a, y); input a; output y;
			INV_X1 u1 (.A(a), .ZN(y)); BUF_X1 u2 (.A(a), .Y(y)); endmodule`},
		{"undriven", `module m (a, y); input a; output y;
			AND2_X1 u1 (.A1(a), .A2(nowhere), .Y(y)); endmodule`},
		{"noendmodule", `module m (a, y); input a; output y;`},
		{"unknowncell", `module m (a, y); input a; output y;
			FROB2_X1 u1 (.A1(a), .Y(y)); endmodule`},
		{"vector", `module m (a, y); input [3:0] a; output y; endmodule`},
		{"outputundriven", `module m (a, y); input a; output y; endmodule`},
		// Truncated sources must error, not loop forever at EOF (found by
		// FuzzParse: peek() repeats the eof sentinel indefinitely).
		{"eofinportlist", `module m (a`},
		{"eofindecl", `module m (a, y); input a, y`},
		{"eofininstance", `module m (a, y); input a; output y; INV_X1 g1 (.A1(a)`},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
/* block comment
   spanning lines */
module m (a, y); // trailing
  input a;
  output y;
  BUF_X1 u1 (.A(a), .Y(y)); /* inline */
endmodule
`
	if _, err := Parse(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
}

func TestEscapedIdentifiers(t *testing.T) {
	src := "module m (a, y);\n input a;\n output y;\n BUF_X1 \\u1$weird (.A(a), .Y(y));\nendmodule\n"
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nl.GateByName("u1$weird") == nil {
		t.Fatal("escaped identifier lost")
	}
}

func randomDAG(rng *rand.Rand, nPI, nGates int) *netlist.Netlist {
	nl := netlist.New("rnd")
	for i := 0; i < nPI; i++ {
		nl.AddPI(pname("in", i))
	}
	types := []netlist.GateType{netlist.And, netlist.Or, netlist.Nand, netlist.Nor,
		netlist.Xor, netlist.Xnor, netlist.Inv, netlist.Buf, netlist.Mux}
	for i := 0; i < nGates; i++ {
		gt := types[rng.Intn(len(types))]
		nin := gt.MinInputs()
		if gt.MaxInputs() > nin && gt != netlist.Mux {
			nin += rng.Intn(gt.MaxInputs() - nin + 1)
		}
		if gt == netlist.Mux {
			nin = 3
		}
		fanin := make([]int, nin)
		for p := range fanin {
			fanin[p] = rng.Intn(len(nl.Nets))
		}
		nl.AddGate(pname("g", i), gt, fanin...)
	}
	for _, n := range nl.Nets {
		if n.FanoutCount() == 0 {
			nl.AddPO("po_"+n.Name, n.ID)
		}
	}
	return nl
}

func pname(p string, i int) string {
	return p + "_" + strings.Repeat("x", i%3) + string(rune('a'+i%26)) + itoa(i)
}

func itoa(i int) string {
	digits := "0123456789"
	if i == 0 {
		return "0"
	}
	s := ""
	for i > 0 {
		s = string(digits[i%10]) + s
		i /= 10
	}
	return s
}

func TestPropertyRoundTripPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := randomDAG(rng, 3+rng.Intn(5), 5+rng.Intn(40))
		var buf bytes.Buffer
		if Write(&buf, nl) != nil {
			return false
		}
		got, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Logf("parse error: %v", err)
			return false
		}
		// PI order may differ (sorted); map by name for comparison.
		if got.NumPIs() != nl.NumPIs() || got.NumPOs() != nl.NumPOs() || got.NumGates() != nl.NumGates() {
			return false
		}
		// Build permuted stimulus so that same-named PIs get same values.
		words := 8
		base := sim.RandomPatterns(rng, nl.NumPIs(), words)
		byName := map[string][]uint64{}
		for i, n := range nl.PINames {
			byName[n] = base[i]
		}
		perm := make([][]uint64, got.NumPIs())
		for i, n := range got.PINames {
			perm[i] = byName[n]
		}
		s1, err := sim.New(nl)
		if err != nil {
			return false
		}
		s2, err := sim.New(got)
		if err != nil {
			return false
		}
		v1, err := s1.Eval(base, words)
		if err != nil {
			return false
		}
		v2, err := s2.Eval(perm, words)
		if err != nil {
			return false
		}
		p1, p2 := s1.POWords(v1), s2.POWords(v2)
		poIdx := map[string]int{}
		for i, n := range got.PONames {
			poIdx[n] = i
		}
		for i, n := range nl.PONames {
			j, ok := poIdx[n]
			if !ok {
				return false
			}
			for w := 0; w < words; w++ {
				if p1[i][w] != p2[j][w] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteErroneousNetlistRoundTrip(t *testing.T) {
	// The flow exports the erroneous netlist as Verilog (cmd/smflow); the
	// round trip must preserve its (wrong) function exactly.
	nl := buildFullAdder()
	mod := nl.Clone()
	// swap two pins to emulate randomization
	x2 := mod.GateByName("x2").ID
	a1 := mod.GateByName("a1").ID
	if err := mod.SwapSinks(netlist.PinRef{Gate: x2, Pin: 1}, netlist.PinRef{Gate: a1, Pin: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, mod); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	eq, err := sim.Equivalent(mod, got, rng, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("erroneous netlist round trip changed function")
	}
	// And it must NOT equal the original.
	eq, err = sim.Equivalent(nl, got, rng, 8)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("swap lost in round trip")
	}
}
