// Package timing provides static timing analysis and power/area estimation
// over placed-and-routed designs — the PPA side of the paper's evaluation
// (Sec. 5.3 and Fig. 6). The delay model is the standard linear one: gate
// delay is intrinsic plus drive-resistance times load, wire delay is a
// lumped RC term from the routed per-layer wirelengths. The analysis is
// "conservative, slow-corner style" in the paper's spirit: all loads are
// worst-cased, no useful skew.
//
// Correction cells contribute wire RC only: per the paper they "only
// implement some BEOL wires", so they add no device delay, leakage, or
// internal power.
package timing

import (
	"fmt"
	"math"

	"splitmfg/internal/cell"
	"splitmfg/internal/geom"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"
)

// taggedRouteIDs returns the design's route IDs in ascending order.
// Several routed entities (trunk, stubs, restoration wires) can map to the
// same net, and float accumulation is not associative: summing their RC in
// any other order would make the last ulp of delay/power differ from run
// to run, breaking byte-stable golden reports. The design's dense table
// already yields ascending IDs.
func taggedRouteIDs(d *layout.Design) []int {
	return d.TaggedRouteIDs()
}

// NetLoad carries the physical load of one netlist net.
type NetLoad struct {
	WireCapFF   float64 // total routed metal capacitance
	WireDelayPS float64 // lumped RC delay of the routed tree
}

// PPA is the power/performance/area summary of a design.
type PPA struct {
	AreaUM2       float64 // die outline area
	PowerUW       float64 // leakage + switching estimate
	DelayPS       float64 // critical combinational path
	WirelengthUM  float64 // total routed wirelength
	Vias          int64   // total via count
	OverflowEdges int     // routing-capacity violations ("DRC-dirty" proxy)
}

// Overhead returns (area%, power%, delay%) of p relative to base.
func (p PPA) Overhead(base PPA) (area, power, delay float64) {
	pct := func(v, b float64) float64 {
		if b == 0 {
			return 0
		}
		return (v - b) / b * 100
	}
	return pct(p.AreaUM2, base.AreaUM2), pct(p.PowerUW, base.PowerUW), pct(p.DelayPS, base.DelayPS)
}

// String formats the PPA one-per-line for reports.
func (p PPA) String() string {
	return fmt.Sprintf("area=%.0fµm² power=%.1fµW delay=%.0fps WL=%.0fµm vias=%d overflow=%d",
		p.AreaUM2, p.PowerUW, p.DelayPS, p.WirelengthUM, p.Vias, p.OverflowEdges)
}

// viaCapFF is the capacitance of one via cut (fF) — vias are a real load,
// and the defense's lifting adds many of them (Table 2).
const viaCapFF = 0.9

// Activity and supply assumptions (paper: 0.95V, conservative corner).
const (
	switchingActivity = 0.1  // toggles per cycle per net
	clockGHz          = 1.0  // reference frequency
	supplyV           = 0.95 // volts
)

// LoadsFromDesign computes per-net wire loads by summing every routed
// entity attached to the net (stubs, lifted trunks, and BEOL restoration
// wires all carry layout.Design.NetOf tags pointing at the net they
// implement).
func LoadsFromDesign(d *layout.Design, lib *cell.Library) []NetLoad {
	loads := make([]NetLoad, d.Netlist.NumNets())
	for _, routeID := range taggedRouteIDs(d) {
		netID := d.NetOf[routeID]
		if netID < 0 || netID >= len(loads) {
			continue
		}
		rn := d.Router.Net(routeID)
		if rn == nil {
			continue
		}
		var capFF, delay float64
		for _, e := range rn.Edges {
			if e.IsVia() {
				capFF += viaCapFF
				delay += 0.4 // small fixed via delay (ps)
				continue
			}
			lenUM := float64(d.Grid.GCell) / geom.NMPerMicron
			c := lib.WireCapPerUM[e.A.Z] * lenUM
			r := lib.WireResPerUM[e.A.Z] * lenUM
			capFF += c
			// float64() forces rounding before the add so the compiler
			// cannot fuse into an architecture-dependent FMA (golden
			// reports compare these sums byte-for-byte).
			delay += float64(0.5 * r * c) // distributed RC
		}
		loads[netID].WireCapFF += capFF
		loads[netID].WireDelayPS += delay
	}
	return loads
}

// Analyze runs STA and the power model over a netlist with bound masters
// and per-net loads, against the given die outline.
func Analyze(nl *netlist.Netlist, masters []*cell.Master, loads []NetLoad, die geom.Rect) (PPA, error) {
	var p PPA
	if len(masters) != nl.NumGates() {
		return p, fmt.Errorf("timing: %d masters for %d gates", len(masters), nl.NumGates())
	}
	if len(loads) != nl.NumNets() {
		return p, fmt.Errorf("timing: %d loads for %d nets", len(loads), nl.NumNets())
	}
	order, ok := nl.TopoOrder()
	if !ok {
		return p, fmt.Errorf("timing: netlist has a combinational loop")
	}
	// Load per net: wire cap + sink pin caps (+ a pad cap per PO).
	const padCapFF = 4.0
	netCap := make([]float64, nl.NumNets())
	for _, n := range nl.Nets {
		c := loads[n.ID].WireCapFF
		for _, s := range n.Sinks {
			c += masters[s.Gate].InputCap
		}
		c += float64(float64(len(n.POs)) * padCapFF) // float64(): no FMA, see LoadsFromDesign
		netCap[n.ID] = c
	}
	// Arrival times per net (ps). PIs and DFF outputs start at 0.
	arr := make([]float64, nl.NumNets())
	for _, gid := range order {
		g := nl.Gates[gid]
		if g.Type.IsSequential() {
			arr[g.Out] = masters[gid].Delay(netCap[g.Out]) + loads[g.Out].WireDelayPS
			continue
		}
		worst := 0.0
		for _, netID := range g.Fanin {
			a := arr[netID]
			if a > worst {
				worst = a
			}
		}
		arr[g.Out] = worst + masters[gid].Delay(netCap[g.Out]) + loads[g.Out].WireDelayPS
	}
	// Critical path: worst arrival at any PO or DFF D input.
	crit := 0.0
	for _, netID := range nl.PONets {
		crit = math.Max(crit, arr[netID])
	}
	for _, g := range nl.Gates {
		if g.Type.IsSequential() {
			crit = math.Max(crit, arr[g.Fanin[0]])
		}
	}
	// Power: leakage + internal switching + wire switching.
	var leakNW, dynFJ float64
	for _, g := range nl.Gates {
		leakNW += masters[g.ID].Leakage
		dynFJ += float64(switchingActivity * masters[g.ID].SwitchE) // float64(): no FMA, see LoadsFromDesign
	}
	for _, n := range nl.Nets {
		dynFJ += float64(switchingActivity * 0.5 * netCap[n.ID] * supplyV * supplyV)
	}
	// fJ per cycle at clockGHz -> µW: 1 fJ/ns = 1 µW.
	p.PowerUW = leakNW/1000 + dynFJ*clockGHz
	p.DelayPS = crit
	p.AreaUM2 = float64(die.Area()) / (geom.NMPerMicron * geom.NMPerMicron)
	return p, nil
}

// AnalyzeDesign is the convenience wrapper: derive loads from the routed
// design and report full PPA including wirelength/via/overflow counts.
func AnalyzeDesign(d *layout.Design, lib *cell.Library) (PPA, error) {
	loads := LoadsFromDesign(d, lib)
	p, err := Analyze(d.Netlist, d.Masters, loads, d.Placement.Die)
	if err != nil {
		return p, err
	}
	s := d.Router.ComputeStats()
	p.WirelengthUM = float64(s.TotalWirelength) / geom.NMPerMicron
	p.Vias = s.TotalVias
	p.OverflowEdges = s.OverflowEdges
	return p, nil
}

// AnalyzeRestored reports PPA of a protected design against its original
// netlist: the routed entities of the protected design (tagged with
// original-net IDs via Design.NetOf) provide the loads, while the logical
// structure and masters come from the original netlist. This mirrors the
// paper's postRoute evaluation after BEOL restoration with the misleading
// arcs timing-disabled.
func AnalyzeRestored(d *layout.Design, original *netlist.Netlist, masters []*cell.Master, lib *cell.Library) (PPA, error) {
	loads := make([]NetLoad, original.NumNets())
	for _, routeID := range taggedRouteIDs(d) {
		netID := d.NetOf[routeID]
		if netID < 0 || netID >= len(loads) {
			continue
		}
		rn := d.Router.Net(routeID)
		if rn == nil {
			continue
		}
		for _, e := range rn.Edges {
			if e.IsVia() {
				loads[netID].WireCapFF += viaCapFF
				loads[netID].WireDelayPS += 0.4
				continue
			}
			lenUM := float64(d.Grid.GCell) / geom.NMPerMicron
			c := lib.WireCapPerUM[e.A.Z] * lenUM
			r := lib.WireResPerUM[e.A.Z] * lenUM
			loads[netID].WireCapFF += c
			loads[netID].WireDelayPS += float64(0.5 * r * c) // float64(): no FMA, see LoadsFromDesign
		}
	}
	p, err := Analyze(original, masters, loads, d.Placement.Die)
	if err != nil {
		return p, err
	}
	s := d.Router.ComputeStats()
	p.WirelengthUM = float64(s.TotalWirelength) / geom.NMPerMicron
	p.Vias = s.TotalVias
	p.OverflowEdges = s.OverflowEdges
	return p, nil
}
