package timing

import (
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/geom"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"
	"splitmfg/internal/place"
	"splitmfg/internal/route"
)

func analyzed(t *testing.T, name string) (PPA, *layout.Design, *cell.Library) {
	t.Helper()
	nl, err := bench.ISCAS85(name)
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	masters, err := lib.Bind(nl)
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(nl, masters, place.Options{UtilPercent: 70, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := layout.NewDesign(nl, masters, p, route.Options{})
	if err := d.RouteAll(nil); err != nil {
		t.Fatal(err)
	}
	ppa, err := AnalyzeDesign(d, lib)
	if err != nil {
		t.Fatal(err)
	}
	return ppa, d, lib
}

func TestAnalyzePositive(t *testing.T) {
	ppa, _, _ := analyzed(t, "c432")
	if ppa.AreaUM2 <= 0 || ppa.PowerUW <= 0 || ppa.DelayPS <= 0 || ppa.WirelengthUM <= 0 || ppa.Vias <= 0 {
		t.Fatalf("non-positive PPA: %v", ppa)
	}
}

func TestDeeperCircuitSlower(t *testing.T) {
	a, _, _ := analyzed(t, "c432")
	b, _, _ := analyzed(t, "c6288") // 16x16 multiplier: much deeper
	if b.DelayPS <= a.DelayPS {
		t.Fatalf("c6288 (%.0fps) should be slower than c432 (%.0fps)", b.DelayPS, a.DelayPS)
	}
	if b.PowerUW <= a.PowerUW {
		t.Fatalf("c6288 should burn more power")
	}
	if b.AreaUM2 <= a.AreaUM2 {
		t.Fatalf("c6288 should be bigger")
	}
}

func TestOverheadMath(t *testing.T) {
	base := PPA{AreaUM2: 100, PowerUW: 50, DelayPS: 200}
	p := PPA{AreaUM2: 110, PowerUW: 55, DelayPS: 250}
	a, pw, d := p.Overhead(base)
	if a != 10 || pw != 10 || d != 25 {
		t.Fatalf("overheads = %v %v %v", a, pw, d)
	}
	// Division by zero guarded.
	a, pw, d = p.Overhead(PPA{})
	if a != 0 || pw != 0 || d != 0 {
		t.Fatal("zero base should yield zero overheads")
	}
}

func TestLiftedNetsIncreaseDelayAndPower(t *testing.T) {
	nl, err := bench.ISCAS85("c880")
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	masters, err := lib.Bind(nl)
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(nl, masters, place.Options{UtilPercent: 70, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	flat := layout.NewDesign(nl, masters, p, route.Options{})
	if err := flat.RouteAll(nil); err != nil {
		t.Fatal(err)
	}
	basePPA, err := AnalyzeDesign(flat, lib)
	if err != nil {
		t.Fatal(err)
	}
	// Lift a third of the nets to M6.
	lifts := map[int]int{}
	for _, n := range nl.Nets {
		if n.FanoutCount() > 0 && n.ID%3 == 0 {
			lifts[n.ID] = 6
		}
	}
	lifted := layout.NewDesign(nl, masters, p, route.Options{})
	if err := lifted.RouteAll(lifts); err != nil {
		t.Fatal(err)
	}
	liftPPA, err := AnalyzeDesign(lifted, lib)
	if err != nil {
		t.Fatal(err)
	}
	if liftPPA.Vias <= basePPA.Vias {
		t.Fatalf("lifting should add vias: %d vs %d", liftPPA.Vias, basePPA.Vias)
	}
	// Lifted trunks can dodge lower-layer congestion, so allow a small
	// decrease, but a large drop would mean the lift constraint is broken.
	if liftPPA.WirelengthUM < 0.9*basePPA.WirelengthUM {
		t.Fatalf("lifted wirelength implausibly short: %.0f vs %.0f", liftPPA.WirelengthUM, basePPA.WirelengthUM)
	}
	_, pw, _ := liftPPA.Overhead(basePPA)
	if pw < 0 {
		t.Fatalf("lifting lowered power: %v%%", pw)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	nl := netlist.New("t")
	a := nl.AddPI("a")
	g := nl.AddGate("g", netlist.Buf, a)
	nl.AddPO("y", nl.Gates[g].Out)
	lib := cell.NewNangate45Like()
	masters, _ := lib.Bind(nl)
	die := geom.NewRect(geom.Point{X: 0, Y: 0}, geom.Point{X: 10000, Y: 10000})
	if _, err := Analyze(nl, masters[:0], nil, die); err == nil {
		t.Error("expected master-count error")
	}
	if _, err := Analyze(nl, masters, make([]NetLoad, 1), die); err == nil {
		t.Error("expected load-count error")
	}
	// Loop rejection.
	nl2 := netlist.New("cyc")
	a2 := nl2.AddPI("a")
	g1 := nl2.AddGate("g1", netlist.And, a2, a2)
	g2 := nl2.AddGate("g2", netlist.Or, nl2.Gates[g1].Out, a2)
	_ = nl2.RewirePin(g1, 1, nl2.Gates[g2].Out)
	m2, _ := lib.Bind(nl2)
	if _, err := Analyze(nl2, m2, make([]NetLoad, nl2.NumNets()), die); err == nil {
		t.Error("expected loop error")
	}
}

func TestSequentialCutPoints(t *testing.T) {
	// A DFF must cut the timing path: PI -> logic -> DFF -> logic -> PO
	// has critical path max(front, back), not front+back.
	nl := netlist.New("seq")
	a := nl.AddPI("a")
	prev := a
	for i := 0; i < 6; i++ {
		g := nl.AddGate("f"+string(rune('a'+i)), netlist.Inv, prev)
		prev = nl.Gates[g].Out
	}
	ff := nl.AddGate("ff", netlist.DFF, prev)
	prev2 := nl.Gates[ff].Out
	for i := 0; i < 2; i++ {
		g := nl.AddGate("b"+string(rune('a'+i)), netlist.Inv, prev2)
		prev2 = nl.Gates[g].Out
	}
	nl.AddPO("y", prev2)
	lib := cell.NewNangate45Like()
	masters, _ := lib.Bind(nl)
	die := geom.NewRect(geom.Point{X: 0, Y: 0}, geom.Point{X: 10000, Y: 10000})
	loads := make([]NetLoad, nl.NumNets())
	ppa, err := Analyze(nl, masters, loads, die)
	if err != nil {
		t.Fatal(err)
	}
	// Path to DFF.D: 6 inverters; path DFF.Q->PO: DFF + 2 inverters.
	// Critical must be the 6-inverter front, well below the 9-stage sum.
	inv := masters[0]
	front := 6 * inv.Delay(inv.InputCap)
	if ppa.DelayPS > front*1.5 {
		t.Fatalf("DFF did not cut path: delay=%.1f front≈%.1f", ppa.DelayPS, front)
	}
}
