package heapx

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHeapSortsRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		in := make([]int, n)
		var h []Item[int]
		for i := range in {
			in[i] = rng.Intn(50) // duplicates included
			h = Push(h, Item[int]{Pri: int64(in[i]), Value: i})
		}
		sort.Ints(in)
		for i := 0; i < n; i++ {
			var got Item[int]
			h, got = Pop(h)
			if got.Pri != int64(in[i]) {
				t.Fatalf("trial %d: pop %d = %d, want %d", trial, i, got.Pri, in[i])
			}
		}
		if len(h) != 0 {
			t.Fatalf("trial %d: heap not drained: %d left", trial, len(h))
		}
	}
}

func TestHeapSingleElement(t *testing.T) {
	h := Push(nil, Item[string]{Pri: 7, Value: "x"})
	h, got := Pop(h)
	if got.Value != "x" || got.Pri != 7 || len(h) != 0 {
		t.Fatalf("got %+v, %d left", got, len(h))
	}
}

func TestHeapReusesBacking(t *testing.T) {
	h := make([]Item[int], 0, 64)
	h = Push(h, Item[int]{Pri: 3})
	h = Push(h, Item[int]{Pri: 1})
	h, _ = Pop(h)
	h, _ = Pop(h)
	if cap(h) != 64 {
		t.Fatalf("backing array reallocated: cap %d", cap(h))
	}
}
