// Package heapx is a typed slice binary min-heap shared by the hot paths
// that outgrew container/heap: no interface{} boxing (one allocation per
// push) and no indirect dispatch — elements are Item[V] pairs ordered by a
// concrete int64 priority field, so the comparison compiles to a direct
// integer compare in every instantiation. Callers own the backing slice,
// so it can be reused across searches (`h = h[:0]`).
package heapx

// Item is one heap element: an int64 priority and a payload. Min-heap:
// the smallest Pri pops first; equal priorities pop in unspecified (but
// deterministic for a fixed push sequence) order.
type Item[V any] struct {
	Pri   int64
	Value V
}

// Push adds it to the heap and returns the updated slice.
func Push[V any](h []Item[V], it Item[V]) []Item[V] {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].Pri <= h[i].Pri {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

// Pop removes and returns the minimum element. It panics on an empty heap
// (same contract as container/heap).
func Pop[V any](h []Item[V]) ([]Item[V], Item[V]) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h[l].Pri < h[small].Pri {
			small = l
		}
		if r < n && h[r].Pri < h[small].Pri {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return h, top
}
