// Package correction implements stages (ii) and (iii) of the paper's
// protection scheme: embedding custom correction cells into the placed
// erroneous design, lifting the randomized nets to a high metal layer
// (M6 or M8), and restoring the true functionality through BEOL re-routing
// between *pairs* of correction cells.
//
// Correction-cell mechanics (paper Sec. 4, Fig. 3): each protected sink S
// gets a correction cell cellS. The erroneous netlist's driver De of S
// routes to cellS's input pin C; cellS's output pin Z routes to S. During
// initial place-and-route the internal arc C->Z realizes the erroneous
// connection. Restoration disables C->Z and D->Y and adds BEOL wires
// between the pair of cells of each swap: for swap (A,B), Y(cellB)->D(cellA)
// carries A's true signal into Z(cellA)->A, and Y(cellA)->D(cellB) carries
// B's. The cells' pins live in the lift layer, so all restoration wiring is
// invisible to the FEOL fab.
//
// The same machinery without swaps is the paper's naive-lifting baseline.
package correction

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"splitmfg/internal/cell"
	"splitmfg/internal/geom"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"
	"splitmfg/internal/place"
	"splitmfg/internal/route"

	"splitmfg/internal/defense/randomize"
)

// Options configures protected-layout construction.
type Options struct {
	LiftLayer   int // 6 for ISCAS-85, 8 for superblue (paper setup)
	UtilPercent int // placement utilization
	Seed        int64
	RouteOpt    route.Options

	// Observe, when non-nil, is called after each build stage ("place",
	// "lift", "route", "restore") with the stage's wall-clock duration.
	Observe func(stage string, elapsed time.Duration)
}

// observe reports a completed stage to the observer, if any.
func (o Options) observe(stage string, start time.Time) {
	if o.Observe != nil {
		o.Observe(stage, time.Since(start))
	}
}

func (o Options) withDefaults() Options {
	if o.LiftLayer == 0 {
		o.LiftLayer = 6
	}
	if o.UtilPercent == 0 {
		o.UtilPercent = 70
	}
	return o
}

// Protected bundles a protected design with its provenance.
type Protected struct {
	Design    *layout.Design
	Original  *netlist.Netlist
	Erroneous *netlist.Netlist
	Swaps     []randomize.Swap
	LiftLayer int

	// CellOf maps each protected sink pin to its correction cell (extra ID).
	CellOf map[netlist.PinRef]int
	// StubRoute maps each protected sink pin to the route ID of its
	// Z->sink stub.
	StubRoute map[netlist.PinRef]int
	// RestoreRoutes lists the BEOL restoration wires' route IDs.
	RestoreRoutes []int
}

// Route IDs for synthetic entities are assigned contiguously above the
// netlist nets: stubs occupy [NumNets, NumNets+numStubs) and restoration
// wires follow, so the layout's dense route-ID tables stay compact. Blocks
// keep the relative order nets < stubs < restores that sorted-route-ID
// consumers (timing, split views) rely on.
func (p *Protected) stubBase() int { return p.Design.Netlist.NumNets() }

// restoreBase is valid once routeErroneous assigned every stub (one per
// entry of CellOf).
func (p *Protected) restoreBase() int { return p.stubBase() + len(p.CellOf) }

// ProtectedSinks returns the set of sink pins covered by correction cells.
func (p *Protected) ProtectedSinks() map[netlist.PinRef]bool {
	m := make(map[netlist.PinRef]bool, len(p.CellOf))
	for pin := range p.CellOf {
		m[pin] = true
	}
	return m
}

// BuildOriginal places and routes a plain, unprotected design — the
// baseline every comparison starts from.
func BuildOriginal(nl *netlist.Netlist, lib *cell.Library, opt Options) (*layout.Design, error) {
	opt = opt.withDefaults()
	masters, err := lib.Bind(nl)
	if err != nil {
		return nil, err
	}
	start := time.Now() //smlint:wallclock phase timer feeding opt.observe progress reporting; never reaches results
	pl, err := place.Place(nl, masters, place.Options{UtilPercent: opt.UtilPercent, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	opt.observe("place", start)
	d := layout.NewDesign(nl, masters, pl, opt.RouteOpt)
	start = time.Now() //smlint:wallclock phase timer feeding opt.observe progress reporting; never reaches results
	if err := d.RouteAll(nil); err != nil {
		return nil, err
	}
	opt.observe("route", start)
	return d, nil
}

// BuildProtected constructs the paper's protected layout from an original
// netlist and its randomization result: the erroneous netlist is placed,
// correction cells are embedded and legalized, erroneous nets are lifted,
// and true connectivity is restored in the BEOL.
func BuildProtected(original *netlist.Netlist, r *randomize.Result, lib *cell.Library, opt Options) (*Protected, error) {
	opt = opt.withDefaults()
	err := buildSanity(original, r)
	if err != nil {
		return nil, err
	}
	corr, err := lib.Correction(opt.LiftLayer)
	if err != nil {
		return nil, err
	}
	erroneous := r.Erroneous
	// Masters bind identically for original and erroneous: swaps preserve
	// per-net fanout counts.
	masters, err := lib.Bind(erroneous)
	if err != nil {
		return nil, err
	}
	// Place the erroneous netlist: misleading placement falls out of the
	// wrong connectivity. The swapped drivers/sinks are do-not-touch in the
	// paper's flow; our flow performs no logic restructuring, so the
	// constraint is trivially honored.
	start := time.Now() //smlint:wallclock phase timer feeding opt.observe progress reporting; never reaches results
	pl, err := place.Place(erroneous, masters, place.Options{UtilPercent: opt.UtilPercent, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	opt.observe("place", start)
	d := layout.NewDesign(erroneous, masters, pl, opt.RouteOpt)

	p := &Protected{
		Design:    d,
		Original:  original,
		Erroneous: erroneous,
		Swaps:     r.Swaps,
		LiftLayer: opt.LiftLayer,
		CellOf:    map[netlist.PinRef]int{},
		StubRoute: map[netlist.PinRef]int{},
	}

	// Embed one correction cell per protected sink, near the midpoint of
	// its erroneous connection (the cell belongs to the erroneous net, so
	// the FEOL stays self-consistent and misleading).
	start = time.Now()                                 //smlint:wallclock phase timer feeding opt.observe progress reporting; never reaches results
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5eed)) //smlint:rawseed engine-scoped seed already derived upstream by the flow layer; the XOR is a fixed domain separator and re-mixing would shift every golden byte pin
	for _, pin := range SortedPins(r.Protected) {
		eNet := erroneous.Gates[pin.Gate].Fanin[pin.Pin]
		dpt := driverPoint(d, eNet)
		spt := pl.GateCenter(pin.Gate)
		mid := geom.Point{X: (dpt.X + spt.X) / 2, Y: (dpt.Y + spt.Y) / 2}
		// Jitter by up to one gcell so stacked midpoints spread before
		// legalization.
		mid.X += rng.Intn(d.Grid.GCell) - d.Grid.GCell/2
		mid.Y += rng.Intn(d.Grid.GCell) - d.Grid.GCell/2
		mid.X = geom.Clamp(mid.X, pl.Die.Lo.X, pl.Die.Hi.X-corr.WidthNM)
		mid.Y = geom.Clamp(mid.Y, pl.Die.Lo.Y, pl.Die.Hi.Y-cell.RowHeight)
		p.CellOf[pin] = d.AddExtra(corr, mid)
	}
	d.LegalizeExtras()
	if err := d.CheckExtrasLegal(); err != nil {
		return nil, fmt.Errorf("correction: %v", err)
	}
	opt.observe("lift", start)

	// Partition each erroneous net's sinks into protected and plain.
	start = time.Now() //smlint:wallclock phase timer feeding opt.observe progress reporting; never reaches results
	if err := p.routeErroneous(); err != nil {
		return nil, err
	}
	opt.observe("route", start)
	// BEOL restoration between pairs of correction cells.
	start = time.Now() //smlint:wallclock phase timer feeding opt.observe progress reporting; never reaches results
	if err := p.restore(); err != nil {
		return nil, err
	}
	opt.observe("restore", start)
	return p, nil
}

// SortedPins returns the set's pins in (gate, pin) order. Every consumer
// that turns a protected-pin set into a slice must use it so that RNG
// consumption and cell-ID assignment never depend on map iteration order.
func SortedPins(m map[netlist.PinRef]bool) []netlist.PinRef {
	pins := make([]netlist.PinRef, 0, len(m))
	for pin := range m {
		pins = append(pins, pin)
	}
	sort.Slice(pins, func(i, j int) bool {
		if pins[i].Gate != pins[j].Gate {
			return pins[i].Gate < pins[j].Gate
		}
		return pins[i].Pin < pins[j].Pin
	})
	return pins
}

func buildSanity(original *netlist.Netlist, r *randomize.Result) error {
	if r == nil || r.Erroneous == nil {
		return fmt.Errorf("correction: nil randomization result")
	}
	if original.NumGates() != r.Erroneous.NumGates() || original.NumNets() != r.Erroneous.NumNets() {
		return fmt.Errorf("correction: original and erroneous netlists differ in size")
	}
	return nil
}

func driverPoint(d *layout.Design, netID int) geom.Point {
	n := d.Netlist.Nets[netID]
	if n.IsPI() {
		return d.Placement.PIPads[n.PI]
	}
	return d.Placement.GateCenter(n.Driver)
}

// routeErroneous routes the full erroneous design: plain nets flat;
// protected nets as a lifted trunk (driver + plain sinks + the C pins of
// the protected sinks' correction cells) plus one lifted Z->sink stub per
// protected sink. The whole set goes through the batched wave-parallel
// routing API in one deterministic order (per net: trunk, then its
// stubs), so spatially disjoint entities route concurrently with results
// identical to the sequential schedule.
func (p *Protected) routeErroneous() error {
	d := p.Design
	protected := p.ProtectedSinks()
	// what describes each job for error reporting; parallel to jobs.
	type what struct {
		stub bool
		name string
		pin  netlist.PinRef
	}
	var jobs []layout.EntityJob
	var whats []what
	stubBase := p.stubBase()
	stub := 0
	for _, n := range d.Netlist.Nets {
		if n.FanoutCount() == 0 {
			continue
		}
		var trunk []layout.TaggedPin
		var prot []netlist.PinRef
		all := d.TaggedNetPins(n.ID)
		trunk = append(trunk, all[0]) // driver / PI pad
		for _, tp := range all[1:] {
			if tp.Role == layout.RoleSink && protected[tp.Ref] {
				prot = append(prot, tp.Ref)
				continue
			}
			trunk = append(trunk, tp)
		}
		lift := layout.DefaultLift(geom.HPWL(d.Placement.NetPoints(d.Netlist, n.ID)) / d.Grid.GCell)
		if len(prot) > 0 {
			lift = p.LiftLayer
			for _, pin := range prot {
				cellID := p.CellOf[pin]
				trunk = append(trunk, layout.TaggedPin{
					Pin:  route.Pin{Pt: d.Extras[cellID].Center(), Layer: p.LiftLayer},
					Role: layout.RoleCorrIn, Gate: cellID, PO: -1,
				})
			}
		}
		jobs = append(jobs, layout.EntityJob{RouteID: n.ID, NetID: n.ID, Pins: trunk, Lift: lift})
		whats = append(whats, what{name: n.Name})
		// Stubs: Z(cell) -> sink, also lifted (their wiring above the split
		// layer, pin access below).
		for _, pin := range prot {
			cellID := p.CellOf[pin]
			sinkPt := d.Placement.GateCenter(pin.Gate)
			pins := []layout.TaggedPin{
				{Pin: route.Pin{Pt: d.Extras[cellID].Center(), Layer: p.LiftLayer},
					Role: layout.RoleCorrOut, Gate: cellID, PO: -1},
				{Pin: route.Pin{Pt: sinkPt, Layer: 1},
					Role: layout.RoleSink, Gate: pin.Gate, Ref: pin, PO: -1},
			}
			// The stub carries, after restoration, the ORIGINAL net feeding
			// this sink — tag it so restored-PPA analysis attributes its RC
			// to the right net.
			trueNet := randomize.TrueSourceNet(p.Original, pin)
			jobs = append(jobs, layout.EntityJob{RouteID: stubBase + stub, NetID: trueNet, Pins: pins, Lift: p.LiftLayer})
			whats = append(whats, what{stub: true, pin: pin})
			p.StubRoute[pin] = stubBase + stub
			stub++
		}
	}
	if err := d.RouteEntities(jobs); err != nil {
		var je *route.JobError
		if errors.As(err, &je) {
			if w := whats[je.Index]; w.stub {
				return fmt.Errorf("correction: stub for %v: %v", w.pin, je.Err)
			} else {
				return fmt.Errorf("correction: trunk of net %q: %v", w.name, je.Err)
			}
		}
		return err
	}
	return nil
}

// restore adds the BEOL wires between pairs of correction cells: for swap
// (A,B), Y(cellB)->D(cellA) and Y(cellA)->D(cellB). All wiring stays at or
// above the lift layer (both terminals are lift-layer pins).
func (p *Protected) restore() error {
	d := p.Design
	var jobs []layout.EntityJob
	var sinks []netlist.PinRef // per job, for error reporting
	id := p.restoreBase()
	for _, s := range p.Swaps {
		cellA, okA := p.CellOf[s.A]
		cellB, okB := p.CellOf[s.B]
		if !okA || !okB {
			return fmt.Errorf("correction: swap %+v missing correction cells", s)
		}
		wires := []struct {
			from, to int
			sink     netlist.PinRef
		}{
			{cellB, cellA, s.A}, // A's true signal arrives via cellB's C->Y
			{cellA, cellB, s.B},
		}
		for _, w := range wires {
			pins := []layout.TaggedPin{
				{Pin: route.Pin{Pt: d.Extras[w.from].Center(), Layer: p.LiftLayer},
					Role: layout.RoleCorrOut, Gate: w.from, PO: -1},
				{Pin: route.Pin{Pt: d.Extras[w.to].Center(), Layer: p.LiftLayer},
					Role: layout.RoleCorrIn, Gate: w.to, PO: -1},
			}
			trueNet := randomize.TrueSourceNet(p.Original, w.sink)
			jobs = append(jobs, layout.EntityJob{RouteID: id, NetID: trueNet, Pins: pins, Lift: p.LiftLayer})
			sinks = append(sinks, w.sink)
			p.RestoreRoutes = append(p.RestoreRoutes, id)
			id++
		}
	}
	if err := d.RouteEntities(jobs); err != nil {
		var je *route.JobError
		if errors.As(err, &je) {
			return fmt.Errorf("correction: restore wire for %v: %v", sinks[je.Index], je.Err)
		}
		return err
	}
	d.Router.NegotiateReroute(3)
	return nil
}

// RestoredNetlist reconstructs the netlist realized by the physical design
// after BEOL restoration, by tracing signal flow through the correction
// cells: each protected sink reads the signal arriving at its cell's D pin,
// which the restoration wiring connects to its true source. It must equal
// the original netlist — the package's central correctness check.
func (p *Protected) RestoredNetlist() (*netlist.Netlist, error) {
	rec := p.Erroneous.Clone()
	// Build D-pin sources: restore wires connect Y(from) -> D(to). Y(from)
	// carries the signal at cellFrom's C pin, which is the erroneous net
	// that routed into it (the trunk).
	cSource := map[int]int{} // extra cell ID -> erroneous net at its C pin
	for pin, cellID := range p.CellOf {
		cSource[cellID] = p.Erroneous.Gates[pin.Gate].Fanin[pin.Pin]
	}
	cellOfSink := map[int]netlist.PinRef{}
	for pin, cellID := range p.CellOf {
		cellOfSink[cellID] = pin
	}
	for _, rid := range p.RestoreRoutes {
		pins := p.Design.Pins[rid]
		if len(pins) != 2 {
			return nil, fmt.Errorf("correction: restore route %d malformed", rid)
		}
		from, to := pins[0].Gate, pins[1].Gate
		src, ok := cSource[from]
		if !ok {
			return nil, fmt.Errorf("correction: restore route %d from unknown cell %d", rid, from)
		}
		sink, ok := cellOfSink[to]
		if !ok {
			return nil, fmt.Errorf("correction: restore route %d to unknown cell %d", rid, to)
		}
		// After restoration the sink reads src (via D->Z).
		if err := rec.RewirePin(sink.Gate, sink.Pin, src); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// BuildNaiveLifted applies the paper's naive-lifting baseline: the same
// set of sinks is lifted through single-input lifting cells, but the
// netlist is untouched (no randomization, no misleading connections).
func BuildNaiveLifted(original *netlist.Netlist, sinks []netlist.PinRef, lib *cell.Library, opt Options) (*Protected, error) {
	opt = opt.withDefaults()
	liftMaster, err := lib.Lifting(opt.LiftLayer)
	if err != nil {
		return nil, err
	}
	masters, err := lib.Bind(original)
	if err != nil {
		return nil, err
	}
	start := time.Now() //smlint:wallclock phase timer feeding opt.observe progress reporting; never reaches results
	pl, err := place.Place(original, masters, place.Options{UtilPercent: opt.UtilPercent, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	opt.observe("place", start)
	d := layout.NewDesign(original, masters, pl, opt.RouteOpt)
	p := &Protected{
		Design:    d,
		Original:  original,
		Erroneous: original,
		LiftLayer: opt.LiftLayer,
		CellOf:    map[netlist.PinRef]int{},
		StubRoute: map[netlist.PinRef]int{},
	}
	start = time.Now()                                 //smlint:wallclock phase timer feeding opt.observe progress reporting; never reaches results
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x11f7)) //smlint:rawseed engine-scoped seed already derived upstream by the flow layer; the XOR is a fixed domain separator and re-mixing would shift every golden byte pin
	lifted := map[netlist.PinRef]bool{}
	for _, pin := range sinks {
		if lifted[pin] {
			continue
		}
		lifted[pin] = true
		netID := original.Gates[pin.Gate].Fanin[pin.Pin]
		dpt := driverPoint(d, netID)
		spt := pl.GateCenter(pin.Gate)
		mid := geom.Point{X: (dpt.X + spt.X) / 2, Y: (dpt.Y + spt.Y) / 2}
		mid.X += rng.Intn(d.Grid.GCell) - d.Grid.GCell/2
		mid.Y += rng.Intn(d.Grid.GCell) - d.Grid.GCell/2
		mid.X = geom.Clamp(mid.X, pl.Die.Lo.X, pl.Die.Hi.X-liftMaster.WidthNM)
		mid.Y = geom.Clamp(mid.Y, pl.Die.Lo.Y, pl.Die.Hi.Y-cell.RowHeight)
		p.CellOf[pin] = d.AddExtra(liftMaster, mid)
	}
	d.LegalizeExtras()
	if err := d.CheckExtrasLegal(); err != nil {
		return nil, err
	}
	opt.observe("lift", start)
	start = time.Now() //smlint:wallclock phase timer feeding opt.observe progress reporting; never reaches results
	if err := p.routeErroneous(); err != nil {
		return nil, err
	}
	opt.observe("route", start)
	// No restoration needed: the lifting cell passes its one input through.
	return p, nil
}
