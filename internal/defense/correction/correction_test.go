package correction

import (
	"math/rand"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/randomize"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"
	"splitmfg/internal/sim"
)

func buildC432Protected(t testing.TB, seed int64) (*netlist.Netlist, *Protected) {
	t.Helper()
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	r, err := randomize.Randomize(nl, rng, randomize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	p, err := BuildProtected(nl, r, lib, Options{LiftLayer: 6, UtilPercent: 70, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return nl, p
}

func TestProtectedBuilds(t *testing.T) {
	_, p := buildC432Protected(t, 1)
	if err := p.Design.Router.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.CellOf) == 0 || len(p.RestoreRoutes) != 2*len(p.Swaps) {
		t.Fatalf("cells=%d restoreRoutes=%d swaps=%d", len(p.CellOf), len(p.RestoreRoutes), len(p.Swaps))
	}
}

func TestRestoredNetlistEqualsOriginal(t *testing.T) {
	// The central correctness property of the whole scheme: tracing the
	// physical design's signal flow through the correction cells after
	// BEOL restoration must yield exactly the original netlist.
	nl, p := buildC432Protected(t, 2)
	rec, err := p.RestoredNetlist()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.SameStructure(nl) {
		t.Fatal("restored netlist != original (BEOL restoration broken)")
	}
	// And functionally (belt and suspenders).
	rng := rand.New(rand.NewSource(7))
	eq, err := sim.Equivalent(nl, rec, rng, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("restored netlist functionally differs")
	}
}

func TestErroneousFEOLDiffers(t *testing.T) {
	nl, p := buildC432Protected(t, 3)
	rng := rand.New(rand.NewSource(8))
	oer, err := sim.OER(nl, p.Erroneous, rng, 64)
	if err != nil {
		t.Fatal(err)
	}
	if oer < 0.9 {
		t.Fatalf("erroneous netlist OER=%.3f, want ≈1", oer)
	}
}

func TestLiftedNetsRespectConstraint(t *testing.T) {
	_, p := buildC432Protected(t, 4)
	protected := p.ProtectedSinks()
	// Every protected net's trunk, stub, and restore wires carry MinLayer 6.
	for pin := range protected {
		eNet := p.Erroneous.Gates[pin.Gate].Fanin[pin.Pin]
		if rn := p.Design.Router.Net(eNet); rn == nil || rn.MinLayer != 6 {
			t.Fatalf("trunk of net %d not lifted", eNet)
		}
		sr := p.StubRoute[pin]
		if rn := p.Design.Router.Net(sr); rn == nil || rn.MinLayer != 6 {
			t.Fatalf("stub %d not lifted", sr)
		}
	}
	for _, rid := range p.RestoreRoutes {
		rn := p.Design.Router.Net(rid)
		if rn == nil || rn.MinLayer != 6 {
			t.Fatalf("restore route %d not lifted", rid)
		}
	}
}

func TestRestoreWiresInvisibleInFEOL(t *testing.T) {
	_, p := buildC432Protected(t, 5)
	sv, err := p.Design.Split(5)
	if err != nil {
		t.Fatal(err)
	}
	restore := map[int]bool{}
	for _, rid := range p.RestoreRoutes {
		restore[rid] = true
	}
	for _, f := range sv.Frags {
		if restore[f.RouteID] && len(f.Nodes) > 0 {
			t.Fatalf("restoration wire %d leaves FEOL fragments", f.RouteID)
		}
	}
	for _, vp := range sv.VPins {
		if restore[vp.RouteID] {
			t.Fatalf("restoration wire %d has a vpin at M5", vp.RouteID)
		}
	}
}

func TestProtectedSinksAreDriverlessFragments(t *testing.T) {
	_, p := buildC432Protected(t, 6)
	sv, err := p.Design.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	protected := p.ProtectedSinks()
	// Each protected sink's stub must appear as a pure-sink fragment (its
	// "driver" is a BEOL-pin correction cell the FEOL fab cannot see).
	found := 0
	for _, fid := range sv.SinkFrags() {
		for _, sp := range sv.Frags[fid].SinkPins() {
			if sp.Role == layout.RoleSink && protected[sp.Ref] {
				found++
			}
		}
	}
	if found < len(protected)/2 {
		t.Fatalf("only %d of %d protected sinks appear as open fragments", found, len(protected))
	}
}

func TestNaiveLiftingPreservesFunction(t *testing.T) {
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	r, err := randomize.Randomize(nl, rng, randomize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sinks []netlist.PinRef
	for pin := range r.Protected {
		sinks = append(sinks, pin)
	}
	lib := cell.NewNangate45Like()
	p, err := BuildNaiveLifted(nl, sinks, lib, Options{LiftLayer: 6, UtilPercent: 70, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Design.Router.Validate(); err != nil {
		t.Fatal(err)
	}
	// Naive lifting never changes the netlist.
	if !p.Erroneous.SameStructure(nl) {
		t.Fatal("naive lifting altered the netlist")
	}
	if len(p.RestoreRoutes) != 0 {
		t.Fatal("naive lifting should need no restoration wires")
	}
}

func TestCorrectionCellsLegal(t *testing.T) {
	_, p := buildC432Protected(t, 10)
	if err := p.Design.CheckExtrasLegal(); err != nil {
		t.Fatal(err)
	}
	// Zero area overhead: extras live inside the same die outline.
	for _, e := range p.Design.Extras {
		if e.Loc.X < p.Design.Placement.Die.Lo.X ||
			e.Loc.X+e.Master.WidthNM > p.Design.Placement.Die.Hi.X {
			t.Fatal("correction cell outside die")
		}
	}
}

func TestBuildErrors(t *testing.T) {
	nl, _ := bench.ISCAS85("c432")
	lib := cell.NewNangate45Like()
	if _, err := BuildProtected(nl, nil, lib, Options{}); err == nil {
		t.Error("nil randomization accepted")
	}
	other, _ := bench.ISCAS85("c880")
	rng := rand.New(rand.NewSource(1))
	r, _ := randomize.Randomize(other, rng, randomize.Options{MaxSwaps: 2})
	if _, err := BuildProtected(nl, r, lib, Options{}); err == nil {
		t.Error("mismatched netlists accepted")
	}
}

func TestProtectedM8LiftLayer(t *testing.T) {
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	r, err := randomize.Randomize(nl, rng, randomize.Options{MaxSwaps: 6, TargetOER: 2})
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	p, err := BuildProtected(nl, r, lib, Options{LiftLayer: 8, UtilPercent: 70, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Design.Router.Validate(); err != nil {
		t.Fatal(err)
	}
	// Restoration wires must live at M8+.
	for _, rid := range p.RestoreRoutes {
		for _, e := range p.Design.Router.Net(rid).Edges {
			lo := e.A.Z
			if e.B.Z < lo {
				lo = e.B.Z
			}
			if lo < 8 {
				t.Fatalf("restore wire %d has edge below M8: %v", rid, e)
			}
		}
	}
	rec, err := p.RestoredNetlist()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.SameStructure(nl) {
		t.Fatal("M8 restoration broken")
	}
}

func TestStubCarriesTrueNetTag(t *testing.T) {
	// Each Z->sink stub must be tagged with the ORIGINAL net feeding that
	// sink, so restored-PPA analysis attributes its RC correctly.
	nl, p := buildC432Protected(t, 12)
	for pin, rid := range p.StubRoute {
		want := nl.Gates[pin.Gate].Fanin[pin.Pin] // original binding
		if got := p.Design.NetOf[rid]; got != want {
			t.Fatalf("stub for %v tagged net %d, want %d", pin, got, want)
		}
	}
}
