// Package engine is the pluggable defense layer: every split-manufacturing
// protection scheme the pipeline can build is a Defense behind a common
// interface, registered by name in a process-wide registry — the mirror
// image of the attacker registry in internal/attack/engine. The
// cross-matrix evaluation (internal/flow.EvaluateMatrix) is parametric over
// defense names, so reproducing a new row of the paper's Tables 4/5 is a
// local change: write a Defense, Register it, and every CLI, report, and
// example can select it.
//
// Eleven defenses ship in the registry, covering all eight scheme families
// the paper compares:
//
//   - "randomize-correction": the paper's proposed scheme — netlist
//     randomization to OER ≈ 100% plus correction-cell lifting and BEOL
//     restoration (one randomization pass at the target OER; the
//     budget-escalation loop lives in flow.Protect).
//   - "naive-lifted": the paper's naive baseline — the same sink pins are
//     lifted through pass-through cells, netlist untouched.
//   - "placement-perturbation": Wang et al. DAC'16 pairwise cell swaps.
//   - "sengupta-random" / "sengupta-gcolor" / "sengupta-gtype1" /
//     "sengupta-gtype2": the four Sengupta et al. ICCAD'17 layout
//     strategies.
//   - "pin-swapping": Rajendran et al. DATE'13 block-pin swapping.
//   - "routing-perturbation": Wang et al. ASP-DAC'17 elevated detours.
//   - "synergistic": Feng et al. ICCAD'17 elevation plus spreading.
//   - "routing-blockage": Magaña et al. TVLSI'17 lower-layer blockage.
//
// Defenses must be deterministic functions of (netlist, library,
// Options.Seed): a fixed seed reproduces a bit-identical layout, which is
// what makes the parallel defense×attacker matrix order-insensitive and
// lets golden-report tests pin results byte-for-byte.
package engine

import (
	"context"

	attack "splitmfg/internal/attack/engine"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"
	"splitmfg/internal/registry"
	"splitmfg/internal/route"
)

// Options parameterizes one defense invocation.
type Options struct {
	// Seed is the seed of the defense scope (one matrix evaluation):
	// every defense built for the same design receives the same value,
	// exactly like attack engines share a layer-scope seed. A defense
	// must be a deterministic function of it and derive any streams it
	// needs with DeriveSeed(opt.Seed, label). Schemes that must agree on
	// a shared artifact use a shared label: randomize-correction and
	// naive-lifted both derive their sink selection from "randomize", so
	// the naive baseline lifts exactly the pins the proposed scheme
	// protects — the paper's apples-to-apples comparison.
	Seed int64

	// LiftLayer is the metal layer lifting schemes route through (0 = the
	// scheme's default, 6).
	LiftLayer int

	// UtilPercent is the placement utilization (0 = 70).
	UtilPercent int

	// TargetOER is the randomization stop criterion for the proposed
	// scheme (0 = 0.999).
	TargetOER float64

	// Fraction is the perturbed fraction for the prior-art schemes
	// (scheme-specific meaning; 0 = each scheme's published-ish default).
	Fraction float64

	// RouteParallelism is the worker count for wave-parallel net routing
	// inside the scheme's place-and-route (0 = GOMAXPROCS, 1 = serial).
	// Routed layouts are byte-identical at every level.
	RouteParallelism int

	// RouteStrategy selects flat or hierarchical batched routing for the
	// scheme's place-and-route (zero = auto, resolved per design by die
	// area).
	RouteStrategy route.Strategy
}

func (o Options) withDefaults() Options {
	if o.LiftLayer == 0 {
		o.LiftLayer = 6
	}
	if o.UtilPercent == 0 {
		o.UtilPercent = 70
	}
	if o.TargetOER == 0 {
		o.TargetOER = 0.999
	}
	return o
}

// Protected is the unified outcome every defense produces: the routed
// layout under the scheme, plus the scheme metadata the evaluation needs to
// score it the way the paper does.
type Protected struct {
	// Design is the placed-and-routed layout an FEOL adversary sees.
	Design *layout.Design

	// ProtectedPins, when non-nil, restricts CCR scoring to fragments
	// containing these sink pins — the paper scores the proposed scheme
	// (and naive lifting) over the randomized/lifted sinks only. nil means
	// every crossing fragment is scored (the prior-art schemes).
	ProtectedPins map[netlist.PinRef]bool

	// Swaps counts the connectivity exchanges the scheme performed
	// (randomization swaps, block-pin swaps; 0 for schemes that only move
	// cells or wires).
	Swaps int

	// Corr carries the correction-cell construction for lifting schemes
	// (randomize-correction, naive-lifted), nil otherwise. Matrix PPA
	// analysis uses it to score the restored design against the original
	// netlist instead of the erroneous one.
	Corr *correction.Protected

	// Metrics carries per-scheme extras (swap counts, erroneous OER,
	// perturbed-net counts, ...). Keys must be stable across runs; values
	// must be deterministic at a fixed seed.
	Metrics map[string]float64
}

// Defense is one protection scheme.
type Defense interface {
	// Name returns the registry name the defense is selected by.
	Name() string

	// Protect builds the scheme's layout for the netlist. It must treat nl
	// as read-only (clone anything it edits), honor ctx cancellation
	// between major phases, and be deterministic at a fixed opt.Seed.
	Protect(ctx context.Context, nl *netlist.Netlist, lib *cell.Library, opt Options) (*Protected, error)
}

// reg is the process-wide defense registry (shared generic mechanics in
// internal/registry, the same store the attacker layer uses).
var reg = registry.New[Defense]("defense")

// Register adds a defense to the registry, replacing any previous defense
// of the same name. It panics on an empty name.
func Register(d Defense) { reg.Register(d) }

// Lookup returns the defense registered under name.
func Lookup(name string) (Defense, bool) { return reg.Lookup(name) }

// Names lists the registered defense names in sorted order.
func Names() []string { return reg.Names() }

// Resolve maps defense names to defenses, failing with a message that
// lists the registry when any name is unknown.
func Resolve(names []string) ([]Defense, error) { return reg.Resolve(names) }

// DeriveSeed mixes a defense-local label into a seed, giving each
// scheme/stage an independent, order-insensitive stream from one master
// seed. It delegates to the attack engine's mixer (FNV-1a + splitmix64):
// one implementation is what guarantees defense and attack streams with
// distinct labels never collide by construction.
func DeriveSeed(seed int64, label string) int64 {
	return attack.DeriveSeed(seed, label)
}
