package engine

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defio"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"
)

func c432(t *testing.T) (*netlist.Netlist, *cell.Library) {
	t.Helper()
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	return nl, cell.NewNangate45Like()
}

func TestRegistryShipsAllSchemes(t *testing.T) {
	want := []string{
		"naive-lifted", "pin-swapping", "placement-perturbation",
		"randomize-correction", "routing-blockage", "routing-perturbation",
		"sengupta-gcolor", "sengupta-gtype1", "sengupta-gtype2",
		"sengupta-random", "synergistic",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry has %v, want %v", got, want)
		}
	}
}

func TestResolveUnknownNamesRegistry(t *testing.T) {
	if _, err := Resolve([]string{"randomize-correction", "nope"}); err == nil ||
		!strings.Contains(err.Error(), "nope") ||
		!strings.Contains(err.Error(), "pin-swapping") {
		t.Fatalf("Resolve error should name the offender and the registry, got: %v", err)
	}
	if ds, err := Resolve([]string{"pin-swapping"}); err != nil || len(ds) != 1 {
		t.Fatalf("Resolve of a known name failed: %v", err)
	}
}

func TestDeriveSeedIndependentStreams(t *testing.T) {
	a := DeriveSeed(1, "defense/pin-swapping")
	b := DeriveSeed(1, "defense/synergistic")
	c := DeriveSeed(2, "defense/pin-swapping")
	if a == b || a == c || a == 1 {
		t.Fatalf("derived seeds collide: %d %d %d", a, b, c)
	}
	if a != DeriveSeed(1, "defense/pin-swapping") {
		t.Fatal("DeriveSeed not deterministic")
	}
}

// checkSplitInvariants verifies the FEOL view's structural invariants:
// every vpin belongs to a valid fragment that back-references it, every
// fragment belongs to its route's ByRoute list, and vpin nodes sit exactly
// on the split layer.
func checkSplitInvariants(t *testing.T, name string, sv *layout.SplitView, layer int) {
	t.Helper()
	for _, vp := range sv.VPins {
		if vp.Frag < 0 || vp.Frag >= len(sv.Frags) {
			t.Fatalf("%s: M%d vpin %d has out-of-range fragment %d", name, layer, vp.ID, vp.Frag)
		}
		if vp.Node.Z != layer {
			t.Fatalf("%s: M%d vpin %d node on layer %d", name, layer, vp.ID, vp.Node.Z)
		}
		found := false
		for _, vid := range sv.Frags[vp.Frag].VPins {
			found = found || vid == vp.ID
		}
		if !found {
			t.Fatalf("%s: M%d fragment %d does not back-reference vpin %d", name, layer, vp.Frag, vp.ID)
		}
	}
	for fid := range sv.Frags {
		f := &sv.Frags[fid]
		if f.ID != fid {
			t.Fatalf("%s: M%d fragment %d mis-numbered as %d", name, layer, fid, f.ID)
		}
		if len(f.Nodes) == 0 {
			t.Fatalf("%s: M%d fragment %d has no nodes", name, layer, fid)
		}
		member := false
		for _, got := range sv.ByRoute[f.RouteID] {
			member = member || got == fid
		}
		if !member {
			t.Fatalf("%s: M%d ByRoute[%d] misses fragment %d", name, layer, f.RouteID, fid)
		}
		for _, vid := range f.VPins {
			if sv.VPins[vid].Frag != fid {
				t.Fatalf("%s: M%d fragment %d lists foreign vpin %d", name, layer, fid, vid)
			}
		}
	}
}

// TestEveryDefenseBuildsValidDeterministicLayout is the registry-wide
// property test: each registered defense must produce a structurally valid
// design (legal placement, fully routed and connected nets, coherent split
// views) and be a pure function of its seed (two builds serialize to
// byte-identical DEF).
func TestEveryDefenseBuildsValidDeterministicLayout(t *testing.T) {
	nl, lib := c432(t)
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			def, ok := Lookup(name)
			if !ok {
				t.Fatalf("registered name %q does not Lookup", name)
			}
			opt := Options{Seed: 11}
			p, err := def.Protect(context.Background(), nl, lib, opt)
			if err != nil {
				t.Fatal(err)
			}
			if p.Design == nil {
				t.Fatal("nil design")
			}
			d := p.Design
			if err := d.Placement.CheckLegal(); err != nil {
				t.Fatalf("illegal placement: %v", err)
			}
			if err := d.Router.Validate(); err != nil {
				t.Fatalf("invalid routing: %v", err)
			}
			// Every netlist net with fanout must have been routed.
			for _, n := range d.Netlist.Nets {
				if n.FanoutCount() == 0 {
					continue
				}
				if d.Router.Net(n.ID) == nil {
					t.Fatalf("net %q unrouted", n.Name)
				}
			}
			// Protected pins, when present, must name real sink pins.
			for pin := range p.ProtectedPins {
				if pin.Gate < 0 || pin.Gate >= d.Netlist.NumGates() {
					t.Fatalf("protected pin %v names no gate", pin)
				}
				if pin.Pin < 0 || pin.Pin >= len(d.Netlist.Gates[pin.Gate].Fanin) {
					t.Fatalf("protected pin %v names no fanin pin", pin)
				}
			}
			for _, layer := range []int{3, 4, 5} {
				sv, err := d.Split(layer)
				if err != nil {
					t.Fatal(err)
				}
				checkSplitInvariants(t, name, sv, layer)
			}
			// Determinism: the same seed rebuilds the identical layout...
			again, err := def.Protect(context.Background(), nl, lib, opt)
			if err != nil {
				t.Fatal(err)
			}
			var b1, b2 bytes.Buffer
			if err := defio.Write(&b1, d); err != nil {
				t.Fatal(err)
			}
			if err := defio.Write(&b2, again.Design); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatalf("%s is not deterministic: two seed-11 builds differ", name)
			}
			// ...and the defense must not have edited the shared input.
			ref, err := bench.ISCAS85("c432")
			if err != nil {
				t.Fatal(err)
			}
			if !nl.SameStructure(ref) {
				t.Fatalf("%s mutated the input netlist", name)
			}
		})
	}
}

// TestNaiveLiftedProtectsSameSinksAsProposed pins the paper's
// apples-to-apples baseline: at one scope seed, naive lifting must lift
// exactly the sink pins randomize-correction randomizes (both derive
// their sink selection from the shared "randomize" stream).
func TestNaiveLiftedProtectsSameSinksAsProposed(t *testing.T) {
	nl, lib := c432(t)
	opt := Options{Seed: 23}
	rc, _ := Lookup("randomize-correction")
	nlft, _ := Lookup("naive-lifted")
	a, err := rc.Protect(context.Background(), nl, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nlft.Protect(context.Background(), nl, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ProtectedPins) == 0 || len(a.ProtectedPins) != len(b.ProtectedPins) {
		t.Fatalf("protected-pin counts differ: %d vs %d", len(a.ProtectedPins), len(b.ProtectedPins))
	}
	for pin := range a.ProtectedPins {
		if !b.ProtectedPins[pin] {
			t.Fatalf("pin %v randomized by the proposed scheme but not lifted by the baseline", pin)
		}
	}
}

func TestDefenseHonorsCancellation(t *testing.T) {
	nl, lib := c432(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Names() {
		def, _ := Lookup(name)
		if _, err := def.Protect(ctx, nl, lib, Options{Seed: 1}); err == nil {
			t.Fatalf("%s ignored a cancelled context", name)
		}
	}
}

func TestRegisterPanicsOnEmptyName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register with empty name did not panic")
		}
	}()
	Register(flatDefense{name: ""})
}
