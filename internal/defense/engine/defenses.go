package engine

import (
	"context"
	"math/rand"

	"splitmfg/internal/cell"
	"splitmfg/internal/defense/baselines"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/defense/randomize"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"
	"splitmfg/internal/route"
)

func init() {
	Register(randomizeCorrection{})
	Register(naiveLifted{})
	Register(flatDefense{name: "placement-perturbation", build: buildPlacementPerturbation})
	Register(flatDefense{name: "sengupta-random", build: buildSengupta(baselines.Random)})
	Register(flatDefense{name: "sengupta-gcolor", build: buildSengupta(baselines.GColor)})
	Register(flatDefense{name: "sengupta-gtype1", build: buildSengupta(baselines.GType1)})
	Register(flatDefense{name: "sengupta-gtype2", build: buildSengupta(baselines.GType2)})
	Register(pinSwapping{})
	Register(flatDefense{name: "routing-perturbation", build: buildRoutingPerturbation})
	Register(flatDefense{name: "synergistic", build: buildSynergistic})
	Register(flatDefense{name: "routing-blockage", build: buildRoutingBlockage})
}

// randomizeRNG is the sink-selection stream shared by the lifting schemes:
// deriving it from a common label (rather than per scheme) is what makes
// naive-lifted protect the same pins as randomize-correction at one scope
// seed — the paper's like-for-like baseline.
func randomizeRNG(o Options) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(o.Seed, "randomize")))
}

func (o Options) baselineOptions() baselines.Options {
	return baselines.Options{UtilPercent: o.UtilPercent, Seed: o.Seed, Fraction: o.Fraction,
		RouteOpt: route.Options{Parallelism: o.RouteParallelism, Strategy: o.RouteStrategy}}
}

func (o Options) correctionOptions() correction.Options {
	return correction.Options{LiftLayer: o.LiftLayer, UtilPercent: o.UtilPercent, Seed: o.Seed,
		RouteOpt: route.Options{Parallelism: o.RouteParallelism, Strategy: o.RouteStrategy}}
}

// randomizeCorrection is the paper's proposed scheme: one randomization
// pass to the target OER, then correction-cell construction with BEOL
// restoration. The PPA-budget escalation loop is flow.Protect's concern;
// as a registry row the scheme is the attacker-facing layout itself.
type randomizeCorrection struct{}

func (randomizeCorrection) Name() string { return "randomize-correction" }

func (randomizeCorrection) Protect(ctx context.Context, nl *netlist.Netlist, lib *cell.Library, opt Options) (*Protected, error) {
	opt = opt.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, err := randomize.Randomize(nl, randomizeRNG(opt), randomize.Options{TargetOER: opt.TargetOER})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := correction.BuildProtected(nl, r, lib, opt.correctionOptions())
	if err != nil {
		return nil, err
	}
	return &Protected{
		Design:        p.Design,
		ProtectedPins: p.ProtectedSinks(),
		Swaps:         len(r.Swaps),
		Corr:          p,
		Metrics: map[string]float64{
			"swaps":         float64(len(r.Swaps)),
			"erroneous_oer": r.OER,
		},
	}, nil
}

// naiveLifted is the paper's naive baseline: the sinks the proposed scheme
// would randomize are lifted through pass-through cells, netlist untouched.
type naiveLifted struct{}

func (naiveLifted) Name() string { return "naive-lifted" }

func (naiveLifted) Protect(ctx context.Context, nl *netlist.Netlist, lib *cell.Library, opt Options) (*Protected, error) {
	opt = opt.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The same randomization stream and target select the sink set, so
	// naive lifting protects exactly the pins randomize-correction would
	// at the same scope seed (asserted by the engine tests).
	r, err := randomize.Randomize(nl, randomizeRNG(opt), randomize.Options{TargetOER: opt.TargetOER})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sinks := correction.SortedPins(r.Protected)
	p, err := correction.BuildNaiveLifted(nl, sinks, lib, opt.correctionOptions())
	if err != nil {
		return nil, err
	}
	return &Protected{
		Design:        p.Design,
		ProtectedPins: p.ProtectedSinks(),
		Corr:          p,
		Metrics:       map[string]float64{"lifted_sinks": float64(len(p.CellOf))},
	}, nil
}

// flatDefense adapts the prior-art builders that return a plain routed
// design on the original netlist (no protected-pin filter, no correction
// cells).
type flatDefense struct {
	name  string
	build func(nl *netlist.Netlist, lib *cell.Library, opt Options) (*layout.Design, map[string]float64, error)
}

func (f flatDefense) Name() string { return f.name }

func (f flatDefense) Protect(ctx context.Context, nl *netlist.Netlist, lib *cell.Library, opt Options) (*Protected, error) {
	opt = opt.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d, m, err := f.build(nl, lib, opt)
	if err != nil {
		return nil, err
	}
	return &Protected{Design: d, Metrics: m}, nil
}

func buildPlacementPerturbation(nl *netlist.Netlist, lib *cell.Library, opt Options) (*layout.Design, map[string]float64, error) {
	d, err := baselines.PlacementPerturbation(nl, lib, opt.baselineOptions())
	return d, nil, err
}

func buildSengupta(strat baselines.SenguptaStrategy) func(*netlist.Netlist, *cell.Library, Options) (*layout.Design, map[string]float64, error) {
	return func(nl *netlist.Netlist, lib *cell.Library, opt Options) (*layout.Design, map[string]float64, error) {
		d, err := baselines.Sengupta(nl, lib, strat, opt.baselineOptions())
		return d, nil, err
	}
}

func buildRoutingPerturbation(nl *netlist.Netlist, lib *cell.Library, opt Options) (*layout.Design, map[string]float64, error) {
	d, err := baselines.RoutingPerturbation(nl, lib, opt.baselineOptions())
	return d, nil, err
}

func buildSynergistic(nl *netlist.Netlist, lib *cell.Library, opt Options) (*layout.Design, map[string]float64, error) {
	d, err := baselines.Synergistic(nl, lib, opt.baselineOptions())
	return d, nil, err
}

func buildRoutingBlockage(nl *netlist.Netlist, lib *cell.Library, opt Options) (*layout.Design, map[string]float64, error) {
	d, err := baselines.RoutingBlockage(nl, lib, opt.baselineOptions())
	return d, nil, err
}

// pinSwapping wraps the block-pin-swapping baseline, which perturbs the
// netlist it routes; the swap count is the scheme's headline metadata.
type pinSwapping struct{}

func (pinSwapping) Name() string { return "pin-swapping" }

func (pinSwapping) Protect(ctx context.Context, nl *netlist.Netlist, lib *cell.Library, opt Options) (*Protected, error) {
	opt = opt.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d, swaps, err := baselines.PinSwapping(nl, lib, opt.baselineOptions())
	if err != nil {
		return nil, err
	}
	return &Protected{
		Design:  d,
		Swaps:   len(swaps),
		Metrics: map[string]float64{"pin_swaps": float64(len(swaps))},
	}, nil
}
