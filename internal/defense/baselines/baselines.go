// Package baselines re-implements the prior-art split-manufacturing
// defenses the paper compares against in Tables 4, 5, and 6:
//
//   - Placement perturbation, Wang et al. DAC'16 [5]: selected
//     security-critical gates are moved away from their optimal locations
//     by pairwise cell swaps before routing.
//   - Sengupta et al. ICCAD'17 [8], four strategies: Random relocation,
//     G-Color (graph coloring: mutually-unconnected gates are clustered so
//     physical neighbors are never logical neighbors), G-Type1 (cluster by
//     gate type), G-Type2 (type clustering with balanced bins).
//   - Pin swapping, Rajendran et al. DATE'13 [3]: partition the design into
//     blocks and swap the block-level output pins, perturbing only the
//     system-level interconnect.
//   - Routing perturbation, Wang et al. ASP-DAC'17 [12]: reroute selected
//     nets with scenic detours above the split layer (netlist untouched).
//   - Synergistic SM, Feng et al. ICCAD'17 [9]: combined layer elevation
//     plus detouring with congestion awareness.
//   - Routing blockage, Magaña et al. TVLSI'17 [7]: insert lower-layer
//     routing blockages, implicitly detouring wires upward (measured by
//     ∆V67/∆V78 in Table 6).
//
// Each builder returns a routed layout.Design on the *original* netlist
// (none of these schemes change functionality), ready for the same attack
// harness as the paper's proposed scheme.
package baselines

import (
	"fmt"
	"math/rand"
	"sort"

	"splitmfg/internal/cell"
	"splitmfg/internal/geom"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"
	"splitmfg/internal/place"
	"splitmfg/internal/route"
)

// Options shared by the baseline builders.
type Options struct {
	UtilPercent int
	Seed        int64
	RouteOpt    route.Options
	// Fraction of gates/nets perturbed (defense-specific meaning); zero
	// selects each scheme's published-ish default.
	Fraction float64
}

func (o Options) withDefaults() Options {
	if o.UtilPercent == 0 {
		o.UtilPercent = 70
	}
	if o.Fraction == 0 {
		o.Fraction = 0.15
	}
	return o
}

func placeBound(nl *netlist.Netlist, lib *cell.Library, opt Options) ([]*cell.Master, *place.Placement, error) {
	masters, err := lib.Bind(nl)
	if err != nil {
		return nil, nil, err
	}
	pl, err := place.Place(nl, masters, place.Options{UtilPercent: opt.UtilPercent, Seed: opt.Seed})
	if err != nil {
		return nil, nil, err
	}
	return masters, pl, nil
}

func routeFlat(nl *netlist.Netlist, masters []*cell.Master, pl *place.Placement, ropt route.Options) (*layout.Design, error) {
	d := layout.NewDesign(nl, masters, pl, ropt)
	if err := d.RouteAll(nil); err != nil {
		return nil, err
	}
	return d, nil
}

// PlacementPerturbation implements [5]: swap the locations of randomly
// selected same-width gate pairs before routing, displacing each selected
// gate from its wirelength-optimal position.
func PlacementPerturbation(nl *netlist.Netlist, lib *cell.Library, opt Options) (*layout.Design, error) {
	opt = opt.withDefaults()
	masters, pl, err := placeBound(nl, lib, opt)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ 0xa5)) //smlint:rawseed engine-scoped seed already derived upstream by the flow layer; the XOR is a fixed domain separator and re-mixing would shift every golden byte pin
	perturbPairs(pl, rng, int(float64(nl.NumGates())*opt.Fraction/2), 0)
	return routeFlat(nl, masters, pl, opt.RouteOpt)
}

// perturbPairs swaps up to n same-width pairs; minDistNM forces swaps to
// move cells at least that far (0 = any).
func perturbPairs(pl *place.Placement, rng *rand.Rand, n, minDistNM int) {
	byWidth := map[int][]int{}
	for g, c := range pl.Cells {
		byWidth[c.Master.WidthNM] = append(byWidth[c.Master.WidthNM], g)
	}
	widths := make([]int, 0, len(byWidth))
	for w := range byWidth {
		widths = append(widths, w)
	}
	sort.Ints(widths)
	done := 0
	for tries := 0; tries < n*20 && done < n; tries++ {
		w := widths[rng.Intn(len(widths))]
		group := byWidth[w]
		if len(group) < 2 {
			continue
		}
		a := group[rng.Intn(len(group))]
		b := group[rng.Intn(len(group))]
		if a == b {
			continue
		}
		if minDistNM > 0 && pl.GateCenter(a).Manhattan(pl.GateCenter(b)) < minDistNM {
			continue
		}
		pl.SwapCells(a, b)
		done++
	}
}

// SenguptaStrategy selects one of [8]'s four techniques.
type SenguptaStrategy int

// The four published strategies.
const (
	Random SenguptaStrategy = iota
	GColor
	GType1
	GType2
)

// String names the strategy as in the paper's Table 4 header.
func (s SenguptaStrategy) String() string {
	switch s {
	case Random:
		return "Random"
	case GColor:
		return "G-Color"
	case GType1:
		return "G-Type1"
	case GType2:
		return "G-Type2"
	default:
		return fmt.Sprintf("Sengupta(%d)", int(s))
	}
}

// Sengupta implements the information-theoretic layout techniques of [8].
// All four strategies re-arrange cells so that physical proximity stops
// implying logical connectivity:
//
//   - Random: every cell is relocated to a uniformly random legal site.
//   - GColor: gates are greedily colored so adjacent (connected) gates get
//     different colors, then cells are laid out color-by-color — physical
//     neighbors share a color and are thus never connected.
//   - GType1: cells are laid out grouped by gate type (all NANDs together,
//     etc.), destroying connectivity-driven placement.
//   - GType2: like GType1 but the type groups are interleaved in balanced
//     bins, keeping the area distribution even.
func Sengupta(nl *netlist.Netlist, lib *cell.Library, strat SenguptaStrategy, opt Options) (*layout.Design, error) {
	opt = opt.withDefaults()
	masters, pl, err := placeBound(nl, lib, opt)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5e9)) //smlint:rawseed engine-scoped seed already derived upstream by the flow layer; the XOR is a fixed domain separator and re-mixing would shift every golden byte pin
	order := make([]int, nl.NumGates())
	for i := range order {
		order[i] = i
	}
	switch strat {
	case Random:
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	case GColor:
		colors := greedyColor(nl)
		sort.SliceStable(order, func(a, b int) bool {
			if colors[order[a]] != colors[order[b]] {
				return colors[order[a]] < colors[order[b]]
			}
			return order[a] < order[b]
		})
	case GType1:
		sort.SliceStable(order, func(a, b int) bool {
			ta, tb := nl.Gates[order[a]].Type, nl.Gates[order[b]].Type
			if ta != tb {
				return ta < tb
			}
			return order[a] < order[b]
		})
	case GType2:
		// Balanced interleave: round-robin across type groups.
		groups := map[netlist.GateType][]int{}
		var types []netlist.GateType
		for _, g := range nl.Gates {
			if _, ok := groups[g.Type]; !ok {
				types = append(types, g.Type)
			}
			groups[g.Type] = append(groups[g.Type], g.ID)
		}
		sort.Slice(types, func(a, b int) bool { return types[a] < types[b] })
		order = order[:0]
		for i := 0; ; i++ {
			added := false
			for _, t := range types {
				if i < len(groups[t]) {
					order = append(order, groups[t][i])
					added = true
				}
			}
			if !added {
				break
			}
		}
	default:
		return nil, fmt.Errorf("baselines: unknown Sengupta strategy %d", strat)
	}
	permuteCellsToOrder(pl, order)
	return routeFlat(nl, masters, pl, opt.RouteOpt)
}

// greedyColor colors the gate-adjacency graph (connected gates adjacent).
func greedyColor(nl *netlist.Netlist) []int {
	colors := make([]int, nl.NumGates())
	for i := range colors {
		colors[i] = -1
	}
	for _, g := range nl.Gates {
		used := map[int]bool{}
		for _, nb := range nl.FaninGates(g.ID) {
			if colors[nb] >= 0 {
				used[colors[nb]] = true
			}
		}
		for _, nb := range nl.FanoutGates(g.ID) {
			if colors[nb] >= 0 {
				used[colors[nb]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[g.ID] = c
	}
	return colors
}

// permuteCellsToOrder reassigns the existing legal sites (sorted row-major)
// to gates in the given order. Site shapes only fit same-width cells, so
// the permutation is done per width class to stay legal.
func permuteCellsToOrder(pl *place.Placement, order []int) {
	// Collect sites per width class in row-major order.
	type site struct {
		loc geom.Point
	}
	byWidth := map[int][]int{} // width -> gates in 'order' sequence
	for _, g := range order {
		w := pl.Cells[g].Master.WidthNM
		byWidth[w] = append(byWidth[w], g)
	}
	for w, gates := range byWidth {
		sites := make([]site, 0, len(gates))
		members := []int{}
		for g, c := range pl.Cells {
			if c.Master.WidthNM == w {
				sites = append(sites, site{c.Loc})
				members = append(members, g)
			}
		}
		_ = members
		sort.Slice(sites, func(a, b int) bool {
			if sites[a].loc.Y != sites[b].loc.Y {
				return sites[a].loc.Y < sites[b].loc.Y
			}
			return sites[a].loc.X < sites[b].loc.X
		})
		for i, g := range gates {
			pl.Cells[g].Loc = sites[i].loc
		}
	}
}

// PinSwapping implements [3]: the netlist is partitioned into blocks (by
// BFS clustering), and the output pins of randomly chosen block pairs are
// swapped at the block boundary before routing — only the system-level
// interconnect is perturbed, gate-level connections inside blocks stay
// intact (which is exactly the weakness the paper points out).
//
// The returned design routes the *perturbed* interconnect; the swap list
// is also returned so callers can reason about what was protected.
func PinSwapping(nl *netlist.Netlist, lib *cell.Library, opt Options) (*layout.Design, [][2]int, error) {
	opt = opt.withDefaults()
	blocks := clusterBlocks(nl, 24)
	masters, pl, err := placeBound(nl, lib, opt)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x9175)) //smlint:rawseed engine-scoped seed already derived upstream by the flow layer; the XOR is a fixed domain separator and re-mixing would shift every golden byte pin
	// Cross-block nets are the "block pins". Swap sink sets of random
	// pairs of cross-block nets that originate in different blocks.
	var crossNets []int
	for _, n := range nl.Nets {
		if n.IsPI() || len(n.Sinks) == 0 {
			continue
		}
		db := blocks[n.Driver]
		for _, s := range n.Sinks {
			if blocks[s.Gate] != db {
				crossNets = append(crossNets, n.ID)
				break
			}
		}
	}
	work := nl.Clone()
	var swaps [][2]int
	want := int(float64(len(crossNets)) * opt.Fraction)
	for tries := 0; tries < want*20 && len(swaps) < want; tries++ {
		a := crossNets[rng.Intn(len(crossNets))]
		b := crossNets[rng.Intn(len(crossNets))]
		if a == b {
			continue
		}
		// Swap one cross-block sink of each.
		pa, ok1 := crossSink(work, blocks, a)
		pb, ok2 := crossSink(work, blocks, b)
		if !ok1 || !ok2 || pa == pb {
			continue
		}
		if work.Gates[pa.Gate].Fanin[pa.Pin] == work.Gates[pb.Gate].Fanin[pb.Pin] {
			continue
		}
		if work.SwapCreatesLoop(pa, pb) {
			continue
		}
		if err := work.SwapSinks(pa, pb); err != nil {
			continue
		}
		swaps = append(swaps, [2]int{a, b})
	}
	// Route the perturbed netlist on the original placement; the attacker
	// sees misleading system-level wiring only.
	d := layout.NewDesign(work, masters, pl, opt.RouteOpt)
	if err := d.RouteAll(nil); err != nil {
		return nil, nil, err
	}
	return d, swaps, nil
}

func crossSink(nl *netlist.Netlist, blocks []int, netID int) (netlist.PinRef, bool) {
	n := nl.Nets[netID]
	if n.Driver < 0 {
		return netlist.PinRef{}, false
	}
	db := blocks[n.Driver]
	for _, s := range n.Sinks {
		if blocks[s.Gate] != db {
			return s, true
		}
	}
	return netlist.PinRef{}, false
}

// clusterBlocks groups gates into connected blocks of roughly the given
// size via BFS over the connectivity graph.
func clusterBlocks(nl *netlist.Netlist, blockSize int) []int {
	blocks := make([]int, nl.NumGates())
	for i := range blocks {
		blocks[i] = -1
	}
	next := 0
	for seed := range blocks {
		if blocks[seed] >= 0 {
			continue
		}
		id := next
		next++
		queue := []int{seed}
		blocks[seed] = id
		count := 1
		for len(queue) > 0 && count < blockSize {
			g := queue[0]
			queue = queue[1:]
			for _, nb := range append(nl.FaninGates(g), nl.FanoutGates(g)...) {
				if blocks[nb] < 0 {
					blocks[nb] = id
					count++
					queue = append(queue, nb)
					if count >= blockSize {
						break
					}
				}
			}
		}
	}
	return blocks
}

// RoutingPerturbation implements [12]: a randomly selected fraction of
// nets is rerouted with elevated detours (lifted to M4/M5), without any
// netlist change.
func RoutingPerturbation(nl *netlist.Netlist, lib *cell.Library, opt Options) (*layout.Design, error) {
	opt = opt.withDefaults()
	masters, pl, err := placeBound(nl, lib, opt)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x12)) //smlint:rawseed engine-scoped seed already derived upstream by the flow layer; the XOR is a fixed domain separator and re-mixing would shift every golden byte pin
	lifts := map[int]int{}
	for _, n := range nl.Nets {
		if n.FanoutCount() > 0 && rng.Float64() < opt.Fraction {
			lifts[n.ID] = 4 // detour above the typical M3 split
		}
	}
	d := layout.NewDesign(nl, masters, pl, opt.RouteOpt)
	if err := d.RouteAll(lifts); err != nil {
		return nil, err
	}
	return d, nil
}

// Synergistic implements [9]: layer elevation to M5/M6 for the selected
// nets plus placement-side spreading of their endpoints — the strongest
// prior routing-centric defense in Table 5.
func Synergistic(nl *netlist.Netlist, lib *cell.Library, opt Options) (*layout.Design, error) {
	opt = opt.withDefaults()
	masters, pl, err := placeBound(nl, lib, opt)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x599)) //smlint:rawseed engine-scoped seed already derived upstream by the flow layer; the XOR is a fixed domain separator and re-mixing would shift every golden byte pin
	// Spread the endpoints of the selected nets a little (placement part).
	perturbPairs(pl, rng, int(float64(nl.NumGates())*opt.Fraction/3), 4*cell.RowHeight)
	lifts := map[int]int{}
	for _, n := range nl.Nets {
		if n.FanoutCount() > 0 && rng.Float64() < opt.Fraction {
			lifts[n.ID] = 6 // elevate through the common split layers
		}
	}
	d := layout.NewDesign(nl, masters, pl, opt.RouteOpt)
	if err := d.RouteAll(lifts); err != nil {
		return nil, err
	}
	return d, nil
}

// RoutingBlockage implements [7]: lower-layer capacity in randomly chosen
// regions is effectively blocked, forcing implicit detours upward. We
// model the blockage by halving the capacity available below M5 (capacity
// is global in our router, so the blockage fraction maps to a capacity
// reduction), which pushes wires into M5+ just as the published scheme's
// regional blockages do. Measured, like Table 6, by ∆V67/∆V78.
func RoutingBlockage(nl *netlist.Netlist, lib *cell.Library, opt Options) (*layout.Design, error) {
	opt = opt.withDefaults()
	masters, pl, err := placeBound(nl, lib, opt)
	if err != nil {
		return nil, err
	}
	ropt := opt.RouteOpt
	if ropt.Capacity == 0 {
		// Mirror the router's own default, then halve it: that is the
		// blockage.
		gc := geom.Clamp(pl.Die.W()/80/10*10, 560, route.DefaultGCellNM)
		ropt.Capacity = (gc + 95) / 190 / 2
		if ropt.Capacity < 1 {
			ropt.Capacity = 1
		}
	}
	d := layout.NewDesign(nl, masters, pl, ropt)
	if err := d.RouteAll(nil); err != nil {
		return nil, err
	}
	return d, nil
}
