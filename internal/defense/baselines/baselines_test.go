package baselines

import (
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"
)

func c432(t *testing.T) (*netlist.Netlist, *cell.Library) {
	t.Helper()
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	return nl, cell.NewNangate45Like()
}

func checkDesign(t *testing.T, d *layout.Design, nl *netlist.Netlist) {
	t.Helper()
	if err := d.Router.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := d.Placement.CheckLegal(); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementPerturbationBuilds(t *testing.T) {
	nl, lib := c432(t)
	d, err := PlacementPerturbation(nl, lib, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkDesign(t, d, nl)
	// Functionality untouched.
	if !d.Netlist.SameStructure(nl) {
		t.Fatal("placement perturbation must not change the netlist")
	}
}

func TestPlacementPerturbationMovesCells(t *testing.T) {
	nl, lib := c432(t)
	base, err := PlacementPerturbation(nl, lib, Options{Seed: 1, Fraction: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	pert, err := PlacementPerturbation(nl, lib, Options{Seed: 1, Fraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for g := range pert.Placement.Cells {
		if pert.Placement.Cells[g].Loc != base.Placement.Cells[g].Loc {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("perturbation moved nothing")
	}
}

func TestSenguptaStrategies(t *testing.T) {
	nl, lib := c432(t)
	for _, s := range []SenguptaStrategy{Random, GColor, GType1, GType2} {
		d, err := Sengupta(nl, lib, s, Options{Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		checkDesign(t, d, nl)
		if !d.Netlist.SameStructure(nl) {
			t.Fatalf("%v changed the netlist", s)
		}
	}
	if _, err := Sengupta(nl, lib, SenguptaStrategy(9), Options{Seed: 2}); err == nil {
		t.Fatal("invalid strategy accepted")
	}
}

func TestGColorNeighborsShareColor(t *testing.T) {
	nl, _ := c432(t)
	colors := greedyColor(nl)
	for _, g := range nl.Gates {
		for _, nb := range nl.FanoutGates(g.ID) {
			if nb != g.ID && colors[nb] == colors[g.ID] {
				t.Fatalf("connected gates %d,%d share color %d", g.ID, nb, colors[g.ID])
			}
		}
	}
}

func TestPinSwappingPerturbsInterconnectOnly(t *testing.T) {
	nl, lib := c432(t)
	d, swaps, err := PinSwapping(nl, lib, Options{Seed: 4, Fraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	checkDesign(t, d, nl)
	if len(swaps) == 0 {
		t.Fatal("no block-pin swaps performed")
	}
	// The routed netlist differs from the original (it is perturbed) but
	// has identical size.
	if d.Netlist.SameStructure(nl) {
		t.Fatal("pin swapping changed nothing")
	}
	if d.Netlist.NumGates() != nl.NumGates() {
		t.Fatal("pin swapping altered gate count")
	}
	if d.Netlist.HasCombLoop() {
		t.Fatal("pin swapping created a loop")
	}
}

func TestRoutingPerturbationLifts(t *testing.T) {
	nl, lib := c432(t)
	d, err := RoutingPerturbation(nl, lib, Options{Seed: 5, Fraction: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	checkDesign(t, d, nl)
	lifted := 0
	for _, rn := range d.Router.Nets() {
		if rn.MinLayer >= 4 {
			lifted++
		}
	}
	if lifted == 0 {
		t.Fatal("no nets detoured upward")
	}
}

func TestSynergisticElevates(t *testing.T) {
	nl, lib := c432(t)
	d, err := Synergistic(nl, lib, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	checkDesign(t, d, nl)
	s := d.Router.ComputeStats()
	if s.Vias[5] == 0 {
		t.Fatal("synergistic scheme produced no V56 vias")
	}
}

func TestRoutingBlockagePushesWiresUp(t *testing.T) {
	nl, lib := c432(t)
	plain, err := PlacementPerturbation(nl, lib, Options{Seed: 7, Fraction: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := RoutingBlockage(nl, lib, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sp := plain.Router.ComputeStats()
	sb := blocked.Router.ComputeStats()
	upPlain := sp.Vias[4] + sp.Vias[5] + sp.Vias[6]
	upBlocked := sb.Vias[4] + sb.Vias[5] + sb.Vias[6]
	if upBlocked <= upPlain {
		t.Fatalf("blockage did not push wires up: V45+V56+V67 %d vs %d", upBlocked, upPlain)
	}
}

func TestClusterBlocks(t *testing.T) {
	nl, _ := c432(t)
	blocks := clusterBlocks(nl, 24)
	sizes := map[int]int{}
	for _, b := range blocks {
		if b < 0 {
			t.Fatal("unassigned gate")
		}
		sizes[b]++
	}
	if len(sizes) < 2 {
		t.Fatal("expected multiple blocks")
	}
	for b, n := range sizes {
		if n > 24*3 {
			t.Fatalf("block %d oversized: %d", b, n)
		}
	}
}
