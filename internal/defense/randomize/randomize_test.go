package randomize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"splitmfg/internal/bench"
	"splitmfg/internal/sim"
)

func TestRandomizeReachesHighOER(t *testing.T) {
	nl, err := bench.ISCAS85("c880")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	res, err := Randomize(nl, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OER < 0.95 {
		t.Fatalf("OER = %.3f after %d swaps, want ≈1", res.OER, len(res.Swaps))
	}
	if len(res.Swaps) == 0 {
		t.Fatal("no swaps recorded")
	}
	if res.Erroneous.HasCombLoop() {
		t.Fatal("loop in erroneous netlist")
	}
	// Gate/net counts unchanged (swaps only rewire).
	if res.Erroneous.NumGates() != nl.NumGates() || res.Erroneous.NumNets() != nl.NumNets() {
		t.Fatal("randomization changed netlist size")
	}
}

func TestProtectedPinsUnique(t *testing.T) {
	nl, _ := bench.ISCAS85("c432")
	rng := rand.New(rand.NewSource(2))
	res, err := Randomize(nl, rng, Options{MaxSwaps: 20, TargetOER: 2 /*unreachable: use all swaps*/})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range res.Swaps {
		for _, p := range []struct{ g, pin int }{{s.A.Gate, s.A.Pin}, {s.B.Gate, s.B.Pin}} {
			k := string(rune(p.g)) + ":" + string(rune(p.pin))
			if seen[k] {
				t.Fatal("pin swapped twice")
			}
			seen[k] = true
		}
	}
	if len(res.Protected) != 2*len(res.Swaps) {
		t.Fatalf("protected=%d swaps=%d", len(res.Protected), len(res.Swaps))
	}
}

func TestRestoreRecoversOriginal(t *testing.T) {
	nl, _ := bench.ISCAS85("c1355")
	rng := rand.New(rand.NewSource(3))
	res, err := Randomize(nl, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Erroneous.SameStructure(nl) {
		t.Fatal("erroneous equals original")
	}
	if err := Restore(res.Erroneous, res.Swaps); err != nil {
		t.Fatal(err)
	}
	if !res.Erroneous.SameStructure(nl) {
		t.Fatal("restore did not recover the original structure")
	}
}

func TestErroneousDiffersFunctionally(t *testing.T) {
	nl, _ := bench.ISCAS85("c432")
	rng := rand.New(rand.NewSource(4))
	res, err := Randomize(nl, rng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hd, err := sim.HD(nl, res.Erroneous, rng, 64)
	if err != nil {
		t.Fatal(err)
	}
	if hd <= 0 {
		t.Fatal("erroneous netlist functionally identical")
	}
}

func TestMaxSwapsRespected(t *testing.T) {
	nl, _ := bench.ISCAS85("c432")
	rng := rand.New(rand.NewSource(5))
	res, err := Randomize(nl, rng, Options{MaxSwaps: 3, TargetOER: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Swaps) > 3 {
		t.Fatalf("swaps = %d > 3", len(res.Swaps))
	}
}

func TestRejectsCyclicInput(t *testing.T) {
	nl, _ := bench.ISCAS85("c432")
	// Manufacture a cycle.
	g0 := nl.Gates[0]
	last := nl.Gates[len(nl.Gates)-1]
	if !nl.PathExists(g0.ID, last.ID) {
		// find some reachable pair
		for _, g := range nl.Gates {
			if nl.PathExists(g0.ID, g.ID) && len(g.Fanin) > 0 {
				last = g
				break
			}
		}
	}
	_ = nl.RewirePin(g0.ID, 0, last.Out)
	if !nl.HasCombLoop() {
		t.Skip("could not create loop for this seed")
	}
	rng := rand.New(rand.NewSource(6))
	if _, err := Randomize(nl, rng, Options{}); err == nil {
		t.Fatal("cyclic input accepted")
	}
}

func TestPropertyRandomizeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, err := bench.Generate(bench.Spec{
			Name: "p", PIs: 8, POs: 4, Gates: 60, Seed: seed, Locality: 0.7,
		})
		if err != nil {
			return false
		}
		res, err := Randomize(nl, rng, Options{MaxSwaps: 10, PatternWords: 8})
		if err != nil {
			return false
		}
		if res.Erroneous.Validate() != nil || res.Erroneous.HasCombLoop() {
			return false
		}
		// Per-net sink counts are preserved under swaps.
		for id, n := range nl.Nets {
			if n.FanoutCount() != res.Erroneous.Nets[id].FanoutCount() {
				return false
			}
		}
		// Restore is exact.
		if Restore(res.Erroneous, res.Swaps) != nil {
			return false
		}
		return res.Erroneous.SameStructure(nl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
