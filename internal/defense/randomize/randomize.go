// Package randomize implements stage (i) of the paper's protection scheme:
// iteratively swapping the connectivity of randomly selected pairs of
// drivers and their sinks — never creating a combinational loop — until the
// output error rate (OER) of the modified netlist approaches 100%. The
// original connectivity and the swapped pins are tracked so that the
// correction stage can later restore true functionality through the BEOL.
package randomize

import (
	"fmt"
	"math/rand"

	"splitmfg/internal/netlist"
	"splitmfg/internal/sim"
)

// Swap records one connectivity exchange: after the swap, pin A reads the
// net that fed B and vice versa.
type Swap struct {
	A, B netlist.PinRef
}

// Options tunes randomization.
type Options struct {
	TargetOER    float64 // stop once OER reaches this (default 0.999)
	MaxSwaps     int     // hard cap on swaps (default: 15% of gate input pins)
	PatternWords int     // 64-pattern words per OER estimate (default 64 = 4096 patterns)
	CheckEvery   int     // OER evaluation cadence in swaps (default 4)
}

func (o Options) withDefaults(nl *netlist.Netlist) Options {
	if o.TargetOER == 0 {
		o.TargetOER = 0.999
	}
	if o.MaxSwaps == 0 {
		pins := 0
		for _, g := range nl.Gates {
			pins += len(g.Fanin)
		}
		o.MaxSwaps = pins * 15 / 200 // 7.5% of pins = 15% of pins swapped
		if o.MaxSwaps < 2 {
			o.MaxSwaps = 2
		}
	}
	if o.PatternWords == 0 {
		o.PatternWords = 64
	}
	if o.CheckEvery == 0 {
		o.CheckEvery = 4
	}
	return o
}

// Result is the randomization outcome.
type Result struct {
	Erroneous *netlist.Netlist // the randomized netlist (same gate/net IDs)
	Swaps     []Swap           // tracked connectivity exchanges
	OER       float64          // final OER of Erroneous vs the original
	Protected map[netlist.PinRef]bool
}

// Randomize produces an erroneous netlist from the original. Swapped pins
// are unique (each sink participates in at most one swap) so that the
// correction-cell stage can pair cells one-to-one.
func Randomize(original *netlist.Netlist, rng *rand.Rand, opt Options) (*Result, error) {
	opt = opt.withDefaults(original)
	if original.HasCombLoop() {
		return nil, fmt.Errorf("randomize: original netlist is cyclic")
	}
	err := original.Validate()
	if err != nil {
		return nil, fmt.Errorf("randomize: %v", err)
	}
	nl := original.Clone()
	res := &Result{Erroneous: nl, Protected: map[netlist.PinRef]bool{}}

	// Candidate pins: all gate input pins. (Datapath alignment constraints
	// would exclude pins here, per the paper's footnote; our benchmarks
	// carry no such constraints.)
	var pins []netlist.PinRef
	for _, g := range nl.Gates {
		for p := range g.Fanin {
			pins = append(pins, netlist.PinRef{Gate: g.ID, Pin: p})
		}
	}
	if len(pins) < 2 {
		return nil, fmt.Errorf("randomize: not enough pins to swap")
	}

	oer := 0.0
	for len(res.Swaps) < opt.MaxSwaps {
		swapped := false
		for try := 0; try < 64; try++ {
			a := pins[rng.Intn(len(pins))]
			b := pins[rng.Intn(len(pins))]
			if a == b || res.Protected[a] || res.Protected[b] {
				continue
			}
			if nl.Gates[a.Gate].Fanin[a.Pin] == nl.Gates[b.Gate].Fanin[b.Pin] {
				continue // same net: no-op swap
			}
			if nl.SwapCreatesLoop(a, b) {
				continue // the paper explicitly forbids loop-forming swaps
			}
			if err := nl.SwapSinks(a, b); err != nil {
				continue
			}
			res.Swaps = append(res.Swaps, Swap{A: a, B: b})
			res.Protected[a] = true
			res.Protected[b] = true
			swapped = true
			break
		}
		if !swapped {
			break // no more feasible swaps
		}
		if len(res.Swaps)%opt.CheckEvery == 0 || len(res.Swaps) == opt.MaxSwaps {
			oer, err = sim.OER(original, nl, rng, opt.PatternWords)
			if err != nil {
				return nil, fmt.Errorf("randomize: OER estimation: %v", err)
			}
			if oer >= opt.TargetOER {
				break
			}
		}
	}
	// Final estimate if the cadence missed the last swaps.
	if oer == 0 && len(res.Swaps) > 0 {
		oer, err = sim.OER(original, nl, rng, opt.PatternWords)
		if err != nil {
			return nil, err
		}
	}
	res.OER = oer
	if nl.HasCombLoop() {
		return nil, fmt.Errorf("randomize: produced a combinational loop (bug)")
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("randomize: erroneous netlist invalid: %v", err)
	}
	return res, nil
}

// Restore applies the tracked swaps in reverse, returning the connectivity
// to the original. Used to verify tracking and by the BEOL restoration
// logic as ground truth.
func Restore(erroneous *netlist.Netlist, swaps []Swap) error {
	for i := len(swaps) - 1; i >= 0; i-- {
		if err := erroneous.SwapSinks(swaps[i].A, swaps[i].B); err != nil {
			return fmt.Errorf("randomize: restore swap %d: %v", i, err)
		}
	}
	return nil
}

// TrueSourceNet returns, for a protected pin, the net that drives it in the
// original netlist (identical net numbering assumed).
func TrueSourceNet(original *netlist.Netlist, pin netlist.PinRef) int {
	return original.Gates[pin.Gate].Fanin[pin.Pin]
}
