package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"splitmfg/internal/netlist"
)

func buildFullAdder() *netlist.Netlist {
	nl := netlist.New("fa")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	cin := nl.AddPI("cin")
	x1 := nl.AddGate("x1", netlist.Xor, a, b)
	x1out := nl.Gates[x1].Out
	x2 := nl.AddGate("x2", netlist.Xor, x1out, cin)
	a1 := nl.AddGate("a1", netlist.And, a, b)
	a2 := nl.AddGate("a2", netlist.And, x1out, cin)
	o1 := nl.AddGate("o1", netlist.Or, nl.Gates[a1].Out, nl.Gates[a2].Out)
	nl.AddPO("sum", nl.Gates[x2].Out)
	nl.AddPO("cout", nl.Gates[o1].Out)
	return nl
}

func TestFullAdderTruthTable(t *testing.T) {
	nl := buildFullAdder()
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	pats, words, err := ExhaustivePatterns(3)
	if err != nil {
		t.Fatal(err)
	}
	val, err := s.Eval(pats, words)
	if err != nil {
		t.Fatal(err)
	}
	po := s.POWords(val)
	for p := 0; p < 8; p++ {
		a := pats[0][0] >> uint(p) & 1
		b := pats[1][0] >> uint(p) & 1
		c := pats[2][0] >> uint(p) & 1
		wantSum := a ^ b ^ c
		wantCout := (a & b) | (c & (a ^ b))
		gotSum := po[0][0] >> uint(p) & 1
		gotCout := po[1][0] >> uint(p) & 1
		if gotSum != wantSum || gotCout != wantCout {
			t.Fatalf("pattern %d: sum=%d want %d, cout=%d want %d", p, gotSum, wantSum, gotCout, wantCout)
		}
	}
}

func TestAllGateTypes(t *testing.T) {
	// For every 2-input type, check against Go's boolean ops exhaustively.
	type fn func(a, b uint64) uint64
	cases := []struct {
		t netlist.GateType
		f fn
	}{
		{netlist.And, func(a, b uint64) uint64 { return a & b }},
		{netlist.Nand, func(a, b uint64) uint64 { return ^(a & b) }},
		{netlist.Or, func(a, b uint64) uint64 { return a | b }},
		{netlist.Nor, func(a, b uint64) uint64 { return ^(a | b) }},
		{netlist.Xor, func(a, b uint64) uint64 { return a ^ b }},
		{netlist.Xnor, func(a, b uint64) uint64 { return ^(a ^ b) }},
	}
	rng := rand.New(rand.NewSource(1))
	for _, c := range cases {
		nl := netlist.New("g")
		a := nl.AddPI("a")
		b := nl.AddPI("b")
		g := nl.AddGate("g0", c.t, a, b)
		nl.AddPO("y", nl.Gates[g].Out)
		s, err := New(nl)
		if err != nil {
			t.Fatal(err)
		}
		pats := RandomPatterns(rng, 2, 4)
		val, err := s.Eval(pats, 4)
		if err != nil {
			t.Fatal(err)
		}
		po := s.POWords(val)
		for w := 0; w < 4; w++ {
			if got, want := po[0][w], c.f(pats[0][w], pats[1][w]); got != want {
				t.Fatalf("%v word %d: got %x want %x", c.t, w, got, want)
			}
		}
	}
}

func TestInvBufMux(t *testing.T) {
	nl := netlist.New("m")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	sel := nl.AddPI("sel")
	inv := nl.AddGate("inv", netlist.Inv, a)
	buf := nl.AddGate("buf", netlist.Buf, b)
	mux := nl.AddGate("mux", netlist.Mux, sel, nl.Gates[inv].Out, nl.Gates[buf].Out)
	nl.AddPO("y", nl.Gates[mux].Out)
	s, _ := New(nl)
	rng := rand.New(rand.NewSource(7))
	pats := RandomPatterns(rng, 3, 2)
	val, err := s.Eval(pats, 2)
	if err != nil {
		t.Fatal(err)
	}
	po := s.POWords(val)
	for w := 0; w < 2; w++ {
		want := (^pats[0][w] &^ pats[2][w]) | (pats[1][w] & pats[2][w])
		if po[0][w] != want {
			t.Fatalf("mux word %d mismatch", w)
		}
	}
}

func TestDFFPseudoInput(t *testing.T) {
	nl := netlist.New("seq")
	a := nl.AddPI("a")
	ff := nl.AddGate("ff", netlist.DFF, a)
	g := nl.AddGate("g", netlist.Xor, a, nl.Gates[ff].Out)
	nl.AddPO("y", nl.Gates[g].Out)
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	pats := [][]uint64{{0xF0F0}}
	// Default: DFF out = 0 -> y = a.
	val, err := s.Eval(pats, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.POWords(val)[0][0]; got != 0xF0F0 {
		t.Fatalf("y = %x, want F0F0", got)
	}
	// With state: y = a ^ state.
	s.SetSeqState(ff, []uint64{0xFF00})
	val, err = s.Eval(pats, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.POWords(val)[0][0]; got != 0xF0F0^0xFF00 {
		t.Fatalf("y = %x, want %x", got, uint64(0xF0F0^0xFF00))
	}
}

func TestCompareSelfIsZero(t *testing.T) {
	nl := buildFullAdder()
	rng := rand.New(rand.NewSource(3))
	pats := RandomPatterns(rng, 3, 16)
	res, err := Compare(nl, nl.Clone(), pats, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.OER != 0 || res.HD != 0 || res.DiffBits != 0 {
		t.Fatalf("self-compare nonzero: %+v", res)
	}
}

func TestCompareDetectsSwap(t *testing.T) {
	nl := buildFullAdder()
	mod := nl.Clone()
	// Swap the sum XOR's cin input with a1's b input: changes function.
	x2 := mod.GateByName("x2").ID
	a1 := mod.GateByName("a1").ID
	if err := mod.SwapSinks(netlist.PinRef{Gate: x2, Pin: 1}, netlist.PinRef{Gate: a1, Pin: 1}); err != nil {
		t.Fatal(err)
	}
	pats, words, _ := ExhaustivePatterns(3)
	res, err := Compare(nl, mod, pats, words)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiffBits == 0 {
		t.Fatal("swap not detected functionally")
	}
	if res.OER <= 0 || res.HD <= 0 {
		t.Fatalf("OER=%v HD=%v", res.OER, res.HD)
	}
}

func TestEquivalentExhaustive(t *testing.T) {
	nl := buildFullAdder()
	rng := rand.New(rand.NewSource(5))
	eq, err := Equivalent(nl, nl.Clone(), rng, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("identical netlists not equivalent")
	}
	// De Morgan: NAND(a,b) == OR(INV a, INV b): different structure, same function.
	n1 := netlist.New("nand")
	a := n1.AddPI("a")
	b := n1.AddPI("b")
	g := n1.AddGate("g", netlist.Nand, a, b)
	n1.AddPO("y", n1.Gates[g].Out)

	n2 := netlist.New("demorgan")
	a2 := n2.AddPI("a")
	b2 := n2.AddPI("b")
	i1 := n2.AddGate("i1", netlist.Inv, a2)
	i2 := n2.AddGate("i2", netlist.Inv, b2)
	o := n2.AddGate("o", netlist.Or, n2.Gates[i1].Out, n2.Gates[i2].Out)
	n2.AddPO("y", n2.Gates[o].Out)

	eq, err = Equivalent(n1, n2, rng, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("De Morgan pair not equivalent")
	}
}

func TestCombLoopRejected(t *testing.T) {
	nl := netlist.New("cyc")
	a := nl.AddPI("a")
	g1 := nl.AddGate("g1", netlist.And, a, a)
	g2 := nl.AddGate("g2", netlist.Or, nl.Gates[g1].Out, a)
	_ = nl.RewirePin(g1, 1, nl.Gates[g2].Out)
	if _, err := New(nl); err != ErrCombLoop {
		t.Fatalf("got %v, want ErrCombLoop", err)
	}
}

func TestExhaustivePatternsProperties(t *testing.T) {
	pats, words, err := ExhaustivePatterns(5)
	if err != nil {
		t.Fatal(err)
	}
	if words != 1 {
		t.Fatalf("words = %d", words)
	}
	seen := make(map[uint32]bool)
	for p := 0; p < 32; p++ {
		var v uint32
		for i := 0; i < 5; i++ {
			if pats[i][0]>>uint(p)&1 == 1 {
				v |= 1 << uint(i)
			}
		}
		seen[v] = true
	}
	if len(seen) != 32 {
		t.Fatalf("only %d distinct patterns", len(seen))
	}
	if _, _, err := ExhaustivePatterns(21); err == nil {
		t.Fatal("expected error above 20 inputs")
	}
}

func TestPropertyXorChainParity(t *testing.T) {
	// A chain of XORs computes parity regardless of chain shape.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		nl := netlist.New("parity")
		nets := make([]int, n)
		for i := range nets {
			nets[i] = nl.AddPI("i" + string(rune('a'+i)))
		}
		acc := nets[0]
		for i := 1; i < n; i++ {
			g := nl.AddGate("x"+string(rune('a'+i)), netlist.Xor, acc, nets[i])
			acc = nl.Gates[g].Out
		}
		nl.AddPO("p", acc)
		s, err := New(nl)
		if err != nil {
			return false
		}
		pats := RandomPatterns(rng, n, 4)
		val, err := s.Eval(pats, 4)
		if err != nil {
			return false
		}
		po := s.POWords(val)
		for w := 0; w < 4; w++ {
			var want uint64
			for i := 0; i < n; i++ {
				want ^= pats[i][w]
			}
			if po[0][w] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOERBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := buildFullAdder()
		mod := nl.Clone()
		// random valid swap
		x2 := mod.GateByName("x2").ID
		o1 := mod.GateByName("o1").ID
		pa := netlist.PinRef{Gate: x2, Pin: 0}
		pb := netlist.PinRef{Gate: o1, Pin: 1}
		if !mod.SwapCreatesLoop(pa, pb) {
			if err := mod.SwapSinks(pa, pb); err != nil {
				return true // same-net swap, skip
			}
		}
		pats := RandomPatterns(rng, 3, 8)
		res, err := Compare(nl, mod, pats, 8)
		if err != nil {
			return false
		}
		oer, hd := res.OER, res.HD
		return oer >= 0 && oer <= 1 && hd >= 0 && hd <= 1 && hd <= oer+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEvalFullAdder1MPatterns(b *testing.B) {
	nl := buildFullAdder()
	s, _ := New(nl)
	rng := rand.New(rand.NewSource(1))
	words := 1 << 14 // 1,048,576 patterns
	pats := RandomPatterns(rng, 3, words)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Eval(pats, words); err != nil {
			b.Fatal(err)
		}
	}
}
