// Package sim provides 64-way bit-parallel logic simulation of netlists,
// plus the security metrics built on it: output error rate (OER), Hamming
// distance (HD), and functional-equivalence checking. It stands in for the
// paper's use of Synopsys VCS (1,000,000 random patterns) and Formality.
//
// Patterns are packed 64 per machine word, so simulating one million
// patterns over a netlist costs ~15625 topological passes' worth of word
// operations per gate — comfortably laptop-scale for ISCAS-85.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"splitmfg/internal/netlist"
)

// ErrCombLoop is returned when the netlist under simulation has a
// combinational cycle (which the defense explicitly never creates).
var ErrCombLoop = errors.New("sim: netlist has a combinational loop")

// Simulator evaluates a fixed netlist over packed pattern words. DFF
// outputs are treated as pseudo primary inputs (their word values are taken
// from the SeqState field) and DFF D-pins as pseudo primary outputs, which
// is the standard combinational-unrolling treatment for HD/OER metrics.
type Simulator struct {
	nl    *netlist.Netlist
	order []int // topological gate order

	// SeqState supplies per-DFF input words, indexed densely by gate ID
	// (entries for non-DFF gates are ignored). When the outer slice is nil,
	// short, or a DFF's entry is nil, that DFF's output simulates as 0.
	SeqState [][]uint64 // gate ID -> words
}

// SetSeqState records the input words for one DFF gate, growing the dense
// table on demand.
func (s *Simulator) SetSeqState(gate int, words []uint64) {
	if gate >= len(s.SeqState) {
		grown := make([][]uint64, s.nl.NumGates())
		copy(grown, s.SeqState)
		s.SeqState = grown
	}
	s.SeqState[gate] = words
}

// New builds a simulator, returning ErrCombLoop for cyclic designs.
func New(nl *netlist.Netlist) (*Simulator, error) {
	order, ok := nl.TopoOrder()
	if !ok {
		return nil, ErrCombLoop
	}
	return &Simulator{nl: nl, order: order}, nil
}

// Netlist returns the design being simulated.
func (s *Simulator) Netlist() *netlist.Netlist { return s.nl }

// Eval simulates `words` 64-pattern words. piWords[i][w] provides the w-th
// word of primary input i. It returns one slice per net (indexed by net ID)
// holding the simulated words, so callers can inspect both POs and internal
// nets.
func (s *Simulator) Eval(piWords [][]uint64, words int) ([][]uint64, error) {
	nl := s.nl
	if len(piWords) != nl.NumPIs() {
		return nil, fmt.Errorf("sim: got %d PI vectors, want %d", len(piWords), nl.NumPIs())
	}
	for i, v := range piWords {
		if len(v) < words {
			return nil, fmt.Errorf("sim: PI %d has %d words, want >= %d", i, len(v), words)
		}
	}
	val := make([][]uint64, nl.NumNets())
	for pi, netID := range nl.PINets {
		val[netID] = piWords[pi][:words]
	}
	// DFF outputs are sources for combinational evaluation: assign them up
	// front (the topological order only guarantees combinational
	// dependencies, so a consumer may precede the DFF itself).
	for _, g := range nl.Gates {
		if g.Type != netlist.DFF {
			continue
		}
		out := make([]uint64, words)
		if g.ID < len(s.SeqState) {
			copy(out, s.SeqState[g.ID])
		}
		val[g.Out] = out
	}
	for _, gid := range s.order {
		g := nl.Gates[gid]
		if g.Type == netlist.DFF {
			continue // already assigned above
		}
		out := make([]uint64, words)
		switch g.Type {
		case netlist.Buf:
			copy(out, val[g.Fanin[0]])
		case netlist.Inv:
			in := val[g.Fanin[0]]
			for w := 0; w < words; w++ {
				out[w] = ^in[w]
			}
		case netlist.Xor, netlist.Xnor:
			a, b := val[g.Fanin[0]], val[g.Fanin[1]]
			for w := 0; w < words; w++ {
				out[w] = a[w] ^ b[w]
			}
			if g.Type == netlist.Xnor {
				for w := 0; w < words; w++ {
					out[w] = ^out[w]
				}
			}
		case netlist.Mux:
			sel, a, b := val[g.Fanin[0]], val[g.Fanin[1]], val[g.Fanin[2]]
			for w := 0; w < words; w++ {
				out[w] = (a[w] &^ sel[w]) | (b[w] & sel[w])
			}
		case netlist.And, netlist.Nand:
			copy(out, val[g.Fanin[0]])
			for _, netID := range g.Fanin[1:] {
				in := val[netID]
				for w := 0; w < words; w++ {
					out[w] &= in[w]
				}
			}
			if g.Type == netlist.Nand {
				for w := 0; w < words; w++ {
					out[w] = ^out[w]
				}
			}
		case netlist.Or, netlist.Nor:
			copy(out, val[g.Fanin[0]])
			for _, netID := range g.Fanin[1:] {
				in := val[netID]
				for w := 0; w < words; w++ {
					out[w] |= in[w]
				}
			}
			if g.Type == netlist.Nor {
				for w := 0; w < words; w++ {
					out[w] = ^out[w]
				}
			}
		default:
			return nil, fmt.Errorf("sim: unsupported gate type %v", g.Type)
		}
		val[g.Out] = out
	}
	return val, nil
}

// POWords extracts the primary-output words from an Eval result.
func (s *Simulator) POWords(val [][]uint64) [][]uint64 {
	out := make([][]uint64, s.nl.NumPOs())
	for po, netID := range s.nl.PONets {
		out[po] = val[netID]
	}
	return out
}

// RandomPatterns generates `words` words of random stimulus for nPI inputs.
func RandomPatterns(rng *rand.Rand, nPI, words int) [][]uint64 {
	v := make([][]uint64, nPI)
	for i := range v {
		v[i] = make([]uint64, words)
		for w := range v[i] {
			v[i][w] = rng.Uint64()
		}
	}
	return v
}

// ExhaustivePatterns enumerates all 2^nPI input combinations (nPI <= 20).
// The returned word count covers every combination; trailing pattern slots
// in the final word replicate the last combination so they never create
// spurious mismatches.
func ExhaustivePatterns(nPI int) ([][]uint64, int, error) {
	if nPI > 20 {
		return nil, 0, fmt.Errorf("sim: exhaustive patterns limited to 20 inputs, got %d", nPI)
	}
	total := 1 << uint(nPI)
	words := (total + 63) / 64
	v := make([][]uint64, nPI)
	for i := range v {
		v[i] = make([]uint64, words)
	}
	for p := 0; p < words*64; p++ {
		pat := p
		if pat >= total {
			pat = total - 1
		}
		for i := 0; i < nPI; i++ {
			if pat>>uint(i)&1 == 1 {
				v[i][p/64] |= 1 << uint(p%64)
			}
		}
	}
	return v, words, nil
}

// CompareResult aggregates mismatch statistics between two simulated
// netlists over the same stimulus.
type CompareResult struct {
	Patterns      int     // number of patterns compared
	Outputs       int     // number of primary outputs
	ErrPatterns   int     // patterns with at least one differing output
	DiffBits      int     // total differing output bits
	OER           float64 // ErrPatterns / Patterns
	HD            float64 // DiffBits / (Patterns*Outputs)
	PerOutputDiff []int   // differing patterns per output
}

// Compare simulates both netlists (which must have identical PI/PO counts;
// names may differ) over the given stimulus and reports OER and HD.
func Compare(golden, other *netlist.Netlist, piWords [][]uint64, words int) (CompareResult, error) {
	var res CompareResult
	if golden.NumPIs() != other.NumPIs() || golden.NumPOs() != other.NumPOs() {
		return res, fmt.Errorf("sim: interface mismatch: %d/%d PIs, %d/%d POs",
			golden.NumPIs(), other.NumPIs(), golden.NumPOs(), other.NumPOs())
	}
	sg, err := New(golden)
	if err != nil {
		return res, err
	}
	so, err := New(other)
	if err != nil {
		return res, err
	}
	vg, err := sg.Eval(piWords, words)
	if err != nil {
		return res, err
	}
	vo, err := so.Eval(piWords, words)
	if err != nil {
		return res, err
	}
	pg, po := sg.POWords(vg), so.POWords(vo)
	res.Patterns = words * 64
	res.Outputs = golden.NumPOs()
	res.PerOutputDiff = make([]int, res.Outputs)
	for w := 0; w < words; w++ {
		var anyDiff uint64
		for out := 0; out < res.Outputs; out++ {
			d := pg[out][w] ^ po[out][w]
			anyDiff |= d
			c := popcount(d)
			res.DiffBits += c
			res.PerOutputDiff[out] += c
		}
		res.ErrPatterns += popcount(anyDiff)
	}
	if res.Patterns > 0 {
		res.OER = float64(res.ErrPatterns) / float64(res.Patterns)
		if res.Outputs > 0 {
			res.HD = float64(res.DiffBits) / float64(res.Patterns*res.Outputs)
		}
	}
	return res, nil
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// OER estimates the output error rate of `other` against `golden` using
// `words` words of random patterns.
func OER(golden, other *netlist.Netlist, rng *rand.Rand, words int) (float64, error) {
	pats := RandomPatterns(rng, golden.NumPIs(), words)
	res, err := Compare(golden, other, pats, words)
	if err != nil {
		return 0, err
	}
	return res.OER, nil
}

// HD estimates the Hamming distance of `other` against `golden` using
// `words` words of random patterns.
func HD(golden, other *netlist.Netlist, rng *rand.Rand, words int) (float64, error) {
	pats := RandomPatterns(rng, golden.NumPIs(), words)
	res, err := Compare(golden, other, pats, words)
	if err != nil {
		return 0, err
	}
	return res.HD, nil
}

// Equivalent checks functional equivalence. For designs with at most 20
// primary inputs the check is exhaustive (a real miter); otherwise it is a
// Monte-Carlo check with the given word budget (a mismatch is conclusive,
// agreement is probabilistic). This replaces the paper's Formality step.
func Equivalent(a, b *netlist.Netlist, rng *rand.Rand, words int) (bool, error) {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return false, nil
	}
	if a.NumPIs() <= 20 {
		pats, w, err := ExhaustivePatterns(a.NumPIs())
		if err != nil {
			return false, err
		}
		res, err := Compare(a, b, pats, w)
		if err != nil {
			return false, err
		}
		return res.DiffBits == 0, nil
	}
	pats := RandomPatterns(rng, a.NumPIs(), words)
	res, err := Compare(a, b, pats, words)
	if err != nil {
		return false, err
	}
	return res.DiffBits == 0, nil
}
