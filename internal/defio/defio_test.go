package defio

import (
	"bytes"
	"strings"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
	"splitmfg/internal/layout"
)

func protectedDesign(t *testing.T) *layout.Design {
	t.Helper()
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	d, err := correction.BuildOriginal(nl, lib, correction.Options{UtilPercent: 70, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteParseRoundTrip(t *testing.T) {
	d := protectedDesign(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if f.Design != d.Netlist.Name {
		t.Fatalf("design name %q", f.Design)
	}
	if len(f.Components) != d.Netlist.NumGates() {
		t.Fatalf("components %d != gates %d", len(f.Components), d.Netlist.NumGates())
	}
	if len(f.Pins) != d.Netlist.NumPIs()+d.Netlist.NumPOs() {
		t.Fatalf("pins %d", len(f.Pins))
	}
	routed := 0
	for id := range d.Router.Nets() {
		_ = id
		routed++
	}
	if len(f.Nets) != routed {
		t.Fatalf("nets %d != routed %d", len(f.Nets), routed)
	}
	if f.Die != d.Placement.Die {
		t.Fatalf("die %v != %v", f.Die, d.Placement.Die)
	}
	// Every parsed net must carry geometry.
	withGeom := 0
	for _, n := range f.Nets {
		if len(n.Edges) > 0 {
			withGeom++
		}
	}
	if withGeom < routed/2 {
		t.Fatalf("only %d/%d nets have geometry", withGeom, routed)
	}
}

func TestSplitDropsBEOL(t *testing.T) {
	d := protectedDesign(t)
	var full, feol bytes.Buffer
	if err := Write(&full, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteSplit(&feol, d, 3); err != nil {
		t.Fatal(err)
	}
	if feol.Len() >= full.Len() {
		t.Fatal("FEOL DEF not smaller than full DEF")
	}
	// No references to layers above M3 in the FEOL file.
	for _, l := range []string{"M4 ", "M5 ", "M6 ", "M7 ", "M8 ", "M9 ", "M10 "} {
		if strings.Contains(feol.String(), "+ ROUTED "+l) {
			t.Fatalf("FEOL DEF contains %s wiring", strings.TrimSpace(l))
		}
	}
	pf, err := Parse(bytes.NewReader(feol.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range pf.Nets {
		for _, e := range n.Edges {
			if e.A.Z > 3 || e.B.Z > 4 { // vias at M3 encode B.Z = 4
				t.Fatalf("net %s has BEOL edge %v", n.Name, e)
			}
		}
	}
}

func TestWriteRTFormat(t *testing.T) {
	d := protectedDesign(t)
	var buf bytes.Buffer
	if err := WriteRT(&buf, d); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 100 {
		t.Fatalf("suspiciously few rt lines: %d", len(lines))
	}
	for _, line := range lines[:10] {
		if len(strings.Fields(line)) != 6 {
			t.Fatalf("bad rt line %q", line)
		}
	}
}

func TestWriteOutMatchesSplit(t *testing.T) {
	d := protectedDesign(t)
	sv, err := d.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteOut(&buf, d, 3); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if buf.Len() == 0 {
		if len(sv.VPins) != 0 {
			t.Fatal("out file empty but vpins exist")
		}
		return
	}
	if len(lines) != len(sv.VPins) {
		t.Fatalf("out lines %d != vpins %d", len(lines), len(sv.VPins))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"DIEAREA ( 0 0 ) ( 10 ) ;",
		"UNITS DISTANCE MICRONS xyz ;",
		// Truncated headers must error, not index out of range (found by
		// FuzzReadDEF).
		"UNITS DISTANCE\n",
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestDefNameSanitization(t *testing.T) {
	if defName("a$b/c") != "a_b_c" {
		t.Fatalf("got %q", defName("a$b/c"))
	}
	if defName("") != "_" {
		t.Fatal("empty name must map to _")
	}
}
