// Package defio provides the layout-exchange formats the paper ships with
// its artifact: a DEF-subset writer/parser for protected layouts, the
// FEOL/BEOL split utility, and the .rt/.out emitters that convert routed
// layouts into the input format of routing-centric attack tooling (the
// paper provides equivalent conversion scripts because the crouting
// scripts were "tailored for academic routers").
//
// The DEF subset covers exactly what the flow produces: DESIGN/UNITS/
// DIEAREA, COMPONENTS (placed cells, with correction cells marked via the
// SOURCE DIST attribute), PINS, and NETS with gcell-resolution ROUTED
// geometry using layer names M1..M10.
package defio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"splitmfg/internal/geom"
	"splitmfg/internal/layout"
	"splitmfg/internal/route"
)

// File is the parsed form of our DEF subset.
type File struct {
	Design     string
	UnitsPerUM int
	Die        geom.Rect
	Components []Component
	Pins       []Pin
	Nets       []Net
}

// Component is one placed cell instance.
type Component struct {
	Name   string
	Master string
	Loc    geom.Point
	Dist   bool // SOURCE DIST: correction/lifting cell
}

// Pin is a top-level terminal.
type Pin struct {
	Name string
	Dir  string // INPUT or OUTPUT
	Loc  geom.Point
}

// Net is a routed net: a list of 3-D grid segments.
type Net struct {
	Name  string
	Edges []route.Edge
}

// Write emits the design as DEF. Net names are route-entity names:
// netlist nets use their netlist names, synthetic entities get rt<id>.
func Write(w io.Writer, d *layout.Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nDESIGN %s ;\nUNITS DISTANCE MICRONS %d ;\n",
		d.Netlist.Name, geom.NMPerMicron)
	die := d.Placement.Die
	fmt.Fprintf(bw, "DIEAREA ( %d %d ) ( %d %d ) ;\n", die.Lo.X, die.Lo.Y, die.Hi.X, die.Hi.Y)

	fmt.Fprintf(bw, "COMPONENTS %d ;\n", len(d.Placement.Cells)+len(d.Extras))
	for gid, c := range d.Placement.Cells {
		fmt.Fprintf(bw, "- %s %s + PLACED ( %d %d ) N ;\n",
			defName(d.Netlist.Gates[gid].Name), c.Master.Name, c.Loc.X, c.Loc.Y)
	}
	for _, e := range d.Extras {
		fmt.Fprintf(bw, "- xcell_%d %s + SOURCE DIST + PLACED ( %d %d ) N ;\n",
			e.ID, e.Master.Name, e.Loc.X, e.Loc.Y)
	}
	fmt.Fprintf(bw, "END COMPONENTS\n")

	fmt.Fprintf(bw, "PINS %d ;\n", d.Netlist.NumPIs()+d.Netlist.NumPOs())
	for i, name := range d.Netlist.PINames {
		p := d.Placement.PIPads[i]
		fmt.Fprintf(bw, "- %s + DIRECTION INPUT + PLACED ( %d %d ) ;\n", defName(name), p.X, p.Y)
	}
	for i, name := range d.Netlist.PONames {
		p := d.Placement.POPads[i]
		fmt.Fprintf(bw, "- %s + DIRECTION OUTPUT + PLACED ( %d %d ) ;\n", defName(name), p.X, p.Y)
	}
	fmt.Fprintf(bw, "END PINS\n")

	ids := routeIDs(d)
	fmt.Fprintf(bw, "NETS %d ;\n", len(ids))
	for _, id := range ids {
		rn := d.Router.Net(id)
		fmt.Fprintf(bw, "- %s\n", entityName(d, id))
		for _, e := range rn.Edges {
			a := d.Grid.CenterOf(e.A)
			b := d.Grid.CenterOf(e.B)
			if e.IsVia() {
				lo := e.A.Z
				if e.B.Z < lo {
					lo = e.B.Z
				}
				fmt.Fprintf(bw, "  + ROUTED M%d ( %d %d ) VIA V%d%d\n", lo, a.X, a.Y, lo, lo+1)
			} else {
				fmt.Fprintf(bw, "  + ROUTED M%d ( %d %d ) ( %d %d )\n", e.A.Z, a.X, a.Y, b.X, b.Y)
			}
		}
		fmt.Fprintf(bw, " ;\n")
	}
	fmt.Fprintf(bw, "END NETS\nEND DESIGN\n")
	return bw.Flush()
}

func routeIDs(d *layout.Design) []int {
	nets := d.Router.Nets()
	ids := make([]int, 0, len(nets))
	for id := range nets {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func entityName(d *layout.Design, id int) string {
	if id < d.Netlist.NumNets() {
		return defName(d.Netlist.Nets[id].Name)
	}
	return fmt.Sprintf("rt%d", id)
}

func defName(s string) string {
	if s == "" {
		return "_"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '[', r == ']':
			return r
		default:
			return '_'
		}
	}, s)
}

// Parse reads the DEF subset back into a File.
func Parse(r io.Reader) (*File, error) {
	f := &File{UnitsPerUM: geom.NMPerMicron}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	section := ""
	var curNet *Net
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "DESIGN "):
			if len(fields) < 2 {
				return nil, fmt.Errorf("defio: line %d: bad DESIGN", lineNo)
			}
			f.Design = fields[1]
		case strings.HasPrefix(line, "UNITS "):
			if len(fields) < 4 {
				return nil, fmt.Errorf("defio: line %d: bad units", lineNo)
			}
			v, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("defio: line %d: bad units", lineNo)
			}
			f.UnitsPerUM = v
		case strings.HasPrefix(line, "DIEAREA "):
			nums := extractInts(fields)
			if len(nums) != 4 {
				return nil, fmt.Errorf("defio: line %d: bad DIEAREA", lineNo)
			}
			f.Die = geom.NewRect(geom.Point{X: nums[0], Y: nums[1]}, geom.Point{X: nums[2], Y: nums[3]})
		case strings.HasPrefix(line, "COMPONENTS "):
			section = "components"
		case strings.HasPrefix(line, "PINS "):
			section = "pins"
		case strings.HasPrefix(line, "NETS "):
			section = "nets"
		case strings.HasPrefix(line, "END "):
			if curNet != nil {
				f.Nets = append(f.Nets, *curNet)
				curNet = nil
			}
			section = ""
		case line == ";":
			if curNet != nil {
				f.Nets = append(f.Nets, *curNet)
				curNet = nil
			}
		default:
			switch section {
			case "components":
				if !strings.HasPrefix(line, "- ") {
					continue
				}
				nums := extractInts(fields)
				if len(nums) < 2 {
					return nil, fmt.Errorf("defio: line %d: component without location", lineNo)
				}
				f.Components = append(f.Components, Component{
					Name:   fields[1],
					Master: fields[2],
					Loc:    geom.Point{X: nums[len(nums)-2], Y: nums[len(nums)-1]},
					Dist:   strings.Contains(line, "SOURCE DIST"),
				})
			case "pins":
				if !strings.HasPrefix(line, "- ") {
					continue
				}
				nums := extractInts(fields)
				dir := "INPUT"
				if strings.Contains(line, "OUTPUT") {
					dir = "OUTPUT"
				}
				if len(nums) < 2 {
					return nil, fmt.Errorf("defio: line %d: pin without location", lineNo)
				}
				f.Pins = append(f.Pins, Pin{Name: fields[1], Dir: dir, Loc: geom.Point{X: nums[0], Y: nums[1]}})
			case "nets":
				if strings.HasPrefix(line, "- ") {
					if curNet != nil {
						f.Nets = append(f.Nets, *curNet)
					}
					curNet = &Net{Name: fields[1]}
					if strings.HasSuffix(line, ";") {
						f.Nets = append(f.Nets, *curNet)
						curNet = nil
					}
					continue
				}
				if curNet == nil || !strings.HasPrefix(line, "+ ROUTED ") {
					continue
				}
				layer, err := parseLayer(fields[2])
				if err != nil {
					return nil, fmt.Errorf("defio: line %d: %v", lineNo, err)
				}
				nums := extractInts(fields)
				if strings.Contains(line, "VIA") {
					if len(nums) < 2 {
						return nil, fmt.Errorf("defio: line %d: bad via", lineNo)
					}
					// Edge endpoints are reconstructed at parse-grid level
					// by SplitFile/users; store as a degenerate segment with
					// layer and layer+1 encoded.
					curNet.Edges = append(curNet.Edges, route.Edge{
						A: route.Node{X: nums[0], Y: nums[1], Z: layer},
						B: route.Node{X: nums[0], Y: nums[1], Z: layer + 1},
					})
				} else {
					if len(nums) < 4 {
						return nil, fmt.Errorf("defio: line %d: bad segment", lineNo)
					}
					curNet.Edges = append(curNet.Edges, route.Edge{
						A: route.Node{X: nums[0], Y: nums[1], Z: layer},
						B: route.Node{X: nums[2], Y: nums[3], Z: layer},
					})
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

func parseLayer(s string) (int, error) {
	if !strings.HasPrefix(s, "M") {
		return 0, fmt.Errorf("bad layer %q", s)
	}
	return strconv.Atoi(s[1:])
}

func extractInts(fields []string) []int {
	var out []int
	for _, f := range fields {
		if v, err := strconv.Atoi(f); err == nil {
			out = append(out, v)
		}
	}
	return out
}

// WriteSplit writes the FEOL-only DEF after splitting: net geometry above
// the split layer is dropped and each boundary via becomes an annotated
// vpin comment consumed by WriteOut.
func WriteSplit(w io.Writer, d *layout.Design, splitLayer int) error {
	sv, err := d.Split(splitLayer)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nDESIGN %s_feol_M%d ;\nUNITS DISTANCE MICRONS %d ;\n",
		d.Netlist.Name, splitLayer, geom.NMPerMicron)
	die := d.Placement.Die
	fmt.Fprintf(bw, "DIEAREA ( %d %d ) ( %d %d ) ;\n", die.Lo.X, die.Lo.Y, die.Hi.X, die.Hi.Y)
	fmt.Fprintf(bw, "COMPONENTS %d ;\n", len(d.Placement.Cells))
	for gid, c := range d.Placement.Cells {
		fmt.Fprintf(bw, "- %s %s + PLACED ( %d %d ) N ;\n",
			defName(d.Netlist.Gates[gid].Name), c.Master.Name, c.Loc.X, c.Loc.Y)
	}
	fmt.Fprintf(bw, "END COMPONENTS\nNETS %d ;\n", len(sv.ByRoute))
	ids := make([]int, 0, len(sv.ByRoute))
	for id := range sv.ByRoute {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rn := d.Router.Net(id)
		fmt.Fprintf(bw, "- %s\n", entityName(d, id))
		for _, e := range rn.Edges {
			if e.A.Z > splitLayer || e.B.Z > splitLayer {
				continue
			}
			a := d.Grid.CenterOf(e.A)
			b := d.Grid.CenterOf(e.B)
			if e.IsVia() {
				lo := e.A.Z
				if e.B.Z < lo {
					lo = e.B.Z
				}
				fmt.Fprintf(bw, "  + ROUTED M%d ( %d %d ) VIA V%d%d\n", lo, a.X, a.Y, lo, lo+1)
			} else {
				fmt.Fprintf(bw, "  + ROUTED M%d ( %d %d ) ( %d %d )\n", e.A.Z, a.X, a.Y, b.X, b.Y)
			}
		}
		fmt.Fprintf(bw, " ;\n")
	}
	fmt.Fprintf(bw, "END NETS\nEND DESIGN\n")
	return bw.Flush()
}

// WriteRT emits routed-segment records (.rt): one line per wire segment,
// "net x1 y1 x2 y2 layer", in nm coordinates — the flat format
// routing-centric attack tooling ingests.
func WriteRT(w io.Writer, d *layout.Design) error {
	bw := bufio.NewWriter(w)
	for _, id := range routeIDs(d) {
		rn := d.Router.Net(id)
		name := entityName(d, id)
		for _, e := range rn.Edges {
			if e.IsVia() {
				continue
			}
			a := d.Grid.CenterOf(e.A)
			b := d.Grid.CenterOf(e.B)
			fmt.Fprintf(bw, "%s %d %d %d %d %d\n", name, a.X, a.Y, b.X, b.Y, e.A.Z)
		}
	}
	return bw.Flush()
}

// WriteOut emits vpin records (.out): one line per vpin after splitting,
// "net x y layer dir frag".
func WriteOut(w io.Writer, d *layout.Design, splitLayer int) error {
	sv, err := d.Split(splitLayer)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for _, vp := range sv.VPins {
		fmt.Fprintf(bw, "%s %d %d %d %s %d\n",
			entityName(d, vp.RouteID), vp.Pt.X, vp.Pt.Y, splitLayer, vp.Dir, vp.Frag)
	}
	return bw.Flush()
}
