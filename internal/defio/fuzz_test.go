package defio

import (
	"bytes"
	"strings"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/defense/correction"
)

// FuzzReadDEF hammers the DEF-subset parser with mutated files. The corpus
// seeds from a real routed layout (c432 through our own writer, full and
// split) plus hand-made corner cases per section. Malformed input must
// produce an error, never a panic or an out-of-bounds access.
func FuzzReadDEF(f *testing.F) {
	nl, err := bench.ISCAS85("c432")
	if err != nil {
		f.Fatal(err)
	}
	d, err := correction.BuildOriginal(nl, cell.NewNangate45Like(), correction.Options{Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var full, split bytes.Buffer
	if err := Write(&full, d); err != nil {
		f.Fatal(err)
	}
	if err := WriteSplit(&split, d, 3); err != nil {
		f.Fatal(err)
	}
	f.Add(full.String())
	f.Add(split.String())
	for _, seed := range []string{
		"",
		"VERSION 5.8 ;\nDESIGN top ;\nUNITS DISTANCE MICRONS 2000 ;\n",
		"UNITS DISTANCE\n",
		"DIEAREA ( 0 0 ) ( 100 100 ) ;\n",
		"DIEAREA ( 0 0 ) ;\n",
		"COMPONENTS 1 ;\n- g1 INV_X1 + PLACED ( 10 20 ) N ;\nEND COMPONENTS\n",
		"COMPONENTS 1 ;\n- g1\nEND COMPONENTS\n",
		"PINS 1 ;\n- a + DIRECTION INPUT + PLACED ( 5 5 ) ;\nEND PINS\n",
		"NETS 1 ;\n- n1\n  + ROUTED M2 ( 0 0 ) ( 10 0 )\n  + ROUTED M2 ( 10 0 ) VIA V23\n ;\nEND NETS\n",
		"NETS 1 ;\n- n1 ;\nEND NETS\n",
		"NETS 1 ;\n  + ROUTED M2 ( 0 0 )\n",
		"NETS 1 ;\n- n1\n  + ROUTED Mx ( 0 0 ) ( 10 0 )\n ;\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(strings.NewReader(src))
		if err != nil {
			return // malformed input may be rejected, never crash
		}
		if file == nil {
			t.Fatal("nil file without error")
		}
	})
}
