// Package place is the placement substrate standing in for Cadence Innovus'
// placer. It provides row-based global placement (iterative net-centroid
// pull with bin spreading) followed by Tetris-style legalization, giving
// layouts with the property every proximity attack exploits: connected
// gates end up near each other (unless the netlist itself is misleading,
// which is exactly the paper's defense).
package place

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"splitmfg/internal/cell"
	"splitmfg/internal/geom"
	"splitmfg/internal/netlist"
)

// Options configures placement.
type Options struct {
	UtilPercent int   // target row utilization (paper: 56–77 for superblue)
	Seed        int64 // RNG seed for the initial scatter
	Iterations  int   // global-placement iterations; 0 = default (24)
}

// Cell is one placed instance.
type Cell struct {
	Master *cell.Master
	Loc    geom.Point // lower-left corner, nm
}

// Center returns the cell's center point, used as its pin location at the
// granularity the global router works at.
func (c Cell) Center() geom.Point {
	return geom.Point{X: c.Loc.X + c.Master.WidthNM/2, Y: c.Loc.Y + cell.RowHeight/2}
}

// Placement is a legalized row-based placement of a netlist.
type Placement struct {
	Die     geom.Rect
	NumRows int
	Cells   []Cell       // indexed by gate ID
	PIPads  []geom.Point // pad location per primary input
	POPads  []geom.Point // pad location per primary output
}

// GateCenter returns the center of the given gate's cell.
func (p *Placement) GateCenter(gate int) geom.Point { return p.Cells[gate].Center() }

// NetPoints returns the pin points of a net: driver (cell center or PI pad)
// followed by all sinks (cell centers and PO pads).
func (p *Placement) NetPoints(nl *netlist.Netlist, netID int) []geom.Point {
	n := &nl.Nets[netID]
	return p.AppendNetPoints(make([]geom.Point, 0, 1+n.FanoutCount()), nl, netID)
}

// AppendNetPoints is the allocation-free core of NetPoints: it appends the
// net's pin points to dst, which hot loops reuse across nets.
func (p *Placement) AppendNetPoints(dst []geom.Point, nl *netlist.Netlist, netID int) []geom.Point {
	n := &nl.Nets[netID]
	if n.IsPI() {
		dst = append(dst, p.PIPads[n.PI])
	} else {
		dst = append(dst, p.GateCenter(n.Driver))
	}
	for _, s := range n.Sinks {
		dst = append(dst, p.GateCenter(s.Gate))
	}
	for _, po := range n.POs {
		dst = append(dst, p.POPads[po])
	}
	return dst
}

// HPWL returns the total half-perimeter wirelength over all nets, in nm.
func (p *Placement) HPWL(nl *netlist.Netlist) int64 {
	var total int64
	var pts []geom.Point
	for _, n := range nl.Nets {
		pts = p.AppendNetPoints(pts[:0], nl, n.ID)
		total += int64(geom.HPWL(pts))
	}
	return total
}

// Clone returns a deep copy (cells share masters, which are immutable).
func (p *Placement) Clone() *Placement {
	c := *p
	c.Cells = append([]Cell(nil), p.Cells...)
	c.PIPads = append([]geom.Point(nil), p.PIPads...)
	c.POPads = append([]geom.Point(nil), p.POPads...)
	return &c
}

// Place runs global placement plus legalization. masters must map every
// gate of nl to a library cell (see cell.Library.Bind).
func Place(nl *netlist.Netlist, masters []*cell.Master, opt Options) (*Placement, error) {
	if len(masters) != nl.NumGates() {
		return nil, fmt.Errorf("place: %d masters for %d gates", len(masters), nl.NumGates())
	}
	if opt.UtilPercent <= 0 || opt.UtilPercent > 95 {
		return nil, fmt.Errorf("place: utilization %d%% out of range (1..95)", opt.UtilPercent)
	}
	iters := opt.Iterations
	if iters == 0 {
		iters = 24
	}
	if iters < 0 {
		iters = -iters - 1 // -1 = zero iterations, -9 = eight, etc. (test hook)
	}
	// Die sizing: square-ish outline at the requested utilization.
	var cellArea float64
	for _, m := range masters {
		cellArea += float64(m.WidthNM) * float64(cell.RowHeight)
	}
	dieArea := cellArea * 100 / float64(opt.UtilPercent)
	side := math.Sqrt(dieArea)
	numRows := int(math.Ceil(side / float64(cell.RowHeight)))
	if numRows < 1 {
		numRows = 1
	}
	rowWidth := int(math.Ceil(dieArea / float64(numRows) / float64(cell.RowHeight)))
	rowWidth = (rowWidth/cell.SiteWidth + 1) * cell.SiteWidth
	die := geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: rowWidth, Y: numRows * cell.RowHeight}}

	p := &Placement{Die: die, NumRows: numRows, Cells: make([]Cell, nl.NumGates())}
	p.placePads(nl)

	rng := rand.New(rand.NewSource(opt.Seed)) //smlint:rawseed callers pass a seed already mixed through the pipeline's splitmix64 streams (flow.layerSeed); re-mixing here would shift every golden byte pin
	// Working coordinates: float cell centers. Cells seed along a Hilbert
	// curve in netlist order: synthesis emits logically related gates
	// together, so index order carries locality — exactly the structure a
	// commercial placer recovers — and the space-filling curve turns index
	// proximity into compact 2-D proximity. Pull/spread iterations then
	// refine by actual connectivity.
	xs := make([]float64, nl.NumGates())
	ys := make([]float64, nl.NumGates())
	n := nl.NumGates()
	horder := 1
	for (1 << (2 * horder)) < n {
		horder++
	}
	hside := 1 << horder
	htotal := hside * hside
	for i := range xs {
		hx, hy := hilbertD2XY(horder, i*htotal/max(n, 1))
		jx := (rng.Float64() - 0.5) * float64(die.W()) / float64(hside)
		jy := (rng.Float64() - 0.5) * float64(die.H()) / float64(hside)
		xs[i] = (float64(hx)+0.5)/float64(hside)*float64(die.W()) + jx
		ys[i] = (float64(hy)+0.5)/float64(hside)*float64(die.H()) + jy
	}
	p.globalPlace(nl, masters, xs, ys, iters)
	// Legalize with progressively tighter gap budgets: generous gaps keep
	// cells near their global-placement spots; if the die is too full for
	// that, tighter packing always succeeds given the utilization bound.
	slack := float64(100-opt.UtilPercent) / 100
	legalized := false
	var err error
	for _, frac := range []float64{slack, slack / 2, 0} {
		if err = p.legalize(nl, masters, xs, ys, int(frac*float64(die.W()))); err == nil {
			legalized = true
			break
		}
	}
	if !legalized {
		return nil, err
	}
	// Detailed placement: same-footprint swap refinement, as every
	// commercial flow runs post-legalization.
	p.Refine(nl, 3)
	return p, nil
}

// placePads distributes PI pads along the left+top edges and PO pads along
// the right+bottom edges, evenly spaced — the convention commercial flows
// default to absent a floorplan constraint file.
func (p *Placement) placePads(nl *netlist.Netlist) {
	die := p.Die
	p.PIPads = make([]geom.Point, nl.NumPIs())
	p.POPads = make([]geom.Point, nl.NumPOs())
	per := func(i, n, lenA, lenB int) (int, bool) {
		// Walk the two edges as one path of length lenA+lenB.
		total := lenA + lenB
		pos := (i*2 + 1) * total / (2 * max(n, 1))
		if pos < lenA {
			return pos, true
		}
		return pos - lenA, false
	}
	for i := range p.PIPads {
		pos, onFirst := per(i, len(p.PIPads), die.H(), die.W())
		if onFirst { // left edge, bottom-up
			p.PIPads[i] = geom.Point{X: die.Lo.X, Y: die.Lo.Y + pos}
		} else { // top edge, left-right
			p.PIPads[i] = geom.Point{X: die.Lo.X + pos, Y: die.Hi.Y}
		}
	}
	for i := range p.POPads {
		pos, onFirst := per(i, len(p.POPads), die.H(), die.W())
		if onFirst { // right edge
			p.POPads[i] = geom.Point{X: die.Hi.X, Y: die.Lo.Y + pos}
		} else { // bottom edge
			p.POPads[i] = geom.Point{X: die.Lo.X + pos, Y: die.Lo.Y}
		}
	}
}

// globalPlace iterates net-centroid pulls with bin-based spreading.
func (p *Placement) globalPlace(nl *netlist.Netlist, masters []*cell.Master, xs, ys []float64, iters int) {
	die := p.Die
	w, h := float64(die.W()), float64(die.H())
	nBins := int(math.Sqrt(float64(nl.NumGates())))/2 + 2
	for it := 0; it < iters; it++ {
		// Pull each gate toward the centroid of everything it connects to.
		nx := make([]float64, len(xs))
		ny := make([]float64, len(ys))
		wt := make([]float64, len(xs))
		addPull := func(g int, px, py, weight float64) {
			nx[g] += px * weight
			ny[g] += py * weight
			wt[g] += weight
		}
		for _, n := range nl.Nets {
			// Star model around the net centroid.
			var cx, cy float64
			cnt := 0
			visit := func(px, py float64) { cx += px; cy += py; cnt++ }
			if n.IsPI() {
				visit(float64(p.PIPads[n.PI].X), float64(p.PIPads[n.PI].Y))
			} else {
				visit(xs[n.Driver], ys[n.Driver])
			}
			for _, s := range n.Sinks {
				visit(xs[s.Gate], ys[s.Gate])
			}
			for _, po := range n.POs {
				visit(float64(p.POPads[po].X), float64(p.POPads[po].Y))
			}
			if cnt < 2 {
				continue
			}
			cx /= float64(cnt)
			cy /= float64(cnt)
			weight := 1.0 / float64(cnt-1) // de-emphasize huge nets
			if !n.IsPI() {
				addPull(n.Driver, cx, cy, weight)
			}
			for _, s := range n.Sinks {
				addPull(s.Gate, cx, cy, weight)
			}
		}
		alpha := 0.85 // pull strength
		for g := range xs {
			if wt[g] > 0 {
				xs[g] = (1-alpha)*xs[g] + alpha*nx[g]/wt[g]
				ys[g] = (1-alpha)*ys[g] + alpha*ny[g]/wt[g]
			}
		}
		// Spreading: blend each coordinate toward its rank-uniform
		// position. This keeps relative order (so clusters of connected
		// gates stay together) while forcing near-uniform marginals, which
		// is what the row-capacity-limited legalizer needs.
		rankSpread(xs, w, 0.45)
		rankSpread(ys, h, 0.45)
	}
	_ = nBins
}

// rankSpread moves each value part-way toward the position its rank would
// occupy under a uniform distribution over [0, span).
func rankSpread(v []float64, span, beta float64) {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	n := float64(len(v))
	for rank, g := range idx {
		target := (float64(rank) + 0.5) / n * span
		v[g] = (1-beta)*v[g] + beta*target
	}
}

// legalize snaps cells to rows and sites without overlap (Tetris). maxGap
// bounds how far right of a row's cursor a cell may be placed; unused space
// left of the cursor is unreachable later, so bounding the gap bounds the
// total waste.
func (p *Placement) legalize(nl *netlist.Netlist, masters []*cell.Master, xs, ys []float64, maxGap int) error {
	die := p.Die
	order := make([]int, nl.NumGates())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return xs[order[a]] < xs[order[b]] })
	rowCursor := make([]int, p.NumRows) // next free x per row
	for i := range rowCursor {
		rowCursor[i] = die.Lo.X
	}
	for _, g := range order {
		m := masters[g]
		wantX := int(xs[g]) - m.WidthNM/2
		wantRow := geom.Clamp(int(ys[g])/cell.RowHeight, 0, p.NumRows-1)
		bestRow, bestX, bestCost := -1, 0, math.MaxFloat64
		for r := 0; r < p.NumRows; r++ {
			x := geom.Clamp(wantX, rowCursor[r], rowCursor[r]+maxGap)
			x = (x / cell.SiteWidth) * cell.SiteWidth
			if x < rowCursor[r] {
				x += cell.SiteWidth
			}
			// Clamp back toward the row cursor when the desired spot would
			// spill past the die edge.
			if x+m.WidthNM > die.Hi.X {
				x = (die.Hi.X - m.WidthNM) / cell.SiteWidth * cell.SiteWidth
			}
			if x < rowCursor[r] || x+m.WidthNM > die.Hi.X {
				continue // genuinely no room in this row
			}
			dy := math.Abs(float64(r-wantRow)) * float64(cell.RowHeight)
			dx := math.Abs(float64(x - wantX))
			cost := dx + dy
			if cost < bestCost {
				bestCost, bestRow, bestX = cost, r, x
			}
		}
		if bestRow < 0 {
			return fmt.Errorf("place: legalization overflow: no row can fit gate %q (die too full)", nl.Gates[g].Name)
		}
		p.Cells[g] = Cell{Master: m, Loc: geom.Point{X: bestX, Y: die.Lo.Y + bestRow*cell.RowHeight}}
		rowCursor[bestRow] = bestX + m.WidthNM
	}
	return nil
}

// CheckLegal verifies that no two cells overlap and all lie inside the die.
func (p *Placement) CheckLegal() error {
	type span struct{ y, lo, hi, id int }
	spans := make([]span, 0, len(p.Cells))
	for id, c := range p.Cells {
		if c.Master == nil {
			return fmt.Errorf("place: cell %d unplaced", id)
		}
		if c.Loc.X < p.Die.Lo.X || c.Loc.X+c.Master.WidthNM > p.Die.Hi.X ||
			c.Loc.Y < p.Die.Lo.Y || c.Loc.Y+cell.RowHeight > p.Die.Hi.Y {
			return fmt.Errorf("place: cell %d outside die", id)
		}
		if c.Loc.Y%cell.RowHeight != 0 {
			return fmt.Errorf("place: cell %d off-row at y=%d", id, c.Loc.Y)
		}
		if c.Loc.X%cell.SiteWidth != 0 {
			return fmt.Errorf("place: cell %d off-site at x=%d", id, c.Loc.X)
		}
		spans = append(spans, span{c.Loc.Y, c.Loc.X, c.Loc.X + c.Master.WidthNM, id})
	}
	// One flat sort by (row, x) replaces the old per-row map of spans; rows
	// are contiguous runs, so overlap is always between sort-adjacent spans.
	sort.Slice(spans, func(a, b int) bool {
		if spans[a].y != spans[b].y {
			return spans[a].y < spans[b].y
		}
		return spans[a].lo < spans[b].lo
	})
	for i := 1; i < len(spans); i++ {
		if spans[i].y == spans[i-1].y && spans[i].lo < spans[i-1].hi {
			return fmt.Errorf("place: cells %d and %d overlap in row y=%d", spans[i-1].id, spans[i].id, spans[i].y)
		}
	}
	return nil
}

// SwapCells exchanges the locations of two gates (used by the
// placement-perturbation baseline defenses). The result remains legal when
// the two cells have equal widths; for unequal widths the wider cell may
// not fit, so the caller must re-check legality or restrict to equal sizes.
func (p *Placement) SwapCells(a, b int) {
	p.Cells[a].Loc, p.Cells[b].Loc = p.Cells[b].Loc, p.Cells[a].Loc
}

// ConnectedDistances returns, for every gate-to-gate driver→sink connection,
// the Manhattan distance between the two cell centers in nm. This is the
// statistic behind Table 1 and Fig. 4 of the paper.
func (p *Placement) ConnectedDistances(nl *netlist.Netlist) []int {
	var out []int
	for _, n := range nl.Nets {
		if n.IsPI() {
			continue
		}
		d := p.GateCenter(n.Driver)
		for _, s := range n.Sinks {
			out = append(out, d.Manhattan(p.GateCenter(s.Gate)))
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// hilbertD2XY converts a distance along the order-k Hilbert curve to grid
// coordinates on a 2^k x 2^k lattice (standard bit-twiddling construction).
func hilbertD2XY(order, d int) (x, y int) {
	rx, ry := 0, 0
	t := d
	for s := 1; s < 1<<order; s *= 2 {
		rx = 1 & (t / 2)
		ry = 1 & (t ^ rx)
		// Rotate quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// Refine runs swap-based detailed placement: several passes where each
// cell greedily swaps with same-width cells in a local window whenever the
// swap reduces the HPWL of the nets touching either cell. Commercial flows
// run exactly such a pass after legalization; it is what compresses the
// median driver-sink distance to a few cell pitches and thereby produces
// the proximity leak the attacks feed on.
func (p *Placement) Refine(nl *netlist.Netlist, passes int) {
	if passes <= 0 {
		passes = 2
	}
	// Nets touching each gate.
	netsOf := make([][]int, len(p.Cells))
	for _, n := range nl.Nets {
		add := func(g int) { netsOf[g] = append(netsOf[g], n.ID) }
		if !n.IsPI() {
			add(n.Driver)
		}
		for _, s := range n.Sinks {
			add(s.Gate)
		}
	}
	// The swap cost is evaluated twice per candidate pair in the innermost
	// loop; a per-call map for net dedup was the placer's dominant
	// allocation. Epoch-stamped scratch over net IDs plus a reused point
	// buffer make it allocation-free.
	seenEp := make([]int32, nl.NumNets())
	var epoch int32
	var pts []geom.Point
	hpwlOf := func(netID int) int {
		pts = p.AppendNetPoints(pts[:0], nl, netID)
		return geom.HPWL(pts)
	}
	cost := func(a, b int) int {
		epoch++
		total := 0
		for _, id := range netsOf[a] {
			if seenEp[id] != epoch {
				seenEp[id] = epoch
				total += hpwlOf(id)
			}
		}
		for _, id := range netsOf[b] {
			if seenEp[id] != epoch {
				seenEp[id] = epoch
				total += hpwlOf(id)
			}
		}
		return total
	}
	// Spatial index: cells by (row, approximate column bucket), stored as a
	// dense grid. Swapping only exchanges locations, so the set of occupied
	// buckets is invariant across passes and the grid extent is fixed.
	const colPitch = 8 * cell.SiteWidth
	rowOf := func(g int) int { return p.Cells[g].Loc.Y / cell.RowHeight }
	colOf := func(g int) int { return p.Cells[g].Loc.X / colPitch }
	if len(p.Cells) == 0 {
		return
	}
	rowBase, colBase := rowOf(0), colOf(0)
	rowMax, colMax := rowBase, colBase
	for g := range p.Cells {
		r, c := rowOf(g), colOf(g)
		rowBase, rowMax = min(rowBase, r), max(rowMax, r)
		colBase, colMax = min(colBase, c), max(colMax, c)
	}
	nRows, nCols := rowMax-rowBase+1, colMax-colBase+1
	index := make([][]int, nRows*nCols)
	for pass := 0; pass < passes; pass++ {
		for i := range index {
			index[i] = index[i][:0]
		}
		for g := range p.Cells {
			i := (rowOf(g)-rowBase)*nCols + (colOf(g) - colBase)
			index[i] = append(index[i], g)
		}
		improved := 0
		for a := range p.Cells {
			ra, ca := rowOf(a)-rowBase, colOf(a)-colBase
			bestGain, bestB := 0, -1
			for dr := -2; dr <= 2; dr++ {
				for dc := -2; dc <= 2; dc++ {
					r, c := ra+dr, ca+dc
					if r < 0 || r >= nRows || c < 0 || c >= nCols {
						continue
					}
					for _, b := range index[r*nCols+c] {
						if b == a || p.Cells[a].Master.WidthNM != p.Cells[b].Master.WidthNM {
							continue
						}
						before := cost(a, b)
						p.SwapCells(a, b)
						after := cost(a, b)
						p.SwapCells(a, b)
						if gain := before - after; gain > bestGain {
							bestGain, bestB = gain, b
						}
					}
				}
			}
			if bestB >= 0 {
				p.SwapCells(a, bestB)
				improved++
			}
		}
		if improved == 0 {
			return
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
