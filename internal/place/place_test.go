package place

import (
	"math/rand"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/geom"
	"splitmfg/internal/netlist"
)

func placed(t *testing.T, name string, util int) (*netlist.Netlist, *Placement) {
	t.Helper()
	nl, err := bench.ISCAS85(name)
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	masters, err := lib.Bind(nl)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Place(nl, masters, Options{UtilPercent: util, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return nl, p
}

func TestPlaceLegal(t *testing.T) {
	_, p := placed(t, "c880", 70)
	if err := p.CheckLegal(); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceLegalHighUtil(t *testing.T) {
	_, p := placed(t, "c432", 85)
	if err := p.CheckLegal(); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementLocality(t *testing.T) {
	// Connected gates must end up much closer than random pairs: this is
	// the very hint proximity attacks exploit, so the substrate must
	// exhibit it.
	nl, p := placed(t, "c1908", 70)
	dists := p.ConnectedDistances(nl)
	if len(dists) == 0 {
		t.Fatal("no connected distances")
	}
	var meanConn float64
	for _, d := range dists {
		meanConn += float64(d)
	}
	meanConn /= float64(len(dists))

	rng := rand.New(rand.NewSource(2))
	var meanRand float64
	const samples = 4000
	for i := 0; i < samples; i++ {
		a := rng.Intn(nl.NumGates())
		b := rng.Intn(nl.NumGates())
		meanRand += float64(p.GateCenter(a).Manhattan(p.GateCenter(b)))
	}
	meanRand /= samples
	if meanConn*1.8 > meanRand {
		t.Fatalf("placement shows no locality: connected=%.0fnm random=%.0fnm", meanConn, meanRand)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	_, p1 := placed(t, "c432", 70)
	_, p2 := placed(t, "c432", 70)
	for i := range p1.Cells {
		if p1.Cells[i].Loc != p2.Cells[i].Loc {
			t.Fatal("placement not deterministic")
		}
	}
}

func TestPadsOnBoundary(t *testing.T) {
	nl, p := placed(t, "c432", 70)
	for i, pad := range p.PIPads {
		onEdge := pad.X == p.Die.Lo.X || pad.X == p.Die.Hi.X || pad.Y == p.Die.Lo.Y || pad.Y == p.Die.Hi.Y
		if !onEdge {
			t.Fatalf("PI pad %d (%s) not on die edge", i, nl.PINames[i])
		}
	}
	for i := range p.POPads {
		pad := p.POPads[i]
		onEdge := pad.X == p.Die.Lo.X || pad.X == p.Die.Hi.X || pad.Y == p.Die.Lo.Y || pad.Y == p.Die.Hi.Y
		if !onEdge {
			t.Fatalf("PO pad %d not on die edge", i)
		}
	}
}

func TestNetPoints(t *testing.T) {
	nl, p := placed(t, "c432", 70)
	for _, n := range nl.Nets {
		pts := p.NetPoints(nl, n.ID)
		if len(pts) != 1+n.FanoutCount() {
			t.Fatalf("net %q: %d points, want %d", n.Name, len(pts), 1+n.FanoutCount())
		}
		for _, pt := range pts {
			if pt.X < p.Die.Lo.X || pt.X > p.Die.Hi.X || pt.Y < p.Die.Lo.Y || pt.Y > p.Die.Hi.Y {
				t.Fatalf("net %q point %v outside die %v", n.Name, pt, p.Die)
			}
		}
	}
}

func TestHPWLPositive(t *testing.T) {
	nl, p := placed(t, "c432", 70)
	if p.HPWL(nl) <= 0 {
		t.Fatal("HPWL must be positive")
	}
}

func TestSwapCells(t *testing.T) {
	nl, p := placed(t, "c432", 70)
	_ = nl
	la, lb := p.Cells[3].Loc, p.Cells[7].Loc
	p.SwapCells(3, 7)
	if p.Cells[3].Loc != lb || p.Cells[7].Loc != la {
		t.Fatal("swap failed")
	}
}

func TestCloneIndependent(t *testing.T) {
	_, p := placed(t, "c432", 70)
	c := p.Clone()
	c.Cells[0].Loc = geom.Point{X: -1, Y: -1}
	if p.Cells[0].Loc == c.Cells[0].Loc {
		t.Fatal("clone shares cell storage")
	}
}

func TestPlaceErrors(t *testing.T) {
	nl, _ := bench.ISCAS85("c432")
	lib := cell.NewNangate45Like()
	masters, _ := lib.Bind(nl)
	if _, err := Place(nl, masters[:3], Options{UtilPercent: 70}); err == nil {
		t.Error("expected error for short masters slice")
	}
	if _, err := Place(nl, masters, Options{UtilPercent: 0}); err == nil {
		t.Error("expected error for zero utilization")
	}
	if _, err := Place(nl, masters, Options{UtilPercent: 99}); err == nil {
		t.Error("expected error for >95%% utilization")
	}
}

func TestSuperblueScalePlaces(t *testing.T) {
	if testing.Short() {
		t.Skip("superblue placement in -short mode")
	}
	nl, err := bench.Superblue("superblue18", 500)
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	masters, err := lib.Bind(nl)
	if err != nil {
		t.Fatal(err)
	}
	util, _ := bench.SuperblueUtil("superblue18")
	p, err := Place(nl, masters, Options{UtilPercent: util, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckLegal(); err != nil {
		t.Fatal(err)
	}
}
