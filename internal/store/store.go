// Package store is a disk-backed content-addressed result store: the
// durable second tier under the in-memory singleflight caches of the
// suite scheduler (internal/flow) and the evaluation server
// (internal/server). A killed suite run resumes from it, and identical
// requests are free across process restarts and across smbench/smserve.
//
// Each entry is one file named sha256(key).json holding a small JSON
// envelope — a format version, the caller's key-schema version, the full
// key, and the raw value JSON. Writes go through a temp file in the same
// directory, fsync, rename, and a directory fsync, so a crash never
// leaves a torn entry and concurrent writers of the same key are safe
// (last rename wins; content-addressed values are identical anyway).
// Reads validate the envelope: a corrupt file, a foreign format or key
// schema, or a hash collision (stored key != requested key) moves the
// file into dir/quarantine/ and reports a miss, so one bad byte on disk
// costs a recompute, never a wrong result.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// formatVersion is the envelope layout version. Bump it when the
// envelope itself changes shape; entries written under another version
// are quarantined on read.
const formatVersion = 1

// quarantineDir is the subdirectory invalid entries are moved to.
const quarantineDir = "quarantine"

// Options parameterizes Open.
type Options struct {
	// KeySchema is the caller's key-format version: bump it when the
	// meaning of a key changes without changing its bytes (an algorithm
	// fix that invalidates old results, say). Entries written under a
	// different key schema are quarantined and treated as misses.
	KeySchema int
	// Logf, when non-nil, receives one line per quarantine and per
	// failed write. The store never fails a computation over a bad
	// disk — it degrades to a miss (reads) or to uncached (writes).
	Logf func(format string, args ...any)
}

// Store is one result-store directory. A nil *Store is a valid empty
// store: Get always misses and Put is a no-op, so callers without a
// cache dir need no branching.
type Store struct {
	dir       string
	keySchema int
	logf      func(format string, args ...any)
}

// envelope is the on-disk entry layout.
type envelope struct {
	Version   int             `json:"version"`
	KeySchema int             `json:"key_schema"`
	Key       string          `json:"key"`
	Value     json.RawMessage `json:"value"`
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, keySchema: opt.KeySchema, logf: opt.Logf}, nil
}

func (s *Store) log(format string, args ...any) {
	if s.logf != nil {
		s.logf(format, args...)
	}
}

// path returns the entry file for key: sha256 of the key so arbitrary
// key strings (they embed JSON and | separators) never meet the
// filesystem's name rules.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".json")
}

// Get returns the raw value JSON stored under key. ok is false on a
// miss — including a present-but-invalid entry, which is quarantined.
func (s *Store) Get(key string) (value []byte, ok bool) {
	if s == nil {
		return nil, false
	}
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		if !os.IsNotExist(err) {
			s.log("store: read %s: %v", p, err)
		}
		return nil, false
	}
	var env envelope
	switch err := json.Unmarshal(data, &env); {
	case err != nil:
		s.quarantine(p, fmt.Sprintf("corrupt entry: %v", err))
	case env.Version != formatVersion:
		s.quarantine(p, fmt.Sprintf("format version %d, want %d", env.Version, formatVersion))
	case env.KeySchema != s.keySchema:
		s.quarantine(p, fmt.Sprintf("key schema %d, want %d", env.KeySchema, s.keySchema))
	case env.Key != key:
		s.quarantine(p, "stored key does not match the requested key")
	default:
		return env.Value, true
	}
	return nil, false
}

// Put durably stores value (anything json.Marshal accepts) under key:
// temp file in the store directory, write, fsync, rename over the final
// name, fsync the directory. The returned error is advisory — callers
// log it and continue uncached.
func (s *Store) Put(key string, value any) error {
	if s == nil {
		return nil
	}
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("store: marshal value: %w", err)
	}
	data, err := json.Marshal(envelope{
		Version: formatVersion, KeySchema: s.keySchema, Key: key, Value: raw,
	})
	if err != nil {
		return fmt.Errorf("store: marshal envelope: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, err = tmp.Write(data)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(s.dir)
}

// quarantine moves an invalid entry aside (same basename under
// dir/quarantine/) so the next Get recomputes instead of re-tripping,
// and the bad bytes stay available for inspection.
func (s *Store) quarantine(p, reason string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		s.log("store: quarantine %s: %v", p, err)
		os.Remove(p)
		return
	}
	dst := filepath.Join(qdir, filepath.Base(p))
	if err := os.Rename(p, dst); err != nil {
		s.log("store: quarantine %s: %v", p, err)
		os.Remove(p)
		return
	}
	s.log("store: quarantined %s: %s", filepath.Base(p), reason)
}

// Len counts the valid-looking entries on disk (files in the store
// directory itself; quarantined and temp files excluded).
func (s *Store) Len() (int, error) {
	if s == nil {
		return 0, nil
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
