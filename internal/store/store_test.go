package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func open(t *testing.T, dir string, schema int) *Store {
	t.Helper()
	s, err := Open(dir, Options{KeySchema: schema, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 1)
	type payload struct {
		A int     `json:"a"`
		B float64 `json:"b"`
	}
	want := payload{A: 7, B: 0.1}
	if err := s.Put("k1", want); err != nil {
		t.Fatal(err)
	}
	raw, ok := s.Get("k1")
	if !ok {
		t.Fatal("Get missed a stored key")
	}
	var got payload
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
	if _, ok := s.Get("k2"); ok {
		t.Fatal("Get hit a key that was never stored")
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = (%d, %v), want 1 entry", n, err)
	}
}

func TestPutLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 1)
	for i := 0; i < 3; i++ {
		if err := s.Put("k", i); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".put-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Fatalf("dir holds %d entries, want 1 (rewrites replace)", len(ents))
	}
}

// quarantineCase corrupts a stored entry with mutate and asserts the next
// Get quarantines it and misses.
func quarantineCase(t *testing.T, mutate func(t *testing.T, s *Store, path string)) {
	t.Helper()
	dir := t.TempDir()
	s := open(t, dir, 1)
	if err := s.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	mutate(t, s, s.path("k"))
	if _, ok := s.Get("k"); ok {
		t.Fatal("Get hit an invalid entry")
	}
	q, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine holds %d files (%v), want 1", len(q), err)
	}
	if n, _ := s.Len(); n != 0 {
		t.Fatalf("Len = %d after quarantine, want 0", n)
	}
	// The slot is free again: a fresh Put works.
	if err := s.Put("k", "v2"); err != nil {
		t.Fatal(err)
	}
	if raw, ok := s.Get("k"); !ok || string(raw) != `"v2"` {
		t.Fatalf("post-quarantine Get = (%s, %v), want v2", raw, ok)
	}
}

func TestCorruptEntryQuarantined(t *testing.T) {
	quarantineCase(t, func(t *testing.T, s *Store, p string) {
		if err := os.Truncate(p, 10); err != nil {
			t.Fatal(err)
		}
	})
}

func TestFormatVersionMismatchQuarantined(t *testing.T) {
	quarantineCase(t, func(t *testing.T, s *Store, p string) {
		rewriteEnvelope(t, p, func(env *envelope) { env.Version = formatVersion + 1 })
	})
}

func TestKeySchemaMismatchQuarantined(t *testing.T) {
	quarantineCase(t, func(t *testing.T, s *Store, p string) {
		rewriteEnvelope(t, p, func(env *envelope) { env.KeySchema = 99 })
	})
}

func TestKeyMismatchQuarantined(t *testing.T) {
	quarantineCase(t, func(t *testing.T, s *Store, p string) {
		rewriteEnvelope(t, p, func(env *envelope) { env.Key = "other" })
	})
}

func rewriteEnvelope(t *testing.T, p string, mutate func(*envelope)) {
	t.Helper()
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	mutate(&env)
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestNilStoreIsEmpty(t *testing.T) {
	var s *Store
	if _, ok := s.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put("k", 1); err != nil {
		t.Fatalf("nil store Put = %v, want nil", err)
	}
	if n, err := s.Len(); err != nil || n != 0 {
		t.Fatalf("nil store Len = (%d, %v), want 0", n, err)
	}
}

func TestSeparateSchemasShareADirectory(t *testing.T) {
	// Two callers with different key schemas can share one directory as
	// long as their key strings differ (different prefixes): each only
	// ever reads its own files.
	dir := t.TempDir()
	a := open(t, dir, 1)
	b := open(t, dir, 2)
	if err := a.Put("a|k", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("b|k", 2); err != nil {
		t.Fatal(err)
	}
	if raw, ok := a.Get("a|k"); !ok || string(raw) != "1" {
		t.Fatalf("a.Get = (%s, %v)", raw, ok)
	}
	if raw, ok := b.Get("b|k"); !ok || string(raw) != "2" {
		t.Fatalf("b.Get = (%s, %v)", raw, ok)
	}
}
