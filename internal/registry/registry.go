// Package registry provides the generic, concurrency-safe name-keyed
// plug-in store shared by the attacker and defense engine layers. Both
// layers expose the same surface — Register/Lookup/Names/Resolve over
// values selected by Name() — so the mechanics live here once: a behavior
// fix (locking, error wording, validation) lands in every registry at the
// same time instead of drifting between hand-rolled copies.
package registry

import (
	"fmt"
	"sort"
	"sync"
)

// Named is anything registrable by name.
type Named interface{ Name() string }

// Registry is a process-wide name -> value store. The noun ("attacker",
// "defense") names the kind in error messages so CLI users can tell which
// flag was wrong.
type Registry[T Named] struct {
	noun string
	mu   sync.RWMutex
	m    map[string]T
}

// New returns an empty registry whose errors call entries by the noun.
func New[T Named](noun string) *Registry[T] {
	return &Registry[T]{noun: noun, m: map[string]T{}}
}

// Register adds a value, replacing any previous value of the same name.
// It panics on an empty name.
func (r *Registry[T]) Register(v T) {
	name := v.Name()
	if name == "" {
		panic("registry: Register with empty " + r.noun + " name")
	}
	r.mu.Lock()
	r.m[name] = v
	r.mu.Unlock()
}

// Lookup returns the value registered under name.
func (r *Registry[T]) Lookup(name string) (T, bool) {
	r.mu.RLock()
	v, ok := r.m[name]
	r.mu.RUnlock()
	return v, ok
}

// Names lists the registered names in sorted order.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Resolve maps names to values, failing with a message that names the
// offender and lists the registry when any name is unknown.
func (r *Registry[T]) Resolve(names []string) ([]T, error) {
	out := make([]T, 0, len(names))
	for _, name := range names {
		v, ok := r.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("registry: unknown %s %q (have %v)", r.noun, name, r.Names())
		}
		out = append(out, v)
	}
	return out, nil
}
