package registry

import (
	"strings"
	"sync"
	"testing"
)

type fake string

func (f fake) Name() string { return string(f) }

func TestRegisterLookupNamesResolve(t *testing.T) {
	r := New[fake]("widget")
	r.Register(fake("b"))
	r.Register(fake("a"))
	if got := r.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names = %v", got)
	}
	if v, ok := r.Lookup("a"); !ok || v != fake("a") {
		t.Fatalf("Lookup(a) = %v, %v", v, ok)
	}
	if _, ok := r.Lookup("c"); ok {
		t.Fatal("Lookup of unregistered name succeeded")
	}
	vs, err := r.Resolve([]string{"b", "a", "b"})
	if err != nil || len(vs) != 3 {
		t.Fatalf("Resolve = %v, %v", vs, err)
	}
	_, err = r.Resolve([]string{"a", "nope"})
	if err == nil || !strings.Contains(err.Error(), `unknown widget "nope"`) ||
		!strings.Contains(err.Error(), "[a b]") {
		t.Fatalf("Resolve error should name the noun, offender, and registry: %v", err)
	}
}

func TestRegisterReplacesAndPanicsOnEmpty(t *testing.T) {
	r := New[fake]("widget")
	r.Register(fake("x"))
	r.Register(fake("x")) // replace, not duplicate
	if got := r.Names(); len(got) != 1 {
		t.Fatalf("Names after replace = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Register with empty name did not panic")
		}
	}()
	r.Register(fake(""))
}

func TestConcurrentAccess(t *testing.T) {
	r := New[fake]("widget")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Register(fake("x"))
			r.Lookup("x")
			r.Names()
			r.Resolve([]string{"x"})
		}()
	}
	wg.Wait()
}
