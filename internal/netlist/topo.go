package netlist

import "math"

// TopoOrder returns gate IDs in a combinational topological order: a gate
// appears after all gates whose outputs it reads, except across DFF
// boundaries (a DFF output is treated as a source). The second result is
// false when the combinational portion of the netlist contains a cycle.
func (nl *Netlist) TopoOrder() ([]int, bool) {
	indeg := make([]int, len(nl.Gates))
	for _, g := range nl.Gates {
		if g.Type.IsSequential() {
			continue // DFF is a source for ordering purposes
		}
		for _, netID := range g.Fanin {
			d := nl.Nets[netID].Driver
			if d >= 0 && !nl.Gates[d].Type.IsSequential() {
				indeg[g.ID]++
			}
		}
	}
	queue := make([]int, 0, len(nl.Gates))
	for _, g := range nl.Gates {
		if g.Type.IsSequential() || indeg[g.ID] == 0 {
			queue = append(queue, g.ID)
		}
	}
	order := make([]int, 0, len(nl.Gates))
	for len(queue) > 0 {
		gid := queue[0]
		queue = queue[1:]
		order = append(order, gid)
		if nl.Gates[gid].Type.IsSequential() {
			// DFF edges were never counted in the indegrees (DFF outputs
			// are sources), so processing a DFF must not decrement its
			// sinks — doing so would release gates before their real
			// combinational drivers.
			continue
		}
		out := nl.Gates[gid].Out
		for _, s := range nl.Nets[out].Sinks {
			sg := nl.Gates[s.Gate]
			if sg.Type.IsSequential() {
				continue
			}
			indeg[sg.ID]--
			if indeg[sg.ID] == 0 {
				queue = append(queue, sg.ID)
			}
		}
	}
	return order, len(order) == len(nl.Gates)
}

// HasCombLoop reports whether the netlist contains a combinational cycle.
func (nl *Netlist) HasCombLoop() bool {
	_, ok := nl.TopoOrder()
	return !ok
}

// ReachableGates returns the set of gate IDs combinationally reachable from
// the output of gate `from` (not crossing DFF boundaries, excluding `from`
// itself unless it lies on a cycle).
func (nl *Netlist) ReachableGates(from int) map[int]bool {
	seen := make(map[int]bool)
	var stack []int
	push := func(netID int) {
		for _, s := range nl.Nets[netID].Sinks {
			if !seen[s.Gate] {
				seen[s.Gate] = true
				stack = append(stack, s.Gate)
			}
		}
	}
	push(nl.Gates[from].Out)
	for len(stack) > 0 {
		gid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g := nl.Gates[gid]
		if g.Type.IsSequential() {
			continue // stop at state boundary
		}
		push(g.Out)
	}
	return seen
}

// PathExists reports whether a combinational path exists from the output of
// gate `from` to (any input of) gate `to`. It is the loop-safety oracle used
// by the randomization stage: connecting the output of `to` into the fan-in
// cone of `from` is only safe when PathExists(from, to) is false... more
// precisely, wiring driver D to a sink pin of gate S creates a loop exactly
// when S's output combinationally reaches D.
func (nl *Netlist) PathExists(from, to int) bool {
	if from == to {
		return true
	}
	// Epoch-stamped visited scratch: zero-fill only when the gate count
	// outgrew the buffer or the epoch counter wrapped, not per query.
	if len(nl.pathSeen) < len(nl.Gates) || nl.pathEpoch == math.MaxInt32 {
		nl.pathSeen = make([]int32, len(nl.Gates))
		nl.pathEpoch = 0
	}
	nl.pathEpoch++
	ep := nl.pathEpoch
	seen := nl.pathSeen
	stack := append(nl.pathStack[:0], from)
	seen[from] = ep
	first := true
	for len(stack) > 0 {
		gid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g := nl.Gates[gid]
		if g.Type.IsSequential() && !first {
			continue
		}
		first = false
		for _, s := range nl.Nets[g.Out].Sinks {
			if s.Gate == to {
				nl.pathStack = stack[:0]
				return true
			}
			if seen[s.Gate] != ep {
				seen[s.Gate] = ep
				stack = append(stack, s.Gate)
			}
		}
	}
	nl.pathStack = stack[:0]
	return false
}

// Levels assigns each gate its combinational level (longest distance in
// gates from any PI/DFF output). Sequential gates get level 0. The second
// result is false for cyclic netlists.
func (nl *Netlist) Levels() ([]int, bool) {
	order, ok := nl.TopoOrder()
	if !ok {
		return nil, false
	}
	level := make([]int, len(nl.Gates))
	for _, gid := range order {
		g := nl.Gates[gid]
		if g.Type.IsSequential() {
			continue
		}
		lv := 0
		for _, netID := range g.Fanin {
			d := nl.Nets[netID].Driver
			if d >= 0 && !nl.Gates[d].Type.IsSequential() && level[d]+1 > lv {
				lv = level[d] + 1
			}
		}
		level[gid] = lv
	}
	return level, true
}

// FanoutGates returns the IDs of gates directly reading the output of g.
func (nl *Netlist) FanoutGates(g int) []int {
	out := nl.Gates[g].Out
	ids := make([]int, 0, len(nl.Nets[out].Sinks))
	for _, s := range nl.Nets[out].Sinks {
		ids = append(ids, s.Gate)
	}
	return ids
}

// FaninGates returns the IDs of gates directly driving inputs of g
// (primary-input drivers are skipped).
func (nl *Netlist) FaninGates(g int) []int {
	var ids []int
	for _, netID := range nl.Gates[g].Fanin {
		if d := nl.Nets[netID].Driver; d >= 0 {
			ids = append(ids, d)
		}
	}
	return ids
}
