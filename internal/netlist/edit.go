package netlist

import "fmt"

// RewirePin changes which net feeds gate pin (gate,pin). Both the gate
// fan-in record and the sink lists of the old and new nets are updated.
// This is the primitive used by the randomization defense and by the
// attacks when they reconstruct candidate netlists.
func (nl *Netlist) RewirePin(gate, pin, newNet int) error {
	if gate < 0 || gate >= len(nl.Gates) {
		return fmt.Errorf("netlist: RewirePin: gate %d out of range", gate)
	}
	g := &nl.Gates[gate]
	if pin < 0 || pin >= len(g.Fanin) {
		return fmt.Errorf("netlist: RewirePin: pin %d out of range for gate %q", pin, g.Name)
	}
	if newNet < 0 || newNet >= len(nl.Nets) {
		return fmt.Errorf("netlist: RewirePin: net %d out of range", newNet)
	}
	oldNet := g.Fanin[pin]
	if oldNet == newNet {
		return nil
	}
	old := &nl.Nets[oldNet]
	ref := PinRef{Gate: gate, Pin: pin}
	for i, s := range old.Sinks {
		if s == ref {
			old.Sinks = append(old.Sinks[:i], old.Sinks[i+1:]...)
			break
		}
	}
	g.Fanin[pin] = newNet
	nl.Nets[newNet].Sinks = append(nl.Nets[newNet].Sinks, ref)
	return nil
}

// RewirePO changes which net feeds primary output po.
func (nl *Netlist) RewirePO(po, newNet int) error {
	if po < 0 || po >= len(nl.PONets) {
		return fmt.Errorf("netlist: RewirePO: PO %d out of range", po)
	}
	if newNet < 0 || newNet >= len(nl.Nets) {
		return fmt.Errorf("netlist: RewirePO: net %d out of range", newNet)
	}
	oldNet := nl.PONets[po]
	if oldNet == newNet {
		return nil
	}
	old := &nl.Nets[oldNet]
	for i, p := range old.POs {
		if p == po {
			old.POs = append(old.POs[:i], old.POs[i+1:]...)
			break
		}
	}
	nl.PONets[po] = newNet
	nl.Nets[newNet].POs = append(nl.Nets[newNet].POs, po)
	return nil
}

// SwapSinks exchanges the driving nets of two gate input pins a and b:
// after the call, a's pin reads the net that fed b and vice versa. The
// paper's randomization stage is built from such swaps. An error is
// returned (and nothing changed) if the two pins read the same net.
func (nl *Netlist) SwapSinks(a, b PinRef) error {
	netA := nl.Gates[a.Gate].Fanin[a.Pin]
	netB := nl.Gates[b.Gate].Fanin[b.Pin]
	if netA == netB {
		return fmt.Errorf("netlist: SwapSinks: pins share net %q", nl.Nets[netA].Name)
	}
	if err := nl.RewirePin(a.Gate, a.Pin, netB); err != nil {
		return err
	}
	if err := nl.RewirePin(b.Gate, b.Pin, netA); err != nil {
		// restore the first rewire to keep the netlist consistent
		_ = nl.RewirePin(a.Gate, a.Pin, netA)
		return err
	}
	return nil
}

// SwapCreatesLoop reports whether SwapSinks(a, b) would introduce a
// combinational loop. Wiring net netB into pin a creates a loop exactly
// when a.Gate's output combinationally reaches netB's driver, and
// symmetrically for b.
func (nl *Netlist) SwapCreatesLoop(a, b PinRef) bool {
	netA := nl.Gates[a.Gate].Fanin[a.Pin]
	netB := nl.Gates[b.Gate].Fanin[b.Pin]
	if dB := nl.Nets[netB].Driver; dB >= 0 {
		if a.Gate == dB || nl.PathExists(a.Gate, dB) {
			return true
		}
	}
	if dA := nl.Nets[netA].Driver; dA >= 0 {
		if b.Gate == dA || nl.PathExists(b.Gate, dA) {
			return true
		}
	}
	return false
}

// ConnectionKey identifies one logical driver->sink connection, used to
// compute the correct-connection rate (CCR) between a recovered netlist and
// the original.
type ConnectionKey struct {
	DriverNet int    // net ID in the reference netlist
	Sink      PinRef // sink pin; for POs, Gate = -1 and Pin = PO index
}

// Connections enumerates every driver->sink connection of the netlist.
func (nl *Netlist) Connections() []ConnectionKey {
	var keys []ConnectionKey
	for _, n := range nl.Nets {
		for _, s := range n.Sinks {
			keys = append(keys, ConnectionKey{DriverNet: n.ID, Sink: s})
		}
		for _, po := range n.POs {
			keys = append(keys, ConnectionKey{DriverNet: n.ID, Sink: PinRef{Gate: -1, Pin: po}})
		}
	}
	return keys
}

// DiffConnections compares the connectivity of nl against ref (same gate
// and net numbering assumed, e.g. ref is a Clone made before editing) and
// returns the pins whose feeding net changed.
func (nl *Netlist) DiffConnections(ref *Netlist) []PinRef {
	var changed []PinRef
	for gid, g := range nl.Gates {
		rg := ref.Gates[gid]
		for pin := range g.Fanin {
			if g.Fanin[pin] != rg.Fanin[pin] {
				changed = append(changed, PinRef{Gate: gid, Pin: pin})
			}
		}
	}
	for po := range nl.PONets {
		if nl.PONets[po] != ref.PONets[po] {
			changed = append(changed, PinRef{Gate: -1, Pin: po})
		}
	}
	return changed
}

// SameStructure reports whether two netlists with identical gate/net
// numbering have identical connectivity (gate types, fan-in nets, PO nets).
func (nl *Netlist) SameStructure(other *Netlist) bool {
	if len(nl.Gates) != len(other.Gates) || len(nl.Nets) != len(other.Nets) ||
		len(nl.PONets) != len(other.PONets) || len(nl.PINets) != len(other.PINets) {
		return false
	}
	for i, g := range nl.Gates {
		og := other.Gates[i]
		if g.Type != og.Type || len(g.Fanin) != len(og.Fanin) || g.Out != og.Out {
			return false
		}
		for p := range g.Fanin {
			if g.Fanin[p] != og.Fanin[p] {
				return false
			}
		}
	}
	for i := range nl.PONets {
		if nl.PONets[i] != other.PONets[i] {
			return false
		}
	}
	return true
}
