// Package netlist models gate-level combinational/sequential netlists as
// used throughout the split-manufacturing flow: the defense randomizes
// netlist connectivity, the physical-design substrate places and routes it,
// and the attacks try to recover it from a split layout.
//
// The model is deliberately canonical: every gate drives exactly one net,
// every net has exactly one driver (a gate or a primary input) and any
// number of sinks (gate input pins and/or primary outputs). Sequential
// elements (DFFs) are supported as timing/logic cut points: for topological
// ordering and combinational simulation a DFF output acts as a pseudo
// primary input and its D pin as a pseudo primary output.
package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// GateType enumerates the supported logic primitives. The set mirrors the
// combinational subset of the Nangate 45nm Open Cell Library that the paper
// builds on, plus DFF as a sequential cut point.
type GateType uint8

// Supported gate types.
const (
	Buf  GateType = iota // 1-input buffer
	Inv                  // 1-input inverter
	And                  // n-input AND
	Nand                 // n-input NAND
	Or                   // n-input OR
	Nor                  // n-input NOR
	Xor                  // 2-input XOR
	Xnor                 // 2-input XNOR
	Mux                  // 2:1 mux: pins are (sel, a, b); out = sel ? b : a
	DFF                  // D flip-flop: pin 0 is D; output is Q
	numGateTypes
)

var gateTypeNames = [...]string{
	Buf: "BUF", Inv: "INV", And: "AND", Nand: "NAND",
	Or: "OR", Nor: "NOR", Xor: "XOR", Xnor: "XNOR", Mux: "MUX", DFF: "DFF",
}

// String returns the canonical upper-case name of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateTypeNames) {
		return gateTypeNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// ParseGateType converts a name such as "NAND" (case-insensitive, optionally
// with a drive-strength suffix such as "NAND2_X1") into a GateType.
func ParseGateType(s string) (GateType, error) {
	base := strings.ToUpper(s)
	if i := strings.IndexByte(base, '_'); i >= 0 {
		base = base[:i]
	}
	base = strings.TrimRight(base, "0123456789")
	for t, name := range gateTypeNames {
		if name == base {
			return GateType(t), nil
		}
	}
	return 0, fmt.Errorf("netlist: unknown gate type %q", s)
}

// IsSequential reports whether the gate type is a state element.
func (t GateType) IsSequential() bool { return t == DFF }

// MinInputs returns the minimum legal fan-in for the type.
func (t GateType) MinInputs() int {
	switch t {
	case Buf, Inv, DFF:
		return 1
	case Xor, Xnor:
		return 2
	case Mux:
		return 3
	default:
		return 2
	}
}

// MaxInputs returns the maximum legal fan-in for the type (library limit).
func (t GateType) MaxInputs() int {
	switch t {
	case Buf, Inv, DFF:
		return 1
	case Xor, Xnor:
		return 2
	case Mux:
		return 3
	default:
		return 4 // NAND4/NOR4/AND4/OR4 are the largest library cells
	}
}

// PinRef identifies one input pin of one gate.
type PinRef struct {
	Gate int // gate ID
	Pin  int // input pin index within the gate
}

// Net is a single-driver signal.
type Net struct {
	ID     int
	Name   string
	Driver int      // driving gate ID, or -1 when driven by a primary input
	PI     int      // primary-input index when Driver == -1, else -1
	Sinks  []PinRef // fanout gate input pins
	POs    []int    // primary-output indices fed by this net
}

// IsPI reports whether the net is driven by a primary input.
func (n *Net) IsPI() bool { return n.Driver < 0 }

// FanoutCount returns the total number of sinks (gate pins plus POs).
func (n *Net) FanoutCount() int { return len(n.Sinks) + len(n.POs) }

// Gate is a logic cell instance.
type Gate struct {
	ID    int
	Name  string
	Type  GateType
	Fanin []int // net IDs, one per input pin
	Out   int   // net ID driven by this gate
}

// Netlist is a canonical gate-level design.
//
// Gates and Nets are value slices indexed by ID: one contiguous block per
// kind instead of one heap object per gate/net. Compact additionally packs
// every Fanin/Sinks/POs slice into shared backing arrays, so a compacted
// netlist is ~7 allocations regardless of size. Per-element slices are
// carved with capacity == length: an append after compaction (RewirePin
// adding a sink, say) copies only that one element's slice out of the
// arena, leaving the rest shared.
type Netlist struct {
	Name    string
	Gates   []Gate
	Nets    []Net
	PINames []string
	PONames []string
	PINets  []int // net ID for each primary input
	PONets  []int // net ID for each primary output

	// faninArena is the shared backing AddGate carves Fanin slices from,
	// so construction costs O(log gates) fanin allocations rather than one
	// per gate. When a grow reallocates it, previously carved slices keep
	// the old backing (still correct, transiently duplicated); Compact
	// squeezes everything onto one exact-size array.
	faninArena []int

	// Epoch-stamped scratch for PathExists: pathSeen[g] == pathEpoch means
	// "visited this query". Reused across calls so the loop-safety oracle
	// (hammered once per candidate edge by defense randomization and the
	// proximity attack) allocates nothing. Makes PathExists unsafe for
	// concurrent use on one Netlist; all callers are sequential-per-netlist.
	pathSeen  []int32
	pathEpoch int32
	pathStack []int
}

// New returns an empty netlist with the given design name.
func New(name string) *Netlist {
	return &Netlist{Name: name}
}

// NumGates returns the gate count.
func (nl *Netlist) NumGates() int { return len(nl.Gates) }

// NumNets returns the net count.
func (nl *Netlist) NumNets() int { return len(nl.Nets) }

// NumPIs returns the primary-input count.
func (nl *Netlist) NumPIs() int { return len(nl.PINames) }

// NumPOs returns the primary-output count.
func (nl *Netlist) NumPOs() int { return len(nl.PONames) }

// AddPI creates a primary input and its net, returning the net ID.
func (nl *Netlist) AddPI(name string) int {
	pi := len(nl.PINames)
	nl.PINames = append(nl.PINames, name)
	id := len(nl.Nets)
	nl.Nets = append(nl.Nets, Net{ID: id, Name: name, Driver: -1, PI: pi})
	nl.PINets = append(nl.PINets, id)
	return id
}

// AddGate creates a gate of the given type reading the fanin nets and
// driving a freshly created output net named after the gate. It returns the
// gate ID.
func (nl *Netlist) AddGate(name string, t GateType, fanin ...int) int {
	gid := len(nl.Gates)
	out := len(nl.Nets)
	off := len(nl.faninArena)
	nl.faninArena = append(nl.faninArena, fanin...)
	end := len(nl.faninArena)
	nl.Gates = append(nl.Gates, Gate{
		ID: gid, Name: name, Type: t, Out: out,
		Fanin: nl.faninArena[off:end:end],
	})
	nl.Nets = append(nl.Nets, Net{ID: out, Name: name, Driver: gid, PI: -1})
	for pin, netID := range fanin {
		n := &nl.Nets[netID]
		n.Sinks = append(n.Sinks, PinRef{Gate: gid, Pin: pin})
	}
	return gid
}

// AddPO marks a net as feeding a named primary output and returns the PO
// index.
func (nl *Netlist) AddPO(name string, netID int) int {
	po := len(nl.PONames)
	nl.PONames = append(nl.PONames, name)
	nl.PONets = append(nl.PONets, netID)
	nl.Nets[netID].POs = append(nl.Nets[netID].POs, po)
	return po
}

// Validate checks all structural invariants: net/gate cross references,
// pin bounds, fan-in legality, and driver uniqueness. It returns the first
// violation found, or nil.
func (nl *Netlist) Validate() error {
	for i := range nl.Gates {
		g := &nl.Gates[i]
		if g.ID != i {
			return fmt.Errorf("netlist %s: gate %q has ID %d at index %d", nl.Name, g.Name, g.ID, i)
		}
		if len(g.Fanin) < g.Type.MinInputs() || len(g.Fanin) > g.Type.MaxInputs() {
			return fmt.Errorf("netlist %s: gate %q (%s) has illegal fan-in %d", nl.Name, g.Name, g.Type, len(g.Fanin))
		}
		if g.Out < 0 || g.Out >= len(nl.Nets) {
			return fmt.Errorf("netlist %s: gate %q output net %d out of range", nl.Name, g.Name, g.Out)
		}
		if nl.Nets[g.Out].Driver != g.ID {
			return fmt.Errorf("netlist %s: gate %q output net %q has driver %d", nl.Name, g.Name, nl.Nets[g.Out].Name, nl.Nets[g.Out].Driver)
		}
		for pin, netID := range g.Fanin {
			if netID < 0 || netID >= len(nl.Nets) {
				return fmt.Errorf("netlist %s: gate %q pin %d reads invalid net %d", nl.Name, g.Name, pin, netID)
			}
			if !nl.Nets[netID].hasSink(PinRef{g.ID, pin}) {
				return fmt.Errorf("netlist %s: net %q missing sink record for gate %q pin %d", nl.Name, nl.Nets[netID].Name, g.Name, pin)
			}
		}
	}
	for i := range nl.Nets {
		n := &nl.Nets[i]
		if n.ID != i {
			return fmt.Errorf("netlist %s: net %q has ID %d at index %d", nl.Name, n.Name, n.ID, i)
		}
		if n.Driver >= 0 {
			if n.Driver >= len(nl.Gates) {
				return fmt.Errorf("netlist %s: net %q driver %d out of range", nl.Name, n.Name, n.Driver)
			}
			if nl.Gates[n.Driver].Out != n.ID {
				return fmt.Errorf("netlist %s: net %q driver gate %q drives net %d", nl.Name, n.Name, nl.Gates[n.Driver].Name, nl.Gates[n.Driver].Out)
			}
			if n.PI >= 0 {
				return fmt.Errorf("netlist %s: net %q has both gate driver and PI", nl.Name, n.Name)
			}
		} else {
			if n.PI < 0 || n.PI >= len(nl.PINames) {
				return fmt.Errorf("netlist %s: net %q has no driver and invalid PI %d", nl.Name, n.Name, n.PI)
			}
			if nl.PINets[n.PI] != n.ID {
				return fmt.Errorf("netlist %s: PI %d maps to net %d, not %q", nl.Name, n.PI, nl.PINets[n.PI], n.Name)
			}
		}
		for _, s := range n.Sinks {
			if s.Gate < 0 || s.Gate >= len(nl.Gates) {
				return fmt.Errorf("netlist %s: net %q sink gate %d out of range", nl.Name, n.Name, s.Gate)
			}
			g := nl.Gates[s.Gate]
			if s.Pin < 0 || s.Pin >= len(g.Fanin) {
				return fmt.Errorf("netlist %s: net %q sink pin %d out of range for gate %q", nl.Name, n.Name, s.Pin, g.Name)
			}
			if g.Fanin[s.Pin] != n.ID {
				return fmt.Errorf("netlist %s: net %q sink record stale: gate %q pin %d reads net %d", nl.Name, n.Name, g.Name, s.Pin, g.Fanin[s.Pin])
			}
		}
		for _, po := range n.POs {
			if po < 0 || po >= len(nl.PONames) {
				return fmt.Errorf("netlist %s: net %q feeds invalid PO %d", nl.Name, n.Name, po)
			}
			if nl.PONets[po] != n.ID {
				return fmt.Errorf("netlist %s: PO %d maps to net %d, not %q", nl.Name, po, nl.PONets[po], n.Name)
			}
		}
	}
	for po, netID := range nl.PONets {
		if netID < 0 || netID >= len(nl.Nets) {
			return fmt.Errorf("netlist %s: PO %d maps to invalid net %d", nl.Name, po, netID)
		}
	}
	return nil
}

func (n *Net) hasSink(p PinRef) bool {
	for _, s := range n.Sinks {
		if s == p {
			return true
		}
	}
	return false
}

// Compact rewrites every Gate.Fanin, Net.Sinks, and Net.POs slice as a
// full-capacity window into one shared backing array per kind. Builders
// call it once construction is done: the per-element slices accumulated by
// AddGate/AddPO collapse into three arenas, after which Clone costs a
// handful of allocations and traversals walk contiguous memory. Later
// edits stay safe — appending to a compacted slice (capacity == length)
// copies that one element's slice out of the arena, and in-place removals
// shift within the element's own window.
func (nl *Netlist) Compact() {
	var nf, ns, np int
	for i := range nl.Gates {
		nf += len(nl.Gates[i].Fanin)
	}
	for i := range nl.Nets {
		ns += len(nl.Nets[i].Sinks)
		np += len(nl.Nets[i].POs)
	}
	fanin := make([]int, 0, nf)
	sinks := make([]PinRef, 0, ns)
	pos := make([]int, 0, np)
	for i := range nl.Gates {
		g := &nl.Gates[i]
		off := len(fanin)
		fanin = append(fanin, g.Fanin...)
		g.Fanin = fanin[off:len(fanin):len(fanin)]
	}
	for i := range nl.Nets {
		n := &nl.Nets[i]
		off := len(sinks)
		sinks = append(sinks, n.Sinks...)
		n.Sinks = sinks[off:len(sinks):len(sinks)]
		off = len(pos)
		pos = append(pos, n.POs...)
		n.POs = pos[off:len(pos):len(pos)]
	}
	// Retire the (possibly oversized) construction arena; the carved
	// slices above all have capacity == length, so a later AddGate grows a
	// fresh arena without disturbing them.
	nl.faninArena = fanin
}

// Clone returns a deep copy of the netlist. The copy is compacted: its
// Fanin/Sinks/POs live on fresh shared arenas, detached from the receiver.
func (nl *Netlist) Clone() *Netlist {
	c := &Netlist{
		Name:    nl.Name,
		Gates:   append([]Gate(nil), nl.Gates...),
		Nets:    append([]Net(nil), nl.Nets...),
		PINames: append([]string(nil), nl.PINames...),
		PONames: append([]string(nil), nl.PONames...),
		PINets:  append([]int(nil), nl.PINets...),
		PONets:  append([]int(nil), nl.PONets...),
	}
	// The value copies above still share Fanin/Sinks/POs backing with the
	// receiver; compacting rebuilds them on arenas owned by the clone.
	c.Compact()
	return c
}

// GateByName returns the gate with the given instance name, or nil. The
// pointer aliases the netlist's gate table and is invalidated by the next
// AddGate.
func (nl *Netlist) GateByName(name string) *Gate {
	for i := range nl.Gates {
		if nl.Gates[i].Name == name {
			return &nl.Gates[i]
		}
	}
	return nil
}

// NetByName returns the net with the given name, or nil. The pointer
// aliases the netlist's net table and is invalidated by the next
// AddPI/AddGate.
func (nl *Netlist) NetByName(name string) *Net {
	for i := range nl.Nets {
		if nl.Nets[i].Name == name {
			return &nl.Nets[i]
		}
	}
	return nil
}

// Stats summarizes structural properties of a netlist.
type Stats struct {
	Gates      int
	Nets       int
	PIs        int
	POs        int
	DFFs       int
	Depth      int     // longest combinational path in gate levels
	AvgFanout  float64 // mean sinks per net
	MaxFanout  int
	TwoPinNets int
}

// ComputeStats derives Stats; Depth is 0 for cyclic netlists.
func (nl *Netlist) ComputeStats() Stats {
	s := Stats{Gates: len(nl.Gates), Nets: len(nl.Nets), PIs: len(nl.PINames), POs: len(nl.PONames)}
	totalFanout := 0
	for _, n := range nl.Nets {
		fo := n.FanoutCount()
		totalFanout += fo
		if fo > s.MaxFanout {
			s.MaxFanout = fo
		}
		if fo == 1 {
			s.TwoPinNets++
		}
	}
	if len(nl.Nets) > 0 {
		s.AvgFanout = float64(totalFanout) / float64(len(nl.Nets))
	}
	for _, g := range nl.Gates {
		if g.Type.IsSequential() {
			s.DFFs++
		}
	}
	if order, ok := nl.TopoOrder(); ok {
		level := make([]int, len(nl.Gates))
		for _, gid := range order {
			g := nl.Gates[gid]
			if g.Type.IsSequential() {
				level[gid] = 0
				continue
			}
			lv := 0
			for _, netID := range g.Fanin {
				d := nl.Nets[netID].Driver
				if d >= 0 && !nl.Gates[d].Type.IsSequential() && level[d]+1 > lv {
					lv = level[d] + 1
				}
			}
			level[gid] = lv
			if lv > s.Depth {
				s.Depth = lv
			}
		}
	}
	return s
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("gates=%d nets=%d PI=%d PO=%d dff=%d depth=%d avgFO=%.2f maxFO=%d",
		s.Gates, s.Nets, s.PIs, s.POs, s.DFFs, s.Depth, s.AvgFanout, s.MaxFanout)
}

// SortedGateNames returns all gate instance names sorted, mainly for
// deterministic test output.
func (nl *Netlist) SortedGateNames() []string {
	names := make([]string, len(nl.Gates))
	for i, g := range nl.Gates {
		names[i] = g.Name
	}
	sort.Strings(names)
	return names
}
