package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildFullAdder constructs a 1-bit full adder used by many tests:
// sum = a^b^cin, cout = ab | cin(a^b).
func buildFullAdder() *Netlist {
	nl := New("fa")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	cin := nl.AddPI("cin")
	x1 := nl.AddGate("x1", Xor, a, b)
	x1out := nl.Gates[x1].Out
	x2 := nl.AddGate("x2", Xor, x1out, cin)
	a1 := nl.AddGate("a1", And, a, b)
	a2 := nl.AddGate("a2", And, x1out, cin)
	o1 := nl.AddGate("o1", Or, nl.Gates[a1].Out, nl.Gates[a2].Out)
	nl.AddPO("sum", nl.Gates[x2].Out)
	nl.AddPO("cout", nl.Gates[o1].Out)
	return nl
}

func TestFullAdderValidate(t *testing.T) {
	nl := buildFullAdder()
	if err := nl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if nl.NumGates() != 5 || nl.NumPIs() != 3 || nl.NumPOs() != 2 {
		t.Fatalf("unexpected counts: %+v", nl.ComputeStats())
	}
}

func TestTopoOrder(t *testing.T) {
	nl := buildFullAdder()
	order, ok := nl.TopoOrder()
	if !ok {
		t.Fatal("acyclic netlist reported cyclic")
	}
	pos := make(map[int]int)
	for i, gid := range order {
		pos[gid] = i
	}
	for _, g := range nl.Gates {
		for _, netID := range g.Fanin {
			if d := nl.Nets[netID].Driver; d >= 0 {
				if pos[d] >= pos[g.ID] {
					t.Fatalf("gate %q appears before its driver %q", g.Name, nl.Gates[d].Name)
				}
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	nl := New("cyc")
	a := nl.AddPI("a")
	g1 := nl.AddGate("g1", And, a, a)
	g2 := nl.AddGate("g2", Or, nl.Gates[g1].Out, a)
	// Close a loop: g1 reads g2's output on pin 1.
	if err := nl.RewirePin(g1, 1, nl.Gates[g2].Out); err != nil {
		t.Fatal(err)
	}
	if !nl.HasCombLoop() {
		t.Fatal("loop not detected")
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("structurally valid cyclic netlist failed Validate: %v", err)
	}
}

func TestDFFBreaksLoop(t *testing.T) {
	nl := New("seq")
	a := nl.AddPI("a")
	g1 := nl.AddGate("g1", And, a, a)
	ff := nl.AddGate("ff", DFF, nl.Gates[g1].Out)
	if err := nl.RewirePin(g1, 1, nl.Gates[ff].Out); err != nil {
		t.Fatal(err)
	}
	if nl.HasCombLoop() {
		t.Fatal("DFF-broken loop flagged as combinational")
	}
}

func TestPathExists(t *testing.T) {
	nl := buildFullAdder()
	x1 := nl.GateByName("x1").ID
	x2 := nl.GateByName("x2").ID
	o1 := nl.GateByName("o1").ID
	if !nl.PathExists(x1, x2) {
		t.Error("x1 -> x2 path missing")
	}
	if !nl.PathExists(x1, o1) {
		t.Error("x1 -> o1 path (via a2) missing")
	}
	if nl.PathExists(x2, x1) {
		t.Error("reverse path x2 -> x1 should not exist")
	}
	if nl.PathExists(o1, x1) {
		t.Error("o1 -> x1 should not exist")
	}
}

func TestRewirePin(t *testing.T) {
	nl := buildFullAdder()
	ref := nl.Clone()
	x2 := nl.GateByName("x2").ID
	aNet := nl.PINets[0]
	if err := nl.RewirePin(x2, 1, aNet); err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("Validate after rewire: %v", err)
	}
	diff := nl.DiffConnections(ref)
	if len(diff) != 1 || diff[0] != (PinRef{Gate: x2, Pin: 1}) {
		t.Fatalf("DiffConnections = %v", diff)
	}
	// Rewire back restores structure.
	if err := nl.RewirePin(x2, 1, ref.Gates[x2].Fanin[1]); err != nil {
		t.Fatal(err)
	}
	if !nl.SameStructure(ref) {
		t.Fatal("structure not restored")
	}
}

func TestSwapSinks(t *testing.T) {
	nl := buildFullAdder()
	ref := nl.Clone()
	x2 := nl.GateByName("x2").ID
	a2 := nl.GateByName("a2").ID
	pa := PinRef{Gate: x2, Pin: 1} // reads cin
	pb := PinRef{Gate: a2, Pin: 0} // reads x1
	if nl.SwapCreatesLoop(pa, pb) {
		t.Fatal("swap incorrectly predicted to create loop")
	}
	if err := nl.SwapSinks(pa, pb); err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("Validate after swap: %v", err)
	}
	if nl.Gates[x2].Fanin[1] != ref.Gates[a2].Fanin[0] {
		t.Fatal("swap did not move net")
	}
	if got := len(nl.DiffConnections(ref)); got != 2 {
		t.Fatalf("expected 2 changed pins, got %d", got)
	}
	// Swapping again restores.
	if err := nl.SwapSinks(pa, pb); err != nil {
		t.Fatal(err)
	}
	if !nl.SameStructure(ref) {
		t.Fatal("double swap did not restore")
	}
}

func TestSwapSameNetRejected(t *testing.T) {
	nl := buildFullAdder()
	x1 := nl.GateByName("x1").ID
	a1 := nl.GateByName("a1").ID
	// both pin 0s read net "a"
	if err := nl.SwapSinks(PinRef{x1, 0}, PinRef{a1, 0}); err == nil {
		t.Fatal("expected error for same-net swap")
	}
}

func TestSwapCreatesLoopDetection(t *testing.T) {
	nl := buildFullAdder()
	x1 := nl.GateByName("x1").ID
	x2 := nl.GateByName("x2").ID
	// Feeding x2's output into x1 while keeping x1 -> x2 forms a loop.
	// Swap x1 pin0 (reads a) with some pin reading x2's out: the PO "sum"
	// has no pin, so wire directly and verify predicate via a helper gate.
	b1 := nl.AddGate("b1", Buf, nl.Gates[x2].Out)
	_ = b1
	pa := PinRef{Gate: x1, Pin: 0}
	pb := PinRef{Gate: b1, Pin: 0}
	if !nl.SwapCreatesLoop(pa, pb) {
		t.Fatal("loop-creating swap not predicted")
	}
	// Perform it anyway and confirm an actual loop exists.
	if err := nl.SwapSinks(pa, pb); err != nil {
		t.Fatal(err)
	}
	if !nl.HasCombLoop() {
		t.Fatal("performed swap should have created a loop")
	}
}

func TestLevels(t *testing.T) {
	nl := buildFullAdder()
	lv, ok := nl.Levels()
	if !ok {
		t.Fatal("Levels failed on acyclic netlist")
	}
	x1 := nl.GateByName("x1").ID
	x2 := nl.GateByName("x2").ID
	o1 := nl.GateByName("o1").ID
	if lv[x1] != 0 || lv[x2] != 1 || lv[o1] != 2 {
		t.Fatalf("levels x1=%d x2=%d o1=%d", lv[x1], lv[x2], lv[o1])
	}
	if s := nl.ComputeStats(); s.Depth != 2 {
		t.Fatalf("depth = %d, want 2", s.Depth)
	}
}

func TestCloneIndependence(t *testing.T) {
	nl := buildFullAdder()
	c := nl.Clone()
	x2 := nl.GateByName("x2").ID
	if err := nl.RewirePin(x2, 0, nl.PINets[0]); err != nil {
		t.Fatal(err)
	}
	if c.Gates[x2].Fanin[0] == nl.Gates[x2].Fanin[0] {
		t.Fatal("clone shares fan-in storage with original")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid after mutating original: %v", err)
	}
}

func TestParseGateType(t *testing.T) {
	cases := map[string]GateType{
		"NAND": Nand, "nand2": Nand, "NAND2_X1": Nand, "INV_X1": Inv,
		"BUF": Buf, "XOR2_X1": Xor, "DFF_X1": DFF, "mux2_x1": Mux,
	}
	for s, want := range cases {
		got, err := ParseGateType(s)
		if err != nil || got != want {
			t.Errorf("ParseGateType(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseGateType("FOO3"); err == nil {
		t.Error("expected error for unknown type")
	}
}

// randomDAG builds a random acyclic netlist for property tests.
func randomDAG(rng *rand.Rand, nPI, nGates int) *Netlist {
	nl := New("rand")
	for i := 0; i < nPI; i++ {
		nl.AddPI(gname("in", i))
	}
	types := []GateType{And, Or, Nand, Nor, Xor, Xnor, Inv, Buf}
	for i := 0; i < nGates; i++ {
		t := types[rng.Intn(len(types))]
		nin := t.MinInputs()
		if t.MaxInputs() > nin {
			nin += rng.Intn(t.MaxInputs() - nin + 1)
		}
		fanin := make([]int, nin)
		for p := range fanin {
			fanin[p] = rng.Intn(len(nl.Nets)) // only existing nets -> acyclic
		}
		nl.AddGate(gname("g", i), t, fanin...)
	}
	// Every net with no sinks becomes a PO so nothing dangles.
	for _, n := range nl.Nets {
		if n.FanoutCount() == 0 {
			nl.AddPO("po_"+n.Name, n.ID)
		}
	}
	return nl
}

func gname(prefix string, i int) string {
	return prefix + "_" + string(rune('a'+i%26)) + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [12]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestPropertyRandomDAGsValidAndAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := randomDAG(rng, 3+rng.Intn(6), 10+rng.Intn(60))
		if nl.Validate() != nil {
			return false
		}
		if nl.HasCombLoop() {
			return false
		}
		order, ok := nl.TopoOrder()
		return ok && len(order) == nl.NumGates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySwapPreservesValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := randomDAG(rng, 4, 40)
		ref := nl.Clone()
		swaps := 0
		for try := 0; try < 200 && swaps < 20; try++ {
			ga := rng.Intn(nl.NumGates())
			gb := rng.Intn(nl.NumGates())
			pa := PinRef{ga, rng.Intn(len(nl.Gates[ga].Fanin))}
			pb := PinRef{gb, rng.Intn(len(nl.Gates[gb].Fanin))}
			if pa == pb || nl.Gates[ga].Fanin[pa.Pin] == nl.Gates[gb].Fanin[pb.Pin] {
				continue
			}
			if nl.SwapCreatesLoop(pa, pb) {
				continue
			}
			if nl.SwapSinks(pa, pb) != nil {
				return false
			}
			swaps++
			if nl.Validate() != nil || nl.HasCombLoop() {
				return false
			}
		}
		// gate/net counts never change under swaps
		return nl.NumGates() == ref.NumGates() && nl.NumNets() == ref.NumNets()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySwapCreatesLoopIsExact(t *testing.T) {
	// Whenever SwapCreatesLoop says false, performing the swap must keep
	// the netlist acyclic; whenever it says true, performing the swap must
	// produce a cycle.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := randomDAG(rng, 4, 30)
		for try := 0; try < 50; try++ {
			ga := rng.Intn(nl.NumGates())
			gb := rng.Intn(nl.NumGates())
			pa := PinRef{ga, rng.Intn(len(nl.Gates[ga].Fanin))}
			pb := PinRef{gb, rng.Intn(len(nl.Gates[gb].Fanin))}
			if pa == pb || nl.Gates[ga].Fanin[pa.Pin] == nl.Gates[gb].Fanin[pb.Pin] {
				continue
			}
			pred := nl.SwapCreatesLoop(pa, pb)
			if nl.SwapSinks(pa, pb) != nil {
				return false
			}
			got := nl.HasCombLoop()
			// undo
			if nl.SwapSinks(pa, pb) != nil {
				return false
			}
			if pred != got {
				return false
			}
		}
		return !nl.HasCombLoop()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectionsEnumeration(t *testing.T) {
	nl := buildFullAdder()
	conns := nl.Connections()
	// pins: x1(2) x2(2) a1(2) a2(2) o1(2) = 10, POs: 2 => 12
	if len(conns) != 12 {
		t.Fatalf("got %d connections, want 12", len(conns))
	}
	seen := make(map[ConnectionKey]bool)
	for _, c := range conns {
		if seen[c] {
			t.Fatalf("duplicate connection %+v", c)
		}
		seen[c] = true
	}
}

func TestStatsFanout(t *testing.T) {
	nl := buildFullAdder()
	s := nl.ComputeStats()
	if s.MaxFanout != 2 { // a, b, x1 each feed 2 sinks
		t.Fatalf("MaxFanout = %d, want 2", s.MaxFanout)
	}
	if s.DFFs != 0 {
		t.Fatalf("DFFs = %d", s.DFFs)
	}
}

func TestTopoOrderDFFDoesNotReleaseSinksEarly(t *testing.T) {
	// Regression: a gate reading both a DFF output and a combinational
	// net must appear after its combinational driver, even though the
	// DFF (a source) is processed first. Construct: buf (high ID order
	// pressure) -> xnor, dff -> xnor.
	nl := New("seq-order")
	a := nl.AddPI("a")
	ff := nl.AddGate("ff", DFF, a)
	// xnor created BEFORE buf so the queue sees ff first and must not
	// release xnor until buf is processed.
	x := nl.AddGate("x", Xnor, nl.Gates[ff].Out, a) // placeholder pin 1
	b := nl.AddGate("b", Buf, a)
	if err := nl.RewirePin(x, 1, nl.Gates[b].Out); err != nil {
		t.Fatal(err)
	}
	nl.AddPO("y", nl.Gates[x].Out)
	order, ok := nl.TopoOrder()
	if !ok {
		t.Fatal("cyclic?")
	}
	pos := map[int]int{}
	for i, g := range order {
		pos[g] = i
	}
	if pos[x] < pos[b] {
		t.Fatalf("xnor at %d before its combinational driver buf at %d", pos[x], pos[b])
	}
}
