package cell

import (
	"testing"

	"splitmfg/internal/netlist"
)

func TestLibraryCompleteness(t *testing.T) {
	lib := NewNangate45Like()
	// Every combinational type/fan-in/drive combination must resolve.
	types := []netlist.GateType{netlist.And, netlist.Or, netlist.Nand, netlist.Nor}
	for _, gt := range types {
		for _, in := range []int{2, 3, 4} {
			for _, d := range []int{1, 2, 4, 8} {
				if _, err := lib.MasterFor(gt, in, d); err != nil {
					t.Errorf("missing %v/%d/X%d: %v", gt, in, d, err)
				}
			}
		}
	}
	for _, gt := range []netlist.GateType{netlist.Inv, netlist.Buf, netlist.Xor, netlist.Xnor, netlist.Mux, netlist.DFF} {
		if _, err := lib.MasterFor(gt, gt.MinInputs(), 1); err != nil {
			t.Errorf("missing %v: %v", gt, err)
		}
	}
	if _, err := lib.MasterFor(netlist.And, 2, 3); err == nil {
		t.Error("X3 should not exist")
	}
}

func TestDriveScaling(t *testing.T) {
	lib := NewNangate45Like()
	x1, _ := lib.MasterFor(netlist.Nand, 2, 1)
	x4, _ := lib.MasterFor(netlist.Nand, 2, 4)
	if x4.MaxCap <= x1.MaxCap {
		t.Error("X4 should drive more load than X1")
	}
	if x4.DriveRes >= x1.DriveRes {
		t.Error("X4 should have lower drive resistance")
	}
	if x4.Leakage <= x1.Leakage {
		t.Error("X4 should leak more")
	}
	if x4.WidthNM <= x1.WidthNM {
		t.Error("X4 should be wider")
	}
	// Linear delay model sanity: more load, more delay.
	if x1.Delay(10) <= x1.Delay(1) {
		t.Error("delay must grow with load")
	}
}

func TestCorrectionAndLiftingCells(t *testing.T) {
	lib := NewNangate45Like()
	for _, layer := range []int{6, 8} {
		c, err := lib.Correction(layer)
		if err != nil {
			t.Fatal(err)
		}
		if c.PinLayer != layer || !c.Overlappable || c.Inputs != 2 {
			t.Fatalf("correction cell M%d malformed: %+v", layer, c)
		}
		l, err := lib.Lifting(layer)
		if err != nil {
			t.Fatal(err)
		}
		if l.PinLayer != layer || !l.Overlappable || l.Inputs != 1 {
			t.Fatalf("lifting cell M%d malformed: %+v", layer, l)
		}
		// Correction cells borrow BUF_X2 electricals (paper Sec. 4).
		buf2 := lib.Masters["BUF_X2"]
		if c.Intrinsic != buf2.Intrinsic || c.DriveRes != buf2.DriveRes {
			t.Error("correction cell electricals should match BUF_X2")
		}
	}
	if _, err := lib.Correction(3); err == nil {
		t.Error("no correction cell should exist for M3")
	}
}

func TestWireRCMonotone(t *testing.T) {
	lib := NewNangate45Like()
	for l := 2; l <= NumLayers; l++ {
		if lib.WireCapPerUM[l] < lib.WireCapPerUM[l-1] {
			t.Errorf("cap should not fall with layer (wider wires): M%d=%v M%d=%v", l-1, lib.WireCapPerUM[l-1], l, lib.WireCapPerUM[l])
		}
		if lib.WireResPerUM[l] >= lib.WireResPerUM[l-1] {
			t.Errorf("res should fall with layer")
		}
	}
	if lib.WireCapPerUM[1] <= 0 || lib.WireResPerUM[NumLayers] <= 0 {
		t.Error("RC must stay positive")
	}
}

func TestBindUpsizesHighFanout(t *testing.T) {
	lib := NewNangate45Like()
	nl := netlist.New("fo")
	a := nl.AddPI("a")
	src := nl.AddGate("src", netlist.Buf, a)
	srcOut := nl.Gates[src].Out
	for i := 0; i < 8; i++ {
		g := nl.AddGate("s"+string(rune('a'+i)), netlist.Inv, srcOut)
		nl.AddPO("y"+string(rune('a'+i)), nl.Gates[g].Out)
	}
	masters, err := lib.Bind(nl)
	if err != nil {
		t.Fatal(err)
	}
	if masters[src].Drive < 4 {
		t.Errorf("8-fanout gate bound to X%d, want >= X4", masters[src].Drive)
	}
	for _, g := range nl.Gates[1:] {
		if masters[g.ID].Drive != 1 {
			t.Errorf("low-fanout gate %s bound to X%d", g.Name, masters[g.ID].Drive)
		}
	}
}

func TestBindAllTypes(t *testing.T) {
	lib := NewNangate45Like()
	nl := netlist.New("all")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	s := nl.AddPI("s")
	g1 := nl.AddGate("g1", netlist.Nand, a, b)
	g2 := nl.AddGate("g2", netlist.Xor, nl.Gates[g1].Out, b)
	g3 := nl.AddGate("g3", netlist.Mux, s, nl.Gates[g1].Out, nl.Gates[g2].Out)
	g4 := nl.AddGate("g4", netlist.DFF, nl.Gates[g3].Out)
	nl.AddPO("q", nl.Gates[g4].Out)
	masters, err := lib.Bind(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(masters) != 4 {
		t.Fatalf("len = %d", len(masters))
	}
	for i, g := range nl.Gates {
		if masters[i].Type != g.Type {
			t.Errorf("gate %s bound to wrong type %v", g.Name, masters[i].Type)
		}
	}
}
