// Package cell models the standard-cell library the flow builds on. It is a
// self-contained stand-in for the Nangate 45nm Open Cell Library used in the
// paper: cell footprints snap to a 190nm-site/1400nm-row grid, and the
// timing/power model is the usual linear-delay abstraction (intrinsic delay
// plus drive resistance times load capacitance).
//
// The package also defines the paper's two custom cell families:
//
//   - Correction cells: 2-input/2-output cells whose pins live in a high
//     metal layer (M6 or M8). Arc C->Z implements the erroneous connection
//     during initial place-and-route; the true arcs C->Y and D->Z are
//     re-routed in the BEOL. They inherit BUF_X2 power/timing, occupy no
//     device-layer area, and may overlap standard cells.
//   - Naive lifting cells: same lifting machinery without the misleading
//     arc, used for the paper's naive-lifting baseline.
package cell

import (
	"fmt"

	"splitmfg/internal/netlist"
)

// Technology constants for the 45nm-class library (nanometers).
const (
	SiteWidth = 190  // placement site width
	RowHeight = 1400 // standard-cell row height
	NumLayers = 10   // metal layers M1..M10
)

// Master describes one library cell.
type Master struct {
	Name      string
	Type      netlist.GateType
	Inputs    int     // fan-in count
	Drive     int     // drive strength (X1, X2, X4, ...)
	WidthNM   int     // footprint width; height is always RowHeight
	InputCap  float64 // input pin capacitance, fF
	MaxCap    float64 // maximum drivable load, fF
	Intrinsic float64 // intrinsic delay, ps
	DriveRes  float64 // delay slope, ps per fF of load
	Leakage   float64 // leakage power, nW
	SwitchE   float64 // internal energy per output transition, fJ

	// PinLayer is 1 (M1) for standard cells; correction/lifting cells put
	// all pins in a high layer (6 or 8) so that their wiring is BEOL-only.
	PinLayer int
	// Overlappable marks cells that do not occupy the device layer and may
	// overlap standard cells (true for correction/lifting cells).
	Overlappable bool
}

// String returns the library name of the master.
func (m *Master) String() string { return m.Name }

// Delay returns the pin-to-pin delay in ps for the given load in fF.
func (m *Master) Delay(loadFF float64) float64 {
	// The explicit conversion forces the product to round before the add:
	// without it the compiler may fuse x + y*z into an FMA on arm64 but
	// not amd64, making the last ulp of every delay — and the golden
	// report bytes — architecture-dependent.
	return m.Intrinsic + float64(m.DriveRes*loadFF)
}

// Library is a collection of masters plus technology data.
type Library struct {
	Name    string
	Masters map[string]*Master

	// WireCapPerUM is wire capacitance per micron per layer (fF/µm),
	// indexed by layer 1..NumLayers; higher layers are wider/faster.
	WireCapPerUM [NumLayers + 1]float64
	// WireResPerUM is wire resistance per micron per layer (mΩ-scale in ps
	// units folded into the delay model), indexed likewise.
	WireResPerUM [NumLayers + 1]float64
}

// NewNangate45Like constructs the default library. Values are realistic in
// relative terms (X2 drives twice the load of X1, NAND is faster than XOR,
// higher metal layers have lower RC), which is all the paper's
// percentage-based results depend on.
func NewNangate45Like() *Library {
	lib := &Library{Name: "nangate45like", Masters: map[string]*Master{}}
	add := func(m *Master) { lib.Masters[m.Name] = m }

	type proto struct {
		t         netlist.GateType
		base      string
		inputs    int
		width     int     // X1 width in sites
		inCap     float64 // fF
		intrinsic float64 // ps
		res       float64 // ps/fF
		leak      float64 // nW
		energy    float64 // fJ
	}
	protos := []proto{
		{netlist.Inv, "INV", 1, 2, 1.6, 8, 5.0, 10, 0.4},
		{netlist.Buf, "BUF", 1, 3, 1.7, 16, 4.5, 14, 0.6},
		{netlist.And, "AND2", 2, 4, 1.8, 22, 5.5, 22, 0.9},
		{netlist.And, "AND3", 3, 5, 1.9, 26, 6.0, 28, 1.1},
		{netlist.And, "AND4", 4, 6, 2.0, 30, 6.5, 34, 1.3},
		{netlist.Nand, "NAND2", 2, 3, 1.9, 12, 5.2, 16, 0.7},
		{netlist.Nand, "NAND3", 3, 4, 2.0, 16, 5.8, 22, 0.9},
		{netlist.Nand, "NAND4", 4, 5, 2.1, 20, 6.4, 28, 1.1},
		{netlist.Or, "OR2", 2, 4, 1.8, 24, 5.5, 22, 0.9},
		{netlist.Or, "OR3", 3, 5, 1.9, 28, 6.0, 28, 1.1},
		{netlist.Or, "OR4", 4, 6, 2.0, 32, 6.5, 34, 1.3},
		{netlist.Nor, "NOR2", 2, 3, 1.9, 14, 5.4, 16, 0.7},
		{netlist.Nor, "NOR3", 3, 4, 2.0, 18, 6.0, 22, 0.9},
		{netlist.Nor, "NOR4", 4, 5, 2.1, 22, 6.6, 28, 1.1},
		{netlist.Xor, "XOR2", 2, 5, 2.2, 30, 6.8, 30, 1.4},
		{netlist.Xnor, "XNOR2", 2, 5, 2.2, 30, 6.8, 30, 1.4},
		{netlist.Mux, "MUX2", 3, 6, 2.1, 28, 6.4, 32, 1.3},
		{netlist.DFF, "DFF", 1, 9, 1.8, 60, 7.0, 60, 2.4},
	}
	for _, p := range protos {
		for _, drive := range []int{1, 2, 4, 8} {
			scale := float64(drive)
			add(&Master{
				Name:      fmt.Sprintf("%s_X%d", p.base, drive),
				Type:      p.t,
				Inputs:    p.inputs,
				Drive:     drive,
				WidthNM:   p.width * SiteWidth * (1 + drive/3), // X4/X8 wider
				InputCap:  p.inCap * (1 + 0.15*(scale-1)),
				MaxCap:    20 * scale,
				Intrinsic: p.intrinsic * (1 + 0.1*(scale-1)),
				DriveRes:  p.res / scale,
				Leakage:   p.leak * scale,
				SwitchE:   p.energy * scale,
				PinLayer:  1,
			})
		}
	}
	// Correction cells (paper Sec. 4): 2-in/2-out, pins in M6 or M8,
	// BUF_X2-equivalent electricals, zero device-layer footprint (they
	// still have a nominal width used only by the overlap legalizer that
	// keeps correction cells from overlapping each other).
	buf2 := lib.Masters["BUF_X2"]
	for _, layer := range []int{6, 8} {
		add(&Master{
			Name:         fmt.Sprintf("CORR_M%d", layer),
			Type:         netlist.Or, // modeled as 2-input-2-output OR
			Inputs:       2,
			Drive:        2,
			WidthNM:      4 * SiteWidth,
			InputCap:     buf2.InputCap,
			MaxCap:       buf2.MaxCap,
			Intrinsic:    buf2.Intrinsic,
			DriveRes:     buf2.DriveRes,
			Leakage:      buf2.Leakage,
			SwitchE:      buf2.SwitchE,
			PinLayer:     layer,
			Overlappable: true,
		})
		add(&Master{
			Name:         fmt.Sprintf("LIFT_M%d", layer),
			Type:         netlist.Buf,
			Inputs:       1,
			Drive:        2,
			WidthNM:      2 * SiteWidth,
			InputCap:     buf2.InputCap,
			MaxCap:       buf2.MaxCap,
			Intrinsic:    buf2.Intrinsic,
			DriveRes:     buf2.DriveRes,
			Leakage:      buf2.Leakage,
			SwitchE:      buf2.SwitchE,
			PinLayer:     layer,
			Overlappable: true,
		})
	}
	// Per-layer wire RC: lower layers are thin (high resistance); upper
	// layers are wide (much lower resistance, slightly higher capacitance
	// from the wider plate/fringe).
	for l := 1; l <= NumLayers; l++ {
		f := float64(l-1) / float64(NumLayers-1) // 0 at M1, 1 at M10
		lib.WireCapPerUM[l] = 0.20 + 0.03*f      // fF/µm
		lib.WireResPerUM[l] = 8.0 - 6.5*f        // ps-per-fF·µm scale
	}
	return lib
}

// MasterFor returns the smallest master implementing the given gate type
// and fan-in at the requested drive strength, or an error.
func (lib *Library) MasterFor(t netlist.GateType, inputs, drive int) (*Master, error) {
	var name string
	switch t {
	case netlist.Inv:
		name = fmt.Sprintf("INV_X%d", drive)
	case netlist.Buf:
		name = fmt.Sprintf("BUF_X%d", drive)
	case netlist.Xor:
		name = fmt.Sprintf("XOR2_X%d", drive)
	case netlist.Xnor:
		name = fmt.Sprintf("XNOR2_X%d", drive)
	case netlist.Mux:
		name = fmt.Sprintf("MUX2_X%d", drive)
	case netlist.DFF:
		name = fmt.Sprintf("DFF_X%d", drive)
	default:
		name = fmt.Sprintf("%s%d_X%d", t, inputs, drive)
	}
	m, ok := lib.Masters[name]
	if !ok {
		return nil, fmt.Errorf("cell: no master %q in library %s", name, lib.Name)
	}
	return m, nil
}

// Correction returns the correction-cell master for the given pin layer.
func (lib *Library) Correction(layer int) (*Master, error) {
	m, ok := lib.Masters[fmt.Sprintf("CORR_M%d", layer)]
	if !ok {
		return nil, fmt.Errorf("cell: no correction cell for layer M%d", layer)
	}
	return m, nil
}

// Lifting returns the naive-lifting-cell master for the given pin layer.
func (lib *Library) Lifting(layer int) (*Master, error) {
	m, ok := lib.Masters[fmt.Sprintf("LIFT_M%d", layer)]
	if !ok {
		return nil, fmt.Errorf("cell: no lifting cell for layer M%d", layer)
	}
	return m, nil
}

// Bind chooses a master for every gate of a netlist. Drive strengths are
// assigned by fan-out: gates driving many sinks get upsized, mirroring what
// a commercial flow's optimizer would do (and producing the load/size hints
// the proximity attack exploits).
func (lib *Library) Bind(nl *netlist.Netlist) ([]*Master, error) {
	masters := make([]*Master, nl.NumGates())
	for _, g := range nl.Gates {
		fo := nl.Nets[g.Out].FanoutCount()
		drive := 1
		switch {
		case fo > 12:
			drive = 8
		case fo > 6:
			drive = 4
		case fo > 3:
			drive = 2
		}
		m, err := lib.MasterFor(g.Type, len(g.Fanin), drive)
		if err != nil {
			return nil, fmt.Errorf("cell: gate %q: %v", g.Name, err)
		}
		masters[g.ID] = m
	}
	return masters, nil
}
