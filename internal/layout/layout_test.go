package layout

import (
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/geom"
	"splitmfg/internal/netlist"
	"splitmfg/internal/place"
	"splitmfg/internal/route"
)

func buildDesign(t *testing.T, name string) *Design {
	t.Helper()
	nl, err := bench.ISCAS85(name)
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	masters, err := lib.Bind(nl)
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(nl, masters, place.Options{UtilPercent: 70, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDesign(nl, masters, p, route.Options{})
	if err := d.RouteAll(nil); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRouteAllValid(t *testing.T) {
	d := buildDesign(t, "c432")
	if err := d.Router.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every multi-terminal net must be routed.
	for _, n := range d.Netlist.Nets {
		if n.FanoutCount() == 0 {
			continue
		}
		if d.Router.Net(n.ID) == nil {
			t.Fatalf("net %q unrouted", n.Name)
		}
	}
}

func TestSplitBasics(t *testing.T) {
	d := buildDesign(t, "c432")
	sv, err := d.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.VPins) == 0 {
		t.Fatal("no vpins after M3 split — all routing below M4?")
	}
	if len(sv.Frags) == 0 {
		t.Fatal("no fragments")
	}
	// Every vpin references a valid fragment of the same route.
	for _, vp := range sv.VPins {
		if vp.Frag < 0 || vp.Frag >= len(sv.Frags) {
			t.Fatalf("vpin %d bad frag %d", vp.ID, vp.Frag)
		}
		if sv.Frags[vp.Frag].RouteID != vp.RouteID {
			t.Fatalf("vpin %d frag route mismatch", vp.ID)
		}
		if vp.Node.Z != 3 {
			t.Fatalf("vpin node at M%d, want M3", vp.Node.Z)
		}
	}
	// Every fragment's pins belong to its route.
	for _, f := range sv.Frags {
		want := d.Pins[f.RouteID]
		for _, p := range f.Pins {
			found := false
			for _, w := range want {
				if w == p {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("fragment %d contains foreign pin", f.ID)
			}
		}
	}
}

func TestSplitLayerRange(t *testing.T) {
	d := buildDesign(t, "c432")
	if _, err := d.Split(0); err == nil {
		t.Error("split M0 should fail")
	}
	if _, err := d.Split(10); err == nil {
		t.Error("split at top layer should fail")
	}
}

func TestFragmentsPartitionPins(t *testing.T) {
	d := buildDesign(t, "c880")
	sv, err := d.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	// Each routed net's M1 pins must appear in exactly one fragment each.
	counts := map[int]int{} // route ID -> pins seen in fragments
	for _, f := range sv.Frags {
		counts[f.RouteID] += len(f.Pins)
	}
	for id, pins := range d.Pins {
		feol := 0
		for _, p := range pins {
			if p.Layer <= 4 {
				feol++
			}
		}
		if counts[id] != feol {
			t.Fatalf("route %d: %d pins in fragments, want %d", id, counts[id], feol)
		}
	}
}

func TestDriverSinkFragsDisjoint(t *testing.T) {
	d := buildDesign(t, "c880")
	sv, err := d.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	drv := map[int]bool{}
	for _, f := range sv.DriverFrags() {
		drv[f] = true
	}
	for _, f := range sv.SinkFrags() {
		if drv[f] {
			t.Fatalf("fragment %d both driver and pure-sink", f)
		}
	}
}

func TestSplitHigherLayerFewerVPins(t *testing.T) {
	d := buildDesign(t, "c880")
	sv3, err := d.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	sv6, err := d.Split(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv6.VPins) >= len(sv3.VPins) {
		t.Fatalf("expected fewer vpins at M6 split: M3=%d M6=%d", len(sv3.VPins), len(sv6.VPins))
	}
}

func TestDanglingDirections(t *testing.T) {
	d := buildDesign(t, "c432")
	sv, err := d.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Direction]int{}
	for _, vp := range sv.VPins {
		seen[vp.Dir]++
	}
	// M3 is a horizontal layer, so directed vpins must point E or W only.
	if seen[DirNorth] > 0 || seen[DirSouth] > 0 {
		t.Fatalf("N/S dangling wires on horizontal layer M3: %v", seen)
	}
	if seen[DirEast]+seen[DirWest] == 0 {
		t.Fatalf("no directional dangling wires at all: %v", seen)
	}
}

func TestExtrasLegalization(t *testing.T) {
	d := buildDesign(t, "c432")
	lib := cell.NewNangate45Like()
	corr, err := lib.Correction(6)
	if err != nil {
		t.Fatal(err)
	}
	// Drop many extras onto the same spot; legalization must separate them.
	for i := 0; i < 20; i++ {
		d.AddExtra(corr, geom.Point{X: 5000, Y: 5000})
	}
	if d.CheckExtrasLegal() == nil {
		t.Fatal("overlapping extras not detected")
	}
	d.LegalizeExtras()
	if err := d.CheckExtrasLegal(); err != nil {
		t.Fatal(err)
	}
	// All extras stay inside the die.
	for _, e := range d.Extras {
		if e.Loc.X < d.Placement.Die.Lo.X || e.Loc.X+e.Master.WidthNM > d.Placement.Die.Hi.X {
			t.Fatalf("extra %d outside die x", e.ID)
		}
	}
}

func TestTaggedNetPins(t *testing.T) {
	d := buildDesign(t, "c432")
	for _, n := range d.Netlist.Nets {
		pins := d.TaggedNetPins(n.ID)
		if len(pins) != 1+n.FanoutCount() {
			t.Fatalf("net %q: %d tagged pins", n.Name, len(pins))
		}
		if n.IsPI() && pins[0].Role != RolePI {
			t.Fatal("PI net source must be RolePI")
		}
		if !n.IsPI() && (pins[0].Role != RoleDriver || pins[0].Gate != n.Driver) {
			t.Fatal("net source must be tagged driver")
		}
	}
}

func TestVPinOnFragmentBoundaryNode(t *testing.T) {
	d := buildDesign(t, "c432")
	sv, err := d.Split(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, vp := range sv.VPins {
		f := sv.Frags[vp.Frag]
		found := false
		for _, n := range f.Nodes {
			if n == vp.Node {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("vpin %d node %v not in its fragment", vp.ID, vp.Node)
		}
	}
}

func TestSyntheticEntityRouting(t *testing.T) {
	// Route a BEOL-only wire between two high-layer terminals, as the
	// restoration step does between correction cells.
	nl := netlist.New("tiny")
	a := nl.AddPI("a")
	g := nl.AddGate("g", netlist.Buf, a)
	nl.AddPO("y", nl.Gates[g].Out)
	lib := cell.NewNangate45Like()
	masters, _ := lib.Bind(nl)
	p, err := place.Place(nl, masters, place.Options{UtilPercent: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDesign(nl, masters, p, route.Options{})
	pins := []TaggedPin{
		{Pin: route.Pin{Pt: p.Die.Lo, Layer: 8}, Role: RoleCorrOut, Gate: 0, PO: -1},
		{Pin: route.Pin{Pt: p.Die.Center(), Layer: 8}, Role: RoleCorrIn, Gate: 1, PO: -1},
	}
	if err := d.RouteEntity(1000, -1, pins, 8); err != nil {
		t.Fatal(err)
	}
	sv, err := d.Split(6)
	if err != nil {
		t.Fatal(err)
	}
	// A BEOL-only wire must contribute no FEOL fragments with nodes.
	for _, f := range sv.Frags {
		if f.RouteID == 1000 && len(f.Nodes) > 0 {
			for _, n := range f.Nodes {
				if n.Z <= 6 {
					t.Fatalf("BEOL wire has FEOL node %v", n)
				}
			}
		}
	}
}

func TestSplitPartitionsFEOLEdges(t *testing.T) {
	// Property: for every routed entity, the FEOL wire/via edges are
	// exactly covered by the fragments' node sets (no edge spans two
	// fragments, none is orphaned).
	d := buildDesign(t, "c880")
	for _, layer := range []int{3, 5} {
		sv, err := d.Split(layer)
		if err != nil {
			t.Fatal(err)
		}
		type key struct {
			route int
			node  route.Node
		}
		nodeFrag := map[key]int{}
		for _, f := range sv.Frags {
			for _, n := range f.Nodes {
				k := key{f.RouteID, n}
				if prev, ok := nodeFrag[k]; ok && prev != f.ID {
					t.Fatalf("route %d node %v in fragments %d and %d", f.RouteID, n, prev, f.ID)
				}
				nodeFrag[k] = f.ID
			}
		}
		for id, rn := range d.Router.Nets() {
			for _, e := range rn.Edges {
				if e.A.Z <= layer && e.B.Z <= layer {
					fa, oka := nodeFrag[key{id, e.A}]
					fb, okb := nodeFrag[key{id, e.B}]
					if !oka || !okb {
						t.Fatalf("FEOL edge %v not covered by fragments", e)
					}
					if fa != fb {
						t.Fatalf("FEOL edge %v spans fragments %d/%d", e, fa, fb)
					}
				}
			}
		}
	}
}

func TestDefaultLiftBands(t *testing.T) {
	if DefaultLift(0) != 1 || DefaultLift(59) != 1 {
		t.Fatal("short/medium nets must stay unconstrained")
	}
	if DefaultLift(60) != 4 || DefaultLift(1000) != 4 {
		t.Fatal("very long nets promote to M4")
	}
}
