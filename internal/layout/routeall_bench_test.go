package layout

import (
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/place"
	"splitmfg/internal/route"
)

// BenchmarkRouteAllC880 measures the flat full-design route (placement is
// built once outside the loop; each iteration constructs a fresh Design so
// the router grids start empty). This is the "RouteAll" datapoint behind
// DESIGN.md's memory-layout numbers.
func BenchmarkRouteAllC880(b *testing.B) {
	nl, err := bench.ISCAS85("c880")
	if err != nil {
		b.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	masters, err := lib.Bind(nl)
	if err != nil {
		b.Fatal(err)
	}
	p, err := place.Place(nl, masters, place.Options{UtilPercent: 70, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDesign(nl, masters, p, route.Options{})
		if err := d.RouteAll(nil); err != nil {
			b.Fatal(err)
		}
	}
}
