// Package layout composes a netlist, a placement, and a router into a full
// physical design, and implements the split-manufacturing view of it:
// splitting the stack after a chosen metal layer yields the FEOL fragments,
// the virtual pins (vpins — via locations where nets cross from the split
// layer into the BEOL), and the dangling-wire directions that the paper's
// attacks consume.
package layout

import (
	"errors"
	"fmt"

	"splitmfg/internal/cell"
	"splitmfg/internal/geom"
	"splitmfg/internal/netlist"
	"splitmfg/internal/place"
	"splitmfg/internal/route"
)

// PinRole tags what a routed terminal is, so the split view can identify
// driver-side and sink-side fragments.
type PinRole int

// Pin roles.
const (
	RoleDriver  PinRole = iota // output pin of a standard cell
	RoleSink                   // input pin of a standard cell
	RolePI                     // primary-input pad
	RolePO                     // primary-output pad
	RoleCorrIn                 // correction/lifting cell input (C or D), BEOL layer
	RoleCorrOut                // correction/lifting cell output (Y or Z), BEOL layer
)

// TaggedPin is a routing terminal plus design identity.
type TaggedPin struct {
	route.Pin
	Role PinRole
	Gate int            // gate ID for driver/sink roles; extra-cell ID for corr roles; -1 otherwise
	Ref  netlist.PinRef // sink pin reference for RoleSink
	PO   int            // PO index for RolePO, else -1
}

// Extra is an auxiliary cell that is not part of the logical netlist:
// correction cells and naive-lifting cells. They occupy no device-layer
// area and may overlap standard cells, but not each other.
type Extra struct {
	ID     int
	Master *cell.Master
	Loc    geom.Point // lower-left
}

// Center returns the extra cell's pin location.
func (e Extra) Center() geom.Point {
	return geom.Point{X: e.Loc.X + e.Master.WidthNM/2, Y: e.Loc.Y + cell.RowHeight/2}
}

// Design is a placed-and-routed design plus the metadata needed for split
// analysis.
type Design struct {
	Netlist   *netlist.Netlist
	Masters   []*cell.Master
	Placement *place.Placement
	Grid      route.Grid
	Router    *route.Router
	Extras    []Extra

	// Pins holds the tagged terminals of each routed entity, densely
	// indexed by route ID (netlist nets use their net ID; synthetic
	// entities get contiguous IDs above NumNets). A nil entry means the
	// ID is unrouted.
	Pins [][]TaggedPin
	// NetOf maps route ID -> netlist net ID, dense parallel to Pins (-1
	// for synthetic BEOL wires). Use NetIDOf to distinguish unrouted IDs.
	NetOf []int

	// pinArena backs the route.Pin scratch RouteEntities hands the router,
	// reused across calls.
	pinArena []route.Pin
}

// NewDesign builds an unrouted design over the placement's die. The gcell
// pitch adapts to the die so that small ISCAS-class dies still get a
// meaningful routing grid (~80 gcells across) while huge dies cap at the
// default pitch.
func NewDesign(nl *netlist.Netlist, masters []*cell.Master, p *place.Placement, ropt route.Options) *Design {
	gc := geom.Clamp(p.Die.W()/80/10*10, 560, route.DefaultGCellNM)
	grid := route.NewGrid(p.Die, gc, cell.NumLayers)
	d := &Design{
		Netlist:   nl,
		Masters:   masters,
		Placement: p,
		Grid:      grid,
		Router:    route.NewRouter(grid, ropt),
		Pins:      make([][]TaggedPin, nl.NumNets()),
		NetOf:     make([]int, nl.NumNets()),
	}
	for i := range d.NetOf {
		d.NetOf[i] = -1
	}
	return d
}

// setEntity records a routed entity's terminals, growing the dense tables
// for synthetic route IDs above the netlist block.
func (d *Design) setEntity(routeID, netID int, pins []TaggedPin) {
	for routeID >= len(d.Pins) {
		d.Pins = append(d.Pins, nil)
		d.NetOf = append(d.NetOf, -1)
	}
	d.Pins[routeID] = pins
	d.NetOf[routeID] = netID
}

// NetIDOf returns the netlist net a route ID realizes. ok is false for
// route IDs that have not been routed; netID is -1 for synthetic BEOL
// wires (stubs, restoration wiring).
func (d *Design) NetIDOf(routeID int) (netID int, ok bool) {
	if routeID < 0 || routeID >= len(d.Pins) || d.Pins[routeID] == nil {
		return -1, false
	}
	return d.NetOf[routeID], true
}

// TaggedRouteIDs returns every routed entity's route ID in ascending
// order — the deterministic iteration order analyses rely on.
func (d *Design) TaggedRouteIDs() []int {
	ids := make([]int, 0, len(d.Pins))
	for id := range d.Pins {
		if d.Pins[id] != nil {
			ids = append(ids, id)
		}
	}
	return ids
}

// TaggedNetPins builds the tagged terminal list of a netlist net from the
// placement (driver cell/PI pad plus all sinks/PO pads), with standard-cell
// pins on M1.
func (d *Design) TaggedNetPins(netID int) []TaggedPin {
	pins := make([]TaggedPin, 0, 1+d.Netlist.Nets[netID].FanoutCount())
	return d.appendNetPins(pins, netID)
}

// appendNetPins appends the net's tagged terminals to dst (the allocation-
// free core of TaggedNetPins, for callers batching many nets into one
// arena).
func (d *Design) appendNetPins(dst []TaggedPin, netID int) []TaggedPin {
	n := &d.Netlist.Nets[netID]
	if n.IsPI() {
		// PI pads carry the PI index in Ref.Gate so attacks/metrics can
		// identify which input a driver fragment represents.
		dst = append(dst, TaggedPin{
			Pin:  route.Pin{Pt: d.Placement.PIPads[n.PI], Layer: 1},
			Role: RolePI, Gate: -1, Ref: netlist.PinRef{Gate: n.PI, Pin: -1}, PO: -1,
		})
	} else {
		dst = append(dst, TaggedPin{
			Pin:  route.Pin{Pt: d.Placement.GateCenter(n.Driver), Layer: 1},
			Role: RoleDriver, Gate: n.Driver, PO: -1,
		})
	}
	for _, s := range n.Sinks {
		dst = append(dst, TaggedPin{
			Pin:  route.Pin{Pt: d.Placement.GateCenter(s.Gate), Layer: 1},
			Role: RoleSink, Gate: s.Gate, Ref: s, PO: -1,
		})
	}
	for _, po := range n.POs {
		dst = append(dst, TaggedPin{
			Pin:  route.Pin{Pt: d.Placement.POPads[po], Layer: 1},
			Role: RolePO, Gate: -1, PO: po,
		})
	}
	return dst
}

// RouteEntity routes one entity (net or synthetic wire) with the given lift
// constraint and records its terminals. routeID must be unique per entity;
// for plain netlist nets use the net ID.
func (d *Design) RouteEntity(routeID, netID int, pins []TaggedPin, lift int) error {
	rpins := make([]route.Pin, len(pins))
	for i, p := range pins {
		rpins[i] = p.Pin
	}
	if err := d.Router.RouteNet(routeID, rpins, lift); err != nil {
		return err
	}
	d.setEntity(routeID, netID, pins)
	return nil
}

// EntityJob describes one routable entity for batched routing.
type EntityJob struct {
	RouteID int
	NetID   int
	Pins    []TaggedPin
	Lift    int
}

// RouteEntities routes the jobs through the router's batched wave-parallel
// API (route.Router.RouteJobs), with results identical to calling
// RouteEntity for each job in order. On success every job's terminals are
// recorded; on failure a *route.JobError surfaces so callers can name the
// failing entity (its Index addresses the jobs slice).
func (d *Design) RouteEntities(jobs []EntityJob) error {
	// All jobs' router pins are carved from one reusable arena instead of
	// one slice per job. The router copies any pins it keeps (RoutedNet
	// owns its own Pins), so reusing the arena across calls is safe.
	total := 0
	for i := range jobs {
		total += len(jobs[i].Pins)
	}
	if cap(d.pinArena) < total {
		d.pinArena = make([]route.Pin, 0, total)
	}
	arena := d.pinArena[:0]
	rjobs := make([]route.Job, len(jobs))
	for i := range jobs {
		j := &jobs[i]
		off := len(arena)
		for k := range j.Pins {
			arena = append(arena, j.Pins[k].Pin)
		}
		rjobs[i] = route.Job{ID: j.RouteID, Pins: arena[off:len(arena):len(arena)], MinLayer: j.Lift}
	}
	d.pinArena = arena
	if err := d.Router.RouteJobs(rjobs); err != nil {
		return err
	}
	for i := range jobs {
		d.setEntity(jobs[i].RouteID, jobs[i].NetID, jobs[i].Pins)
	}
	return nil
}

// RouteAll routes every netlist net (no synthetic cells); lifts maps
// net IDs to minimum layers (missing = unconstrained). Nets are routed in
// increasing-HPWL order, short first, like a conventional global router;
// spatially disjoint nets route concurrently (route.Options.Parallelism)
// with byte-identical results. route.Options.Strategy selects flat or
// hierarchical corridor-confined search; HierStats reports what the
// coarse pass did.
func (d *Design) RouteAll(lifts map[int]int) error {
	type job struct {
		id   int
		hpwl int
	}
	jobs := make([]job, 0, d.Netlist.NumNets())
	for _, n := range d.Netlist.Nets {
		if n.FanoutCount() == 0 {
			continue
		}
		jobs = append(jobs, job{n.ID, geom.HPWL(d.Placement.NetPoints(d.Netlist, n.ID))})
	}
	// insertion sort by hpwl then id for determinism
	for i := 1; i < len(jobs); i++ {
		j := jobs[i]
		k := i - 1
		for k >= 0 && (jobs[k].hpwl > j.hpwl || (jobs[k].hpwl == j.hpwl && jobs[k].id > j.id)) {
			jobs[k+1] = jobs[k]
			k--
		}
		jobs[k+1] = j
	}
	// Tag all nets' terminals into one arena: one allocation for the whole
	// design instead of one per net.
	total := 0
	for _, j := range jobs {
		total += 1 + d.Netlist.Nets[j.id].FanoutCount()
	}
	arena := make([]TaggedPin, 0, total)
	ejobs := make([]EntityJob, len(jobs))
	for i, j := range jobs {
		lift := DefaultLift(j.hpwl / d.Grid.GCell)
		if l, ok := lifts[j.id]; ok {
			lift = l
		}
		off := len(arena)
		arena = d.appendNetPins(arena, j.id)
		ejobs[i] = EntityJob{RouteID: j.id, NetID: j.id, Pins: arena[off:len(arena):len(arena)], Lift: lift}
	}
	if err := d.RouteEntities(ejobs); err != nil {
		var je *route.JobError
		if errors.As(err, &je) {
			return fmt.Errorf("layout: routing net %q: %v", d.Netlist.Nets[ejobs[je.Index].NetID].Name, je.Err)
		}
		return err
	}
	d.Router.NegotiateReroute(3)
	return nil
}

// HierStats reports the router's hierarchical tile-plan counters
// (corridor-planned nets, flat fallbacks, batch escapes, corridor-confined
// negotiation re-routes). All-zero under the flat strategy.
func (d *Design) HierStats() route.HierStats { return d.Router.Hier() }

// DefaultLift is the router's layer promotion for unconstrained nets.
// Layer assignment here is purely congestion-driven (the per-layer cost
// bias plus capacity pressure decide who climbs), matching the paper's
// Fig. 5 "Original" profile where the majority of wiring sits in the lower
// metal layers; only extremely long nets are promoted outright.
func DefaultLift(hpwlGCells int) int {
	if hpwlGCells >= 60 {
		return 4
	}
	return 1
}

// AddExtra registers an auxiliary (correction/lifting) cell and returns its
// ID. Placement legality among extras is the caller's concern (see
// LegalizeExtras).
func (d *Design) AddExtra(m *cell.Master, loc geom.Point) int {
	id := len(d.Extras)
	d.Extras = append(d.Extras, Extra{ID: id, Master: m, Loc: loc})
	return id
}

// LegalizeExtras shifts extra cells so that no two overlap (they may
// overlap standard cells by construction — their pins are in the BEOL).
// This mirrors the paper's custom legalization scripts. The algorithm is a
// greedy row-scan: extras are binned by row, sorted by x, and pushed right
// (wrapping to the row above when the row overflows).
func (d *Design) LegalizeExtras() {
	rows := map[int][]int{}
	rowH := cell.RowHeight
	for i := range d.Extras {
		y := d.Extras[i].Loc.Y / rowH * rowH
		y = geom.Clamp(y, d.Placement.Die.Lo.Y, d.Placement.Die.Hi.Y-rowH)
		d.Extras[i].Loc.Y = y
		rows[y] = append(rows[y], i)
	}
	for y := d.Placement.Die.Lo.Y; y < d.Placement.Die.Hi.Y; y += rowH {
		ids := rows[y]
		// sort by x
		for i := 1; i < len(ids); i++ {
			j := ids[i]
			k := i - 1
			for k >= 0 && d.Extras[ids[k]].Loc.X > d.Extras[j].Loc.X {
				ids[k+1] = ids[k]
				k--
			}
			ids[k+1] = j
		}
		cursor := d.Placement.Die.Lo.X
		for _, id := range ids {
			e := &d.Extras[id]
			if e.Loc.X < cursor {
				e.Loc.X = cursor
			}
			if e.Loc.X+e.Master.WidthNM > d.Placement.Die.Hi.X {
				// Wrap to next row (toward the top; clamped).
				ny := geom.Clamp(e.Loc.Y+rowH, d.Placement.Die.Lo.Y, d.Placement.Die.Hi.Y-rowH)
				e.Loc.Y = ny
				e.Loc.X = d.Placement.Die.Lo.X
				rows[ny] = append(rows[ny], id)
				continue
			}
			cursor = e.Loc.X + e.Master.WidthNM
		}
	}
}

// CheckExtrasLegal verifies no two extras overlap.
func (d *Design) CheckExtrasLegal() error {
	for i := range d.Extras {
		ri := geom.NewRect(d.Extras[i].Loc, geom.Point{
			X: d.Extras[i].Loc.X + d.Extras[i].Master.WidthNM,
			Y: d.Extras[i].Loc.Y + cell.RowHeight,
		})
		for j := i + 1; j < len(d.Extras); j++ {
			rj := geom.NewRect(d.Extras[j].Loc, geom.Point{
				X: d.Extras[j].Loc.X + d.Extras[j].Master.WidthNM,
				Y: d.Extras[j].Loc.Y + cell.RowHeight,
			})
			if ri.Overlaps(rj) {
				return fmt.Errorf("layout: extras %d and %d overlap", i, j)
			}
		}
	}
	return nil
}
