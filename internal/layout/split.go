package layout

import (
	"fmt"
	"sort"

	"splitmfg/internal/geom"
	"splitmfg/internal/route"
)

// Direction of a dangling wire at a vpin: the compass direction the FEOL
// metal segment points toward as it arrives at the via location. Attacks
// use it to bias candidate selection ("the partner lies that way").
type Direction int

// Directions.
const (
	DirNone Direction = iota
	DirNorth
	DirSouth
	DirEast
	DirWest
)

func (d Direction) String() string {
	switch d {
	case DirNorth:
		return "N"
	case DirSouth:
		return "S"
	case DirEast:
		return "E"
	case DirWest:
		return "W"
	default:
		return "-"
	}
}

// VPin is a virtual pin: the via location where a routed net crosses the
// split boundary from the topmost FEOL layer into the BEOL.
type VPin struct {
	ID      int
	RouteID int
	Node    route.Node // lower (FEOL-side) node, Z == split layer
	Pt      geom.Point // die coordinates of the gcell center
	Frag    int        // index into SplitView.Frags
	Dir     Direction  // dangling-wire direction
}

// Fragment is one connected FEOL piece of a routed net after splitting.
type Fragment struct {
	ID      int
	RouteID int
	Nodes   []route.Node // FEOL nodes of this component
	VPins   []int        // vpin IDs attached to this fragment
	Pins    []TaggedPin  // design terminals contained in this fragment
}

// HasDriver reports whether the fragment contains the net's source terminal
// (a cell output or a PI pad).
func (f *Fragment) HasDriver() bool {
	for _, p := range f.Pins {
		if p.Role == RoleDriver || p.Role == RolePI {
			return true
		}
	}
	return false
}

// SinkPins returns the sink-side terminals in the fragment.
func (f *Fragment) SinkPins() []TaggedPin {
	var out []TaggedPin
	for _, p := range f.Pins {
		if p.Role == RoleSink || p.Role == RolePO {
			out = append(out, p)
		}
	}
	return out
}

// SplitView is what an FEOL-fab adversary sees after splitting: fragments
// of nets in the lower layers and open via positions (vpins) pointing up.
type SplitView struct {
	Layer   int // split after this layer: M1..Layer are FEOL
	VPins   []VPin
	Frags   []Fragment
	ByRoute map[int][]int // route ID -> fragment IDs
}

// Split computes the FEOL view after the given layer. Every routed entity
// is decomposed into connected FEOL components; vias crossing the boundary
// become vpins with dangling-wire directions.
func (d *Design) Split(layer int) (*SplitView, error) {
	if layer < 1 || layer >= d.Grid.Layers {
		return nil, fmt.Errorf("layout: split layer M%d out of range (1..%d)", layer, d.Grid.Layers-1)
	}
	sv := &SplitView{Layer: layer, ByRoute: map[int][]int{}}
	nets := d.Router.Nets()
	ids := make([]int, 0, len(nets))
	for id := range nets {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rn := nets[id]
		// FEOL adjacency.
		adj := map[route.Node][]route.Node{}
		var boundary []route.Edge
		touch := func(n route.Node) {
			if _, ok := adj[n]; !ok {
				adj[n] = nil
			}
		}
		for _, e := range rn.Edges {
			if e.A.Z <= layer && e.B.Z <= layer {
				adj[e.A] = append(adj[e.A], e.B)
				adj[e.B] = append(adj[e.B], e.A)
				continue
			}
			lo, hi := e.A, e.B
			if hi.Z < lo.Z {
				lo, hi = hi, lo
			}
			if lo.Z == layer && hi.Z == layer+1 {
				boundary = append(boundary, route.Edge{A: lo, B: hi})
				touch(lo)
			}
		}
		// FEOL pins are fragment members even when isolated (stub of zero
		// FEOL wirelength, e.g. a pin with a stacked via directly up).
		for _, p := range d.Pins[id] {
			if p.Layer <= layer {
				touch(d.Grid.NodeOf(p.Pt, p.Layer))
			}
		}
		// Connected components over FEOL nodes.
		comp := map[route.Node]int{}
		var order []route.Node
		for n := range adj {
			order = append(order, n)
		}
		sort.Slice(order, func(i, j int) bool { return nodeLess(order[i], order[j]) })
		for _, n := range order {
			if _, seen := comp[n]; seen {
				continue
			}
			fid := len(sv.Frags)
			frag := Fragment{ID: fid, RouteID: id}
			stack := []route.Node{n}
			comp[n] = fid
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				frag.Nodes = append(frag.Nodes, cur)
				for _, m := range adj[cur] {
					if _, seen := comp[m]; !seen {
						comp[m] = fid
						stack = append(stack, m)
					}
				}
			}
			sv.Frags = append(sv.Frags, frag)
			sv.ByRoute[id] = append(sv.ByRoute[id], fid)
		}
		// Attach design pins to their fragments.
		for _, p := range d.Pins[id] {
			if p.Layer <= layer {
				if fid, ok := comp[d.Grid.NodeOf(p.Pt, p.Layer)]; ok {
					sv.Frags[fid].Pins = append(sv.Frags[fid].Pins, p)
				}
			}
		}
		// VPins with dangling directions.
		for _, e := range boundary {
			fid, ok := comp[e.A]
			if !ok {
				continue // via stack floating above BEOL-only wiring
			}
			vp := VPin{
				ID:      len(sv.VPins),
				RouteID: id,
				Node:    e.A,
				Pt:      d.Grid.CenterOf(e.A),
				Frag:    fid,
				Dir:     danglingDir(adj, e.A),
			}
			sv.VPins = append(sv.VPins, vp)
			sv.Frags[fid].VPins = append(sv.Frags[fid].VPins, vp.ID)
		}
	}
	return sv, nil
}

func nodeLess(a, b route.Node) bool {
	if a.Z != b.Z {
		return a.Z < b.Z
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}

// danglingDir derives the direction the last FEOL wire segment travels as
// it arrives at the vpin node: a segment from the west points East, etc.
// Vias directly stacked (no top-layer segment) yield DirNone.
func danglingDir(adj map[route.Node][]route.Node, at route.Node) Direction {
	for _, m := range adj[at] {
		if m.Z != at.Z {
			continue // via below, not a wire
		}
		switch {
		case m.X < at.X:
			return DirEast
		case m.X > at.X:
			return DirWest
		case m.Y < at.Y:
			return DirNorth
		case m.Y > at.Y:
			return DirSouth
		}
	}
	return DirNone
}

// DriverFrags returns the fragments containing source terminals.
func (sv *SplitView) DriverFrags() []int {
	var out []int
	for i := range sv.Frags {
		if sv.Frags[i].HasDriver() {
			out = append(out, i)
		}
	}
	return out
}

// SinkFrags returns fragments that contain at least one sink terminal and
// no driver (pure sink-side fragments).
func (sv *SplitView) SinkFrags() []int {
	var out []int
	for i := range sv.Frags {
		f := &sv.Frags[i]
		if !f.HasDriver() && len(f.SinkPins()) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// FragCenter returns the centroid of a fragment's vpins (falling back to
// node centroid), which attacks use as the fragment's location.
func (sv *SplitView) FragCenter(d *Design, fid int) geom.Point {
	f := &sv.Frags[fid]
	if len(f.VPins) > 0 {
		var x, y int
		for _, vid := range f.VPins {
			x += sv.VPins[vid].Pt.X
			y += sv.VPins[vid].Pt.Y
		}
		return geom.Point{X: x / len(f.VPins), Y: y / len(f.VPins)}
	}
	var x, y int
	for _, n := range f.Nodes {
		p := d.Grid.CenterOf(n)
		x += p.X
		y += p.Y
	}
	if len(f.Nodes) == 0 {
		return geom.Point{}
	}
	return geom.Point{X: x / len(f.Nodes), Y: y / len(f.Nodes)}
}
