package layout

import (
	"fmt"
	"sort"

	"splitmfg/internal/geom"
	"splitmfg/internal/route"
)

// Direction of a dangling wire at a vpin: the compass direction the FEOL
// metal segment points toward as it arrives at the via location. Attacks
// use it to bias candidate selection ("the partner lies that way").
type Direction int

// Directions.
const (
	DirNone Direction = iota
	DirNorth
	DirSouth
	DirEast
	DirWest
)

func (d Direction) String() string {
	switch d {
	case DirNorth:
		return "N"
	case DirSouth:
		return "S"
	case DirEast:
		return "E"
	case DirWest:
		return "W"
	default:
		return "-"
	}
}

// VPin is a virtual pin: the via location where a routed net crosses the
// split boundary from the topmost FEOL layer into the BEOL.
type VPin struct {
	ID      int
	RouteID int
	Node    route.Node // lower (FEOL-side) node, Z == split layer
	Pt      geom.Point // die coordinates of the gcell center
	Frag    int        // index into SplitView.Frags
	Dir     Direction  // dangling-wire direction
}

// Fragment is one connected FEOL piece of a routed net after splitting.
type Fragment struct {
	ID      int
	RouteID int
	Nodes   []route.Node // FEOL nodes of this component
	VPins   []int        // vpin IDs attached to this fragment
	Pins    []TaggedPin  // design terminals contained in this fragment
}

// HasDriver reports whether the fragment contains the net's source terminal
// (a cell output or a PI pad).
func (f *Fragment) HasDriver() bool {
	for _, p := range f.Pins {
		if p.Role == RoleDriver || p.Role == RolePI {
			return true
		}
	}
	return false
}

// SinkPins returns the sink-side terminals in the fragment.
func (f *Fragment) SinkPins() []TaggedPin {
	var out []TaggedPin
	for _, p := range f.Pins {
		if p.Role == RoleSink || p.Role == RolePO {
			out = append(out, p)
		}
	}
	return out
}

// SplitView is what an FEOL-fab adversary sees after splitting: fragments
// of nets in the lower layers and open via positions (vpins) pointing up.
type SplitView struct {
	Layer   int // split after this layer: M1..Layer are FEOL
	VPins   []VPin
	Frags   []Fragment
	ByRoute map[int][]int // route ID -> fragment IDs
}

// Split computes the FEOL view after the given layer. Every routed entity
// is decomposed into connected FEOL components; vias crossing the boundary
// become vpins with dangling-wire directions.
//
// Per-net bookkeeping (node set, adjacency, component labels) lives in
// scratch buffers reused across the nets of one call — a net's FEOL piece
// is small, but a full design has hundreds of thousands of them, and the
// previous per-net maps made Split the dominant allocator of the whole
// security evaluation. Only the returned fragments themselves allocate.
func (d *Design) Split(layer int) (*SplitView, error) {
	if layer < 1 || layer >= d.Grid.Layers {
		return nil, fmt.Errorf("layout: split layer M%d out of range (1..%d)", layer, d.Grid.Layers-1)
	}
	sv := &SplitView{Layer: layer, ByRoute: map[int][]int{}}
	// Per-net scratch, reused across nets. Nodes are deduplicated by sort
	// order and addressed by their index; adjacency is CSR over those
	// indices, filled in edge-encounter order (the order the old per-node
	// lists grew in, which danglingDir's first-match depends on).
	var (
		nodes    []route.Node
		boundary []route.Edge
		edgeA    []int32 // FEOL edge endpoints, as node indices
		edgeB    []int32
		degree   []int32
		adjStart []int32 // CSR offsets, len nodes+1
		adjList  []int32
		comp     []int32 // node index -> global fragment ID
		stack    []int32
	)
	// find returns the index of n in the current sorted node list.
	find := func(n route.Node) int {
		lo, hi := 0, len(nodes)
		for lo < hi {
			mid := (lo + hi) / 2
			if nodeLess(nodes[mid], n) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	for _, id := range d.Router.SortedNetIDs() {
		rn := d.Router.Net(id)
		// Collect the net's FEOL nodes: wire/via endpoints below the
		// boundary, the FEOL side of each boundary via, and FEOL pins
		// (fragment members even when isolated, e.g. a pin with a stacked
		// via directly up).
		nodes, boundary = nodes[:0], boundary[:0]
		for _, e := range rn.Edges {
			if e.A.Z <= layer && e.B.Z <= layer {
				nodes = append(nodes, e.A, e.B)
				continue
			}
			lo, hi := e.A, e.B
			if hi.Z < lo.Z {
				lo, hi = hi, lo
			}
			if lo.Z == layer && hi.Z == layer+1 {
				boundary = append(boundary, route.Edge{A: lo, B: hi})
				nodes = append(nodes, lo)
			}
		}
		for _, p := range d.Pins[id] {
			if p.Layer <= layer {
				nodes = append(nodes, d.Grid.NodeOf(p.Pt, p.Layer))
			}
		}
		sort.Slice(nodes, func(i, j int) bool { return nodeLess(nodes[i], nodes[j]) })
		nodes = dedupNodes(nodes)
		nn := len(nodes)
		// CSR adjacency over node indices.
		degree = resetInt32(degree, nn)
		edgeA, edgeB = edgeA[:0], edgeB[:0]
		for _, e := range rn.Edges {
			if e.A.Z <= layer && e.B.Z <= layer {
				a, b := int32(find(e.A)), int32(find(e.B))
				edgeA = append(edgeA, a)
				edgeB = append(edgeB, b)
				degree[a]++
				degree[b]++
			}
		}
		adjStart = resetInt32(adjStart, nn+1)
		for i := 0; i < nn; i++ {
			adjStart[i+1] = adjStart[i] + degree[i]
		}
		adjList = resetInt32(adjList, int(adjStart[nn]))
		for i := range degree {
			degree[i] = 0 // reuse as per-node fill cursor
		}
		for k := range edgeA {
			a, b := edgeA[k], edgeB[k]
			adjList[adjStart[a]+degree[a]] = b
			degree[a]++
			adjList[adjStart[b]+degree[b]] = a
			degree[b]++
		}
		// Connected components, discovered in sorted node order.
		comp = resetInt32(comp, nn)
		for i := range comp {
			comp[i] = -1
		}
		for i := 0; i < nn; i++ {
			if comp[i] >= 0 {
				continue
			}
			fid := len(sv.Frags)
			frag := Fragment{ID: fid, RouteID: id}
			stack = append(stack[:0], int32(i))
			comp[i] = int32(fid)
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				frag.Nodes = append(frag.Nodes, nodes[cur])
				for _, m := range adjList[adjStart[cur]:adjStart[cur+1]] {
					if comp[m] < 0 {
						comp[m] = int32(fid)
						stack = append(stack, m)
					}
				}
			}
			sv.Frags = append(sv.Frags, frag)
			sv.ByRoute[id] = append(sv.ByRoute[id], fid)
		}
		// Attach design pins to their fragments.
		for _, p := range d.Pins[id] {
			if p.Layer <= layer {
				n := d.Grid.NodeOf(p.Pt, p.Layer)
				if i := find(n); i < nn && nodes[i] == n {
					fid := comp[i]
					sv.Frags[fid].Pins = append(sv.Frags[fid].Pins, p)
				}
			}
		}
		// VPins with dangling directions.
		for _, e := range boundary {
			i := find(e.A)
			if i >= nn || nodes[i] != e.A {
				continue // via stack floating above BEOL-only wiring
			}
			fid := int(comp[i])
			vp := VPin{
				ID:      len(sv.VPins),
				RouteID: id,
				Node:    e.A,
				Pt:      d.Grid.CenterOf(e.A),
				Frag:    fid,
				Dir:     danglingDir(nodes, adjList[adjStart[i]:adjStart[i+1]], e.A),
			}
			sv.VPins = append(sv.VPins, vp)
			sv.Frags[fid].VPins = append(sv.Frags[fid].VPins, vp.ID)
		}
	}
	return sv, nil
}

// dedupNodes removes adjacent duplicates from a sorted node slice in place.
func dedupNodes(nodes []route.Node) []route.Node {
	out := nodes[:0]
	for i, n := range nodes {
		if i == 0 || n != nodes[i-1] {
			out = append(out, n)
		}
	}
	return out
}

// resetInt32 returns a zeroed int32 slice of length n, reusing buf's
// backing array when it is large enough.
func resetInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func nodeLess(a, b route.Node) bool {
	if a.Z != b.Z {
		return a.Z < b.Z
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}

// danglingDir derives the direction the last FEOL wire segment travels as
// it arrives at the vpin node: a segment from the west points East, etc.
// Vias directly stacked (no top-layer segment) yield DirNone. neighbors
// holds the vpin node's adjacency as indices into nodes, in edge-encounter
// order (first match wins, as it always has).
func danglingDir(nodes []route.Node, neighbors []int32, at route.Node) Direction {
	for _, mi := range neighbors {
		m := nodes[mi]
		if m.Z != at.Z {
			continue // via below, not a wire
		}
		switch {
		case m.X < at.X:
			return DirEast
		case m.X > at.X:
			return DirWest
		case m.Y < at.Y:
			return DirNorth
		case m.Y > at.Y:
			return DirSouth
		}
	}
	return DirNone
}

// DriverFrags returns the fragments containing source terminals.
func (sv *SplitView) DriverFrags() []int {
	var out []int
	for i := range sv.Frags {
		if sv.Frags[i].HasDriver() {
			out = append(out, i)
		}
	}
	return out
}

// SinkFrags returns fragments that contain at least one sink terminal and
// no driver (pure sink-side fragments).
func (sv *SplitView) SinkFrags() []int {
	var out []int
	for i := range sv.Frags {
		f := &sv.Frags[i]
		if !f.HasDriver() && len(f.SinkPins()) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// FragCenter returns the centroid of a fragment's vpins (falling back to
// node centroid), which attacks use as the fragment's location.
func (sv *SplitView) FragCenter(d *Design, fid int) geom.Point {
	f := &sv.Frags[fid]
	if len(f.VPins) > 0 {
		var x, y int
		for _, vid := range f.VPins {
			x += sv.VPins[vid].Pt.X
			y += sv.VPins[vid].Pt.Y
		}
		return geom.Point{X: x / len(f.VPins), Y: y / len(f.VPins)}
	}
	var x, y int
	for _, n := range f.Nodes {
		p := d.Grid.CenterOf(n)
		x += p.X
		y += p.Y
	}
	if len(f.Nodes) == 0 {
		return geom.Point{}
	}
	return geom.Point{X: x / len(f.Nodes), Y: y / len(f.Nodes)}
}
