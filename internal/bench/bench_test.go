package bench

import (
	"math/rand"
	"testing"

	"splitmfg/internal/netlist"
	"splitmfg/internal/sim"
)

func TestISCASNames(t *testing.T) {
	names := ISCASNames()
	if len(names) != 9 {
		t.Fatalf("got %d names", len(names))
	}
	if names[0] != "c432" || names[8] != "c7552" {
		t.Fatalf("order wrong: %v", names)
	}
}

func TestISCASSizes(t *testing.T) {
	want := map[string][3]int{ // PI, PO(min), gates
		"c432":  {36, 7, 160},
		"c880":  {60, 26, 383},
		"c2670": {233, 140, 1193},
		"c7552": {207, 108, 3512},
	}
	for name, w := range want {
		nl, err := ISCAS85(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if nl.NumPIs() != w[0] {
			t.Errorf("%s: PIs = %d, want %d", name, nl.NumPIs(), w[0])
		}
		if nl.NumPOs() < w[1] {
			t.Errorf("%s: POs = %d, want >= %d", name, nl.NumPOs(), w[1])
		}
		if nl.NumGates() != w[2] {
			t.Errorf("%s: gates = %d, want %d", name, nl.NumGates(), w[2])
		}
		if nl.HasCombLoop() {
			t.Errorf("%s: has loop", name)
		}
	}
}

func TestISCASDeterministic(t *testing.T) {
	a, err := ISCAS85("c880")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ISCAS85("c880")
	if err != nil {
		t.Fatal(err)
	}
	if !a.SameStructure(b) {
		t.Fatal("generator not deterministic")
	}
}

func TestUnknownNames(t *testing.T) {
	if _, err := ISCAS85("c999"); err == nil {
		t.Error("expected error for unknown ISCAS name")
	}
	if _, err := Superblue("superblue99", 10); err == nil {
		t.Error("expected error for unknown superblue name")
	}
	if _, err := Superblue("superblue1", 0); err == nil {
		t.Error("expected error for scale 0")
	}
	if _, err := SuperblueUtil("nope"); err == nil {
		t.Error("expected error for unknown util query")
	}
}

func TestSuperblueScaling(t *testing.T) {
	nl, err := Superblue("superblue18", 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := nl.ComputeStats()
	// 670323 nets / 200 ≈ 3350 gates; allow generator slack.
	if stats.Gates < 3000 || stats.Gates > 3700 {
		t.Errorf("gates = %d, want ≈3350", stats.Gates)
	}
	if stats.DFFs == 0 {
		t.Error("superblue stand-in should contain flip-flops")
	}
	if nl.HasCombLoop() {
		t.Error("loop in generated design")
	}
	u, err := SuperblueUtil("superblue18")
	if err != nil || u != 67 {
		t.Errorf("util = %d, %v", u, err)
	}
}

func TestSuperblueAllNamesSmall(t *testing.T) {
	for _, name := range SuperblueNames() {
		nl, err := Superblue(name, 500)
		if err != nil {
			t.Fatal(err)
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// No dangling nets: every net has a sink or feeds a PO.
		for _, n := range nl.Nets {
			if n.FanoutCount() == 0 {
				t.Fatalf("%s: net %q dangles", name, n.Name)
			}
		}
	}
}

func TestMultiplierCorrectness(t *testing.T) {
	n := 4
	nl := Multiplier("mul4", n)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	pats, words, err := sim.ExhaustivePatterns(2 * n)
	if err != nil {
		t.Fatal(err)
	}
	val, err := s.Eval(pats, words)
	if err != nil {
		t.Fatal(err)
	}
	po := s.POWords(val)
	for p := 0; p < 1<<(2*n); p++ {
		var av, bv uint64
		for i := 0; i < n; i++ {
			av |= (pats[i][p/64] >> uint(p%64) & 1) << uint(i)
		}
		for i := 0; i < n; i++ {
			bv |= (pats[n+i][p/64] >> uint(p%64) & 1) << uint(i)
		}
		want := av * bv
		var got uint64
		for i := 0; i < 2*n; i++ {
			got |= (po[i][p/64] >> uint(p%64) & 1) << uint(i)
		}
		if got != want {
			t.Fatalf("%d * %d = %d, got %d", av, bv, want, got)
		}
	}
}

func TestC6288IsMultiplier(t *testing.T) {
	nl, err := ISCAS85("c6288")
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumPIs() != 32 {
		t.Fatalf("PIs = %d", nl.NumPIs())
	}
	// Spot-check 3 random products on the 16x16 multiplier.
	s, err := sim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	pats := make([][]uint64, 32)
	type cse struct{ a, b uint64 }
	cases := []cse{{3, 5}, {65535, 65535}, {uint64(rng.Intn(65536)), uint64(rng.Intn(65536))}}
	for i := range pats {
		pats[i] = make([]uint64, 1)
	}
	for ci, c := range cases {
		for i := 0; i < 16; i++ {
			if c.a>>uint(i)&1 == 1 {
				pats[i][0] |= 1 << uint(ci)
			}
			if c.b>>uint(i)&1 == 1 {
				pats[16+i][0] |= 1 << uint(ci)
			}
		}
	}
	val, err := s.Eval(pats, 1)
	if err != nil {
		t.Fatal(err)
	}
	po := s.POWords(val)
	for ci, c := range cases {
		var got uint64
		for i := 0; i < 32; i++ {
			got |= (po[i][0] >> uint(ci) & 1) << uint(i)
		}
		if got != c.a*c.b {
			t.Fatalf("%d*%d: got %d want %d", c.a, c.b, got, c.a*c.b)
		}
	}
}

func TestGenerateRespectsSpec(t *testing.T) {
	nl, err := Generate(Spec{Name: "t", PIs: 10, POs: 5, Gates: 100, Seed: 42, Locality: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumPIs() != 10 || nl.NumGates() != 100 || nl.NumPOs() < 5 {
		t.Fatalf("spec violated: %v", nl.ComputeStats())
	}
	if _, err := Generate(Spec{Name: "bad"}); err == nil {
		t.Fatal("expected error for empty spec")
	}
}

func TestGenerateLocalityAffectsStructure(t *testing.T) {
	local, _ := Generate(Spec{Name: "l", PIs: 20, POs: 5, Gates: 2000, Seed: 7, Locality: 0.95, Window: 40})
	global, _ := Generate(Spec{Name: "g", PIs: 20, POs: 5, Gates: 2000, Seed: 7, Locality: 0.0})
	// Local designs connect to recent gates: mean |driver-sink| index gap
	// must be far smaller than the global variant's.
	gap := func(nl *netlist.Netlist) float64 {
		total, cnt := 0.0, 0
		for _, g := range nl.Gates {
			for _, netID := range g.Fanin {
				if d := nl.Nets[netID].Driver; d >= 0 {
					diff := g.ID - d
					if diff < 0 {
						diff = -diff
					}
					total += float64(diff)
					cnt++
				}
			}
		}
		return total / float64(cnt)
	}
	gl, gg := gap(local), gap(global)
	if gl*3 > gg {
		t.Fatalf("locality had no effect: local=%.1f global=%.1f", gl, gg)
	}
}

func TestGeneratedDepthReasonable(t *testing.T) {
	nl, err := ISCAS85("c3540")
	if err != nil {
		t.Fatal(err)
	}
	d := nl.ComputeStats().Depth
	if d < 8 {
		t.Fatalf("depth %d too shallow for a c3540-class design", d)
	}
}
