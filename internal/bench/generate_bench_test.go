package bench

import "testing"

// BenchmarkGenerateSuperblue18 measures synthesizing the superblue18
// stand-in at the default CLI scale divisor (300, ~2.5k gates). It is the
// "netlist build" datapoint behind DESIGN.md's memory-layout numbers.
func BenchmarkGenerateSuperblue18(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Superblue("superblue18", 300); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetlistCloneSuperblue18 measures deep-copying the generated
// netlist — the operation the proximity attack performs once per run and
// the suite scheduler once per cache miss.
func BenchmarkNetlistCloneSuperblue18(b *testing.B) {
	nl, err := Superblue("superblue18", 300)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := nl.Clone(); c.NumGates() != nl.NumGates() {
			b.Fatal("clone size mismatch")
		}
	}
}
