// Package bench generates the evaluation workloads. The paper evaluates on
// seven ISCAS-85 circuits (attacked with the network-flow proximity attack)
// plus five industrial IBM superblue designs (attacked with crouting). The
// original netlists are not shippable here, so this package deterministically
// synthesizes stand-ins that preserve what the experiments consume:
//
//   - published primary-input/primary-output counts,
//   - published gate/net counts (superblue scaled by a configurable factor
//     so the suite runs on a laptop; scale 1 reproduces full size),
//   - realistic structure: layered logic with locality (Rent-style mostly
//     near fan-in selection), fan-out distribution with a long tail, and a
//     sequential fraction for the superblue designs.
//
// c6288 is special-cased as a real 16x16 carry-save array multiplier — the
// actual function of the original benchmark — rather than random logic.
package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"splitmfg/internal/netlist"
)

// Spec parameterizes the synthetic generator.
type Spec struct {
	Name     string
	PIs      int
	POs      int
	Gates    int
	Seed     int64
	DFFRatio float64 // fraction of gates that are flip-flops
	Locality float64 // 0..1; probability a fan-in is drawn from the recent window
	Window   int     // size of the locality window in gates; 0 = Gates/20
}

// iscasSpec carries the published interface/gate counts of the ISCAS-85
// suite (gate counts per the standard netlist distributions).
type iscasSpec struct {
	pis, pos, gates int
}

var iscas85 = map[string]iscasSpec{
	"c432":  {36, 7, 160},
	"c880":  {60, 26, 383},
	"c1355": {41, 32, 546},
	"c1908": {33, 25, 880},
	"c2670": {233, 140, 1193},
	"c3540": {50, 22, 1669},
	"c5315": {178, 123, 2307},
	"c6288": {32, 32, 2406},
	"c7552": {207, 108, 3512},
}

// superblueSpec carries the published counts from Table 2 of the paper.
type superblueSpec struct {
	nets, ins, outs int
	util            int // target placement utilization (percent)
}

var superblue = map[string]superblueSpec{
	"superblue1":  {873712, 8320, 13025, 69},
	"superblue5":  {754907, 11661, 9617, 77},
	"superblue10": {1147401, 10454, 23663, 75},
	"superblue12": {1520046, 1936, 4629, 56},
	"superblue18": {670323, 3921, 7465, 67},
}

// ISCASNames returns the ISCAS-85 benchmark names in canonical order.
func ISCASNames() []string {
	names := make([]string, 0, len(iscas85))
	for n := range iscas85 {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return atoiSafe(names[i][1:]) < atoiSafe(names[j][1:])
	})
	return names
}

// SuperblueNames returns the superblue benchmark names in paper order.
func SuperblueNames() []string {
	return []string{"superblue1", "superblue5", "superblue10", "superblue12", "superblue18"}
}

// IsSuperblue reports whether the catalog name denotes an industrial
// superblue design (as opposed to an ISCAS-85 circuit).
func IsSuperblue(name string) bool {
	return strings.HasPrefix(name, "superblue")
}

// Load loads any catalog benchmark by name, dispatching between the
// ISCAS-85 and superblue generators. scale is the superblue scale divisor
// (>= 1); ISCAS designs ignore it.
func Load(name string, scale int) (*netlist.Netlist, error) {
	if IsSuperblue(name) {
		return Superblue(name, scale)
	}
	return ISCAS85(name)
}

// PublishedSize returns the published structural size of a catalog
// benchmark: the gate count for an ISCAS-85 circuit, the net count from
// Table 2 of the paper for a superblue design, plus the published primary
// input/output counts. The numbers describe the original benchmarks, not a
// scaled synthetic stand-in, so catalog listings can advertise them without
// generating any netlist.
func PublishedSize(name string) (cells, ins, outs int, err error) {
	if IsSuperblue(name) {
		s, ok := superblue[name]
		if !ok {
			return 0, 0, 0, fmt.Errorf("bench: unknown superblue design %q", name)
		}
		return s.nets, s.ins, s.outs, nil
	}
	s, ok := iscas85[name]
	if !ok {
		return 0, 0, 0, fmt.Errorf("bench: unknown ISCAS-85 benchmark %q", name)
	}
	return s.gates, s.pis, s.pos, nil
}

// SuperblueUtil returns the paper's placement utilization for the design.
func SuperblueUtil(name string) (int, error) {
	s, ok := superblue[name]
	if !ok {
		return 0, fmt.Errorf("bench: unknown superblue design %q", name)
	}
	return s.util, nil
}

func atoiSafe(s string) int {
	v := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		v = v*10 + int(c-'0')
	}
	return v
}

// ISCAS85 synthesizes the named ISCAS-85 stand-in. c6288 is generated as a
// true 16x16 array multiplier; the others as layered random logic with the
// published interface and gate counts.
func ISCAS85(name string) (*netlist.Netlist, error) {
	spec, ok := iscas85[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown ISCAS-85 benchmark %q", name)
	}
	if name == "c6288" {
		return Multiplier(name, 16), nil
	}
	return Generate(Spec{
		Name:     name,
		PIs:      spec.pis,
		POs:      spec.pos,
		Gates:    spec.gates,
		Seed:     seedFor(name),
		Locality: 0.93,
		Window:   16,
	})
}

// Superblue synthesizes the named superblue stand-in at 1/scale of the
// published size (scale >= 1; scale 1 is full size). The generated designs
// include a sequential fraction, as the industrial originals do.
func Superblue(name string, scale int) (*netlist.Netlist, error) {
	spec, ok := superblue[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown superblue design %q", name)
	}
	if scale < 1 {
		return nil, fmt.Errorf("bench: scale must be >= 1, got %d", scale)
	}
	pis := max(8, spec.ins/scale)
	pos := max(8, spec.outs/scale)
	gates := max(200, (spec.nets-spec.ins)/scale)
	return Generate(Spec{
		Name:     name,
		PIs:      pis,
		POs:      pos,
		Gates:    gates,
		Seed:     seedFor(name),
		DFFRatio: 0.12,
		Locality: 0.92, // industrial designs are strongly local (Rent)
	})
}

func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// chosen reports whether id already appears among the picked fanins.
func chosen(fanin []int, id int) bool {
	for _, f := range fanin {
		if f == id {
			return true
		}
	}
	return false
}

// Generate synthesizes a netlist per the Spec. The construction is strictly
// feed-forward (fan-ins are drawn from already-created nets), so the result
// is acyclic by construction; DFFs additionally receive a feedback-free D
// input but act as sources for downstream logic.
func Generate(s Spec) (*netlist.Netlist, error) {
	if s.PIs < 1 || s.Gates < 1 {
		return nil, fmt.Errorf("bench: spec needs at least 1 PI and 1 gate: %+v", s)
	}
	if s.POs < 1 {
		s.POs = 1
	}
	rng := rand.New(rand.NewSource(s.Seed))
	window := s.Window
	if window == 0 {
		window = s.Gates/20 + 8
	}
	nl := netlist.New(s.Name)
	// Instance names are "<prefix><index>"; building them with AppendInt
	// into one scratch buffer costs a single allocation per name where
	// fmt.Sprintf pays extra for boxing.
	var nameBuf []byte
	name := func(prefix string, i int) string {
		nameBuf = append(nameBuf[:0], prefix...)
		nameBuf = strconv.AppendInt(nameBuf, int64(i), 10)
		return string(nameBuf)
	}
	for i := 0; i < s.PIs; i++ {
		nl.AddPI(name("pi", i))
	}
	comb := []netlist.GateType{
		netlist.Nand, netlist.Nand, netlist.Nand, // NAND-rich like real ISCAS
		netlist.Nor, netlist.And, netlist.Or,
		netlist.Inv, netlist.Buf, netlist.Xor, netlist.Xnor,
	}
	pickNet := func(created int) int {
		// With probability Locality choose from the trailing window of
		// recently created nets; otherwise uniformly from all nets.
		n := nl.NumNets()
		if rng.Float64() < s.Locality && created > 0 {
			lo := n - window
			if lo < 0 {
				lo = 0
			}
			return lo + rng.Intn(n-lo)
		}
		return rng.Intn(n)
	}
	var faninBuf [8]int
	for i := 0; i < s.Gates; i++ {
		var gt netlist.GateType
		if s.DFFRatio > 0 && rng.Float64() < s.DFFRatio {
			gt = netlist.DFF
		} else {
			gt = comb[rng.Intn(len(comb))]
		}
		nin := gt.MinInputs()
		if gt.MaxInputs() > nin {
			// Bias toward 2-input gates like the real suites.
			extra := 0
			for extra < gt.MaxInputs()-nin && rng.Float64() < 0.25 {
				extra++
			}
			nin += extra
		}
		// Draw distinct fanins by scanning the few already-picked pins
		// (fan-in is at most 4); AddGate copies the shared buffer.
		fanin := faninBuf[:nin]
		for p := range fanin {
			id := pickNet(i)
			for tries := 0; chosen(fanin[:p], id) && tries < 8; tries++ {
				id = pickNet(i)
			}
			fanin[p] = id
		}
		nl.AddGate(name("g", i), gt, fanin...)
	}
	// Primary outputs: prefer nets with no sinks (so nothing dangles), then
	// fill up to the requested count with random late nets.
	var sinkless []int
	for _, n := range nl.Nets {
		if n.FanoutCount() == 0 {
			sinkless = append(sinkless, n.ID)
		}
	}
	rng.Shuffle(len(sinkless), func(i, j int) { sinkless[i], sinkless[j] = sinkless[j], sinkless[i] })
	used := map[int]bool{}
	po := 0
	for _, id := range sinkless {
		if po >= s.POs {
			// Remaining sinkless nets still need a reader: make them POs
			// too (real designs have no dangling nets). This may push the
			// PO count slightly above spec, which the experiments tolerate.
			nl.AddPO(name("po", po), id)
			po++
			continue
		}
		nl.AddPO(name("po", po), id)
		used[id] = true
		po++
	}
	for po < s.POs {
		id := nl.Nets[rng.Intn(nl.NumNets())].ID
		if used[id] || nl.Nets[id].IsPI() {
			// Avoid trivial or duplicate POs when possible.
			id = nl.Gates[rng.Intn(nl.NumGates())].Out
			if used[id] {
				continue
			}
		}
		used[id] = true
		nl.AddPO(name("po", po), id)
		po++
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("bench: generated netlist invalid: %v", err)
	}
	if nl.HasCombLoop() {
		return nil, fmt.Errorf("bench: generated netlist has a loop (bug)")
	}
	nl.Compact()
	return nl, nil
}

// Multiplier builds an n x n unsigned carry-save array multiplier from AND
// gates and full adders — the actual structure of ISCAS-85 c6288 (n=16).
func Multiplier(name string, n int) *netlist.Netlist {
	nl := netlist.New(name)
	a := make([]int, n)
	b := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = nl.AddPI(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = nl.AddPI(fmt.Sprintf("b%d", i))
	}
	// Partial products pp[i][j] = a[i] & b[j].
	pp := make([][]int, n)
	for i := range pp {
		pp[i] = make([]int, n)
		for j := range pp[i] {
			g := nl.AddGate(fmt.Sprintf("pp_%d_%d", i, j), netlist.And, a[i], b[j])
			pp[i][j] = nl.Gates[g].Out
		}
	}
	// halfAdder returns (sum, carry).
	ha := func(tag string, x, y int) (int, int) {
		s := nl.AddGate("ha_s_"+tag, netlist.Xor, x, y)
		c := nl.AddGate("ha_c_"+tag, netlist.And, x, y)
		return nl.Gates[s].Out, nl.Gates[c].Out
	}
	// fullAdder returns (sum, carry).
	fa := func(tag string, x, y, z int) (int, int) {
		s1 := nl.AddGate("fa_s1_"+tag, netlist.Xor, x, y)
		s := nl.AddGate("fa_s_"+tag, netlist.Xor, nl.Gates[s1].Out, z)
		c1 := nl.AddGate("fa_c1_"+tag, netlist.And, x, y)
		c2 := nl.AddGate("fa_c2_"+tag, netlist.And, nl.Gates[s1].Out, z)
		c := nl.AddGate("fa_c_"+tag, netlist.Or, nl.Gates[c1].Out, nl.Gates[c2].Out)
		return nl.Gates[s].Out, nl.Gates[c].Out
	}
	// Carry-save reduction, row by row.
	sum := make([]int, n)   // running sums per column offset within row
	carry := make([]int, n) // running carries
	for j := 0; j < n; j++ {
		sum[j] = pp[0][j]
		carry[j] = -1
	}
	outs := make([]int, 0, 2*n)
	outs = append(outs, sum[0]) // product bit 0
	for i := 1; i < n; i++ {
		newSum := make([]int, n)
		newCarry := make([]int, n)
		for j := 0; j < n; j++ {
			x := pp[i][j]
			var y int
			if j+1 < n {
				y = sum[j+1]
			} else {
				y = -1
			}
			z := carry[j]
			tag := fmt.Sprintf("%d_%d", i, j)
			switch {
			case y >= 0 && z >= 0:
				newSum[j], newCarry[j] = fa(tag, x, y, z)
			case y >= 0:
				newSum[j], newCarry[j] = ha(tag, x, y)
			case z >= 0:
				newSum[j], newCarry[j] = ha(tag, x, z)
			default:
				newSum[j], newCarry[j] = x, -1
			}
		}
		sum, carry = newSum, newCarry
		outs = append(outs, sum[0]) // product bit i
	}
	// Final ripple over remaining sum/carry columns.
	var c int = -1
	for j := 1; j < n; j++ {
		tag := fmt.Sprintf("f_%d", j)
		x := sum[j]
		y := carry[j-1]
		switch {
		case y >= 0 && c >= 0:
			x, c = fa(tag, x, y, c)
		case y >= 0:
			x, c = ha(tag, x, y)
		case c >= 0:
			x, c = ha(tag, x, c)
		}
		outs = append(outs, x)
	}
	if c >= 0 {
		outs = append(outs, c)
	} else if carry[n-1] >= 0 {
		outs = append(outs, carry[n-1])
	}
	for i, net := range outs {
		nl.AddPO(fmt.Sprintf("p%d", i), net)
	}
	// Give any net that still has no reader a PO so nothing dangles.
	for _, nn := range nl.Nets {
		if nn.FanoutCount() == 0 {
			nl.AddPO("po_x_"+nn.Name, nn.ID)
		}
	}
	nl.Compact()
	return nl
}
