package metrics

import (
	"math"
	"math/rand"
	"testing"

	"splitmfg/internal/bench"
	"splitmfg/internal/cell"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"
	"splitmfg/internal/place"
	"splitmfg/internal/route"
	"splitmfg/internal/sim"
)

func TestDistStats(t *testing.T) {
	s := ComputeDistStats([]int{1000, 2000, 3000})
	if s.N != 3 || s.Mean != 2 || s.Median != 2 {
		t.Fatalf("stats = %+v", s)
	}
	want := math.Sqrt(2.0 / 3.0)
	if math.Abs(s.Std-want) > 1e-9 {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
	// Even count median.
	s = ComputeDistStats([]int{1000, 2000, 3000, 4000})
	if s.Median != 2.5 {
		t.Fatalf("median = %v", s.Median)
	}
	if s := ComputeDistStats(nil); s.N != 0 || s.Mean != 0 {
		t.Fatal("empty stats nonzero")
	}
}

func buildSplit(t *testing.T, name string, splitLayer int) (*layout.Design, *layout.SplitView) {
	t.Helper()
	nl, err := bench.ISCAS85(name)
	if err != nil {
		t.Fatal(err)
	}
	lib := cell.NewNangate45Like()
	masters, err := lib.Bind(nl)
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(nl, masters, place.Options{UtilPercent: 70, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := layout.NewDesign(nl, masters, p, route.Options{})
	if err := d.RouteAll(nil); err != nil {
		t.Fatal(err)
	}
	sv, err := d.Split(splitLayer)
	if err != nil {
		t.Fatal(err)
	}
	return d, sv
}

func TestTrueAssignmentScoresPerfect(t *testing.T) {
	d, sv := buildSplit(t, "c432", 3)
	truth := TrueAssignment(d, sv, d.Netlist)
	res := CCR(d, sv, d.Netlist, truth)
	if res.Protected == 0 {
		t.Fatal("no protected sink fragments at M3 split")
	}
	// Every sink fragment whose true driver has a fragment must score.
	missing := 0
	for _, v := range truth {
		if v < 0 {
			missing++
		}
	}
	if res.Correct+missing != res.Protected {
		t.Fatalf("correct=%d missing=%d protected=%d", res.Correct, missing, res.Protected)
	}
	if res.CCR < 0.9 {
		t.Fatalf("truth assignment CCR = %v (driver fragments missing?)", res.CCR)
	}
}

func TestRecoverNetlistWithTruthIsEquivalent(t *testing.T) {
	d, sv := buildSplit(t, "c432", 3)
	truth := TrueAssignment(d, sv, d.Netlist)
	rec := RecoverNetlist(d, sv, truth)
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pats := sim.RandomPatterns(rng, d.Netlist.NumPIs(), 64)
	res, err := sim.Compare(d.Netlist, rec, pats, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiffBits != 0 {
		t.Fatalf("truth-recovered netlist differs: OER=%v HD=%v", res.OER, res.HD)
	}
}

func TestCCRWrongAssignmentScoresZeroish(t *testing.T) {
	d, sv := buildSplit(t, "c432", 3)
	truth := TrueAssignment(d, sv, d.Netlist)
	drivers := sv.DriverFrags()
	// Rotate assignments: each sink gets some wrong driver.
	wrong := Assignment{}
	for sink, drv := range truth {
		for i, df := range drivers {
			if df == drv {
				wrong[sink] = drivers[(i+1)%len(drivers)]
				break
			}
		}
		if _, ok := wrong[sink]; !ok {
			wrong[sink] = drivers[0]
		}
	}
	res := CCR(d, sv, d.Netlist, wrong)
	if res.CCR > 0.1 {
		t.Fatalf("rotated assignment CCR = %v, want ≈0", res.CCR)
	}
}

func TestCCREmptyAssignment(t *testing.T) {
	d, sv := buildSplit(t, "c432", 3)
	res := CCR(d, sv, d.Netlist, Assignment{})
	if res.Correct != 0 || res.CCR != 0 {
		t.Fatalf("empty assignment scored: %+v", res)
	}
}

func TestTrueDriverOf(t *testing.T) {
	nl := netlist.New("t")
	a := nl.AddPI("a")
	g1 := nl.AddGate("g1", netlist.Inv, a)
	g2 := nl.AddGate("g2", netlist.Buf, nl.Gates[g1].Out)
	nl.AddPO("y", nl.Gates[g2].Out)
	// Sink pin of g2 reads g1.
	drv, pi, ok := TrueDriverOf(nl, layout.TaggedPin{Role: layout.RoleSink, Ref: netlist.PinRef{Gate: g2, Pin: 0}})
	if !ok || drv != g1 || pi != -1 {
		t.Fatalf("got %d %d %v", drv, pi, ok)
	}
	// Sink pin of g1 reads PI 0.
	drv, pi, ok = TrueDriverOf(nl, layout.TaggedPin{Role: layout.RoleSink, Ref: netlist.PinRef{Gate: g1, Pin: 0}})
	if !ok || drv != -1 || pi != 0 {
		t.Fatalf("got %d %d %v", drv, pi, ok)
	}
	// PO 0 is driven by g2.
	drv, pi, ok = TrueDriverOf(nl, layout.TaggedPin{Role: layout.RolePO, PO: 0})
	if !ok || drv != g2 {
		t.Fatalf("got %d %d %v", drv, pi, ok)
	}
	// Driver pins are not sinks.
	if _, _, ok := TrueDriverOf(nl, layout.TaggedPin{Role: layout.RoleDriver}); ok {
		t.Fatal("driver pin treated as sink")
	}
}
