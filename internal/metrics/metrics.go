// Package metrics computes the paper's security metrics: the correct
// connection rate (CCR) of an attack's recovered assignment against the
// original netlist, distance statistics between truly connected gates
// (Table 1 / Fig. 4), and small statistical helpers shared by the
// benchmark harness.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"splitmfg/internal/geom"
	"splitmfg/internal/layout"
	"splitmfg/internal/netlist"
)

// DistStats summarizes a distance distribution in microns.
type DistStats struct {
	N                 int
	Mean, Median, Std float64
}

// ComputeDistStats converts nanometer distances to microns and summarizes.
func ComputeDistStats(nm []int) DistStats {
	var s DistStats
	s.N = len(nm)
	if s.N == 0 {
		return s
	}
	um := make([]float64, len(nm))
	var sum float64
	for i, d := range nm {
		um[i] = geom.Microns(d)
		sum += um[i]
	}
	s.Mean = sum / float64(s.N)
	sort.Float64s(um)
	if s.N%2 == 1 {
		s.Median = um[s.N/2]
	} else {
		s.Median = (um[s.N/2-1] + um[s.N/2]) / 2
	}
	var v float64
	for _, d := range um {
		v += float64((d - s.Mean) * (d - s.Mean)) // float64(): no FMA, see timing.LoadsFromDesign
	}
	s.Std = math.Sqrt(v / float64(s.N))
	return s
}

// String renders the stats like the paper's Table 1 rows.
func (s DistStats) String() string {
	return fmt.Sprintf("mean=%.2fµm median=%.2fµm std=%.2fµm (n=%d)", s.Mean, s.Median, s.Std, s.N)
}

// Assignment is an attack's output: for each pure-sink fragment ID, the
// driver fragment ID the attacker believes feeds it (-1 = unassigned).
type Assignment map[int]int

// TrueDriverOf returns, per the reference netlist, the gate/PI that should
// drive the given sink pin. ok is false for pins that are not sinks.
func TrueDriverOf(ref *netlist.Netlist, p layout.TaggedPin) (driverGate, pi int, ok bool) {
	switch p.Role {
	case layout.RoleSink:
		netID := ref.Gates[p.Ref.Gate].Fanin[p.Ref.Pin]
		n := ref.Nets[netID]
		if n.IsPI() {
			return -1, n.PI, true
		}
		return n.Driver, -1, true
	case layout.RolePO:
		n := ref.Nets[ref.PONets[p.PO]]
		if n.IsPI() {
			return -1, n.PI, true
		}
		return n.Driver, -1, true
	default:
		return -1, -1, false
	}
}

// fragDriver returns the source identity of a driver fragment.
func fragDriver(f *layout.Fragment) (gate, pi int, ok bool) {
	for _, p := range f.Pins {
		switch p.Role {
		case layout.RoleDriver:
			return p.Gate, -1, true
		case layout.RolePI:
			// PI pads record the PI index nowhere explicit; Gate is -1 and
			// the pad location identifies it. We use PO field? No: encode
			// via Ref.Pin? PI pads set Gate=-1, so identify by pointer
			// equality is impossible — instead the design tags the PI index
			// in Ref.Gate. See Design.TaggedNetPins.
			return -1, p.Ref.Gate, true
		}
	}
	return -1, -1, false
}

// CCRResult carries the correct-connection-rate outcome.
type CCRResult struct {
	Protected int     // sink fragments evaluated
	Correct   int     // assigned to the true driver
	CCR       float64 // Correct / Protected
}

// CCR scores an assignment against the original (reference) netlist.
// Only pure-sink fragments are scored; a missing or wrong assignment
// counts as incorrect.
func CCR(d *layout.Design, sv *layout.SplitView, ref *netlist.Netlist, a Assignment) CCRResult {
	var res CCRResult
	for _, fid := range sv.SinkFrags() {
		f := &sv.Frags[fid]
		sinks := f.SinkPins()
		if len(sinks) == 0 {
			continue
		}
		res.Protected++
		got, ok := a[fid]
		if !ok || got < 0 || got >= len(sv.Frags) {
			continue
		}
		gGate, gPI, ok := fragDriver(&sv.Frags[got])
		if !ok {
			continue
		}
		// A fragment may hold several sink pins; it is correctly recovered
		// when the assigned driver matches the true driver of all of them
		// (they share one net in practice).
		all := true
		for _, sp := range sinks {
			tGate, tPI, ok := TrueDriverOf(ref, sp)
			if !ok || tGate != gGate || tPI != gPI {
				all = false
				break
			}
		}
		if all {
			res.Correct++
		}
	}
	if res.Protected > 0 {
		res.CCR = float64(res.Correct) / float64(res.Protected)
	}
	return res
}

// RecoverNetlist builds the attacker's netlist: a clone of the FEOL-visible
// netlist with every pure-sink fragment's pins rewired to the assigned
// driver fragment's net. Unassigned sinks keep their (erroneous or
// original) binding. The result is what HD/OER are simulated on.
func RecoverNetlist(d *layout.Design, sv *layout.SplitView, a Assignment) *netlist.Netlist {
	rec := d.Netlist.Clone()
	for _, fid := range sv.SinkFrags() {
		got, ok := a[fid]
		if !ok || got < 0 || got >= len(sv.Frags) {
			continue
		}
		drv := &sv.Frags[got]
		gGate, gPI, ok := fragDriver(drv)
		if !ok {
			continue
		}
		var net int
		if gGate >= 0 {
			net = rec.Gates[gGate].Out
		} else {
			net = rec.PINets[gPI]
		}
		for _, sp := range sv.Frags[fid].SinkPins() {
			switch sp.Role {
			case layout.RoleSink:
				_ = rec.RewirePin(sp.Ref.Gate, sp.Ref.Pin, net)
			case layout.RolePO:
				_ = rec.RewirePO(sp.PO, net)
			}
		}
	}
	return rec
}

// TrueAssignment maps every pure-sink fragment to the driver fragment that
// the reference netlist says should feed it (used to validate attacks and
// to compute the match-in-list metric). Fragments whose true driver has no
// fragment in the view map to -1.
func TrueAssignment(d *layout.Design, sv *layout.SplitView, ref *netlist.Netlist) Assignment {
	// Index driver fragments by identity.
	byGate := map[int]int{}
	byPI := map[int]int{}
	for _, fid := range sv.DriverFrags() {
		g, pi, ok := fragDriver(&sv.Frags[fid])
		if !ok {
			continue
		}
		if g >= 0 {
			byGate[g] = fid
		} else {
			byPI[pi] = fid
		}
	}
	truth := Assignment{}
	for _, fid := range sv.SinkFrags() {
		sinks := sv.Frags[fid].SinkPins()
		if len(sinks) == 0 {
			continue
		}
		tGate, tPI, ok := TrueDriverOf(ref, sinks[0])
		if !ok {
			truth[fid] = -1
			continue
		}
		if tGate >= 0 {
			if df, ok := byGate[tGate]; ok {
				truth[fid] = df
			} else {
				truth[fid] = -1
			}
		} else if df, ok := byPI[tPI]; ok {
			truth[fid] = df
		} else {
			truth[fid] = -1
		}
	}
	return truth
}
