package splitmfg

import (
	"fmt"

	"splitmfg/internal/report"
)

// ExperimentConfig carries the experiment-wide knobs for the paper's
// tables and figures: master seed, superblue scale divisor, ISCAS subset,
// and simulation depth.
type ExperimentConfig = report.Config

// Table is a rendered experiment result: a title, a header row, data rows,
// and footnotes. Render formats it for terminals.
type Table = report.Table

// SecurityRow is one benchmark's attack outcome for one defense variant,
// as produced by SecurityStudy (CCR/OER/HD in percent).
type SecurityRow = report.SecurityRow

// PPARow is one design's PPA accounting from Fig6PPA.
type PPARow = report.PPARow

// Experiment names accepted by RunExperiment, in the paper's order.
var experimentNames = []string{
	"table1", "table2", "table3", "table4", "table5", "table6",
	"fig5", "fig6", "ppa", "ablation",
}

// Experiments lists the table-shaped experiments runnable with
// RunExperiment. Fig4CSV and SecurityStudy have dedicated entry points
// with richer result types.
func Experiments() []string {
	return append([]string(nil), experimentNames...)
}

// RunExperiment regenerates one of the paper's tables or figures by name.
// fig5's series design and ablation's benchmark/budgets use the same
// defaults as cmd/smbench; use Fig5 or AblationSwapBudget directly for
// control over them.
func RunExperiment(name string, cfg ExperimentConfig) (*Table, error) {
	switch name {
	case "table1":
		return report.Table1(cfg)
	case "table2":
		return report.Table2(cfg)
	case "table3":
		return report.Table3(cfg)
	case "table4":
		return report.Table4(cfg)
	case "table5":
		return report.Table5(cfg)
	case "table6":
		return report.Table6(cfg)
	case "fig5":
		return report.Fig5("superblue18", cfg)
	case "fig6":
		t, _, err := report.Fig6PPA(cfg)
		return t, err
	case "ppa":
		return report.SuperbluePPA(cfg)
	case "ablation":
		return report.AblationSwapBudget("c880", []int{4, 8, 16, 32, 64}, cfg)
	default:
		return nil, fmt.Errorf("splitmfg: unknown experiment %q (have %v)", name, experimentNames)
	}
}

// Fig4CSV renders the Fig. 4 per-layer wirelength series for one superblue
// design as CSV.
func Fig4CSV(design string, cfg ExperimentConfig) (string, error) {
	return report.Fig4CSV(design, cfg)
}

// Fig5 renders the Fig. 5 via-delta series for one superblue design.
func Fig5(design string, cfg ExperimentConfig) (*Table, error) {
	return report.Fig5(design, cfg)
}

// Fig6PPA regenerates the Fig. 6 PPA comparison, returning both the
// rendered table and the raw rows.
func Fig6PPA(cfg ExperimentConfig) (*Table, []PPARow, error) {
	return report.Fig6PPA(cfg)
}

// SecurityStudy attacks one defense variant ("original",
// "placement-perturbation", "g-color", "synergistic", "proposed", ...)
// across the configured ISCAS benchmarks.
func SecurityStudy(variant string, cfg ExperimentConfig) ([]SecurityRow, error) {
	return report.SecurityStudy(variant, cfg)
}

// AblationSwapBudget sweeps the randomization swap budget on one benchmark.
func AblationSwapBudget(benchmark string, budgets []int, cfg ExperimentConfig) (*Table, error) {
	return report.AblationSwapBudget(benchmark, budgets, cfg)
}
