package splitmfg

import (
	"fmt"
	"io"

	"splitmfg/internal/flow"
)

// Stage identifies a phase of the protection flow or the attack loop.
// Protect passes through StageRandomize, StagePlace, StageLift, StageRoute,
// StageRestore, StageVerify, and StagePPA once per escalation attempt
// (plus StagePlace/StageRoute with Detail "baseline" for the reference
// layout); Evaluate emits one StageAttack event per split layer; Suite
// emits one StageSuiteBaseline event per benchmark and one StageSuiteCell
// event per (benchmark, defense, replicate) cell.
type Stage = flow.Stage

// Stages, in the order the pipeline passes through them.
const (
	StageRandomize = flow.StageRandomize
	StagePlace     = flow.StagePlace
	StageLift      = flow.StageLift
	StageRoute     = flow.StageRoute
	StageRestore   = flow.StageRestore
	StageVerify    = flow.StageVerify
	StagePPA       = flow.StagePPA
	StageAttack    = flow.StageAttack

	// StageRouteWave reports one committed multi-net wave of a parallel
	// routing batch (WithRouteParallelism; Detail carries
	// "wave i/n: k nets"). Single-net waves and serial routing emit no
	// wave events.
	StageRouteWave = flow.StageRouteWave

	// Suite-level stages: a benchmark's shared unprotected baseline was
	// built (Bench set), or a (benchmark, defense, replicate) cell
	// completed (Bench, Replicate, and Detail = defense name set).
	StageSuiteBaseline = flow.StageSuiteBaseline
	StageSuiteCell     = flow.StageSuiteCell
)

// ProgressEvent is one completed stage transition, carrying the stage's
// wall-clock duration. For StageAttack events Layer is the split layer;
// for Protect stages Attempt is the 1-based escalation attempt (0 marks
// work on the baseline layout); for suite stages Bench is the benchmark
// and Replicate the 0-based seed replicate.
type ProgressEvent = flow.Event

// ProgressFunc receives stage-completion events. Calls are serialized even
// during parallel evaluation, so implementations need no locking.
type ProgressFunc = flow.ProgressFunc

// ProgressLogger returns a ProgressFunc that writes one line per event to
// w — a ready-made hook for CLI verbose modes.
func ProgressLogger(w io.Writer) ProgressFunc {
	return func(ev ProgressEvent) {
		where := ""
		switch {
		case ev.Stage == StageAttack:
			where = fmt.Sprintf(" M%d", ev.Layer)
		case ev.Stage == StageSuiteBaseline:
			where = " " + ev.Bench
		case ev.Stage == StageSuiteCell:
			where = fmt.Sprintf(" %s r%d", ev.Bench, ev.Replicate)
		case ev.Attempt > 0:
			where = fmt.Sprintf(" #%d", ev.Attempt)
		}
		detail := ""
		if ev.Detail != "" {
			detail = " (" + ev.Detail + ")"
		}
		fmt.Fprintf(w, "[%8.2fms] %-9s%s%s\n",
			float64(ev.Elapsed.Microseconds())/1000, ev.Stage, where, detail)
	}
}
